(** Ordered Trie with Inverted Lists (paper Section 4.3, after
    Terrovitis et al., CIKM 2006).

    An OTIL indexes a set of (word, value) pairs where each {e word} is a
    strictly increasing sequence of integers (a multi-edge type set) and
    each value is an opaque integer (a neighbour vertex id). It answers
    {e superset queries}: given a query set [T'], return every value
    whose word is a superset of [T']. Additionally each symbol keeps an
    inverted list of all values whose word contains it, giving O(1)
    access for singleton queries — the common case in SPARQL BGPs.

    Two physical states. While {e building}, the structure is a mutable
    node trie. {!prepare} {e freezes} it into a compact word table: one
    packed int array holding every word {e and} every small Raw value
    list inline, plus a pool of large {!Mgraph.Posting} lists kept in
    their compressed layouts. Inverted lists are answered by scanning
    the word table (a vertex-neighbourhood trie holds a handful of
    words, so the scan is cheaper than keeping per-symbol arrays
    resident). The frozen form costs a small fraction of the building
    trie's heap words; queries run directly over it. *)

type t

val create : unit -> t

val add : t -> int array -> int -> unit
(** [add t word v] inserts the pair. [word] must be strictly increasing
    and non-empty; @raise Invalid_argument otherwise. Inserting the same
    (word, value) twice is idempotent in query results (the inverted
    lists deduplicate lazily). Adding to a frozen trie thaws it first —
    the word table is decoded back into a mutable trie (linear in the
    trie, fine for the incremental-extension and test paths; the engine
    never adds after freezing). *)

val cardinal : t -> int
(** Number of [add] calls retained. *)

val supersets : t -> int array -> Mgraph.Posting.t
(** [supersets t q] — sorted, duplicate-free values whose word contains
    every element of the (strictly increasing) query [q]. An empty query
    returns every stored value. On a frozen trie a single-word hit on a
    pooled list returns the stored posting itself (zero-copy). *)

val with_symbol : t -> int -> Mgraph.Posting.t
(** [with_symbol t s] — sorted values whose word contains the symbol
    [s]; the per-symbol inverted list. On a frozen trie a single-carrier
    hit on a pooled list returns the resident posting (zero-copy); other
    hits materialize a fresh Raw list. Reads are pure: on an unprepared
    trie the list is sorted afresh on every call (first-probe sorting
    must not pollute query timings, so index builders call {!prepare}
    eagerly instead of relying on lazy caching). *)

val prepare : ?policy:Mgraph.Posting.policy -> t -> unit
(** Freeze: compile the mutable trie into the compact word table,
    value lists frozen under [policy] (default [Auto]). Queries never
    mutate the structure, so a prepared trie is safely shareable across
    domains; {!add} thaws it again. Idempotent (a second call with a
    different policy does not re-freeze). Called eagerly at index-build
    time by [Neighbourhood_index.build]. *)

val prepared : t -> bool
(** Has {!prepare} run since the last {!add}? *)

val words : t -> (int array * int array) list
(** All (word, sorted values) pairs in lexicographic word order, for
    codecs, tests and debugging. *)

val posting_stats : t -> Mgraph.Posting.stats -> unit
(** Accumulate this trie's frozen posting-layout counts and out-of-heap
    payload bytes into [stats] (inline value lists count as Raw with no
    payload). No-op on an unfrozen trie. *)

val encode : Buffer.t -> write_int:(Buffer.t -> int -> unit) -> t -> unit
(** The AMBERIX1 {e v1} codec: flattened post-order encoding of the
    node trie plus its per-symbol inverted lists. All lists are written
    sorted and duplicate-free, so the bytes are {e canonical}: two tries
    holding the same (word, value) multiset encode identically whatever
    the insertion order (a frozen trie is re-expanded through its word
    table first). Integers are framed by [write_int] (the snapshot
    format passes a varint writer) — this library takes no
    serialization dependency. *)

val decode :
  ?policy:Mgraph.Posting.policy ->
  string ->
  int ref ->
  read_int:(string -> int ref -> int) ->
  t
(** Inverse of {!encode}, reading at [!pos] and advancing it. The
    decoded trie is returned already frozen (compiled under [policy];
    the stored inverted lists are validated for framing and re-derived
    from the word table). @raise Failure on structurally malformed
    input (unsorted lists, bad child/root counts); whatever [read_int]
    raises on framing errors passes through. *)

val encode_frozen :
  Buffer.t ->
  write_int:(Buffer.t -> int -> unit) ->
  write_posting:(Buffer.t -> Mgraph.Posting.t -> unit) ->
  t ->
  unit
(** The AMBERIX1 {e v2} codec: the word table directly — cardinal, word
    count, then each word (delta-coded) with its value posting emitted
    through [write_posting], preserving the frozen layout tags.
    Canonical for a given (word → values) table and layout choice. *)

val decode_frozen :
  ?policy:Mgraph.Posting.policy ->
  string ->
  int ref ->
  read_int:(string -> int ref -> int) ->
  read_posting:(string -> int ref -> Mgraph.Posting.t) ->
  t
(** Inverse of {!encode_frozen}; the result is frozen and value
    postings keep their stored layouts (small Raw lists inline into the
    packed table — physically identical on re-encode). [policy] is
    accepted for interface symmetry with {!decode}; the stored layouts
    are authoritative. @raise Failure on malformed structure. *)
