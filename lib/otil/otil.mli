(** Ordered Trie with Inverted Lists (paper Section 4.3, after
    Terrovitis et al., CIKM 2006).

    An OTIL indexes a set of (word, value) pairs where each {e word} is a
    strictly increasing sequence of integers (a multi-edge type set) and
    each value is an opaque integer (a neighbour vertex id). It answers
    {e superset queries}: given a query set [T'], return every value
    whose word is a superset of [T']. Additionally each symbol keeps an
    inverted list of all values whose word contains it, giving O(1)
    access for singleton queries — the common case in SPARQL BGPs. *)

type t

val create : unit -> t

val add : t -> int array -> int -> unit
(** [add t word v] inserts the pair. [word] must be strictly increasing
    and non-empty; @raise Invalid_argument otherwise. Inserting the same
    (word, value) twice is idempotent in query results (the inverted
    lists deduplicate lazily). *)

val cardinal : t -> int
(** Number of [add] calls retained. *)

val supersets : t -> int array -> int array
(** [supersets t q] — sorted, duplicate-free values whose word contains
    every element of the (strictly increasing) query [q]. An empty query
    returns every stored value. *)

val with_symbol : t -> int -> int array
(** [with_symbol t s] — sorted values whose word contains the symbol
    [s]; the per-symbol inverted list. Reads are pure: on an unprepared
    trie the list is sorted afresh on every call (first-probe sorting
    must not pollute query timings, so index builders call {!prepare}
    eagerly instead of relying on lazy caching). *)

val prepare : t -> unit
(** Materialize every per-symbol sorted inverted list and freeze the
    trie for reading. Queries never mutate the structure, so a prepared
    trie is safely shareable across domains; {!add} thaws it again.
    Idempotent. Called eagerly at index-build time by
    [Neighbourhood_index.build]. *)

val prepared : t -> bool
(** Has {!prepare} run since the last {!add}? *)

val words : t -> (int array * int array) list
(** All (word, sorted values) pairs, for tests and debugging. *)

val encode : Buffer.t -> write_int:(Buffer.t -> int -> unit) -> t -> unit
(** Flattened post-order encoding of the trie plus its per-symbol
    inverted lists, for index snapshots. All lists are written sorted
    and duplicate-free, so the bytes are {e canonical}: two tries
    holding the same (word, value) multiset encode identically whatever
    the insertion order. Integers are framed by [write_int] (the
    snapshot format passes a varint writer) — this library takes no
    serialization dependency. *)

val decode : string -> int ref -> read_int:(string -> int ref -> int) -> t
(** Inverse of {!encode}, reading at [!pos] and advancing it. The
    decoded trie is returned already {!prepare}d (frozen, caches
    materialized). @raise Failure on structurally malformed input
    (unsorted lists, bad child/root counts); whatever [read_int] raises
    on framing errors passes through. *)
