type node = {
  label : int;
  mutable children : node list;  (* sorted by increasing label *)
  mutable values : int list;  (* values whose word terminates here *)
}

(* A per-symbol inverted list: [sorted] is the authoritative sorted
   duplicate-free array once materialized; [items] holds only the values
   added since (pending, unsorted). The full contents are always
   [items ∪ sorted] — letting the snapshot decoder install a decoded
   array directly, with no list mirror. *)
type inverted = {
  mutable items : int list;
  mutable sorted : int array option;
}

type t = {
  mutable roots : node list;  (* sorted by increasing label *)
  (* Per-symbol inverted lists as two parallel arrays: the sorted
     distinct symbols in [sym_keys.(0 .. sym_count - 1)] and the
     matching lists in [sym_vals]. A vertex-neighbourhood trie holds a
     handful of symbols, so a binary search beats hashing and an empty
     trie costs two empty arrays — a hash table here is 176+ bytes per
     trie, paid once per vertex per direction. Capacity doubles on
     growth; slots past [sym_count] are junk. *)
  mutable sym_keys : int array;
  mutable sym_vals : inverted array;
  mutable sym_count : int;
  mutable cardinal : int;
  mutable frozen : bool;  (* caches materialized, reads are pure *)
}

let create () =
  {
    roots = [];
    sym_keys = [||];
    sym_vals = [||];
    sym_count = 0;
    cardinal = 0;
    frozen = false;
  }

(* Index of [s] among the live symbol slots, or the insertion point
   encoded as [-(i + 1)] when absent. *)
let find_slot t s =
  let lo = ref 0 and hi = ref t.sym_count in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get t.sym_keys mid < s then lo := mid + 1 else hi := mid
  done;
  if !lo < t.sym_count && t.sym_keys.(!lo) = s then !lo else - (!lo + 1)

let insert_symbol t i s l =
  let n = t.sym_count in
  if n = Array.length t.sym_keys then begin
    let cap = if n = 0 then 4 else 2 * n in
    let ks = Array.make cap 0 in
    let vs = Array.make cap l in
    Array.blit t.sym_keys 0 ks 0 n;
    Array.blit t.sym_vals 0 vs 0 n;
    t.sym_keys <- ks;
    t.sym_vals <- vs
  end;
  Array.blit t.sym_keys i t.sym_keys (i + 1) (n - i);
  Array.blit t.sym_vals i t.sym_vals (i + 1) (n - i);
  t.sym_keys.(i) <- s;
  t.sym_vals.(i) <- l;
  t.sym_count <- n + 1

(* Find or create the child with [label] in a sorted sibling list. *)
let rec locate siblings label =
  match siblings with
  | [] ->
      let n = { label; children = []; values = [] } in
      (n, [ n ])
  | x :: rest ->
      if x.label = label then (x, siblings)
      else if x.label > label then
        let n = { label; children = []; values = [] } in
        (n, n :: siblings)
      else
        let n, rest' = locate rest label in
        (n, x :: rest')

let add t word value =
  let k = Array.length word in
  if k = 0 then invalid_arg "Otil.add: empty word";
  if not (Mgraph.Sorted_ints.is_sorted word) then
    invalid_arg "Otil.add: word must be strictly increasing";
  (* Walk/extend the trie along the word. *)
  let node = ref None in
  let siblings = ref t.roots in
  Array.iter
    (fun symbol ->
      let n, siblings' = locate !siblings symbol in
      (match !node with
      | None -> t.roots <- siblings'
      | Some parent -> parent.children <- siblings');
      node := Some n;
      siblings := n.children;
      (* Per-symbol inverted list. *)
      let lst =
        let i = find_slot t symbol in
        if i >= 0 then t.sym_vals.(i)
        else begin
          let l = { items = []; sorted = None } in
          insert_symbol t (- i - 1) symbol l;
          l
        end
      in
      lst.items <- value :: lst.items)
    word;
  (match !node with
  | None -> assert false
  | Some terminal -> terminal.values <- value :: terminal.values);
  t.cardinal <- t.cardinal + 1;
  t.frozen <- false

let cardinal t = t.cardinal

(* Collect every terminal value in the subtree rooted at [n]. *)
let rec collect_all n acc =
  let acc = List.rev_append n.values acc in
  List.fold_left (fun acc c -> collect_all c acc) acc n.children

(* DFS with pruning: labels are increasing along every path, so once a
   sibling's label exceeds the next needed query symbol, no deeper word in
   that subtree can contain it. *)
let rec search query node qi acc =
  let qn = Array.length query in
  if qi >= qn then collect_all node acc
  else begin
    let needed = query.(qi) in
    let qi' = if node.label = needed then qi + 1 else qi in
    if qi' >= qn then collect_all node acc
    else
      let needed' = query.(qi') in
      List.fold_left
        (fun acc child ->
          if child.label <= needed' then search query child qi' acc else acc)
        acc node.children
  end

let supersets t query =
  if not (Mgraph.Sorted_ints.is_sorted query) then
    invalid_arg "Otil.supersets: query must be strictly increasing";
  let acc =
    if Array.length query = 0 then
      List.fold_left (fun acc r -> collect_all r acc) [] t.roots
    else
      let needed = query.(0) in
      List.fold_left
        (fun acc root ->
          if root.label <= needed then search query root 0 acc else acc)
        [] t.roots
  in
  Mgraph.Sorted_ints.of_list acc

(* Reads never mutate the trie: an unprepared lookup re-sorts instead of
   filling the cache, so probing is safe from several domains at any
   time — only {!prepare} (single-threaded, at index-build time)
   materializes the caches. *)
let inverted_contents l =
  match (l.sorted, l.items) with
  | Some a, [] -> a
  | None, items -> Mgraph.Sorted_ints.of_list items
  | Some a, items ->
      Mgraph.Sorted_ints.of_list (List.rev_append items (Array.to_list a))

let with_symbol t s =
  let i = find_slot t s in
  if i >= 0 then inverted_contents t.sym_vals.(i) else [||]

let prepare t =
  for i = 0 to t.sym_count - 1 do
    let l = t.sym_vals.(i) in
    match (l.sorted, l.items) with
    | Some _, [] -> ()
    | _ ->
        l.sorted <- Some (inverted_contents l);
        l.items <- []
  done;
  t.frozen <- true

let prepared t = t.frozen

(* Snapshot codec. The trie is flattened post-order (children before
   their parent, siblings in increasing label order), so the decoder
   rebuilds it with a single stack and no recursion. Terminal values and
   inverted lists are written sorted and duplicate-free — delta-coded as
   first element then gaps minus one, so sortedness is structural and
   most gaps fit one byte — making the encoding canonical: two tries
   holding the same (word, value) set encode to the same bytes
   regardless of insertion history. Integer framing is delegated to
   [write_int]/[read_int] callbacks so this library stays
   dependency-free. *)
let write_sorted buf write_int a =
  let n = Array.length a in
  write_int buf n;
  if n > 0 then begin
    write_int buf a.(0);
    for i = 1 to n - 1 do
      write_int buf (a.(i) - a.(i - 1) - 1)
    done
  end

let encode buf ~write_int t =
  write_int buf t.cardinal;
  let node_count =
    let rec count n acc = List.fold_left (fun a c -> count c a) (acc + 1) n.children in
    List.fold_left (fun a r -> count r a) 0 t.roots
  in
  write_int buf node_count;
  let rec emit n =
    List.iter emit n.children;
    write_int buf n.label;
    write_sorted buf write_int (Mgraph.Sorted_ints.of_list n.values);
    write_int buf (List.length n.children)
  in
  List.iter emit t.roots;
  write_int buf (List.length t.roots);
  (* [sym_keys] is already sorted and distinct. *)
  write_int buf t.sym_count;
  for i = 0 to t.sym_count - 1 do
    write_int buf t.sym_keys.(i);
    write_sorted buf write_int (inverted_contents t.sym_vals.(i))
  done

let decode src pos ~read_int =
  let fail msg = failwith ("Otil.decode: " ^ msg) in
  (* Delta-coded: first element, then gaps minus one. Strict ascent is
     structural — gaps are non-negative by the integer codec's contract
     (the snapshot passes an unsigned varint reader). *)
  let read_sorted_array () =
    let len = read_int src pos in
    if len < 0 then fail "negative length";
    if len = 0 then [||]
    else begin
      let a = Array.make len (read_int src pos) in
      for i = 1 to len - 1 do
        a.(i) <- a.(i - 1) + 1 + read_int src pos
      done;
      a
    end
  in
  (* As [read_sorted_array], but straight into the list the node holds —
     no intermediate array, and no [List.rev]: a node's [values] order is
     unspecified (every consumer sorts or treats it as a set). *)
  let read_sorted_list () =
    let len = read_int src pos in
    if len < 0 then fail "negative length";
    let rec go i prev acc =
      if i >= len then acc
      else begin
        let v = prev + 1 + read_int src pos in
        go (i + 1) v (v :: acc)
      end
    in
    if len = 0 then []
    else
      let v0 = read_int src pos in
      go 1 v0 [ v0 ]
  in
  let cardinal = read_int src pos in
  let node_count = read_int src pos in
  if cardinal < 0 || node_count < 0 then fail "negative count";
  let stack = ref [] in
  let depth = ref 0 in
  for _ = 1 to node_count do
    let label = read_int src pos in
    let values = read_sorted_list () in
    let nchildren = read_int src pos in
    if nchildren < 0 || nchildren > !depth then fail "bad child count";
    (* Popping yields the last-emitted (highest-label) child first;
       consing restores increasing label order. *)
    let children = ref [] in
    for _ = 1 to nchildren do
      match !stack with
      | c :: rest ->
          (match !children with
          | top :: _ when c.label >= top.label -> fail "children not sorted"
          | _ -> ());
          children := c :: !children;
          stack := rest;
          decr depth
      | [] -> fail "bad child count"
    done;
    stack := { label; children = !children; values } :: !stack;
    incr depth
  done;
  let root_count = read_int src pos in
  if root_count <> !depth then fail "bad root count";
  let roots = List.rev !stack in
  (match roots with
  | r0 :: rest ->
      ignore
        (List.fold_left
           (fun prev r ->
             if r.label <= prev then fail "roots not sorted";
             r.label)
           r0.label rest)
  | [] -> ());
  let symbol_count = read_int src pos in
  if symbol_count < 0 then fail "negative count";
  let sym_keys = Array.make symbol_count 0 in
  (* The [Array.make] dummy is shared across slots; the loop below
     overwrites every one with a fresh record. *)
  let sym_vals = Array.make symbol_count { items = []; sorted = None } in
  let last_symbol = ref min_int in
  for i = 0 to symbol_count - 1 do
    let s = read_int src pos in
    if s <= !last_symbol then fail "symbols not sorted";
    last_symbol := s;
    sym_keys.(i) <- s;
    sym_vals.(i) <- { items = []; sorted = Some (read_sorted_array ()) }
  done;
  { roots; sym_keys; sym_vals; sym_count = symbol_count; cardinal; frozen = true }

let words t =
  let out = ref [] in
  let rec walk prefix n =
    let word = n.label :: prefix in
    if n.values <> [] then
      out :=
        ( Array.of_list (List.rev word),
          Mgraph.Sorted_ints.of_list n.values )
        :: !out;
    List.iter (walk word) n.children
  in
  List.iter (walk []) t.roots;
  List.rev !out
