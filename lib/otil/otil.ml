type node = {
  label : int;
  mutable children : node list;  (* sorted by increasing label *)
  mutable values : int list;  (* values whose word terminates here *)
}

type inverted = {
  mutable items : int list;
  mutable sorted : int array option;  (* cache, materialized by prepare *)
}

type t = {
  mutable roots : node list;  (* sorted by increasing label *)
  by_symbol : (int, inverted) Hashtbl.t;
  mutable cardinal : int;
  mutable frozen : bool;  (* caches materialized, reads are pure *)
}

let create () =
  { roots = []; by_symbol = Hashtbl.create 16; cardinal = 0; frozen = false }

(* Find or create the child with [label] in a sorted sibling list. *)
let rec locate siblings label =
  match siblings with
  | [] ->
      let n = { label; children = []; values = [] } in
      (n, [ n ])
  | x :: rest ->
      if x.label = label then (x, siblings)
      else if x.label > label then
        let n = { label; children = []; values = [] } in
        (n, n :: siblings)
      else
        let n, rest' = locate rest label in
        (n, x :: rest')

let add t word value =
  let k = Array.length word in
  if k = 0 then invalid_arg "Otil.add: empty word";
  if not (Mgraph.Sorted_ints.is_sorted word) then
    invalid_arg "Otil.add: word must be strictly increasing";
  (* Walk/extend the trie along the word. *)
  let node = ref None in
  let siblings = ref t.roots in
  Array.iter
    (fun symbol ->
      let n, siblings' = locate !siblings symbol in
      (match !node with
      | None -> t.roots <- siblings'
      | Some parent -> parent.children <- siblings');
      node := Some n;
      siblings := n.children;
      (* Per-symbol inverted list. *)
      let lst =
        match Hashtbl.find_opt t.by_symbol symbol with
        | Some l -> l
        | None ->
            let l = { items = []; sorted = None } in
            Hashtbl.add t.by_symbol symbol l;
            l
      in
      lst.items <- value :: lst.items;
      lst.sorted <- None)
    word;
  (match !node with
  | None -> assert false
  | Some terminal -> terminal.values <- value :: terminal.values);
  t.cardinal <- t.cardinal + 1;
  t.frozen <- false

let cardinal t = t.cardinal

(* Collect every terminal value in the subtree rooted at [n]. *)
let rec collect_all n acc =
  let acc = List.rev_append n.values acc in
  List.fold_left (fun acc c -> collect_all c acc) acc n.children

(* DFS with pruning: labels are increasing along every path, so once a
   sibling's label exceeds the next needed query symbol, no deeper word in
   that subtree can contain it. *)
let rec search query node qi acc =
  let qn = Array.length query in
  if qi >= qn then collect_all node acc
  else begin
    let needed = query.(qi) in
    let qi' = if node.label = needed then qi + 1 else qi in
    if qi' >= qn then collect_all node acc
    else
      let needed' = query.(qi') in
      List.fold_left
        (fun acc child ->
          if child.label <= needed' then search query child qi' acc else acc)
        acc node.children
  end

let supersets t query =
  if not (Mgraph.Sorted_ints.is_sorted query) then
    invalid_arg "Otil.supersets: query must be strictly increasing";
  let acc =
    if Array.length query = 0 then
      List.fold_left (fun acc r -> collect_all r acc) [] t.roots
    else
      let needed = query.(0) in
      List.fold_left
        (fun acc root ->
          if root.label <= needed then search query root 0 acc else acc)
        [] t.roots
  in
  Mgraph.Sorted_ints.of_list acc

(* Reads never mutate the trie: an unprepared lookup re-sorts instead of
   filling the cache, so probing is safe from several domains at any
   time — only {!prepare} (single-threaded, at index-build time)
   materializes the caches. *)
let with_symbol t s =
  match Hashtbl.find_opt t.by_symbol s with
  | None -> [||]
  | Some l -> (
      match l.sorted with
      | Some a -> a
      | None -> Mgraph.Sorted_ints.of_list l.items)

let prepare t =
  Hashtbl.iter
    (fun _ l ->
      match l.sorted with
      | Some _ -> ()
      | None -> l.sorted <- Some (Mgraph.Sorted_ints.of_list l.items))
    t.by_symbol;
  t.frozen <- true

let prepared t = t.frozen

let words t =
  let out = ref [] in
  let rec walk prefix n =
    let word = n.label :: prefix in
    if n.values <> [] then
      out :=
        ( Array.of_list (List.rev word),
          Mgraph.Sorted_ints.of_list n.values )
        :: !out;
    List.iter (walk word) n.children
  in
  List.iter (walk []) t.roots;
  List.rev !out
