module Posting = Mgraph.Posting

type node = {
  label : int;
  mutable children : node list;  (* sorted by increasing label *)
  mutable values : int list;  (* values whose word terminates here *)
}

(* A per-symbol inverted list: [sorted] is the authoritative sorted
   duplicate-free array once materialized; [items] holds only the values
   added since (pending, unsorted). The full contents are always
   [items ∪ sorted]. Only the {e building} trie keeps these — a frozen
   trie answers symbol queries from its word table. *)
type inverted = {
  mutable items : int list;
  mutable sorted : int array option;
}

(* The frozen form. A vertex-neighbourhood trie is tiny (a handful of
   words of one or two symbols), so per-list heap blocks are nearly all
   structural overhead. Freezing packs the (word → values) table into
   ONE int array plus a pool of large posting lists:

     frozen.(0)      word count k
     frozen.(1 ..)   per word, in lexicographic order:
                       length, its symbols (ascending), then a valref

   A valref is one int [v]: [v >= 0] announces an inline value list of
   [v] sorted ints following directly; [v < 0] refers to [pool.(-v-1)].
   Small Raw value lists inline (the data is cheaper than a box); lists
   the layout policy compressed — or large Raw lists — live in [pool]
   as postings and are returned zero-copy. [frozen = [||]] means the
   trie is in its mutable building state. *)

let inline_max = 64

(* All frozen-empty tries share this table (never mutated). *)
let frozen_empty = [| 0 |]

type t = {
  mutable roots : node list;  (* sorted by increasing label *)
  (* Building-side per-symbol inverted lists as two parallel arrays:
     sorted distinct symbols in [sym_keys.(0 .. sym_count - 1)],
     matching lists in [sym_vals]. Capacity doubles on growth; slots
     past [sym_count] are junk. Cleared when the trie freezes. *)
  mutable sym_keys : int array;
  mutable sym_vals : inverted array;
  mutable sym_count : int;
  mutable cardinal : int;
  mutable frozen : int array;  (* non-empty ⇔ frozen *)
  mutable pool : Posting.t array;
}

let create () =
  {
    roots = [];
    sym_keys = [||];
    sym_vals = [||];
    sym_count = 0;
    cardinal = 0;
    frozen = [||];
    pool = [||];
  }

let prepared t = Array.length t.frozen > 0

(* Index of [s] among the live symbol slots, or the insertion point
   encoded as [-(i + 1)] when absent. *)
let find_slot t s =
  let lo = ref 0 and hi = ref t.sym_count in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get t.sym_keys mid < s then lo := mid + 1 else hi := mid
  done;
  if !lo < t.sym_count && t.sym_keys.(!lo) = s then !lo else - (!lo + 1)

let insert_symbol t i s l =
  let n = t.sym_count in
  if n = Array.length t.sym_keys then begin
    let cap = if n = 0 then 4 else 2 * n in
    let ks = Array.make cap 0 in
    let vs = Array.make cap l in
    Array.blit t.sym_keys 0 ks 0 n;
    Array.blit t.sym_vals 0 vs 0 n;
    t.sym_keys <- ks;
    t.sym_vals <- vs
  end;
  Array.blit t.sym_keys i t.sym_keys (i + 1) (n - i);
  Array.blit t.sym_vals i t.sym_vals (i + 1) (n - i);
  t.sym_keys.(i) <- s;
  t.sym_vals.(i) <- l;
  t.sym_count <- n + 1

(* Find or create the child with [label] in a sorted sibling list. *)
let rec locate siblings label =
  match siblings with
  | [] ->
      let n = { label; children = []; values = [] } in
      (n, [ n ])
  | x :: rest ->
      if x.label = label then (x, siblings)
      else if x.label > label then
        let n = { label; children = []; values = [] } in
        (n, n :: siblings)
      else
        let n, rest' = locate rest label in
        (n, x :: rest')

(* Insert into the building trie without touching [cardinal] — shared
   by [add] and the thaw path. *)
let insert t word value =
  let node = ref None in
  let siblings = ref t.roots in
  Array.iter
    (fun symbol ->
      let n, siblings' = locate !siblings symbol in
      (match !node with
      | None -> t.roots <- siblings'
      | Some parent -> parent.children <- siblings');
      node := Some n;
      siblings := n.children;
      let lst =
        let i = find_slot t symbol in
        if i >= 0 then t.sym_vals.(i)
        else begin
          let l = { items = []; sorted = None } in
          insert_symbol t (- i - 1) symbol l;
          l
        end
      in
      lst.items <- value :: lst.items)
    word;
  match !node with
  | None -> assert false
  | Some terminal -> terminal.values <- value :: terminal.values

(* ---------- frozen-table accessors ---------- *)

(* Walk the packed word table: [f i ~soff ~len ~voff] sees word [i]'s
   symbols at [fz.(soff .. soff + len - 1)] and its valref at [voff]. *)
let frozen_iter_words fz f =
  let k = fz.(0) in
  let off = ref 1 in
  for i = 0 to k - 1 do
    let len = fz.(!off) in
    let soff = !off + 1 in
    let voff = soff + len in
    f i ~soff ~len ~voff;
    let v = fz.(voff) in
    off := voff + 1 + if v >= 0 then v else 0
  done

(* The value list behind a valref, as a posting. Inline lists wrap a
   fresh slice; pooled lists return the resident posting zero-copy. *)
let value_posting t voff =
  let v = t.frozen.(voff) in
  if v >= 0 then Posting.raw (Array.sub t.frozen (voff + 1) v)
  else t.pool.(- v - 1)

let value_array t voff =
  let v = t.frozen.(voff) in
  if v >= 0 then Array.sub t.frozen (voff + 1) v
  else Posting.to_array t.pool.(- v - 1)

let frozen_words t =
  let out = ref [] in
  frozen_iter_words t.frozen (fun _ ~soff ~len ~voff ->
      out := (Array.sub t.frozen soff len, value_array t voff) :: !out);
  List.rev !out

(* Freeze a (word, posting) table, words already in lexicographic
   order. Small Raw lists inline into the packed array; everything else
   keeps its posting in the pool. *)
let freeze t table =
  let size = ref 1 in
  let npool = ref 0 in
  let entries =
    List.map
      (fun (w, p) ->
        let n = Posting.length p in
        if Posting.layout p = Posting.Raw && n <= inline_max then begin
          size := !size + Array.length w + 2 + n;
          (w, `Inline (Posting.to_array p))
        end
        else begin
          size := !size + Array.length w + 2;
          incr npool;
          (w, `Pool p)
        end)
      table
  in
  if entries = [] then begin
    t.frozen <- frozen_empty;
    t.pool <- [||]
  end
  else begin
    let fz = Array.make !size 0 in
    let pool = Array.make !npool Posting.empty in
    fz.(0) <- List.length entries;
    let off = ref 1 and pi = ref 0 in
    List.iter
      (fun (w, v) ->
        let len = Array.length w in
        fz.(!off) <- len;
        Array.blit w 0 fz (!off + 1) len;
        let voff = !off + 1 + len in
        match v with
        | `Inline a ->
            let n = Array.length a in
            fz.(voff) <- n;
            Array.blit a 0 fz (voff + 1) n;
            off := voff + 1 + n
        | `Pool p ->
            fz.(voff) <- - (!pi + 1);
            pool.(!pi) <- p;
            incr pi;
            off := voff + 1)
      entries;
    t.frozen <- fz;
    t.pool <- pool
  end;
  t.roots <- [];
  t.sym_keys <- [||];
  t.sym_vals <- [||];
  t.sym_count <- 0

(* Rebuild the mutable trie from the frozen table — the thaw path for
   [add] after [prepare]. Rare (tests, incremental extension); queries
   never thaw. *)
let thaw t =
  if prepared t then begin
    let table = frozen_words t in
    t.frozen <- [||];
    t.pool <- [||];
    List.iter
      (fun (word, values) -> Array.iter (fun v -> insert t word v) values)
      table
  end

let add t word value =
  let k = Array.length word in
  if k = 0 then invalid_arg "Otil.add: empty word";
  if not (Mgraph.Sorted_ints.is_sorted word) then
    invalid_arg "Otil.add: word must be strictly increasing";
  thaw t;
  insert t word value;
  t.cardinal <- t.cardinal + 1

let cardinal t = t.cardinal

(* ---------- building-trie queries (pure reads) ---------- *)

(* Collect every terminal value in the subtree rooted at [n]. *)
let rec collect_subtree n acc =
  let acc = List.rev_append n.values acc in
  List.fold_left (fun acc c -> collect_subtree c acc) acc n.children

(* DFS with pruning: labels are increasing along every path, so once a
   sibling's label exceeds the next needed query symbol, no deeper word in
   that subtree can contain it. *)
let rec search query node qi acc =
  let qn = Array.length query in
  if qi >= qn then collect_subtree node acc
  else begin
    let needed = query.(qi) in
    let qi' = if node.label = needed then qi + 1 else qi in
    if qi' >= qn then collect_subtree node acc
    else
      let needed' = query.(qi') in
      List.fold_left
        (fun acc child ->
          if child.label <= needed' then search query child qi' acc else acc)
        acc node.children
  end

let inverted_contents l =
  match (l.sorted, l.items) with
  | Some a, [] -> a
  | None, items -> Mgraph.Sorted_ints.of_list items
  | Some a, items ->
      Mgraph.Sorted_ints.of_list (List.rev_append items (Array.to_list a))

(* ---------- frozen queries (directly over the word table) ---------- *)

(* Is the sorted [q.(qi ..)] a subset of fz.(off .. off+len-1)? *)
let rec word_contains fz off len q qi =
  qi >= Array.length q
  ||
  (len > 0
  &&
  let s = fz.(off) and needed = q.(qi) in
  if s = needed then word_contains fz (off + 1) (len - 1) q (qi + 1)
  else if s > needed then false
  else word_contains fz (off + 1) (len - 1) q qi)

(* Union the value lists behind several valrefs. One hit returns the
   stored list (zero-copy for pooled postings). *)
let union_valrefs t = function
  | [] -> Posting.empty
  | [ voff ] -> value_posting t voff
  | voffs ->
      let arrays = List.rev_map (value_array t) voffs in
      Posting.raw
        (List.fold_left Mgraph.Sorted_ints.union (List.hd arrays)
           (List.tl arrays))

let frozen_supersets t q =
  let hits = ref [] in
  frozen_iter_words t.frozen (fun _ ~soff ~len ~voff ->
      if word_contains t.frozen soff len q 0 then hits := voff :: !hits);
  union_valrefs t (List.rev !hits)

let frozen_with_symbol t s =
  let hits = ref [] in
  frozen_iter_words t.frozen (fun _ ~soff ~len ~voff ->
      (* symbols are ascending within a word: stop past [s] *)
      let rec has i =
        i < len
        &&
        let x = t.frozen.(soff + i) in
        x = s || (x < s && has (i + 1))
      in
      if has 0 then hits := voff :: !hits);
  union_valrefs t (List.rev !hits)

let supersets t query =
  if not (Mgraph.Sorted_ints.is_sorted query) then
    invalid_arg "Otil.supersets: query must be strictly increasing";
  if prepared t then frozen_supersets t query
  else
    let acc =
      if Array.length query = 0 then
        List.fold_left (fun acc r -> collect_subtree r acc) [] t.roots
      else
        let needed = query.(0) in
        List.fold_left
          (fun acc root ->
            if root.label <= needed then search query root 0 acc else acc)
          [] t.roots
    in
    Posting.raw (Mgraph.Sorted_ints.of_list acc)

let with_symbol t s =
  if prepared t then frozen_with_symbol t s
  else
    let i = find_slot t s in
    if i >= 0 then Posting.raw (inverted_contents t.sym_vals.(i))
    else Posting.empty

(* ---------- freeze ---------- *)

(* The (word, sorted values) table of the building trie, words in
   lexicographic order (pre-order walk with ascending siblings). *)
let building_words t =
  let out = ref [] in
  let rec walk prefix n =
    let word = n.label :: prefix in
    if n.values <> [] then
      out :=
        (Array.of_list (List.rev word), Mgraph.Sorted_ints.of_list n.values)
        :: !out;
    List.iter (walk word) n.children
  in
  List.iter (walk []) t.roots;
  List.rev !out

let prepare ?(policy = Posting.Auto) t =
  if not (prepared t) then
    freeze t
      (List.map
         (fun (w, vs) -> (w, Posting.of_array ~policy vs))
         (building_words t))

let words t = if prepared t then frozen_words t else building_words t

let posting_stats t s =
  if prepared t then begin
    frozen_iter_words t.frozen (fun _ ~soff:_ ~len:_ ~voff ->
        let v = t.frozen.(voff) in
        (* inline lists are semantically Raw and carry no payload *)
        if v >= 0 then begin
          s.Posting.raw_lists <- s.Posting.raw_lists + 1;
          s.Posting.elements <- s.Posting.elements + v
        end);
    Array.iter (Posting.count_into s) t.pool
  end

(* ---------- v1 snapshot codec (node-trie flattening) ---------- *)

let write_sorted buf write_int a =
  let n = Array.length a in
  write_int buf n;
  if n > 0 then begin
    write_int buf a.(0);
    for i = 1 to n - 1 do
      write_int buf (a.(i) - a.(i - 1) - 1)
    done
  end

(* Rebuild a node trie from a word table — gives the v1 encoder its
   canonical input when the trie is frozen. *)
let trie_of_words word_list =
  let t = create () in
  List.iter
    (fun (word, values) -> Array.iter (fun v -> insert t word v) values)
    word_list;
  t

let encode buf ~write_int t =
  let src = if prepared t then trie_of_words (frozen_words t) else t in
  write_int buf t.cardinal;
  let node_count =
    let rec count n acc = List.fold_left (fun a c -> count c a) (acc + 1) n.children in
    List.fold_left (fun a r -> count r a) 0 src.roots
  in
  write_int buf node_count;
  let rec emit n =
    List.iter emit n.children;
    write_int buf n.label;
    write_sorted buf write_int (Mgraph.Sorted_ints.of_list n.values);
    write_int buf (List.length n.children)
  in
  List.iter emit src.roots;
  write_int buf (List.length src.roots);
  (* [sym_keys] is already sorted and distinct. *)
  write_int buf src.sym_count;
  for i = 0 to src.sym_count - 1 do
    write_int buf src.sym_keys.(i);
    write_sorted buf write_int (inverted_contents src.sym_vals.(i))
  done

let decode ?(policy = Posting.Auto) src pos ~read_int =
  let fail msg = failwith ("Otil.decode: " ^ msg) in
  let read_sorted_array () =
    let len = read_int src pos in
    if len < 0 then fail "negative length";
    if len = 0 then [||]
    else begin
      let a = Array.make len (read_int src pos) in
      for i = 1 to len - 1 do
        a.(i) <- a.(i - 1) + 1 + read_int src pos
      done;
      a
    end
  in
  let read_sorted_list () =
    let len = read_int src pos in
    if len < 0 then fail "negative length";
    let rec go i prev acc =
      if i >= len then acc
      else begin
        let v = prev + 1 + read_int src pos in
        go (i + 1) v (v :: acc)
      end
    in
    if len = 0 then []
    else
      let v0 = read_int src pos in
      go 1 v0 [ v0 ]
  in
  let cardinal = read_int src pos in
  let node_count = read_int src pos in
  if cardinal < 0 || node_count < 0 then fail "negative count";
  let stack = ref [] in
  let depth = ref 0 in
  for _ = 1 to node_count do
    let label = read_int src pos in
    let values = read_sorted_list () in
    let nchildren = read_int src pos in
    if nchildren < 0 || nchildren > !depth then fail "bad child count";
    (* Popping yields the last-emitted (highest-label) child first;
       consing restores increasing label order. *)
    let children = ref [] in
    for _ = 1 to nchildren do
      match !stack with
      | c :: rest ->
          (match !children with
          | top :: _ when c.label >= top.label -> fail "children not sorted"
          | _ -> ());
          children := c :: !children;
          stack := rest;
          decr depth
      | [] -> fail "bad child count"
    done;
    stack := { label; children = !children; values } :: !stack;
    incr depth
  done;
  let root_count = read_int src pos in
  if root_count <> !depth then fail "bad root count";
  let roots = List.rev !stack in
  (match roots with
  | r0 :: rest ->
      ignore
        (List.fold_left
           (fun prev r ->
             if r.label <= prev then fail "roots not sorted";
             r.label)
           r0.label rest)
  | [] -> ());
  (* v1 also carries the per-symbol inverted lists; the frozen form
     derives them from the word table, so validate framing and drop. *)
  let symbol_count = read_int src pos in
  if symbol_count < 0 then fail "negative count";
  let last_symbol = ref min_int in
  for _ = 0 to symbol_count - 1 do
    let s = read_int src pos in
    if s <= !last_symbol then fail "symbols not sorted";
    last_symbol := s;
    ignore (read_sorted_array ())
  done;
  let t =
    {
      roots;
      sym_keys = [||];
      sym_vals = [||];
      sym_count = 0;
      cardinal;
      frozen = [||];
      pool = [||];
    }
  in
  prepare ~policy t;
  t

(* ---------- v2 snapshot codec (word table + layout-tagged postings) ---------- *)

let encode_frozen buf ~write_int ~write_posting t =
  write_int buf t.cardinal;
  if prepared t then begin
    write_int buf t.frozen.(0);
    frozen_iter_words t.frozen (fun _ ~soff ~len ~voff ->
        write_sorted buf write_int (Array.sub t.frozen soff len);
        write_posting buf (value_posting t voff))
  end
  else begin
    let table = building_words t in
    write_int buf (List.length table);
    List.iter
      (fun (w, vs) ->
        write_sorted buf write_int w;
        write_posting buf (Posting.raw vs))
      table
  end

(* Lexicographic with prefix-first — the pre-order trie walk's word
   order (polymorphic compare on arrays ranks by length first, which is
   not it). *)
let lex_compare a b =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec go i =
    if i = n then compare la lb
    else
      let c = compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let decode_frozen ?policy src pos ~read_int ~read_posting =
  ignore policy;
  let fail msg = failwith ("Otil.decode: " ^ msg) in
  let cardinal = read_int src pos in
  let k = read_int src pos in
  if cardinal < 0 || k < 0 then fail "negative count";
  let table = ref [] in
  for _ = 1 to k do
    let len = read_int src pos in
    if len <= 0 then fail "empty word";
    let w = Array.make len (read_int src pos) in
    if w.(0) < 0 then fail "negative symbol";
    for i = 1 to len - 1 do
      w.(i) <- w.(i - 1) + 1 + read_int src pos
    done;
    (match !table with
    | (prev, _) :: _ when lex_compare prev w >= 0 -> fail "words not sorted"
    | _ -> ());
    (* the stored posting keeps its frozen layout verbatim (small Raw
       lists inline — physically identical on re-encode) *)
    let p = read_posting src pos in
    if Posting.is_empty p then fail "empty value set";
    table := (w, p) :: !table
  done;
  let t =
    {
      roots = [];
      sym_keys = [||];
      sym_vals = [||];
      sym_count = 0;
      cardinal;
      frozen = [||];
      pool = [||];
    }
  in
  freeze t (List.rev !table);
  t
