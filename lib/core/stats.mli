(** Index statistics and the adaptive planner's cost model.

    Computed once per frozen index set (at build time, or lazily on
    first use for engines assembled from parts), the statistics answer
    the two questions the planner asks per query: {e how many
    candidates will a core vertex have} (cardinality estimates driving
    the core order, generalizing the paper's r1/r2 heuristic) and
    {e which index is the cheapest way to materialize the first
    vertex's candidates} (synopsis R-tree probe, attribute-list
    intersection, or a direct dominance scan — following "One Size
    Does not Fit All": signature pruning that keeps nearly everything
    costs more than the scan it was meant to replace).

    Statistics are a deterministic function of the indexes, so
    parallel and sequential builds serialize identically — the
    snapshot byte-identity contract extends to the stats section. *)

type t = {
  vertices : int;  (** data vertices *)
  triples : int;  (** retained input triples *)
  attr_lengths : int array;  (** per attribute id, |A(attr)| *)
  type_out_vertices : int array;
      (** per edge type, #vertices with ≥ 1 out-edge of that type *)
  type_in_vertices : int array;  (** … and with ≥ 1 in-edge *)
  type_out_edges : int array;  (** per edge type, total out-edges *)
  type_in_edges : int array;  (** per edge type, total in-edges *)
  deg_hist_out : int array array;
      (** per edge type, log2-bucketed histogram of per-vertex
          out-degree restricted to that type ({!hist_buckets} buckets) *)
  deg_hist_in : int array array;  (** … and in-degree *)
  distinct_signatures : int;  (** distinct vertex synopses *)
  maxima : int array;  (** {!Synopsis_index.maxima} at build time *)
}

val hist_buckets : int
(** Buckets per degree histogram (bucket [b] counts degrees in
    [2^b, 2^(b+1))], last bucket open-ended). *)

val bucket_of_degree : int -> int

val compute : Database.t -> Attribute_index.t -> Synopsis_index.t -> t
(** One pass over the adjacency ([O(E)]), the attribute index and the
    synopsis table. Works on overlay (live) engines too — accessors
    answer identically over packed and overlay forms. *)

(** {1 Cardinality estimates} *)

val estimate_vertex : t -> Query_graph.t -> int -> int
(** Estimated candidate count of a query vertex: the minimum over its
    incident structural constraints (per-edge-type vertex counts), its
    attribute-list lengths and its IRI-constraint fan-outs (per-edge-type
    average degrees). An upper-bound style estimate — each source alone
    is a sound superset, so their minimum still is. *)

val avg_degree : t -> Mgraph.Multigraph.direction -> int -> int
(** Average per-vertex neighbour count over one edge type in one
    direction, rounded up; 1 when the type is absent. *)

(** {1 Plan modes and strategies} *)

type strategy =
  | Rtree  (** synopsis R-tree probe, then attribute/IRI refinement (the paper) *)
  | Attrs  (** attribute/IRI intersection first, then a per-survivor dominance test *)
  | Scan  (** direct dominance scan over the synopsis table *)

type mode =
  | Paper  (** r1/r2 ordering + R-tree seeding — the paper's fixed plan *)
  | Adaptive  (** estimate-driven ordering + per-vertex min-cost strategy *)
  | Forced of strategy  (** estimate-driven ordering, strategy pinned *)

val strategy_slug : strategy -> string
(** ["rtree"] / ["attrs"] / ["scan"]. *)

val strategy_of_slug : string -> strategy option

val mode_to_string : mode -> string
(** ["paper"] / ["adaptive"] / ["forced:<strategy>"]. *)

val mode_of_string : string -> mode option

type choice = {
  strategy : strategy;  (** the winner *)
  fallback : bool;
      (** [Forced Attrs] on a vertex with neither attributes nor IRI
          constraints falls back to [Rtree] (nothing to intersect) *)
  cost_rtree : int;
  cost_attrs : int option;  (** [None] when the vertex has no attribute/IRI info *)
  cost_scan : int;
  est_candidates : int;  (** {!estimate_vertex} of the seed vertex *)
}

val choose : t -> Query_graph.t -> int -> choice
(** Min-cost strategy for seeding this vertex, with the estimates that
    drove the decision. Deterministic; ties break [Attrs], then
    [Rtree], then [Scan]. *)

val choice_for : t -> Query_graph.t -> int -> mode -> choice
(** {!choose} constrained by the plan mode: [Paper] pins [Rtree],
    [Forced s] pins [s] (modulo the attrs fallback), [Adaptive] is
    {!choose}. Costs are always reported. *)

type seed_report = {
  variable : string;  (** variable name of the component's seed vertex *)
  vertex : int;  (** query vertex id *)
  choice : choice;
  actual : int;  (** candidates actually materialized *)
}
(** What the matcher records per component for the profile, the flight
    recorder and the [amber_plan_strategy_total] metric. *)

(** {1 Snapshot codec} *)

exception Corrupt of string

val encode : t -> string
(** Deterministic varint serialization — the payload of the optional
    snapshot stats section. *)

val decode : string -> t
(** @raise Corrupt on malformed input. *)
