(** The sub-multigraph homomorphism search (paper Section 5,
    Algorithms 1–4).

    Matching runs per connected component of the query graph. Within a
    component the recursion walks the ordered core vertices; when a core
    vertex is assigned a data vertex, its anchored satellites are
    matched in one shot ({!MatchSatVertices}) — each satellite yields a
    {e set} of data vertices, and Lemma 2 lets the sets combine by
    Cartesian product instead of recursion. A reported solution
    therefore binds every core vertex to a single data vertex and every
    satellite to a non-empty candidate set. *)

type stats = {
  mutable index_probes : int;
      (** neighbourhood-index lookups (the paper's [QueryNeighIndex]) *)
  mutable synopsis_probes : int;
      (** synopsis (R-tree / scan) lookups — index [S] *)
  mutable attribute_probes : int;
      (** attribute inverted-list lookups — index [A] *)
  mutable candidates_scanned : int;
      (** data vertices tried as a core-vertex candidate *)
  mutable satellite_rejections : int;
      (** candidates discarded because a satellite had no match *)
  mutable solutions : int;  (** solutions emitted *)
}

val fresh_stats : unit -> stats

type ctx = {
  db : Database.t;
  attribute : Attribute_index.t;
  synopsis : Synopsis_index.t;
  neighbourhood : Neighbourhood_index.t;
  deadline : Deadline.t;
  stats : stats;
}

type solution = {
  core : (int * int) list;  (** (query vertex, data vertex), core order *)
  sats : (int * int array) list;
      (** (satellite vertex, sorted candidate data vertices) *)
}

val process_vertex : ctx -> Query_graph.t -> int -> int array option
(** Algorithm 1: candidates implied by vertex attributes and IRI
    constraints alone. [None] when the vertex has neither (no
    information, not an empty candidate set). *)

val solve_component :
  ctx ->
  Query_graph.t ->
  Decompose.plan ->
  Decompose.component ->
  emit:(solution -> [ `Continue | `Stop ]) ->
  unit
(** Algorithms 3 and 4 on one component. [emit] receives each solution;
    returning [`Stop] aborts the search (used for row limits).
    @raise Deadline.Expired when the context deadline passes. *)

val initial_candidates : ctx -> Query_graph.t -> Decompose.component -> int array
(** Candidate data vertices of the component's initial core vertex: the
    synopsis index probe refined by {!process_vertex} (Algorithm 3,
    lines 4-5). *)

val solve_component_seeded :
  ctx ->
  Query_graph.t ->
  Decompose.plan ->
  Decompose.component ->
  seeds:int array ->
  emit:(solution -> [ `Continue | `Stop ]) ->
  unit
(** {!solve_component} restricted to the given initial candidates — the
    work-partitioning primitive of the parallel engine: the seed set can
    be split across domains, and the union of the emissions over a
    partition of {!initial_candidates} equals the sequential run. *)

val count_embeddings : solution -> int
(** Number of embeddings the solution denotes: the product of its
    satellite set sizes (1 for a purely-core solution). *)
