(** The sub-multigraph homomorphism search (paper Section 5,
    Algorithms 1–4).

    Matching runs per connected component of the query graph. Within a
    component the recursion walks the ordered core vertices; when a core
    vertex is assigned a data vertex, its anchored satellites are
    matched in one shot ({!MatchSatVertices}) — each satellite yields a
    {e set} of data vertices, and Lemma 2 lets the sets combine by
    Cartesian product instead of recursion. A reported solution
    therefore binds every core vertex to a single data vertex and every
    satellite to a non-empty candidate set.

    The search is cache-accelerated on two levels: a {e query-scoped}
    {!Probe_cache.t} memoizes neighbourhood probes and [ProcessVertex]
    results that hub vertices would otherwise recompute for every
    enumerated candidate, and an {e engine-scoped} {!shared} pair of
    LRUs reuses attribute/synopsis candidate sets across queries. Both
    are optional; a context without them reproduces the uncached
    baseline (the ablation the kernels benchmark measures). *)

type stats = {
  mutable index_probes : int;
      (** neighbourhood-index lookups actually performed (the paper's
          [QueryNeighIndex]); cache hits do not count *)
  mutable synopsis_probes : int;
      (** synopsis (R-tree / scan) lookups — index [S] *)
  mutable attribute_probes : int;
      (** attribute inverted-list lookups — index [A] *)
  mutable probe_cache_hits : int;
      (** query-scoped probe-cache hits (neighbourhood probes +
          memoized [ProcessVertex] results) *)
  mutable probe_cache_misses : int;  (** … and misses *)
  mutable candidates_scanned : int;
      (** data vertices tried as a core-vertex candidate *)
  mutable satellite_rejections : int;
      (** candidates discarded because a satellite had no match *)
  mutable solutions : int;  (** solutions emitted *)
}

val fresh_stats : unit -> stats

val merge_into : into:stats -> stats -> unit
(** [merge_into ~into s] adds every counter of [s] into [into] — how the
    engine folds per-domain matcher stats into the query's aggregate
    (field-wise sums, so the merged totals are deterministic whatever
    the domain scheduling was). *)

type shared
(** Cross-query LRU caches (attribute and synopsis candidate sets),
    owned by the engine and shared — behind a mutex — by every context
    it builds, including parallel domains. Attribute entries are the
    index's resident {!Mgraph.Posting} lists (possibly compressed),
    shared zero-copy. *)

val make_shared : ?cap:int -> unit -> shared
(** [cap] bounds each LRU (default 256 entries). *)

val shared_counters : shared -> (int * int) * (int * int)
(** [((attr_hits, attr_misses), (synopsis_hits, synopsis_misses))] —
    lifetime counters of the two LRUs, mirrored into the
    [amber_engine_{attribute,synopsis}_cache_*] metrics. *)

type ctx = {
  db : Database.t;
  attribute : Attribute_index.t;
  synopsis : Synopsis_index.t;
  neighbourhood : Neighbourhood_index.t;
  deadline : Deadline.t;
  stats : stats;
  probe_cache : Probe_cache.t option;
      (** query-scoped memo; [None] disables (ablation) *)
  shared : shared option;
      (** engine-scoped LRUs; [None] disables (ablation) *)
  plan : Stats.mode;
      (** seed-strategy policy for {!initial_candidates}; the default
          [Paper] reproduces the fixed R-tree-then-refine probe *)
  model : Stats.t option;
      (** the cost model driving non-[Paper] plans; [None] forces the
          paper behaviour whatever [plan] says *)
}

val make_ctx :
  ?probe_cache:Probe_cache.t ->
  ?shared:shared ->
  ?plan:Stats.mode ->
  ?model:Stats.t ->
  db:Database.t ->
  attribute:Attribute_index.t ->
  synopsis:Synopsis_index.t ->
  neighbourhood:Neighbourhood_index.t ->
  deadline:Deadline.t ->
  stats:stats ->
  unit ->
  ctx

type solution = {
  core : (int * int) list;  (** (query vertex, data vertex), core order *)
  sats : (int * int array) list;
      (** (satellite vertex, sorted candidate data vertices) *)
}

val process_vertex : ctx -> Query_graph.t -> int -> Mgraph.Posting.t option
(** Algorithm 1: candidates implied by vertex attributes and IRI
    constraints alone, as a (possibly compressed) posting list. [None]
    when the vertex has neither (no information, not an empty candidate
    set). Memoized per query when the context carries a probe cache. *)

val solve_component :
  ctx ->
  Query_graph.t ->
  Decompose.plan ->
  Decompose.component ->
  emit:(solution -> [ `Continue | `Stop ]) ->
  unit
(** Algorithms 3 and 4 on one component. [emit] receives each solution;
    returning [`Stop] aborts the search (used for row limits).
    @raise Deadline.Expired when the context deadline passes. *)

val initial_candidates : ctx -> Query_graph.t -> Decompose.component -> int array
(** Candidate data vertices of the component's initial core vertex: the
    synopsis index probe refined by {!process_vertex} (Algorithm 3,
    lines 4-5) — or, under a non-[Paper] plan with a cost model, the
    strategy {!Stats.choice_for} picks. All three strategies
    materialize the {e same} sorted candidate set (the R-tree probe,
    the dominance scan and the attrs-then-dominance filter compute one
    intersection three ways), so plans never change answers. *)

val initial_candidates_choice :
  ctx -> Query_graph.t -> Decompose.component -> int array * Stats.seed_report option
(** {!initial_candidates} plus the recorded strategy choice (estimates,
    costs and the actual candidate count) — [None] for an empty
    component or a context without a cost model. *)

val solve_component_seeded :
  ctx ->
  Query_graph.t ->
  Decompose.plan ->
  Decompose.component ->
  seeds:int array ->
  emit:(solution -> [ `Continue | `Stop ]) ->
  unit
(** {!solve_component} restricted to the given initial candidates — the
    work-partitioning primitive of the parallel engine: the seed set can
    be split across domains, and the union of the emissions over a
    partition of {!initial_candidates} equals the sequential run. *)

val count_embeddings : solution -> int
(** Number of embeddings the solution denotes: the product of its
    satellite set sizes (1 for a purely-core solution). *)
