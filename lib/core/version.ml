let version = "0.6.0"
