(** Core/satellite decomposition and core-vertex ordering
    (paper Sections 3 and 5.3).

    A query vertex is {e core} when its paper-degree exceeds 1 (or it
    carries a self loop, which satellite processing cannot express);
    otherwise it is a {e satellite}. Components with no core vertex
    (single vertices or a lone multi-edge, the paper's [Δ(Q) = 1] case)
    promote their best-ranked vertex. Core vertices are ordered by the
    ranking functions [r1] (#satellites, decreasing) then [r2] (total
    incident edge-type count, decreasing), under the constraint that
    each vertex after the first is adjacent to an already-ordered one. *)

type strategy =
  | Paper  (** r1 then r2, the paper's heuristic *)
  | By_degree  (** order by variable-degree only (ablation) *)
  | Arbitrary  (** first-seen order (ablation baseline) *)
  | Estimate of (int -> int)
      (** cardinality-driven: order by increasing estimated candidate
          count (the adaptive planner passes
          {!Stats.estimate_vertex}), ties broken by [r2] then vertex
          id — the paper's heuristic remains the [Paper] fallback *)

type component = {
  core_order : int array;
  prior_edges : (int * (Mgraph.Multigraph.direction * int array) list) array array;
      (** per order position [i]: the earlier positions [j < i] whose
          vertex is adjacent to [core_order.(i)], paired with the
          multi-edges between them (from position [i]'s perspective) —
          precomputed so the matcher's extension step does not rescan
          the order array at every depth *)
}

type plan = {
  components : component array;
  is_core : bool array;  (** per query vertex *)
  satellites_of : int list array;  (** per core vertex, anchored satellites *)
  anchor_of : int array;  (** per satellite, its core anchor; -1 for core *)
}

val plan : ?strategy:strategy -> ?satellites:bool -> Query_graph.t -> plan
(** [satellites:false] disables the core/satellite split (every vertex
    becomes core and is matched by recursion) — the ablation baseline for
    the paper's Section 5.2 optimisation. Default [true]. *)

val r1 : Query_graph.t -> plan -> int -> int
(** Number of satellites anchored to a core vertex. *)

val r2 : Query_graph.t -> int -> int
(** Total count of edge types over all multi-edges incident on a
    vertex (variable edges, IRI constraints and self loops). *)
