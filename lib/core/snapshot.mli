(** Versioned binary index snapshots — the offline stage as an on-disk
    artifact.

    An ["AMBERIX1"] file holds the {e fully built} engine state: the
    three dictionaries (paper Table 2), the multigraph, and the three
    indexes of Section 4 — [A] (attribute inverted lists), [S] (the
    synopsis R-tree, stored structure-exact so STR packing survives a
    round trip) and [N] (both OTIL trie families, flattened post-order
    in their frozen, {!Otil.prepare}d form). Loading a snapshot is
    O(read); contrast [Rdf.Binary]'s ["AMBERDB1"] triple interchange
    format, which replays the whole multigraph transformation and index
    build on load.

    Every section is length-prefixed and CRC-32-guarded; corruption
    anywhere fails with {!Rdf.Binary.Corrupt} before any parsing uses
    the damaged bytes. The encoding is canonical — identical indexes
    serialize to identical bytes regardless of how (or on how many
    domains) they were built. *)

val magic : string
(** ["AMBERIX1"]. *)

val version : int
(** The default written format, [2]: posting lists stored layout-tagged
    in their frozen physical form (raw / Elias-Fano / partitioned
    blocks) — the attribute index as tagged {!Mgraph.Posting} codecs,
    the OTIL families through the compiled word-table codec — plus the
    build-time layout policy in the meta section. Compressed payloads
    decode straight into [Bigarray] buffers, so loading never re-expands
    a list to rebuild heap structure. *)

type contents = {
  db : Database.t;
  attribute : Attribute_index.t;
  synopsis : Synopsis_index.t;
  neighbourhood : Neighbourhood_index.t;
  layout : Mgraph.Posting.policy;
      (** posting layout policy the indexes froze under; v1 files read
          as [Auto] *)
  stats : Stats.t option;
      (** the cost-model statistics, persisted as an optional trailing
          v2 section — [None] for v1 files and for v2 files written
          before the section existed (the engine then rebuilds the
          statistics lazily, on first adaptive query) *)
}
(** The persisted engine state. Derived per-query structures (literal
    bindings, caches) are rebuilt on load. *)

val encode : Buffer.t -> contents -> unit

val to_string : contents -> string
(** [encode] into a fresh string — the canonical byte representation,
    used by tests for byte-identity comparisons. *)

val encode_v1 : Buffer.t -> contents -> unit
(** The legacy v1 encoding (plain delta-coded arrays, no layout tags);
    kept so the backward-compatible reader stays covered by tests. *)

val to_string_v1 : contents -> string

val decode : string -> contents
(** Reads both v2 and v1 files.
    @raise Rdf.Binary.Corrupt on bad magic, unsupported version, CRC
    mismatch, truncation, an unknown posting layout tag, or mutually
    inconsistent sections. *)

val write_file : string -> contents -> unit
val read_file : string -> contents

(** {1 Static validation}

    [amber fsck]: check a snapshot without serving it. *)

type fsck_report = {
  sections : (string * int) list;
      (** (section name, payload bytes), file order — every one
          CRC-verified *)
  f_vertices : int;
  f_edge_types : int;
  f_attributes : int;
  f_triples : int;
}

val fsck : string -> (fsck_report, string) result
(** Validate snapshot bytes: the frame walk (magic, version, section
    tags/lengths/CRCs), then the full decode — delta-coded id-set
    monotonicity, dictionary id ranges and cross-section consistency are
    all proven by construction there — and finally
    {!Rtree.check_invariants} on the synopsis tree. [Error] carries the
    first violation; nothing is mutated and no engine state escapes. *)

val fsck_file : string -> (fsck_report, string) result
(** {!fsck} over a file's bytes; I/O errors become [Error]. *)

val pp_fsck_report : Format.formatter -> fsck_report -> unit

val sniff_file : string -> bool
(** Does the file start with the snapshot magic? Never raises — [false]
    for unreadable or short files. Used by the CLI to dispatch between
    triple files and snapshots. *)
