(** Per-query profile report — EXPLAIN ANALYZE for the engine.

    Produced by {!Engine.query_profiled}: the phase tree of the run
    (parse → decompose → candidates → match → enumerate), the chosen
    core order, per-query-vertex candidate-set sizes before and after
    synopsis/attribute pruning, and the matcher's search counters. This
    is the observable form of the paper's Section 7.2 instrumentation:
    index pruning power and where the time goes, per query. *)

type vertex_report = {
  variable : string;
  core : bool;  (** core vertex ([false] = satellite) *)
  structural : int;
      (** candidate-set size from the synopsis index alone (index [S]) *)
  refined : int;
      (** after intersecting attribute / IRI-constraint candidates
          (indexes [A] and [N]) — the set the matcher actually scans *)
}

type t = {
  core_order : string list list;
      (** matching order of the core vertices, per component *)
  vertices : vertex_report list;  (** every query vertex, vertex order *)
  stats : Matcher.stats;  (** the run's search counters *)
  span : Obs.Span.t;  (** phase tree with wall-clock durations *)
  rows : int;
  truncated : bool;
  analysis : Amber_analysis.report option;
      (** the static analyzer's report ([None] when the run was profiled
          with [?analyze:false]); an unsat proof here means the run was
          short-circuited to the empty answer *)
  plan_mode : string;
      (** the plan policy the run executed under
          ({!Stats.mode_to_string}: ["paper"], ["adaptive"] or
          ["forced:<strategy>"]) *)
  plan_seeds : Stats.seed_report list;
      (** per-component seed-strategy decisions (choice, cost estimates
          and the actual candidate count) — empty under the paper plan,
          which carries no cost model *)
  rewrites : Amber_rewrite.step list;
      (** rewrite steps applied before decomposition, in application
          order — empty when the run passed [?rewrite:false] or the
          rewriter found nothing to simplify *)
}

val pp : Format.formatter -> t -> unit
(** Human-readable report: phase tree, core order, candidate table,
    matcher counters. *)

val to_json : t -> string
(** Machine-readable form, embedded in endpoint responses
    ([?profile=1]) and benchmark JSON. *)

val json_string : string -> string
(** JSON string literal (quoted, escaped) — shared by the other
    hand-rolled JSON emitters of this layer ({!Engine.explanation_to_json}). *)

val plan_to_json : plan_mode:string -> plan_seeds:Stats.seed_report list -> string
(** The [{"mode":…,"seeds":[…]}] object embedded by {!to_json}. *)
