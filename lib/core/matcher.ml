type stats = {
  mutable index_probes : int;
  mutable synopsis_probes : int;
  mutable attribute_probes : int;
  mutable candidates_scanned : int;
  mutable satellite_rejections : int;
  mutable solutions : int;
}

let fresh_stats () =
  {
    index_probes = 0;
    synopsis_probes = 0;
    attribute_probes = 0;
    candidates_scanned = 0;
    satellite_rejections = 0;
    solutions = 0;
  }

type ctx = {
  db : Database.t;
  attribute : Attribute_index.t;
  synopsis : Synopsis_index.t;
  neighbourhood : Neighbourhood_index.t;
  deadline : Deadline.t;
  stats : stats;
}

type solution = {
  core : (int * int) list;
  sats : (int * int array) list;
}

exception Stop

(* Candidates adjacent to the already-matched data vertex [v], seen from
   query vertex [u]'s perspective: [dir = Out] means the query edge
   leaves [u], so candidates must have an edge towards [v]. *)
let adjacent_candidates ctx v (dir, types) =
  ctx.stats.index_probes <- ctx.stats.index_probes + 1;
  let probe =
    match dir with
    | Mgraph.Multigraph.Out -> Mgraph.Multigraph.In
    | Mgraph.Multigraph.In -> Mgraph.Multigraph.Out
  in
  Neighbourhood_index.neighbours ctx.neighbourhood v probe types

let inter_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Mgraph.Sorted_ints.inter a b)

let process_vertex ctx (q : Query_graph.t) u =
  let from_attrs =
    if Array.length q.attrs.(u) > 0 then begin
      ctx.stats.attribute_probes <- ctx.stats.attribute_probes + 1;
      Some (Attribute_index.candidates ctx.attribute q.attrs.(u))
    end
    else None
  in
  let from_iris =
    List.fold_left
      (fun acc (c : Query_graph.iri_constraint) ->
        inter_opt acc
          (Some (adjacent_candidates ctx c.data_vertex (c.dir, c.types))))
      None q.iris.(u)
  in
  inter_opt from_attrs from_iris

(* Self-loop filter: the candidate must carry a data loop with all the
   query loop's types. *)
let satisfies_self_loop ctx (q : Query_graph.t) u v =
  let loop = q.self_loops.(u) in
  Array.length loop = 0
  || Mgraph.Sorted_ints.subset loop
       (Mgraph.Multigraph.edge_types_between (Database.graph ctx.db) v v)

(* Candidates for any query vertex adjacent to a matched one. *)
let constrained_candidates ctx q u matched_pairs =
  (* [matched_pairs] = (query vertex, data vertex) for every matched core
     vertex adjacent to [u]; the result intersects one neighbourhood
     probe per directed multi-edge. *)
  List.fold_left
    (fun acc (un, vn) ->
      List.fold_left
        (fun acc (dir, types) ->
          Deadline.check ctx.deadline;
          inter_opt acc (Some (adjacent_candidates ctx vn (dir, types))))
        acc
        (Query_graph.multi_edges_between q u un))
    None matched_pairs

(* Algorithm 2: match every satellite anchored to core vertex [uc],
   whose candidate data vertex is [vc]. [None] = no solution. *)
let match_satellites ctx q (plan : Decompose.plan) uc vc =
  let rec loop acc = function
    | [] -> Some acc
    | us :: rest -> (
        Deadline.check ctx.deadline;
        let structural =
          List.fold_left
            (fun acc (dir, types) ->
              inter_opt acc (Some (adjacent_candidates ctx vc (dir, types))))
            None
            (Query_graph.multi_edges_between q us uc)
        in
        let refined = inter_opt structural (process_vertex ctx q us) in
        match refined with
        | None -> None (* a satellite always has structure; defensive *)
        | Some [||] -> None
        | Some cands -> loop ((us, cands) :: acc) rest)
  in
  loop [] plan.satellites_of.(uc)

(* Saturating product: satellite sets multiply fast enough to overflow a
   63-bit int on star queries over hubs. *)
let count_embeddings sol =
  List.fold_left
    (fun n (_, set) ->
      let k = Array.length set in
      if n = 0 || k = 0 then 0
      else if n > max_int / k then max_int
      else n * k)
    1 sol.sats

let initial_candidates ctx (q : Query_graph.t) (comp : Decompose.component) =
  match Array.length comp.core_order with
  | 0 -> [||]
  | _ ->
      let u = comp.core_order.(0) in
      ctx.stats.synopsis_probes <- ctx.stats.synopsis_probes + 1;
      let structural =
        Synopsis_index.candidates_of_signature ctx.synopsis
          (Query_graph.signature q u)
      in
      (match inter_opt (Some structural) (process_vertex ctx q u) with
      | Some c -> c
      | None -> [||])

let solve_component_seeded ctx (q : Query_graph.t) (plan : Decompose.plan)
    (comp : Decompose.component) ~seeds ~emit =
  let order = comp.core_order in
  let k = Array.length order in
  if k = 0 then ()
  else begin
    let assigned = Array.make k (-1) in
    (* Matched (query, data) pairs among the first [depth] core
       vertices that are adjacent to [u]. *)
    let matched_neighbours depth u =
      let pairs = ref [] in
      for i = depth - 1 downto 0 do
        let un = order.(i) in
        if Query_graph.multi_edges_between q u un <> [] then
          pairs := (un, assigned.(i)) :: !pairs
      done;
      !pairs
    in
    let rec extend depth sats_acc =
      Deadline.check ctx.deadline;
      if depth = k then begin
        ctx.stats.solutions <- ctx.stats.solutions + 1;
        let core =
          List.init k (fun i -> (order.(i), assigned.(i)))
        in
        match emit { core; sats = List.rev sats_acc } with
        | `Continue -> ()
        | `Stop -> raise Stop
      end
      else begin
        let u = order.(depth) in
        let candidates =
          if depth = 0 then seeds
          else begin
            let structural =
              match constrained_candidates ctx q u (matched_neighbours depth u) with
              | Some _ as c -> c
              | None ->
                  (* Core subgraphs are connected, so this only happens
                     for promoted singletons or defensive fallback: use S. *)
                  ctx.stats.synopsis_probes <- ctx.stats.synopsis_probes + 1;
                  Some
                    (Synopsis_index.candidates_of_signature ctx.synopsis
                       (Query_graph.signature q u))
            in
            match inter_opt structural (process_vertex ctx q u) with
            | Some c -> c
            | None -> [||]
          end
        in
        Array.iter
          (fun v ->
            Deadline.check ctx.deadline;
            ctx.stats.candidates_scanned <- ctx.stats.candidates_scanned + 1;
            if satisfies_self_loop ctx q u v then begin
              match match_satellites ctx q plan u v with
              | None ->
                  ctx.stats.satellite_rejections <- ctx.stats.satellite_rejections + 1
              | Some sats ->
                  assigned.(depth) <- v;
                  extend (depth + 1) (List.rev_append sats sats_acc);
                  assigned.(depth) <- -1
            end)
          candidates
      end
    in
    try extend 0 [] with Stop -> ()
  end

let solve_component ctx q plan comp ~emit =
  solve_component_seeded ctx q plan comp
    ~seeds:(initial_candidates ctx q comp)
    ~emit
