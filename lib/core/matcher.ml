type stats = {
  mutable index_probes : int;
  mutable synopsis_probes : int;
  mutable attribute_probes : int;
  mutable probe_cache_hits : int;
  mutable probe_cache_misses : int;
  mutable candidates_scanned : int;
  mutable satellite_rejections : int;
  mutable solutions : int;
}

let fresh_stats () =
  {
    index_probes = 0;
    synopsis_probes = 0;
    attribute_probes = 0;
    probe_cache_hits = 0;
    probe_cache_misses = 0;
    candidates_scanned = 0;
    satellite_rejections = 0;
    solutions = 0;
  }

(* Field-wise sum — commutative, so merging per-domain stats in any
   order yields the same aggregate. *)
let merge_into ~into s =
  into.index_probes <- into.index_probes + s.index_probes;
  into.synopsis_probes <- into.synopsis_probes + s.synopsis_probes;
  into.attribute_probes <- into.attribute_probes + s.attribute_probes;
  into.probe_cache_hits <- into.probe_cache_hits + s.probe_cache_hits;
  into.probe_cache_misses <- into.probe_cache_misses + s.probe_cache_misses;
  into.candidates_scanned <- into.candidates_scanned + s.candidates_scanned;
  into.satellite_rejections <- into.satellite_rejections + s.satellite_rejections;
  into.solutions <- into.solutions + s.solutions

(* Cross-query caches owned by the engine: candidate sets from the
   attribute index (keyed by the query vertex's attribute set) and from
   the synopsis index (keyed by the query synopsis vector). Shared by
   every context built from one engine — including parallel domains —
   so access is serialized by [lock]. *)
type shared = {
  attr_cache : Mgraph.Posting.t Lru.t;
  syn_cache : int array Lru.t;
  lock : Mutex.t;
}

let make_shared ?(cap = 256) () =
  {
    attr_cache = Lru.create ~cap;
    syn_cache = Lru.create ~cap;
    lock = Mutex.create ();
  }

let shared_counters s =
  Mutex.lock s.lock;
  let r =
    ( (Lru.hits s.attr_cache, Lru.misses s.attr_cache),
      (Lru.hits s.syn_cache, Lru.misses s.syn_cache) )
  in
  Mutex.unlock s.lock;
  r

type ctx = {
  db : Database.t;
  attribute : Attribute_index.t;
  synopsis : Synopsis_index.t;
  neighbourhood : Neighbourhood_index.t;
  deadline : Deadline.t;
  stats : stats;
  probe_cache : Probe_cache.t option;  (* query-scoped; [None] disables *)
  shared : shared option;  (* engine-scoped; [None] disables *)
  plan : Stats.mode;  (* seed-strategy selection policy *)
  model : Stats.t option;  (* cost model; [None] = paper behaviour *)
}

let make_ctx ?probe_cache ?shared ?(plan = Stats.Paper) ?model ~db ~attribute
    ~synopsis ~neighbourhood ~deadline ~stats () =
  { db; attribute; synopsis; neighbourhood; deadline; stats; probe_cache;
    shared; plan; model }

type solution = {
  core : (int * int) list;
  sats : (int * int array) list;
}

exception Stop

(* Candidates adjacent to the already-matched data vertex [v], seen from
   query vertex [u]'s perspective: [dir = Out] means the query edge
   leaves [u], so candidates must have an edge towards [v]. Memoized per
   query: hub vertices re-issue the same probe for every enumerated
   candidate. *)
let adjacent_candidates ctx v (dir, types) =
  let probe =
    match dir with
    | Mgraph.Multigraph.Out -> Mgraph.Multigraph.In
    | Mgraph.Multigraph.In -> Mgraph.Multigraph.Out
  in
  match ctx.probe_cache with
  | None ->
      ctx.stats.index_probes <- ctx.stats.index_probes + 1;
      Neighbourhood_index.neighbours ctx.neighbourhood v probe types
  | Some cache -> (
      match Probe_cache.find_probe cache v probe types with
      | Some r ->
          ctx.stats.probe_cache_hits <- ctx.stats.probe_cache_hits + 1;
          r
      | None ->
          ctx.stats.probe_cache_misses <- ctx.stats.probe_cache_misses + 1;
          ctx.stats.index_probes <- ctx.stats.index_probes + 1;
          let r = Neighbourhood_index.neighbours ctx.neighbourhood v probe types in
          Probe_cache.add_probe cache v probe types r;
          r)

let inter_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Mgraph.Posting.inter a b)

let attribute_candidates ctx attrs =
  let probe () =
    ctx.stats.attribute_probes <- ctx.stats.attribute_probes + 1;
    Attribute_index.candidates ctx.attribute attrs
  in
  match ctx.shared with
  | None -> probe ()
  | Some s ->
      Mutex.lock s.lock;
      let cached = Lru.find s.attr_cache attrs in
      Mutex.unlock s.lock;
      (match cached with
      | Some r -> r
      | None ->
          let r = probe () in
          Mutex.lock s.lock;
          Lru.add s.attr_cache attrs r;
          Mutex.unlock s.lock;
          r)

(* Synopsis probe through the cross-query LRU, keyed by the query
   synopsis vector. *)
let synopsis_candidates ctx q u =
  let syn = Mgraph.Synopsis.of_signature (Query_graph.signature q u) in
  let probe () =
    ctx.stats.synopsis_probes <- ctx.stats.synopsis_probes + 1;
    Synopsis_index.candidates ctx.synopsis syn
  in
  match ctx.shared with
  | None -> probe ()
  | Some s ->
      Mutex.lock s.lock;
      let cached = Lru.find s.syn_cache syn in
      Mutex.unlock s.lock;
      (match cached with
      | Some r -> r
      | None ->
          let r = probe () in
          Mutex.lock s.lock;
          Lru.add s.syn_cache syn r;
          Mutex.unlock s.lock;
          r)

(* Algorithm 1, uncached: candidates implied by the vertex's attributes
   and IRI constraints. *)
let process_vertex_raw ctx (q : Query_graph.t) u =
  let from_attrs =
    if Array.length q.attrs.(u) > 0 then
      Some (attribute_candidates ctx q.attrs.(u))
    else None
  in
  let from_iris =
    List.fold_left
      (fun acc (c : Query_graph.iri_constraint) ->
        inter_opt acc
          (Some (adjacent_candidates ctx c.data_vertex (c.dir, c.types))))
      None q.iris.(u)
  in
  inter_opt from_attrs from_iris

(* The result depends only on the query vertex, yet the satellite loop
   recomputes it for every enumerated candidate of the anchor — memoize
   per query. *)
let process_vertex ctx (q : Query_graph.t) u =
  match ctx.probe_cache with
  | None -> process_vertex_raw ctx q u
  | Some cache -> (
      match Probe_cache.find_vertex cache u with
      | Some r ->
          ctx.stats.probe_cache_hits <- ctx.stats.probe_cache_hits + 1;
          r
      | None ->
          ctx.stats.probe_cache_misses <- ctx.stats.probe_cache_misses + 1;
          let r = process_vertex_raw ctx q u in
          Probe_cache.add_vertex cache u r;
          r)

(* Self-loop filter: the candidate must carry a data loop with all the
   query loop's types. *)
let satisfies_self_loop ctx (q : Query_graph.t) u v =
  let loop = q.self_loops.(u) in
  Array.length loop = 0
  || Mgraph.Sorted_ints.subset loop
       (Mgraph.Multigraph.edge_types_between (Database.graph ctx.db) v v)

(* Candidates for a query vertex adjacent to already-matched ones.
   [matched_pairs] = (data vertex, multi-edges) for every matched core
   vertex adjacent to it; the result intersects one neighbourhood probe
   per directed multi-edge. The deadline is polled by the per-candidate
   loop around this function, not per probe. *)
let constrained_candidates ctx matched_pairs =
  List.fold_left
    (fun acc (vn, edges) ->
      List.fold_left
        (fun acc (dir, types) ->
          inter_opt acc (Some (adjacent_candidates ctx vn (dir, types))))
        acc edges)
    None matched_pairs

(* Algorithm 2: match every satellite anchored to core vertex [uc],
   whose candidate data vertex is [vc]. [None] = no solution. *)
let match_satellites ctx q (plan : Decompose.plan) uc vc =
  let rec loop acc = function
    | [] -> Some acc
    | us :: rest -> (
        let structural =
          List.fold_left
            (fun acc (dir, types) ->
              inter_opt acc (Some (adjacent_candidates ctx vc (dir, types))))
            None
            (Query_graph.multi_edges_between q us uc)
        in
        let refined = inter_opt structural (process_vertex ctx q us) in
        match refined with
        | None -> None (* a satellite always has structure; defensive *)
        | Some cands when Mgraph.Posting.is_empty cands -> None
        | Some cands -> loop ((us, Mgraph.Posting.to_array cands) :: acc) rest)
  in
  loop [] plan.satellites_of.(uc)

(* Saturating product: satellite sets multiply fast enough to overflow a
   63-bit int on star queries over hubs. *)
let count_embeddings sol =
  List.fold_left
    (fun n (_, set) ->
      let k = Array.length set in
      if n = 0 || k = 0 then 0
      else if n > max_int / k then max_int
      else n * k)
    1 sol.sats

(* Direct dominance scan over the synopsis table — the same candidate
   set an R-tree probe yields, materialized by one Lemma-1 test per
   data vertex instead of a tree descent. Cheaper when the query
   synopsis prunes almost nothing. Shares the cross-query LRU with the
   R-tree path (same key, same value). *)
let scan_candidates ctx (q : Query_graph.t) u =
  let syn = Mgraph.Synopsis.of_signature (Query_graph.signature q u) in
  let probe () =
    ctx.stats.synopsis_probes <- ctx.stats.synopsis_probes + 1;
    let n = Mgraph.Multigraph.vertex_count (Database.graph ctx.db) in
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if
        Mgraph.Synopsis.dominates
          ~data:(Synopsis_index.vertex_synopsis ctx.synopsis v)
          ~query:syn
      then acc := v :: !acc
    done;
    Array.of_list !acc
  in
  match ctx.shared with
  | None -> probe ()
  | Some s ->
      Mutex.lock s.lock;
      let cached = Lru.find s.syn_cache syn in
      Mutex.unlock s.lock;
      (match cached with
      | Some r -> r
      | None ->
          let r = probe () in
          Mutex.lock s.lock;
          Lru.add s.syn_cache syn r;
          Mutex.unlock s.lock;
          r)

(* Attribute-first seeding: intersect the attribute/IRI candidate lists,
   then apply the Lemma-1 dominance test per survivor — the synopsis
   set is never materialized. [None] when the vertex carries neither
   attributes nor IRI constraints (nothing to intersect). *)
let attrs_candidates ctx (q : Query_graph.t) u =
  match process_vertex ctx q u with
  | None -> None
  | Some pv ->
      ctx.stats.synopsis_probes <- ctx.stats.synopsis_probes + 1;
      let syn = Mgraph.Synopsis.of_signature (Query_graph.signature q u) in
      let acc = ref [] in
      Mgraph.Posting.iter
        (fun v ->
          if
            Mgraph.Synopsis.dominates
              ~data:(Synopsis_index.vertex_synopsis ctx.synopsis v)
              ~query:syn
          then acc := v :: !acc)
        pv;
      Some (Array.of_list (List.rev !acc))

let initial_candidates_choice ctx (q : Query_graph.t)
    (comp : Decompose.component) =
  match Array.length comp.core_order with
  | 0 -> ([||], None)
  | _ -> (
      let u = comp.core_order.(0) in
      let rtree_seeds () =
        let structural = Mgraph.Posting.raw (synopsis_candidates ctx q u) in
        match inter_opt (Some structural) (process_vertex ctx q u) with
        | Some c -> Mgraph.Posting.to_array c
        | None -> [||]
      in
      match ctx.model with
      | None -> (rtree_seeds (), None)
      | Some st ->
          let choice = Stats.choice_for st q u ctx.plan in
          let seeds, choice =
            match choice.Stats.strategy with
            | Stats.Rtree -> (rtree_seeds (), choice)
            | Stats.Scan -> (
                let structural = Mgraph.Posting.raw (scan_candidates ctx q u) in
                match inter_opt (Some structural) (process_vertex ctx q u) with
                | Some c -> (Mgraph.Posting.to_array c, choice)
                | None -> ([||], choice))
            | Stats.Attrs -> (
                match attrs_candidates ctx q u with
                | Some seeds -> (seeds, choice)
                | None ->
                    ( rtree_seeds (),
                      { choice with Stats.strategy = Stats.Rtree; fallback = true }
                    ))
          in
          let report =
            {
              Stats.variable = q.var_names.(u);
              vertex = u;
              choice;
              actual = Array.length seeds;
            }
          in
          (seeds, Some report))

let initial_candidates ctx q comp = fst (initial_candidates_choice ctx q comp)

let solve_component_seeded ctx (q : Query_graph.t) (plan : Decompose.plan)
    (comp : Decompose.component) ~seeds ~emit =
  let order = comp.core_order in
  let k = Array.length order in
  if k = 0 then ()
  else begin
    let assigned = Array.make k (-1) in
    (* Matched (data vertex, multi-edges) pairs among the first [depth]
       core vertices adjacent to position [depth] — adjacency and edges
       were precomputed by [Decompose.plan]. *)
    let matched_neighbours depth =
      Array.fold_left
        (fun acc (j, edges) -> (assigned.(j), edges) :: acc)
        []
        comp.prior_edges.(depth)
    in
    let rec extend depth sats_acc =
      Deadline.check ctx.deadline;
      if depth = k then begin
        ctx.stats.solutions <- ctx.stats.solutions + 1;
        let core =
          List.init k (fun i -> (order.(i), assigned.(i)))
        in
        match emit { core; sats = List.rev sats_acc } with
        | `Continue -> ()
        | `Stop -> raise Stop
      end
      else begin
        let u = order.(depth) in
        let candidates =
          if depth = 0 then Mgraph.Posting.raw seeds
          else begin
            let structural =
              match constrained_candidates ctx (matched_neighbours depth) with
              | Some _ as c -> c
              | None ->
                  (* Core subgraphs are connected, so this only happens
                     for promoted singletons or defensive fallback: use S. *)
                  Some (Mgraph.Posting.raw (synopsis_candidates ctx q u))
            in
            match inter_opt structural (process_vertex ctx q u) with
            | Some c -> c
            | None -> Mgraph.Posting.empty
          end
        in
        Mgraph.Posting.iter
          (fun v ->
            Deadline.check ctx.deadline;
            ctx.stats.candidates_scanned <- ctx.stats.candidates_scanned + 1;
            if satisfies_self_loop ctx q u v then begin
              match match_satellites ctx q plan u v with
              | None ->
                  ctx.stats.satellite_rejections <- ctx.stats.satellite_rejections + 1
              | Some sats ->
                  assigned.(depth) <- v;
                  extend (depth + 1) (List.rev_append sats sats_acc);
                  assigned.(depth) <- -1
            end)
          candidates
      end
    in
    try extend 0 [] with Stop -> ()
  end

let solve_component ctx q plan comp ~emit =
  solve_component_seeded ctx q plan comp
    ~seeds:(initial_candidates ctx q comp)
    ~emit
