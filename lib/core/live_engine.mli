(** Live engine: MVCC epochs over a frozen base plus a {!Delta} write
    store, with snapshot-isolated readers and background compaction.

    The mutable state is one atomic reference to an immutable {e epoch}:
    the current generation's frozen base engine, the cumulative delta,
    and the overlay engine compiled from them. Readers {!pin} the
    current epoch with a single atomic read and keep querying it for as
    long as they like — a pinned epoch is fully immutable (its own
    matcher caches included), so a query started before a write never
    observes that write, on any number of domains. Writers serialize on
    an internal mutex, recompile the overlay, and publish a fresh epoch
    with one atomic store; {!compact} merges the delta into a brand-new
    generation (full rebuild at the base's layout policy) and swaps it
    in the same way. Readers are never paused.

    With a live {e directory}, every publish also persists: the base
    generation as an [AMBERIX1] snapshot ([gen-<N>.amberix]) plus a
    CRC-framed [live.manifest] recording generation, version and the
    delta triples — each written to a temp file and atomically renamed,
    the previous generation's snapshot retained until the next
    compaction lands. A process killed mid-compaction therefore always
    restarts from a loadable state. *)

type t

type epoch

val generation : epoch -> int
(** Compaction generation (starts at 0, bumped by {!compact}). *)

val version : epoch -> int
(** Publish sequence number (bumped by every {!update} and {!compact});
    strictly monotone over a [t]'s lifetime. *)

val engine : epoch -> Engine.t
(** The queryable engine of this epoch — the frozen base when the delta
    is empty, otherwise the compiled overlay. Immutable; safe to query
    from any number of domains while writes land. *)

val base : epoch -> Engine.t
val delta : epoch -> Delta.t

val pin : t -> epoch
(** The current epoch — one atomic read, never blocks, never sees a
    torn state. *)

val dir : t -> string option

val of_engine : ?dir:string -> Engine.t -> t
(** Wrap a frozen engine as generation 0 with an empty delta. With
    [dir], initialise the live directory: write [gen-0.amberix] and the
    manifest (creating the directory if needed). *)

val open_dir : string -> t
(** Reopen a live directory: decode the manifest, load the generation
    snapshot it names, replay the delta.
    @raise Rdf.Binary.Corrupt on a damaged manifest (any single-byte
    corruption is caught by the CRC frame).
    @raise Sys_error when the directory or files are missing. *)

val update :
  t -> adds:Rdf.Triple.t list -> dels:Rdf.Triple.t list -> epoch
(** Apply one write batch (deletions first, then insertions), recompile
    the overlay, persist the manifest (when durable), and publish the
    new epoch — returned for convenience. Serialized with other writers;
    in-flight readers keep their pinned epochs. Records an [Update]
    flight-recorder event and refreshes the delta gauges. *)

val compact : ?synopsis_mode:Synopsis_index.mode -> ?domains:int -> t -> epoch
(** Merge the delta into a fresh generation: rebuild the full engine
    from the merged world ([domains] shards the index build), snapshot
    it, atomically swap epochs, and prune generation files older than
    the previous one. The previous generation's snapshot survives until
    the {e next} compaction, so an interrupted compaction never loses a
    loadable base. Records a [Compaction] flight event and observes the
    pause in [amber_compaction_seconds]. *)
