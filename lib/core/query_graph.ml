type iri_constraint = {
  dir : Mgraph.Multigraph.direction;
  types : int array;
  data_vertex : int;
}

type open_object = { subject : int; pred : string; obj_var : string }

type t = {
  var_names : string array;
  graph : Mgraph.Multigraph.t;
  attrs : int array array;
  iris : iri_constraint list array;
  self_loops : int array array;
  opens : open_object list;
}

type result =
  | Query of t
  | Unsatisfiable of { proof : Amber_analysis.proof; pattern : int }

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

exception Unsat of Amber_analysis.proof

let unsat proof = raise (Unsat proof)

(* Count how many times each variable occurs across all positions. *)
let occurrence_counts patterns =
  let counts = Hashtbl.create 16 in
  let bump = function
    | Sparql.Ast.Var v ->
        Hashtbl.replace counts v
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
    | Sparql.Ast.Iri _ | Sparql.Ast.Lit _ -> ()
  in
  List.iter
    (fun { Sparql.Ast.subject; predicate; obj } ->
      bump subject;
      bump predicate;
      bump obj)
    patterns;
  counts

let subject_vars patterns =
  let set = Hashtbl.create 16 in
  List.iter
    (fun { Sparql.Ast.subject; _ } ->
      match subject with
      | Sparql.Ast.Var v -> Hashtbl.replace set v ()
      | Sparql.Ast.Iri _ | Sparql.Ast.Lit _ -> ())
    patterns;
  set

let build ?(open_objects = false) db (query : Sparql.Ast.t) =
  let patterns = query.where in
  let counts = occurrence_counts patterns in
  let subjects = subject_vars patterns in
  (* A variable object is lifted out of the graph when the extension is
     on and the variable has no other occurrence to join on. *)
  let liftable v subj =
    open_objects
    && (not (String.equal v subj))
    && Hashtbl.find_opt counts v = Some 1
    && not (Hashtbl.mem subjects v)
  in
  let var_ids = Hashtbl.create 16 in
  let var_names = ref [] in
  let vertex_of_var v =
    match Hashtbl.find_opt var_ids v with
    | Some id -> id
    | None ->
        let id = Hashtbl.length var_ids in
        Hashtbl.add var_ids v id;
        var_names := v :: !var_names;
        id
  in
  let builder = Mgraph.Multigraph.Builder.create () in
  let attrs_tbl : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  (* (u, data_vertex, dir) -> accumulated edge types *)
  let iri_tbl : (int * int * Mgraph.Multigraph.direction, int list) Hashtbl.t =
    Hashtbl.create 8
  in
  let loops_tbl : (int, int list) Hashtbl.t = Hashtbl.create 4 in
  let opens = ref [] in
  let push tbl key v =
    let old = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    if not (List.mem v old) then Hashtbl.replace tbl key (v :: old)
  in
  let data_vertex_of ~position iri =
    match Database.vertex_of_term db (Rdf.Term.iri iri) with
    | Some v -> v
    | None -> unsat (Amber_analysis.Unknown_iri { iri; position })
  in
  (* The two unknown-predicate flavours differ in strength: a predicate
     absent from {e both} dictionaries occurs in no triple at all, while
     one known only as an attribute predicate merely never links two
     resources (the engine still refuses the edge, but under full SPARQL
     semantics a variable object could bind its literals — the analyzer
     downgrades that proof in unsound contexts). *)
  let edge_type_of pred =
    match Database.edge_type_of_iri db pred with
    | Some e -> e
    | None ->
        if Database.attribute_predicate_exists db pred then
          unsat (Amber_analysis.Predicate_never_links { iri = pred })
        else unsat (Amber_analysis.Unknown_predicate { iri = pred })
  in
  let process { Sparql.Ast.subject; predicate; obj } =
    let pred =
      match predicate with
      | Sparql.Ast.Iri p -> p
      | Sparql.Ast.Var v -> unsupported "variable predicate ?%s" v
      | Sparql.Ast.Lit _ -> unsupported "literal in predicate position"
    in
    match (subject, obj) with
    | Sparql.Ast.Lit _, _ -> unsupported "literal in subject position"
    | Sparql.Ast.Var s, Sparql.Ast.Var o when String.equal s o ->
        let u = vertex_of_var s in
        Mgraph.Multigraph.Builder.add_vertex builder u;
        push loops_tbl u (edge_type_of pred)
    | Sparql.Ast.Var s, Sparql.Ast.Var o ->
        if liftable o s then begin
          let u = vertex_of_var s in
          Mgraph.Multigraph.Builder.add_vertex builder u;
          opens := { subject = u; pred; obj_var = o } :: !opens
        end
        else begin
          let us = vertex_of_var s and uo = vertex_of_var o in
          Mgraph.Multigraph.Builder.add_edge builder us (edge_type_of pred) uo
        end
    | Sparql.Ast.Var s, Sparql.Ast.Iri oi ->
        let u = vertex_of_var s in
        Mgraph.Multigraph.Builder.add_vertex builder u;
        push iri_tbl
          (u, data_vertex_of ~position:`Object oi, Mgraph.Multigraph.Out)
          (edge_type_of pred)
    | Sparql.Ast.Var s, Sparql.Ast.Lit lit ->
        let u = vertex_of_var s in
        Mgraph.Multigraph.Builder.add_vertex builder u;
        (match Database.attribute_of db ~pred ~lit with
        | Some a -> push attrs_tbl u a
        | None ->
            if
              Database.edge_type_of_iri db pred = None
              && not (Database.attribute_predicate_exists db pred)
            then unsat (Amber_analysis.Unknown_predicate { iri = pred })
            else
              unsat
                (Amber_analysis.Unknown_literal
                   {
                     pred;
                     lit = Rdf.Term.to_string (Rdf.Term.Literal lit);
                   }))
    | Sparql.Ast.Iri si, Sparql.Ast.Var o ->
        let u = vertex_of_var o in
        Mgraph.Multigraph.Builder.add_vertex builder u;
        push iri_tbl
          (u, data_vertex_of ~position:`Subject si, Mgraph.Multigraph.In)
          (edge_type_of pred)
    | Sparql.Ast.Iri si, Sparql.Ast.Iri oi ->
        let vs = data_vertex_of ~position:`Subject si
        and vo = data_vertex_of ~position:`Object oi in
        if not (Mgraph.Multigraph.has_edge (Database.graph db) vs (edge_type_of pred) vo)
        then
          unsat
            (Amber_analysis.Ground_pattern_absent
               { subject = si; pred; obj = "<" ^ oi ^ ">" })
    | Sparql.Ast.Iri si, Sparql.Ast.Lit lit -> (
        let vs = data_vertex_of ~position:`Subject si in
        match Database.attribute_of db ~pred ~lit with
        | Some a
          when Mgraph.Sorted_ints.mem
                 (Mgraph.Multigraph.attributes (Database.graph db) vs)
                 a ->
            ()
        | Some _ | None ->
            unsat
              (Amber_analysis.Ground_pattern_absent
                 {
                   subject = si;
                   pred;
                   obj = Rdf.Term.to_string (Rdf.Term.Literal lit);
                 }))
  in
  let current = ref 0 in
  let process_all () =
    List.iteri
      (fun i pat ->
        current := i;
        process pat)
      patterns
  in
  match process_all () with
  | exception Unsat proof -> Unsatisfiable { proof; pattern = !current }
  | () ->
      let graph = Mgraph.Multigraph.Builder.build builder in
      let n = Hashtbl.length var_ids in
      (* The builder only knows vertices that got structure; make the
         arrays span every variable vertex. *)
      assert (Mgraph.Multigraph.vertex_count graph <= n || n = 0);
      let attrs =
        Array.init n (fun u ->
            Mgraph.Sorted_ints.of_list
              (Option.value ~default:[] (Hashtbl.find_opt attrs_tbl u)))
      in
      let iris = Array.make n [] in
      Hashtbl.iter
        (fun (u, data_vertex, dir) types ->
          iris.(u) <-
            { dir; types = Mgraph.Sorted_ints.of_list types; data_vertex }
            :: iris.(u))
        iri_tbl;
      let self_loops =
        Array.init n (fun u ->
            Mgraph.Sorted_ints.of_list
              (Option.value ~default:[] (Hashtbl.find_opt loops_tbl u)))
      in
      Query
        {
          var_names = Array.of_list (List.rev !var_names);
          graph;
          attrs;
          iris;
          self_loops;
          opens = List.rev !opens;
        }

let vertex_count t = Array.length t.var_names

let vertex_of_var t v =
  let n = vertex_count t in
  let rec loop i =
    if i >= n then None
    else if String.equal t.var_names.(i) v then Some i
    else loop (i + 1)
  in
  loop 0

(* Adjacency helpers tolerate vertices absent from the builder graph
   (isolated variables beyond its vertex count). *)
let graph_adjacency t dir u =
  if u < Mgraph.Multigraph.vertex_count t.graph then
    Mgraph.Multigraph.adjacency t.graph dir u
  else [||]

let degree t u =
  let var_neighbours =
    let merge dir acc =
      Array.fold_left
        (fun acc (v, _) -> if v = u then acc else v :: acc)
        acc
        (graph_adjacency t dir u)
    in
    Mgraph.Sorted_ints.of_list (merge Mgraph.Multigraph.Out (merge Mgraph.Multigraph.In []))
  in
  let iri_neighbours =
    Mgraph.Sorted_ints.of_list (List.map (fun c -> c.data_vertex) t.iris.(u))
  in
  Array.length var_neighbours + Array.length iri_neighbours

let multi_edges_between t u u' =
  if u = u' then []
  else begin
    let find dir =
      Array.fold_left
        (fun acc (v, types) -> if v = u' then Some types else acc)
        None
        (graph_adjacency t dir u)
    in
    let out = find Mgraph.Multigraph.Out and incoming = find Mgraph.Multigraph.In in
    List.filter_map
      (fun (dir, types) ->
        match types with None -> None | Some ts -> Some (dir, ts))
      [ (Mgraph.Multigraph.Out, out); (Mgraph.Multigraph.In, incoming) ]
  end

let signature t u =
  let side dir =
    let from_vars =
      Array.fold_right
        (fun (v, types) acc -> if v = u then acc else types :: acc)
        (graph_adjacency t dir u)
        []
    in
    let from_iris =
      List.filter_map
        (fun c -> if c.dir = dir then Some c.types else None)
        t.iris.(u)
    in
    let from_loops =
      if Array.length t.self_loops.(u) > 0 then [ t.self_loops.(u) ] else []
    in
    from_vars @ from_iris @ from_loops
  in
  (* A self loop shows up on both sides, like in the data graph; [dir]
     here is from the vertex's own perspective: [Out] = outgoing. *)
  {
    Mgraph.Signature.incoming = side Mgraph.Multigraph.In;
    outgoing = side Mgraph.Multigraph.Out;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>query graph: %d vertices@," (vertex_count t);
  Array.iteri
    (fun u name ->
      Format.fprintf ppf "  u%d = ?%s attrs=[%s] iris=%d loops=%d deg=%d@," u
        name
        (String.concat ","
           (List.map string_of_int (Array.to_list t.attrs.(u))))
        (List.length t.iris.(u))
        (Array.length t.self_loops.(u))
        (degree t u))
    t.var_names;
  Format.fprintf ppf "  opens=%d@]" (List.length t.opens)
