(** Vertex neighbourhood index — the index [N] (paper Section 4.3).

    For every data vertex two OTIL tries are kept: [N+] over the
    multi-edges of incoming neighbours and [N−] over outgoing ones.
    [neighbours idx v dir types] returns the data vertices [v'] adjacent
    to [v] in direction [dir] whose connecting multi-edge is a superset
    of [types] — the primitive used both for satellite matching and for
    extending partial core matches while preserving query structure. *)

type t

val build : ?layout:Mgraph.Posting.policy -> Database.t -> t
(** [layout] is the posting freeze policy for every trie (default
    [Auto]). *)

val build_range :
  ?layout:Mgraph.Posting.policy ->
  Database.t ->
  Mgraph.Multigraph.direction ->
  lo:int ->
  hi:int ->
  Otil.t array
(** Prepared tries of the vertex range [lo, hi) in one direction — the
    shardable unit of the parallel build ([In] yields [N+] shards, [Out]
    yields [N−]). Element [i] belongs to vertex [lo + i]. *)

val of_tries : incoming:Otil.t array -> outgoing:Otil.t array -> t
(** Assemble from full per-vertex trie arrays (element [v] belongs to
    vertex [v]); used by the parallel build and the snapshot reader.
    @raise Invalid_argument on a length mismatch. *)

val export : t -> Otil.t array * Otil.t array
(** The ([N+], [N−]) trie arrays, for the snapshot codec.
    @raise Invalid_argument on an overlay index. *)

val overlay :
  base:t ->
  graph:Mgraph.Multigraph.t ->
  touched_out:int list ->
  touched_in:int list ->
  unit ->
  t
(** Delta overlay: rebuild the prepared trie of every vertex in
    [touched_out] / [touched_in] from the overlay [graph]'s merged
    adjacency in that direction; untouched vertices keep the base tries
    (shared, never mutated). New vertices ([>= vertex_count base]) not
    listed as touched answer the empty neighbourhood.
    @raise Invalid_argument on an overlay base or out-of-range ids. *)

val neighbours :
  t -> int -> Mgraph.Multigraph.direction -> int array -> Mgraph.Posting.t
(** [neighbours t v dir types]: with [dir = Out], vertices [v'] such
    that the multi-edge [v → v'] contains all of [types]; with
    [dir = In], such that [v' → v] does. [types] must be sorted and
    non-empty. The result is sorted and duplicate-free. *)

val vertex_count : t -> int

val probes : t -> int
(** Lifetime number of {!neighbours} lookups — exported by the
    observability layer ([amber_neighbourhood_index_probes_total]). *)

val posting_stats : t -> Mgraph.Posting.stats
(** Per-layout posting counts and out-of-heap payload bytes summed
    over every frozen trie of both directions. *)
