module TS = Set.Make (Rdf.Triple)

type t = { adds : TS.t; dels : TS.t }

(* Invariant: adds ∩ dels = ∅ — [insert]/[remove] maintain it, so the
   merged world is simply (base \ dels) ∪ adds with no ordering
   ambiguity. *)

let empty = { adds = TS.empty; dels = TS.empty }
let insert t tr = { adds = TS.add tr t.adds; dels = TS.remove tr t.dels }
let remove t tr = { adds = TS.remove tr t.adds; dels = TS.add tr t.dels }

let apply t ~adds ~dels =
  let t = List.fold_left remove t dels in
  List.fold_left insert t adds

let adds t = TS.elements t.adds
let dels t = TS.elements t.dels
let add_count t = TS.cardinal t.adds
let del_count t = TS.cardinal t.dels
let is_empty t = TS.is_empty t.adds && TS.is_empty t.dels
let size t = add_count t + del_count t

(* ------------------------------------------------------------------ *)
(* Compilation: delta -> overlay engine                                 *)
(* ------------------------------------------------------------------ *)

module MG = Mgraph.Multigraph
module SI = Mgraph.Sorted_ints

(* (subject vertex-term, predicate IRI, object) views of a triple set,
   split by object kind: IRI/bnode objects are edges, literal objects
   are attributes. *)
let classify set =
  TS.fold
    (fun { Rdf.Triple.subject; predicate; obj } (edges, attrs) ->
      let pred =
        match predicate with
        | Rdf.Term.Iri iri -> iri
        | Rdf.Term.Literal _ | Rdf.Term.Bnode _ -> assert false
      in
      match obj with
      | Rdf.Term.Literal lit -> (edges, (subject, pred, lit) :: attrs)
      | Rdf.Term.Iri _ | Rdf.Term.Bnode _ ->
          ((subject, pred, obj) :: edges, attrs))
    set ([], [])

let sorted_keys tbl =
  Array.of_list (List.sort String.compare (Hashtbl.fold (fun k _ l -> k :: l) tbl []))

(* Group resolved edges by one endpoint: [sel] projects (owner, other,
   type). *)
let group sel lst =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let v, v', ty = sel e in
      let prev = try Hashtbl.find tbl v with Not_found -> [] in
      Hashtbl.replace tbl v ((v', ty) :: prev))
    lst;
  tbl

let find_group tbl v = try Hashtbl.find tbl v with Not_found -> []

let compile base delta =
  let db = Engine.db base in
  let g = Database.graph db in
  let base_vn = Database.vertex_count db in
  let base_en = Database.edge_type_count db in
  let base_an = Database.attribute_count db in
  let add_edges, add_attrs = classify delta.adds in
  let del_edges, del_attrs = classify delta.dels in
  (* -------- id assignment for terms the base doesn't know -------- *)
  let new_v = Hashtbl.create 16 in
  let note_term term =
    match Database.key_of_term term with
    | None -> ()
    | Some key ->
        if Database.vertex_of_term db term = None then
          Hashtbl.replace new_v key ()
  in
  List.iter
    (fun (s, _, o) ->
      note_term s;
      note_term o)
    add_edges;
  List.iter (fun (s, _, _) -> note_term s) add_attrs;
  let new_vertex_keys = sorted_keys new_v in
  let v_assign = Hashtbl.create 16 in
  Array.iteri (fun i k -> Hashtbl.replace v_assign k (base_vn + i)) new_vertex_keys;
  let vid term =
    match Database.vertex_of_term db term with
    | Some _ as r -> r
    | None -> (
        match Database.key_of_term term with
        | None -> None
        | Some key -> Hashtbl.find_opt v_assign key)
  in
  let new_e = Hashtbl.create 8 in
  List.iter
    (fun (_, p, _) ->
      if Database.edge_type_of_iri db p = None then Hashtbl.replace new_e p ())
    add_edges;
  let new_edge_iris = sorted_keys new_e in
  let e_assign = Hashtbl.create 8 in
  Array.iteri (fun i p -> Hashtbl.replace e_assign p (base_en + i)) new_edge_iris;
  let eid p =
    match Database.edge_type_of_iri db p with
    | Some _ as r -> r
    | None -> Hashtbl.find_opt e_assign p
  in
  let akey p lit = (p, Rdf.Term.to_string (Rdf.Term.Literal lit)) in
  let new_a = Hashtbl.create 8 in
  List.iter
    (fun (_, p, lit) ->
      if Database.attribute_of db ~pred:p ~lit = None then
        Hashtbl.replace new_a (akey p lit) (p, lit))
    add_attrs;
  let new_attr_keys =
    List.sort compare (Hashtbl.fold (fun k _ l -> k :: l) new_a [])
  in
  let new_attr_pairs =
    Array.of_list (List.map (fun k -> Hashtbl.find new_a k) new_attr_keys)
  in
  let a_assign = Hashtbl.create 8 in
  List.iteri (fun i k -> Hashtbl.replace a_assign k (base_an + i)) new_attr_keys;
  let aid p lit =
    match Database.attribute_of db ~pred:p ~lit with
    | Some _ as r -> r
    | None -> Hashtbl.find_opt a_assign (akey p lit)
  in
  (* -------- resolve; deletions of unknown terms are no-ops -------- *)
  let redges lst =
    List.filter_map
      (fun (s, p, o) ->
        match (vid s, eid p, vid o) with
        | Some si, Some ei, Some oi -> Some (si, ei, oi)
        | _ -> None)
      lst
  in
  let rattrs lst =
    List.filter_map
      (fun (s, p, lit) ->
        match (vid s, aid p lit) with
        | Some si, Some ai -> Some (si, ai)
        | _ -> None)
      lst
  in
  let eadds = redges add_edges and edels = redges del_edges in
  let aadds = rattrs add_attrs and adels = rattrs del_attrs in
  (* -------- merged adjacency of every touched vertex -------- *)
  let out_adds = group (fun (s, e, o) -> (s, o, e)) eadds in
  let out_dels = group (fun (s, e, o) -> (s, o, e)) edels in
  let in_adds = group (fun (s, e, o) -> (o, s, e)) eadds in
  let in_dels = group (fun (s, e, o) -> (o, s, e)) edels in
  let touch tbl v = Hashtbl.replace tbl v () in
  let out_touch = Hashtbl.create 16 and in_touch = Hashtbl.create 16 in
  List.iter
    (fun (s, _, o) ->
      touch out_touch s;
      touch in_touch o)
    eadds;
  List.iter
    (fun (s, _, o) ->
      touch out_touch s;
      touch in_touch o)
    edels;
  let patch_dir dir touched adds_t dels_t =
    Hashtbl.fold
      (fun v () acc ->
        let base_adj = if v < base_vn then MG.adjacency g dir v else [||] in
        let m = Hashtbl.create (2 * Array.length base_adj + 4) in
        Array.iter (fun (v', tys) -> Hashtbl.replace m v' tys) base_adj;
        List.iter
          (fun (v', ty) ->
            match Hashtbl.find_opt m v' with
            | None -> ()
            | Some tys ->
                let tys' = SI.diff tys [| ty |] in
                if Array.length tys' = 0 then Hashtbl.remove m v'
                else Hashtbl.replace m v' tys')
          (find_group dels_t v);
        List.iter
          (fun (v', ty) ->
            let tys =
              match Hashtbl.find_opt m v' with None -> [||] | Some t -> t
            in
            Hashtbl.replace m v' (SI.union tys [| ty |]))
          (find_group adds_t v);
        let arr =
          Array.of_list (Hashtbl.fold (fun v' tys l -> (v', tys) :: l) m [])
        in
        Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
        (v, arr) :: acc)
      touched []
  in
  let out_patches = patch_dir MG.Out out_touch out_adds out_dels in
  let in_patches = patch_dir MG.In in_touch in_adds in_dels in
  (* -------- merged attribute sets -------- *)
  let attr_touch = Hashtbl.create 16 in
  List.iter (fun (v, _) -> touch attr_touch v) aadds;
  List.iter (fun (v, _) -> touch attr_touch v) adels;
  let group_attrs lst =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (v, a) ->
        let prev = try Hashtbl.find tbl v with Not_found -> [] in
        Hashtbl.replace tbl v (a :: prev))
      lst;
    tbl
  in
  let av_adds = group_attrs aadds and av_dels = group_attrs adels in
  let attr_patches =
    Hashtbl.fold
      (fun v () acc ->
        let base_attrs = if v < base_vn then MG.attributes g v else [||] in
        let removed = SI.of_list (find_group av_dels v) in
        let added = SI.of_list (find_group av_adds v) in
        (v, SI.union (SI.diff base_attrs removed) added) :: acc)
      attr_touch []
  in
  (* -------- exact triple count -------- *)
  let present_edge (s, e, o) =
    s < base_vn && o < base_vn && MG.has_edge g s e o
  in
  let present_attr (v, a) = v < base_vn && SI.mem (MG.attributes g v) a in
  let count p l = List.fold_left (fun n x -> if p x then n + 1 else n) 0 l in
  let triple_count =
    Database.triple_count db
    + count (fun e -> not (present_edge e)) eadds
    + count (fun a -> not (present_attr a)) aadds
    - count present_edge edels
    - count present_attr adels
  in
  (* -------- assemble overlays -------- *)
  let vertex_count = base_vn + Array.length new_vertex_keys in
  let graph =
    MG.overlay ~base:g ~vertex_count ~out:out_patches ~in_:in_patches
      ~attrs:attr_patches ()
  in
  let odb =
    Database.overlay ~base:db ~graph ~new_vertices:new_vertex_keys
      ~new_edge_types:new_edge_iris ~new_attributes:new_attr_pairs
      ~triple_count ()
  in
  (* Per-attribute vertex-list patches for the attribute index. *)
  let base_ai = Engine.attribute_index base in
  let a_changed = Hashtbl.create 16 in
  List.iter (fun (_, a) -> touch a_changed a) aadds;
  List.iter (fun (_, a) -> touch a_changed a) adels;
  let by_attr lst =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (v, a) ->
        let prev = try Hashtbl.find tbl a with Not_found -> [] in
        Hashtbl.replace tbl a (v :: prev))
      lst;
    tbl
  in
  let aa = by_attr aadds and ad = by_attr adels in
  let patched_lists =
    Hashtbl.fold
      (fun a () acc ->
        let base_list =
          Mgraph.Posting.to_array (Attribute_index.vertices_with base_ai a)
        in
        let removed = SI.of_list (find_group ad a) in
        let added = SI.of_list (find_group aa a) in
        (a, SI.union (SI.diff base_list removed) added) :: acc)
      a_changed []
  in
  let attribute =
    Attribute_index.overlay ~base:base_ai
      ~attribute_count:(Database.attribute_count odb)
      ~patched:patched_lists ()
  in
  let keys tbl = Hashtbl.fold (fun v () l -> v :: l) tbl [] in
  let syn_touch = Hashtbl.copy out_touch in
  List.iter (fun v -> touch syn_touch v) (keys in_touch);
  List.iter (fun v -> touch syn_touch v) (keys attr_touch);
  let synopsis =
    Synopsis_index.overlay
      ~base:(Engine.synopsis_index base)
      ~graph ~touched:(keys syn_touch) ()
  in
  let neighbourhood =
    Neighbourhood_index.overlay
      ~base:(Engine.neighbourhood_index base)
      ~graph ~touched_out:(keys out_touch) ~touched_in:(keys in_touch) ()
  in
  (* The overlay inherits the base generation's statistics: stale
     against the delta, but estimates only steer plans — answers are
     strategy-independent — and recomputing per published epoch would
     put an O(E) scan on the update path. Compaction rebuilds them. *)
  Engine.of_parts ~layout:(Engine.layout base)
    ~stats:(lazy (Engine.statistics base))
    ~db:odb ~attribute ~synopsis ~neighbourhood ()
