(* Index statistics and the cost model of the adaptive planner.

   Everything here is a pure, deterministic function of the frozen
   indexes: the same database always yields byte-identical statistics,
   which the snapshot codec relies on (parallel and sequential builds
   must serialize identically). *)

type t = {
  vertices : int;
  triples : int;
  attr_lengths : int array;
  type_out_vertices : int array;
  type_in_vertices : int array;
  type_out_edges : int array;
  type_in_edges : int array;
  deg_hist_out : int array array;
  deg_hist_in : int array array;
  distinct_signatures : int;
  maxima : int array;
}

let hist_buckets = 16

let bucket_of_degree d =
  (* log2 buckets: 0 -> [1], 1 -> [2,3], 2 -> [4,7], ... capped. *)
  let rec go b v = if v <= 1 || b = hist_buckets - 1 then b else go (b + 1) (v / 2) in
  go 0 d

let compute db attribute synopsis =
  let g = Database.graph db in
  let n = Mgraph.Multigraph.vertex_count g in
  let nt = Mgraph.Multigraph.edge_type_count g in
  let attr_lengths =
    Array.init (Database.attribute_count db) (fun a ->
        Mgraph.Posting.length (Attribute_index.vertices_with attribute a))
  in
  let type_out_vertices = Array.make nt 0 in
  let type_in_vertices = Array.make nt 0 in
  let type_out_edges = Array.make nt 0 in
  let type_in_edges = Array.make nt 0 in
  let deg_hist_out = Array.init nt (fun _ -> Array.make hist_buckets 0) in
  let deg_hist_in = Array.init nt (fun _ -> Array.make hist_buckets 0) in
  (* Per-vertex per-type degree counts via a generation-marked scratch
     array: O(E) overall, no per-vertex allocation proportional to nt. *)
  let mark = Array.make nt (-1) in
  let cnt = Array.make nt 0 in
  let scan dir vertices_with_type edge_totals hist =
    for v = 0 to n - 1 do
      let seen = ref [] in
      Array.iter
        (fun (_, types) ->
          Array.iter
            (fun ty ->
              edge_totals.(ty) <- edge_totals.(ty) + 1;
              if mark.(ty) <> v then begin
                mark.(ty) <- v;
                cnt.(ty) <- 1;
                vertices_with_type.(ty) <- vertices_with_type.(ty) + 1;
                seen := ty :: !seen
              end
              else cnt.(ty) <- cnt.(ty) + 1)
            types)
        (Mgraph.Multigraph.adjacency g dir v);
      List.iter
        (fun ty ->
          let b = bucket_of_degree cnt.(ty) in
          hist.(ty).(b) <- hist.(ty).(b) + 1)
        !seen
    done;
    Array.fill mark 0 nt (-1)
  in
  scan Mgraph.Multigraph.Out type_out_vertices type_out_edges deg_hist_out;
  scan Mgraph.Multigraph.In type_in_vertices type_in_edges deg_hist_in;
  let distinct_signatures =
    let tbl = Hashtbl.create (max 16 (n / 4)) in
    for v = 0 to n - 1 do
      let syn = Synopsis_index.vertex_synopsis synopsis v in
      if not (Hashtbl.mem tbl syn) then Hashtbl.add tbl syn ()
    done;
    Hashtbl.length tbl
  in
  {
    vertices = n;
    triples = Database.triple_count db;
    attr_lengths;
    type_out_vertices;
    type_in_vertices;
    type_out_edges;
    type_in_edges;
    deg_hist_out;
    deg_hist_in;
    distinct_signatures;
    maxima = Synopsis_index.maxima synopsis;
  }

(* --- cardinality estimation ----------------------------------------- *)

let vertices_with_type st dir ty =
  if ty < 0 then st.vertices
  else
    match dir with
    | Mgraph.Multigraph.Out ->
        if ty < Array.length st.type_out_vertices then st.type_out_vertices.(ty)
        else 0
    | Mgraph.Multigraph.In ->
        if ty < Array.length st.type_in_vertices then st.type_in_vertices.(ty)
        else 0

(* Average number of neighbours reached over one edge type in one
   direction — the per-edge-type degree statistic used to estimate how
   many candidates an IRI constraint's neighbourhood probe yields. *)
let avg_degree st dir ty =
  let totals, verts =
    match dir with
    | Mgraph.Multigraph.Out -> (st.type_out_edges, st.type_out_vertices)
    | Mgraph.Multigraph.In -> (st.type_in_edges, st.type_in_vertices)
  in
  if ty < 0 || ty >= Array.length totals || verts.(ty) = 0 then 1
  else (totals.(ty) + verts.(ty) - 1) / verts.(ty)

let attr_estimate st (q : Query_graph.t) u =
  let attrs = q.attrs.(u) in
  if Array.length attrs = 0 then None
  else
    Some
      (Array.fold_left
         (fun acc a ->
           let len =
             if a >= 0 && a < Array.length st.attr_lengths then
               st.attr_lengths.(a)
             else 0
           in
           min acc len)
         max_int attrs)

let structural_estimate st (q : Query_graph.t) u =
  let best = ref st.vertices in
  let consider dir types =
    Array.iter (fun ty -> best := min !best (vertices_with_type st dir ty)) types
  in
  if u < Mgraph.Multigraph.vertex_count q.graph then begin
    (* A query edge u -> x constrains candidates to data vertices with
       an out-edge of that type; u <- x to an in-edge. *)
    Array.iter
      (fun (_, types) -> consider Mgraph.Multigraph.Out types)
      (Mgraph.Multigraph.adjacency q.graph Mgraph.Multigraph.Out u);
    Array.iter
      (fun (_, types) -> consider Mgraph.Multigraph.In types)
      (Mgraph.Multigraph.adjacency q.graph Mgraph.Multigraph.In u)
  end;
  List.iter
    (fun (c : Query_graph.iri_constraint) -> consider c.dir c.types)
    q.iris.(u);
  Array.iter
    (fun ty ->
      consider Mgraph.Multigraph.Out [| ty |];
      consider Mgraph.Multigraph.In [| ty |])
    q.self_loops.(u);
  !best

(* Estimated candidates an IRI constraint contributes: the average
   fan-out of its edge type seen from the fixed data vertex. *)
let iri_estimate st (q : Query_graph.t) u =
  List.fold_left
    (fun acc (c : Query_graph.iri_constraint) ->
      let probe_dir =
        (* the probe runs from the data vertex towards the candidates,
           i.e. in the opposite orientation of the query edge *)
        match c.dir with
        | Mgraph.Multigraph.Out -> Mgraph.Multigraph.In
        | Mgraph.Multigraph.In -> Mgraph.Multigraph.Out
      in
      let e =
        Array.fold_left
          (fun acc ty -> min acc (avg_degree st probe_dir ty))
          max_int c.types
      in
      min acc e)
    max_int q.iris.(u)

let estimate_vertex st (q : Query_graph.t) u =
  let est = structural_estimate st q u in
  let est = match attr_estimate st q u with Some a -> min est a | None -> est in
  let est = min est (iri_estimate st q u) in
  max 0 (min est st.vertices)

(* --- plan modes and per-vertex strategy selection ------------------- *)

type strategy = Rtree | Attrs | Scan

type mode = Paper | Adaptive | Forced of strategy

let strategy_slug = function Rtree -> "rtree" | Attrs -> "attrs" | Scan -> "scan"

let strategy_of_slug = function
  | "rtree" -> Some Rtree
  | "attrs" -> Some Attrs
  | "scan" -> Some Scan
  | _ -> None

let mode_to_string = function
  | Paper -> "paper"
  | Adaptive -> "adaptive"
  | Forced s -> "forced:" ^ strategy_slug s

let mode_of_string s =
  match s with
  | "paper" -> Some Paper
  | "adaptive" -> Some Adaptive
  | _ ->
      if String.length s > 7 && String.sub s 0 7 = "forced:" then
        Option.map
          (fun st -> Forced st)
          (strategy_of_slug (String.sub s 7 (String.length s - 7)))
      else None

type choice = {
  strategy : strategy;
  fallback : bool;
  cost_rtree : int;
  cost_attrs : int option;
  cost_scan : int;
  est_candidates : int;
}

(* The constants encode relative probe overheads, not absolute times:
   an R-tree descent touches rectangles beyond the result (worst case
   the whole synopsis table, hence the 2x slope — signature pruning
   that keeps everything costs more than the scan it replaces), a scan
   is one dominance test per data vertex, and the attribute path pays
   the inverted-list intersection plus a dominance test per survivor. *)
let rtree_probe_base = 64
let attr_probe_base = 16

let has_vertex_info (q : Query_graph.t) u =
  Array.length q.attrs.(u) > 0 || q.iris.(u) <> []

let choose st (q : Query_graph.t) u =
  let est_structural = structural_estimate st q u in
  let est = estimate_vertex st q u in
  let cost_scan = st.vertices in
  let cost_rtree =
    min (2 * st.vertices) (rtree_probe_base + (2 * est_structural))
  in
  let cost_attrs =
    if has_vertex_info q u then begin
      let est_info =
        let a = match attr_estimate st q u with Some a -> a | None -> max_int in
        min a (iri_estimate st q u)
      in
      let est_info = min est_info st.vertices in
      Some (attr_probe_base + (2 * est_info))
    end
    else None
  in
  let strategy =
    match cost_attrs with
    | Some ca when ca <= cost_rtree && ca <= cost_scan -> Attrs
    | _ -> if cost_rtree <= cost_scan then Rtree else Scan
  in
  { strategy; fallback = false; cost_rtree; cost_attrs; cost_scan;
    est_candidates = est }

let choice_for st (q : Query_graph.t) u = function
  | Paper ->
      let c = choose st q u in
      { c with strategy = Rtree }
  | Adaptive -> choose st q u
  | Forced s ->
      let c = choose st q u in
      if s = Attrs && not (has_vertex_info q u) then
        (* nothing to intersect: honour the spirit, fall back to the
           paper probe and say so *)
        { c with strategy = Rtree; fallback = true }
      else { c with strategy = s }

(* --- report threading (profile, flight recorder) -------------------- *)

type seed_report = {
  variable : string;
  vertex : int;
  choice : choice;
  actual : int;
}

(* --- snapshot codec -------------------------------------------------- *)

(* Varint-encoded (LEB128, unsigned) int streams; every field in order.
   Deterministic by construction. *)

let put_int buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* Synopsis maxima can be negative (the f3 sentinel): zigzag. *)
let put_signed buf v = put_int buf ((v lsl 1) lxor (v asr 62))

let put_array buf a =
  put_int buf (Array.length a);
  Array.iter (fun v -> put_int buf v) a

let encode st =
  let buf = Buffer.create 4096 in
  put_int buf st.vertices;
  put_int buf st.triples;
  put_array buf st.attr_lengths;
  put_array buf st.type_out_vertices;
  put_array buf st.type_in_vertices;
  put_array buf st.type_out_edges;
  put_array buf st.type_in_edges;
  put_int buf (Array.length st.deg_hist_out);
  Array.iter (fun h -> put_array buf h) st.deg_hist_out;
  put_int buf (Array.length st.deg_hist_in);
  Array.iter (fun h -> put_array buf h) st.deg_hist_in;
  put_int buf st.distinct_signatures;
  put_int buf (Array.length st.maxima);
  Array.iter (fun v -> put_signed buf v) st.maxima;
  Buffer.contents buf

exception Corrupt of string

let decode s =
  let pos = ref 0 in
  let len = String.length s in
  let get_int () =
    let v = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      if !pos >= len then raise (Corrupt "stats: truncated varint");
      let b = Char.code s.[!pos] in
      incr pos;
      v := !v lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then continue := false
      else if !shift > 62 then raise (Corrupt "stats: varint overflow")
    done;
    !v
  in
  let get_signed () =
    let v = get_int () in
    (v lsr 1) lxor (-(v land 1))
  in
  let get_array () =
    let n = get_int () in
    if n < 0 || n > len then raise (Corrupt "stats: bad array length");
    Array.init n (fun _ -> get_int ())
  in
  let vertices = get_int () in
  let triples = get_int () in
  let attr_lengths = get_array () in
  let type_out_vertices = get_array () in
  let type_in_vertices = get_array () in
  let type_out_edges = get_array () in
  let type_in_edges = get_array () in
  let deg_hist_out =
    let n = get_int () in
    if n < 0 || n > len then raise (Corrupt "stats: bad histogram count");
    Array.init n (fun _ -> get_array ())
  in
  let deg_hist_in =
    let n = get_int () in
    if n < 0 || n > len then raise (Corrupt "stats: bad histogram count");
    Array.init n (fun _ -> get_array ())
  in
  let distinct_signatures = get_int () in
  let maxima =
    let n = get_int () in
    if n < 0 || n > len then raise (Corrupt "stats: bad maxima length");
    Array.init n (fun _ -> get_signed ())
  in
  if !pos <> len then raise (Corrupt "stats: trailing bytes");
  {
    vertices;
    triples;
    attr_lengths;
    type_out_vertices;
    type_in_vertices;
    type_out_edges;
    type_in_edges;
    deg_hist_out;
    deg_hist_in;
    distinct_signatures;
    maxima;
  }
