type t = {
  db : Database.t;
  attribute : Attribute_index.t;
  synopsis : Synopsis_index.t;
  neighbourhood : Neighbourhood_index.t;
  literal_bindings : Literal_bindings.t;
  shared : Matcher.shared;  (* cross-query A/S candidate LRUs *)
  layout : Mgraph.Posting.policy;  (* posting layout the indexes froze under *)
  statistics : Stats.t Lazy.t;
      (* planner statistics: computed at build time, loaded from the
         snapshot's optional stats section, or inherited (stale but
         sound — estimates never change answers) by live overlays *)
}

exception Unsupported = Query_graph.Unsupported

(* One matcher context per query (or per domain): [caches:false] is the
   uncached ablation the kernels benchmark compares against. *)
let make_ctx ?(caches = true) ?plan ?model t ~deadline ~stats =
  Matcher.make_ctx
    ?probe_cache:(if caches then Some (Probe_cache.create ()) else None)
    ?shared:(if caches then Some t.shared else None)
    ?plan ?model
    ~db:t.db ~attribute:t.attribute ~synopsis:t.synopsis
    ~neighbourhood:t.neighbourhood ~deadline ~stats ()

let statistics t = Lazy.force t.statistics

let db t = t.db
let attribute_index t = t.attribute
let synopsis_index t = t.synopsis
let neighbourhood_index t = t.neighbourhood

type answer = {
  variables : string list;
  rows : Rdf.Term.t option list list;
  truncated : bool;
}

let deadline_of = function
  | None -> Deadline.never
  | Some seconds -> Deadline.after seconds

(* Gather the matcher's solutions. With a row limit, stop a component
   once its solutions already denote [limit] embeddings (each solution
   is a Cartesian product of satellite sets, so one solution may cover
   the limit on its own); capping factors of a cross-component product
   at L preserves the first L products. *)
let collect_solutions ?(seed_reports = ref []) ctx q plan limit =
  let components = plan.Decompose.components in
  let out = Array.make (Array.length components) [] in
  (try
     Array.iteri
       (fun i comp ->
         let embeddings = ref 0 in
         let sols = ref [] in
         let seeds, report = Matcher.initial_candidates_choice ctx q comp in
         Option.iter (fun r -> seed_reports := r :: !seed_reports) report;
         Matcher.solve_component_seeded ctx q plan comp ~seeds ~emit:(fun sol ->
             sols := sol :: !sols;
             embeddings := !embeddings + Matcher.count_embeddings sol;
             match limit with
             | Some l when !embeddings >= l -> `Stop
             | _ -> `Continue);
         out.(i) <- List.rev !sols;
         if out.(i) = [] then raise Exit)
       components
   with Exit -> ());
  (* A component with no solution empties the whole answer. *)
  if Array.exists (fun sols -> sols = []) out && Array.length components > 0
  then None
  else Some out

let empty_answer variables = { variables; rows = []; truncated = false }

(* How many rows must be gathered before the solution modifiers are
   applied: with ORDER BY everything must be materialized; otherwise
   OFFSET skipped rows still have to be produced. *)
let gather_cap (ast : Sparql.Ast.t) effective_limit =
  if ast.order_by <> [] then None
  else
    match effective_limit with
    | None -> None
    | Some l -> Some (l + Option.value ~default:0 ast.offset)

(* ORDER BY, then OFFSET, then LIMIT — the SPARQL solution modifiers. *)
let apply_modifiers (ast : Sparql.Ast.t) ~selected ~effective_limit ~stopped_early
    rows =
  let rows =
    if ast.order_by = [] then rows
    else List.stable_sort (Sparql.Ast.compare_rows ast.order_by selected) rows
  in
  let rows =
    match ast.offset with
    | None | Some 0 -> rows
    | Some o -> List.filteri (fun i _ -> i >= o) rows
  in
  match effective_limit with
  | None -> (rows, stopped_early)
  | Some l ->
      let total = List.length rows in
      (List.filteri (fun i _ -> i < l) rows, stopped_early || total > l)

(* Enumerate embeddings, project, deduplicate under DISTINCT, apply the
   solution modifiers. *)
let project_answer t ~q ~(ast : Sparql.Ast.t) ~deadline ~selected
    ~effective_limit ~solutions =
  let slots = Embedding.slots q in
  let all_rows = Embedding.rows ~db:t.db ~q ~lits:t.literal_bindings ~solutions in
  (* Resolve the projection once, not per row. *)
  let selected_slots = List.map slots.Embedding.of_var selected in
  let project row = List.map (Option.map (fun i -> row.(i))) selected_slots in
  let cap = gather_cap ast effective_limit in
  let seen = Hashtbl.create 64 in
  let stopped_early = ref false in
  let rows = ref [] in
  let emitted = ref 0 in
  (try
     Seq.iter
       (fun row ->
         Deadline.check deadline;
         let projected = project row in
         let fresh =
           if ast.distinct then
             if Hashtbl.mem seen projected then false
             else begin
               Hashtbl.add seen projected ();
               true
             end
           else true
         in
         if fresh then begin
           rows := projected :: !rows;
           incr emitted;
           match cap with
           | Some l when !emitted >= l ->
               stopped_early := true;
               raise Exit
           | _ -> ()
         end)
       all_rows
   with Exit -> ());
  let rows, truncated =
    apply_modifiers ast ~selected ~effective_limit
      ~stopped_early:!stopped_early (List.rev !rows)
  in
  { variables = selected; rows; truncated }

(* Re-attach values the rewriter's constant propagation substituted
   away: the variable no longer occurs in the rewritten clause, so the
   projection above yielded [None] for its column — fill in the forced
   term. Every row gets the same constant, so DISTINCT dedup and ORDER
   BY comparisons are unaffected by patching after the fact. *)
let reattach_bindings ~selected bindings answer =
  if bindings = [] then answer
  else begin
    let forced = List.map (fun v -> List.assoc_opt v bindings) selected in
    let patch row =
      List.map2
        (fun f cell -> match cell with Some _ -> cell | None -> f)
        forced row
    in
    { answer with rows = List.map patch answer.rows }
  end

(* ------------------------------------------------------------------ *)
(* Default-registry metrics                                            *)
(* ------------------------------------------------------------------ *)

(* Always-on instrumentation: a handful of integer bumps and one
   histogram observation per query. The registry is the process-wide
   one; the endpoint exposes it at GET /metrics. *)
let m = Obs.Metrics.default

let m_queries =
  Obs.Metrics.counter m "amber_queries_total" ~help:"Queries answered"

let m_seconds =
  Obs.Metrics.histogram m "amber_query_seconds"
    ~help:"Per-query wall-clock latency in seconds"

let m_index_probes =
  Obs.Metrics.counter m "amber_matcher_index_probes_total"
    ~help:"Neighbourhood-index lookups during matching"

let m_scanned =
  Obs.Metrics.counter m "amber_matcher_candidates_scanned_total"
    ~help:"Data vertices tried as core-vertex candidates"

let m_sat_rejections =
  Obs.Metrics.counter m "amber_matcher_satellite_rejections_total"
    ~help:"Candidates discarded because a satellite had no match"

let m_solutions =
  Obs.Metrics.counter m "amber_matcher_solutions_total"
    ~help:"Solutions emitted by the matcher"

let m_probe_cache_hits =
  Obs.Metrics.counter m "amber_matcher_probe_cache_hits_total"
    ~help:"Query-scoped probe-cache hits (N probes + ProcessVertex memo)"

let m_probe_cache_misses =
  Obs.Metrics.counter m "amber_matcher_probe_cache_misses_total"
    ~help:"Query-scoped probe-cache misses"

let m_parallel_queries =
  Obs.Metrics.counter m "amber_parallel_queries_total"
    ~help:"Queries whose matching ran on more than one domain"

let m_parallel_chunks =
  Obs.Metrics.counter m "amber_parallel_chunks_total"
    ~help:"Candidate chunks dispatched to the domain pool"

let m_analysis_unsat =
  Obs.Metrics.counter m "amber_analysis_unsat_total"
    ~help:
      "Queries proven unsatisfiable by static analysis (build-time \
       dictionary misses plus index screening) and short-circuited to the \
       empty answer"

let m_analysis_warnings =
  Obs.Metrics.counter m "amber_analysis_warning_total"
    ~help:"Warnings raised by static query analysis"

let m_plan_strategy strategy =
  Obs.Metrics.counter m "amber_plan_strategy_total"
    ~labels:[ ("strategy", strategy) ]
    ~help:
      "Seed-strategy selections made when materializing a component's \
       initial candidates (rtree = synopsis R-tree probe, attrs = \
       attribute/IRI intersection, scan = direct dominance scan)"

let record_seed_metrics reports =
  List.iter
    (fun (r : Stats.seed_report) ->
      Obs.Metrics.incr
        (m_plan_strategy (Stats.strategy_slug r.Stats.choice.Stats.strategy)))
    reports

let record_query_metrics ~seconds (stats : Matcher.stats) =
  Obs.Metrics.incr m_queries;
  Obs.Metrics.observe m_seconds seconds;
  Obs.Metrics.add m_index_probes stats.Matcher.index_probes;
  Obs.Metrics.add m_scanned stats.Matcher.candidates_scanned;
  Obs.Metrics.add m_sat_rejections stats.Matcher.satellite_rejections;
  Obs.Metrics.add m_solutions stats.Matcher.solutions;
  Obs.Metrics.add m_probe_cache_hits stats.Matcher.probe_cache_hits;
  Obs.Metrics.add m_probe_cache_misses stats.Matcher.probe_cache_misses

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(* Every query entry point offers a structured record to the default
   flight recorder ([Obs.Query_log.default]) — including unsat
   short-circuits, timeouts and errors, which are the records an
   operator goes looking for. Capture policy (sampling, slow threshold,
   ring size, JSONL sink) lives in the recorder; the engine only
   describes what happened. *)

let core_order_names q (plan : Decompose.plan) =
  Array.to_list
    (Array.map
       (fun (comp : Decompose.component) ->
         Array.to_list
           (Array.map
              (fun u -> q.Query_graph.var_names.(u))
              comp.Decompose.core_order))
       plan.Decompose.components)

let analysis_slug report =
  match Analysis.unsat_proof report with
  | Some _ -> "unsat"
  | None -> (
      match List.length (Analysis.warnings report) with
      | 0 -> "ok"
      | n -> Printf.sprintf "warnings=%d" n)

(* Flight-recorder view of the seed reports: one (variable, strategy,
   estimate, actual) row per component, in component order. *)
let plan_seed_rows reports =
  List.rev_map
    (fun (r : Stats.seed_report) ->
      ( r.Stats.variable,
        Stats.strategy_slug r.Stats.choice.Stats.strategy,
        r.Stats.choice.Stats.est_candidates,
        r.Stats.actual ))
    reports

let record_flight ~seconds ~ast ~domains ~status ~core_order ~phases ~analysis
    ~gc ~plan_mode ~plan_seeds ~rewrites ~(stats : Matcher.stats) answer =
  let text = Sparql.Ast.to_string ast in
  let rows, truncated =
    match answer with
    | Some a -> (List.length a.rows, a.truncated)
    | None -> (0, false)
  in
  Obs.Query_log.record Obs.Query_log.default
    {
      Obs.Query_log.id = 0;
      at = Unix.gettimeofday ();
      query = text;
      hash = Obs.Query_log.hash_query text;
      status;
      seconds;
      rows;
      truncated;
      domains;
      core_order;
      plan_mode;
      plan_seeds;
      rewrites;
      phases;
      candidates_scanned = stats.Matcher.candidates_scanned;
      solutions = stats.Matcher.solutions;
      index_probes = stats.Matcher.index_probes;
      cache_hits = stats.Matcher.probe_cache_hits;
      cache_misses = stats.Matcher.probe_cache_misses;
      analysis;
      gc;
      slow = false;
    }

let status_of_exn = function
  | Deadline.Expired -> Obs.Query_log.Timeout
  | e -> Obs.Query_log.Error (Printexc.to_string e)

let sync_index_metrics t =
  let set name help v =
    Obs.Metrics.set (Obs.Metrics.counter m name ~help) v
  in
  set "amber_attribute_index_probes_total"
    "Lifetime attribute inverted-list lookups (index A)"
    (Attribute_index.probes t.attribute);
  set "amber_synopsis_index_probes_total"
    "Lifetime synopsis R-tree/scan lookups (index S)"
    (Synopsis_index.probes t.synopsis);
  set "amber_neighbourhood_index_probes_total"
    "Lifetime neighbourhood OTIL lookups (index N)"
    (Neighbourhood_index.probes t.neighbourhood);
  let (attr_hits, attr_misses), (syn_hits, syn_misses) =
    Matcher.shared_counters t.shared
  in
  set "amber_engine_attribute_cache_hits_total"
    "Cross-query attribute-candidate LRU hits" attr_hits;
  set "amber_engine_attribute_cache_misses_total"
    "Cross-query attribute-candidate LRU misses" attr_misses;
  set "amber_engine_synopsis_cache_hits_total"
    "Cross-query synopsis-candidate LRU hits" syn_hits;
  set "amber_engine_synopsis_cache_misses_total"
    "Cross-query synopsis-candidate LRU misses" syn_misses

(* Resident cost per index structure, by reachable-heap walk. Linear in
   index size — probe per scrape or per report, never per query. Blocks
   shared between structures (e.g. interned dictionary strings) are
   counted from each structure that reaches them. *)
let resident_bytes t =
  let g = Database.graph t.db in
  [
    ( "adjacency",
      Obs.Resource.reachable_bytes g + Mgraph.Multigraph.out_of_heap_bytes g );
    ( "attribute",
      Obs.Resource.reachable_bytes t.attribute
      + (Attribute_index.posting_stats t.attribute).Mgraph.Posting.payload_bytes
    );
    ("synopsis", Obs.Resource.reachable_bytes t.synopsis);
    ( "neighbourhood",
      Obs.Resource.reachable_bytes t.neighbourhood
      + (Neighbourhood_index.posting_stats t.neighbourhood)
          .Mgraph.Posting.payload_bytes );
  ]

(* Aggregate posting-list census over every index that holds frozen
   posting lists (adjacency neighbour lists, attribute inverted lists,
   OTIL value/inverted lists). *)
let posting_stats t =
  let s = Mgraph.Posting.fresh_stats () in
  Mgraph.Multigraph.posting_stats (Database.graph t.db) s;
  Mgraph.Posting.merge_stats ~into:s (Attribute_index.posting_stats t.attribute);
  Mgraph.Posting.merge_stats ~into:s
    (Neighbourhood_index.posting_stats t.neighbourhood);
  s

let sync_resource_metrics t =
  List.iter
    (fun (index, bytes) ->
      Obs.Metrics.set
        (Obs.Metrics.counter m "amber_index_resident_bytes"
           ~labels:[ ("index", index) ]
           ~help:
             "Bytes resident in one index structure (adjacency multigraph, \
              attribute inverted lists, synopsis R-tree, neighbourhood \
              OTILs): reachable heap plus out-of-heap posting payloads")
        bytes)
    (resident_bytes t);
  let s = posting_stats t in
  List.iter
    (fun (layout, count) ->
      Obs.Metrics.set
        (Obs.Metrics.counter m "amber_posting_lists"
           ~labels:[ ("layout", layout) ]
           ~help:"Frozen posting lists resident across all indexes, by layout")
        count)
    [
      ("raw", s.Mgraph.Posting.raw_lists);
      ("ef", s.Mgraph.Posting.ef_lists);
      ("blocked", s.Mgraph.Posting.blocked_lists);
    ];
  Obs.Metrics.set
    (Obs.Metrics.counter m "amber_posting_payload_bytes"
       ~help:
         "Out-of-heap (Bigarray) payload bytes of compressed posting lists \
          across all indexes")
    s.Mgraph.Posting.payload_bytes

(* ------------------------------------------------------------------ *)
(* Offline build (optionally parallel index construction)              *)
(* ------------------------------------------------------------------ *)

let m_index_build index =
  Obs.Metrics.histogram m "amber_index_build_seconds"
    ~labels:[ ("index", index) ]
    ~help:
      "Seconds spent building one index family (summed across domains \
       when the build is sharded)"
    ~buckets:(Obs.Metrics.log_buckets ~lo:1e-4 ~ratio:2.0 ~count:20)

let m_snapshot_save =
  Obs.Metrics.histogram m "amber_snapshot_save_seconds"
    ~help:"Wall-clock seconds writing an index snapshot"
    ~buckets:(Obs.Metrics.log_buckets ~lo:1e-4 ~ratio:2.0 ~count:20)

let m_snapshot_load =
  Obs.Metrics.histogram m "amber_snapshot_load_seconds"
    ~help:"Wall-clock seconds loading an index snapshot"
    ~buckets:(Obs.Metrics.log_buckets ~lo:1e-4 ~ratio:2.0 ~count:20)

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Parallel index construction: one flat task list on the domain pool —
   the whole [A] build as a single task, plus the per-vertex loops of
   [S] (synopsis computation) and [N] (trie insertion, one task list per
   direction) sharded into deterministic vertex ranges. Tasks write into
   disjoint slots of preallocated arrays; the final assembly
   (concatenation, the [S] lower bound and STR bulk load) is sequential,
   so the built indexes are identical — byte-for-byte under the
   canonical snapshot encoding — to the [domains = 1] build. *)
let shards_per_domain = 4

let build_indexes ?synopsis_mode ?layout ~domains db =
  let n = Mgraph.Multigraph.vertex_count (Database.graph db) in
  if domains <= 1 || n = 0 then begin
    let attribute, dt_a = timed (fun () -> Attribute_index.build ?layout db) in
    Obs.Metrics.observe (m_index_build "attribute") dt_a;
    let synopsis, dt_s =
      timed (fun () -> Synopsis_index.build ?mode:synopsis_mode db)
    in
    Obs.Metrics.observe (m_index_build "synopsis") dt_s;
    let neighbourhood, dt_n =
      timed (fun () -> Neighbourhood_index.build ?layout db)
    in
    Obs.Metrics.observe (m_index_build "neighbourhood") dt_n;
    (attribute, synopsis, neighbourhood)
  end
  else begin
    let k = max 1 (min n (shards_per_domain * domains)) in
    let attribute_slot = ref None in
    let syn_parts = Array.make k [||] in
    let in_parts = Array.make k [||] in
    let out_parts = Array.make k [||] in
    let range_tasks family parts fill =
      List.init k (fun i ->
          fun () ->
           let lo = i * n / k and hi = (i + 1) * n / k in
           parts.(i) <- fill ~lo ~hi;
           family)
    in
    let tasks =
      Array.of_list
        ((fun () ->
           attribute_slot := Some (Attribute_index.build ?layout db);
           "attribute")
        :: List.concat
             [
               range_tasks "synopsis" syn_parts (fun ~lo ~hi ->
                   Synopsis_index.synopses_range db ~lo ~hi);
               range_tasks "neighbourhood" in_parts (fun ~lo ~hi ->
                   Neighbourhood_index.build_range ?layout db
                     Mgraph.Multigraph.In ~lo ~hi);
               range_tasks "neighbourhood" out_parts (fun ~lo ~hi ->
                   Neighbourhood_index.build_range ?layout db
                     Mgraph.Multigraph.Out ~lo ~hi);
             ])
    in
    let pool = Domain_pool.global () in
    let results =
      Fun.protect
        ~finally:(fun () ->
          (* Index construction is a one-shot burst: workers parked in
             the pool afterwards would slow every stop-the-world minor
             collection for the rest of the process (snapshot decoding
             measures ~1.7x slower with three parked domains). Steady
             parallel query traffic respawns them once. *)
          Domain_pool.quiesce pool)
        (fun () ->
          Domain_pool.run_chunks pool ~participants:domains
            ~chunks:(Array.length tasks) (fun c -> timed tasks.(c)))
    in
    (* Per-family build time = sum of its tasks' durations (CPU seconds,
       not wall clock) plus the sequential assembly below. *)
    let family_seconds = Hashtbl.create 4 in
    let charge family dt =
      Hashtbl.replace family_seconds family
        (dt +. Option.value ~default:0. (Hashtbl.find_opt family_seconds family))
    in
    Array.iter (fun (family, dt) -> charge family dt) results;
    let synopsis, dt_s =
      timed (fun () ->
          Synopsis_index.of_synopses ?mode:synopsis_mode
            (Array.concat (Array.to_list syn_parts)))
    in
    charge "synopsis" dt_s;
    let neighbourhood, dt_n =
      timed (fun () ->
          Neighbourhood_index.of_tries
            ~incoming:(Array.concat (Array.to_list in_parts))
            ~outgoing:(Array.concat (Array.to_list out_parts)))
    in
    charge "neighbourhood" dt_n;
    Hashtbl.iter
      (fun family dt -> Obs.Metrics.observe (m_index_build family) dt)
      family_seconds;
    let attribute =
      match !attribute_slot with Some a -> a | None -> assert false
    in
    (attribute, synopsis, neighbourhood)
  end

let of_parts ?(layout = Mgraph.Posting.Auto) ?stats ~db ~attribute ~synopsis
    ~neighbourhood () =
  {
    db;
    attribute;
    synopsis;
    neighbourhood;
    literal_bindings = Literal_bindings.create db;
    shared = Matcher.make_shared ();
    layout;
    statistics =
      (match stats with
      | Some s -> s
      | None -> lazy (Stats.compute db attribute synopsis));
  }

let build ?synopsis_mode ?layout ?(domains = 1) triples =
  let db = Database.of_triples ?layout triples in
  let attribute, synopsis, neighbourhood =
    build_indexes ?synopsis_mode ?layout ~domains db
  in
  let t = of_parts ?layout ~db ~attribute ~synopsis ~neighbourhood () in
  (* Planner statistics are part of the offline stage: pay the O(E)
     pass now, not on the first adaptive query. *)
  let (_ : Stats.t), dt = timed (fun () -> Lazy.force t.statistics) in
  Obs.Metrics.observe (m_index_build "stats") dt;
  t

let layout t = t.layout

(* ------------------------------------------------------------------ *)
(* Parallel solution collection (the paper's §8 future work)           *)
(* ------------------------------------------------------------------ *)

(* Per component: split the initial candidate set into more chunks than
   domains and let the pool's domains steal the next unclaimed chunk, so
   a hub candidate hiding a huge subtree does not serialize the run. The
   per-chunk solution lists concatenate in chunk (= seed) order, and the
   per-chunk stats sum — both deterministic merges — so without a row
   limit the answer is byte-identical to the sequential path. Every
   index is read-only after [build]; each chunk gets its own matcher
   context (query-scoped probe cache, stats, deadline clone), and the
   cross-query LRUs are mutex-guarded, so domains share no unguarded
   mutable state. *)
let chunks_per_domain = 8

let collect_solutions_parallel ?caches ?plan:plan_mode ?model
    ?(seed_reports = ref []) t q plan ~domains ~deadline ~stats limit =
  let components = plan.Decompose.components in
  let out = Array.make (Array.length components) [] in
  let pool = Domain_pool.global () in
  (* Seed computation is sequential and cheap; charge it to the query's
     aggregate stats directly. The strategy choice happens here, once —
     the chunks inherit the materialized seed set, so the parallel run
     enumerates exactly the sequential candidates. *)
  let seed_ctx = make_ctx ?caches ?plan:plan_mode ?model t ~deadline ~stats in
  Obs.Metrics.incr m_parallel_queries;
  (* When the calling domain is being profiled, each chunk collects its
     own span subtree on the worker domain that runs it ([Span.collect]
     uses domain-local storage, so workers never touch the caller's open
     spans). The finished subtrees are grafted under the caller's open
     span in chunk order after the join — the same deterministic merge
     discipline as the solutions and stats. *)
  let traced = Obs.Span.active () in
  let exception Component_empty in
  (try
     Array.iteri
       (fun i comp ->
         let seeds, report = Matcher.initial_candidates_choice seed_ctx q comp in
         Option.iter (fun r -> seed_reports := r :: !seed_reports) report;
         let n = Array.length seeds in
         (* Below a couple of seeds per domain the chunking bookkeeping
            cannot pay for itself: keep the component sequential. *)
         let chunks =
           if n < 2 * domains then 1 else min n (chunks_per_domain * domains)
         in
         Obs.Metrics.add m_parallel_chunks chunks;
         (* Embeddings emitted so far across all chunks of this
            component — the row-limit race is settled here. *)
         let emitted = Atomic.make 0 in
         let results =
           Domain_pool.run_chunks pool ~participants:domains ~chunks (fun c ->
               let lo = c * n / chunks and hi = (c + 1) * n / chunks in
               let run () =
                 let chunk_stats = Matcher.fresh_stats () in
                 let ctx =
                   make_ctx ?caches t ~deadline:(Deadline.clone deadline)
                     ~stats:chunk_stats
                 in
                 let sols = ref [] in
                 Matcher.solve_component_seeded ctx q plan comp
                   ~seeds:(Array.sub seeds lo (hi - lo))
                   ~emit:(fun sol ->
                     sols := sol :: !sols;
                     let k = Matcher.count_embeddings sol in
                     let before = Atomic.fetch_and_add emitted k in
                     match limit with
                     | Some l when before + k >= l -> `Stop
                     | _ -> `Continue);
                 (List.rev !sols, chunk_stats)
               in
               if not traced then (run (), None)
               else
                 let r, span =
                   Obs.Span.collect ~name:"chunk" (fun () ->
                       Obs.Span.annotate "component" (string_of_int i);
                       Obs.Span.annotate "chunk" (string_of_int c);
                       Obs.Span.annotate "seeds" (string_of_int (hi - lo));
                       let (_, st) as r = run () in
                       Obs.Span.annotate "solutions"
                         (string_of_int st.Matcher.solutions);
                       r)
                 in
                 (r, Some span))
         in
         Array.iter
           (fun ((_, st), span) ->
             Matcher.merge_into ~into:stats st;
             Option.iter Obs.Span.graft span)
           results;
         out.(i) <- List.concat_map (fun ((s, _), _) -> s) (Array.to_list results);
         if out.(i) = [] then raise Component_empty)
       components
   with Component_empty -> ());
  (* A component with no solution empties the whole answer. *)
  if Array.exists (fun sols -> sols = []) out && Array.length components > 0 then
    None
  else Some out

(* Sequential below [domains = 2]: the one-domain case must not pay for
   chunking, atomics or pool traffic. *)
let collect ?caches ?plan:plan_mode ?model ?seed_reports t q plan ~domains
    ~deadline ~stats limit =
  if domains <= 1 then
    collect_solutions ?seed_reports
      (make_ctx ?caches ?plan:plan_mode ?model t ~deadline ~stats)
      q plan limit
  else
    collect_solutions_parallel ?caches ?plan:plan_mode ?model ?seed_reports t q
      plan ~domains ~deadline ~stats limit

(* Ordering strategy implied by the plan mode: an explicit [?strategy]
   (the ablation knob) wins; otherwise a plan with a cost model orders
   core vertices by estimated cardinality and the paper plan keeps the
   r1/r2 heuristic. *)
let order_strategy ~strategy ~model q =
  match (strategy, model) with
  | (Some _ as s), _ -> s
  | None, Some st ->
      Some (Decompose.Estimate (fun u -> Stats.estimate_vertex st q u))
  | None, None -> None

(* First unsat proof from the index-backed screening — the [?analyze]
   short-circuit test. Every proof implies the matcher would find zero
   embeddings, so skipping the search never changes the answer. *)
let screen_proof t q ast =
  let items =
    Analysis.screen t.db ~attribute:t.attribute ~synopsis:t.synopsis q ast
  in
  Analysis.unsat_proof (Analysis.report_of_items items)

let query_with_stats ?timeout ?limit ?strategy ?satellites ?open_objects
    ?caches ?(analyze = true) ?(domains = 1) ?(plan = Stats.Adaptive)
    ?(rewrite = true) t (ast : Sparql.Ast.t) =
  let t0 = Unix.gettimeofday () in
  let gc0 = Obs.Resource.gc_mark () in
  let domains = max 1 domains in
  let deadline = deadline_of timeout in
  let stats = Matcher.fresh_stats () in
  let plan_mode = plan in
  (* The paper plan never touches the cost model, so it also never
     forces a lazy statistics computation. *)
  let model =
    match plan_mode with
    | Stats.Paper -> None
    | _ -> Some (Lazy.force t.statistics)
  in
  let seed_reports = ref [] in
  let selected = Sparql.Ast.selected_variables ast in
  let effective_limit =
    match (limit, ast.limit) with
    | None, None -> None
    | Some l, None | None, Some l -> Some l
    | Some a, Some b -> Some (min a b)
  in
  (* Flight-recorder state: explicit phase clocks (same vocabulary as
     the profiled path's span tree) kept cheap enough for the plain
     path — two clock reads per phase, no span machinery. *)
  let phases = ref [] in
  let phase name f =
    let p0 = Unix.gettimeofday () in
    let v = f () in
    phases := (name, Unix.gettimeofday () -. p0) :: !phases;
    v
  in
  let core_order = ref [] in
  let analysis_note = ref None in
  let rewrite_steps = ref [] in
  let flight status answer =
    record_flight
      ~seconds:(Unix.gettimeofday () -. t0)
      ~ast ~domains ~status ~core_order:!core_order
      ~phases:(List.rev !phases) ~analysis:!analysis_note
      ~plan_mode:(Stats.mode_to_string plan_mode)
      ~plan_seeds:(plan_seed_rows !seed_reports)
      ~rewrites:(Rewrite.slugs !rewrite_steps)
      ~gc:(Obs.Resource.gc_since gc0) ~stats answer
  in
  let finish ?(status = Obs.Query_log.Ok) answer =
    record_query_metrics ~seconds:(Unix.gettimeofday () -. t0) stats;
    record_seed_metrics !seed_reports;
    flight status (Some answer);
    (answer, stats)
  in
  try
    (* The rewritten clause drives decomposition and matching; the
       original [ast] keeps naming the projection and the flight
       record, so substituted projected variables come back via
       [reattach_bindings]. *)
    let rast, bindings =
      if not rewrite then (ast, [])
      else
        phase "rewrite" (fun () ->
            let r =
              Rewrite.apply ?open_objects ~db:t.db ~attribute:t.attribute
                ~stats:t.statistics ast
            in
            rewrite_steps := r.Rewrite.steps;
            (r.Rewrite.ast, r.Rewrite.bindings))
    in
    match
      phase "decompose" (fun () ->
          match Query_graph.build ?open_objects t.db rast with
          | Query_graph.Unsatisfiable _ -> None
          | Query_graph.Query q ->
              let strategy = order_strategy ~strategy ~model q in
              let plan = Decompose.plan ?strategy ?satellites q in
              core_order := core_order_names q plan;
              Some (q, plan))
    with
    | None ->
        Obs.Metrics.incr m_analysis_unsat;
        analysis_note := Some "unsat";
        finish ~status:Obs.Query_log.Unsat (empty_answer selected)
    | Some (q, plan) -> (
        let proof =
          if not analyze then None
          else
            phase "analyze" (fun () ->
                let proof = screen_proof t q rast in
                analysis_note :=
                  Some (match proof with Some _ -> "unsat" | None -> "ok");
                proof)
        in
        match proof with
        | Some _ ->
            Obs.Metrics.incr m_analysis_unsat;
            finish ~status:Obs.Query_log.Unsat (empty_answer selected)
        | None -> (
            (* Under DISTINCT or ORDER BY a solution cap could starve the
               projection; with open objects a solution's embeddings can
               all be dropped at enumeration. Cap only the final row
               count then. *)
            let solution_cap =
              if rast.Sparql.Ast.distinct || q.Query_graph.opens <> [] then
                None
              else gather_cap rast effective_limit
            in
            match
              phase "match" (fun () ->
                  collect ?caches ~plan:plan_mode ?model ~seed_reports t q plan
                    ~domains ~deadline ~stats solution_cap)
            with
            | None -> finish (empty_answer selected)
            | Some solutions ->
                finish
                  (reattach_bindings ~selected bindings
                     (phase "enumerate" (fun () ->
                          project_answer t ~q ~ast:rast ~deadline ~selected
                            ~effective_limit ~solutions)))))
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    flight (status_of_exn e) None;
    Printexc.raise_with_backtrace e bt

let query ?timeout ?limit ?strategy ?satellites ?open_objects ?caches ?analyze
    ?domains ?plan ?rewrite t ast =
  fst
    (query_with_stats ?timeout ?limit ?strategy ?satellites ?open_objects
       ?caches ?analyze ?domains ?plan ?rewrite t ast)

let query_string ?timeout ?limit ?strategy ?satellites ?open_objects ?namespaces
    ?analyze ?domains ?plan ?rewrite t src =
  query ?timeout ?limit ?strategy ?satellites ?open_objects ?analyze ?domains
    ?plan ?rewrite t (Sparql.Parser.parse ?namespaces src)

let count_embeddings ?timeout ?open_objects t ast =
  let deadline = deadline_of timeout in
  match Query_graph.build ?open_objects t.db ast with
  | Query_graph.Unsatisfiable _ -> 0
  | Query_graph.Query q ->
      let plan = Decompose.plan q in
      let ctx = make_ctx t ~deadline ~stats:(Matcher.fresh_stats ()) in
      (match collect_solutions ctx q plan None with
      | None -> 0
      | Some solutions ->
          Embedding.count ~q ~lits:t.literal_bindings ~db:t.db ~solutions)

(* ------------------------------------------------------------------ *)
(* Static analysis                                                     *)
(* ------------------------------------------------------------------ *)

let analyze ?probe_cap ?open_objects t ast =
  let report =
    Analysis.run ?probe_cap ?open_objects t.db ~attribute:t.attribute
      ~synopsis:t.synopsis ast
  in
  if Analysis.unsat_proof report <> None then
    Obs.Metrics.incr m_analysis_unsat;
  Obs.Metrics.add m_analysis_warnings (List.length (Analysis.warnings report));
  report

let analyze_string ?probe_cap ?open_objects ?namespaces t src =
  analyze ?probe_cap ?open_objects t (Sparql.Parser.parse ?namespaces src)

(* ------------------------------------------------------------------ *)
(* Plan introspection                                                  *)
(* ------------------------------------------------------------------ *)

type core_step = {
  variable : string;
  r1 : int;
  r2 : int;
  estimate : int;  (* cost-model cardinality estimate for this vertex *)
  strategy : string option;  (* seed strategy, position 0 only *)
  satellite_vars : string list;
  initial_candidates : int option;
}

type explanation =
  | Unsat of string
  | Plan of {
      plan_mode : string;
      components : core_step list list;
      open_objects : (string * string) list;
      rewrites : Rewrite.step list;
    }

let explain ?strategy ?satellites ?open_objects ?(plan = Stats.Adaptive)
    ?(rewrite = true) t ast =
  let ast, rewrites =
    if not rewrite then (ast, [])
    else
      let r =
        Rewrite.apply ?open_objects ~db:t.db ~attribute:t.attribute
          ~stats:t.statistics ast
      in
      (r.Rewrite.ast, r.Rewrite.steps)
  in
  match Query_graph.build ?open_objects t.db ast with
  | Query_graph.Unsatisfiable { proof; _ } ->
      Unsat (Analysis.proof_to_string proof)
  | Query_graph.Query q ->
      let plan_mode = plan in
      (* Introspection always forces the statistics: estimates belong in
         the report even when the paper plan would not consult them. *)
      let st = Lazy.force t.statistics in
      let model = match plan_mode with Stats.Paper -> None | _ -> Some st in
      let strategy = order_strategy ~strategy ~model q in
      let plan = Decompose.plan ?strategy ?satellites q in
      (* Introspection probes stay out of the engine caches so they
         neither warm them nor skew the hit counters. *)
      let ctx =
        make_ctx ~caches:false t ~deadline:Deadline.never
          ~stats:(Matcher.fresh_stats ())
      in
      let components =
        Array.to_list
          (Array.map
             (fun (comp : Decompose.component) ->
               Array.to_list
                 (Array.mapi
                    (fun i u ->
                      let initial_candidates =
                        if i <> 0 then None
                        else begin
                          let structural =
                            Synopsis_index.candidates_of_signature t.synopsis
                              (Query_graph.signature q u)
                          in
                          match Matcher.process_vertex ctx q u with
                          | None -> Some (Array.length structural)
                          | Some extra ->
                              Some
                                (Mgraph.Posting.length
                                   (Mgraph.Posting.inter
                                      (Mgraph.Posting.raw structural)
                                      extra))
                        end
                      in
                      let seed_strategy =
                        if i <> 0 then None
                        else
                          Some
                            (Stats.strategy_slug
                               (Stats.choice_for st q u plan_mode).Stats.strategy)
                      in
                      {
                        variable = q.Query_graph.var_names.(u);
                        r1 = Decompose.r1 q plan u;
                        r2 = Decompose.r2 q u;
                        estimate = Stats.estimate_vertex st q u;
                        strategy = seed_strategy;
                        satellite_vars =
                          List.map
                            (fun s -> q.Query_graph.var_names.(s))
                            plan.Decompose.satellites_of.(u);
                        initial_candidates;
                      })
                    comp.Decompose.core_order))
             plan.Decompose.components)
      in
      Plan
        {
          plan_mode = Stats.mode_to_string plan_mode;
          components;
          open_objects =
            List.map
              (fun (o : Query_graph.open_object) ->
                (q.Query_graph.var_names.(o.subject), o.pred))
              q.Query_graph.opens;
          rewrites;
        }

let pp_explanation ppf = function
  | Unsat reason -> Format.fprintf ppf "unsatisfiable: %s" reason
  | Plan { plan_mode; components; open_objects; rewrites } ->
      Format.fprintf ppf "@[<v>";
      Format.fprintf ppf "plan: %s@," plan_mode;
      (match rewrites with
      | [] -> ()
      | steps ->
          Format.fprintf ppf "rewrites:@,";
          List.iter
            (fun s -> Format.fprintf ppf "  @[<v>%a@]@," Rewrite.pp_step s)
            steps);
      List.iteri
        (fun i steps ->
          Format.fprintf ppf "component %d:@," i;
          List.iter
            (fun s ->
              Format.fprintf ppf "  ?%s (r1=%d, r2=%d, est=%d)%s%s%s@,"
                s.variable s.r1 s.r2 s.estimate
                (match s.strategy with
                | Some slug -> " seed=" ^ slug
                | None -> "")
                (match s.initial_candidates with
                | Some n -> Printf.sprintf " |C_init|=%d" n
                | None -> "")
                (match s.satellite_vars with
                | [] -> ""
                | sats ->
                    "  satellites: "
                    ^ String.concat ", " (List.map (fun v -> "?" ^ v) sats)))
            steps)
        components;
      (match open_objects with
      | [] -> ()
      | opens ->
          Format.fprintf ppf "open objects:@,";
          List.iter
            (fun (v, p) -> Format.fprintf ppf "  ?%s via <%s>@," v p)
            opens);
      Format.fprintf ppf "@]"

let explanation_to_json e =
  let buf = Buffer.create 512 in
  (match e with
  | Unsat reason ->
      Buffer.add_string buf
        (Printf.sprintf {|{"unsat":true,"reason":%s}|}
           (Profile.json_string reason))
  | Plan { plan_mode; components; open_objects; rewrites } ->
      Buffer.add_string buf
        (Printf.sprintf {|{"unsat":false,"plan":%s,"rewrites":%s,"components":[|}
           (Profile.json_string plan_mode)
           (Rewrite.steps_to_json rewrites));
      List.iteri
        (fun i steps ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '[';
          List.iteri
            (fun j s ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf
                   {|{"variable":%s,"r1":%d,"r2":%d,"estimate":%d,"strategy":%s,"initial_candidates":%s,"satellites":[%s]}|}
                   (Profile.json_string s.variable)
                   s.r1 s.r2 s.estimate
                   (match s.strategy with
                   | Some slug -> Profile.json_string slug
                   | None -> "null")
                   (match s.initial_candidates with
                   | Some n -> string_of_int n
                   | None -> "null")
                   (String.concat ","
                      (List.map Profile.json_string s.satellite_vars))))
            steps;
          Buffer.add_char buf ']')
        components;
      Buffer.add_string buf {|],"open_objects":[|};
      List.iteri
        (fun i (v, p) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf {|{"variable":%s,"predicate":%s}|}
               (Profile.json_string v) (Profile.json_string p)))
        open_objects;
      Buffer.add_string buf "]}");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Profiled execution                                                  *)
(* ------------------------------------------------------------------ *)

(* Candidate-set sizes before/after pruning, for every query vertex.
   The extra probes go through a throwaway stats record so the profile's
   matcher counters describe the run itself, not the report. *)
let vertex_reports t q (plan : Decompose.plan) =
  let probe_ctx =
    make_ctx ~caches:false t ~deadline:Deadline.never
      ~stats:(Matcher.fresh_stats ())
  in
  List.init (Query_graph.vertex_count q) (fun u ->
      let structural =
        Synopsis_index.candidates_of_signature t.synopsis
          (Query_graph.signature q u)
      in
      let refined =
        match Matcher.process_vertex probe_ctx q u with
        | None -> Array.length structural
        | Some extra ->
            Mgraph.Posting.length
              (Mgraph.Posting.inter (Mgraph.Posting.raw structural) extra)
      in
      {
        Profile.variable = q.Query_graph.var_names.(u);
        core = plan.Decompose.is_core.(u);
        structural = Array.length structural;
        refined;
      })

(* The profiled pipeline, run under an already-open root span: returns
   the answer plus the [(q, plan, vertices)] shape when matching ran. *)
let profiled_body ?limit ?strategy ?satellites ?open_objects ?caches ~analyze
    ~domains ~deadline ~stats ~analysis ~plan_mode ~model ~seed_reports
    ~rewrite ~rewrite_steps t (ast : Sparql.Ast.t) =
        let selected = Sparql.Ast.selected_variables ast in
        let effective_limit =
          match (limit, ast.Sparql.Ast.limit) with
          | None, None -> None
          | Some l, None | None, Some l -> Some l
          | Some a, Some b -> Some (min a b)
        in
        (* Shadowing: downstream phases see the rewritten clause while
           [selected] keeps the original projection; substituted
           projected variables are patched back in at the end. *)
        let ast, bindings =
          if not rewrite then (ast, [])
          else
            Obs.Span.with_ ~name:"rewrite" (fun () ->
                let r =
                  Rewrite.apply ?open_objects ~db:t.db ~attribute:t.attribute
                    ~stats:t.statistics ast
                in
                rewrite_steps := r.Rewrite.steps;
                (match r.Rewrite.steps with
                | [] -> ()
                | steps ->
                    Obs.Span.annotate "steps"
                      (String.concat "," (Rewrite.slugs steps)));
                (r.Rewrite.ast, r.Rewrite.bindings))
        in
        let built =
          Obs.Span.with_ ~name:"decompose" (fun () ->
              match Query_graph.build ?open_objects t.db ast with
              | Query_graph.Unsatisfiable { proof; pattern } ->
                  Obs.Span.annotate "unsatisfiable"
                    (Analysis.proof_to_string proof);
                  Obs.Metrics.incr m_analysis_unsat;
                  if analyze then
                    analysis :=
                      Some
                        (Analysis.report_of_items
                           (Analysis.of_build_failure ast ~proof ~pattern
                           :: Analysis.lint_ast ast));
                  None
              | Query_graph.Query q ->
                  let strategy = order_strategy ~strategy ~model q in
                  let plan = Decompose.plan ?strategy ?satellites q in
                  Obs.Span.annotate "components"
                    (string_of_int (Array.length plan.Decompose.components));
                  Some (q, plan))
        in
        let screened =
          match built with
          | None -> None
          | Some (q, plan) ->
              if not analyze then Some (q, plan)
              else begin
                let report =
                  Obs.Span.with_ ~name:"analyze" (fun () ->
                      Analysis.report_of_items
                        (Analysis.lint_ast ast
                        @ Analysis.screen t.db ~attribute:t.attribute
                            ~synopsis:t.synopsis q ast))
                in
                analysis := Some report;
                match Analysis.unsat_proof report with
                | None -> Some (q, plan)
                | Some proof ->
                    Obs.Span.annotate "analysis_unsat"
                      (Analysis.proof_to_string proof);
                    Obs.Metrics.incr m_analysis_unsat;
                    None
              end
        in
        match screened with
        | None -> (empty_answer selected, None)
        | Some (q, plan) ->
            let vertices =
              Obs.Span.with_ ~name:"candidates" (fun () ->
                  vertex_reports t q plan)
            in
            let solution_cap =
              if ast.Sparql.Ast.distinct || q.Query_graph.opens <> [] then None
              else gather_cap ast effective_limit
            in
            let solutions =
              Obs.Span.with_ ~name:"match" (fun () ->
                  if domains > 1 then
                    Obs.Span.annotate "domains" (string_of_int domains);
                  let sols =
                    collect ?caches ~plan:plan_mode ?model ~seed_reports t q
                      plan ~domains ~deadline ~stats solution_cap
                  in
                  Obs.Span.annotate "solutions"
                    (string_of_int stats.Matcher.solutions);
                  sols)
            in
            let answer =
              match solutions with
              | None -> empty_answer selected
              | Some solutions ->
                  Obs.Span.with_ ~name:"enumerate" (fun () ->
                      let a =
                        reattach_bindings ~selected bindings
                          (project_answer t ~q ~ast ~deadline ~selected
                             ~effective_limit ~solutions)
                      in
                      Obs.Span.annotate "rows"
                        (string_of_int (List.length a.rows));
                      a)
            in
            (answer, Some (q, plan, vertices))

(* [query] with the phase tree, candidate report and matcher counters
   collected. With [domains > 1] the match phase runs on the domain
   pool; the profile's stats — and its span tree, via per-chunk
   {!Obs.Span.collect}/{!Obs.Span.graft} — are the deterministic
   per-domain merge. [parse] runs under the root span so
   query_string_profiled attributes parsing time too. *)
let profiled_run ?timeout ?limit ?strategy ?satellites ?open_objects ?caches
    ?(analyze = true) ?(domains = 1) ?(plan = Stats.Adaptive)
    ?(rewrite = true) t ~(parse : unit -> Sparql.Ast.t) =
  let t0 = Unix.gettimeofday () in
  let gc0 = Obs.Resource.gc_mark () in
  let domains = max 1 domains in
  let deadline = deadline_of timeout in
  let stats = Matcher.fresh_stats () in
  let plan_mode = plan in
  let model =
    match plan_mode with
    | Stats.Paper -> None
    | _ -> Some (Lazy.force t.statistics)
  in
  let seed_reports = ref [] in
  let analysis = ref None in
  let rewrite_steps = ref [] in
  let parsed = ref None in
  let (answer, shape), span =
    try
      Obs.Span.root ~name:"query" (fun () ->
          let ast = Obs.Span.with_ ~name:"parse" parse in
          parsed := Some ast;
          profiled_body ?limit ?strategy ?satellites ?open_objects ?caches
            ~analyze ~domains ~deadline ~stats ~analysis ~plan_mode ~model
            ~seed_reports ~rewrite ~rewrite_steps t ast)
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      (* The span tree of a raising run is lost (the root unwinds), but
         the flight is recorded anyway — timeouts are exactly the
         records an operator goes looking for. A parse failure carries
         no query to record. *)
      (match !parsed with
      | Some ast ->
          record_flight
            ~seconds:(Unix.gettimeofday () -. t0)
            ~ast ~domains ~status:(status_of_exn e) ~core_order:[] ~phases:[]
            ~analysis:(Option.map analysis_slug !analysis)
            ~plan_mode:(Stats.mode_to_string plan_mode)
            ~plan_seeds:(plan_seed_rows !seed_reports)
            ~rewrites:(Rewrite.slugs !rewrite_steps)
            ~gc:(Obs.Resource.gc_since gc0) ~stats None
      | None -> ());
      Printexc.raise_with_backtrace e bt
  in
  record_query_metrics ~seconds:(Obs.Span.duration span) stats;
  record_seed_metrics !seed_reports;
  (match !analysis with
  | Some report ->
      Obs.Metrics.add m_analysis_warnings
        (List.length (Analysis.warnings report))
  | None -> ());
  let core_order, vertices =
    match shape with
    | None -> ([], [])
    | Some (q, plan, vertices) -> (core_order_names q plan, vertices)
  in
  (match !parsed with
  | Some ast ->
      let status =
        match shape with
        | None -> Obs.Query_log.Unsat
        | Some _ -> Obs.Query_log.Ok
      in
      (* Per-phase durations come straight from the root's children. *)
      let phases =
        List.map
          (fun c -> (Obs.Span.name c, Obs.Span.duration c))
          (Obs.Span.children span)
      in
      record_flight
        ~seconds:(Obs.Span.duration span)
        ~ast ~domains ~status ~core_order ~phases
        ~analysis:(Option.map analysis_slug !analysis)
        ~plan_mode:(Stats.mode_to_string plan_mode)
        ~plan_seeds:(plan_seed_rows !seed_reports)
        ~rewrites:(Rewrite.slugs !rewrite_steps)
        ~gc:(Obs.Resource.gc_since gc0) ~stats (Some answer)
  | None -> ());
  ( answer,
    {
      Profile.core_order;
      vertices;
      stats;
      span;
      rows = List.length answer.rows;
      truncated = answer.truncated;
      analysis = !analysis;
      plan_mode = Stats.mode_to_string plan_mode;
      plan_seeds = List.rev !seed_reports;
      rewrites = !rewrite_steps;
    } )

let query_profiled ?timeout ?limit ?strategy ?satellites ?open_objects ?caches
    ?analyze ?domains ?plan ?rewrite t ast =
  profiled_run ?timeout ?limit ?strategy ?satellites ?open_objects ?caches
    ?analyze ?domains ?plan ?rewrite t ~parse:(fun () -> ast)

let query_string_profiled ?timeout ?limit ?strategy ?satellites ?open_objects
    ?namespaces ?analyze ?domains ?plan ?rewrite t src =
  profiled_run ?timeout ?limit ?strategy ?satellites ?open_objects ?analyze
    ?domains ?plan ?rewrite t
    ~parse:(fun () -> Sparql.Parser.parse ?namespaces src)

let recommended_domains () = max 1 (min 8 (Domain.recommended_domain_count () - 1))

(* Kept for callers of the pre-pool API: [query] with [domains]
   defaulting to the machine's recommended count. *)
let query_parallel ?timeout ?limit ?strategy ?satellites ?open_objects ?analyze
    ?domains ?plan ?rewrite t ast =
  let domains =
    match domains with Some d -> max 1 d | None -> recommended_domains ()
  in
  query ?timeout ?limit ?strategy ?satellites ?open_objects ?analyze ~domains
    ?plan ?rewrite t ast

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

(* Triple interchange: [save] keeps only the triples; [load_file]
   replays the whole offline stage. Snapshots below persist the built
   indexes themselves. *)
let save t path = Rdf.Binary.write_file path (Database.to_triples t.db)

let load_file ?synopsis_mode ?layout ?domains path =
  build ?synopsis_mode ?layout ?domains (Rdf.Binary.read_file path)

let snapshot_contents t =
  {
    Snapshot.db = t.db;
    attribute = t.attribute;
    synopsis = t.synopsis;
    neighbourhood = t.neighbourhood;
    layout = t.layout;
    stats = Some (Lazy.force t.statistics);
  }

let save_snapshot t path =
  let (), dt = timed (fun () -> Snapshot.write_file path (snapshot_contents t)) in
  Obs.Metrics.observe m_snapshot_save dt

let load_snapshot path =
  let c, dt = timed (fun () -> Snapshot.read_file path) in
  Obs.Metrics.observe m_snapshot_load dt;
  (* A v1 snapshot (or a v2 written before the stats section existed)
     carries no statistics: rebuild them lazily, on first adaptive use. *)
  of_parts ~layout:c.Snapshot.layout
    ?stats:(Option.map Lazy.from_val c.Snapshot.stats)
    ~db:c.Snapshot.db ~attribute:c.Snapshot.attribute
    ~synopsis:c.Snapshot.synopsis ~neighbourhood:c.Snapshot.neighbourhood ()

(* ------------------------------------------------------------------ *)
(* ASK and CONSTRUCT forms                                             *)
(* ------------------------------------------------------------------ *)

let ask ?timeout ?open_objects ?domains ?plan ?rewrite t ast =
  let answer =
    query ?timeout ~limit:1 ?open_objects ?domains ?plan ?rewrite t ast
  in
  answer.rows <> []

let construct ?timeout ?limit ?open_objects ?domains ?plan ?rewrite t ~template
    (ast : Sparql.Ast.t) =
  let answer = query ?timeout ?limit ?open_objects ?domains ?plan ?rewrite t ast in
  let vars = answer.variables in
  let instantiate binding term =
    match term with
    | Sparql.Ast.Iri iri -> Some (Rdf.Term.iri iri)
    | Sparql.Ast.Lit lit -> Some (Rdf.Term.Literal lit)
    | Sparql.Ast.Var v -> (
        match List.assoc_opt v binding with
        | Some (Some term) -> Some term
        | Some None | None -> None)
  in
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun row ->
      let binding = List.combine vars row in
      List.filter_map
        (fun { Sparql.Ast.subject; predicate; obj } ->
          match
            ( instantiate binding subject,
              instantiate binding predicate,
              instantiate binding obj )
          with
          | Some s, Some p, Some o -> (
              (* Skip instantiations violating RDF triple invariants,
                 as the spec requires, and deduplicate. *)
              match Rdf.Triple.make s p o with
              | triple ->
                  let key = Rdf.Triple.to_string triple in
                  if Hashtbl.mem seen key then None
                  else begin
                    Hashtbl.add seen key ();
                    Some triple
                  end
              | exception Rdf.Triple.Invalid _ -> None)
          | _ -> None)
        template)
    answer.rows
