(* Dictionary extension of a delta overlay: ids past the frozen base
   dictionaries' sizes map into these tables. The base dicts are mutable
   hashtables shared by every epoch pinned on the same generation, so
   they must never be interned into after freeze — new terms land here
   instead. *)
type ext = {
  e_vertices : (string, int) Hashtbl.t;  (* new vertex key -> id *)
  e_vertex_keys : string array;  (* id - base size -> key *)
  e_edge_types : (string, int) Hashtbl.t;
  e_edge_iris : string array;
  e_attributes : (string, int) Hashtbl.t;
  e_attr_data : (string * Rdf.Term.literal) array;
}

type t = {
  graph : Mgraph.Multigraph.t;
  vertices : Mgraph.Dict.t;  (* vertex key -> vertex id *)
  edge_types : Mgraph.Dict.t;  (* predicate IRI -> edge type id *)
  attributes : Mgraph.Dict.t;  (* attribute key -> attribute id *)
  attribute_data : (string * Rdf.Term.literal) array;  (* id -> (pred, lit) *)
  triple_count : int;
  ext : ext option;  (* Some on delta-overlay databases *)
}

(* Vertex dictionary keys: the raw IRI for IRIs, "_:label" for bnodes
   (an IRI can never start with "_:" so the encodings cannot clash). *)
let vertex_key = function
  | Rdf.Term.Iri iri -> Some iri
  | Rdf.Term.Bnode b -> Some ("_:" ^ b)
  | Rdf.Term.Literal _ -> None

let term_of_key key =
  if String.length key >= 2 && key.[0] = '_' && key.[1] = ':' then
    Rdf.Term.bnode (String.sub key 2 (String.length key - 2))
  else Rdf.Term.iri key

(* Attribute dictionary keys pair the predicate with the literal's
   canonical N-Triples rendering, separated by a NUL (never in IRIs). *)
let attr_key pred lit =
  pred ^ "\x00" ^ Rdf.Term.to_string (Rdf.Term.Literal lit)

let key_of_term = vertex_key

let of_triples ?layout triples =
  let vertices = Mgraph.Dict.create ()
  and edge_types = Mgraph.Dict.create ()
  and attributes = Mgraph.Dict.create () in
  let attribute_data = ref [] in
  let builder = Mgraph.Multigraph.Builder.create () in
  let count = ref 0 in
  List.iter
    (fun { Rdf.Triple.subject; predicate; obj } ->
      incr count;
      let s =
        match vertex_key subject with
        | Some key -> Mgraph.Dict.intern vertices key
        | None -> assert false (* Triple.make forbids literal subjects *)
      in
      let pred =
        match predicate with
        | Rdf.Term.Iri iri -> iri
        | Rdf.Term.Literal _ | Rdf.Term.Bnode _ -> assert false
      in
      match obj with
      | Rdf.Term.Literal lit ->
          let key = attr_key pred lit in
          let before = Mgraph.Dict.size attributes in
          let a = Mgraph.Dict.intern attributes key in
          if Mgraph.Dict.size attributes > before then
            attribute_data := (pred, lit) :: !attribute_data;
          Mgraph.Multigraph.Builder.add_attribute builder s a
      | Rdf.Term.Iri _ | Rdf.Term.Bnode _ ->
          let o =
            match vertex_key obj with
            | Some key -> Mgraph.Dict.intern vertices key
            | None -> assert false
          in
          let e = Mgraph.Dict.intern edge_types pred in
          Mgraph.Multigraph.Builder.add_edge builder s e o)
    triples;
  {
    graph = Mgraph.Multigraph.Builder.build ?layout builder;
    vertices;
    edge_types;
    attributes;
    attribute_data = Array.of_list (List.rev !attribute_data);
    triple_count = !count;
    ext = None;
  }

type parts = {
  p_graph : Mgraph.Multigraph.t;
  p_vertices : Mgraph.Dict.t;
  p_edge_types : Mgraph.Dict.t;
  p_attributes : Mgraph.Dict.t;
  p_attribute_data : (string * Rdf.Term.literal) array;
  p_triple_count : int;
}

let export t =
  {
    p_graph = t.graph;
    p_vertices = t.vertices;
    p_edge_types = t.edge_types;
    p_attributes = t.attributes;
    p_attribute_data = t.attribute_data;
    p_triple_count = t.triple_count;
  }

let import p =
  let g = p.p_graph in
  if Mgraph.Dict.size p.p_vertices <> Mgraph.Multigraph.vertex_count g then
    invalid_arg "Database.import: vertex dictionary / graph size mismatch";
  if Mgraph.Dict.size p.p_edge_types < Mgraph.Multigraph.edge_type_count g then
    invalid_arg "Database.import: edge-type dictionary too small for graph";
  if Array.length p.p_attribute_data <> Mgraph.Dict.size p.p_attributes then
    invalid_arg "Database.import: attribute dictionary / data length mismatch";
  let attr_count = Array.length p.p_attribute_data in
  for v = 0 to Mgraph.Multigraph.vertex_count g - 1 do
    Array.iter
      (fun a ->
        if a >= attr_count then
          invalid_arg "Database.import: attribute id out of range")
      (Mgraph.Multigraph.attributes g v)
  done;
  if p.p_triple_count < 0 then invalid_arg "Database.import: negative triple count";
  {
    graph = g;
    vertices = p.p_vertices;
    edge_types = p.p_edge_types;
    attributes = p.p_attributes;
    attribute_data = p.p_attribute_data;
    triple_count = p.p_triple_count;
    ext = None;
  }

let graph t = t.graph

let vertex_of_term t term =
  match vertex_key term with
  | None -> None
  | Some key -> (
      match Mgraph.Dict.find_opt t.vertices key with
      | Some _ as r -> r
      | None -> (
          match t.ext with
          | None -> None
          | Some e -> Hashtbl.find_opt e.e_vertices key))

let term_of_vertex t v =
  let base_n = Mgraph.Dict.size t.vertices in
  if v < base_n then term_of_key (Mgraph.Dict.value t.vertices v)
  else
    match t.ext with
    | Some e when v - base_n < Array.length e.e_vertex_keys ->
        term_of_key e.e_vertex_keys.(v - base_n)
    | _ -> invalid_arg "Database.term_of_vertex: unknown vertex id"

let edge_type_of_iri t iri =
  match Mgraph.Dict.find_opt t.edge_types iri with
  | Some _ as r -> r
  | None -> (
      match t.ext with
      | None -> None
      | Some e -> Hashtbl.find_opt e.e_edge_types iri)

let iri_of_edge_type t e =
  let base_n = Mgraph.Dict.size t.edge_types in
  if e < base_n then Mgraph.Dict.value t.edge_types e
  else
    match t.ext with
    | Some x when e - base_n < Array.length x.e_edge_iris ->
        x.e_edge_iris.(e - base_n)
    | _ -> invalid_arg "Database.iri_of_edge_type: unknown edge type id"

let attribute_of t ~pred ~lit =
  let key = attr_key pred lit in
  match Mgraph.Dict.find_opt t.attributes key with
  | Some _ as r -> r
  | None -> (
      match t.ext with
      | None -> None
      | Some e -> Hashtbl.find_opt e.e_attributes key)

let attribute_data t a =
  if a >= 0 && a < Array.length t.attribute_data then t.attribute_data.(a)
  else
    let base_n = Array.length t.attribute_data in
    match t.ext with
    | Some e when a >= base_n && a - base_n < Array.length e.e_attr_data ->
        e.e_attr_data.(a - base_n)
    | _ -> invalid_arg "Database.attribute_data: unknown attribute id"

let attribute_predicate_exists t pred =
  Array.exists (fun (p, _) -> String.equal p pred) t.attribute_data
  ||
  match t.ext with
  | None -> false
  | Some e -> Array.exists (fun (p, _) -> String.equal p pred) e.e_attr_data

let ext_len f t = match t.ext with None -> 0 | Some e -> Array.length (f e)
let vertex_count t = Mgraph.Dict.size t.vertices + ext_len (fun e -> e.e_vertex_keys) t
let edge_type_count t = Mgraph.Dict.size t.edge_types + ext_len (fun e -> e.e_edge_iris) t
let attribute_count t = Mgraph.Dict.size t.attributes + ext_len (fun e -> e.e_attr_data) t
let triple_count t = t.triple_count

let to_triples t =
  let edge_triples =
    Mgraph.Multigraph.fold_edges
      (fun v types v' acc ->
        let s = term_of_vertex t v and o = term_of_vertex t v' in
        Array.fold_left
          (fun acc ty ->
            Rdf.Triple.make s (Rdf.Term.iri (iri_of_edge_type t ty)) o :: acc)
          acc types)
      t.graph []
  in
  let n = Mgraph.Multigraph.vertex_count t.graph in
  let attr_triples = ref [] in
  for v = n - 1 downto 0 do
    Array.iter
      (fun a ->
        let pred, lit = attribute_data t a in
        attr_triples :=
          Rdf.Triple.make (term_of_vertex t v) (Rdf.Term.iri pred)
            (Rdf.Term.Literal lit)
          :: !attr_triples)
      (Mgraph.Multigraph.attributes t.graph v)
  done;
  List.rev_append edge_triples !attr_triples

let literals_of t ~vertex ~pred =
  Array.fold_right
    (fun a acc ->
      let p, lit = attribute_data t a in
      if String.equal p pred then lit :: acc else acc)
    (Mgraph.Multigraph.attributes t.graph vertex)
    []

let pp_stats ppf t =
  Format.fprintf ppf
    "@[<v>triples: %d@,%a@,attributes: %d@,attribute vertices: %d@]"
    t.triple_count Mgraph.Multigraph.pp_stats t.graph (attribute_count t)
    (Array.fold_left
       (fun n attrs -> if Array.length attrs > 0 then n + 1 else n)
       0
       (Array.init (Mgraph.Multigraph.vertex_count t.graph) (fun v ->
            Mgraph.Multigraph.attributes t.graph v)))

(* ------------------------------------------------------------------ *)
(* Delta overlay                                                       *)
(* ------------------------------------------------------------------ *)

let is_overlay t = t.ext <> None

let overlay ~base ~graph ~new_vertices ~new_edge_types ~new_attributes
    ~triple_count () =
  if base.ext <> None then
    invalid_arg "Database.overlay: base must not itself be an overlay";
  if not (Mgraph.Multigraph.is_overlay graph) then
    invalid_arg "Database.overlay: graph must be a delta overlay";
  let base_vn = Mgraph.Dict.size base.vertices in
  if Mgraph.Multigraph.vertex_count graph <> base_vn + Array.length new_vertices
  then invalid_arg "Database.overlay: vertex dictionary / graph size mismatch";
  if triple_count < 0 then
    invalid_arg "Database.overlay: negative triple count";
  let table ~what keys =
    let t = Hashtbl.create (2 * Array.length keys + 1) in
    Array.iteri
      (fun i key ->
        if Hashtbl.mem t key then
          invalid_arg (Printf.sprintf "Database.overlay: duplicate %s" what);
        Hashtbl.replace t key i)
      keys;
    t
  in
  let e_vertices = table ~what:"vertex key" new_vertices in
  Hashtbl.iter
    (fun key _ ->
      if Mgraph.Dict.mem base.vertices key then
        invalid_arg "Database.overlay: new vertex already in base")
    e_vertices;
  let e_edge_types = table ~what:"edge type" new_edge_types in
  Hashtbl.iter
    (fun iri _ ->
      if Mgraph.Dict.mem base.edge_types iri then
        invalid_arg "Database.overlay: new edge type already in base")
    e_edge_types;
  let attr_keys = Array.map (fun (p, l) -> attr_key p l) new_attributes in
  let e_attributes = table ~what:"attribute" attr_keys in
  Hashtbl.iter
    (fun key _ ->
      if Mgraph.Dict.mem base.attributes key then
        invalid_arg "Database.overlay: new attribute already in base")
    e_attributes;
  (* Shift table values past the base dictionaries so ids stay dense. *)
  let shifted tbl by =
    let t = Hashtbl.create (2 * Hashtbl.length tbl + 1) in
    Hashtbl.iter (fun k i -> Hashtbl.replace t k (i + by)) tbl;
    t
  in
  {
    graph;
    vertices = base.vertices;
    edge_types = base.edge_types;
    attributes = base.attributes;
    attribute_data = base.attribute_data;
    triple_count;
    ext =
      Some
        {
          e_vertices = shifted e_vertices base_vn;
          e_vertex_keys = new_vertices;
          e_edge_types = shifted e_edge_types (Mgraph.Dict.size base.edge_types);
          e_edge_iris = new_edge_types;
          e_attributes = shifted e_attributes (Mgraph.Dict.size base.attributes);
          e_attr_data = new_attributes;
        };
  }
