(* Versioned binary index snapshots ("AMBERIX1"): the fully built
   offline stage — dictionaries, multigraph, and the A/S/N indexes — in
   one file, so cold start is a read instead of a rebuild.

   Layout: the 8-byte magic, a format version, a section count, then the
   sections. Every section is framed as

     tag varint · length varint · payload · CRC-32 (4 bytes, LE)

   and the CRC is verified over the raw payload bytes before any of them
   are parsed, so a flipped bit fails with {!Rdf.Binary.Corrupt} instead
   of a misparse. Integers reuse [Rdf.Binary]'s LEB128 varints (zigzag
   for the signed synopsis coordinates), terms its tagged term codec.

   The encoding is canonical: every list is written in a deterministic
   order (dictionary id order, vertex id order, sorted symbols), so two
   engines holding the same indexes — however they were built —
   serialize to identical bytes. The parallel-build tests rely on this
   to compare a sequential and a 4-domain build for byte equality. *)

module B = Rdf.Binary

let magic = "AMBERIX1"

(* Format v2 stores posting lists layout-tagged in their frozen physical
   form (raw / Elias-Fano / partitioned blocks): the attribute index as
   tagged {!Mgraph.Posting} codecs, the OTIL families through the
   compiled word-table codec ({!Otil.encode_frozen}), and the build-time
   layout policy in the meta section so the adjacency postings re-freeze
   identically on load. v1 (plain delta-coded arrays everywhere) is
   still read; [version] is the default written. *)
let version = 2
let version_v1 = 1

type contents = {
  db : Database.t;
  attribute : Attribute_index.t;
  synopsis : Synopsis_index.t;
  neighbourhood : Neighbourhood_index.t;
  layout : Mgraph.Posting.policy;
  stats : Stats.t option;
}

let corrupt fmt = Printf.ksprintf (fun s -> raise (B.Corrupt s)) fmt

(* Section tags, in file order. *)
let tag_meta = 1
let tag_vertices = 2
let tag_edge_types = 3
let tag_attributes = 4
let tag_attribute_data = 5
let tag_graph = 6
let tag_attribute_index = 7
let tag_otil_in = 8
let tag_otil_out = 9
let tag_synopsis = 10

(* v2 only, and optional even there: a snapshot written by an engine
   that computed its statistics carries them; older v2 files (and every
   v1 file) simply end at the synopsis section and load with
   [stats = None] — the engine rebuilds them lazily. *)
let tag_stats = 11

let section_order =
  [
    tag_meta;
    tag_vertices;
    tag_edge_types;
    tag_attributes;
    tag_attribute_data;
    tag_graph;
    tag_attribute_index;
    tag_otil_in;
    tag_otil_out;
    tag_synopsis;
  ]

(* ------------------------------------------------------------------ *)
(* Primitive payload codecs                                            *)
(* ------------------------------------------------------------------ *)

let write_string buf s =
  B.Varint.write buf (String.length s);
  Buffer.add_string buf s

let read_string src pos =
  let len = B.Varint.read src pos in
  if !pos + len > String.length src then corrupt "truncated string";
  let s = String.sub src !pos len in
  pos := !pos + len;
  s

(* Strictly increasing id sets (edge-type sets, attribute sets, inverted
   vertex lists) are delta-coded: the first element verbatim, then the
   gaps minus one. Sorted sets have mostly tiny gaps, so almost every
   byte hits the varint fast path, and decoding restores — and thereby
   proves — sortedness for free. *)
let write_sorted_array buf a =
  let n = Array.length a in
  B.Varint.write buf n;
  if n > 0 then begin
    B.Varint.write buf a.(0);
    for i = 1 to n - 1 do
      B.Varint.write buf (a.(i) - a.(i - 1) - 1)
    done
  end

let read_sorted_array src pos =
  let len = B.Varint.read src pos in
  if len = 0 then [||]
  else begin
    let a = Array.make len (B.Varint.read src pos) in
    for i = 1 to len - 1 do
      a.(i) <- a.(i - 1) + 1 + B.Varint.read src pos
    done;
    a
  end

let write_dict buf d =
  let n = Mgraph.Dict.size d in
  B.Varint.write buf n;
  for i = 0 to n - 1 do
    write_string buf (Mgraph.Dict.value d i)
  done

let read_dict src pos =
  let n = B.Varint.read src pos in
  let d = Mgraph.Dict.create ~initial_capacity:(max 16 n) () in
  for i = 0 to n - 1 do
    let s = read_string src pos in
    if Mgraph.Dict.intern d s <> i then
      corrupt "duplicate dictionary entry %S" s
  done;
  d

(* ------------------------------------------------------------------ *)
(* Section payloads                                                    *)
(* ------------------------------------------------------------------ *)

(* Adjacency neighbours are strictly increasing within a vertex's list,
   so they delta-code the same way the id sets do. *)
let write_graph buf g =
  let out_adj, attrs = Mgraph.Multigraph.export g in
  let n = Array.length out_adj in
  B.Varint.write buf n;
  Array.iter
    (fun adj ->
      B.Varint.write buf (Array.length adj);
      let prev = ref (-1) in
      Array.iter
        (fun (v', types) ->
          B.Varint.write buf (v' - !prev - 1);
          prev := v';
          write_sorted_array buf types)
        adj)
    out_adj;
  Array.iter (write_sorted_array buf) attrs

let write_posting b p = Mgraph.Posting.encode b p

let read_posting src pos =
  match Mgraph.Posting.decode src !pos with
  | p, next ->
      pos := next;
      p
  | exception Mgraph.Posting.Corrupt msg -> corrupt "%s" msg

let read_graph ?layout src pos =
  let n = B.Varint.read src pos in
  let out_adj =
    Array.init n (fun _ ->
        let deg = B.Varint.read src pos in
        let prev = ref (-1) in
        Array.init deg (fun _ ->
            let v' = !prev + 1 + B.Varint.read src pos in
            prev := v';
            (v', read_sorted_array src pos)))
  in
  let attrs = Array.init n (fun _ -> read_sorted_array src pos) in
  match Mgraph.Multigraph.import ?layout ~out_adj ~attrs () with
  | g -> g
  | exception Invalid_argument msg -> corrupt "bad graph section: %s" msg

let write_attribute_data buf data =
  B.Varint.write buf (Array.length data);
  Array.iter
    (fun (pred, lit) ->
      write_string buf pred;
      B.write_term buf (Rdf.Term.Literal lit))
    data

let read_attribute_data src pos =
  let n = B.Varint.read src pos in
  Array.init n (fun _ ->
      let pred = read_string src pos in
      match B.read_term src pos with
      | Rdf.Term.Literal lit -> (pred, lit)
      | Rdf.Term.Iri _ | Rdf.Term.Bnode _ ->
          corrupt "attribute datum is not a literal")

let write_otil_array buf tries =
  B.Varint.write buf (Array.length tries);
  Array.iter (Otil.encode buf ~write_int:B.Varint.write) tries

let read_otil_array ?policy src pos =
  let n = B.Varint.read src pos in
  Array.init n (fun _ ->
      match Otil.decode ?policy src pos ~read_int:B.Varint.read with
      | trie -> trie
      | exception Failure msg -> corrupt "%s" msg)

(* v2: the frozen word-table codec, value postings layout-tagged. *)
let write_otil_array_frozen buf tries =
  B.Varint.write buf (Array.length tries);
  Array.iter
    (Otil.encode_frozen buf ~write_int:B.Varint.write ~write_posting)
    tries

let read_otil_array_frozen ?policy src pos =
  let n = B.Varint.read src pos in
  Array.init n (fun _ ->
      match
        Otil.decode_frozen ?policy src pos ~read_int:B.Varint.read
          ~read_posting
      with
      | trie -> trie
      | exception Failure msg -> corrupt "%s" msg)

(* Only the synopses and the packed tree structure are stored: every
   leaf rectangle is [lower .. synopsis(v)] and the decoder rebuilds the
   geometry from the synopses ({!Rtree.decode}'s [rect_of_value]). *)
let write_synopsis buf s =
  let mode, synopses, tree = Synopsis_index.export s in
  B.Varint.write buf (match mode with Synopsis_index.Scan -> 0 | Rtree -> 1);
  B.Varint.write buf (Array.length synopses);
  Array.iter (fun syn -> Array.iter (B.Varint.write_signed buf) syn) synopses;
  Rtree.encode buf ~write_int:B.Varint.write ~write_value:B.Varint.write tree

let read_synopsis src pos =
  let mode =
    match B.Varint.read src pos with
    | 0 -> Synopsis_index.Scan
    | 1 -> Synopsis_index.Rtree
    | m -> corrupt "unknown synopsis mode %d" m
  in
  let n = B.Varint.read src pos in
  let synopses =
    Array.init n (fun _ ->
        Array.init Mgraph.Synopsis.dims (fun _ -> B.Varint.read_signed src pos))
  in
  let lower = Synopsis_index.lower_of synopses in
  let rect_of_value v =
    if v < 0 || v >= n then failwith "Rtree.decode: leaf value out of range";
    Rect.make ~lo:lower ~hi:synopses.(v)
  in
  let tree =
    match
      Rtree.decode src pos ~read_int:B.Varint.read ~read_value:B.Varint.read
        ~rect_of_value
    with
    | tree -> tree
    | exception Failure msg -> corrupt "%s" msg
  in
  match Synopsis_index.import ~mode ~synopses ~tree with
  | s -> s
  | exception Invalid_argument msg -> corrupt "bad synopsis section: %s" msg

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let add_section buf tag payload =
  B.Varint.write buf tag;
  B.Varint.write buf (Buffer.length payload);
  let bytes = Buffer.contents payload in
  Buffer.add_string buf bytes;
  let crc = B.crc32 bytes in
  for shift = 0 to 3 do
    Buffer.add_char buf (Char.chr ((crc lsr (8 * shift)) land 0xFF))
  done

let encode_version v buf t =
  Buffer.add_string buf magic;
  B.Varint.write buf v;
  let with_stats = v >= 2 && t.stats <> None in
  B.Varint.write buf
    (List.length section_order + if with_stats then 1 else 0);
  let parts = Database.export t.db in
  let incoming, outgoing = Neighbourhood_index.export t.neighbourhood in
  let section tag fill =
    let payload = Buffer.create 4096 in
    fill payload;
    add_section buf tag payload
  in
  section tag_meta (fun b ->
      B.Varint.write b parts.Database.p_triple_count;
      if v >= 2 then write_string b (Mgraph.Posting.policy_to_string t.layout));
  section tag_vertices (fun b -> write_dict b parts.Database.p_vertices);
  section tag_edge_types (fun b -> write_dict b parts.Database.p_edge_types);
  section tag_attributes (fun b -> write_dict b parts.Database.p_attributes);
  section tag_attribute_data (fun b ->
      write_attribute_data b parts.Database.p_attribute_data);
  section tag_graph (fun b -> write_graph b parts.Database.p_graph);
  section tag_attribute_index (fun b ->
      if v >= 2 then begin
        let lists = Attribute_index.postings t.attribute in
        B.Varint.write b (Array.length lists);
        Array.iter (write_posting b) lists
      end
      else begin
        let lists = Attribute_index.export t.attribute in
        B.Varint.write b (Array.length lists);
        Array.iter (write_sorted_array b) lists
      end);
  let write_tries b tries =
    if v >= 2 then write_otil_array_frozen b tries else write_otil_array b tries
  in
  section tag_otil_in (fun b -> write_tries b incoming);
  section tag_otil_out (fun b -> write_tries b outgoing);
  section tag_synopsis (fun b -> write_synopsis b t.synopsis);
  match t.stats with
  | Some st when with_stats ->
      section tag_stats (fun b -> write_string b (Stats.encode st))
  | _ -> ()

let encode buf t = encode_version version buf t
let encode_v1 buf t = encode_version version_v1 buf t

let to_string t =
  let buf = Buffer.create (1 lsl 20) in
  encode buf t;
  Buffer.contents buf

let to_string_v1 t =
  let buf = Buffer.create (1 lsl 20) in
  encode_v1 buf t;
  Buffer.contents buf

(* Frame check first: tag as expected, payload in bounds, CRC over the
   raw bytes matches — only then parse. [parse] must consume the payload
   exactly. *)
let read_section src pos expected_tag parse =
  let tag = B.Varint.read src pos in
  if tag <> expected_tag then
    corrupt "unexpected section tag %d (wanted %d)" tag expected_tag;
  let len = B.Varint.read src pos in
  if !pos + len + 4 > String.length src then corrupt "truncated section";
  let payload_start = !pos in
  let payload_end = payload_start + len in
  let stored =
    let b i = Char.code src.[payload_end + i] in
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  in
  if B.crc32 ~off:payload_start ~len src <> stored then
    corrupt "bad CRC in section %d" tag;
  let v = parse src pos in
  if !pos <> payload_end then corrupt "trailing bytes in section %d" tag;
  pos := payload_end + 4;
  v

let decode src =
  let mn = String.length magic in
  if String.length src < mn || String.sub src 0 mn <> magic then
    corrupt "bad magic (not an AMbER index snapshot)";
  let pos = ref mn in
  let v = B.Varint.read src pos in
  if v <> version && v <> version_v1 then
    corrupt "unsupported snapshot version %d" v;
  let count = B.Varint.read src pos in
  let base_count = List.length section_order in
  (* The stats section is optional (and v2-only): a count of
     [base_count] is a pre-stats file, [base_count + 1] carries it. *)
  if
    count <> base_count && not (v >= 2 && count = base_count + 1)
  then corrupt "unexpected section count %d" count;
  let sect tag parse = read_section src pos tag parse in
  let triple_count, layout =
    sect tag_meta (fun s p ->
        let n = B.Varint.read s p in
        if v < 2 then (n, Mgraph.Posting.Auto)
        else
          let name = read_string s p in
          match Mgraph.Posting.policy_of_string name with
          | Some policy -> (n, policy)
          | None -> corrupt "unknown layout policy %S" name)
  in
  let vertices = sect tag_vertices read_dict in
  let edge_types = sect tag_edge_types read_dict in
  let attributes = sect tag_attributes read_dict in
  let attribute_data = sect tag_attribute_data read_attribute_data in
  let graph = sect tag_graph (read_graph ~layout) in
  let attr_section =
    sect tag_attribute_index (fun s p ->
        let n = B.Varint.read s p in
        if v >= 2 then `Postings (Array.init n (fun _ -> read_posting s p))
        else `Arrays (Array.init n (fun _ -> read_sorted_array s p)))
  in
  let read_tries = if v >= 2 then read_otil_array_frozen else read_otil_array in
  let incoming = sect tag_otil_in (read_tries ~policy:layout) in
  let outgoing = sect tag_otil_out (read_tries ~policy:layout) in
  let synopsis = sect tag_synopsis read_synopsis in
  let stats =
    if count = List.length section_order then None
    else
      Some
        (sect tag_stats (fun s p ->
             match Stats.decode (read_string s p) with
             | st -> st
             | exception Stats.Corrupt msg ->
                 corrupt "bad stats section: %s" msg))
  in
  if !pos <> String.length src then corrupt "trailing bytes after sections";
  let db =
    match
      Database.import
        {
          Database.p_graph = graph;
          p_vertices = vertices;
          p_edge_types = edge_types;
          p_attributes = attributes;
          p_attribute_data = attribute_data;
          p_triple_count = triple_count;
        }
    with
    | db -> db
    | exception Invalid_argument msg -> corrupt "inconsistent snapshot: %s" msg
  in
  let n = Mgraph.Multigraph.vertex_count graph in
  let attribute =
    match attr_section with
    | `Arrays attr_lists ->
        if Array.length attr_lists <> Mgraph.Dict.size attributes then
          corrupt "attribute index / dictionary size mismatch";
        Array.iter
          (fun l ->
            if Array.length l > 0 && l.(Array.length l - 1) >= n then
              corrupt "attribute index vertex out of range")
          attr_lists;
        (match Attribute_index.import ~layout attr_lists with
        | a -> a
        | exception Invalid_argument msg ->
            corrupt "inconsistent snapshot: %s" msg)
    | `Postings lists ->
        if Array.length lists <> Mgraph.Dict.size attributes then
          corrupt "attribute index / dictionary size mismatch";
        Array.iter
          (fun l ->
            match Mgraph.Posting.next_geq l n with
            | Some _ -> corrupt "attribute index vertex out of range"
            | None -> ())
          lists;
        Attribute_index.of_postings lists
  in
  if Array.length incoming <> n || Array.length outgoing <> n then
    corrupt "neighbourhood index / graph size mismatch";
  let neighbourhood = Neighbourhood_index.of_tries ~incoming ~outgoing in
  (match Synopsis_index.export synopsis with
  | _, synopses, _ ->
      if Array.length synopses <> n then
        corrupt "synopsis index / graph size mismatch");
  (match stats with
  | Some st when Stats.(st.vertices) <> n ->
      corrupt "stats section / graph size mismatch"
  | _ -> ());
  { db; attribute; synopsis; neighbourhood; layout; stats }

(* ------------------------------------------------------------------ *)
(* Static validation (fsck)                                            *)
(* ------------------------------------------------------------------ *)

let section_name = function
  | 1 -> "meta"
  | 2 -> "vertices"
  | 3 -> "edge-types"
  | 4 -> "attributes"
  | 5 -> "attribute-data"
  | 6 -> "graph"
  | 7 -> "attribute-index"
  | 8 -> "otil-in"
  | 9 -> "otil-out"
  | 10 -> "synopsis"
  | 11 -> "stats"
  | t -> Printf.sprintf "unknown-%d" t

(* Frame-only walk: magic, version, then every section's tag, payload
   length and CRC — nothing is parsed. Returns (name, payload bytes) in
   file order. *)
let frame_walk src =
  let mn = String.length magic in
  if String.length src < mn || String.sub src 0 mn <> magic then
    corrupt "bad magic (not an AMbER index snapshot)";
  let pos = ref mn in
  let v = B.Varint.read src pos in
  if v <> version && v <> version_v1 then
    corrupt "unsupported snapshot version %d" v;
  let count = B.Varint.read src pos in
  let base_count = List.length section_order in
  if
    count <> base_count && not (v >= 2 && count = base_count + 1)
  then corrupt "unexpected section count %d" count;
  let expected_tags =
    if count = base_count then section_order
    else section_order @ [ tag_stats ]
  in
  List.map
    (fun expected_tag ->
      let tag = B.Varint.read src pos in
      if tag <> expected_tag then
        corrupt "unexpected section tag %d (wanted %d)" tag expected_tag;
      let len = B.Varint.read src pos in
      if !pos + len + 4 > String.length src then corrupt "truncated section";
      let payload_end = !pos + len in
      let stored =
        let b i = Char.code src.[payload_end + i] in
        b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
      in
      if B.crc32 ~off:!pos ~len src <> stored then
        corrupt "bad CRC in section %d (%s)" tag (section_name tag);
      pos := payload_end + 4;
      (section_name tag, len))
    expected_tags

type fsck_report = {
  sections : (string * int) list;
  f_vertices : int;
  f_edge_types : int;
  f_attributes : int;
  f_triples : int;
}

(* Validate without serving: the frame check (CRCs, tags, lengths), then
   the full decode — which re-derives and thereby proves dictionary id
   ranges, delta-coded monotonicity and cross-section consistency — and
   finally the R-tree invariant check the decoder itself skips. *)
let fsck src =
  match frame_walk src with
  | exception B.Corrupt msg -> Error msg
  | sections -> (
      match decode src with
      | exception B.Corrupt msg -> Error msg
      | contents -> (
          let _, _, tree = Synopsis_index.export contents.synopsis in
          match Rtree.check_invariants tree with
          | Error msg -> Error (Printf.sprintf "synopsis R-tree: %s" msg)
          | Ok () ->
              Ok
                {
                  sections;
                  f_vertices = Database.vertex_count contents.db;
                  f_edge_types = Database.edge_type_count contents.db;
                  f_attributes = Database.attribute_count contents.db;
                  f_triples = Database.triple_count contents.db;
                }))

let pp_fsck_report ppf r =
  Format.fprintf ppf "@[<v>sections:@,";
  List.iter
    (fun (name, len) -> Format.fprintf ppf "  %-16s %8d bytes  crc ok@," name len)
    r.sections;
  Format.fprintf ppf
    "vertices=%d edge_types=%d attributes=%d triples=%d@,all invariants hold@]"
    r.f_vertices r.f_edge_types r.f_attributes r.f_triples

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let write_file path t =
  let buf = Buffer.create (1 lsl 20) in
  encode buf t;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  decode src

let fsck_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    src
  with
  | exception Sys_error msg -> Error msg
  | src -> fsck src

let sniff_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      let ok =
        match really_input_string ic (String.length magic) with
        | s -> String.equal s magic
        | exception End_of_file -> false
      in
      close_in ic;
      ok
