(** A small reusable pool of worker domains (OCaml 5 [Domain]s).

    The engine's parallel matcher splits the initial candidate set of a
    query component into many more chunks than domains; idle domains
    steal the next unclaimed chunk from a shared atomic counter, so a
    skewed chunk (one hub candidate hiding an enormous subtree) does not
    leave the other domains idle. Worker domains are spawned lazily, kept
    alive between queries — domain spawn costs a few hundred
    microseconds, far too much to pay per query under heavy traffic —
    and joined at process exit.

    The pool itself holds no query state: every chunk closure carries its
    own matcher context, so the only sharing between domains is whatever
    the closures capture (read-only indexes, mutex-guarded LRUs, atomic
    counters). *)

type t

val create : workers:int -> t
(** A pool with [workers] worker domains (spawned lazily on first use).
    [workers] may be 0: {!run_chunks} then degrades to the calling
    domain processing every chunk itself. *)

val workers : t -> int
(** Current number of spawned worker domains. *)

val global : unit -> t
(** The process-wide pool used by {!Engine}. Created on first use with
    no workers; {!run_chunks} grows it on demand up to {!max_workers}.
    Joined automatically at process exit. *)

val max_workers : int
(** Hard cap on the global pool's worker count (7 — caller plus workers
    never exceed 8 domains, matching {!Engine.recommended_domains}). *)

val shutdown : t -> unit
(** Drain queued jobs, stop and join every worker domain. Subsequent
    {!run_chunks} calls still complete — the calling domain does all the
    work itself. The global pool is shut down via [at_exit]; call this
    only on pools you {!create}. *)

val quiesce : t -> unit
(** Drain queued jobs and join every worker domain, but leave the pool
    usable: the next {!run_chunks} respawns workers on demand.

    An idle worker is {e not} free: every parked domain must be
    coordinated with on each stop-the-world minor collection, which
    measurably slows all single-domain work in the process (snapshot
    decoding runs ~1.7x slower with three parked workers). Callers that
    use the pool for a one-shot burst — parallel index construction —
    should quiesce it afterwards; steady query traffic keeps its workers
    and pays one respawn after each quiesce. *)

val run_chunks :
  t -> participants:int -> chunks:int -> (int -> 'a) -> 'a array
(** [run_chunks pool ~participants ~chunks f] evaluates [f c] once for
    every chunk index [0 <= c < chunks] and returns the results in chunk
    order (the deterministic-merge guarantee the engine relies on).

    At most [participants] domains run chunks concurrently: the calling
    domain always participates, joined by up to [participants - 1] pool
    workers (grown on demand, capped by the pool size). Chunks are
    claimed dynamically — each participant repeatedly takes the lowest
    unclaimed index — so long chunks are balanced by the remaining
    participants picking up the rest.

    The call returns only after every chunk has finished; no domain is
    left running chunk work afterwards. If chunk evaluations raise, the
    exception of the {e lowest} chunk index is re-raised (again
    deterministic, independent of scheduling). *)
