module Posting = Mgraph.Posting

module Key = struct
  type t = int * Mgraph.Multigraph.direction * int array

  let equal (v1, d1, t1) (v2, d2, t2) =
    v1 = v2 && d1 = d2 && Mgraph.Sorted_ints.equal t1 t2

  let hash (v, d, types) =
    let h = ref ((v * 2) + match d with Mgraph.Multigraph.Out -> 0 | In -> 1) in
    Array.iter (fun x -> h := (!h * 1_000_003) + x) types;
    !h land max_int
end

module H = Hashtbl.Make (Key)

type t = {
  probes : Posting.t H.t;  (* (data vertex, dir, types) -> neighbours *)
  vertices : (int, Posting.t option) Hashtbl.t;
      (* query vertex -> ProcessVertex result *)
}

let create () = { probes = H.create 64; vertices = Hashtbl.create 16 }

let find_probe t v dir types = H.find_opt t.probes (v, dir, types)
let add_probe t v dir types r = H.replace t.probes (v, dir, types) r

let find_vertex t u = Hashtbl.find_opt t.vertices u
let add_vertex t u r = Hashtbl.replace t.vertices u r
