(** Small LRU cache keyed by sorted [int array]s.

    Backs the engine's cross-query caches: attribute-index candidate
    sets (keyed by the query vertex's attribute set) and synopsis
    candidate sets (keyed by the query synopsis vector). Eviction is
    amortized — the table grows to twice its capacity, then the
    least-recently-used half is dropped in one sweep — so inserts stay
    O(1) amortized without per-entry list links.

    Not thread-safe: callers sharing a cache across domains must
    serialize access (the engine guards its instances with a mutex). *)

type 'v t

val create : cap:int -> 'v t
(** @raise Invalid_argument when [cap <= 0]. The table holds at most
    [2 * cap] entries transiently, [cap] after a prune. *)

val find : 'v t -> int array -> 'v option
(** Lookup; refreshes recency and bumps the hit/miss counter. *)

val add : 'v t -> int array -> 'v -> unit
(** Insert or refresh a binding. The key array must not be mutated
    afterwards. *)

val length : 'v t -> int
val hits : 'v t -> int
val misses : 'v t -> int

val clear : 'v t -> unit
(** Drop all entries and zero the counters. *)
