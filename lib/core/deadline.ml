type t = { limit : float; mutable ticks : int }

exception Expired

(* Poll the clock once every [interval] checks. *)
let interval = 256
let poll_interval = interval

let after seconds = { limit = Unix.gettimeofday () +. seconds; ticks = 0 }
let never = { limit = infinity; ticks = 0 }

let check t =
  if t.limit <> infinity then begin
    t.ticks <- t.ticks + 1;
    if t.ticks >= interval then begin
      t.ticks <- 0;
      if Unix.gettimeofday () > t.limit then raise Expired
    end
  end

let expired t = t.limit <> infinity && Unix.gettimeofday () > t.limit
let remaining t = if t.limit = infinity then infinity else t.limit -. Unix.gettimeofday ()
