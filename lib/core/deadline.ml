type t = { limit : float; mutable ticks : int }

exception Expired

(* Poll the clock once every [interval] checks. *)
let interval = 256
let poll_interval = interval

let after seconds = { limit = Unix.gettimeofday () +. seconds; ticks = 0 }
let never = { limit = infinity; ticks = 0 }

(* Same absolute limit, private tick counter — the parallel engine gives
   each domain its own clone so the amortized polling state is never
   shared across domains. The counter starts one tick short of a poll:
   work is split into many short chunks, and if each clone restarted the
   amortization from zero a chunk doing fewer than [interval] checks
   would never consult the clock at all, breaking timeouts. *)
let clone t = { limit = t.limit; ticks = interval - 1 }

let check t =
  if t.limit <> infinity then begin
    t.ticks <- t.ticks + 1;
    if t.ticks >= interval then begin
      t.ticks <- 0;
      if Unix.gettimeofday () > t.limit then raise Expired
    end
  end

let expired t = t.limit <> infinity && Unix.gettimeofday () > t.limit
let remaining t = if t.limit = infinity then infinity else t.limit -. Unix.gettimeofday ()
