(** Vertex signature index — the index [S] (paper Section 4.2).

    Stores the 8-feature synopsis of every data vertex in an R-tree;
    querying with a query vertex's synopsis returns every data vertex
    whose synopsis rectangle contains the query rectangle (Lemma 1
    guarantees no valid candidate is lost). A linear-scan mode is kept
    for the ablation benchmark. *)

type t

type mode = Rtree | Scan

val build : ?mode:mode -> ?max_entries:int -> Database.t -> t

val mode : t -> mode

val candidates : t -> Mgraph.Synopsis.t -> int array
(** Sorted data vertices whose synopsis dominates the query synopsis. *)

val candidates_of_signature : t -> Mgraph.Signature.t -> int array

val vertex_synopsis : t -> int -> Mgraph.Synopsis.t
(** The stored synopsis of a data vertex. *)

val probes : t -> int
(** Lifetime number of {!candidates} lookups (either mode) — exported by
    the observability layer ([amber_synopsis_index_probes_total]). *)
