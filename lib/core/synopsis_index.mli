(** Vertex signature index — the index [S] (paper Section 4.2).

    Stores the 8-feature synopsis of every data vertex in an R-tree;
    querying with a query vertex's synopsis returns every data vertex
    whose synopsis rectangle contains the query rectangle (Lemma 1
    guarantees no valid candidate is lost). A linear-scan mode is kept
    for the ablation benchmark. *)

type t

type mode = Rtree | Scan

val build : ?mode:mode -> ?max_entries:int -> Database.t -> t

val synopses_range : Database.t -> lo:int -> hi:int -> Mgraph.Synopsis.t array
(** Synopses of the vertex range [lo, hi) — the shardable part of the
    build, computed per chunk by the parallel index construction. *)

val lower_of : Mgraph.Synopsis.t array -> int array
(** Componentwise minimum over all synopses (clamped at 0) — the shared
    lower corner of every stored R-tree rectangle. The snapshot decoder
    uses it to rebuild leaf rectangles from the synopses alone. *)

val of_synopses :
  ?mode:mode -> ?max_entries:int -> Mgraph.Synopsis.t array -> t
(** Assemble the index from precomputed per-vertex synopses (element [v]
    belongs to vertex [v]): derives the componentwise lower bound and
    STR-bulk-loads the R-tree. [build db = of_synopses (all synopses)]. *)

val export : t -> mode * Mgraph.Synopsis.t array * int Rtree.t
(** Parts for the snapshot codec. The lower bound is not exported — it
    is a function of the synopses and is recomputed on {!import}.
    @raise Invalid_argument on an overlay index. *)

val overlay : base:t -> graph:Mgraph.Multigraph.t -> touched:int list -> unit -> t
(** Delta overlay: the merged synopsis of every vertex in [touched] is
    recomputed from the overlay [graph] and shadows the base entry (or
    creates one for new vertices); {!candidates} answers the base R-tree
    minus stale touched entries plus the touched vertices that still
    dominate. {!maxima} becomes [base ⊔ touched] — still a sound upper
    bound for Lemma 1 screening, merely loose after deletions. The base
    index is shared, never mutated.
    @raise Invalid_argument on an overlay base or out-of-range ids. *)

val import :
  mode:mode -> synopses:Mgraph.Synopsis.t array -> tree:int Rtree.t -> t
(** Reassemble from exported parts. @raise Invalid_argument on a
    dimensionality or tree-size mismatch. *)

val mode : t -> mode

val candidates : t -> Mgraph.Synopsis.t -> int array
(** Sorted data vertices whose synopsis dominates the query synopsis. *)

val candidates_of_signature : t -> Mgraph.Signature.t -> int array

val vertex_synopsis : t -> int -> Mgraph.Synopsis.t
(** The stored synopsis of a data vertex. *)

val maxima : t -> int array
(** Componentwise maximum over every stored synopsis (a fresh copy) —
    the upper corner of the R-tree root. A query synopsis exceeding it
    on any dimension has {e zero} candidates (Lemma 1 lifted to compile
    time); the static analyzer turns that into an unsatisfiability
    proof. Dimensions of an all-empty dataset hold
    {!Mgraph.Synopsis.f3_empty}. *)

val probes : t -> int
(** Lifetime number of {!candidates} lookups (either mode) — exported by
    the observability layer ([amber_synopsis_index_probes_total]). *)
