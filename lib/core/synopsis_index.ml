type mode = Rtree | Scan

(* Delta overlay: merged synopses of the vertices the write store
   touched; everything else answers from the frozen base. *)
type patch = {
  s_touched : (int, Mgraph.Synopsis.t) Hashtbl.t;
  s_graph : Mgraph.Multigraph.t;  (* overlay graph, for fallback lookups *)
  s_vertices : int;  (* overlay vertex count (>= base) *)
  s_upper : int array;  (* base upper ⊔ touched synopses *)
}

type t = {
  mode : mode;
  synopses : Mgraph.Synopsis.t array;  (* per data vertex *)
  lower : int array;  (* componentwise minimum over all synopses *)
  upper : int array;  (* componentwise maximum over all synopses *)
  tree : int Rtree.t;  (* populated in Rtree mode *)
  patch : patch option;
  mutable probes : int;  (* lifetime lookup count; racy under domains,
                            lost increments are acceptable *)
}

(* The R-tree encodes the dominance test [∀i. q_i ≤ d_i] as rectangle
   containment: every data synopsis [d] is stored as the box
   [lower .. d] where [lower] is the per-dimension minimum over the
   dataset, and a query synopsis [q] probes with the point box
   [q' .. q'] where [q'_i = max(q_i, lower_i)]. Clamping is sound: when
   [q_i < lower_i] every data vertex already satisfies the inequality on
   dimension [i]. *)

let synopses_range db ~lo ~hi =
  let g = Database.graph db in
  Array.init (hi - lo) (fun i -> Mgraph.Synopsis.of_vertex g (lo + i))

let lower_of synopses =
  let lower = Array.make Mgraph.Synopsis.dims 0 in
  Array.iter
    (fun syn ->
      for i = 0 to Mgraph.Synopsis.dims - 1 do
        if syn.(i) < lower.(i) then lower.(i) <- syn.(i)
      done)
    synopses;
  lower

(* Componentwise maximum, floored at the empty-side sentinel so an
   all-empty dataset still compares correctly against query synopses. *)
let upper_of synopses =
  let upper = Array.make Mgraph.Synopsis.dims Mgraph.Synopsis.f3_empty in
  Array.iter
    (fun syn ->
      for i = 0 to Mgraph.Synopsis.dims - 1 do
        if syn.(i) > upper.(i) then upper.(i) <- syn.(i)
      done)
    synopses;
  upper

let of_synopses ?(mode = Rtree) ?(max_entries = 16) synopses =
  let n = Array.length synopses in
  let lower = lower_of synopses in
  let tree =
    match mode with
    | Scan -> Rtree.empty ()
    | Rtree ->
        Rtree.bulk_load ~max_entries
          (List.init n (fun v ->
               (Rect.make ~lo:lower ~hi:synopses.(v), v)))
  in
  { mode; synopses; lower; upper = upper_of synopses; tree; patch = None; probes = 0 }

let build ?mode ?max_entries db =
  let g = Database.graph db in
  let n = Mgraph.Multigraph.vertex_count g in
  of_synopses ?mode ?max_entries (synopses_range db ~lo:0 ~hi:n)

let export t =
  if t.patch <> None then invalid_arg "Synopsis_index.export: overlay index";
  (t.mode, t.synopses, t.tree)

let import ~mode ~synopses ~tree =
  Array.iter
    (fun syn ->
      if Array.length syn <> Mgraph.Synopsis.dims then
        invalid_arg "Synopsis_index.import: bad synopsis dimensionality")
    synopses;
  (match mode with
  | Scan -> ()
  | Rtree ->
      if Rtree.size tree <> Array.length synopses then
        invalid_arg "Synopsis_index.import: tree size / synopsis count mismatch");
  {
    mode;
    synopses;
    lower = lower_of synopses;
    upper = upper_of synopses;
    tree;
    patch = None;
    probes = 0;
  }

let mode t = t.mode

let overlay ~base ~graph ~touched () =
  if base.patch <> None then
    invalid_arg "Synopsis_index.overlay: base must be frozen";
  let n = Mgraph.Multigraph.vertex_count graph in
  if n < Array.length base.synopses then
    invalid_arg "Synopsis_index.overlay: graph smaller than base";
  let tbl = Hashtbl.create (2 * List.length touched + 1) in
  let upper = Array.copy base.upper in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg "Synopsis_index.overlay: vertex out of range";
      let syn = Mgraph.Synopsis.of_vertex graph v in
      for i = 0 to Mgraph.Synopsis.dims - 1 do
        if syn.(i) > upper.(i) then upper.(i) <- syn.(i)
      done;
      Hashtbl.replace tbl v syn)
    touched;
  {
    base with
    patch = Some { s_touched = tbl; s_graph = graph; s_vertices = n; s_upper = upper };
    probes = 0;
  }

let effective_synopsis t v =
  match t.patch with
  | None -> t.synopses.(v)
  | Some p -> (
      match Hashtbl.find_opt p.s_touched v with
      | Some syn -> syn
      | None ->
          if v < Array.length t.synopses then t.synopses.(v)
          else Mgraph.Synopsis.of_vertex p.s_graph v)

let candidates t query =
  t.probes <- t.probes + 1;
  match (t.mode, t.patch) with
  | Scan, _ ->
      let n =
        match t.patch with
        | None -> Array.length t.synopses
        | Some p -> p.s_vertices
      in
      let out = ref [] in
      for v = n - 1 downto 0 do
        if Mgraph.Synopsis.dominates ~data:(effective_synopsis t v) ~query then
          out := v :: !out
      done;
      Array.of_list !out
  | Rtree, patch ->
      let clamped =
        Array.init Mgraph.Synopsis.dims (fun i -> max query.(i) t.lower.(i))
      in
      let box = Rect.make ~lo:clamped ~hi:clamped in
      let vs = Rtree.fold_containing box (fun v acc -> v :: acc) t.tree [] in
      let base = Mgraph.Sorted_ints.of_list vs in
      (match patch with
      | None -> base
      | Some p ->
          (* The tree only knows base synopses: drop every touched vertex
             from its answer, then re-admit the touched ones whose merged
             synopsis still dominates the query. *)
          let kept =
            Array.of_list
              (List.filter
                 (fun v -> not (Hashtbl.mem p.s_touched v))
                 (Array.to_list base))
          in
          let extra = ref [] in
          Hashtbl.iter
            (fun v syn ->
              if Mgraph.Synopsis.dominates ~data:syn ~query then
                extra := v :: !extra)
            p.s_touched;
          Mgraph.Sorted_ints.union kept (Mgraph.Sorted_ints.of_list !extra))

let candidates_of_signature t s = candidates t (Mgraph.Synopsis.of_signature s)

let vertex_synopsis t v = effective_synopsis t v

let maxima t =
  match t.patch with
  | None -> Array.copy t.upper
  | Some p -> Array.copy p.s_upper

let probes t = t.probes
