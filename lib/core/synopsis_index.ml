type mode = Rtree | Scan

type t = {
  mode : mode;
  synopses : Mgraph.Synopsis.t array;  (* per data vertex *)
  lower : int array;  (* componentwise minimum over all synopses *)
  upper : int array;  (* componentwise maximum over all synopses *)
  tree : int Rtree.t;  (* populated in Rtree mode *)
  mutable probes : int;  (* lifetime lookup count; racy under domains,
                            lost increments are acceptable *)
}

(* The R-tree encodes the dominance test [∀i. q_i ≤ d_i] as rectangle
   containment: every data synopsis [d] is stored as the box
   [lower .. d] where [lower] is the per-dimension minimum over the
   dataset, and a query synopsis [q] probes with the point box
   [q' .. q'] where [q'_i = max(q_i, lower_i)]. Clamping is sound: when
   [q_i < lower_i] every data vertex already satisfies the inequality on
   dimension [i]. *)

let synopses_range db ~lo ~hi =
  let g = Database.graph db in
  Array.init (hi - lo) (fun i -> Mgraph.Synopsis.of_vertex g (lo + i))

let lower_of synopses =
  let lower = Array.make Mgraph.Synopsis.dims 0 in
  Array.iter
    (fun syn ->
      for i = 0 to Mgraph.Synopsis.dims - 1 do
        if syn.(i) < lower.(i) then lower.(i) <- syn.(i)
      done)
    synopses;
  lower

(* Componentwise maximum, floored at the empty-side sentinel so an
   all-empty dataset still compares correctly against query synopses. *)
let upper_of synopses =
  let upper = Array.make Mgraph.Synopsis.dims Mgraph.Synopsis.f3_empty in
  Array.iter
    (fun syn ->
      for i = 0 to Mgraph.Synopsis.dims - 1 do
        if syn.(i) > upper.(i) then upper.(i) <- syn.(i)
      done)
    synopses;
  upper

let of_synopses ?(mode = Rtree) ?(max_entries = 16) synopses =
  let n = Array.length synopses in
  let lower = lower_of synopses in
  let tree =
    match mode with
    | Scan -> Rtree.empty ()
    | Rtree ->
        Rtree.bulk_load ~max_entries
          (List.init n (fun v ->
               (Rect.make ~lo:lower ~hi:synopses.(v), v)))
  in
  { mode; synopses; lower; upper = upper_of synopses; tree; probes = 0 }

let build ?mode ?max_entries db =
  let g = Database.graph db in
  let n = Mgraph.Multigraph.vertex_count g in
  of_synopses ?mode ?max_entries (synopses_range db ~lo:0 ~hi:n)

let export t = (t.mode, t.synopses, t.tree)

let import ~mode ~synopses ~tree =
  Array.iter
    (fun syn ->
      if Array.length syn <> Mgraph.Synopsis.dims then
        invalid_arg "Synopsis_index.import: bad synopsis dimensionality")
    synopses;
  (match mode with
  | Scan -> ()
  | Rtree ->
      if Rtree.size tree <> Array.length synopses then
        invalid_arg "Synopsis_index.import: tree size / synopsis count mismatch");
  {
    mode;
    synopses;
    lower = lower_of synopses;
    upper = upper_of synopses;
    tree;
    probes = 0;
  }

let mode t = t.mode

let candidates t query =
  t.probes <- t.probes + 1;
  match t.mode with
  | Scan ->
      let out = ref [] in
      for v = Array.length t.synopses - 1 downto 0 do
        if Mgraph.Synopsis.dominates ~data:t.synopses.(v) ~query then
          out := v :: !out
      done;
      Array.of_list !out
  | Rtree ->
      let clamped =
        Array.init Mgraph.Synopsis.dims (fun i -> max query.(i) t.lower.(i))
      in
      let box = Rect.make ~lo:clamped ~hi:clamped in
      let vs = Rtree.fold_containing box (fun v acc -> v :: acc) t.tree [] in
      Mgraph.Sorted_ints.of_list vs

let candidates_of_signature t s = candidates t (Mgraph.Synopsis.of_signature s)

let vertex_synopsis t v = t.synopses.(v)
let maxima t = Array.copy t.upper
let probes t = t.probes
