(** Engine-aware half of the semantic query rewriter.

    Re-exports the pure pass machinery ({!Amber_rewrite}) and supplies
    the two data-backed ingredients it is parameterized over: the
    {e singleton} certificates behind constant propagation (dictionary,
    adjacency and attribute-index lookups proving a variable has
    exactly one possible binding in a pattern) and the {!Stats}-based
    row estimate attached to Cartesian-product hints. Every applied
    step bumps [amber_rewrite_steps_total{kind=…}] in the default
    metric registry. *)

type step = Amber_rewrite.step
type kind = Amber_rewrite.kind

val kind_slug : kind -> string
val slugs : step list -> string list
val pp_step : Format.formatter -> step -> unit
val step_to_json : step -> string
val steps_to_json : step list -> string

type outcome = {
  ast : Sparql.Ast.t;  (** rewritten query; only [where] ever changes *)
  bindings : (string * Rdf.Term.t) list;
      (** values forced by constant propagation, keyed by variable —
          re-attach to projected rows, the variables no longer occur in
          the rewritten clause *)
  steps : step list;  (** applied rewrites, in application order *)
}

val apply :
  ?open_objects:bool ->
  ?max_patterns:int ->
  db:Database.t ->
  attribute:Attribute_index.t ->
  stats:Stats.t Lazy.t ->
  Sparql.Ast.t ->
  outcome
(** Rewrite a query against this database's dictionaries and indexes.

    [open_objects] must match the flag the query will run under: with
    the literal-binding extension on, an [<s> p ?o] pattern's object
    may also bind literals, so the adjacency-singleton certificate for
    that shape is unsound and is skipped. [stats] is only forced when
    the clause actually splits into disconnected groups (the blow-up
    estimate); [max_patterns] as in {!Amber_rewrite.rewrite}. *)
