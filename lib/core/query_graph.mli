(** Query multigraph — the translation of a SPARQL basic graph pattern
    into the paper's query representation (Section 2.2.1).

    Variables become query vertices; constant IRIs in subject/object
    position become {e IRI constraints} on the adjacent variable vertex
    (the paper's shaded [u^iri] vertices — each matches exactly one data
    vertex); a [(predicate, literal)] object pair becomes a vertex
    attribute. Fully ground patterns are checked at build time.

    With [~open_objects:true] a pattern [?s <p> ?o] whose object
    variable occurs nowhere else is lifted out of the graph structure
    and answered from both edges and literal attributes — the
    literal-binding extension discussed in DESIGN.md. *)

type iri_constraint = {
  dir : Mgraph.Multigraph.direction;
      (** [Out]: the variable's match must have an edge {e towards} the
          constant; [In]: an edge {e from} it. *)
  types : int array;  (** sorted edge-type ids of the multi-edge *)
  data_vertex : int;  (** the constant's (unique) data vertex *)
}

type open_object = {
  subject : int;  (** query vertex of the subject variable *)
  pred : string;  (** predicate IRI *)
  obj_var : string;  (** the lifted object variable *)
}

type t = {
  var_names : string array;  (** query vertex -> variable name *)
  graph : Mgraph.Multigraph.t;
      (** variable-variable structure; edge types are {e data} edge-type
          ids *)
  attrs : int array array;  (** sorted attribute ids per query vertex *)
  iris : iri_constraint list array;  (** per query vertex *)
  self_loops : int array array;
      (** per query vertex, sorted types of the loop [u → u] ([||] if
          none) *)
  opens : open_object list;
}

type result =
  | Query of t
  | Unsatisfiable of { proof : Amber_analysis.proof; pattern : int }
      (** well-formed, but a constant (predicate, literal pair or IRI)
          does not occur in the data: the answer set is empty. [proof]
          is the typed certificate ({!Amber_analysis.proof_to_string}
          renders it); [pattern] the 0-based index of the offending
          WHERE pattern, for source spans. *)

exception Unsupported of string
(** Raised for patterns outside the engine's fragment (variable or
    literal predicates, literal subjects). *)

val build : ?open_objects:bool -> Database.t -> Sparql.Ast.t -> result

val vertex_count : t -> int
val vertex_of_var : t -> string -> int option
val degree : t -> int -> int
(** Paper degree: distinct variable neighbours + distinct IRI-constraint
    neighbours. *)

val multi_edges_between :
  t -> int -> int -> (Mgraph.Multigraph.direction * int array) list
(** Directed multi-edges between two query vertices, from the first
    vertex's perspective; at most one entry per direction, excluding
    self loops. *)

val signature : t -> int -> Mgraph.Signature.t
(** Full signature of a query vertex: variable edges, IRI-constraint
    edges and self loops (both orientations). *)

val pp : Format.formatter -> t -> unit
