(** Query-scoped memo for the matcher's repeated index probes.

    During one query the matcher re-issues identical
    {!Neighbourhood_index} probes many times: every enumerated candidate
    of a hub vertex re-probes the same [(matched data vertex, direction,
    edge types)] triples while matching satellites and extending the
    core, and [ProcessVertex] (Algorithm 1) is recomputed per candidate
    although its result depends only on the query vertex. Both are
    memoized here; the cache lives for one query (one matcher context)
    and is dropped afterwards, so it never sees index updates. Cached
    results are {!Mgraph.Posting} lists — often the index's resident
    (possibly compressed) posting itself, shared zero-copy.

    Hit/miss accounting lives in {!Matcher.stats}
    ([probe_cache_hits]/[probe_cache_misses]), surfaced through
    {!Engine.query_profiled} and the [amber_matcher_probe_cache_*]
    metrics. *)

type t

val create : unit -> t

val find_probe :
  t -> int -> Mgraph.Multigraph.direction -> int array -> Mgraph.Posting.t option
(** [find_probe t v dir types] — memoized neighbourhood probe, keyed by
    data vertex, probe direction and (sorted) edge-type set. *)

val add_probe :
  t -> int -> Mgraph.Multigraph.direction -> int array -> Mgraph.Posting.t -> unit

val find_vertex : t -> int -> Mgraph.Posting.t option option
(** Memoized [ProcessVertex] result for a query vertex ([None] = not
    yet computed; [Some None] = computed, unconstrained). *)

val add_vertex : t -> int -> Mgraph.Posting.t option -> unit
