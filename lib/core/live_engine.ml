module B = Rdf.Binary

let manifest_magic = "AMBRMAN1"
let manifest_name = "live.manifest"

type epoch = {
  generation : int;  (* bumped by compaction *)
  version : int;  (* bumped by every published write *)
  base : Engine.t;  (* frozen engine of this generation *)
  engine : Engine.t;  (* base, or the compiled overlay when delta ≠ ∅ *)
  delta : Delta.t;
}

type t = {
  current : epoch Atomic.t;
  writer : Mutex.t;  (* serializes update/compact; readers never take it *)
  dir : string option;  (* live directory; None = purely in-memory *)
}

let generation ep = ep.generation
let version ep = ep.version
let engine ep = ep.engine
let base ep = ep.base
let delta ep = ep.delta
let pin t = Atomic.get t.current
let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Metrics & flight recording                                          *)
(* ------------------------------------------------------------------ *)

let m = Obs.Metrics.default

let m_updates =
  Obs.Metrics.counter m "amber_updates_total"
    ~help:"Live-engine update batches published"

let m_compactions =
  Obs.Metrics.counter m "amber_compactions_total"
    ~help:"Delta compactions merged into a new base generation"

let m_delta_adds =
  Obs.Metrics.counter m "amber_delta_add_triples"
    ~help:"Pending inserted triples in the live delta (gauge)"

let m_delta_dels =
  Obs.Metrics.counter m "amber_delta_del_triples"
    ~help:"Pending deleted triples in the live delta (gauge)"

let m_generation =
  Obs.Metrics.counter m "amber_live_generation"
    ~help:"Current compaction generation (gauge)"

let m_update_seconds =
  Obs.Metrics.histogram m "amber_update_seconds"
    ~help:"Delta recompile + publish latency of one update batch"

let m_compaction_seconds =
  Obs.Metrics.histogram m "amber_compaction_seconds"
    ~help:
      "Stop-the-writers compaction pause (full rebuild + snapshot + epoch \
       swap); readers are never paused"

let sync_metrics ep =
  Obs.Metrics.set m_delta_adds (Delta.add_count ep.delta);
  Obs.Metrics.set m_delta_dels (Delta.del_count ep.delta);
  Obs.Metrics.set m_generation ep.generation

(* Mutations land in the flight ring next to the queries they raced;
   non-Ok statuses bypass sampling, so none are thinned away. *)
let record_event status text ~phase ~seconds =
  let open Obs.Query_log in
  record default
    {
      id = 0;
      at = Unix.gettimeofday ();
      query = text;
      hash = hash_query text;
      status;
      seconds;
      rows = 0;
      truncated = false;
      domains = 1;
      core_order = [];
      plan_mode = "";
      plan_seeds = [];
      rewrites = [];
      phases = [ (phase, seconds) ];
      candidates_scanned = 0;
      solutions = 0;
      index_probes = 0;
      cache_hits = 0;
      cache_misses = 0;
      analysis = None;
      gc = Obs.Resource.zero_delta;
      slow = false;
    }

(* ------------------------------------------------------------------ *)
(* Manifest codec                                                      *)
(* ------------------------------------------------------------------ *)

let corrupt fmt = Printf.ksprintf (fun s -> raise (B.Corrupt s)) fmt
let gen_file gen = Printf.sprintf "gen-%d.amberix" gen

type manifest = {
  man_generation : int;
  man_version : int;
  man_base_file : string;
  man_adds : Rdf.Triple.t list;
  man_dels : Rdf.Triple.t list;
}

(* One CRC-32-framed payload: generation, version, base snapshot
   filename, then the add and del triple lists (each length-prefixed in
   the AMBERDB1 interchange encoding). *)
let encode_manifest ~generation ~version ~delta =
  let payload = Buffer.create 1024 in
  B.Varint.write payload generation;
  B.Varint.write payload version;
  let file = gen_file generation in
  B.Varint.write payload (String.length file);
  Buffer.add_string payload file;
  let triples l =
    let b = Buffer.create 1024 in
    B.write b l;
    b
  in
  let adds = triples (Delta.adds delta) and dels = triples (Delta.dels delta) in
  B.Varint.write payload (Buffer.length adds);
  Buffer.add_buffer payload adds;
  B.Varint.write payload (Buffer.length dels);
  Buffer.add_buffer payload dels;
  let buf = Buffer.create (Buffer.length payload + 32) in
  Buffer.add_string buf manifest_magic;
  B.Varint.write buf (Buffer.length payload);
  let bytes = Buffer.contents payload in
  Buffer.add_string buf bytes;
  let crc = B.crc32 bytes in
  for shift = 0 to 3 do
    Buffer.add_char buf (Char.chr ((crc lsr (8 * shift)) land 0xFF))
  done;
  Buffer.contents buf

let decode_manifest src =
  let magic_len = String.length manifest_magic in
  if String.length src < magic_len || String.sub src 0 magic_len <> manifest_magic
  then corrupt "bad manifest magic (not an AMbER live manifest)";
  let pos = ref magic_len in
  let len = B.Varint.read src pos in
  let payload_start = !pos in
  if payload_start + len + 4 > String.length src then
    corrupt "truncated manifest";
  let stored =
    let b i = Char.code src.[payload_start + len + i] in
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  in
  if B.crc32 ~off:payload_start ~len src <> stored then
    corrupt "bad manifest CRC";
  if payload_start + len + 4 <> String.length src then
    corrupt "trailing bytes after manifest";
  let payload_end = payload_start + len in
  let check_end p = if p > payload_end then corrupt "truncated manifest payload" in
  let man_generation = B.Varint.read src pos in
  let man_version = B.Varint.read src pos in
  let flen = B.Varint.read src pos in
  check_end (!pos + flen);
  let man_base_file = String.sub src !pos flen in
  pos := !pos + flen;
  let section () =
    let slen = B.Varint.read src pos in
    check_end (!pos + slen);
    let sub = String.sub src !pos slen in
    pos := !pos + slen;
    B.read sub ~pos:0
  in
  let man_adds = section () in
  let man_dels = section () in
  if !pos <> payload_end then corrupt "trailing bytes in manifest payload";
  { man_generation; man_version; man_base_file; man_adds; man_dels }

(* ------------------------------------------------------------------ *)
(* Durable state                                                       *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_atomically path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match output_string oc data with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      raise e);
  Sys.rename tmp path

let rec ensure_dir d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then ensure_dir parent;
    (* A concurrent creator between the check and the mkdir is fine. *)
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
  else if not (Sys.is_directory d) then
    invalid_arg (Printf.sprintf "Live_engine: %s is not a directory" d)

let save_snapshot_atomically engine path =
  let tmp = path ^ ".tmp" in
  Engine.save_snapshot engine tmp;
  Sys.rename tmp path

let write_manifest dir ep =
  write_atomically
    (Filename.concat dir manifest_name)
    (encode_manifest ~generation:ep.generation ~version:ep.version
       ~delta:ep.delta)

(* Drop generation snapshots older than the previous one: the previous
   generation stays on disk until the *next* compaction lands, so an
   interrupted compaction always leaves a loadable base behind. *)
let prune_generations dir current_gen =
  Array.iter
    (fun name ->
      match Scanf.sscanf_opt name "gen-%d.amberix%!" (fun g -> g) with
      | Some g when g < current_gen - 1 ->
          (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      | _ -> ())
    (Sys.readdir dir)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let of_engine ?dir engine =
  let ep = { generation = 0; version = 0; base = engine; engine; delta = Delta.empty } in
  (match dir with
  | None -> ()
  | Some d ->
      ensure_dir d;
      save_snapshot_atomically engine (Filename.concat d (gen_file 0));
      write_manifest d ep);
  sync_metrics ep;
  { current = Atomic.make ep; writer = Mutex.create (); dir }

let open_dir dirname =
  let man = decode_manifest (read_file (Filename.concat dirname manifest_name)) in
  let base = Engine.load_snapshot (Filename.concat dirname man.man_base_file) in
  let delta = Delta.apply Delta.empty ~adds:man.man_adds ~dels:man.man_dels in
  let engine = if Delta.is_empty delta then base else Delta.compile base delta in
  let ep =
    {
      generation = man.man_generation;
      version = man.man_version;
      base;
      engine;
      delta;
    }
  in
  sync_metrics ep;
  { current = Atomic.make ep; writer = Mutex.create (); dir = Some dirname }

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

let with_writer t f =
  Mutex.lock t.writer;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) f

let update t ~adds ~dels =
  with_writer t @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let ep = Atomic.get t.current in
  let delta = Delta.apply ep.delta ~adds ~dels in
  let engine =
    if Delta.is_empty delta then ep.base else Delta.compile ep.base delta
  in
  let ep' = { ep with version = ep.version + 1; engine; delta } in
  (* Persist before publish: if the disk write fails, readers never saw
     an epoch the directory cannot replay. *)
  (match t.dir with None -> () | Some d -> write_manifest d ep');
  Atomic.set t.current ep';
  let seconds = Unix.gettimeofday () -. t0 in
  Obs.Metrics.incr m_updates;
  Obs.Metrics.observe m_update_seconds seconds;
  sync_metrics ep';
  record_event Obs.Query_log.Update
    (Printf.sprintf "-- update +%d -%d (gen %d, v%d, delta %d/%d)"
       (List.length adds) (List.length dels) ep'.generation ep'.version
       (Delta.add_count ep'.delta) (Delta.del_count ep'.delta))
    ~phase:"publish" ~seconds;
  ep'

let compact ?synopsis_mode ?domains t =
  with_writer t @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let ep = Atomic.get t.current in
  let triples = Database.to_triples (Engine.db ep.engine) in
  let base' =
    Engine.build ?synopsis_mode ~layout:(Engine.layout ep.base) ?domains triples
  in
  let ep' =
    {
      generation = ep.generation + 1;
      version = ep.version + 1;
      base = base';
      engine = base';
      delta = Delta.empty;
    }
  in
  (match t.dir with
  | None -> ()
  | Some d ->
      (* Snapshot first, manifest second: a crash between the two leaves
         the old manifest pointing at the old generation, still loadable. *)
      save_snapshot_atomically base' (Filename.concat d (gen_file ep'.generation));
      write_manifest d ep';
      prune_generations d ep'.generation);
  Atomic.set t.current ep';
  let seconds = Unix.gettimeofday () -. t0 in
  Obs.Metrics.incr m_compactions;
  Obs.Metrics.observe m_compaction_seconds seconds;
  sync_metrics ep';
  record_event Obs.Query_log.Compaction
    (Printf.sprintf "-- compact (gen %d, v%d, %d triples)" ep'.generation
       ep'.version
       (Database.triple_count (Engine.db base')))
    ~phase:"compact" ~seconds;
  ep'
