(** Static query analysis over the engine's dictionaries and indexes —
    the engine-aware half of the analyzer. All diagnostic types and
    renderings come from {!Amber_analysis} (re-exported here); this
    module adds the checks that need a {!Database.t}, the index [A] and
    the index [S]: typed build failures, per-vertex Lemma-1 screening
    against the synopsis maxima, attribute-intersection emptiness and
    compile-time IRI-constraint probes.

    Soundness: every reported [Unsat] proof implies the engine returns
    zero rows, so [?analyze] short-circuiting never changes an answer.
    Within the engine's fragment (object and datatype predicates
    disjoint — the assumption of the differential harness) the proofs
    also imply zero rows under full SPARQL BGP semantics; the one proof
    that is engine-only outside that fragment
    ({!Amber_analysis.Predicate_never_links} on a variable object that
    could bind a literal) is downgraded to an
    {!Amber_analysis.Out_of_fragment} warning. *)

include module type of struct
  include Amber_analysis
end
(** @inline *)

val screen :
  ?probe_cap:int ->
  Database.t ->
  attribute:Attribute_index.t ->
  synopsis:Synopsis_index.t ->
  Query_graph.t ->
  Sparql.Ast.t ->
  item list
(** Index-backed checks over a successfully built query graph:
    attribute-intersection emptiness (conflicting literals), multi-edge
    width vs the data maximum, per-vertex synopsis infeasibility
    (Lemma 1 vs {!Synopsis_index.maxima}), IRI-constraint neighbourhood
    probes (bounded by [probe_cap] adjacency entries, default 4096 —
    wider constants are left inconclusive), and unprojected-satellite
    warnings. Proofs come first in the returned list. *)

val of_build_failure :
  Sparql.Ast.t -> proof:proof -> pattern:int -> item
(** Classify a {!Query_graph.Unsatisfiable} result: attaches the span of
    the offending pattern and downgrades [Predicate_never_links] to an
    [Out_of_fragment] warning when the pattern's object is a variable
    that never occurs in subject position (the only context where the
    engine's refusal is not a proof under full SPARQL semantics). *)

val run :
  ?probe_cap:int ->
  ?open_objects:bool ->
  Database.t ->
  attribute:Attribute_index.t ->
  synopsis:Synopsis_index.t ->
  Sparql.Ast.t ->
  report
(** The whole pipeline: AST lints ({!Amber_analysis.lint_ast}), then
    {!Query_graph.build} — a build failure becomes the report's proof
    via {!of_build_failure}, a success is screened with {!screen}.
    Unsat proofs sort first. Out-of-fragment queries
    ({!Query_graph.Unsupported}) yield a report with an
    [Out_of_fragment] warning instead of raising. *)
