type vertex_report = {
  variable : string;
  core : bool;
  structural : int;
  refined : int;
}

type t = {
  core_order : string list list;
  vertices : vertex_report list;
  stats : Matcher.stats;
  span : Obs.Span.t;
  rows : int;
  truncated : bool;
  analysis : Amber_analysis.report option;
  plan_mode : string;
  plan_seeds : Stats.seed_report list;
  rewrites : Amber_rewrite.step list;
}

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "rows: %d%s@," t.rows
    (if t.truncated then " (truncated)" else "");
  (match t.analysis with
  | None | Some { Amber_analysis.items = [] } -> ()
  | Some report ->
      Format.fprintf ppf "analysis:@,";
      let listing = Format.asprintf "%a" Amber_analysis.pp_report report in
      List.iter
        (fun line -> if line <> "" then Format.fprintf ppf "  %s@," line)
        (String.split_on_char '\n' listing));
  Format.fprintf ppf "phases:@,";
  (* Span.pp prints its own newlines; capture and indent. *)
  let tree = Format.asprintf "%a" Obs.Span.pp t.span in
  List.iter
    (fun line -> if line <> "" then Format.fprintf ppf "  %s@," line)
    (String.split_on_char '\n' tree);
  List.iteri
    (fun i order ->
      Format.fprintf ppf "core order (component %d): %s@," i
        (if order = [] then "-"
         else String.concat " -> " (List.map (fun v -> "?" ^ v) order)))
    t.core_order;
  Format.fprintf ppf "plan: %s@," t.plan_mode;
  if t.rewrites <> [] then begin
    Format.fprintf ppf "rewrites:@,";
    List.iter
      (fun s -> Format.fprintf ppf "  @[<v>%a@]@," Amber_rewrite.pp_step s)
      t.rewrites
  end;
  if t.plan_seeds <> [] then begin
    Format.fprintf ppf "seed strategies (est -> actual):@,";
    List.iter
      (fun r ->
        let c = r.Stats.choice in
        Format.fprintf ppf "  ?%-12s %-6s%s %8d -> %d@," r.Stats.variable
          (Stats.strategy_slug c.Stats.strategy)
          (if c.Stats.fallback then " (fallback)" else "")
          c.Stats.est_candidates r.Stats.actual)
      t.plan_seeds
  end;
  if t.vertices <> [] then begin
    Format.fprintf ppf "candidates (synopsis -> refined):@,";
    List.iter
      (fun v ->
        Format.fprintf ppf "  ?%-12s %-9s %8d -> %d@," v.variable
          (if v.core then "core" else "satellite")
          v.structural v.refined)
      t.vertices
  end;
  let s = t.stats in
  Format.fprintf ppf
    "matcher: index_probes=%d synopsis_probes=%d attribute_probes=%d \
     cache_hits=%d cache_misses=%d candidates_scanned=%d \
     satellite_rejections=%d solutions=%d@]"
    s.Matcher.index_probes s.Matcher.synopsis_probes s.Matcher.attribute_probes
    s.Matcher.probe_cache_hits s.Matcher.probe_cache_misses
    s.Matcher.candidates_scanned s.Matcher.satellite_rejections
    s.Matcher.solutions

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let seed_to_json r =
  let c = r.Stats.choice in
  Printf.sprintf
    {|{"variable":%s,"strategy":%s,"fallback":%b,"estimate":%d,"actual":%d,"cost_rtree":%d,"cost_attrs":%s,"cost_scan":%d}|}
    (json_string r.Stats.variable)
    (json_string (Stats.strategy_slug c.Stats.strategy))
    c.Stats.fallback c.Stats.est_candidates r.Stats.actual c.Stats.cost_rtree
    (match c.Stats.cost_attrs with
    | None -> "null"
    | Some n -> string_of_int n)
    c.Stats.cost_scan

let plan_to_json ~plan_mode ~plan_seeds =
  Printf.sprintf {|{"mode":%s,"seeds":[%s]}|} (json_string plan_mode)
    (String.concat "," (List.map seed_to_json plan_seeds))

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf {|{"rows":%d,"truncated":%b,"core_order":[|} t.rows
       t.truncated);
  List.iteri
    (fun i order ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      List.iteri
        (fun j v ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf {|"%s"|} (json_escape v)))
        order;
      Buffer.add_char buf ']')
    t.core_order;
  Buffer.add_string buf {|],"vertices":[|};
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           {|{"variable":"%s","core":%b,"synopsis_candidates":%d,"refined_candidates":%d}|}
           (json_escape v.variable) v.core v.structural v.refined))
    t.vertices;
  let s = t.stats in
  Buffer.add_string buf
    (Printf.sprintf
       {|],"stats":{"index_probes":%d,"synopsis_probes":%d,"attribute_probes":%d,"probe_cache_hits":%d,"probe_cache_misses":%d,"candidates_scanned":%d,"satellite_rejections":%d,"solutions":%d},"phases":|}
       s.Matcher.index_probes s.Matcher.synopsis_probes
       s.Matcher.attribute_probes s.Matcher.probe_cache_hits
       s.Matcher.probe_cache_misses s.Matcher.candidates_scanned
       s.Matcher.satellite_rejections s.Matcher.solutions);
  Buffer.add_string buf (Obs.Span.to_json t.span);
  Buffer.add_string buf {|,"plan":|};
  Buffer.add_string buf
    (plan_to_json ~plan_mode:t.plan_mode ~plan_seeds:t.plan_seeds);
  Buffer.add_string buf {|,"rewrites":|};
  Buffer.add_string buf (Amber_rewrite.steps_to_json t.rewrites);
  Buffer.add_string buf {|,"analysis":|};
  (match t.analysis with
  | None -> Buffer.add_string buf "null"
  | Some report -> Buffer.add_string buf (Amber_analysis.report_to_json report));
  Buffer.add_char buf '}';
  Buffer.contents buf
