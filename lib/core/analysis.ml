include Amber_analysis

(* First WHERE pattern mentioning a variable, for vertex-level spans. *)
let span_for_var (ast : Sparql.Ast.t) name =
  let mentions { Sparql.Ast.subject; predicate; obj } =
    List.exists
      (fun t ->
        match t with
        | Sparql.Ast.Var v -> String.equal v name
        | Sparql.Ast.Iri _ | Sparql.Ast.Lit _ -> false)
      [ subject; predicate; obj ]
  in
  let rec go i = function
    | [] -> None
    | pat :: rest ->
        if mentions pat then Some (span_of_pattern i pat) else go (i + 1) rest
  in
  go 0 ast.where

let occurs_as_subject (ast : Sparql.Ast.t) v =
  List.exists
    (fun { Sparql.Ast.subject; _ } ->
      match subject with
      | Sparql.Ast.Var s -> String.equal s v
      | Sparql.Ast.Iri _ | Sparql.Ast.Lit _ -> false)
    ast.where

let lit_string lit = Rdf.Term.to_string (Rdf.Term.Literal lit)

(* The global multi-edge width bound: the f1 features of the synopsis
   maxima, over both directions (never below 0 so an empty graph reads
   as "width 0"). *)
let max_multi_edge_width maxima = max 0 (max maxima.(0) maxima.(4))

(* ------------------------------------------------------------------ *)
(* Per-vertex index-backed screening                                   *)
(* ------------------------------------------------------------------ *)

(* Attribute-intersection emptiness on one query vertex. A conflicting
   pair (same predicate, disjoint vertex lists) makes the more pointed
   proof; otherwise the whole intersection is the certificate. *)
let check_attributes db attribute name attrs =
  if Array.length attrs = 0 then None
  else if not (Mgraph.Posting.is_empty (Attribute_index.candidates attribute attrs))
  then None
  else begin
    let described =
      List.map
        (fun a ->
          let pred, lit = Database.attribute_data db a in
          (a, pred, lit_string lit))
        (Array.to_list attrs)
    in
    let conflict =
      List.find_map
        (fun (a, pa, la) ->
          List.find_map
            (fun (b, pb, lb) ->
              if
                a < b
                && String.equal pa pb
                && Mgraph.Posting.is_empty
                     (Mgraph.Posting.inter
                        (Attribute_index.vertices_with attribute a)
                        (Attribute_index.vertices_with attribute b))
              then
                Some
                  (Conflicting_literals
                     { variable = name; pred = pa; lit1 = la; lit2 = lb })
              else None)
            described)
        described
    in
    match conflict with
    | Some proof -> Some proof
    | None ->
        Some
          (Empty_attribute_intersection
             {
               variable = name;
               attrs = List.map (fun (_, p, l) -> (p, l)) described;
             })
  end

(* Query multi-edges wider than any data multi-edge: variable-variable
   edges, IRI constraints and self loops all bound by the f1 maxima. *)
let check_multi_edges db q maxima u name =
  let width_max = max_multi_edge_width maxima in
  let too_wide other width =
    if width > width_max then
      Some
        (Multi_edge_too_wide
           { variable = name; other; width; data_max = width_max })
    else None
  in
  let n = Query_graph.vertex_count q in
  let rec over_vars v =
    if v >= n then None
    else if v = u then over_vars (v + 1)
    else
      let widest =
        List.fold_left
          (fun acc (_, types) -> max acc (Array.length types))
          0
          (Query_graph.multi_edges_between q u v)
      in
      match too_wide ("?" ^ q.Query_graph.var_names.(v)) widest with
      | Some p -> Some p
      | None -> over_vars (v + 1)
  in
  match over_vars 0 with
  | Some p -> Some p
  | None -> (
      let from_iris =
        List.find_map
          (fun (c : Query_graph.iri_constraint) ->
            too_wide
              (Rdf.Term.to_string (Database.term_of_vertex db c.data_vertex))
              (Array.length c.types))
          q.Query_graph.iris.(u)
      in
      match from_iris with
      | Some p -> Some p
      | None ->
          too_wide ("?" ^ name) (Array.length q.Query_graph.self_loops.(u)))

(* Lemma 1 at compile time: a query synopsis exceeding the componentwise
   maxima over every data synopsis has zero candidates. *)
let check_synopsis synopsis q u name =
  let syn = Mgraph.Synopsis.of_signature (Query_graph.signature q u) in
  let maxima = Synopsis_index.maxima synopsis in
  let rec go i =
    if i >= Mgraph.Synopsis.dims then None
    else if syn.(i) > maxima.(i) then
      Some
        (Signature_infeasible
           {
             variable = name;
             feature = i;
             query_value = syn.(i);
             data_max = maxima.(i);
           })
    else go (i + 1)
  in
  go 0

(* A constant's neighbourhood, probed at compile time: the variable must
   reach [data_vertex] through every type of the constraint, so some
   neighbour of the constant (on the matching side) must carry them all.
   Bounded: constants with more than [probe_cap] adjacency entries are
   left inconclusive. *)
let check_iri_constraints ~probe_cap db q u name =
  let g = Database.graph db in
  List.find_map
    (fun (c : Query_graph.iri_constraint) ->
      let flipped =
        match c.Query_graph.dir with
        | Mgraph.Multigraph.Out -> Mgraph.Multigraph.In
        | Mgraph.Multigraph.In -> Mgraph.Multigraph.Out
      in
      let neighbours = Mgraph.Multigraph.adjacency g flipped c.data_vertex in
      if Array.length neighbours > probe_cap then None
      else if
        Array.exists
          (fun (_, types) -> Mgraph.Sorted_ints.subset c.types types)
          neighbours
      then None
      else
        Some
          (Iri_constraint_infeasible
             {
               variable = name;
               iri =
                 Rdf.Term.to_string (Database.term_of_vertex db c.data_vertex);
               predicates =
                 List.map
                   (Database.iri_of_edge_type db)
                   (Array.to_list c.types);
             }))
    q.Query_graph.iris.(u)

let screen ?(probe_cap = 4096) db ~attribute ~synopsis (q : Query_graph.t)
    (ast : Sparql.Ast.t) =
  let proofs = ref [] and warns = ref [] in
  let selected = Sparql.Ast.selected_variables ast in
  let n = Query_graph.vertex_count q in
  for u = 0 to n - 1 do
    let name = q.Query_graph.var_names.(u) in
    let span = span_for_var ast name in
    let prove = function
      | Some proof -> proofs := { diag = Unsat proof; span } :: !proofs
      | None -> ()
    in
    prove (check_attributes db attribute name q.Query_graph.attrs.(u));
    (match check_multi_edges db q (Synopsis_index.maxima synopsis) u name with
    | Some _ as p -> prove p
    | None -> prove (check_synopsis synopsis q u name));
    prove (check_iri_constraints ~probe_cap db q u name);
    if n > 1 && Query_graph.degree q u <= 1 && not (List.mem name selected)
    then
      warns :=
        { diag = Warning (Unprojected_satellite { variable = name }); span }
        :: !warns
  done;
  List.rev !proofs @ List.rev !warns

(* ------------------------------------------------------------------ *)
(* Build failures and the full pipeline                                *)
(* ------------------------------------------------------------------ *)

let of_build_failure (ast : Sparql.Ast.t) ~proof ~pattern =
  let at = List.nth_opt ast.where pattern in
  let span = Option.map (span_of_pattern pattern) at in
  let literal_object_possible =
    match at with
    | Some { Sparql.Ast.obj = Sparql.Ast.Var v; _ } ->
        not (occurs_as_subject ast v)
    | Some _ | None -> false
  in
  match proof with
  | Predicate_never_links { iri } when literal_object_possible ->
      (* The engine refuses the edge (and returns zero rows), but full
         SPARQL semantics could bind the object variable to the
         predicate's literals — not a soundness certificate. *)
      {
        diag =
          Warning
            (Out_of_fragment
               {
                 reason =
                   Printf.sprintf
                     "predicate <%s> reaches only literals; the multigraph \
                      engine answers with zero rows, but full SPARQL \
                      semantics could bind the object variable to them"
                     iri;
               });
        span;
      }
  | proof -> { diag = Unsat proof; span }

let run ?probe_cap ?open_objects db ~attribute ~synopsis ast =
  let lint = lint_ast ast in
  match Query_graph.build ?open_objects db ast with
  | exception Query_graph.Unsupported reason ->
      {
        items =
          { diag = Warning (Out_of_fragment { reason }); span = None } :: lint;
      }
  | Query_graph.Unsatisfiable { proof; pattern } ->
      report_of_items (of_build_failure ast ~proof ~pattern :: lint)
  | Query_graph.Query q ->
      report_of_items (lint @ screen ?probe_cap db ~attribute ~synopsis q ast)
