(** Attribute inverted list — the index [A] (paper Section 4.1).

    Maps every attribute id to the sorted list of data vertices carrying
    it; the candidates for a query vertex with attribute set [u.A] are
    the intersection of the per-attribute lists. *)

type t

val build : Database.t -> t

val export : t -> int array array
(** The raw per-attribute vertex lists, for the snapshot codec. *)

val import : int array array -> t
(** Rebuild from exported lists (probe counter starts at zero).
    @raise Invalid_argument if any list is unsorted or negative. *)

val vertices_with : t -> int -> int array
(** Sorted data vertices carrying one attribute ([||] if none). *)

val candidates : t -> int array -> int array
(** [candidates a attrs] — sorted data vertices carrying {e all} of
    [attrs]. @raise Invalid_argument on an empty attribute set (callers
    only consult [A] when the query vertex has attributes). *)

val attribute_count : t -> int

val probes : t -> int
(** Lifetime number of {!candidates} lookups — exported by the
    observability layer ([amber_attribute_index_probes_total]). *)
