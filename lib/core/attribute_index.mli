(** Attribute inverted list — the index [A] (paper Section 4.1).

    Maps every attribute id to the sorted list of data vertices carrying
    it; the candidates for a query vertex with attribute set [u.A] are
    the intersection of the per-attribute lists. Lists are frozen
    {!Mgraph.Posting} posting lists — queried directly over the
    compressed form. *)

type t

val build : ?layout:Mgraph.Posting.policy -> Database.t -> t
(** [layout] chooses the physical posting layout (default [Auto]). *)

val export : t -> int array array
(** The per-attribute vertex lists decoded to arrays, for the v1
    snapshot codec and tests. *)

val import : ?layout:Mgraph.Posting.policy -> int array array -> t
(** Rebuild from exported lists (probe counter starts at zero).
    @raise Invalid_argument if any list is unsorted or negative. *)

val of_postings : Mgraph.Posting.t array -> t
(** Adopt already-frozen posting lists verbatim — the AMBERIX1 v2
    load path (layouts come from the snapshot tags). *)

val postings : t -> Mgraph.Posting.t array
(** The resident posting lists, for the v2 snapshot codec.
    @raise Invalid_argument on an overlay index (overlays are never
    snapshotted directly — compaction re-freezes first). *)

val overlay :
  base:t -> attribute_count:int -> patched:(int * int array) list -> unit -> t
(** [overlay ~base ~attribute_count ~patched ()] — delta overlay: each
    [(a, vs)] in [patched] replaces attribute [a]'s list with the fully
    merged sorted vertex list [vs] (ids [>= attribute_count base] are
    new attributes the base has no list for). Untouched attributes fall
    through to [base], which is shared and never mutated.
    @raise Invalid_argument on an overlay base, unsorted lists, or ids
    outside [attribute_count]. *)

val vertices_with : t -> int -> Mgraph.Posting.t
(** Sorted data vertices carrying one attribute (empty if none). *)

val candidates : t -> int array -> Mgraph.Posting.t
(** [candidates a attrs] — sorted data vertices carrying {e all} of
    [attrs]. @raise Invalid_argument on an empty attribute set (callers
    only consult [A] when the query vertex has attributes). *)

val attribute_count : t -> int

val probes : t -> int
(** Lifetime number of {!candidates} lookups — exported by the
    observability layer ([amber_attribute_index_probes_total]). *)

val posting_stats : t -> Mgraph.Posting.stats
(** Per-layout list counts and out-of-heap payload bytes. *)
