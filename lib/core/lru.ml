(* Keys are sorted int arrays (attribute sets, synopsis vectors), hashed
   by content. *)
module Key = struct
  type t = int array

  let equal = Mgraph.Sorted_ints.equal

  let hash a =
    let h = ref (Array.length a) in
    Array.iter (fun x -> h := (!h * 1_000_003) + x) a;
    !h land max_int
end

module H = Hashtbl.Make (Key)

type 'v entry = { value : 'v; mutable stamp : int }

type 'v t = {
  tbl : 'v entry H.t;
  cap : int;
  mutable clock : int;  (* monotonic access counter *)
  mutable hits : int;
  mutable misses : int;
}

let create ~cap =
  if cap <= 0 then invalid_arg "Lru.create: cap must be positive";
  { tbl = H.create (2 * cap); cap; clock = 0; hits = 0; misses = 0 }

let find t key =
  match H.find_opt t.tbl key with
  | Some e ->
      t.clock <- t.clock + 1;
      e.stamp <- t.clock;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

(* Amortized eviction: let the table grow to twice the capacity, then
   drop the least-recently-stamped half in one sweep. O(n log n) per n/2
   insertions — O(log n) amortized, with no per-entry list links. *)
let prune t =
  let entries = ref [] in
  H.iter (fun k e -> entries := (k, e) :: !entries) t.tbl;
  let arr = Array.of_list !entries in
  Array.sort (fun (_, a) (_, b) -> Int.compare b.stamp a.stamp) arr;
  for i = t.cap to Array.length arr - 1 do
    H.remove t.tbl (fst arr.(i))
  done

let add t key value =
  (match H.find_opt t.tbl key with
  | Some _ -> H.remove t.tbl key
  | None -> ());
  t.clock <- t.clock + 1;
  H.replace t.tbl key { value; stamp = t.clock };
  if H.length t.tbl > 2 * t.cap then prune t

let length t = H.length t.tbl
let hits t = t.hits
let misses t = t.misses

let clear t =
  H.reset t.tbl;
  t.hits <- 0;
  t.misses <- 0;
  t.clock <- 0
