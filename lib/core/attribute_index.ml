module Posting = Mgraph.Posting

type t = {
  lists : Posting.t array;  (* attribute id -> sorted vertex ids *)
  patched : (int, Posting.t) Hashtbl.t option;
      (* delta overlay: fully merged lists of the attribute ids the
         write store touched (including ids past [lists]); [None] on
         frozen indexes *)
  n_attrs : int;  (* attribute_count; may exceed |lists| on overlays *)
  mutable probes : int;  (* lifetime lookup count; racy under domains,
                            lost increments are acceptable *)
}

let frozen lists = { lists; patched = None; n_attrs = Array.length lists; probes = 0 }

let build ?(layout = Posting.Auto) db =
  let g = Database.graph db in
  let n_attrs = Database.attribute_count db in
  let buckets = Array.make n_attrs [] in
  for v = Mgraph.Multigraph.vertex_count g - 1 downto 0 do
    Array.iter
      (fun a -> buckets.(a) <- v :: buckets.(a))
      (Mgraph.Multigraph.attributes g v)
  done;
  (* Vertices were visited in decreasing order, so each bucket is
     already sorted increasingly. *)
  frozen
    (Array.map (fun l -> Posting.of_array ~policy:layout (Array.of_list l)) buckets)

let export t =
  if t.patched <> None then invalid_arg "Attribute_index.export: overlay index";
  Array.map Posting.to_array t.lists

let import ?(layout = Posting.Auto) lists =
  Array.iter
    (fun l ->
      if not (Mgraph.Sorted_ints.is_sorted l) || (Array.length l > 0 && l.(0) < 0)
      then invalid_arg "Attribute_index.import: list not sorted")
    lists;
  frozen (Array.map (Posting.of_array ~policy:layout) lists)

let of_postings lists = frozen lists

let postings t =
  if t.patched <> None then invalid_arg "Attribute_index.postings: overlay index";
  t.lists

let overlay ~base ~attribute_count ~patched () =
  if base.patched <> None then
    invalid_arg "Attribute_index.overlay: base must be frozen";
  if attribute_count < Array.length base.lists then
    invalid_arg "Attribute_index.overlay: attribute_count below base";
  let tbl = Hashtbl.create (2 * List.length patched + 1) in
  List.iter
    (fun (a, l) ->
      if a < 0 || a >= attribute_count then
        invalid_arg "Attribute_index.overlay: attribute id out of range";
      if not (Mgraph.Sorted_ints.is_sorted l) || (Array.length l > 0 && l.(0) < 0)
      then invalid_arg "Attribute_index.overlay: list not sorted";
      if Hashtbl.mem tbl a then
        invalid_arg "Attribute_index.overlay: duplicate attribute id";
      Hashtbl.replace tbl a (Posting.raw l))
    patched;
  { lists = base.lists; patched = Some tbl; n_attrs = attribute_count; probes = 0 }

let vertices_with t a =
  match t.patched with
  | Some tbl when Hashtbl.mem tbl a -> Hashtbl.find tbl a
  | _ -> if a < 0 || a >= Array.length t.lists then Posting.empty else t.lists.(a)

let candidates t attrs =
  if Array.length attrs = 0 then
    invalid_arg "Attribute_index.candidates: empty attribute set";
  t.probes <- t.probes + 1;
  let lists = Array.to_list (Array.map (vertices_with t) attrs) in
  Posting.inter_many lists

let attribute_count t = t.n_attrs
let probes t = t.probes

let posting_stats t =
  let s = Posting.fresh_stats () in
  (match t.patched with
  | None -> Array.iter (Posting.count_into s) t.lists
  | Some _ ->
      for a = 0 to t.n_attrs - 1 do
        Posting.count_into s (vertices_with t a)
      done);
  s
