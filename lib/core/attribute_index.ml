module Posting = Mgraph.Posting

type t = {
  lists : Posting.t array;  (* attribute id -> sorted vertex ids *)
  mutable probes : int;  (* lifetime lookup count; racy under domains,
                            lost increments are acceptable *)
}

let build ?(layout = Posting.Auto) db =
  let g = Database.graph db in
  let n_attrs = Database.attribute_count db in
  let buckets = Array.make n_attrs [] in
  for v = Mgraph.Multigraph.vertex_count g - 1 downto 0 do
    Array.iter
      (fun a -> buckets.(a) <- v :: buckets.(a))
      (Mgraph.Multigraph.attributes g v)
  done;
  (* Vertices were visited in decreasing order, so each bucket is
     already sorted increasingly. *)
  {
    lists =
      Array.map (fun l -> Posting.of_array ~policy:layout (Array.of_list l)) buckets;
    probes = 0;
  }

let export t = Array.map Posting.to_array t.lists

let import ?(layout = Posting.Auto) lists =
  Array.iter
    (fun l ->
      if not (Mgraph.Sorted_ints.is_sorted l) || (Array.length l > 0 && l.(0) < 0)
      then invalid_arg "Attribute_index.import: list not sorted")
    lists;
  { lists = Array.map (Posting.of_array ~policy:layout) lists; probes = 0 }

let of_postings lists = { lists; probes = 0 }
let postings t = t.lists

let vertices_with t a =
  if a < 0 || a >= Array.length t.lists then Posting.empty else t.lists.(a)

let candidates t attrs =
  if Array.length attrs = 0 then
    invalid_arg "Attribute_index.candidates: empty attribute set";
  t.probes <- t.probes + 1;
  let lists = Array.to_list (Array.map (vertices_with t) attrs) in
  Posting.inter_many lists

let attribute_count t = Array.length t.lists
let probes t = t.probes

let posting_stats t =
  let s = Posting.fresh_stats () in
  Array.iter (Posting.count_into s) t.lists;
  s
