type t = {
  lists : int array array;  (* attribute id -> sorted vertex ids *)
  mutable probes : int;  (* lifetime lookup count; racy under domains,
                            lost increments are acceptable *)
}

let build db =
  let g = Database.graph db in
  let n_attrs = Database.attribute_count db in
  let buckets = Array.make n_attrs [] in
  for v = Mgraph.Multigraph.vertex_count g - 1 downto 0 do
    Array.iter
      (fun a -> buckets.(a) <- v :: buckets.(a))
      (Mgraph.Multigraph.attributes g v)
  done;
  (* Vertices were visited in decreasing order, so each bucket is
     already sorted increasingly. *)
  { lists = Array.map Array.of_list buckets; probes = 0 }

let export t = t.lists

let import lists =
  Array.iter
    (fun l ->
      if not (Mgraph.Sorted_ints.is_sorted l) || (Array.length l > 0 && l.(0) < 0)
      then invalid_arg "Attribute_index.import: list not sorted")
    lists;
  { lists; probes = 0 }

let vertices_with t a =
  if a < 0 || a >= Array.length t.lists then [||] else t.lists.(a)

let candidates t attrs =
  if Array.length attrs = 0 then
    invalid_arg "Attribute_index.candidates: empty attribute set";
  t.probes <- t.probes + 1;
  let lists = Array.to_list (Array.map (vertices_with t) attrs) in
  Mgraph.Sorted_ints.inter_many lists

let attribute_count t = Array.length t.lists
let probes t = t.probes
