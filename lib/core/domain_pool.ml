type job = unit -> unit

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  jobs : job Queue.t;
  mutable handles : unit Domain.t list;
  mutable target : int;  (* workers requested (spawned lazily) *)
  mutable stopping : bool;
}

let create ~workers =
  if workers < 0 then invalid_arg "Domain_pool.create: negative worker count";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    jobs = Queue.create ();
    handles = [];
    target = workers;
    stopping = false;
  }

let workers t =
  Mutex.lock t.lock;
  let n = List.length t.handles in
  Mutex.unlock t.lock;
  n

(* Workers block on [nonempty] between jobs. Jobs are fire-and-forget
   from the worker's point of view: [run_chunks] closures trap their own
   exceptions, and the catch-all here keeps a rogue job from killing the
   domain. *)
let worker_loop t () =
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.nonempty t.lock
    done;
    let job = Queue.take_opt t.jobs in
    Mutex.unlock t.lock;
    match job with
    | Some job ->
        (try job () with _ -> ());
        next ()
    | None -> ()  (* stopping and drained *)
  in
  next ()

(* Called with [t.lock] held. *)
let spawn_up_to_target_locked t =
  let live = List.length t.handles in
  if live < t.target && not t.stopping then
    for _ = live + 1 to t.target do
      t.handles <- Domain.spawn (worker_loop t) :: t.handles
    done

(* Returns [false] when the pool is shutting down and the jobs were not
   queued — the caller must then do the work itself. *)
let submit_batch t jobs =
  Mutex.lock t.lock;
  let accepted = not t.stopping in
  if accepted then begin
    List.iter (fun j -> Queue.add j t.jobs) jobs;
    spawn_up_to_target_locked t;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.lock;
  accepted

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  let handles = t.handles in
  t.handles <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join handles

(* Like [shutdown], but re-arms the pool once the workers are joined:
   parked domains tax every stop-the-world minor collection, so a
   one-shot burst (parallel index build) should not leave them behind.
   A concurrent [submit_batch] observing [stopping] self-drains, which
   is always correct. *)
let quiesce t =
  Mutex.lock t.lock;
  t.stopping <- true;
  let handles = t.handles in
  t.handles <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join handles;
  Mutex.lock t.lock;
  t.stopping <- false;
  Mutex.unlock t.lock

let max_workers = 7

let grow t n =
  Mutex.lock t.lock;
  if n > t.target then t.target <- min n max_workers;
  Mutex.unlock t.lock

let global_pool = lazy (
  let t = create ~workers:0 in
  (* Workers must be joined before the main domain exits. *)
  at_exit (fun () -> shutdown t);
  t)

let global () = Lazy.force global_pool

let run_chunks t ~participants ~chunks f =
  if chunks < 0 then invalid_arg "Domain_pool.run_chunks: negative chunk count";
  if chunks = 0 then [||]
  else begin
    let results = Array.make chunks None in
    let errors = Array.make chunks None in
    let next = Atomic.make 0 in
    (* Self-scheduling loop every participant runs: claim the lowest
       unclaimed chunk, evaluate, repeat until the counter is drained. *)
    let drain () =
      let rec go () =
        let c = Atomic.fetch_and_add next 1 in
        if c < chunks then begin
          (match f c with
          | v -> results.(c) <- Some v
          | exception e -> errors.(c) <- Some e);
          go ()
        end
      in
      go ()
    in
    let helpers = max 0 (min (participants - 1) (chunks - 1)) in
    if helpers > 0 then grow t helpers;
    (* Latch counting helper jobs still running (or queued): mutex
       release/acquire on it also publishes the helpers' writes to
       [results]/[errors] before the caller reads them. *)
    let latch = Mutex.create () in
    let finished = Condition.create () in
    let pending = ref helpers in
    let helper () =
      drain ();
      Mutex.lock latch;
      decr pending;
      if !pending = 0 then Condition.broadcast finished;
      Mutex.unlock latch
    in
    if helpers > 0 then
      if not (submit_batch t (List.init helpers (fun _ -> helper))) then begin
        (* Pool shutting down: no helpers will run; the caller drains
           everything alone below. *)
        Mutex.lock latch;
        pending := 0;
        Mutex.unlock latch
      end;
    drain ();
    Mutex.lock latch;
    while !pending > 0 do
      Condition.wait finished latch
    done;
    Mutex.unlock latch;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function Some v -> v | None -> assert false (* every chunk ran *))
      results
  end
