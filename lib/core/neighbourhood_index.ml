type t = {
  incoming : Otil.t array;  (* N+ : per vertex, multi-edges of in-neighbours *)
  outgoing : Otil.t array;  (* N− : per vertex, multi-edges of out-neighbours *)
  mutable probes : int;  (* lifetime lookup count; racy under domains,
                            lost increments are acceptable *)
}

(* Build the tries of the vertex range [lo, hi) in one direction — the
   shardable unit of the parallel index construction. Each vertex's trie
   only reads that vertex's adjacency list, so disjoint ranges never
   share mutable state. Tries come back prepared (caches materialized)
   so queries are read-only and the index can serve several domains
   concurrently. *)
let build_range ?(layout = Mgraph.Posting.Auto) db dir ~lo ~hi =
  let g = Database.graph db in
  Array.init (hi - lo) (fun i ->
      let v = lo + i in
      let trie = Otil.create () in
      Array.iter
        (fun (v', types) -> Otil.add trie types v')
        (Mgraph.Multigraph.adjacency g dir v);
      Otil.prepare ~policy:layout trie;
      trie)

let of_tries ~incoming ~outgoing =
  if Array.length incoming <> Array.length outgoing then
    invalid_arg "Neighbourhood_index.of_tries: direction length mismatch";
  { incoming; outgoing; probes = 0 }

let build ?layout db =
  let n = Mgraph.Multigraph.vertex_count (Database.graph db) in
  of_tries
    ~incoming:(build_range ?layout db Mgraph.Multigraph.In ~lo:0 ~hi:n)
    ~outgoing:(build_range ?layout db Mgraph.Multigraph.Out ~lo:0 ~hi:n)

let export t = (t.incoming, t.outgoing)

let neighbours t v dir types =
  if Array.length types = 0 then
    invalid_arg "Neighbourhood_index.neighbours: empty edge type set";
  t.probes <- t.probes + 1;
  let trie =
    match dir with
    | Mgraph.Multigraph.Out -> t.outgoing.(v)
    | Mgraph.Multigraph.In -> t.incoming.(v)
  in
  if Array.length types = 1 then Otil.with_symbol trie types.(0)
  else Otil.supersets trie types

let vertex_count t = Array.length t.incoming
let probes t = t.probes

let posting_stats t =
  let s = Mgraph.Posting.fresh_stats () in
  Array.iter (fun trie -> Otil.posting_stats trie s) t.incoming;
  Array.iter (fun trie -> Otil.posting_stats trie s) t.outgoing;
  s
