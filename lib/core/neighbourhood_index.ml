type t = {
  incoming : Otil.t array;  (* N+ : per vertex, multi-edges of in-neighbours *)
  outgoing : Otil.t array;  (* N− : per vertex, multi-edges of out-neighbours *)
  mutable probes : int;  (* lifetime lookup count; racy under domains,
                            lost increments are acceptable *)
}

let build db =
  let g = Database.graph db in
  let n = Mgraph.Multigraph.vertex_count g in
  let incoming = Array.init n (fun _ -> Otil.create ())
  and outgoing = Array.init n (fun _ -> Otil.create ()) in
  for v = 0 to n - 1 do
    Array.iter
      (fun (v', types) -> Otil.add incoming.(v) types v')
      (Mgraph.Multigraph.adjacency g Mgraph.Multigraph.In v);
    Array.iter
      (fun (v', types) -> Otil.add outgoing.(v) types v')
      (Mgraph.Multigraph.adjacency g Mgraph.Multigraph.Out v)
  done;
  (* Materialize the inverted-list caches so queries are read-only and
     the index can serve several domains concurrently. *)
  Array.iter Otil.prepare incoming;
  Array.iter Otil.prepare outgoing;
  { incoming; outgoing; probes = 0 }

let neighbours t v dir types =
  if Array.length types = 0 then
    invalid_arg "Neighbourhood_index.neighbours: empty edge type set";
  t.probes <- t.probes + 1;
  let trie =
    match dir with
    | Mgraph.Multigraph.Out -> t.outgoing.(v)
    | Mgraph.Multigraph.In -> t.incoming.(v)
  in
  if Array.length types = 1 then Otil.with_symbol trie types.(0)
  else Otil.supersets trie types

let vertex_count t = Array.length t.incoming
let probes t = t.probes
