(* Delta overlay: fully rebuilt prepared tries of every vertex the write
   store touched, keyed per direction; untouched vertices fall through
   to the frozen base arrays. *)
type patch = {
  p_in : (int, Otil.t) Hashtbl.t;
  p_out : (int, Otil.t) Hashtbl.t;
  p_empty : Otil.t;  (* shared trie for new vertices with no edges *)
  p_vertices : int;  (* overlay vertex count (>= base) *)
}

type t = {
  incoming : Otil.t array;  (* N+ : per vertex, multi-edges of in-neighbours *)
  outgoing : Otil.t array;  (* N− : per vertex, multi-edges of out-neighbours *)
  patch : patch option;
  mutable probes : int;  (* lifetime lookup count; racy under domains,
                            lost increments are acceptable *)
}

(* Build the tries of the vertex range [lo, hi) in one direction — the
   shardable unit of the parallel index construction. Each vertex's trie
   only reads that vertex's adjacency list, so disjoint ranges never
   share mutable state. Tries come back prepared (caches materialized)
   so queries are read-only and the index can serve several domains
   concurrently. *)
let vertex_trie ?(layout = Mgraph.Posting.Auto) g dir v =
  let trie = Otil.create () in
  Array.iter
    (fun (v', types) -> Otil.add trie types v')
    (Mgraph.Multigraph.adjacency g dir v);
  Otil.prepare ~policy:layout trie;
  trie

let build_range ?layout db dir ~lo ~hi =
  let g = Database.graph db in
  Array.init (hi - lo) (fun i -> vertex_trie ?layout g dir (lo + i))

let of_tries ~incoming ~outgoing =
  if Array.length incoming <> Array.length outgoing then
    invalid_arg "Neighbourhood_index.of_tries: direction length mismatch";
  { incoming; outgoing; patch = None; probes = 0 }

let build ?layout db =
  let n = Mgraph.Multigraph.vertex_count (Database.graph db) in
  of_tries
    ~incoming:(build_range ?layout db Mgraph.Multigraph.In ~lo:0 ~hi:n)
    ~outgoing:(build_range ?layout db Mgraph.Multigraph.Out ~lo:0 ~hi:n)

let export t =
  if t.patch <> None then invalid_arg "Neighbourhood_index.export: overlay index";
  (t.incoming, t.outgoing)

let overlay ~base ~graph ~touched_out ~touched_in () =
  if base.patch <> None then
    invalid_arg "Neighbourhood_index.overlay: base must be frozen";
  let n = Mgraph.Multigraph.vertex_count graph in
  if n < Array.length base.incoming then
    invalid_arg "Neighbourhood_index.overlay: graph smaller than base";
  let table dir vs =
    let tbl = Hashtbl.create (2 * List.length vs + 1) in
    List.iter
      (fun v ->
        if v < 0 || v >= n then
          invalid_arg "Neighbourhood_index.overlay: vertex out of range";
        (* Overlay tries wrap small short-lived patches: Raw postings. *)
        Hashtbl.replace tbl v (vertex_trie ~layout:Mgraph.Posting.(Force Raw) graph dir v))
      vs;
    tbl
  in
  let p_empty = Otil.create () in
  Otil.prepare p_empty;
  {
    incoming = base.incoming;
    outgoing = base.outgoing;
    patch =
      Some
        {
          p_in = table Mgraph.Multigraph.In touched_in;
          p_out = table Mgraph.Multigraph.Out touched_out;
          p_empty;
          p_vertices = n;
        };
    probes = 0;
  }

let trie_of t v dir =
  match t.patch with
  | None -> (
      match dir with
      | Mgraph.Multigraph.Out -> t.outgoing.(v)
      | Mgraph.Multigraph.In -> t.incoming.(v))
  | Some p -> (
      let tbl =
        match dir with
        | Mgraph.Multigraph.Out -> p.p_out
        | Mgraph.Multigraph.In -> p.p_in
      in
      match Hashtbl.find_opt tbl v with
      | Some trie -> trie
      | None ->
          if v < Array.length t.incoming then
            match dir with
            | Mgraph.Multigraph.Out -> t.outgoing.(v)
            | Mgraph.Multigraph.In -> t.incoming.(v)
          else p.p_empty)

let neighbours t v dir types =
  if Array.length types = 0 then
    invalid_arg "Neighbourhood_index.neighbours: empty edge type set";
  t.probes <- t.probes + 1;
  let trie = trie_of t v dir in
  if Array.length types = 1 then Otil.with_symbol trie types.(0)
  else Otil.supersets trie types

let vertex_count t =
  match t.patch with None -> Array.length t.incoming | Some p -> p.p_vertices

let probes t = t.probes

let posting_stats t =
  let s = Mgraph.Posting.fresh_stats () in
  (match t.patch with
  | None ->
      Array.iter (fun trie -> Otil.posting_stats trie s) t.incoming;
      Array.iter (fun trie -> Otil.posting_stats trie s) t.outgoing
  | Some p ->
      for v = 0 to p.p_vertices - 1 do
        Otil.posting_stats (trie_of t v Mgraph.Multigraph.In) s;
        Otil.posting_stats (trie_of t v Mgraph.Multigraph.Out) s
      done);
  s
