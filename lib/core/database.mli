(** The multigraph database: an RDF tripleset transformed per paper
    Section 2.1.1.

    Subjects and IRI/bnode objects become vertices; predicates between
    two vertices become typed edges; a literal object is folded together
    with its predicate into a vertex {e attribute} of the subject. Three
    dictionaries (Table 2) map RDF entities to dense ids and back. *)

type t

val of_triples : ?layout:Mgraph.Posting.policy -> Rdf.Triple.t list -> t
(** [layout] picks the physical posting layout of the multigraph's
    frozen neighbour lists (default [Auto]). *)

(** {1 Snapshot decomposition}

    [export]/[import] expose the database's constituent parts so the
    snapshot codec ([Amber.Snapshot]) can serialize them without this
    module learning any on-disk format. *)

type parts = {
  p_graph : Mgraph.Multigraph.t;
  p_vertices : Mgraph.Dict.t;
  p_edge_types : Mgraph.Dict.t;
  p_attributes : Mgraph.Dict.t;
  p_attribute_data : (string * Rdf.Term.literal) array;
  p_triple_count : int;
}

val export : t -> parts

val import : parts -> t
(** Reassemble a database from parts. @raise Invalid_argument when the
    parts are mutually inconsistent (dictionary sizes disagreeing with
    the graph, attribute ids out of range). *)

val graph : t -> Mgraph.Multigraph.t

(** {1 Delta overlay} *)

val overlay :
  base:t ->
  graph:Mgraph.Multigraph.t ->
  new_vertices:string array ->
  new_edge_types:string array ->
  new_attributes:(string * Rdf.Term.literal) array ->
  triple_count:int ->
  unit ->
  t
(** [overlay ~base ~graph ...] wraps the delta-overlay [graph] (built by
    {!Mgraph.Multigraph.overlay} over [base]'s packed graph) together
    with dictionary {e extensions}: terms the write store introduced that
    the frozen base dictionaries don't know. New vertex keys take ids
    [vertex_count base + i] (in array order), and likewise for edge
    types and [(predicate, literal)] attributes. The base dictionaries
    are shared untouched — they are mutable hashtables visible to every
    reader pinned on the same generation, so the overlay never interns
    into them. [triple_count] is the exact post-delta triple count
    (maintained by the delta compiler).
    @raise Invalid_argument when [base] is already an overlay, [graph]
    is not an overlay, sizes disagree, or a "new" key already exists in
    the base. *)

val is_overlay : t -> bool

val key_of_term : Rdf.Term.t -> string option
(** The vertex-dictionary key encoding of an IRI or blank-node term
    ([None] for literals) — exposed so the delta compiler can assign ids
    to vertices the base dictionaries don't know in a deterministic
    (key-sorted) order. *)

(** {1 Dictionary lookups (the mapping functions M and M⁻¹)} *)

val vertex_of_term : t -> Rdf.Term.t -> int option
(** Vertex id of an IRI or blank-node term; [None] if absent or the term
    is a literal. *)

val term_of_vertex : t -> int -> Rdf.Term.t
(** Inverse vertex mapping [M⁻¹_v]. *)

val edge_type_of_iri : t -> string -> int option
(** Edge-type id of a predicate IRI ([M_e]); [None] when the predicate
    never links two vertices. *)

val iri_of_edge_type : t -> int -> string

val attribute_of : t -> pred:string -> lit:Rdf.Term.literal -> int option
(** Attribute id of a [(predicate, literal)] pair ([M_a]). *)

val attribute_data : t -> int -> string * Rdf.Term.literal
(** Inverse attribute mapping: the [(predicate IRI, literal)] pair. *)

val attribute_predicate_exists : t -> string -> bool
(** Does any attribute use this predicate IRI? Together with
    {!edge_type_of_iri} this decides whether a predicate occurs in the
    data at all — the static analyzer's unknown-predicate proof. Linear
    in the attribute count (only consulted on lookup failures). *)

val vertex_count : t -> int
val edge_type_count : t -> int
val attribute_count : t -> int
val triple_count : t -> int
(** Number of input triples retained (duplicates collapse). *)

val to_triples : t -> Rdf.Triple.t list
(** Reconstruct the tripleset the database denotes (edges plus folded
    attributes). Round-trip guarantee: [of_triples (to_triples db)] is
    semantically identical to [db] (identifiers may be reassigned but
    every query answers the same). Duplicate input triples do not
    reappear. *)

val literals_of : t -> vertex:int -> pred:string -> Rdf.Term.literal list
(** All literals attached to [vertex] through [pred] — supports the
    open-object extension ({!Literal_bindings}). *)

val pp_stats : Format.formatter -> t -> unit
