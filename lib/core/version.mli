(** The engine's version string, exported by the endpoint as the
    [amber_build_info] gauge's [version] label and printed by the CLI.
    Bumped per release line. *)

val version : string
