(** The write store: an immutable set-semantics delta of inserted and
    deleted triples over a frozen base engine.

    The merged world a delta denotes is [(base \ dels) ∪ adds]; {!insert}
    and {!remove} keep the two sets disjoint, so there is never an
    ordering ambiguity. {!compile} lowers a delta onto a base engine as
    a {e delta overlay}: per-index patches (merged adjacency, attribute
    lists, OTIL tries and synopses of exactly the touched vertices)
    layered over the shared frozen structures, assembled into a fresh
    {!Engine.t} the matcher queries through the unchanged kernel
    interfaces. Compilation is O(|delta| + touched degree) and never
    mutates the base, so readers pinned on older epochs are unaffected. *)

type t

val empty : t

val insert : t -> Rdf.Triple.t -> t
(** Record an insertion (also cancels a pending deletion of the same
    triple). Inserting a triple the base already holds is harmless —
    set semantics. *)

val remove : t -> Rdf.Triple.t -> t
(** Record a deletion (also cancels a pending insertion). Deleting a
    triple the base never held is a no-op at compile time. *)

val apply : t -> adds:Rdf.Triple.t list -> dels:Rdf.Triple.t list -> t
(** Batch form: deletions first, then insertions (SPARQL UPDATE's
    DELETE/INSERT order — a triple in both lists ends up present). *)

val adds : t -> Rdf.Triple.t list
(** Pending insertions, in {!Rdf.Triple.compare} order. *)

val dels : t -> Rdf.Triple.t list

val add_count : t -> int
val del_count : t -> int
val size : t -> int
val is_empty : t -> bool

val compile : Engine.t -> t -> Engine.t
(** [compile base delta] — an overlay engine answering queries over the
    merged world. [base] must itself be a frozen (non-overlay) engine:
    layers do not chain; the caller recompiles the full cumulative delta
    instead. New IRIs/bnodes, predicates and [(predicate, literal)]
    attributes get ids past the base dictionaries, assigned in sorted
    key order, so compilation is deterministic. The result shares the
    base's packed structures and has fresh matcher caches. *)
