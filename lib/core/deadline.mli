(** Cooperative query deadlines.

    The paper's evaluation (Section 7.2) imposes a per-query time limit
    and reports the fraction of unanswered queries. Matching is a deep
    recursion, so the deadline is polled cooperatively: {!check} costs an
    increment most of the time and consults the wall clock every few
    hundred calls. *)

type t

exception Expired

val after : float -> t
(** [after seconds] is a deadline [seconds] from now (wall clock). *)

val never : t
(** A deadline that never fires. *)

val clone : t -> t
(** A deadline with the same absolute limit but a fresh poll counter.
    {!check}'s amortization state is mutable and unsynchronized, so
    every domain of a parallel run must poll its own clone. *)

val check : t -> unit
(** @raise Expired once the deadline has passed. *)

val expired : t -> bool
(** Non-raising variant (always consults the clock). *)

val remaining : t -> float
(** Seconds left; [infinity] for {!never}. *)

val poll_interval : int
(** {!check} consults the wall clock once every [poll_interval] calls —
    an expired deadline fires within that many checks, never later. *)
