(** AMbER — the complete engine: offline build + online query.

    [build] runs the paper's offline stage (multigraph transformation
    plus the indexes [I = {A, S, N}]); [query] the online stage
    (query-multigraph construction, decomposition, homomorphic matching,
    embedding generation, projection). *)

type t

val build :
  ?synopsis_mode:Synopsis_index.mode ->
  ?layout:Mgraph.Posting.policy ->
  ?domains:int ->
  Rdf.Triple.t list ->
  t
(** Transform triples into the multigraph database and build all three
    indexes.

    @param layout physical posting-list layout policy for the adjacency,
    attribute and OTIL lists (default [Auto] — per-list density/size
    heuristics). [Force Raw] is the uncompressed ablation baseline.
    @param domains build the indexes on up to this many domains (default
    1 — strictly sequential). [A] builds as one task while the
    per-vertex loops of [S] (synopsis computation) and [N] (trie
    insertion, per direction) are sharded into deterministic vertex
    ranges on the shared {!Domain_pool}; assembly is sequential, so the
    resulting indexes are identical — byte-for-byte under the
    {!Snapshot} encoding — to the sequential build. Build times land in
    the [amber_index_build_seconds{index=...}] histograms. *)

val db : t -> Database.t
val layout : t -> Mgraph.Posting.policy
(** The posting layout policy this engine's indexes froze under. *)

val attribute_index : t -> Attribute_index.t
val synopsis_index : t -> Synopsis_index.t
val neighbourhood_index : t -> Neighbourhood_index.t

val of_parts :
  ?layout:Mgraph.Posting.policy ->
  ?stats:Stats.t Lazy.t ->
  db:Database.t ->
  attribute:Attribute_index.t ->
  synopsis:Synopsis_index.t ->
  neighbourhood:Neighbourhood_index.t ->
  unit ->
  t
(** Assemble an engine from a database and prebuilt indexes — the delta
    compiler's entry point for overlay engines. The engine gets fresh
    matcher caches, so two engines assembled over the same base never
    share LRU state (epoch isolation falls out by construction).
    [stats] supplies the cost-model statistics (the delta compiler
    passes the base generation's — stale against the overlay, but
    estimates only steer plans, never answers); omitted, they are
    computed lazily on first adaptive use. *)

val statistics : t -> Stats.t
(** The engine's cost-model statistics (forced if still lazy) — the
    input of adaptive planning and the payload of the optional snapshot
    stats section. {!build} computes them eagerly (the [stats] bar of
    [amber_index_build_seconds]); snapshot loads reuse the persisted
    section when present. *)

type answer = {
  variables : string list;  (** projected variables, in SELECT order *)
  rows : Rdf.Term.t option list list;
      (** one binding per variable; [None] for variables that do not
          occur in the WHERE clause *)
  truncated : bool;  (** a row limit stopped the enumeration *)
}

exception Unsupported of string
(** The query is outside the supported fragment (variable predicates,
    literal subjects). *)

val query :
  ?timeout:float ->
  ?limit:int ->
  ?strategy:Decompose.strategy ->
  ?satellites:bool ->
  ?open_objects:bool ->
  ?caches:bool ->
  ?analyze:bool ->
  ?domains:int ->
  ?plan:Stats.mode ->
  ?rewrite:bool ->
  t ->
  Sparql.Ast.t ->
  answer
(** Answer a SPARQL query.

    @param timeout seconds of wall clock; raises {!Deadline.Expired}
    when exceeded — the caller decides how to record unanswered queries.
    @param limit cap on returned rows (combined with the query's own
    [LIMIT], whichever is smaller).
    @param strategy core-vertex ordering heuristic (default the
    paper's).
    @param satellites [false] disables the core/satellite decomposition
    (ablation; default [true]).
    @param open_objects enable the literal-binding extension (default
    [false] — the faithful model).
    @param caches [false] disables the query-scoped probe cache and the
    engine's cross-query attribute/synopsis LRUs (ablation baseline for
    the kernels benchmark; default [true]).
    @param analyze [true] (the default) screens the built query graph
    with the static analyzer ({!Analysis.screen}) and short-circuits a
    proven-unsatisfiable query to the empty answer without searching
    (counted in [amber_analysis_unsat_total]). Every proof implies zero
    embeddings, so the answer is byte-identical either way — [false]
    only skips the screening probes (ablation / benchmarking).
    @param domains run the matcher on up to this many domains (default 1
    — strictly sequential). Each component's initial candidate set is
    split into work-stealing chunks solved on the shared
    {!Domain_pool}; per-domain solutions and stats merge
    deterministically, so without a row limit the answer (rows and
    their order) is identical to the sequential run. With a limit the
    chunks race to the cap and the prefix taken may differ (row count
    and [truncated] are still exact).
    @param plan seed-strategy and ordering policy (default
    [Stats.Adaptive]): [Paper] reproduces the paper's fixed plan
    (r1/r2 order, R-tree seed probe) and touches no statistics;
    [Adaptive] orders core vertices by {!Stats.estimate_vertex} and
    picks each component's seed strategy by estimated cost
    ({!Stats.choice_for}); [Forced s] pins the seed strategy (ordering
    stays cardinality-driven). All strategies materialize the same
    candidate sets, so plans never change answers — only the work done
    to reach them.
    @param rewrite [true] (the default) runs the semantic rewriter
    ({!Rewrite.apply}) over the WHERE clause before decomposition:
    duplicate and homomorphically redundant patterns are removed,
    data-forced variables are substituted (and re-attached to projected
    rows), and Cartesian products are flagged. Every pass is
    equivalence-preserving, so the answer is identical either way —
    [false] is the ablation/debugging escape hatch. Applied steps land
    in [amber_rewrite_steps_total{kind=…}], the flight record and the
    profile.
    @raise Unsupported on out-of-fragment queries.
    @raise Deadline.Expired on timeout (each domain polls its own
    deadline clone; the run joins every chunk before re-raising). *)

val query_string :
  ?timeout:float ->
  ?limit:int ->
  ?strategy:Decompose.strategy ->
  ?satellites:bool ->
  ?open_objects:bool ->
  ?namespaces:Rdf.Namespace.t ->
  ?analyze:bool ->
  ?domains:int ->
  ?plan:Stats.mode ->
  ?rewrite:bool ->
  t ->
  string ->
  answer
(** Parse and answer. @raise Sparql.Parser.Error on bad syntax. *)

val count_embeddings : ?timeout:float -> ?open_objects:bool -> t -> Sparql.Ast.t -> int
(** Total number of homomorphic embeddings, without materializing rows
    (satellite sets and components multiply combinatorially). *)

val query_with_stats :
  ?timeout:float ->
  ?limit:int ->
  ?strategy:Decompose.strategy ->
  ?satellites:bool ->
  ?open_objects:bool ->
  ?caches:bool ->
  ?analyze:bool ->
  ?domains:int ->
  ?plan:Stats.mode ->
  ?rewrite:bool ->
  t ->
  Sparql.Ast.t ->
  answer * Matcher.stats
(** Like {!query}, also returning the matcher's search counters (index
    probes, cache hits/misses, candidates scanned, satellite
    rejections, solutions) — the instrumentation behind the ablation
    experiments. Under [domains > 1] the counters are the field-wise sum
    over every domain's private stats ({!Matcher.merge_into}). *)

(** {1 Profiled execution}

    The observability entry points: like {!query} /
    {!query_string}, but additionally building a {!Profile.t} — the
    per-query phase tree (parse → decompose → candidates → match →
    enumerate), the chosen core order, per-vertex candidate-set sizes
    before/after synopsis pruning, and the matcher's counters (the
    {!Matcher.stats} the plain paths record into the default metric
    registry but do not return). Profiling adds a few extra index probes
    for the candidate report; use the plain paths when benchmarking. *)

val query_profiled :
  ?timeout:float ->
  ?limit:int ->
  ?strategy:Decompose.strategy ->
  ?satellites:bool ->
  ?open_objects:bool ->
  ?caches:bool ->
  ?analyze:bool ->
  ?domains:int ->
  ?plan:Stats.mode ->
  ?rewrite:bool ->
  t ->
  Sparql.Ast.t ->
  answer * Profile.t

val query_string_profiled :
  ?timeout:float ->
  ?limit:int ->
  ?strategy:Decompose.strategy ->
  ?satellites:bool ->
  ?open_objects:bool ->
  ?namespaces:Rdf.Namespace.t ->
  ?analyze:bool ->
  ?domains:int ->
  ?plan:Stats.mode ->
  ?rewrite:bool ->
  t ->
  string ->
  answer * Profile.t
(** Parse and answer under the profiler; parsing time appears as the
    [parse] phase. @raise Sparql.Parser.Error on bad syntax. *)

val sync_index_metrics : t -> unit
(** Copy the indexes' lifetime probe counters
    ([amber_{attribute,synopsis,neighbourhood}_index_probes_total]) and
    the cross-query LRU counters
    ([amber_engine_{attribute,synopsis}_cache_{hits,misses}_total]) into
    the default metric registry — called by the endpoint before
    rendering [GET /metrics]. *)

val resident_bytes : t -> (string * int) list
(** Bytes resident in each index structure: the reachable-heap walk plus
    the out-of-heap ([Bigarray]) payload bytes of compressed posting
    lists — [("adjacency", …)] (the multigraph), [("attribute", …)] (the
    inverted lists), [("synopsis", …)] (the R-tree), and
    [("neighbourhood", …)] (the OTILs). Linear in index size — call per
    metrics scrape or per report, not per query. Heap blocks shared
    between structures are counted from each structure reaching them. *)

val posting_stats : t -> Mgraph.Posting.stats
(** Census of every frozen posting list the indexes hold: per-layout
    list counts, total elements, and out-of-heap payload bytes —
    published as [amber_posting_lists{layout=…}] by
    {!sync_resource_metrics}. *)

val sync_resource_metrics : t -> unit
(** Publish {!resident_bytes} as the
    [amber_index_resident_bytes{index=…}] gauges in the default
    registry — called by the endpoint before rendering
    [GET /metrics]. *)

val recommended_domains : unit -> int
(** The machine's recommended domain count minus the caller, clamped to
    [1, 8] — the default for {!query_parallel} and a sensible value for
    [?domains] elsewhere. *)

val query_parallel :
  ?timeout:float ->
  ?limit:int ->
  ?strategy:Decompose.strategy ->
  ?satellites:bool ->
  ?open_objects:bool ->
  ?analyze:bool ->
  ?domains:int ->
  ?plan:Stats.mode ->
  ?rewrite:bool ->
  t ->
  Sparql.Ast.t ->
  answer
(** [query] with [domains] defaulting to {!recommended_domains} — the
    parallel processing the paper lists as future work (Section 8),
    kept as a convenience entry point. *)

(** {1 Static analysis}

    The compile-time twin of the runtime pruning: typed diagnostics over
    the query before (or instead of) any matching. See {!Analysis} for
    the diagnostic vocabulary and the soundness contract. *)

val analyze :
  ?probe_cap:int -> ?open_objects:bool -> t -> Sparql.Ast.t -> Analysis.report
(** Full analyzer pipeline over this engine's dictionaries and indexes:
    AST lints, build-time dictionary proofs, index screening. Never
    raises on out-of-fragment queries (they become an [Out_of_fragment]
    warning). Outcomes land in [amber_analysis_{unsat,warning}_total]. *)

val analyze_string :
  ?probe_cap:int ->
  ?open_objects:bool ->
  ?namespaces:Rdf.Namespace.t ->
  t ->
  string ->
  Analysis.report
(** Parse and analyze. @raise Sparql.Parser.Error on bad syntax. *)

(** {1 Plan introspection} *)

type core_step = {
  variable : string;
  r1 : int;  (** #satellites anchored (the paper's first rank) *)
  r2 : int;  (** total incident edge-type count (second rank) *)
  estimate : int;  (** {!Stats.estimate_vertex} candidate estimate *)
  strategy : string option;
      (** seed-strategy slug the plan would use — only for the first
          core vertex of its component *)
  satellite_vars : string list;
  initial_candidates : int option;
      (** |C_init| from the synopsis index ∩ ProcessVertex — only for
          the first core vertex of its component *)
}

type explanation =
  | Unsat of string
  | Plan of {
      plan_mode : string;  (** {!Stats.mode_to_string} of the policy *)
      components : core_step list list;  (** matching order per component *)
      open_objects : (string * string) list;  (** (subject var, predicate) *)
      rewrites : Rewrite.step list;
          (** rewrite steps the query would run under (the plan describes
              the rewritten clause); empty with [?rewrite:false] *)
    }

val explain :
  ?strategy:Decompose.strategy ->
  ?satellites:bool ->
  ?open_objects:bool ->
  ?plan:Stats.mode ->
  ?rewrite:bool ->
  t ->
  Sparql.Ast.t ->
  explanation
(** Describe how {!query} would attack the query, without running it
    (default plan [Adaptive], matching the query default; explain
    always forces the statistics, so even [Paper] reports
    estimates).
    @raise Unsupported on out-of-fragment queries. *)

val pp_explanation : Format.formatter -> explanation -> unit

val explanation_to_json : explanation -> string
(** Machine-readable form of {!explain} — the CLI's [--json] and the
    CI plan-schema check consume this. *)

(** {1 Persistence}

    Two formats. {!save}/{!load_file} exchange {e triples}
    ([Rdf.Binary], ["AMBERDB1"]): compact and engine-agnostic, but
    loading replays the whole offline stage. {!save_snapshot}/
    {!load_snapshot} persist the {e built indexes} ([Snapshot],
    ["AMBERIX1"]): loading is O(read) — the cold-start path for
    serving. *)

val save : t -> string -> unit
(** Write the database's triples to [path] in the compact {!Rdf.Binary}
    interchange format. Indexes are not stored; {!load_file} rebuilds
    them. *)

val load_file :
  ?synopsis_mode:Synopsis_index.mode ->
  ?layout:Mgraph.Posting.policy ->
  ?domains:int ->
  string ->
  t
(** Load a file written by {!save} (or any {!Rdf.Binary} file) and
    rebuild the indexes ([layout] and [domains] as in {!build}).
    @raise Rdf.Binary.Corrupt on malformed input. *)

val snapshot_contents : t -> Snapshot.contents
(** The engine state a snapshot persists — exposed for the snapshot
    tests' byte-identity comparisons ({!Snapshot.to_string}). *)

val save_snapshot : t -> string -> unit
(** Write the fully built engine state to [path] as an ["AMBERIX1"]
    index snapshot; observed in [amber_snapshot_save_seconds]. *)

val load_snapshot : string -> t
(** Load a snapshot written by {!save_snapshot}: dictionaries, graph and
    all three indexes are read back directly — nothing is rebuilt except
    the derived literal bindings. The synopsis mode and posting layout
    policy are the ones the saved engine was built with; v2 snapshots
    restore each stored posting list in its frozen physical layout. Observed in [amber_snapshot_load_seconds].
    @raise Rdf.Binary.Corrupt on malformed or corrupt input (every
    section is CRC-guarded). *)

(** {1 ASK and CONSTRUCT forms} *)

val ask :
  ?timeout:float ->
  ?open_objects:bool ->
  ?domains:int ->
  ?plan:Stats.mode ->
  ?rewrite:bool ->
  t ->
  Sparql.Ast.t ->
  bool
(** [ASK]: does the pattern have at least one solution? (Evaluated with
    an internal row limit of 1.) *)

val construct :
  ?timeout:float ->
  ?limit:int ->
  ?open_objects:bool ->
  ?domains:int ->
  ?plan:Stats.mode ->
  ?rewrite:bool ->
  t ->
  template:Sparql.Ast.triple_pattern list ->
  Sparql.Ast.t ->
  Rdf.Triple.t list
(** [CONSTRUCT]: instantiate [template] once per solution of the WHERE
    clause. Instantiations with an unbound variable or violating the RDF
    triple invariants (literal subject, non-IRI predicate) are skipped,
    and duplicate triples are emitted once — per the SPARQL spec. *)
