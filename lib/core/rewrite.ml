(* Engine-aware half of the semantic query rewriter: index-backed
   singleton certificates for constant propagation, the Stats-based
   Cartesian blow-up estimate, and the per-kind step metric. The pass
   machinery itself is the pure Amber_rewrite. *)

module Ast = Sparql.Ast

type step = Amber_rewrite.step
type kind = Amber_rewrite.kind

let kind_slug = Amber_rewrite.kind_slug
let slugs = Amber_rewrite.slugs
let pp_step = Amber_rewrite.pp_step
let step_to_json = Amber_rewrite.step_to_json
let steps_to_json = Amber_rewrite.steps_to_json

type outcome = {
  ast : Ast.t;
  bindings : (string * Rdf.Term.t) list;
  steps : step list;
}

let m = Obs.Metrics.default

let m_steps slug =
  Obs.Metrics.counter m "amber_rewrite_steps_total"
    ~labels:[ ("kind", slug) ]
    ~help:
      "Rewrite steps applied by the semantic query rewriter \
       (duplicate-pattern, core-minimization, constant-propagation, \
       cartesian-product)"

(* ------------------------------------------------------------------ *)
(* Singleton certificates                                              *)
(* ------------------------------------------------------------------ *)

let term_of_vertex db u =
  match Database.term_of_vertex db u with
  | Rdf.Term.Iri i -> Some (Ast.Iri i)
  | Rdf.Term.Literal _ | Rdf.Term.Bnode _ -> None

(* The unique neighbour of data vertex [v] in direction [dir] through
   edge type [et], or None when there are zero or several. O(deg v)
   with an early exit at the second hit. *)
let unique_neighbour g dir v et =
  let adj = Mgraph.Multigraph.adjacency g dir v in
  let found = ref None in
  (try
     Array.iter
       (fun (u, types) ->
         if Array.exists (fun t -> t = et) types then
           match !found with
           | None -> found := Some u
           | Some _ ->
               found := None;
               raise Exit)
       adj
   with Exit -> ());
  !found

(* Data-forced bindings, one pattern at a time. Each certificate proves
   that the data admits exactly one binding for the pattern's variable
   {e in that pattern considered alone} — since every query solution
   must satisfy the pattern, the variable is forced query-wide:

   - [?x p <o>]: the in-adjacency of [o] filtered to edge type [p] —
     complete in both object models, a subject is always a resource.
   - [<s> p ?o]: the out-adjacency of [s] filtered to [p] — complete
     only in the faithful model; with [open_objects] the variable may
     also bind a literal the adjacency does not see, so skip.
   - [?x p "lit"]: the attribute index's inverted list for the
     [(p, lit)] pair. *)
let singleton_lookup ~open_objects db attribute (pat : Ast.triple_pattern) =
  let g = Database.graph db in
  match (pat.Ast.subject, pat.Ast.predicate, pat.Ast.obj) with
  | Ast.Var v, Ast.Iri pred, Ast.Iri o -> (
      match
        ( Database.edge_type_of_iri db pred,
          Database.vertex_of_term db (Rdf.Term.iri o) )
      with
      | Some et, Some ov -> (
          match unique_neighbour g Mgraph.Multigraph.In ov et with
          | Some u -> Option.map (fun t -> (v, t)) (term_of_vertex db u)
          | None -> None)
      | _ -> None)
  | Ast.Iri s, Ast.Iri pred, Ast.Var v when not open_objects -> (
      match
        ( Database.edge_type_of_iri db pred,
          Database.vertex_of_term db (Rdf.Term.iri s) )
      with
      | Some et, Some sv -> (
          match unique_neighbour g Mgraph.Multigraph.Out sv et with
          | Some u -> Option.map (fun t -> (v, t)) (term_of_vertex db u)
          | None -> None)
      | _ -> None)
  | Ast.Var v, Ast.Iri pred, Ast.Lit lit -> (
      match Database.attribute_of db ~pred ~lit with
      | Some a ->
          let vertices = Attribute_index.vertices_with attribute a in
          if Mgraph.Posting.length vertices = 1 then
            Option.map
              (fun t -> (v, t))
              (term_of_vertex db (Mgraph.Posting.to_array vertices).(0))
          else None
      | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Cartesian blow-up estimate                                          *)
(* ------------------------------------------------------------------ *)

(* Rows of one variable-connected group, estimated as the smallest
   per-pattern candidate count — the group's joins can only shrink its
   most selective pattern. Advisory only (it feeds a hint, never a
   plan), so cheap beats precise. *)
let component_rows db stats patterns =
  let st = Lazy.force stats in
  (* On a live engine the database overlay can hold edge types or
     attributes younger than the stats snapshot's arrays; treat those
     as unknown rather than indexing out of bounds. *)
  let counted a i = if i < Array.length a then a.(i) else st.Stats.triples in
  let pattern_count (p : Ast.triple_pattern) =
    match (p.Ast.predicate, p.Ast.obj) with
    | Ast.Iri pred, Ast.Lit lit -> (
        match Database.attribute_of db ~pred ~lit with
        | Some a -> counted st.Stats.attr_lengths a
        | None -> 0)
    | Ast.Iri pred, _ -> (
        match Database.edge_type_of_iri db pred with
        | Some et -> counted st.Stats.type_out_edges et
        | None ->
            if Database.attribute_predicate_exists db pred then
              st.Stats.triples
            else 0)
    | _ -> st.Stats.triples
  in
  List.fold_left (fun acc p -> min acc (pattern_count p)) max_int patterns

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let apply ?(open_objects = false) ?max_patterns ~db ~attribute ~stats ast =
  (* The open-objects extension binds literals to object variables
     selected by clause shape (occurrence counts, ground vs variable
     subject), so any clause mutation can change answers there — run
     the rewriter hint-only in that mode. *)
  let r =
    Amber_rewrite.rewrite ?max_patterns ~mutate:(not open_objects)
      ~singleton:(singleton_lookup ~open_objects db attribute)
      ~component_rows:(component_rows db stats)
      ast
  in
  List.iter
    (fun (s : step) ->
      Obs.Metrics.incr (m_steps (Amber_rewrite.kind_slug s.Amber_rewrite.kind)))
    r.Amber_rewrite.steps;
  let bindings =
    List.filter_map
      (fun (v, t) ->
        match t with
        | Ast.Iri i -> Some (v, Rdf.Term.iri i)
        | Ast.Lit l -> Some (v, Rdf.Term.Literal l)
        | Ast.Var _ -> None)
      r.Amber_rewrite.bindings
  in
  { ast = r.Amber_rewrite.ast; bindings; steps = r.Amber_rewrite.steps }
