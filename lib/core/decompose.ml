type strategy = Paper | By_degree | Arbitrary | Estimate of (int -> int)

type component = {
  core_order : int array;
  prior_edges : (int * (Mgraph.Multigraph.direction * int array) list) array array;
}

type plan = {
  components : component array;
  is_core : bool array;
  satellites_of : int list array;
  anchor_of : int array;
}

(* Distinct variable neighbours of [u] (self excluded). *)
let var_neighbours (q : Query_graph.t) u =
  let collect dir acc =
    if u < Mgraph.Multigraph.vertex_count q.graph then
      Array.fold_left
        (fun acc (v, _) -> if v = u then acc else v :: acc)
        acc
        (Mgraph.Multigraph.adjacency q.graph dir u)
    else acc
  in
  Mgraph.Sorted_ints.of_list
    (collect Mgraph.Multigraph.Out (collect Mgraph.Multigraph.In []))

let r2 (q : Query_graph.t) u =
  let var_part =
    let count dir acc =
      if u < Mgraph.Multigraph.vertex_count q.graph then
        Array.fold_left
          (fun acc (v, types) -> if v = u then acc else acc + Array.length types)
          acc
          (Mgraph.Multigraph.adjacency q.graph dir u)
      else acc
    in
    count Mgraph.Multigraph.Out (count Mgraph.Multigraph.In 0)
  in
  let iri_part =
    List.fold_left (fun acc c -> acc + Array.length c.Query_graph.types) 0 q.iris.(u)
  in
  var_part + iri_part + Array.length q.self_loops.(u)

let r1 (_q : Query_graph.t) plan u = List.length plan.satellites_of.(u)

let plan ?(strategy = Paper) ?(satellites = true) (q : Query_graph.t) =
  let n = Query_graph.vertex_count q in
  let neighbours = Array.init n (var_neighbours q) in
  (* Connected components over variable-variable edges. *)
  let comp_id = Array.make n (-1) in
  let comp_members = ref [] in
  for u = 0 to n - 1 do
    if comp_id.(u) = -1 then begin
      let id = List.length !comp_members in
      let members = ref [] in
      let queue = Queue.create () in
      Queue.add u queue;
      comp_id.(u) <- id;
      while not (Queue.is_empty queue) do
        let x = Queue.pop queue in
        members := x :: !members;
        Array.iter
          (fun y ->
            if comp_id.(y) = -1 then begin
              comp_id.(y) <- id;
              Queue.add y queue
            end)
          neighbours.(x)
      done;
      comp_members := List.rev !members :: !comp_members
    end
  done;
  let comp_members = Array.of_list (List.rev !comp_members) in
  (* Core test: paper degree > 1, or a self loop (satellite matching
     cannot check loops). *)
  let is_core =
    Array.init n (fun u ->
        (not satellites)
        || Query_graph.degree q u > 1
        || Array.length q.self_loops.(u) > 0)
  in
  (* Promote the best-ranked vertex of core-less components. *)
  Array.iter
    (fun members ->
      if not (List.exists (fun u -> is_core.(u)) members) then begin
        let best =
          List.fold_left
            (fun best u ->
              match best with
              | None -> Some u
              | Some b -> if r2 q u > r2 q b then Some u else best)
            None members
        in
        match best with Some u -> is_core.(u) <- true | None -> ()
      end)
    comp_members;
  (* Anchor each satellite to its (unique) core neighbour. *)
  let satellites_of = Array.make n [] in
  let anchor_of = Array.make n (-1) in
  for u = 0 to n - 1 do
    if not is_core.(u) then begin
      match Array.to_list neighbours.(u) with
      | [ c ] when is_core.(c) ->
          anchor_of.(u) <- c;
          satellites_of.(c) <- u :: satellites_of.(c)
      | [] ->
          (* impossible: a vertex alone in its component is promoted *)
          assert false
      | _ -> assert false (* a satellite has exactly one core neighbour *)
    end
  done;
  let plan0 = { components = [||]; is_core; satellites_of; anchor_of } in
  (* Order the core vertices of each component. *)
  let rank u =
    match strategy with
    | Paper -> (r1 q plan0 u, r2 q u)
    | By_degree -> (Query_graph.degree q u, 0)
    | Arbitrary -> (0, 0)
    (* Cardinality-driven: fewest estimated candidates first (the rank
       is maximized, hence the negation), ties broken by the paper's
       r2 so the order degrades gracefully when estimates tie. *)
    | Estimate f -> (-f u, r2 q u)
  in
  let better u v =
    (* [u] strictly better than [v]? Lexicographic rank, ties to the
       smaller vertex id for determinism. *)
    let ru = rank u and rv = rank v in
    if ru <> rv then ru > rv else u < v
  in
  (* Positions j < i of the order whose vertex is adjacent to the
     vertex at position i, with the connecting multi-edges precomputed
     from position i's perspective — the matcher would otherwise rescan
     the order array and recompute [multi_edges_between] at every
     recursion depth of every candidate. *)
  let prior_edges_of order =
    Array.mapi
      (fun i u ->
        let rec collect j acc =
          if j < 0 then acc
          else
            match Query_graph.multi_edges_between q u order.(j) with
            | [] -> collect (j - 1) acc
            | edges -> collect (j - 1) ((j, edges) :: acc)
        in
        Array.of_list (collect (i - 1) []))
      order
  in
  let make_component order = { core_order = order; prior_edges = prior_edges_of order } in
  let order_component members =
    let core = List.filter (fun u -> is_core.(u)) members in
    match core with
    | [] -> make_component [||]
    | _ ->
        let chosen = Hashtbl.create 8 in
        let order = ref [] in
        let pick candidates =
          List.fold_left
            (fun best u ->
              match best with
              | None -> Some u
              | Some b -> if better u b then Some u else best)
            None candidates
        in
        let first =
          match pick core with Some u -> u | None -> assert false
        in
        Hashtbl.add chosen first ();
        order := [ first ];
        let remaining = ref (List.filter (fun u -> u <> first) core) in
        while !remaining <> [] do
          let connected =
            List.filter
              (fun u ->
                Array.exists (Hashtbl.mem chosen) neighbours.(u))
              !remaining
          in
          (* The core subgraph of a component is connected, but promoted
             singletons aside we stay defensive: fall back to any. *)
          let pool = if connected = [] then !remaining else connected in
          let next = match pick pool with Some u -> u | None -> assert false in
          Hashtbl.add chosen next ();
          order := next :: !order;
          remaining := List.filter (fun u -> u <> next) !remaining
        done;
        make_component (Array.of_list (List.rev !order))
  in
  let components = Array.map order_component comp_members in
  { plan0 with components }
