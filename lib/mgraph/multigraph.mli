(** Directed, vertex-attributed multigraph (paper Definition 1).

    A multigraph [G = (V, E, L_V, L_E)]: vertices are dense ints
    [0 .. vertex_count-1]; between an ordered pair [(v, v')] there is at
    most one {e multi-edge}, labelled with a non-empty sorted set of edge
    types; every vertex carries a (possibly empty) sorted set of
    attribute ids. The structure is immutable once built — construct it
    with {!Builder}.

    Internally the adjacency is {e packed}: each direction keeps one
    frozen {!Posting} neighbour list per vertex (compressed according to
    the build-time layout policy) plus flat pools for the multi-edge
    type sets and attribute sets, instead of one heap block per edge.
    Queries run directly over this form; {!adjacency} and {!export}
    materialize the classic tuple view on demand.

    A graph is either {e packed} (the frozen form above) or a {e delta
    overlay}: a packed base plus the fully merged adjacency/attribute
    state of every vertex a write store has touched (see {!overlay}).
    Every accessor answers identically over either form, so the matcher
    and indexes need not know which one they hold. *)

type vertex = int
type edge_type = int
type attribute = int

type t

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type t

  val create : ?vertex_hint:int -> unit -> t

  val add_vertex : t -> vertex -> unit
  (** Ensure [vertex] exists (vertices are also created implicitly by
      {!add_edge} / {!add_attribute}). *)

  val add_edge : t -> vertex -> edge_type -> vertex -> unit
  (** [add_edge b v t v'] adds type [t] to the multi-edge [v → v'].
      Duplicate insertions are idempotent. *)

  val add_attribute : t -> vertex -> attribute -> unit

  val build : ?layout:Posting.policy -> t -> graph
  (** Freeze into an immutable multigraph; [layout] picks the physical
      posting layout of the neighbour lists (default [Auto]). The
      builder must not be used afterwards. *)
end

(** {1 Accessors} *)

type direction = Out | In
(** [Out] = edges leaving the vertex (paper's negative '−'); [In] =
    edges arriving at it (paper's positive '+'). *)

val vertex_count : t -> int
val edge_type_count : t -> int
(** 1 + the largest edge type id present (0 for an edgeless graph). *)

val multi_edge_count : t -> int
(** Number of ordered vertex pairs connected by a multi-edge — the
    paper's |E|. *)

val triple_edge_count : t -> int
(** Total number of (v, t, v') atomic edges — one per RDF triple with an
    IRI object. *)

val attributes : t -> vertex -> attribute array
(** Sorted attribute ids of a vertex (a fresh array sliced from the
    attribute pool). *)

val neighbours : t -> direction -> vertex -> Posting.t
(** The vertex's resident neighbour posting list — zero-copy, possibly
    compressed. [neighbours g Out v] holds the [v'] with [v → v']. *)

val adjacency : t -> direction -> vertex -> (vertex * edge_type array) array
(** Neighbours with their multi-edge type sets, sorted by neighbour id,
    materialized from the packed form (fresh arrays on every call).
    [adjacency g Out v] lists [v'] with [v → v']; [In] lists [v'] with
    [v' → v]. *)

val edge_types_between : t -> vertex -> vertex -> edge_type array
(** [edge_types_between g v v'] is the multi-edge [v → v'] ([||] when
    absent). *)

val has_edge : t -> vertex -> edge_type -> vertex -> bool
(** [has_edge g v t v'] — does the atomic edge [v →t v'] exist?
    Allocation-free. *)

val degree : t -> vertex -> int
(** Number of distinct neighbour vertices, irrespective of edge
    direction or multi-edge cardinality — the degree used by the paper's
    core/satellite decomposition (a vertex linked to one neighbour by
    edges in both directions still has degree 1). *)

val fold_edges : (vertex -> edge_type array -> vertex -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over all multi-edges [(v, types, v')] in [Out] orientation. *)

(** {1 Snapshot decomposition}

    The out-adjacency plus the per-vertex attribute sets determine the
    whole structure; the in-adjacency and all counts are derived.
    [export]/[import] expose exactly that minimal representation for the
    index-snapshot codec. *)

val export : t -> (vertex * edge_type array) array array * attribute array array
(** [(out_adj, attrs)]: element [v] of [out_adj] lists [(v', types)]
    sorted by neighbour; element [v] of [attrs] is the sorted attribute
    set of [v]. Both are materialized fresh from the packed form. *)

val import :
  ?layout:Posting.policy ->
  out_adj:(vertex * edge_type array) array array ->
  attrs:attribute array array ->
  unit ->
  t
(** Rebuild a graph from {!export}ed parts, deriving the in-adjacency
    (deterministically: each in-list sorted by source vertex) and the
    counts; neighbour postings freeze under [layout] (default [Auto]).
    @raise Invalid_argument on malformed input (neighbour out of range,
    unsorted adjacency or type sets, empty multi-edge). *)

(** {1 Delta overlay} *)

val overlay :
  base:t ->
  vertex_count:int ->
  out:(vertex * (vertex * edge_type array) array) list ->
  in_:(vertex * (vertex * edge_type array) array) list ->
  attrs:(vertex * attribute array) list ->
  unit ->
  t
(** [overlay ~base ~vertex_count ~out ~in_ ~attrs ()] layers a write
    delta over the packed [base]. [vertex_count >= vertex_count base];
    ids in [base.vertex_count .. vertex_count-1] are new vertices. [out]
    / [in_] give the {e fully merged} post-delta adjacency of every
    touched vertex in that direction (same shape and ordering rules as
    {!import}); [attrs] the fully merged attribute set of every vertex
    whose attributes changed. The two directions must mirror each other
    — the caller (the delta compiler) is responsible for consistency.
    Counts are recomputed exactly from the patches; the reported
    {!edge_type_count} is an upper bound (a deletion that removes the
    last use of the top edge type does not shrink it). The base is
    shared, never copied or mutated.
    @raise Invalid_argument if [base] is itself an overlay (layers do
    not chain — recompile the full delta instead), or on malformed
    patches. *)

val is_overlay : t -> bool
(** True on graphs built by {!overlay}; packed graphs (from {!Builder},
    {!import}) answer false. *)

(** {1 Accounting} *)

val posting_stats : t -> Posting.stats -> unit
(** Accumulate the per-layout counts and out-of-heap payload bytes of
    all neighbour postings (both directions) into the stats record. *)

val out_of_heap_bytes : t -> int
(** Total [Bigarray]-backed payload bytes of the neighbour postings —
    bytes a reachable-heap walk cannot see. *)

val pp_stats : Format.formatter -> t -> unit
