(** Directed, vertex-attributed multigraph (paper Definition 1).

    A multigraph [G = (V, E, L_V, L_E)]: vertices are dense ints
    [0 .. vertex_count-1]; between an ordered pair [(v, v')] there is at
    most one {e multi-edge}, labelled with a non-empty sorted set of edge
    types; every vertex carries a (possibly empty) sorted set of
    attribute ids. The structure is immutable once built — construct it
    with {!Builder}. *)

type vertex = int
type edge_type = int
type attribute = int

type t

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type t

  val create : ?vertex_hint:int -> unit -> t

  val add_vertex : t -> vertex -> unit
  (** Ensure [vertex] exists (vertices are also created implicitly by
      {!add_edge} / {!add_attribute}). *)

  val add_edge : t -> vertex -> edge_type -> vertex -> unit
  (** [add_edge b v t v'] adds type [t] to the multi-edge [v → v'].
      Duplicate insertions are idempotent. *)

  val add_attribute : t -> vertex -> attribute -> unit

  val build : t -> graph
  (** Freeze into an immutable multigraph. The builder must not be used
      afterwards. *)
end

(** {1 Accessors} *)

type direction = Out | In
(** [Out] = edges leaving the vertex (paper's negative '−'); [In] =
    edges arriving at it (paper's positive '+'). *)

val vertex_count : t -> int
val edge_type_count : t -> int
(** 1 + the largest edge type id present (0 for an edgeless graph). *)

val multi_edge_count : t -> int
(** Number of ordered vertex pairs connected by a multi-edge — the
    paper's |E|. *)

val triple_edge_count : t -> int
(** Total number of (v, t, v') atomic edges — one per RDF triple with an
    IRI object. *)

val attributes : t -> vertex -> attribute array
(** Sorted attribute ids of a vertex. *)

val adjacency : t -> direction -> vertex -> (vertex * edge_type array) array
(** Neighbours with their multi-edge type sets, sorted by neighbour id.
    [adjacency g Out v] lists [v'] with [v → v']; [In] lists [v'] with
    [v' → v]. *)

val edge_types_between : t -> vertex -> vertex -> edge_type array
(** [edge_types_between g v v'] is the multi-edge [v → v'] ([||] when
    absent). *)

val has_edge : t -> vertex -> edge_type -> vertex -> bool
(** [has_edge g v t v'] — does the atomic edge [v →t v'] exist? *)

val degree : t -> vertex -> int
(** Number of distinct neighbour vertices, irrespective of edge
    direction or multi-edge cardinality — the degree used by the paper's
    core/satellite decomposition (a vertex linked to one neighbour by
    edges in both directions still has degree 1). *)

val fold_edges : (vertex -> edge_type array -> vertex -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over all multi-edges [(v, types, v')] in [Out] orientation. *)

(** {1 Snapshot decomposition}

    The out-adjacency plus the per-vertex attribute sets determine the
    whole structure; the in-adjacency and all counts are derived.
    [export]/[import] expose exactly that minimal representation for the
    index-snapshot codec. *)

val export : t -> (vertex * edge_type array) array array * attribute array array
(** [(out_adj, attrs)]: element [v] of [out_adj] lists [(v', types)]
    sorted by neighbour; element [v] of [attrs] is the sorted attribute
    set of [v]. The returned arrays alias the graph's internals — treat
    them as read-only. *)

val import :
  out_adj:(vertex * edge_type array) array array ->
  attrs:attribute array array ->
  t
(** Rebuild a graph from {!export}ed parts, deriving the in-adjacency
    (deterministically: each in-list sorted by source vertex) and the
    counts. @raise Invalid_argument on malformed input (neighbour out of
    range, unsorted adjacency or type sets, empty multi-edge). *)

val pp_stats : Format.formatter -> t -> unit
