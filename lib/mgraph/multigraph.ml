type vertex = int
type edge_type = int
type attribute = int
type direction = Out | In

type t = {
  vertex_count : int;
  edge_type_count : int;
  out_adj : (vertex * edge_type array) array array;
  in_adj : (vertex * edge_type array) array array;
  attrs : attribute array array;
  multi_edge_count : int;
  triple_edge_count : int;
}

module Int_pair = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = Hashtbl.hash (a, b)
end

module Pair_tbl = Hashtbl.Make (Int_pair)

module Builder = struct
  type t = {
    edges : int list Pair_tbl.t;  (* (v, v') -> reversed type list *)
    vertex_attrs : (int, int list) Hashtbl.t;
    mutable max_vertex : int;  (* -1 when no vertex yet *)
  }

  let create ?(vertex_hint = 256) () =
    {
      edges = Pair_tbl.create (4 * vertex_hint);
      vertex_attrs = Hashtbl.create vertex_hint;
      max_vertex = -1;
    }

  let add_vertex b v =
    if v < 0 then invalid_arg "Builder.add_vertex: negative vertex id";
    if v > b.max_vertex then b.max_vertex <- v

  let add_edge b v ty v' =
    if ty < 0 then invalid_arg "Builder.add_edge: negative edge type";
    add_vertex b v;
    add_vertex b v';
    let key = (v, v') in
    let existing = try Pair_tbl.find b.edges key with Not_found -> [] in
    if not (List.mem ty existing) then
      Pair_tbl.replace b.edges key (ty :: existing)

  let add_attribute b v attr =
    if attr < 0 then invalid_arg "Builder.add_attribute: negative attribute";
    add_vertex b v;
    let existing = try Hashtbl.find b.vertex_attrs v with Not_found -> [] in
    if not (List.mem attr existing) then
      Hashtbl.replace b.vertex_attrs v (attr :: existing)

  let build b =
    let n = b.max_vertex + 1 in
    let out_lists = Array.make n [] and in_lists = Array.make n [] in
    let edge_type_count = ref 0 in
    let multi_edge_count = ref 0 in
    let triple_edge_count = ref 0 in
    Pair_tbl.iter
      (fun (v, v') tys ->
        let types = Sorted_ints.of_list tys in
        incr multi_edge_count;
        triple_edge_count := !triple_edge_count + Array.length types;
        Array.iter
          (fun ty -> if ty + 1 > !edge_type_count then edge_type_count := ty + 1)
          types;
        out_lists.(v) <- (v', types) :: out_lists.(v);
        in_lists.(v') <- (v, types) :: in_lists.(v'))
      b.edges;
    let sort_adj lst =
      let a = Array.of_list lst in
      Array.sort (fun (x, _) (y, _) -> Int.compare x y) a;
      a
    in
    let attrs =
      Array.init n (fun v ->
          match Hashtbl.find_opt b.vertex_attrs v with
          | None -> [||]
          | Some l -> Sorted_ints.of_list l)
    in
    {
      vertex_count = n;
      edge_type_count = !edge_type_count;
      out_adj = Array.map sort_adj out_lists;
      in_adj = Array.map sort_adj in_lists;
      attrs;
      multi_edge_count = !multi_edge_count;
      triple_edge_count = !triple_edge_count;
    }
end

(* The out-adjacency (plus per-vertex attributes) determines the whole
   structure: counts and the in-adjacency are derived. [import] rebuilds
   them exactly as [Builder.build] would, so a round-trip through
   [export]/[import] is structurally identical to the original. *)
let export g = (g.out_adj, g.attrs)

let import ~out_adj ~attrs =
  let n = Array.length out_adj in
  if Array.length attrs <> n then
    invalid_arg "Multigraph.import: attrs/adjacency length mismatch";
  let edge_type_count = ref 0 in
  let multi_edge_count = ref 0 in
  let triple_edge_count = ref 0 in
  let in_degree = Array.make n 0 in
  Array.iteri
    (fun v adj ->
      let last = ref (-1) in
      Array.iter
        (fun (v', types) ->
          if v' < 0 || v' >= n then
            invalid_arg
              (Printf.sprintf "Multigraph.import: neighbour %d out of range" v');
          if v' <= !last then
            invalid_arg "Multigraph.import: adjacency not sorted by neighbour";
          last := v';
          if Array.length types = 0 then
            invalid_arg "Multigraph.import: empty multi-edge";
          if not (Sorted_ints.is_sorted types) || types.(0) < 0 then
            invalid_arg "Multigraph.import: multi-edge types not sorted";
          incr multi_edge_count;
          triple_edge_count := !triple_edge_count + Array.length types;
          let top = types.(Array.length types - 1) in
          if top + 1 > !edge_type_count then edge_type_count := top + 1;
          in_degree.(v') <- in_degree.(v') + 1)
        adj;
      ignore v)
    out_adj;
  Array.iter
    (fun a ->
      if not (Sorted_ints.is_sorted a) || (Array.length a > 0 && a.(0) < 0) then
        invalid_arg "Multigraph.import: attribute set not sorted")
    attrs;
  (* Fill the in-adjacency by scanning sources in increasing order, so
     every per-vertex list comes out sorted without re-sorting. *)
  let in_adj = Array.init n (fun v -> Array.make in_degree.(v) (0, [||])) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun v adj ->
      Array.iter
        (fun (v', types) ->
          in_adj.(v').(fill.(v')) <- (v, types);
          fill.(v') <- fill.(v') + 1)
        adj)
    out_adj;
  {
    vertex_count = n;
    edge_type_count = !edge_type_count;
    out_adj;
    in_adj;
    attrs;
    multi_edge_count = !multi_edge_count;
    triple_edge_count = !triple_edge_count;
  }

let vertex_count g = g.vertex_count
let edge_type_count g = g.edge_type_count
let multi_edge_count g = g.multi_edge_count
let triple_edge_count g = g.triple_edge_count

let check_vertex g v =
  if v < 0 || v >= g.vertex_count then
    invalid_arg (Printf.sprintf "Multigraph: vertex %d out of range" v)

let attributes g v =
  check_vertex g v;
  g.attrs.(v)

let adjacency g dir v =
  check_vertex g v;
  match dir with Out -> g.out_adj.(v) | In -> g.in_adj.(v)

let edge_types_between g v v' =
  check_vertex g v;
  check_vertex g v';
  let adj = g.out_adj.(v) in
  let rec search lo hi =
    if lo >= hi then [||]
    else
      let mid = (lo + hi) / 2 in
      let u, tys = adj.(mid) in
      if u = v' then tys else if u < v' then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length adj)

let has_edge g v ty v' = Sorted_ints.mem (edge_types_between g v v') ty

let degree g v =
  check_vertex g v;
  (* Count distinct neighbours across both adjacency lists (each is
     sorted by neighbour id), merging to avoid double counting. *)
  let a = g.out_adj.(v) and b = g.in_adj.(v) in
  let na = Array.length a and nb = Array.length b in
  let rec loop i j n =
    if i >= na && j >= nb then n
    else if j >= nb then n + (na - i)
    else if i >= na then n + (nb - j)
    else
      let x = fst a.(i) and y = fst b.(j) in
      if x = y then loop (i + 1) (j + 1) (n + 1)
      else if x < y then loop (i + 1) j (n + 1)
      else loop i (j + 1) (n + 1)
  in
  loop 0 0 0

let fold_edges f g init =
  let acc = ref init in
  Array.iteri
    (fun v adj -> Array.iter (fun (v', tys) -> acc := f v tys v' !acc) adj)
    g.out_adj;
  !acc

let pp_stats ppf g =
  Format.fprintf ppf
    "@[<v>vertices: %d@,multi-edges: %d@,atomic edges: %d@,edge types: %d@]"
    g.vertex_count g.multi_edge_count g.triple_edge_count g.edge_type_count
