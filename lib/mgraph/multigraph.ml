type vertex = int
type edge_type = int
type attribute = int
type direction = Out | In

(* One direction of the adjacency, packed. Neighbour lists are frozen
   {!Posting} lists (one per vertex, empty lists sharing [Posting.empty]);
   the multi-edge type sets live in flat pools instead of one heap block
   per edge. Edge [i] of vertex [v] (in neighbour order) has global index
   [voffs.(v) + i]; its cell in [ty_pool] is the edge type when the
   multi-edge is a singleton — the overwhelmingly common case in RDF —
   or [-(off + 1)] pointing at a length-prefixed type set in
   [over_pool]. *)
type half = {
  nbrs : Posting.t array;
  voffs : int array;  (* length n+1, cumulative degrees *)
  ty_pool : int array;  (* one cell per multi-edge *)
  over_pool : int array;  (* len-prefixed sets of the non-singleton edges *)
}

type packed = {
  vertex_count : int;
  edge_type_count : int;
  out_h : half;
  in_h : half;
  aoffs : int array;  (* length n+1: attribute range of vertex v *)
  apool : int array;  (* concatenated sorted attribute sets *)
  multi_edge_count : int;
  triple_edge_count : int;
}

(* A touched vertex's full merged adjacency in one direction: the tuple
   view plus the neighbour posting wrapped over it (Raw — overlay patches
   are small and short-lived; compaction re-freezes under the layout
   policy). *)
type patch = { padj : (int * int array) array; pnbrs : Posting.t }

(* A delta overlay over a frozen packed base: hashtables hold the fully
   merged state of every vertex the write store touched; untouched
   vertices fall through to the base. The base is never mutated, so an
   overlay and its base can serve readers concurrently. *)
type overlay = {
  base : packed;
  o_vertex_count : int;  (* >= base.vertex_count; tail ids are new *)
  o_edge_type_count : int;
  o_out : (int, patch) Hashtbl.t;
  o_in : (int, patch) Hashtbl.t;
  o_attrs : (int, int array) Hashtbl.t;
  o_multi_edge_count : int;
  o_triple_edge_count : int;
}

type t = Packed of packed | Overlay of overlay

module Int_pair = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = Hashtbl.hash (a, b)
end

module Pair_tbl = Hashtbl.Make (Int_pair)

(* ------------------------------------------------------------------ *)
(* Packing                                                             *)
(* ------------------------------------------------------------------ *)

let pack_half ~policy adj =
  let n = Array.length adj in
  let voffs = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    voffs.(v + 1) <- voffs.(v) + Array.length adj.(v)
  done;
  let m = voffs.(n) in
  let ty_pool = Array.make m 0 in
  let over_len = ref 0 in
  let over_cells = ref [] in
  let nbrs =
    Array.mapi
      (fun v edges ->
        let base = voffs.(v) in
        Array.iteri
          (fun i (_, types) ->
            if Array.length types = 1 then ty_pool.(base + i) <- types.(0)
            else begin
              ty_pool.(base + i) <- -(!over_len + 1);
              over_cells := types :: !over_cells;
              over_len := !over_len + 1 + Array.length types
            end)
          edges;
        if Array.length edges = 0 then Posting.empty
        else Posting.of_array ~policy (Array.map fst edges))
      adj
  in
  let over_pool = Array.make !over_len 0 in
  let pos = ref !over_len in
  (* Cells were collected in reverse edge order; writing back-to-front
     restores pool offsets matching the [-(off+1)] cells. *)
  List.iter
    (fun types ->
      let k = Array.length types in
      pos := !pos - (1 + k);
      over_pool.(!pos) <- k;
      Array.blit types 0 over_pool (!pos + 1) k)
    !over_cells;
  { nbrs; voffs; ty_pool; over_pool }

let types_at h e =
  let c = h.ty_pool.(e) in
  if c >= 0 then [| c |]
  else
    let off = -c - 1 in
    Array.sub h.over_pool (off + 1) h.over_pool.(off)

(* Pack from the tuple form (out-adjacency + per-vertex attributes);
   the in-adjacency and counts are derived. Inputs are assumed valid —
   [Builder.build] constructs them, [import] validates first. *)
let pack ~policy ~edge_type_count ~multi_edge_count ~triple_edge_count out_adj
    attrs =
  let n = Array.length out_adj in
  let in_degree = Array.make n 0 in
  Array.iter
    (Array.iter (fun (v', _) -> in_degree.(v') <- in_degree.(v') + 1))
    out_adj;
  (* Scanning sources in increasing order keeps every per-target list
     sorted without re-sorting. *)
  let in_adj = Array.init n (fun v -> Array.make in_degree.(v) (0, [||])) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun v adj ->
      Array.iter
        (fun (v', types) ->
          in_adj.(v').(fill.(v')) <- (v, types);
          fill.(v') <- fill.(v') + 1)
        adj)
    out_adj;
  let aoffs = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    aoffs.(v + 1) <- aoffs.(v) + Array.length attrs.(v)
  done;
  let apool = Array.make aoffs.(n) 0 in
  Array.iteri (fun v a -> Array.blit a 0 apool aoffs.(v) (Array.length a)) attrs;
  {
    vertex_count = n;
    edge_type_count;
    out_h = pack_half ~policy out_adj;
    in_h = pack_half ~policy in_adj;
    aoffs;
    apool;
    multi_edge_count;
    triple_edge_count;
  }

module Builder = struct
  type t = {
    edges : int list Pair_tbl.t;  (* (v, v') -> reversed type list *)
    vertex_attrs : (int, int list) Hashtbl.t;
    mutable max_vertex : int;  (* -1 when no vertex yet *)
  }

  let create ?(vertex_hint = 256) () =
    {
      edges = Pair_tbl.create (4 * vertex_hint);
      vertex_attrs = Hashtbl.create vertex_hint;
      max_vertex = -1;
    }

  let add_vertex b v =
    if v < 0 then invalid_arg "Builder.add_vertex: negative vertex id";
    if v > b.max_vertex then b.max_vertex <- v

  let add_edge b v ty v' =
    if ty < 0 then invalid_arg "Builder.add_edge: negative edge type";
    add_vertex b v;
    add_vertex b v';
    let key = (v, v') in
    let existing = try Pair_tbl.find b.edges key with Not_found -> [] in
    if not (List.mem ty existing) then
      Pair_tbl.replace b.edges key (ty :: existing)

  let add_attribute b v attr =
    if attr < 0 then invalid_arg "Builder.add_attribute: negative attribute";
    add_vertex b v;
    let existing = try Hashtbl.find b.vertex_attrs v with Not_found -> [] in
    if not (List.mem attr existing) then
      Hashtbl.replace b.vertex_attrs v (attr :: existing)

  let build ?(layout = Posting.Auto) b =
    let n = b.max_vertex + 1 in
    let out_lists = Array.make n [] in
    let edge_type_count = ref 0 in
    let multi_edge_count = ref 0 in
    let triple_edge_count = ref 0 in
    Pair_tbl.iter
      (fun (v, v') tys ->
        let types = Sorted_ints.of_list tys in
        incr multi_edge_count;
        triple_edge_count := !triple_edge_count + Array.length types;
        Array.iter
          (fun ty -> if ty + 1 > !edge_type_count then edge_type_count := ty + 1)
          types;
        out_lists.(v) <- (v', types) :: out_lists.(v))
      b.edges;
    let sort_adj lst =
      let a = Array.of_list lst in
      Array.sort (fun (x, _) (y, _) -> Int.compare x y) a;
      a
    in
    let attrs =
      Array.init n (fun v ->
          match Hashtbl.find_opt b.vertex_attrs v with
          | None -> [||]
          | Some l -> Sorted_ints.of_list l)
    in
    Packed
      (pack ~policy:layout ~edge_type_count:!edge_type_count
         ~multi_edge_count:!multi_edge_count
         ~triple_edge_count:!triple_edge_count
         (Array.map sort_adj out_lists)
         attrs)
end

let vertex_count = function
  | Packed g -> g.vertex_count
  | Overlay o -> o.o_vertex_count

let edge_type_count = function
  | Packed g -> g.edge_type_count
  | Overlay o -> o.o_edge_type_count

let multi_edge_count = function
  | Packed g -> g.multi_edge_count
  | Overlay o -> o.o_multi_edge_count

let triple_edge_count = function
  | Packed g -> g.triple_edge_count
  | Overlay o -> o.o_triple_edge_count

let check_vertex g v =
  if v < 0 || v >= vertex_count g then
    invalid_arg (Printf.sprintf "Multigraph: vertex %d out of range" v)

let packed_attributes g v =
  Array.sub g.apool g.aoffs.(v) (g.aoffs.(v + 1) - g.aoffs.(v))

let attributes g v =
  check_vertex g v;
  match g with
  | Packed g -> packed_attributes g v
  | Overlay o -> (
      match Hashtbl.find_opt o.o_attrs v with
      | Some a -> Array.copy a
      | None ->
          if v < o.base.vertex_count then packed_attributes o.base v else [||])

let half g = function Out -> g.out_h | In -> g.in_h
let side o = function Out -> o.o_out | In -> o.o_in

let neighbours g dir v =
  check_vertex g v;
  match g with
  | Packed g -> (half g dir).nbrs.(v)
  | Overlay o -> (
      match Hashtbl.find_opt (side o dir) v with
      | Some p -> p.pnbrs
      | None ->
          if v < o.base.vertex_count then (half o.base dir).nbrs.(v)
          else Posting.empty)

let packed_adjacency g dir v =
  let h = half g dir in
  let base = h.voffs.(v) in
  let nb = Posting.to_array h.nbrs.(v) in
  Array.mapi (fun i v' -> (v', types_at h (base + i))) nb

let adjacency g dir v =
  check_vertex g v;
  match g with
  | Packed g -> packed_adjacency g dir v
  | Overlay o -> (
      match Hashtbl.find_opt (side o dir) v with
      | Some p -> Array.map (fun (v', tys) -> (v', Array.copy tys)) p.padj
      | None ->
          if v < o.base.vertex_count then packed_adjacency o.base dir v
          else [||])

let packed_edge_types g v v' =
  match Posting.index_of g.out_h.nbrs.(v) v' with
  | None -> [||]
  | Some i -> types_at g.out_h (g.out_h.voffs.(v) + i)

let edge_types_between g v v' =
  check_vertex g v;
  check_vertex g v';
  match g with
  | Packed g -> packed_edge_types g v v'
  | Overlay o -> (
      match Hashtbl.find_opt o.o_out v with
      | Some p -> (
          match Posting.index_of p.pnbrs v' with
          | None -> [||]
          | Some i -> Array.copy (snd p.padj.(i)))
      | None ->
          if v < o.base.vertex_count && v' < o.base.vertex_count then
            packed_edge_types o.base v v'
          else [||])

let has_edge g v ty v' =
  check_vertex g v;
  check_vertex g v';
  match g with
  | Packed g -> (
      match Posting.index_of g.out_h.nbrs.(v) v' with
      | None -> false
      | Some i -> (
          let c = g.out_h.ty_pool.(g.out_h.voffs.(v) + i) in
          if c >= 0 then c = ty
          else
            let off = -c - 1 in
            let k = g.out_h.over_pool.(off) in
            let rec probe j =
              j <= k && (g.out_h.over_pool.(off + j) = ty || probe (j + 1))
            in
            probe 1))
  | Overlay o -> (
      match Hashtbl.find_opt o.o_out v with
      | Some p -> (
          match Posting.index_of p.pnbrs v' with
          | None -> false
          | Some i -> Sorted_ints.mem (snd p.padj.(i)) ty)
      | None ->
          v < o.base.vertex_count
          && v' < o.base.vertex_count
          && Sorted_ints.mem (packed_edge_types o.base v v') ty)

let degree g v =
  check_vertex g v;
  (* Count distinct neighbours across both directions (each posting is
     sorted), merging to avoid double counting. *)
  let a = Posting.to_array (neighbours g Out v)
  and b = Posting.to_array (neighbours g In v) in
  let na = Array.length a and nb = Array.length b in
  let rec loop i j n =
    if i >= na && j >= nb then n
    else if j >= nb then n + (na - i)
    else if i >= na then n + (nb - j)
    else
      let x = a.(i) and y = b.(j) in
      if x = y then loop (i + 1) (j + 1) (n + 1)
      else if x < y then loop (i + 1) j (n + 1)
      else loop i (j + 1) (n + 1)
  in
  loop 0 0 0

let fold_edges f g init =
  let acc = ref init in
  (match g with
  | Packed g ->
      let h = g.out_h in
      for v = 0 to g.vertex_count - 1 do
        let base = h.voffs.(v) in
        Posting.iteri
          (fun i v' -> acc := f v (types_at h (base + i)) v' !acc)
          h.nbrs.(v)
      done
  | Overlay o ->
      let h = o.base.out_h in
      for v = 0 to o.o_vertex_count - 1 do
        match Hashtbl.find_opt o.o_out v with
        | Some p ->
            Array.iter (fun (v', tys) -> acc := f v tys v' !acc) p.padj
        | None ->
            if v < o.base.vertex_count then begin
              let base = h.voffs.(v) in
              Posting.iteri
                (fun i v' -> acc := f v (types_at h (base + i)) v' !acc)
                h.nbrs.(v)
            end
      done);
  !acc

(* The out-adjacency (plus per-vertex attributes) determines the whole
   structure: counts and the in-adjacency are derived. [import] rebuilds
   them exactly as [Builder.build] would, so a round-trip through
   [export]/[import] is structurally identical to the original. *)
let export g =
  let n = vertex_count g in
  ( Array.init n (fun v -> adjacency g Out v),
    Array.init n (fun v -> attributes g v) )

let import ?(layout = Posting.Auto) ~out_adj ~attrs () =
  let n = Array.length out_adj in
  if Array.length attrs <> n then
    invalid_arg "Multigraph.import: attrs/adjacency length mismatch";
  let edge_type_count = ref 0 in
  let multi_edge_count = ref 0 in
  let triple_edge_count = ref 0 in
  Array.iter
    (fun adj ->
      let last = ref (-1) in
      Array.iter
        (fun (v', types) ->
          if v' < 0 || v' >= n then
            invalid_arg
              (Printf.sprintf "Multigraph.import: neighbour %d out of range" v');
          if v' <= !last then
            invalid_arg "Multigraph.import: adjacency not sorted by neighbour";
          last := v';
          if Array.length types = 0 then
            invalid_arg "Multigraph.import: empty multi-edge";
          if not (Sorted_ints.is_sorted types) || types.(0) < 0 then
            invalid_arg "Multigraph.import: multi-edge types not sorted";
          incr multi_edge_count;
          triple_edge_count := !triple_edge_count + Array.length types;
          let top = types.(Array.length types - 1) in
          if top + 1 > !edge_type_count then edge_type_count := top + 1)
        adj)
    out_adj;
  Array.iter
    (fun a ->
      if not (Sorted_ints.is_sorted a) || (Array.length a > 0 && a.(0) < 0) then
        invalid_arg "Multigraph.import: attribute set not sorted")
    attrs;
  Packed
    (pack ~policy:layout ~edge_type_count:!edge_type_count
       ~multi_edge_count:!multi_edge_count
       ~triple_edge_count:!triple_edge_count out_adj attrs)

let posting_stats g s =
  match g with
  | Packed g ->
      Array.iter (Posting.count_into s) g.out_h.nbrs;
      Array.iter (Posting.count_into s) g.in_h.nbrs
  | Overlay _ ->
      (* Count every vertex's effective posting, patched or base. *)
      let n = vertex_count g in
      for v = 0 to n - 1 do
        Posting.count_into s (neighbours g Out v);
        Posting.count_into s (neighbours g In v)
      done

let out_of_heap_bytes g =
  let total = ref 0 in
  (match g with
  | Packed g ->
      Array.iter
        (fun p -> total := !total + Posting.out_of_heap_bytes p)
        g.out_h.nbrs;
      Array.iter
        (fun p -> total := !total + Posting.out_of_heap_bytes p)
        g.in_h.nbrs
  | Overlay _ ->
      let n = vertex_count g in
      for v = 0 to n - 1 do
        total :=
          !total
          + Posting.out_of_heap_bytes (neighbours g Out v)
          + Posting.out_of_heap_bytes (neighbours g In v)
      done);
  !total

let pp_stats ppf g =
  Format.fprintf ppf
    "@[<v>vertices: %d@,multi-edges: %d@,atomic edges: %d@,edge types: %d@]"
    (vertex_count g) (multi_edge_count g) (triple_edge_count g)
    (edge_type_count g)

(* ------------------------------------------------------------------ *)
(* Delta overlay                                                       *)
(* ------------------------------------------------------------------ *)

let is_overlay = function Packed _ -> false | Overlay _ -> true

let validate_patch_adj ~n adj =
  let last = ref (-1) in
  Array.iter
    (fun (v', types) ->
      if v' < 0 || v' >= n then
        invalid_arg
          (Printf.sprintf "Multigraph.overlay: neighbour %d out of range" v');
      if v' <= !last then
        invalid_arg "Multigraph.overlay: patch adjacency not sorted";
      last := v';
      if Array.length types = 0 then
        invalid_arg "Multigraph.overlay: empty multi-edge";
      if not (Sorted_ints.is_sorted types) || types.(0) < 0 then
        invalid_arg "Multigraph.overlay: multi-edge types not sorted")
    adj

(* Base contribution of vertex [v] to the pair / atomic edge counts. *)
let packed_out_counts b v =
  if v >= b.vertex_count then (0, 0)
  else begin
    let lo = b.out_h.voffs.(v) and hi = b.out_h.voffs.(v + 1) in
    let triples = ref 0 in
    for e = lo to hi - 1 do
      let c = b.out_h.ty_pool.(e) in
      triples := !triples + if c >= 0 then 1 else b.out_h.over_pool.(-c - 1)
    done;
    (hi - lo, !triples)
  end

let overlay ~base ~vertex_count:n ~out ~in_ ~attrs () =
  match base with
  | Overlay _ ->
      (* One layer only: [Live_engine] recompiles the patch from the full
         cumulative delta on every publish, so chaining never arises. *)
      invalid_arg "Multigraph.overlay: base must be a packed graph"
  | Packed b ->
      if n < b.vertex_count then
        invalid_arg "Multigraph.overlay: vertex_count below base";
      let ety = ref b.edge_type_count in
      let multi = ref b.multi_edge_count in
      let triples = ref b.triple_edge_count in
      let mk_patch adj =
        validate_patch_adj ~n adj;
        Array.iter
          (fun (_, types) ->
            let top = types.(Array.length types - 1) in
            if top + 1 > !ety then ety := top + 1)
          adj;
        { padj = adj; pnbrs = Posting.raw (Array.map fst adj) }
      in
      let table entries =
        let t = Hashtbl.create (2 * List.length entries + 1) in
        List.iter
          (fun (v, adj) ->
            if v < 0 || v >= n then
              invalid_arg "Multigraph.overlay: patched vertex out of range";
            if Hashtbl.mem t v then
              invalid_arg "Multigraph.overlay: duplicate patched vertex";
            Hashtbl.replace t v (mk_patch adj))
          entries;
        t
      in
      let o_out = table out in
      let o_in = table in_ in
      (* Only the out side contributes to the counts (the in side mirrors
         it); replace each touched vertex's base contribution with its
         patched one. *)
      Hashtbl.iter
        (fun v p ->
          let base_multi, base_triples = packed_out_counts b v in
          multi := !multi - base_multi + Array.length p.padj;
          let patch_triples =
            Array.fold_left
              (fun acc (_, tys) -> acc + Array.length tys)
              0 p.padj
          in
          triples := !triples - base_triples + patch_triples)
        o_out;
      let o_attrs = Hashtbl.create (2 * List.length attrs + 1) in
      List.iter
        (fun (v, a) ->
          if v < 0 || v >= n then
            invalid_arg "Multigraph.overlay: attribute vertex out of range";
          if not (Sorted_ints.is_sorted a) || (Array.length a > 0 && a.(0) < 0)
          then invalid_arg "Multigraph.overlay: attribute set not sorted";
          if Hashtbl.mem o_attrs v then
            invalid_arg "Multigraph.overlay: duplicate attribute vertex";
          Hashtbl.replace o_attrs v (Array.copy a))
        attrs;
      Overlay
        {
          base = b;
          o_vertex_count = n;
          o_edge_type_count = !ety;
          o_out;
          o_in;
          o_attrs;
          o_multi_edge_count = !multi;
          o_triple_edge_count = !triples;
        }
