let of_list l =
  let a = Array.of_list l in
  Array.sort Int.compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    (* Compact duplicates in place, then truncate. *)
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!k - 1) then begin
        a.(!k) <- a.(i);
        incr k
      end
    done;
    if !k = n then a else Array.sub a 0 !k
  end

let is_sorted a =
  let n = Array.length a in
  let rec loop i = i >= n || (a.(i - 1) < a.(i) && loop (i + 1)) in
  loop 1

let mem a x =
  let rec loop lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true
      else if a.(mid) < x then loop (mid + 1) hi
      else loop lo mid
  in
  loop 0 (Array.length a)

(* Smallest index [j >= lo] with [b.(j) >= x] ([length b] if none):
   exponential (galloping) expansion from [lo], then binary search in the
   bracketed window. O(log d) where d is the distance advanced, so a
   sequence of searches with increasing [x] costs O(n_small log (n_large
   / n_small)) overall instead of O(n_large). *)
let lower_bound_from b lo x =
  let nb = Array.length b in
  if lo >= nb || b.(lo) >= x then lo
  else begin
    (* Invariant: b.(last) < x. *)
    let last = ref lo and step = ref 1 in
    while !last + !step < nb && b.(!last + !step) < x do
      last := !last + !step;
      step := !step * 2
    done;
    let lo' = ref (!last + 1) and hi = ref (min nb (!last + !step)) in
    while !lo' < !hi do
      let mid = (!lo' + !hi) / 2 in
      if b.(mid) < x then lo' := mid + 1 else hi := mid
    done;
    !lo'
  end

(* --- kernel selection thresholds ------------------------------------ *)

(* Gallop when one operand is at least this many times longer than the
   other: the small side drives and the large side is skipped over. *)
let gallop_ratio = 16

(* The bitset kernel needs both sides big enough to amortize building
   the bit table, and the table's span dense enough that it fits in
   cache-friendly space. *)
let bitset_min = 1024
let bitset_max_span_per_elem = 16

(* --- intersection kernels ------------------------------------------- *)

let inter_merge a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let rec loop i j k =
    if i >= na || j >= nb then k
    else if a.(i) = b.(j) then begin
      out.(k) <- a.(i);
      loop (i + 1) (j + 1) (k + 1)
    end
    else if a.(i) < b.(j) then loop (i + 1) j k
    else loop i (j + 1) k
  in
  let k = loop 0 0 0 in
  (* Aliasing return: when one operand is contained in the other, hand
     it back unchanged instead of copying (arrays are immutable by
     convention throughout). *)
  if k = na then a else if k = nb then b else Array.sub out 0 k

let inter_gallop a b =
  (* The smaller array drives; each element gallops forward in the
     larger one. *)
  let small, large = if Array.length a <= Array.length b then (a, b) else (b, a) in
  let ns = Array.length small and nl = Array.length large in
  let out = Array.make ns 0 in
  let j = ref 0 and k = ref 0 in
  (try
     for i = 0 to ns - 1 do
       let x = small.(i) in
       let j' = lower_bound_from large !j x in
       if j' >= nl then raise Exit;
       if large.(j') = x then begin
         out.(!k) <- x;
         incr k;
         j := j' + 1
       end
       else j := j'
     done
   with Exit -> ());
  if !k = ns then small
  else if !k = nl then large
  else Array.sub out 0 !k

let inter_bitset a b =
  let small, large = if Array.length a <= Array.length b then (a, b) else (b, a) in
  let ns = Array.length small in
  if ns = 0 then [||]
  else begin
    let lo = small.(0) and hi = small.(ns - 1) in
    (* 32-bit words: bit indexes stay clear of OCaml's 63-bit int. *)
    let words = Array.make (((hi - lo) lsr 5) + 1) 0 in
    Array.iter
      (fun x ->
        let d = x - lo in
        words.(d lsr 5) <- words.(d lsr 5) lor (1 lsl (d land 31)))
      small;
    (* Only the span [lo, hi] of the larger side can intersect. *)
    let start = lower_bound_from large 0 lo in
    let stop = lower_bound_from large start (hi + 1) in
    let out = Array.make (min ns (stop - start)) 0 in
    let k = ref 0 in
    for j = start to stop - 1 do
      let d = large.(j) - lo in
      if words.(d lsr 5) land (1 lsl (d land 31)) <> 0 then begin
        out.(!k) <- large.(j);
        incr k
      end
    done;
    if !k = ns then small
    else if !k = Array.length large then large
    else Array.sub out 0 !k
  end

let inter a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then [||]
  else
    let ns = min na nb and nl = max na nb in
    if ns * gallop_ratio <= nl then inter_gallop a b
    else if ns >= bitset_min then begin
      let small = if na <= nb then a else b in
      let span = small.(ns - 1) - small.(0) + 1 in
      if span <= ns * bitset_max_span_per_elem then inter_bitset a b
      else inter_merge a b
    end
    else inter_merge a b

(* --- the rest of the algebra ---------------------------------------- *)

let subset a b =
  let na = Array.length a and nb = Array.length b in
  if na > nb then false
  else if na * gallop_ratio <= nb then begin
    (* Skewed: gallop instead of walking all of [b]. *)
    let rec loop i j =
      if i >= na then true
      else
        let j' = lower_bound_from b j a.(i) in
        if j' >= nb || b.(j') <> a.(i) then false else loop (i + 1) (j' + 1)
    in
    loop 0 0
  end
  else
    let rec loop i j =
      if i >= na then true
      else if j >= nb then false
      else if a.(i) = b.(j) then loop (i + 1) (j + 1)
      else if a.(i) > b.(j) then loop i (j + 1)
      else false
    in
    loop 0 0

let union a b =
  if Array.length a = 0 then b
  else if Array.length b = 0 then a
  else begin
    let na = Array.length a and nb = Array.length b in
    let out = Array.make (na + nb) 0 in
    let rec loop i j k =
      if i >= na && j >= nb then k
      else if j >= nb || (i < na && a.(i) < b.(j)) then begin
        out.(k) <- a.(i);
        loop (i + 1) j (k + 1)
      end
      else if i >= na || a.(i) > b.(j) then begin
        out.(k) <- b.(j);
        loop i (j + 1) (k + 1)
      end
      else begin
        out.(k) <- a.(i);
        loop (i + 1) (j + 1) (k + 1)
      end
    in
    let k = loop 0 0 0 in
    if k = na then a else if k = nb then b else Array.sub out 0 k
  end

let diff a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then a
  else begin
    let out = Array.make na 0 in
    let rec loop i j k =
      if i >= na then k
      else if j >= nb || a.(i) < b.(j) then begin
        out.(k) <- a.(i);
        loop (i + 1) j (k + 1)
      end
      else if a.(i) = b.(j) then loop (i + 1) (j + 1) k
      else loop i (j + 1) k
    in
    let k = loop 0 0 0 in
    if k = na then a else Array.sub out 0 k
  end

let inter_many = function
  | [] -> invalid_arg "Sorted_ints.inter_many: empty list"
  | [ a ] -> a
  | [ a; b ] -> inter a b
  | sets ->
      let arr = Array.of_list sets in
      Array.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) arr;
      let acc = ref arr.(0) in
      (try
         for i = 1 to Array.length arr - 1 do
           if Array.length !acc = 0 then raise Exit;
           acc := inter !acc arr.(i)
         done
       with Exit -> ());
      !acc

let equal a b =
  Array.length a = Array.length b
  &&
  let rec loop i = i >= Array.length a || (a.(i) = b.(i) && loop (i + 1)) in
  loop 0
