(* Compressed posting lists.

   Bit layout note: words are the native 63-bit OCaml int stored in an
   [(int, int_elt, c_layout) Bigarray.Array1.t] — element reads are
   unboxed (the int32/int64 kinds box every access). All bit plumbing
   uses [lsr]/[lsl]/[land], never [asr]: a word with bit 62 set is a
   negative int, which is fine for a bit container but fatal for an
   arithmetic shift. *)

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type bytes_ba =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let wbits = 63

type ef = {
  ef_n : int;  (* element count, >= 1 *)
  ef_max : int;
  ef_lw : int;  (* low-bits width *)
  ef_lows : words;  (* ef_n * ef_lw bits *)
  ef_highs : words;  (* unary upper bits, ef_hbits meaningful *)
  ef_hbits : int;  (* (ef_max lsr ef_lw) + ef_n *)
  ef_samples : int array;
      (* ef_samples.(j) = bit position of zero number (j+1)*zsample,
         1-indexed — the select0 accelerator, rebuilt on decode *)
}

type blocked = {
  b_n : int;  (* element count, >= 1 *)
  b_firsts : int array;  (* per block *)
  b_lasts : int array;
  b_kinds : Bytes.t;  (* '\000' bitset, '\001' varint *)
  b_woff : int array;  (* block count + 1, word offsets into b_words *)
  b_boff : int array;  (* block count + 1, byte offsets into b_bytes *)
  b_words : words;
  b_bytes : bytes_ba;
}

type t = Praw of int array | Pef of ef | Pblocked of blocked

type layout = Raw | Ef | Blocked

type policy = Auto | Force of layout

exception Corrupt of string

let corrupt msg = raise (Corrupt msg)
let zsample = 64
let bsize = 128

(* A block is a bitset when its span costs at most ~2 bytes/element
   (span <= 16 * count bits); sparser blocks delta-varint. The rule is
   a pure function of the content, so encodings are canonical. *)
let block_is_dense ~span ~count = span <= 16 * count

(* ---------- word buffers ---------- *)

let words_make nbits : words =
  let n = (nbits + wbits - 1) / wbits in
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill a 0;
  a

let bytes_ba_of_string s pos len : bytes_ba =
  let a = Bigarray.Array1.create Bigarray.char Bigarray.c_layout len in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set a i (String.unsafe_get s (pos + i))
  done;
  a

let set_bit (a : words) i =
  let q = i / wbits and r = i mod wbits in
  Bigarray.Array1.unsafe_set a q
    (Bigarray.Array1.unsafe_get a q lor (1 lsl r))

let get_bit (a : words) i =
  let q = i / wbits and r = i mod wbits in
  (Bigarray.Array1.unsafe_get a q lsr r) land 1 = 1

let low_mask w = if w = 0 then 0 else (1 lsl w) - 1

(* [v] has [w] significant bits, w <= 62. High bits shifted past bit 62
   are discarded by [lsl], so no masking is needed on the first word. *)
let write_bits (a : words) ~pos ~width v =
  if width > 0 then begin
    let q = pos / wbits and r = pos mod wbits in
    Bigarray.Array1.unsafe_set a q
      (Bigarray.Array1.unsafe_get a q lor (v lsl r));
    if r + width > wbits then
      Bigarray.Array1.unsafe_set a (q + 1)
        (Bigarray.Array1.unsafe_get a (q + 1) lor (v lsr (wbits - r)))
  end

let read_bits (a : words) ~pos ~width =
  if width = 0 then 0
  else begin
    let q = pos / wbits and r = pos mod wbits in
    let lo = Bigarray.Array1.unsafe_get a q lsr r in
    let got = wbits - r in
    if got >= width then lo land low_mask width
    else
      (lo lor (Bigarray.Array1.unsafe_get a (q + 1) lsl got))
      land low_mask width
  end

(* ---------- popcount (16-bit table; 64-bit magic constants exceed
   OCaml's 62-bit literal range) ---------- *)

let pop16 =
  let t = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
    Bytes.unsafe_set t i (Char.chr (go i 0))
  done;
  t

let popcount w =
  Char.code (Bytes.unsafe_get pop16 (w land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 (w lsr 48))

(* Position of the lowest set bit of a non-zero word. *)
let lowest_bit w =
  let r = ref 0 and w = ref w in
  if !w land 0xffffffff = 0 then begin r := 32; w := !w lsr 32 end;
  if !w land 0xffff = 0 then begin r := !r + 16; w := !w lsr 16 end;
  if !w land 0xff = 0 then begin r := !r + 8; w := !w lsr 8 end;
  while !w land 1 = 0 do incr r; w := !w lsr 1 done;
  !r

(* ---------- Elias-Fano ---------- *)

let ef_low ef i = read_bits ef.ef_lows ~pos:(i * ef.ef_lw) ~width:ef.ef_lw

let ef_build_samples ~highs ~hbits =
  (* Freeze-time only (and decode): a plain bit walk over the ~2n
     upper bits is cheap and leaves no room for off-by-ones. *)
  let zeros_total = ref 0 in
  let nwords = (hbits + wbits - 1) / wbits in
  for q = 0 to nwords - 1 do
    let hi = min wbits (hbits - (q * wbits)) in
    let w = Bigarray.Array1.unsafe_get highs q land low_mask hi in
    zeros_total := !zeros_total + (hi - popcount w)
  done;
  let samples = Array.make (!zeros_total / zsample) 0 in
  let seen = ref 0 and si = ref 0 in
  let i = ref 0 in
  while !si < Array.length samples do
    if not (get_bit highs !i) then begin
      incr seen;
      if !seen mod zsample = 0 then begin
        samples.(!si) <- !i;
        incr si
      end
    end;
    incr i
  done;
  samples

let ef_of_array a =
  let n = Array.length a in
  let mx = a.(n - 1) in
  let u = mx + 1 in
  let lw = ref 0 in
  while u lsr (!lw + 1) >= n do incr lw done;
  let lw = !lw in
  let lows = words_make (n * lw) in
  let hbits = (mx lsr lw) + n in
  let highs = words_make hbits in
  for i = 0 to n - 1 do
    write_bits lows ~pos:(i * lw) ~width:lw (a.(i) land low_mask lw);
    set_bit highs ((a.(i) lsr lw) + i)
  done;
  {
    ef_n = n;
    ef_max = mx;
    ef_lw = lw;
    ef_lows = lows;
    ef_highs = highs;
    ef_hbits = hbits;
    ef_samples = ef_build_samples ~highs ~hbits;
  }

(* Bit position of the k-th zero (1-indexed) of the upper bits.
   The caller guarantees k <= ef_max lsr ef_lw (the zero total). *)
let ef_select0 ef k =
  let j = (k - 1) / zsample in
  let pos = ref 0 and seen = ref 0 in
  if j > 0 then begin
    pos := ef.ef_samples.(j - 1) + 1;
    seen := j * zsample
  end;
  let highs = ef.ef_highs in
  let q = ref (!pos / wbits) and r = ref (!pos mod wbits) in
  let result = ref (-1) in
  while !result < 0 do
    let w = Bigarray.Array1.unsafe_get highs !q lsr !r in
    let avail = wbits - !r in
    let zw = avail - popcount w in
    if !seen + zw >= k then begin
      (* the k-th zero is inside this word *)
      let w = ref w and bit = ref ((!q * wbits) + !r) in
      let remaining = ref (k - !seen) in
      let continue = ref true in
      while !continue do
        if !w land 1 = 0 then begin
          decr remaining;
          if !remaining = 0 then begin
            result := !bit;
            continue := false
          end
        end;
        if !continue then begin
          w := !w lsr 1;
          incr bit
        end
      done
    end
    else begin
      seen := !seen + zw;
      incr q;
      r := 0
    end
  done;
  !result

(* Advance to the first set bit at or after [pos]; the caller
   guarantees one exists (idx < ef_n). *)
let ef_next_one ef pos =
  let highs = ef.ef_highs in
  let q = ref (pos / wbits) and r = ref (pos mod wbits) in
  let result = ref (-1) in
  while !result < 0 do
    let w = Bigarray.Array1.unsafe_get highs !q lsr !r in
    if w <> 0 then result := (!q * wbits) + !r + lowest_bit w
    else begin
      incr q;
      r := 0
    end
  done;
  !result

(* Smallest element >= x with its rank, scanning from (idx0, pos0). *)
let rec ef_scan_geq ef idx pos x =
  if idx >= ef.ef_n then None
  else
    let pos = ef_next_one ef pos in
    let v = ((pos - idx) lsl ef.ef_lw) lor ef_low ef idx in
    if v >= x then Some (idx, v) else ef_scan_geq ef (idx + 1) (pos + 1) x

let ef_start_at ef x =
  (* (idx, pos) to start a >= x scan from: the beginning of x's high
     bucket, located by select0. *)
  let h = x lsr ef.ef_lw in
  if h = 0 then (0, 0)
  else
    let z = ef_select0 ef h in
    (z - h + 1, z + 1)

let ef_next_geq ef x =
  if x > ef.ef_max then None
  else if x <= 0 then
    let pos = ef_next_one ef 0 in
    Some (0, (pos lsl ef.ef_lw) lor ef_low ef 0)
  else
    let idx, pos = ef_start_at ef x in
    ef_scan_geq ef idx pos x

let ef_iteri f ef =
  let pos = ref 0 in
  for i = 0 to ef.ef_n - 1 do
    let p = ef_next_one ef !pos in
    f i (((p - i) lsl ef.ef_lw) lor ef_low ef i);
    pos := p + 1
  done

(* ---------- partitioned blocks ---------- *)

(* Self-contained LEB128 — lib/mgraph must not depend on lib/rdf. *)
let varint_to_buf buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let varint_of_string s pos limit =
  let v = ref 0 and shift = ref 0 and p = ref pos and fin = ref false in
  while not !fin do
    if !p >= limit then corrupt "truncated varint";
    if !shift > 56 then corrupt "varint overflow";
    let b = Char.code (String.unsafe_get s !p) in
    incr p;
    v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then fin := true
  done;
  (!v, !p)

(* ... and the same decoder over the resident byte buffer. *)
let varint_of_ba (b : bytes_ba) pos limit =
  let v = ref 0 and shift = ref 0 and p = ref pos and fin = ref false in
  while not !fin do
    if !p >= limit then invalid_arg "Posting: truncated block varint";
    let c = Char.code (Bigarray.Array1.unsafe_get b !p) in
    incr p;
    v := !v lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    if c < 0x80 then fin := true
  done;
  (!v, !p)

let blocked_of_array a =
  let n = Array.length a in
  let k = (n + bsize - 1) / bsize in
  let firsts = Array.make k 0
  and lasts = Array.make k 0
  and kinds = Bytes.make k '\000'
  and woff = Array.make (k + 1) 0
  and boff = Array.make (k + 1) 0 in
  let buf = Buffer.create 256 in
  let wtotal = ref 0 in
  for b = 0 to k - 1 do
    let lo = b * bsize in
    let count = min bsize (n - lo) in
    let first = a.(lo) and last = a.(lo + count - 1) in
    firsts.(b) <- first;
    lasts.(b) <- last;
    let span = last - first + 1 in
    if block_is_dense ~span ~count then begin
      Bytes.set kinds b '\000';
      wtotal := !wtotal + ((span + wbits - 1) / wbits)
    end
    else begin
      Bytes.set kinds b '\001';
      for i = lo + 1 to lo + count - 1 do
        varint_to_buf buf (a.(i) - a.(i - 1) - 1)
      done
    end;
    woff.(b + 1) <- !wtotal;
    boff.(b + 1) <- Buffer.length buf
  done;
  let wrds = words_make (!wtotal * wbits) in
  for b = 0 to k - 1 do
    if Bytes.get kinds b = '\000' then begin
      let lo = b * bsize in
      let count = min bsize (n - lo) in
      let base = woff.(b) * wbits and first = firsts.(b) in
      for i = lo to lo + count - 1 do
        set_bit wrds (base + a.(i) - first)
      done
    end
  done;
  let s = Buffer.contents buf in
  {
    b_n = n;
    b_firsts = firsts;
    b_lasts = lasts;
    b_kinds = kinds;
    b_woff = woff;
    b_boff = boff;
    b_words = wrds;
    b_bytes = bytes_ba_of_string s 0 (String.length s);
  }

let blocked_count b blk =
  let k = Array.length b.b_firsts in
  if blk = k - 1 then b.b_n - (blk * bsize) else bsize

(* First block whose last element is >= x, starting the search at
   [from]; Array.length b_firsts when none. *)
let blocked_find b from x =
  let k = Array.length b.b_firsts in
  if from >= k || x > b.b_lasts.(k - 1) then k
  else begin
    let lo = ref from and hi = ref (k - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if b.b_lasts.(mid) >= x then hi := mid else lo := mid + 1
    done;
    !lo
  end

(* Smallest element >= x inside block [blk], with its global rank; the
   caller guarantees x <= lasts.(blk). *)
let blocked_in_block_geq b blk x =
  let first = b.b_firsts.(blk) in
  if x <= first then (blk * bsize, first)
  else if Bytes.get b.b_kinds blk = '\000' then begin
    let base = b.b_woff.(blk) * wbits in
    (* count ones strictly below the target bit, then scan up *)
    let target = base + x - first in
    let rank = ref 0 in
    let q0 = base / wbits and qt = target / wbits in
    for q = q0 to qt - 1 do
      rank := !rank + popcount (Bigarray.Array1.unsafe_get b.b_words q)
    done;
    let rt = target mod wbits in
    rank :=
      !rank
      + popcount (Bigarray.Array1.unsafe_get b.b_words qt land low_mask rt);
    (* scan for the next set bit at or after [target]; one exists
       because lasts.(blk) >= x *)
    let q = ref qt and w = ref (Bigarray.Array1.unsafe_get b.b_words qt lsr rt)
    and off = ref rt in
    while !w = 0 do
      incr q;
      off := 0;
      w := Bigarray.Array1.unsafe_get b.b_words !q
    done;
    let bit = ((!q * wbits) + !off + lowest_bit !w) - base in
    ((blk * bsize) + !rank, first + bit)
  end
  else begin
    let limit = b.b_boff.(blk + 1) in
    let p = ref b.b_boff.(blk) and v = ref first and i = ref 0 in
    while !v < x do
      let d, p' = varint_of_ba b.b_bytes !p limit in
      v := !v + d + 1;
      p := p';
      incr i
    done;
    ((blk * bsize) + !i, !v)
  end

let blocked_next_geq b x =
  let blk = blocked_find b 0 x in
  if blk = Array.length b.b_firsts then None
  else Some (blocked_in_block_geq b blk x)

let blocked_iteri f b =
  let k = Array.length b.b_firsts in
  let idx = ref 0 in
  for blk = 0 to k - 1 do
    let first = b.b_firsts.(blk) in
    let count = blocked_count b blk in
    if Bytes.get b.b_kinds blk = '\000' then begin
      let base = b.b_woff.(blk) * wbits in
      let emitted = ref 0 in
      let bit = ref 0 in
      while !emitted < count do
        let q = (base + !bit) / wbits and r = (base + !bit) mod wbits in
        let w = Bigarray.Array1.unsafe_get b.b_words q lsr r in
        if w = 0 then bit := !bit + (wbits - r)
        else begin
          let lb = lowest_bit w in
          bit := !bit + lb;
          f !idx (first + !bit);
          incr idx;
          incr emitted;
          incr bit
        end
      done
    end
    else begin
      let limit = b.b_boff.(blk + 1) in
      let p = ref b.b_boff.(blk) and v = ref first in
      f !idx !v;
      incr idx;
      for _ = 2 to count do
        let d, p' = varint_of_ba b.b_bytes !p limit in
        v := !v + d + 1;
        p := p';
        f !idx !v;
        incr idx
      done
    end
  done

(* ---------- freeze ---------- *)

let empty = Praw [||]

let check_sorted a =
  let n = Array.length a in
  if n > 0 && a.(0) < 0 then invalid_arg "Posting.of_array: negative element";
  for i = 1 to n - 1 do
    if a.(i) <= a.(i - 1) then
      invalid_arg "Posting.of_array: not strictly increasing"
  done

let auto_layout a =
  let n = Array.length a in
  if n < 64 then Raw
  else
    let span = a.(n - 1) - a.(0) + 1 in
    if span <= n * 6 then Blocked else Ef

let freeze_as a = function
  | Raw -> Praw a
  | Ef -> Pef (ef_of_array a)
  | Blocked -> Pblocked (blocked_of_array a)

let of_array ?(policy = Auto) a =
  check_sorted a;
  if Array.length a = 0 then empty
  else
    let l = match policy with Auto -> auto_layout a | Force l -> l in
    freeze_as a l

let raw a = if Array.length a = 0 then empty else Praw a

let layout = function Praw _ -> Raw | Pef _ -> Ef | Pblocked _ -> Blocked

let length = function
  | Praw a -> Array.length a
  | Pef e -> e.ef_n
  | Pblocked b -> b.b_n

let is_empty p = length p = 0

(* ---------- point queries ---------- *)

(* Galloping lower bound over a raw array from a starting hint — the
   same shape as Sorted_ints.lower_bound_from, local so the cursor can
   resume where it left off. *)
let raw_lower_bound_from a lo x =
  let n = Array.length a in
  if lo >= n || a.(lo) >= x then lo
  else begin
    let step = ref 1 and prev = ref lo in
    let hi = ref (lo + 1) in
    while !hi < n && a.(!hi) < x do
      prev := !hi;
      step := !step * 2;
      hi := lo + !step
    done;
    let lo = ref (!prev + 1) and hi = ref (min !hi n) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) < x then lo := mid + 1 else hi := mid
    done;
    !lo
  end

let next_geq_rank p x =
  match p with
  | Praw a ->
      let i = raw_lower_bound_from a 0 x in
      if i < Array.length a then Some (i, a.(i)) else None
  | Pef e -> ef_next_geq e x
  | Pblocked b -> blocked_next_geq b x

let next_geq p x =
  match next_geq_rank p x with Some (_, v) -> Some v | None -> None

let mem p x =
  match next_geq_rank p x with Some (_, v) -> v = x | None -> false

let index_of p x =
  match next_geq_rank p x with
  | Some (i, v) when v = x -> Some i
  | _ -> None

(* ---------- iteration ---------- *)

let iteri f = function
  | Praw a -> Array.iteri f a
  | Pef e -> ef_iteri f e
  | Pblocked b -> blocked_iteri f b

let iter f p = iteri (fun _ v -> f v) p

let fold f init p =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) p;
  !acc

let to_array = function
  | Praw a -> a
  | p ->
      let out = Array.make (length p) 0 in
      iteri (fun i v -> out.(i) <- v) p;
      out

let equal a b =
  a == b
  || length a = length b
     &&
     match (a, b) with
     | Praw x, Praw y -> x = y
     | _ ->
         let ok = ref true in
         let other = to_array b in
         iteri (fun i v -> if v <> other.(i) then ok := false) a;
         !ok

(* ---------- cursors (forward-only skip_to over any layout) ---------- *)

type cur = {
  c_p : t;
  c_len : int;
  mutable c_i : int;  (* rank of current element; c_len when done *)
  mutable c_v : int;  (* current value, valid when c_i < c_len *)
  mutable c_pos : int;  (* Ef: highs bit position of the current one *)
  mutable c_blk : int;  (* Blocked: current block *)
}

let cur_make p =
  let c = { c_p = p; c_len = length p; c_i = 0; c_v = 0; c_pos = 0; c_blk = 0 } in
  (match p with
  | Praw a -> if Array.length a > 0 then c.c_v <- a.(0)
  | Pef e ->
      if e.ef_n > 0 then begin
        let pos = ef_next_one e 0 in
        c.c_pos <- pos;
        c.c_v <- (pos lsl e.ef_lw) lor ef_low e 0
      end
  | Pblocked b -> if b.b_n > 0 then c.c_v <- b.b_firsts.(0));
  c

(* Advance the cursor to the first element >= x. Forward-only: x must
   not decrease across calls. *)
let cur_seek c x =
  if c.c_i < c.c_len && c.c_v < x then
    match c.c_p with
    | Praw a ->
        let i = raw_lower_bound_from a c.c_i x in
        c.c_i <- i;
        if i < c.c_len then c.c_v <- a.(i)
    | Pef e ->
        if x > e.ef_max then c.c_i <- c.c_len
        else begin
          (* jump to x's bucket if it is past the current one *)
          let h = x lsr e.ef_lw and cur_h = c.c_v lsr e.ef_lw in
          let idx, pos =
            if h > cur_h then ef_start_at e x else (c.c_i + 1, c.c_pos + 1)
          in
          let idx, pos = if idx <= c.c_i then (c.c_i + 1, c.c_pos + 1) else (idx, pos) in
          match ef_scan_geq e idx pos x with
          | Some (i, v) ->
              c.c_i <- i;
              c.c_v <- v;
              c.c_pos <- (v lsr e.ef_lw) + i
          | None -> c.c_i <- c.c_len
        end
    | Pblocked b ->
        let blk =
          if x > b.b_lasts.(c.c_blk) then blocked_find b (c.c_blk + 1) x
          else c.c_blk
        in
        if blk = Array.length b.b_firsts then c.c_i <- c.c_len
        else begin
          let i, v = blocked_in_block_geq b blk x in
          c.c_blk <- blk;
          c.c_i <- i;
          c.c_v <- v
        end

(* ---------- set algebra ---------- *)

let inter_generic small big =
  let ns = length small in
  let out = Array.make ns 0 in
  let k = ref 0 in
  let cur = cur_make big in
  iter
    (fun v ->
      cur_seek cur v;
      if cur.c_i < cur.c_len && cur.c_v = v then begin
        out.(!k) <- v;
        incr k
      end)
    small;
  if !k = ns then small
  else if !k = length big then big
  else if !k = 0 then empty
  else Praw (Array.sub out 0 !k)

let inter a b =
  if is_empty a || is_empty b then empty
  else
    match (a, b) with
    | Praw x, Praw y ->
        let r = Sorted_ints.inter x y in
        if r == x then a else if r == y then b else raw r
    | _ -> if length a <= length b then inter_generic a b else inter_generic b a

let inter_many = function
  | [] -> invalid_arg "Posting.inter_many: empty list"
  | [ p ] -> p
  | ps ->
      let ps = List.sort (fun a b -> compare (length a) (length b)) ps in
      let rec go acc = function
        | [] -> acc
        | _ when is_empty acc -> empty
        | p :: rest -> go (inter acc p) rest
      in
      go (List.hd ps) (List.tl ps)

(* ---------- accounting ---------- *)

let out_of_heap_bytes = function
  | Praw _ -> 0
  | Pef e ->
      8 * (Bigarray.Array1.dim e.ef_lows + Bigarray.Array1.dim e.ef_highs)
  | Pblocked b -> (8 * Bigarray.Array1.dim b.b_words) + Bigarray.Array1.dim b.b_bytes

type stats = {
  mutable raw_lists : int;
  mutable ef_lists : int;
  mutable blocked_lists : int;
  mutable elements : int;
  mutable payload_bytes : int;
}

let fresh_stats () =
  { raw_lists = 0; ef_lists = 0; blocked_lists = 0; elements = 0; payload_bytes = 0 }

let count_into s p =
  (match layout p with
  | Raw -> s.raw_lists <- s.raw_lists + 1
  | Ef -> s.ef_lists <- s.ef_lists + 1
  | Blocked -> s.blocked_lists <- s.blocked_lists + 1);
  s.elements <- s.elements + length p;
  s.payload_bytes <- s.payload_bytes + out_of_heap_bytes p

let merge_stats ~into s =
  into.raw_lists <- into.raw_lists + s.raw_lists;
  into.ef_lists <- into.ef_lists + s.ef_lists;
  into.blocked_lists <- into.blocked_lists + s.blocked_lists;
  into.elements <- into.elements + s.elements;
  into.payload_bytes <- into.payload_bytes + s.payload_bytes

(* ---------- names ---------- *)

let layout_to_string = function Raw -> "raw" | Ef -> "ef" | Blocked -> "blocked"

let layout_of_string = function
  | "raw" -> Some Raw
  | "ef" -> Some Ef
  | "blocked" -> Some Blocked
  | _ -> None

let policy_to_string = function
  | Auto -> "auto"
  | Force l -> layout_to_string l

let policy_of_string = function
  | "auto" -> Some Auto
  | s -> ( match layout_of_string s with Some l -> Some (Force l) | None -> None)

(* ---------- wire codec ---------- *)

(* A 63-bit container word with bit 62 set is a negative int;
   [Int64.of_int] would sign-extend it into bit 63. Mask so the wire
   always carries exactly the 63 container bits. *)
let add_word_le buf w =
  Buffer.add_int64_le buf (Int64.logand (Int64.of_int w) Int64.max_int)

let add_words buf (a : words) =
  for i = 0 to Bigarray.Array1.dim a - 1 do
    add_word_le buf (Bigarray.Array1.unsafe_get a i)
  done

let read_words s pos nwords limit =
  if pos + (8 * nwords) > limit then corrupt "truncated word buffer";
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout nwords in
  for i = 0 to nwords - 1 do
    let v = String.get_int64_le s (pos + (8 * i)) in
    if Int64.logand v Int64.min_int <> 0L then corrupt "word bit 63 set";
    Bigarray.Array1.unsafe_set a i (Int64.to_int v)
  done;
  (a, pos + (8 * nwords))

let tag_raw = 0 and tag_ef = 1 and tag_blocked = 2

let encode buf p =
  match p with
  | Praw a ->
      varint_to_buf buf tag_raw;
      let n = Array.length a in
      varint_to_buf buf n;
      if n > 0 then begin
        varint_to_buf buf a.(0);
        for i = 1 to n - 1 do
          varint_to_buf buf (a.(i) - a.(i - 1) - 1)
        done
      end
  | Pef e ->
      varint_to_buf buf tag_ef;
      varint_to_buf buf e.ef_n;
      varint_to_buf buf e.ef_max;
      add_words buf e.ef_lows;
      add_words buf e.ef_highs
  | Pblocked b ->
      varint_to_buf buf tag_blocked;
      varint_to_buf buf b.b_n;
      varint_to_buf buf (Bigarray.Array1.dim b.b_words);
      varint_to_buf buf (Bigarray.Array1.dim b.b_bytes);
      let k = Array.length b.b_firsts in
      for blk = 0 to k - 1 do
        let gap =
          if blk = 0 then b.b_firsts.(0)
          else b.b_firsts.(blk) - b.b_lasts.(blk - 1) - 1
        in
        varint_to_buf buf gap;
        varint_to_buf buf
          (b.b_lasts.(blk) - b.b_firsts.(blk) + 1 - blocked_count b blk)
      done;
      add_words buf b.b_words;
      for i = 0 to Bigarray.Array1.dim b.b_bytes - 1 do
        Buffer.add_char buf (Bigarray.Array1.unsafe_get b.b_bytes i)
      done

let decode_raw s pos limit =
  let n, pos = varint_of_string s pos limit in
  if n > limit - pos + 1 then corrupt "raw posting longer than input";
  if n = 0 then (empty, pos)
  else begin
    let a = Array.make n 0 in
    let v, pos = varint_of_string s pos limit in
    a.(0) <- v;
    let pos = ref pos in
    for i = 1 to n - 1 do
      let d, p = varint_of_string s !pos limit in
      a.(i) <- a.(i - 1) + d + 1;
      pos := p
    done;
    (Praw a, !pos)
  end

let validate_padding (a : words) nbits what =
  let nwords = Bigarray.Array1.dim a in
  if nwords > 0 then begin
    let used = nbits - ((nwords - 1) * wbits) in
    if used < wbits && Bigarray.Array1.get a (nwords - 1) lsr used <> 0 then
      corrupt (what ^ ": padding bits set")
  end

let decode_ef s pos limit =
  let n, pos = varint_of_string s pos limit in
  let mx, pos = varint_of_string s pos limit in
  if n < 1 then corrupt "ef: empty";
  if n > mx + 1 then corrupt "ef: n exceeds universe";
  let u = mx + 1 in
  let lw = ref 0 in
  while u lsr (!lw + 1) >= n do incr lw done;
  let lw = !lw in
  let lwords = ((n * lw) + wbits - 1) / wbits in
  let hbits = (mx lsr lw) + n in
  let hwords = (hbits + wbits - 1) / wbits in
  let lows, pos = read_words s pos lwords limit in
  let highs, pos = read_words s pos hwords limit in
  validate_padding lows (n * lw) "ef lows";
  validate_padding highs hbits "ef highs";
  let ones = ref 0 in
  for q = 0 to hwords - 1 do
    ones := !ones + popcount (Bigarray.Array1.get highs q)
  done;
  if !ones <> n then corrupt "ef: upper-bits population mismatch";
  let e =
    {
      ef_n = n;
      ef_max = mx;
      ef_lw = lw;
      ef_lows = lows;
      ef_highs = highs;
      ef_hbits = hbits;
      ef_samples = ef_build_samples ~highs ~hbits;
    }
  in
  (* strict monotonicity + the declared max, via one decode pass *)
  let prev = ref (-1) in
  (try
     ef_iteri
       (fun _ v ->
         if v <= !prev then raise Exit;
         prev := v)
       e
   with Exit -> corrupt "ef: sequence not strictly increasing");
  if !prev <> mx then corrupt "ef: max mismatch";
  (Pef e, pos)

let decode_blocked s pos limit =
  let n, pos = varint_of_string s pos limit in
  let wtotal, pos = varint_of_string s pos limit in
  let btotal, pos = varint_of_string s pos limit in
  if n < 1 then corrupt "blocked: empty";
  let k = (n + bsize - 1) / bsize in
  let firsts = Array.make k 0
  and lasts = Array.make k 0
  and kinds = Bytes.make k '\000'
  and woff = Array.make (k + 1) 0
  and boff = Array.make (k + 1) 0 in
  let pos = ref pos in
  let prev_last = ref (-1) in
  for blk = 0 to k - 1 do
    let count = if blk = k - 1 then n - (blk * bsize) else bsize in
    let gap, p = varint_of_string s !pos limit in
    let slack, p = varint_of_string s p limit in
    pos := p;
    let first = !prev_last + 1 + gap in
    let span = count + slack in
    let last = first + span - 1 in
    firsts.(blk) <- first;
    lasts.(blk) <- last;
    prev_last := last;
    if block_is_dense ~span ~count then begin
      Bytes.set kinds blk '\000';
      woff.(blk + 1) <- woff.(blk) + ((span + wbits - 1) / wbits);
      boff.(blk + 1) <- boff.(blk)
    end
    else begin
      Bytes.set kinds blk '\001';
      woff.(blk + 1) <- woff.(blk);
      boff.(blk + 1) <- boff.(blk) (* patched after payload decode *)
    end
  done;
  if woff.(k) <> wtotal then corrupt "blocked: word total mismatch";
  let wrds, p = read_words s !pos wtotal limit in
  pos := p;
  if !pos + btotal > limit then corrupt "blocked: truncated byte payload";
  let bbytes = bytes_ba_of_string s !pos btotal in
  pos := !pos + btotal;
  (* walk varint payloads to recover byte offsets and validate spans *)
  let bp = ref 0 in
  for blk = 0 to k - 1 do
    boff.(blk) <- !bp;
    if Bytes.get kinds blk = '\001' then begin
      let count = if blk = k - 1 then n - (blk * bsize) else bsize in
      let v = ref firsts.(blk) in
      (try
         for _ = 2 to count do
           let d, p = varint_of_ba bbytes !bp btotal in
           v := !v + d + 1;
           bp := p
         done
       with Invalid_argument _ -> corrupt "blocked: truncated deltas");
      if !v <> lasts.(blk) then corrupt "blocked: span mismatch"
    end
  done;
  boff.(k) <- !bp;
  if !bp <> btotal then corrupt "blocked: byte total mismatch";
  let b =
    {
      b_n = n;
      b_firsts = firsts;
      b_lasts = lasts;
      b_kinds = kinds;
      b_woff = woff;
      b_boff = boff;
      b_words = wrds;
      b_bytes = bbytes;
    }
  in
  (* validate bitset blocks: exact population, first and last bit set *)
  for blk = 0 to k - 1 do
    if Bytes.get kinds blk = '\000' then begin
      let count = if blk = k - 1 then n - (blk * bsize) else bsize in
      let span = lasts.(blk) - firsts.(blk) + 1 in
      let ones = ref 0 in
      for q = woff.(blk) to woff.(blk + 1) - 1 do
        ones := !ones + popcount (Bigarray.Array1.get wrds q)
      done;
      if !ones <> count then corrupt "blocked: bitset population mismatch";
      let base = woff.(blk) * wbits in
      let wlimit = woff.(blk + 1) * wbits - base in
      if span > wlimit then corrupt "blocked: span exceeds words";
      (* padding above the span must be clear *)
      for bit = span to wlimit - 1 do
        if get_bit wrds (base + bit) then corrupt "blocked: bitset padding set"
      done;
      if not (get_bit wrds base) then corrupt "blocked: first bit clear";
      if not (get_bit wrds (base + span - 1)) then
        corrupt "blocked: last bit clear"
    end
  done;
  (Pblocked b, !pos)

let decode s pos =
  let limit = String.length s in
  let tag, pos = varint_of_string s pos limit in
  if tag = tag_raw then decode_raw s pos limit
  else if tag = tag_ef then decode_ef s pos limit
  else if tag = tag_blocked then decode_blocked s pos limit
  else corrupt (Printf.sprintf "unknown posting layout tag %d" tag)
