(** Sealed compressed posting lists — the physical substrate under
    every sorted id set the indexes keep resident.

    A posting list is an immutable strictly-increasing set of
    non-negative ints (vertex ids, edge types) frozen into one of three
    physical layouts:

    - {b Raw}: the plain [int array] the engine always used — zero
      translation cost, one word per element.
    - {b Ef} (Elias-Fano): low bits packed at fixed width
      [⌊log₂(u/n)⌋], high bits as a unary bit vector with sampled
      [select₀] — about [2 + log₂(u/n)] bits per element, with
      [skip_to] served by a bucket jump plus a short scan.
    - {b Blocked} (partitioned): 128-element blocks, each encoded as a
      span-relative bitset when dense or delta-varints when sparse,
      under a small in-heap directory — the right shape for clustered
      id runs.

    Compressed payloads live in [Bigarray] buffers outside the OCaml
    heap (so [Obj.reachable_words] does not see them — account with
    {!out_of_heap_bytes}). Every query operation ([mem], [next_geq],
    [inter], [inter_many], iteration) runs directly over the encoded
    form; nothing is decompressed into an array first except
    {!to_array}.

    Layouts are chosen per list at freeze time ({!of_array}) by a
    deterministic density/size heuristic, or forced for ablation. *)

type t

type layout = Raw | Ef | Blocked

type policy =
  | Auto  (** per-list heuristic: small → Raw, clustered → Blocked, sparse → Ef *)
  | Force of layout
      (** every list in this layout (empty lists stay Raw — the other
          encodings have no empty form) *)

exception Corrupt of string
(** Raised by {!decode} on malformed or non-canonical bytes. *)

val empty : t
(** The empty set (Raw; physically shared). *)

val of_array : ?policy:policy -> int array -> t
(** Freeze a strictly-increasing array of non-negative ints
    (default policy [Auto]). Under [Raw] the input array is aliased,
    not copied — the caller must not mutate it afterwards.
    @raise Invalid_argument if the input is not strictly increasing or
    contains a negative. *)

val raw : int array -> t
(** [of_array ~policy:(Force Raw)] without the sortedness check — the
    zero-cost wrap for arrays already validated by the caller (e.g.
    fresh {!Sorted_ints} kernel results). The array is aliased. *)

val layout : t -> layout
val length : t -> int
val is_empty : t -> bool

val mem : t -> int -> bool
val next_geq : t -> int -> int option
(** Smallest element [>= x], if any — the one-shot [skip_to]. *)

val index_of : t -> int -> int option
(** Rank of [x] if present: [index_of p x = Some i] iff [x] is the
    [i]-th smallest element. *)

val to_array : t -> int array
(** Decode to a fresh array — except Raw lists, which return the
    underlying array itself (do not mutate). *)

val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit
(** [iteri f p] calls [f rank value] in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val equal : t -> t -> bool
(** Same element set, regardless of layout. *)

val inter : t -> t -> t
(** Set intersection directly over the encoded forms: the smaller side
    is enumerated, the larger side skipped through with a stateful
    cursor. When both sides are Raw this is exactly
    {!Sorted_ints.inter} (adaptive merge/gallop/bitset). Like the raw
    kernels, the result aliases an operand when it equals it — callers
    must treat results as immutable. Results are always Raw (fresh
    intersections are transient query-time sets; only index freeze
    compresses). *)

val inter_many : t list -> t
(** Intersection of one or more lists, smallest first with early empty
    exit. @raise Invalid_argument on []. *)

val out_of_heap_bytes : t -> int
(** Bytes of [Bigarray] payload invisible to [Obj.reachable_words]
    (0 for Raw). *)

(** {1 Layout accounting} *)

type stats = {
  mutable raw_lists : int;
  mutable ef_lists : int;
  mutable blocked_lists : int;
  mutable elements : int;
  mutable payload_bytes : int;  (** out-of-heap payload total *)
}

val fresh_stats : unit -> stats
val count_into : stats -> t -> unit
val merge_stats : into:stats -> stats -> unit

(** {1 Names} *)

val layout_to_string : layout -> string
val layout_of_string : string -> layout option
val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** ["raw" | "ef" | "blocked" | "auto"] — the [--layout] vocabulary. *)

(** {1 Wire codec}

    The layout-tagged encoding AMBERIX1 v2 embeds: a varint layout tag,
    then a per-layout payload (Raw: delta varints; Ef/Blocked: header
    varints plus the word buffers as little-endian 64-bit, so loading
    is a straight buffer fill). Decoding validates canonical form — an
    unknown tag, a padding bit set, a non-monotone sequence all raise
    {!Corrupt}. *)

val encode : Buffer.t -> t -> unit

val decode : string -> int -> t * int
(** [decode src pos] returns the posting and the position one past its
    encoding. @raise Corrupt on malformed input. *)
