(** Operations on strictly increasing integer arrays.

    Candidate sets, multi-edge type sets and attribute sets are all kept
    as sorted, duplicate-free [int array]s. Set algebra on them is the
    matcher's hot path, so {!inter} dispatches between three kernels by
    operand shape:

    - {e merge} — the classic linear merge, best for similar sizes;
    - {e galloping} — the small side drives, exponential + binary search
      skips through the large side; best for skewed sizes
      ([O(n_s log (n_l / n_s))]);
    - {e bitset} — the small side is loaded into a span-offset bit
      table, the large side's overlapping window is filtered by O(1)
      membership tests; best when both sides are large and the smaller
      one is dense.

    All functions assume (and preserve) strict ordering, treat arrays as
    immutable, and may return an {e operand itself} (physically) when it
    equals the result — callers must never mutate a returned array. *)

val of_list : int list -> int array
(** Sort and deduplicate. *)

val is_sorted : int array -> bool
(** Strictly increasing (hence duplicate-free)? *)

val mem : int array -> int -> bool
(** Binary search. *)

val subset : int array -> int array -> bool
(** [subset a b] — is every element of [a] in [b]? Gallops through [b]
    when it is much longer than [a]. *)

val inter : int array -> int array -> int array
(** Adaptive intersection: picks merge, galloping or bitset by operand
    sizes and density. Returns an operand unchanged when the result
    equals it. *)

val inter_merge : int array -> int array -> int array
(** The linear-merge kernel (exposed for tests and benchmarks). *)

val inter_gallop : int array -> int array -> int array
(** The galloping (exponential-search) kernel — either operand order. *)

val inter_bitset : int array -> int array -> int array
(** The bitset kernel: builds a bit table spanning the smaller operand's
    value range, so its cost grows with that span — callers should
    prefer {!inter}, which only selects it for dense operands. *)

val union : int array -> int array -> int array
val diff : int array -> int array -> int array

val inter_many : int array list -> int array
(** Intersection of all sets, smallest first, stopping as soon as the
    running result is empty. The intersection of [[]] is undefined and
    raises [Invalid_argument]. Singleton and pair lists shortcut without
    sorting or allocation; otherwise the operands are sorted by length
    (once, into a scratch array). *)

val equal : int array -> int array -> bool
