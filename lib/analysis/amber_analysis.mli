(** Static query analysis — typed diagnostics over a SPARQL basic graph
    pattern, produced {e before} any matching runs.

    This module is the engine-independent half of the analyzer: the
    diagnostic vocabulary (unsatisfiability {e proofs}, plan
    {e warnings}, rewrite {e hints}), their pretty and JSON renderings,
    and the lints that need nothing but the AST. The engine-aware half —
    dictionary lookups, Lemma-1 signature screening against the synopsis
    maxima, attribute-index intersection emptiness — lives in
    [Amber.Analysis], which re-exports everything here.

    Soundness contract: every {!proof} is a certificate that the query's
    answer set is {e empty} under SPARQL BGP semantics (the differential
    test suite checks each proof kind against the brute-force oracle).
    Warnings and hints never claim emptiness; they flag plans that are
    legal but wasteful (Cartesian products, dead projection columns,
    duplicate patterns). *)

(** {1 Source spans}

    The parser does not preserve byte offsets, so a span locates a
    diagnostic by the index of the offending triple pattern inside the
    WHERE clause (0-based, in declaration order) together with its
    re-printed text. [pattern = None] marks query-level diagnostics
    (projection, ORDER BY, LIMIT). *)

type span = { pattern : int option; text : string }

val span_of_pattern : int -> Sparql.Ast.triple_pattern -> span
val query_span : string -> span
(** A query-level span carrying only descriptive text. *)

(** {1 Diagnostics} *)

(** Certificates of unsatisfiability. Each constructor names its
    runtime counterpart (see docs/PAPER_MAP.md): the analyzer performs
    at compile time the refusal the engine would otherwise discover
    mid-search — or never, after a full fruitless enumeration. *)
type proof =
  | Unknown_predicate of { iri : string }
      (** The predicate occurs nowhere in the data — neither as an edge
          type nor as an attribute predicate (dictionary miss, paper
          Table 2). *)
  | Predicate_never_links of { iri : string }
      (** The predicate occurs only with literal objects, but this
          pattern needs it between two resources (edge-type dictionary
          miss). *)
  | Unknown_iri of { iri : string; position : [ `Subject | `Object ] }
      (** A constant subject/object IRI absent from the vertex
          dictionary: no triple mentions it as a resource. *)
  | Unknown_literal of { pred : string; lit : string }
      (** The [(predicate, literal)] pair is not an attribute of any
          vertex (attribute dictionary miss). *)
  | Ground_pattern_absent of { subject : string; pred : string; obj : string }
      (** A fully ground pattern that does not hold in the data. *)
  | Conflicting_literals of {
      variable : string;
      pred : string;
      lit1 : string;
      lit2 : string;
    }
      (** Two equality constraints on the same (vertex, predicate) pair
          that no data vertex satisfies together — the witness pair of
          an empty attribute-index intersection. *)
  | Empty_attribute_intersection of {
      variable : string;
      attrs : (string * string) list;  (** (predicate, literal) pairs *)
    }
      (** Every required attribute exists somewhere, but no single data
          vertex carries them all (index [A] intersection is empty). *)
  | Signature_infeasible of {
      variable : string;
      feature : int;  (** synopsis feature index, [0 .. dims-1] *)
      query_value : int;
      data_max : int;
    }
      (** The query vertex's synopsis exceeds the componentwise maxima
          over all data synopses — Lemma 1 lifted to compile time: no
          data vertex can dominate it. *)
  | Multi_edge_too_wide of {
      variable : string;
      other : string;  (** neighbouring variable, or the constant IRI *)
      width : int;
      data_max : int;
    }
      (** A query multi-edge carries more distinct predicates than any
          data multi-edge. *)
  | Iri_constraint_infeasible of {
      variable : string;
      iri : string;
      predicates : string list;
    }
      (** The variable must link to constant [iri] through all
          [predicates], but no data neighbour of [iri] does
          (compile-time neighbourhood probe, index [N]). *)

type warning =
  | Disconnected_components of { count : int }
      (** The pattern splits into [count] variable-disjoint components:
          the answer is their Cartesian product. *)
  | Unprojected_satellite of { variable : string }
      (** A degree-≤1 vertex whose variable is never projected: it only
          constrains existence yet multiplies enumerated embeddings. *)
  | Unbound_select_variable of { variable : string }
      (** SELECTed but absent from the WHERE clause — an always-null
          column. *)
  | Duplicate_pattern of { first : int; dup : int }
      (** Pattern [dup] repeats pattern [first] verbatim. *)
  | Out_of_fragment of { reason : string }
      (** The engine would reject the query ([Engine.Unsupported]);
          static analysis cannot classify it further. *)

type hint =
  | Drop_duplicate_pattern of { index : int }
  | Order_by_unbound of { variable : string }
      (** ORDER BY key never bound: sorts by a constant. *)
  | Limit_zero  (** LIMIT 0 — the empty answer, without any search. *)

type diagnostic = Unsat of proof | Warning of warning | Hint of hint

type item = { diag : diagnostic; span : span option }

type report = { items : item list }
(** Diagnostics in discovery order (unsat proofs first). *)

val empty_report : report

val report_of_items : item list -> report
(** Assemble a report, moving unsat proofs to the front (stable within
    each class). *)

val unsat_proof : report -> proof option
(** The first unsatisfiability proof, if any — the short-circuit
    certificate. *)

val warnings : report -> warning list
val hints : report -> hint list

(** {1 AST-level lints}

    The checks that need no engine: unbound SELECT variables, duplicate
    patterns (with drop hints), variable-disjoint component counting,
    ORDER BY keys never bound, LIMIT 0. *)

val lint_ast : Sparql.Ast.t -> item list

val component_count : Sparql.Ast.triple_pattern list -> int
(** Number of variable-connected components among the patterns that
    contain at least one variable (0 for an all-ground clause). *)

(** {1 Rendering} *)

val feature_name : int -> string
(** Human name of a synopsis feature index, e.g. ["f1+ (max multi-edge
    cardinality, incoming)"]. *)

val pp_proof : Format.formatter -> proof -> unit
val proof_to_string : proof -> string
val pp_warning : Format.formatter -> warning -> unit
val pp_hint : Format.formatter -> hint -> unit
val pp_item : Format.formatter -> item -> unit
val pp_report : Format.formatter -> report -> unit
(** Compiler-style listing: one [error:]/[warning:]/[hint:] line per
    diagnostic with its span, then a one-line verdict. *)

val report_to_json : report -> string
(** [{"unsat":bool,"diagnostics":[{"severity":…,"kind":…,"message":…,
    "pattern":…,"span":…},…]}] — stable kind strings, machine-readable
    ([amber lint --json], endpoint [?analyze=1]). *)

val severity : diagnostic -> string
(** ["error"], ["warning"] or ["hint"]. *)

val kind : diagnostic -> string
(** The stable kind slug used in JSON, e.g. ["unknown-predicate"]. *)
