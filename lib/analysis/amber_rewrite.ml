(* Engine-independent half of the semantic query rewriter: the step
   vocabulary, its renderings, and the AST-only passes (duplicate
   elimination, homomorphic core minimization, Cartesian detection).
   Constant propagation is parameterized by a data-backed [singleton]
   callback supplied by Amber.Rewrite (lib/core). *)

module Ast = Sparql.Ast

type kind =
  | Duplicate_pattern of { first : int; dup : int }
  | Core_minimization of { removed : int; folded : (string * string) list }
  | Constant_propagation of { variable : string; value : string }
  | Cartesian_product of { components : int; estimated_rows : int option }

type step = {
  kind : kind;
  spans : Amber_analysis.span list;
  justification : string;
}

let kind_slug = function
  | Duplicate_pattern _ -> "duplicate-pattern"
  | Core_minimization _ -> "core-minimization"
  | Constant_propagation _ -> "constant-propagation"
  | Cartesian_product _ -> "cartesian-product"

let slugs steps = List.map (fun s -> kind_slug s.kind) steps

let pp_step ppf { kind; spans; justification } =
  Format.fprintf ppf "[%s] %s" (kind_slug kind) justification;
  List.iter
    (fun { Amber_analysis.pattern; text } ->
      match pattern with
      | Some i -> Format.fprintf ppf "@,    at pattern %d: %s" i text
      | None -> Format.fprintf ppf "@,    at: %s" text)
    spans

(* JSON string escaping per RFC 8259 (mirrors Amber_analysis's private
   helper). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_to_json { Amber_analysis.pattern; text } =
  match pattern with
  | Some i ->
      Printf.sprintf {|{"pattern":%d,"text":"%s"}|} i (json_escape text)
  | None -> Printf.sprintf {|{"text":"%s"}|} (json_escape text)

let step_to_json { kind; spans; justification } =
  let extra =
    match kind with
    | Duplicate_pattern { first; dup } ->
        Printf.sprintf {|,"first":%d,"dup":%d|} first dup
    | Core_minimization { removed; folded } ->
        Printf.sprintf {|,"removed":%d,"folded":[%s]|} removed
          (String.concat ","
             (List.map
                (fun (v, image) ->
                  Printf.sprintf {|{"variable":"%s","image":"%s"}|}
                    (json_escape v) (json_escape image))
                folded))
    | Constant_propagation { variable; value } ->
        Printf.sprintf {|,"variable":"%s","value":"%s"|} (json_escape variable)
          (json_escape value)
    | Cartesian_product { components; estimated_rows } ->
        Printf.sprintf {|,"components":%d,"estimated_rows":%s|} components
          (match estimated_rows with
          | None -> "null"
          | Some n -> string_of_int n)
  in
  Printf.sprintf {|{"kind":"%s","justification":"%s","spans":[%s]%s}|}
    (kind_slug kind) (json_escape justification)
    (String.concat "," (List.map span_to_json spans))
    extra

let steps_to_json steps =
  "[" ^ String.concat "," (List.map step_to_json steps) ^ "]"

(* ------------------------------------------------------------------ *)
(* Clause helpers                                                      *)
(* ------------------------------------------------------------------ *)

let term_to_string = Ast.term_to_string

let pattern_vars { Ast.subject; predicate; obj } =
  List.filter_map
    (fun t ->
      match t with
      | Ast.Var v -> Some v
      | Ast.Iri _ | Ast.Lit _ -> None)
    [ subject; predicate; obj ]

let clause_vars patterns =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc v -> if List.mem v acc then acc else v :: acc)
        acc (pattern_vars p))
    [] patterns

let pattern_equal a b =
  Ast.term_equal a.Ast.subject b.Ast.subject
  && Ast.term_equal a.Ast.predicate b.Ast.predicate
  && Ast.term_equal a.Ast.obj b.Ast.obj

let protected_variables (ast : Ast.t) =
  let candidates = Ast.selected_variables ast @ List.map fst ast.Ast.order_by in
  List.rev
    (List.fold_left
       (fun acc v -> if List.mem v acc then acc else v :: acc)
       [] candidates)

(* ------------------------------------------------------------------ *)
(* Pass 1: duplicate elimination                                       *)
(* ------------------------------------------------------------------ *)

(* Verbatim repeats of an earlier pattern drop unconditionally: a BGP
   solution mapping satisfies the repeat iff it satisfies the original,
   and solution multiplicity does not depend on pattern repetition.
   Returns the input list physically unchanged when nothing fired. *)
let dedup_pass where =
  let arr = Array.of_list where in
  let steps = ref [] in
  let kept = ref [] in
  Array.iteri
    (fun j pat ->
      let rec first_at i =
        if i >= j then None
        else if pattern_equal arr.(i) pat then Some i
        else first_at (i + 1)
      in
      match first_at 0 with
      | None -> kept := pat :: !kept
      | Some i ->
          steps :=
            {
              kind = Duplicate_pattern { first = i; dup = j };
              spans = [ Amber_analysis.span_of_pattern j pat ];
              justification =
                Printf.sprintf
                  "pattern %d repeats pattern %d verbatim; a solution \
                   satisfies one iff it satisfies the other"
                  j i;
            }
            :: !steps)
    arr;
  match !steps with
  | [] -> (where, [])
  | steps -> (List.rev !kept, List.rev steps)

(* ------------------------------------------------------------------ *)
(* Pass 2: constant propagation                                        *)
(* ------------------------------------------------------------------ *)

let occurs_in_position pos v patterns =
  List.exists
    (fun p ->
      match pos p with
      | Ast.Var x -> String.equal x v
      | Ast.Iri _ | Ast.Lit _ -> false)
    patterns

let substitute v value patterns =
  let sub term =
    match term with
    | Ast.Var x -> if String.equal x v then value else term
    | Ast.Iri _ | Ast.Lit _ -> term
  in
  List.map
    (fun { Ast.subject; predicate; obj } ->
      { Ast.subject = sub subject; predicate = sub predicate; obj = sub obj })
    patterns

(* One substitution per round: find the first pattern whose callback
   certifies a data-forced binding, substitute it everywhere. Guards:
   the forced term must be ground; literals never land in subject (or
   any term in predicate) position; the clause must keep at least one
   variable — a fully ground clause is a degenerate shape the matcher
   has no vertices for, so we leave the last variable to it. *)
let const_prop_round ~singleton where =
  let rec scan i = function
    | [] -> None
    | p :: rest -> (
        match singleton p with
        | None -> scan (i + 1) rest
        | Some (v, value) ->
            let ground =
              match value with
              | Ast.Iri _ | Ast.Lit _ -> true
              | Ast.Var _ -> false
            in
            let lit_in_subject =
              (match value with
              | Ast.Lit _ -> true
              | Ast.Iri _ | Ast.Var _ -> false)
              && occurs_in_position (fun p -> p.Ast.subject) v where
            in
            let in_predicate =
              occurs_in_position (fun p -> p.Ast.predicate) v where
            in
            let occurs_in_p = List.mem v (pattern_vars p) in
            if not (ground && occurs_in_p) || lit_in_subject || in_predicate
            then scan (i + 1) rest
            else
              let where' = substitute v value where in
              if clause_vars where' = [] then scan (i + 1) rest
              else
                let value_text = term_to_string value in
                Some
                  ( where',
                    {
                      kind =
                        Constant_propagation
                          { variable = v; value = value_text };
                      spans = [ Amber_analysis.span_of_pattern i p ];
                      justification =
                        Printf.sprintf
                          "the data admits exactly one binding for ?%s in \
                           pattern %d; substituting %s preserves every \
                           solution 1:1"
                          v i value_text;
                    },
                    (v, value) ))
  in
  scan 0 where

(* ------------------------------------------------------------------ *)
(* Pass 3: homomorphic core minimization                               *)
(* ------------------------------------------------------------------ *)

exception Budget_exhausted

(* Is pattern [t_idx] removable? Search for a self-homomorphism h —
   identity on protected variables and constants — mapping EVERY
   pattern of the clause into the clause without [t_idx]. Backtracking
   over patterns with an explicit undo trail; the budget bounds the
   worst case (abandoning the search is always sound: the pattern just
   stays). *)
let removable ~budget ~protected arr t_idx =
  let rest =
    Array.to_list arr |> List.filteri (fun i _ -> i <> t_idx)
  in
  if rest = [] then None
  else if clause_vars (Array.to_list arr) <> [] && clause_vars rest = [] then
    None
  else begin
    let assign : (string, Ast.term) Hashtbl.t = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace assign v (Ast.Var v)) protected;
    let map_term src dst added =
      match src with
      | Ast.Iri _ | Ast.Lit _ -> Ast.term_equal src dst
      | Ast.Var v -> (
          match Hashtbl.find_opt assign v with
          | Some t -> Ast.term_equal t dst
          | None ->
              Hashtbl.add assign v dst;
              added := v :: !added;
              true)
    in
    let try_map p q =
      let added = ref [] in
      if
        map_term p.Ast.subject q.Ast.subject added
        && map_term p.Ast.predicate q.Ast.predicate added
        && map_term p.Ast.obj q.Ast.obj added
      then Some !added
      else begin
        List.iter (Hashtbl.remove assign) !added;
        None
      end
    in
    let rec solve = function
      | [] -> true
      | p :: tl ->
          List.exists
            (fun q ->
              decr budget;
              if !budget <= 0 then raise Budget_exhausted;
              match try_map p q with
              | None -> false
              | Some added ->
                  if solve tl then true
                  else begin
                    List.iter (Hashtbl.remove assign) added;
                    false
                  end)
            rest
    in
    match solve (Array.to_list arr) with
    | exception Budget_exhausted -> None
    | false -> None
    | true ->
        let folded =
          Hashtbl.fold
            (fun v image acc ->
              match image with
              | Ast.Var x when String.equal x v -> acc
              | Ast.Var _ | Ast.Iri _ | Ast.Lit _ ->
                  (v, term_to_string image) :: acc)
            assign []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        Some folded
  end

(* Fold the clause onto its homomorphic core, pattern by pattern, to a
   fixpoint. Sound only when the projection is a set (DISTINCT): the
   caller gates on that. *)
let core_minimize ~max_patterns ~protected where =
  if List.length where > max_patterns then (where, [])
  else begin
    let steps = ref [] in
    let current = ref where in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let arr = Array.of_list !current in
      let n = Array.length arr in
      let budget = ref 20_000 in
      let rec try_idx t_idx =
        if t_idx >= n then ()
        else
          match removable ~budget ~protected arr t_idx with
          | None -> try_idx (t_idx + 1)
          | Some folded ->
              steps :=
                {
                  kind = Core_minimization { removed = t_idx; folded };
                  spans = [ Amber_analysis.span_of_pattern t_idx arr.(t_idx) ];
                  justification =
                    Printf.sprintf
                      "a query self-homomorphism fixing every projected \
                       variable%s maps the clause into itself without \
                       pattern %d; under DISTINCT the answer set is \
                       unchanged"
                      (match folded with
                      | [] -> ""
                      | l ->
                          " ("
                          ^ String.concat ", "
                              (List.map
                                 (fun (v, image) ->
                                   Printf.sprintf "?%s -> %s" v image)
                                 l)
                          ^ ")")
                      t_idx;
                }
                :: !steps;
              current :=
                Array.to_list arr |> List.filteri (fun i _ -> i <> t_idx);
              continue_ := true
      in
      try_idx 0
    done;
    (!current, List.rev !steps)
  end

(* ------------------------------------------------------------------ *)
(* Pass 4: Cartesian-product detection                                 *)
(* ------------------------------------------------------------------ *)

(* Variable-connected groups among the patterns that bind at least one
   variable (ground patterns are pure existence checks and join
   nothing). Same union-find discipline as
   {!Amber_analysis.component_count}, but keeping the groups. *)
let var_components patterns =
  let parent = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None ->
        Hashtbl.replace parent v v;
        v
    | Some p -> if String.equal p v then v else find p
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun pat ->
      match pattern_vars pat with
      | [] -> ()
      | v :: rest -> List.iter (union v) rest)
    patterns;
  let groups = Hashtbl.create 8 in
  List.iter
    (fun pat ->
      match pattern_vars pat with
      | [] -> ()
      | v :: _ ->
          let root = find v in
          let existing = Option.value ~default:[] (Hashtbl.find_opt groups root) in
          Hashtbl.replace groups root (pat :: existing))
    patterns;
  Hashtbl.fold (fun _ pats acc -> List.rev pats :: acc) groups []

let saturating_mul a b =
  if a <= 0 || b <= 0 then 0
  else if a > max_int / b then max_int
  else a * b

let cartesian_step ?component_rows where =
  let groups = var_components where in
  let n = List.length groups in
  if n < 2 then None
  else
    let estimated_rows =
      match component_rows with
      | None -> None
      | Some f -> Some (List.fold_left (fun acc g -> saturating_mul acc (f g)) 1 groups)
    in
    Some
      {
        kind = Cartesian_product { components = n; estimated_rows };
        spans =
          [ Amber_analysis.query_span (Printf.sprintf "%d pattern groups" n) ];
        justification =
          Printf.sprintf
            "the clause splits into %d variable-disjoint groups; the answer \
             is their Cartesian product%s"
            n
            (match estimated_rows with
            | None -> ""
            | Some e -> Printf.sprintf " (~%d rows)" e);
      }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type result = {
  ast : Ast.t;
  bindings : (string * Ast.term) list;
  steps : step list;
}

let rewrite ?(max_patterns = 16) ?(mutate = true) ?singleton ?component_rows
    (ast : Ast.t) =
  let steps = ref [] in
  let add s = steps := s :: !steps in
  let bindings = ref [] in
  let where = ref ast.Ast.where in
  (* Duplicate elimination and constant propagation feed each other (a
     substitution can create a verbatim repeat), so they alternate to a
     fixpoint. Each const-prop round eliminates one variable and each
     dedup round only fires on new repeats, so the loop terminates well
     inside this bound. *)
  let max_rounds = List.length ast.Ast.where + 4 in
  let changed = ref mutate in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    incr rounds;
    changed := false;
    let w', dup_steps = dedup_pass !where in
    if dup_steps <> [] then begin
      List.iter add dup_steps;
      where := w';
      changed := true
    end;
    match singleton with
    | None -> ()
    | Some cb -> (
        match const_prop_round ~singleton:cb !where with
        | None -> ()
        | Some (w', step, binding) ->
            add step;
            bindings := binding :: !bindings;
            where := w';
            changed := true)
  done;
  (* Variable elimination changes embedding multiplicities, so the core
     fold is sound only when the projection is a set. *)
  if mutate && ast.Ast.distinct then begin
    let protected = protected_variables ast in
    let w', min_steps = core_minimize ~max_patterns ~protected !where in
    List.iter add min_steps;
    where := w'
  end;
  (match cartesian_step ?component_rows !where with
  | None -> ()
  | Some s -> add s);
  {
    ast =
      (if !where == ast.Ast.where then ast else { ast with Ast.where = !where });
    bindings = List.rev !bindings;
    steps = List.rev !steps;
  }
