(* Engine-independent half of the static query analyzer: the diagnostic
   vocabulary, its renderings, and the lints that need only the AST.
   The dictionary/index-aware checks live in Amber.Analysis (lib/core),
   which re-exports this module. *)

type span = { pattern : int option; text : string }

let span_of_pattern i pat =
  { pattern = Some i; text = Format.asprintf "%a" Sparql.Ast.pp_pattern pat }

let query_span text = { pattern = None; text }

type proof =
  | Unknown_predicate of { iri : string }
  | Predicate_never_links of { iri : string }
  | Unknown_iri of { iri : string; position : [ `Subject | `Object ] }
  | Unknown_literal of { pred : string; lit : string }
  | Ground_pattern_absent of { subject : string; pred : string; obj : string }
  | Conflicting_literals of {
      variable : string;
      pred : string;
      lit1 : string;
      lit2 : string;
    }
  | Empty_attribute_intersection of {
      variable : string;
      attrs : (string * string) list;
    }
  | Signature_infeasible of {
      variable : string;
      feature : int;
      query_value : int;
      data_max : int;
    }
  | Multi_edge_too_wide of {
      variable : string;
      other : string;
      width : int;
      data_max : int;
    }
  | Iri_constraint_infeasible of {
      variable : string;
      iri : string;
      predicates : string list;
    }

type warning =
  | Disconnected_components of { count : int }
  | Unprojected_satellite of { variable : string }
  | Unbound_select_variable of { variable : string }
  | Duplicate_pattern of { first : int; dup : int }
  | Out_of_fragment of { reason : string }

type hint =
  | Drop_duplicate_pattern of { index : int }
  | Order_by_unbound of { variable : string }
  | Limit_zero

type diagnostic = Unsat of proof | Warning of warning | Hint of hint

type item = { diag : diagnostic; span : span option }

type report = { items : item list }

let empty_report = { items = [] }

let report_of_items items =
  let is_unsat { diag; _ } =
    match diag with Unsat _ -> true | Warning _ | Hint _ -> false
  in
  {
    items =
      List.filter is_unsat items
      @ List.filter (fun i -> not (is_unsat i)) items;
  }

let unsat_proof r =
  List.find_map
    (fun { diag; _ } ->
      match diag with Unsat p -> Some p | Warning _ | Hint _ -> None)
    r.items

let warnings r =
  List.filter_map
    (fun { diag; _ } ->
      match diag with Warning w -> Some w | Unsat _ | Hint _ -> None)
    r.items

let hints r =
  List.filter_map
    (fun { diag; _ } ->
      match diag with Hint h -> Some h | Unsat _ | Warning _ -> None)
    r.items

(* ------------------------------------------------------------------ *)
(* AST-level lints                                                     *)
(* ------------------------------------------------------------------ *)

let pattern_vars { Sparql.Ast.subject; predicate; obj } =
  List.filter_map
    (fun t ->
      match t with
      | Sparql.Ast.Var v -> Some v
      | Sparql.Ast.Iri _ | Sparql.Ast.Lit _ -> None)
    [ subject; predicate; obj ]

(* Union-find over variable names: all variables of one pattern join,
   the component count is the number of distinct roots among patterns
   that bind at least one variable. *)
let component_count patterns =
  let parent = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None ->
        Hashtbl.replace parent v v;
        v
    | Some p -> if String.equal p v then v else find p
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun pat ->
      match pattern_vars pat with
      | [] -> ()
      | v :: rest -> List.iter (union v) rest)
    patterns;
  let roots = Hashtbl.create 8 in
  Hashtbl.iter (fun v _ -> Hashtbl.replace roots (find v) ()) parent;
  Hashtbl.length roots

let pattern_equal a b =
  Sparql.Ast.term_equal a.Sparql.Ast.subject b.Sparql.Ast.subject
  && Sparql.Ast.term_equal a.Sparql.Ast.predicate b.Sparql.Ast.predicate
  && Sparql.Ast.term_equal a.Sparql.Ast.obj b.Sparql.Ast.obj

let lint_ast (ast : Sparql.Ast.t) =
  let items = ref [] in
  let add ?span diag = items := { diag; span } :: !items in
  let where = Array.of_list ast.where in
  let bound = Sparql.Ast.variables ast in
  (* SELECT variables never bound by the WHERE clause. *)
  (match ast.select with
  | Sparql.Ast.Select_all -> ()
  | Sparql.Ast.Select_vars vars ->
      List.iter
        (fun v ->
          if not (List.mem v bound) then
            add
              ~span:(query_span (Printf.sprintf "SELECT ?%s" v))
              (Warning (Unbound_select_variable { variable = v })))
        vars);
  (* Duplicate triple patterns (verbatim repeats). *)
  Array.iteri
    (fun j pat ->
      let rec first_at i =
        if i >= j then None
        else if pattern_equal where.(i) pat then Some i
        else first_at (i + 1)
      in
      match first_at 0 with
      | None -> ()
      | Some i ->
          let span = span_of_pattern j pat in
          add ~span (Warning (Duplicate_pattern { first = i; dup = j }));
          add ~span (Hint (Drop_duplicate_pattern { index = j })))
    where;
  (* Variable-disjoint components: the answer is a Cartesian product. *)
  let components = component_count ast.where in
  if components > 1 then
    add
      ~span:(query_span (Printf.sprintf "%d pattern groups" components))
      (Warning (Disconnected_components { count = components }));
  (* ORDER BY keys that are never bound sort by a constant. *)
  List.iter
    (fun (v, _) ->
      if not (List.mem v bound) then
        add
          ~span:(query_span (Printf.sprintf "ORDER BY ?%s" v))
          (Hint (Order_by_unbound { variable = v })))
    ast.order_by;
  (match ast.limit with
  | Some 0 -> add ~span:(query_span "LIMIT 0") (Hint Limit_zero)
  | Some _ | None -> ());
  List.rev !items

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let feature_name i =
  let side = if i < 4 then "incoming" else "outgoing" in
  match i mod 4 with
  | 0 -> Printf.sprintf "f1 (max multi-edge cardinality, %s)" side
  | 1 -> Printf.sprintf "f2 (distinct edge types, %s)" side
  | 2 -> Printf.sprintf "f3 (-min edge type, %s)" side
  | _ -> Printf.sprintf "f4 (max edge type, %s)" side

let pp_proof ppf = function
  | Unknown_predicate { iri } ->
      Format.fprintf ppf "predicate <%s> occurs nowhere in the data" iri
  | Predicate_never_links { iri } ->
      Format.fprintf ppf
        "predicate <%s> never links two resources (literal objects only)" iri
  | Unknown_iri { iri; position } ->
      Format.fprintf ppf "%s IRI <%s> does not occur in the data"
        (match position with `Subject -> "subject" | `Object -> "object")
        iri
  | Unknown_literal { pred; lit } ->
      Format.fprintf ppf "literal %s with predicate <%s> does not occur" lit
        pred
  | Ground_pattern_absent { subject; pred; obj } ->
      Format.fprintf ppf "ground pattern <%s> <%s> %s does not hold" subject
        pred obj
  | Conflicting_literals { variable; pred; lit1; lit2 } ->
      Format.fprintf ppf
        "?%s requires both %s and %s through <%s>, which no resource carries"
        variable lit1 lit2 pred
  | Empty_attribute_intersection { variable; attrs } ->
      Format.fprintf ppf
        "no resource carries every literal constraint on ?%s (%s)" variable
        (String.concat ", "
           (List.map (fun (p, l) -> Printf.sprintf "<%s> %s" p l) attrs))
  | Signature_infeasible { variable; feature; query_value; data_max } ->
      Format.fprintf ppf
        "?%s needs synopsis %s = %d but the data maximum is %d (Lemma 1)"
        variable (feature_name feature) query_value data_max
  | Multi_edge_too_wide { variable; other; width; data_max } ->
      Format.fprintf ppf
        "?%s -- %s carries %d distinct predicates; the widest data \
         multi-edge has %d"
        variable other width data_max
  | Iri_constraint_infeasible { variable; iri; predicates } ->
      Format.fprintf ppf
        "?%s must reach <%s> through {%s}, but no data neighbour of it does"
        variable iri
        (String.concat ", " (List.map (fun p -> "<" ^ p ^ ">") predicates))

let proof_to_string p = Format.asprintf "%a" pp_proof p

let pp_warning ppf = function
  | Disconnected_components { count } ->
      Format.fprintf ppf
        "pattern splits into %d variable-disjoint groups: the answer is \
         their Cartesian product"
        count
  | Unprojected_satellite { variable } ->
      Format.fprintf ppf
        "?%s is a satellite vertex never projected: it only constrains \
         existence"
        variable
  | Unbound_select_variable { variable } ->
      Format.fprintf ppf
        "SELECT ?%s is never bound by the WHERE clause (always-null column)"
        variable
  | Duplicate_pattern { first; dup } ->
      Format.fprintf ppf "pattern %d repeats pattern %d verbatim" dup first
  | Out_of_fragment { reason } ->
      Format.fprintf ppf "outside the supported fragment: %s" reason

let pp_hint ppf = function
  | Drop_duplicate_pattern { index } ->
      Format.fprintf ppf "drop duplicate pattern %d" index
  | Order_by_unbound { variable } ->
      Format.fprintf ppf "ORDER BY ?%s sorts by an unbound variable" variable
  | Limit_zero ->
      Format.fprintf ppf "LIMIT 0 always yields the empty answer"

let severity = function
  | Unsat _ -> "error"
  | Warning _ -> "warning"
  | Hint _ -> "hint"

let kind = function
  | Unsat (Unknown_predicate _) -> "unknown-predicate"
  | Unsat (Predicate_never_links _) -> "predicate-never-links"
  | Unsat (Unknown_iri _) -> "unknown-iri"
  | Unsat (Unknown_literal _) -> "unknown-literal"
  | Unsat (Ground_pattern_absent _) -> "ground-pattern-absent"
  | Unsat (Conflicting_literals _) -> "conflicting-literals"
  | Unsat (Empty_attribute_intersection _) -> "empty-attribute-intersection"
  | Unsat (Signature_infeasible _) -> "signature-infeasible"
  | Unsat (Multi_edge_too_wide _) -> "multi-edge-too-wide"
  | Unsat (Iri_constraint_infeasible _) -> "iri-constraint-infeasible"
  | Warning (Disconnected_components _) -> "disconnected-components"
  | Warning (Unprojected_satellite _) -> "unprojected-satellite"
  | Warning (Unbound_select_variable _) -> "unbound-select-variable"
  | Warning (Duplicate_pattern _) -> "duplicate-pattern"
  | Warning (Out_of_fragment _) -> "out-of-fragment"
  | Hint (Drop_duplicate_pattern _) -> "drop-duplicate-pattern"
  | Hint (Order_by_unbound _) -> "order-by-unbound"
  | Hint Limit_zero -> "limit-zero"

let pp_diag ppf = function
  | Unsat p -> pp_proof ppf p
  | Warning w -> pp_warning ppf w
  | Hint h -> pp_hint ppf h

let pp_item ppf { diag; span } =
  Format.fprintf ppf "%s[%s]: %a" (severity diag) (kind diag) pp_diag diag;
  match span with
  | None -> ()
  | Some { pattern; text } -> (
      match pattern with
      | Some i -> Format.fprintf ppf "@,    at pattern %d: %s" i text
      | None -> Format.fprintf ppf "@,    at: %s" text)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter (fun item -> Format.fprintf ppf "%a@," pp_item item) r.items;
  (match unsat_proof r with
  | Some _ -> Format.fprintf ppf "verdict: UNSAT (the answer set is empty)"
  | None ->
      let w = List.length (warnings r) and h = List.length (hints r) in
      if w = 0 && h = 0 then Format.fprintf ppf "verdict: clean"
      else Format.fprintf ppf "verdict: ok (%d warning%s, %d hint%s)" w
        (if w = 1 then "" else "s")
        h
        (if h = 1 then "" else "s"));
  Format.fprintf ppf "@]"

(* JSON string escaping per RFC 8259. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_to_json r =
  let item_json { diag; span } =
    let message = Format.asprintf "%a" pp_diag diag in
    let span_fields =
      match span with
      | None -> ""
      | Some { pattern; text } ->
          let at =
            match pattern with
            | Some i -> Printf.sprintf {|,"pattern":%d|} i
            | None -> ""
          in
          Printf.sprintf {|%s,"span":"%s"|} at (json_escape text)
    in
    Printf.sprintf {|{"severity":"%s","kind":"%s","message":"%s"%s}|}
      (severity diag) (kind diag) (json_escape message) span_fields
  in
  Printf.sprintf {|{"unsat":%b,"diagnostics":[%s]}|}
    (unsat_proof r <> None)
    (String.concat "," (List.map item_json r.items))
