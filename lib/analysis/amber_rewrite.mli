(** Semantic query rewriting — equivalence-preserving simplification of
    a SPARQL basic graph pattern, run {e before} decomposition and
    planning.

    This module is the engine-independent half of the rewriter: the
    step vocabulary, its renderings, and the passes that need nothing
    but the AST (duplicate elimination, homomorphic core minimization,
    Cartesian-product detection). The data-dependent pass — constant
    propagation, which needs dictionary and adjacency lookups — is
    parameterized by a {!singleton} callback so the library stays free
    of engine types; [Amber.Rewrite] (lib/core) supplies the
    index-backed callback and the blow-up estimator.

    Soundness contract, checked by the differential test suite against
    the brute-force oracle:

    - {b duplicate elimination} is unconditionally sound: a solution
      mapping satisfies a verbatim repeat of a pattern iff it satisfies
      the original, and BGP solution multiplicity does not depend on
      pattern repetition.
    - {b core minimization} removes a pattern [t] only when a query
      self-homomorphism [h] — identity on every {e protected} variable
      (projected or named in ORDER BY) and on all constants — maps the
      whole clause into the clause without [t]. Then for any solution μ
      of the reduced query, μ∘h solves the original and agrees with μ
      on the protected variables, so the {e projected answer set} is
      unchanged. Because variable elimination can change embedding
      {e multiplicities}, this pass only runs under [DISTINCT].
    - {b constant propagation} substitutes [?v := c] only when the
      {!singleton} callback certifies that the data admits exactly one
      binding for [?v] in some pattern; the substitution is then a
      multiplicity-preserving bijection on solutions, sound under bag
      semantics too. The forced value is returned as a binding so the
      caller can re-attach it to projected rows.
    - {b Cartesian-product detection} never changes the query: it only
      surfaces a structured step. *)

type kind =
  | Duplicate_pattern of { first : int; dup : int }
      (** Pattern [dup] repeated pattern [first] verbatim and was
          dropped (indices into the clause at the time of removal). *)
  | Core_minimization of { removed : int; folded : (string * string) list }
      (** Pattern [removed] was folded into the rest by a
          self-homomorphism; [folded] lists its non-identity variable
          mappings as [(variable, image text)]. *)
  | Constant_propagation of { variable : string; value : string }
      (** [?variable] was substituted by the ground term [value]
          (printed form) everywhere in the clause. *)
  | Cartesian_product of { components : int; estimated_rows : int option }
      (** The (rewritten) clause splits into [components]
          variable-disjoint groups; the answer is their Cartesian
          product, estimated at [estimated_rows] when a cost model was
          available. Advisory — the clause is not modified. *)

type step = {
  kind : kind;
  spans : Amber_analysis.span list;
      (** removed / substituted patterns, indexed into the clause as it
          stood when the pass fired *)
  justification : string;  (** one-line human-readable soundness note *)
}

val kind_slug : kind -> string
(** Stable machine-readable slug: ["duplicate-pattern"],
    ["core-minimization"], ["constant-propagation"],
    ["cartesian-product"]. *)

val slugs : step list -> string list
(** [kind_slug] of every step, in application order. *)

val pp_step : Format.formatter -> step -> unit
val step_to_json : step -> string
val steps_to_json : step list -> string
(** JSON array of {!step_to_json} objects:
    [{"kind":…,"justification":…,"spans":[{"pattern":…,"text":…},…],…}]
    with kind-specific fields ([first]/[dup], [removed]/[folded],
    [variable]/[value], [components]/[estimated_rows]). *)

val protected_variables : Sparql.Ast.t -> string list
(** The variables core minimization must fix: projected variables
    ([SELECT *] protects everything) plus ORDER BY keys. *)

type result = {
  ast : Sparql.Ast.t;
      (** the rewritten query — only [where] ever differs from the
          input *)
  bindings : (string * Sparql.Ast.term) list;
      (** values forced by constant propagation; substituted variables
          no longer occur in [ast.where], so callers projecting the
          {e original} SELECT list must re-attach these to rows *)
  steps : step list;  (** applied rewrites, in application order *)
}

val rewrite :
  ?max_patterns:int ->
  ?mutate:bool ->
  ?singleton:(Sparql.Ast.triple_pattern -> (string * Sparql.Ast.term) option) ->
  ?component_rows:(Sparql.Ast.triple_pattern list -> int) ->
  Sparql.Ast.t ->
  result
(** Run all passes to fixpoint: duplicate elimination, constant
    propagation (when [singleton] is given), core minimization (under
    [DISTINCT] only), then Cartesian detection.

    @param max_patterns clause-size ceiling for the core-minimization
    search (default 16); larger clauses skip that pass — the
    backtracking homomorphism search is exponential in the worst case
    and also internally budgeted, so a pathological clause degrades to
    a no-op, never to a wrong answer.
    @param mutate when [false], skip every clause-changing pass and run
    only the advisory Cartesian detection; the result's [ast] is the
    input and [bindings] is empty. Callers whose evaluation semantics
    depend on the clause's literal shape (the engine's open-objects
    extension lifts object variables by occurrence count, so removing a
    duplicate or grounding a subject changes which literals bind) must
    pass [false].
    @param singleton certifies data-forced bindings: given a pattern,
    return [Some (variable, ground term)] when the data admits exactly
    one binding for that variable in that pattern considered alone.
    The callback's answer is trusted — an unsound callback yields an
    unsound rewrite.
    @param component_rows estimated row count of one variable-connected
    pattern group, used only for the Cartesian step's blow-up figure. *)
