type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string

(* --- parsing -------------------------------------------------------- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Malformed (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

let hex st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad \\u escape"

(* Decodes \uXXXX to UTF-8 (surrogate pairs unsupported: kept as the
   replacement character) — enough for the ASCII-escaped output every
   renderer in this repo produces. *)
let add_codepoint buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1
        | Some 'u' when st.pos + 4 < String.length st.src ->
            let cp =
              (hex st st.src.[st.pos + 1] lsl 12)
              lor (hex st st.src.[st.pos + 2] lsl 8)
              lor (hex st st.src.[st.pos + 3] lsl 4)
              lor hex st st.src.[st.pos + 4]
            in
            add_codepoint buf (if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD else cp);
            st.pos <- st.pos + 5
        | _ -> fail st "bad escape");
        go ()
    | Some c when Char.code c < 0x20 -> fail st "raw control character in string"
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let numeric c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.src && numeric st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec member () =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          members := (key, v) :: !members;
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              member ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or '}'"
        in
        member ();
        Obj (List.rev !members)
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec item () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              item ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or ']'"
        in
        item ();
        Arr (List.rev !items)
      end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let parse_opt s = match parse s with v -> Some v | exception Malformed _ -> None

(* --- accessors ------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function Arr items -> items | _ -> []
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

(* --- printing ------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print buf v)
        items;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          print buf v)
        kvs;
      Buffer.add_char buf '}'

let to_text v =
  let buf = Buffer.create 256 in
  print buf v;
  Buffer.contents buf
