(** Metrics registry: named counters and histograms.

    A registry owns a set of uniquely-named metrics; registration is
    idempotent — asking twice for the same name returns the same metric,
    so instrumentation sites can register at point of use without
    coordination. Counters are [Atomic.t] ints: increments from parallel
    worker domains are never lost, at the cost of one atomic RMW per
    increment (in the single-store case this compiles to the same
    uncontended fetch-and-add — still cheap enough to leave enabled on
    hot paths). Histograms remain single-writer: the engine observes
    latencies only from the domain that ran the query, so their plain
    mutable fields are not a race in practice; concurrent [observe] of
    one histogram from several domains would drop updates. Registration
    itself (the name table) is not synchronised — register metrics at
    module init or from one domain, as the engine does.

    Rendering targets the Prometheus text exposition format (scraped by
    [GET /metrics] on the endpoint) and a JSON object (embedded in
    benchmark reports). *)

type t
(** A metric registry. *)

val create : unit -> t

val default : t
(** The process-wide registry: the engine, endpoint and CLI all record
    here unless told otherwise. *)

(** {1 Counters} *)

type counter

val counter :
  ?help:string -> ?labels:(string * string) list -> t -> string -> counter
(** Register (or look up) a counter. [labels] (default none) key the
    sample: each distinct label combination under one base name is its
    own counter, rendered Prometheus-style as [name{k="v",…}] while
    sharing a single [# HELP]/[# TYPE] family header. @raise
    Invalid_argument if the keyed name is already registered as a
    histogram. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : counter -> int -> unit
(** Overwrite the value — for counters mirrored from an external
    monotonic source (e.g. an index's lifetime probe count). *)

val counter_value : counter -> int

(** {1 Histograms} *)

type histogram

val log_buckets : lo:float -> ratio:float -> count:int -> float array
(** [count] upper bounds [lo, lo*ratio, lo*ratio², …] — the fixed
    log-scale ladder used for latency histograms. *)

val default_latency_buckets : float array
(** 18 buckets from 10 µs to ~1.3 s, ratio 2 (seconds). *)

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  t ->
  string ->
  histogram
(** Register (or look up) a histogram. [labels] behave as for
    {!counter}; on [_bucket] samples they are merged with the [le]
    label. [buckets] (sorted upper bounds, exclusive of the implicit
    [+Inf]) defaults to {!default_latency_buckets}; it is fixed at first
    registration. @raise Invalid_argument on a name/type clash. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float * int) array
(** Cumulative counts per upper bound, Prometheus-style: the pair
    [(le, n)] counts observations [<= le]; the last entry is
    [(infinity, total)]. *)

(** {1 Rendering} *)

val render_prometheus : t -> string
(** Prometheus text exposition format (version 0.0.4): [# HELP] /
    [# TYPE] comments, counter samples, and [_bucket]/[_sum]/[_count]
    series per histogram. *)

val render_json : t -> string
(** One JSON object keyed by metric name (labeled metrics by the full
    keyed name, e.g. ["name{k=\"v\"}"]):
    [{"name":{"type":"counter","value":n}}] and
    [{"name":{"type":"histogram","count":n,"sum":s,"buckets":[{"le":b,"count":n},…]}}]. *)

val reset : t -> unit
(** Zero every metric (tests and between-run isolation). *)
