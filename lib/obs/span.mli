(** Tracing spans: a per-operation tree of named, timed scopes.

    A profiled operation opens a {e root} span; nested {!with_} calls
    attach timed child spans, forming the phase tree a profile report
    prints (parse → decompose → candidates → match → enumerate). When no
    root is active, {!with_} runs its thunk directly — one ref read, no
    clock call — so instrumentation left in hot paths is near-free
    unless a profiler asked for it.

    Collection is {e domain-safe}: each domain carries its own collector
    stack in domain-local storage ([Domain.DLS]), so the parallel engine
    is profiled too — every worker domain records its chunk under its
    own root ({!collect}) and the finished subtree is merged back into
    the parent phase tree with {!graft} (in deterministic chunk order,
    by the caller). Each span remembers which domain ran it, which the
    Chrome-trace exporter renders as separate thread lanes. *)

type t
(** A finished span: name, start time, duration, owning domain,
    annotations, children. *)

val name : t -> string

val start : t -> float
(** Wall-clock time (Unix epoch seconds) when the span opened. *)

val duration : t -> float
(** Seconds of wall clock spent inside the span (children included). *)

val domain : t -> int
(** Id of the OCaml domain that ran the span — the trace exporter's
    thread id, separating the parallel engine's per-domain lanes. *)

val children : t -> t list
(** In start order. *)

val meta : t -> (string * string) list
(** Annotations attached with {!annotate}, in attachment order. *)

val find : t -> string -> t option
(** First child (depth-first, the span itself included) with the given
    name. *)

val active : unit -> bool
(** Is a root span currently collecting {e on this domain}? *)

val root : name:string -> (unit -> 'a) -> 'a * t
(** Run the thunk under a fresh root span on the current domain and
    return its result plus the completed tree. Exceptions propagate
    after the tree is closed. *)

val collect : name:string -> (unit -> 'a) -> 'a * t
(** Alias of {!root}, named for the worker-domain side of the parallel
    engine: collect a subtree on this domain for a later {!graft} into
    the parent tree. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** Time the thunk as a child of the innermost open span of the current
    domain; without an active root, just run it. *)

val annotate : string -> string -> unit
(** Attach a key/value pair to the innermost open span of the current
    domain; no-op without an active root. *)

val graft : t -> unit
(** Append an already-finished tree as a child of the innermost open
    span of the current domain; no-op without an active root. The merge
    point for per-domain subtrees — call it from the domain that owns
    the open parent, in whatever order should appear in the report. *)

val pp : Format.formatter -> t -> unit
(** Indented phase tree with millisecond durations and annotations. *)

val to_json : t -> string
(** [{"name":…,"ms":…,"meta":{…},"children":[…]}]. *)

val to_chrome_json : ?pid:int -> t -> string
(** The tree as Chrome trace-event JSON (openable in Perfetto or
    [chrome://tracing]): one complete ["ph":"X"] event per span, with
    microsecond [ts]/[dur] relative to the root's start, [tid] the
    span's domain id, and annotations as [args]. [pid] defaults to 0. *)
