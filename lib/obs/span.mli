(** Tracing spans: a per-operation tree of named, timed scopes.

    A profiled operation opens a {e root} span; nested {!with_} calls
    attach timed child spans, forming the phase tree a profile report
    prints (parse → decompose → candidates → match → enumerate). When no
    root is active, {!with_} runs its thunk directly — one ref read, no
    clock call — so instrumentation left in hot paths is near-free
    unless a profiler asked for it.

    The collector is a single implicit stack, not domain-safe: profiling
    is meant for the sequential query path (the parallel engine runs
    un-profiled). *)

type t
(** A finished span: name, duration, annotations, children. *)

val name : t -> string

val duration : t -> float
(** Seconds of wall clock spent inside the span (children included). *)

val children : t -> t list
(** In start order. *)

val meta : t -> (string * string) list
(** Annotations attached with {!annotate}, in attachment order. *)

val find : t -> string -> t option
(** First child (depth-first, the span itself included) with the given
    name. *)

val active : unit -> bool
(** Is a root span currently collecting? *)

val root : name:string -> (unit -> 'a) -> 'a * t
(** Run the thunk under a fresh root span and return its result plus the
    completed tree. Exceptions propagate after the tree is closed. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** Time the thunk as a child of the innermost open span; without an
    active root, just run it. *)

val annotate : string -> string -> unit
(** Attach a key/value pair to the innermost open span; no-op without an
    active root. *)

val pp : Format.formatter -> t -> unit
(** Indented phase tree with millisecond durations and annotations. *)

val to_json : t -> string
(** [{"name":…,"ms":…,"meta":{…},"children":[…]}]. *)
