(** Resource accounting: GC allocation deltas and resident-memory sizes.

    Two complementary probes. {!gc_delta} measures what an operation
    {e allocated} (the flight recorder attaches one to every query);
    {!reachable_bytes} measures what a structure {e holds} (the
    per-index [amber_index_resident_bytes] gauges and the benchmark's
    bytes-per-triple figures).

    Both read the GC counters of the {e calling domain} only:
    allocation performed by parallel worker domains is not attributed
    to the caller's delta. The flight recorder documents the same
    caveat per record. Minor words come from [Gc.minor_words] (the live
    young-pointer offset) rather than [Gc.quick_stat], whose
    [minor_words] field only refreshes at minor collections and would
    report zero for short queries. *)

type gc_delta = {
  minor_words : float;
  major_words : float;  (** includes words promoted from the minor heap *)
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

val zero_delta : gc_delta

val gc_delta : (unit -> 'a) -> 'a * gc_delta
(** Run the thunk and return its result plus the GC delta across it
    (calling domain only). Exceptions propagate; the delta of a raising
    thunk is lost. *)

type gc_mark
(** A point-in-time GC reading — the imperative form of {!gc_delta} for
    callers that must read the delta on exception paths too. *)

val gc_mark : unit -> gc_mark
val gc_since : gc_mark -> gc_delta

val allocated_bytes : gc_delta -> float
(** Total bytes allocated: minor + major words, with promoted words
    counted once. *)

val delta_to_json : gc_delta -> string
(** One JSON object with the raw word counts and [allocated_bytes]. *)

val word_bytes : int
(** Bytes per OCaml word on this platform (8 on 64-bit). *)

val reachable_bytes : 'a -> int
(** Bytes of heap reachable from the value ([Obj.reachable_words] ×
    word size) — the resident cost of a structure. Walks the whole
    object graph: linear in the structure's size, so probe per scrape
    or per report, not per query. Blocks shared between two roots are
    counted from each root that reaches them; immediates report 0. *)

val live_heap_bytes : unit -> float
(** Total major-heap words of the process, in bytes ([Gc.quick_stat];
    includes free space on the major heap's free lists). *)
