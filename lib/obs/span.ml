type t = {
  span_name : string;
  mutable duration : float;
  mutable annotations : (string * string) list;  (* reversed while open *)
  mutable kids : t list;  (* reversed while open *)
}

let name t = t.span_name
let duration t = t.duration
let children t = t.kids
let meta t = t.annotations

let rec find t n =
  if t.span_name = n then Some t
  else
    List.fold_left
      (fun acc kid -> match acc with Some _ -> acc | None -> find kid n)
      None t.kids

(* The innermost open span; [[]] means no profiler is collecting. *)
let stack : t list ref = ref []

let active () = !stack <> []

let now = Unix.gettimeofday

let fresh name = { span_name = name; duration = 0.; annotations = []; kids = [] }

let close node t0 =
  node.duration <- now () -. t0;
  node.annotations <- List.rev node.annotations;
  node.kids <- List.rev node.kids

let root ~name f =
  let node = fresh name in
  let saved = !stack in
  stack := [ node ];
  let t0 = now () in
  match f () with
  | v ->
      close node t0;
      stack := saved;
      (v, node)
  | exception e ->
      close node t0;
      stack := saved;
      raise e

let with_ ~name f =
  match !stack with
  | [] -> f ()
  | parent :: _ as open_spans ->
      let node = fresh name in
      parent.kids <- node :: parent.kids;
      stack := node :: open_spans;
      let t0 = now () in
      let pop () =
        close node t0;
        stack := open_spans
      in
      (match f () with
      | v ->
          pop ();
          v
      | exception e ->
          node.annotations <- ("raised", Printexc.to_string e) :: node.annotations;
          pop ();
          raise e)

let annotate key value =
  match !stack with
  | [] -> ()
  | top :: _ -> top.annotations <- (key, value) :: top.annotations

let pp ppf t =
  let rec go indent t =
    Format.fprintf ppf "%s%-*s %10.3f ms" indent
      (max 1 (24 - String.length indent))
      t.span_name (1000. *. t.duration);
    List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) t.annotations;
    Format.pp_print_newline ppf ();
    List.iter (go (indent ^ "  ")) t.kids
  in
  go "" t

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_json t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf {|{"name":"%s","ms":%.6g|} (json_escape t.span_name)
       (1000. *. t.duration));
  if t.annotations <> [] then begin
    Buffer.add_string buf {|,"meta":{|};
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v)))
      t.annotations;
    Buffer.add_char buf '}'
  end;
  if t.kids <> [] then begin
    Buffer.add_string buf {|,"children":[|};
    List.iteri
      (fun i kid ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (to_json kid))
      t.kids;
    Buffer.add_char buf ']'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf
