type t = {
  span_name : string;
  mutable start : float;  (* epoch seconds when the span opened *)
  mutable duration : float;
  domain : int;  (* id of the domain that ran the span *)
  mutable annotations : (string * string) list;  (* reversed while open *)
  mutable kids : t list;  (* reversed while open *)
}

let name t = t.span_name
let start t = t.start
let duration t = t.duration
let domain t = t.domain
let children t = t.kids
let meta t = t.annotations

let rec find t n =
  if t.span_name = n then Some t
  else
    List.fold_left
      (fun acc kid -> match acc with Some _ -> acc | None -> find kid n)
      None t.kids

(* One collector stack per domain (Domain.DLS): the innermost open span
   of the *current* domain; [[]] means this domain is not collecting.
   Each worker domain of the parallel engine opens its own root with
   [collect] and the finished subtree is grafted into the parent tree
   with [graft] — no cross-domain mutation of open spans ever occurs. *)
let stack_key : t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let active () = !(stack ()) <> []

let now = Unix.gettimeofday

let fresh name =
  {
    span_name = name;
    start = 0.;
    duration = 0.;
    domain = (Domain.self () :> int);
    annotations = [];
    kids = [];
  }

let close node =
  node.duration <- now () -. node.start;
  node.annotations <- List.rev node.annotations;
  node.kids <- List.rev node.kids

let root ~name f =
  let node = fresh name in
  let stack = stack () in
  let saved = !stack in
  stack := [ node ];
  node.start <- now ();
  match f () with
  | v ->
      close node;
      stack := saved;
      (v, node)
  | exception e ->
      close node;
      stack := saved;
      raise e

let collect = root

let with_ ~name f =
  let stack = stack () in
  match !stack with
  | [] -> f ()
  | parent :: _ as open_spans ->
      let node = fresh name in
      parent.kids <- node :: parent.kids;
      stack := node :: open_spans;
      node.start <- now ();
      let pop () =
        close node;
        stack := open_spans
      in
      (match f () with
      | v ->
          pop ();
          v
      | exception e ->
          node.annotations <- ("raised", Printexc.to_string e) :: node.annotations;
          pop ();
          raise e)

let annotate key value =
  match !(stack ()) with
  | [] -> ()
  | top :: _ -> top.annotations <- (key, value) :: top.annotations

let graft child =
  match !(stack ()) with
  | [] -> ()
  | parent :: _ -> parent.kids <- child :: parent.kids

let pp ppf t =
  let rec go indent t =
    Format.fprintf ppf "%s%-*s %10.3f ms" indent
      (max 1 (24 - String.length indent))
      t.span_name (1000. *. t.duration);
    List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) t.annotations;
    Format.pp_print_newline ppf ();
    List.iter (go (indent ^ "  ")) t.kids
  in
  go "" t

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_json t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf {|{"name":"%s","ms":%.6g|} (json_escape t.span_name)
       (1000. *. t.duration));
  if t.annotations <> [] then begin
    Buffer.add_string buf {|,"meta":{|};
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v)))
      t.annotations;
    Buffer.add_char buf '}'
  end;
  if t.kids <> [] then begin
    Buffer.add_string buf {|,"children":[|};
    List.iteri
      (fun i kid ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (to_json kid))
      t.kids;
    Buffer.add_char buf ']'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* --- Chrome trace-event / Perfetto export --------------------------- *)

(* One complete ("ph":"X") event per span. Timestamps are microseconds
   relative to the root span's start, so the trace opens at t=0; the
   thread id is the OCaml domain that ran the span, which renders the
   parallel engine's per-domain chunks as separate lanes in Perfetto. *)
let to_chrome_json ?(pid = 0) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf {|{"displayTimeUnit":"ms","traceEvents":[|};
  let first = ref true in
  let rec emit node =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf
      (Printf.sprintf
         {|{"name":"%s","cat":"amber","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d|}
         (json_escape node.span_name)
         (1e6 *. (node.start -. t.start))
         (1e6 *. node.duration)
         pid node.domain);
    if node.annotations <> [] then begin
      Buffer.add_string buf {|,"args":{|};
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v)))
        node.annotations;
      Buffer.add_char buf '}'
    end;
    Buffer.add_char buf '}';
    List.iter emit node.kids
  in
  emit t;
  Buffer.add_string buf "]}";
  Buffer.contents buf
