type status = Ok | Timeout | Unsat | Error of string | Update | Compaction

let status_slug = function
  | Ok -> "ok"
  | Timeout -> "timeout"
  | Unsat -> "unsat"
  | Error _ -> "error"
  | Update -> "update"
  | Compaction -> "compaction"

type record = {
  id : int;
  at : float;
  query : string;
  hash : string;
  status : status;
  seconds : float;
  rows : int;
  truncated : bool;
  domains : int;
  core_order : string list list;
  plan_mode : string;
  plan_seeds : (string * string * int * int) list;
  rewrites : string list;
  phases : (string * float) list;
  candidates_scanned : int;
  solutions : int;
  index_probes : int;
  cache_hits : int;
  cache_misses : int;
  analysis : string option;
  gc : Resource.gc_delta;
  slow : bool;
}

let hash_query text = String.sub (Digest.to_hex (Digest.string text)) 0 12

type t = {
  lock : Mutex.t;
  mutable ring : record option array;
  mutable next_slot : int;  (* ring index of the next write *)
  mutable next_id : int;  (* sequence number of the next captured record *)
  mutable seen : int;  (* queries offered, captured or not *)
  mutable sampled_out : int;
  mutable sample_rate : float;
  mutable sample_acc : float;  (* deterministic fractional sampler *)
  mutable slow_threshold : float option;
  mutable sink : (string * out_channel) option;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Query_log.create: capacity < 1";
  {
    lock = Mutex.create ();
    ring = Array.make capacity None;
    next_slot = 0;
    next_id = 0;
    seen = 0;
    sampled_out = 0;
    sample_rate = 1.0;
    sample_acc = 0.0;
    slow_threshold = None;
    sink = None;
  }

let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let configure ?capacity ?sample_rate ?slow_threshold t =
  locked t (fun () ->
      (match capacity with
      | Some c ->
          if c < 1 then invalid_arg "Query_log.configure: capacity < 1";
          if c <> Array.length t.ring then begin
            t.ring <- Array.make c None;
            t.next_slot <- 0
          end
      | None -> ());
      (match sample_rate with
      | Some r -> t.sample_rate <- Float.max 0. (Float.min 1. r)
      | None -> ());
      match slow_threshold with
      | Some s -> t.slow_threshold <- s
      | None -> ())

let close_sink_locked t =
  match t.sink with
  | Some (_, oc) ->
      (try close_out oc with Sys_error _ -> ());
      t.sink <- None
  | None -> ()

let set_sink t path =
  locked t (fun () ->
      close_sink_locked t;
      match path with
      | None -> ()
      | Some path ->
          t.sink <-
            Some (path, open_out_gen [ Open_append; Open_creat ] 0o644 path))

let sink_path t = locked t (fun () -> Option.map fst t.sink)

(* --- JSON ----------------------------------------------------------- *)

let record_to_value r =
  Json.Obj
    [
      ("id", Json.Num (float_of_int r.id));
      ("at", Json.Num r.at);
      ("query", Json.Str r.query);
      ("hash", Json.Str r.hash);
      ("status", Json.Str (status_slug r.status));
      ( "error",
        match r.status with Error msg -> Json.Str msg | _ -> Json.Null );
      ("seconds", Json.Num r.seconds);
      ("rows", Json.Num (float_of_int r.rows));
      ("truncated", Json.Bool r.truncated);
      ("domains", Json.Num (float_of_int r.domains));
      ( "core_order",
        Json.Arr
          (List.map
             (fun comp -> Json.Arr (List.map (fun v -> Json.Str v) comp))
             r.core_order) );
      ("plan", Json.Str r.plan_mode);
      ( "plan_seeds",
        Json.Arr
          (List.map
             (fun (variable, strategy, est, actual) ->
               Json.Obj
                 [
                   ("variable", Json.Str variable);
                   ("strategy", Json.Str strategy);
                   ("estimate", Json.Num (float_of_int est));
                   ("actual", Json.Num (float_of_int actual));
                 ])
             r.plan_seeds) );
      ("rewrites", Json.Arr (List.map (fun s -> Json.Str s) r.rewrites));
      ( "phases",
        Json.Obj (List.map (fun (name, s) -> (name, Json.Num s)) r.phases) );
      ("candidates_scanned", Json.Num (float_of_int r.candidates_scanned));
      ("solutions", Json.Num (float_of_int r.solutions));
      ("index_probes", Json.Num (float_of_int r.index_probes));
      ("cache_hits", Json.Num (float_of_int r.cache_hits));
      ("cache_misses", Json.Num (float_of_int r.cache_misses));
      ( "analysis",
        match r.analysis with Some a -> Json.Str a | None -> Json.Null );
      ( "gc",
        Json.Obj
          [
            ("minor_words", Json.Num r.gc.Resource.minor_words);
            ("major_words", Json.Num r.gc.Resource.major_words);
            ("promoted_words", Json.Num r.gc.Resource.promoted_words);
            ( "minor_collections",
              Json.Num (float_of_int r.gc.Resource.minor_collections) );
            ( "major_collections",
              Json.Num (float_of_int r.gc.Resource.major_collections) );
            ("allocated_bytes", Json.Num (Resource.allocated_bytes r.gc));
          ] );
      ("slow", Json.Bool r.slow);
    ]

let record_to_json r = Json.to_text (record_to_value r)

(* --- capture -------------------------------------------------------- *)

(* Sampling is a deterministic fractional accumulator, not a coin flip:
   at rate r every ⌈1/r⌉-ish query is kept, which tests can rely on.
   Slow queries (past the threshold) and non-[Ok] outcomes are always
   captured — the records an operator actually goes looking for. *)
let record t r =
  locked t (fun () ->
      t.seen <- t.seen + 1;
      let slow =
        match t.slow_threshold with
        | Some threshold -> r.seconds >= threshold
        | None -> false
      in
      let keep =
        slow || r.status <> Ok
        ||
        (t.sample_acc <- t.sample_acc +. t.sample_rate;
         if t.sample_acc >= 1.0 then begin
           t.sample_acc <- t.sample_acc -. 1.0;
           true
         end
         else false)
      in
      if not keep then t.sampled_out <- t.sampled_out + 1
      else begin
        let r = { r with id = t.next_id; slow } in
        t.next_id <- t.next_id + 1;
        t.ring.(t.next_slot) <- Some r;
        t.next_slot <- (t.next_slot + 1) mod Array.length t.ring;
        match t.sink with
        | Some (_, oc) ->
            output_string oc (record_to_json r);
            output_char oc '\n';
            flush oc
        | None -> ()
      end)

let recent ?n t =
  locked t (fun () ->
      let cap = Array.length t.ring in
      let wanted = match n with Some n -> max 0 (min n cap) | None -> cap in
      let out = ref [] in
      (* Walk backwards from the newest slot; stop at empty slots (the
         ring fills before it wraps). *)
      (try
         for k = 1 to wanted do
           match t.ring.((t.next_slot - k + (k * cap)) mod cap) with
           | Some r -> out := r :: !out
           | None -> raise Exit
         done
       with Exit -> ());
      List.rev !out)

let to_json ?n t =
  "[" ^ String.concat "," (List.map record_to_json (recent ?n t)) ^ "]"

let stats t =
  locked t (fun () -> (t.seen, t.next_id, t.sampled_out))

let capacity t = locked t (fun () -> Array.length t.ring)

let clear t =
  locked t (fun () ->
      Array.fill t.ring 0 (Array.length t.ring) None;
      t.next_slot <- 0;
      t.next_id <- 0;
      t.seen <- 0;
      t.sampled_out <- 0;
      t.sample_acc <- 0.0)
