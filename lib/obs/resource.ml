type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let zero_delta =
  {
    minor_words = 0.;
    major_words = 0.;
    promoted_words = 0.;
    minor_collections = 0;
    major_collections = 0;
  }

let word_bytes = Sys.word_size / 8

(* [Gc.quick_stat] only refreshes [minor_words] at minor collections:
   a query that finishes before one would report zero allocation.
   [Gc.minor_words ()] reads the live young-pointer offset, so marks
   pair the cheap stat with the precise per-domain minor counter. *)
type gc_mark = { stat : Gc.stat; minor : float }

let delta_between (a : gc_mark) (b : gc_mark) =
  {
    minor_words = b.minor -. a.minor;
    major_words = b.stat.Gc.major_words -. a.stat.Gc.major_words;
    promoted_words = b.stat.Gc.promoted_words -. a.stat.Gc.promoted_words;
    minor_collections =
      b.stat.Gc.minor_collections - a.stat.Gc.minor_collections;
    major_collections =
      b.stat.Gc.major_collections - a.stat.Gc.major_collections;
  }

let gc_mark () = { stat = Gc.quick_stat (); minor = Gc.minor_words () }
let gc_since mark = delta_between mark (gc_mark ())

let gc_delta f =
  let before = gc_mark () in
  match f () with
  | v -> (v, delta_between before (gc_mark ()))
  | exception e ->
      (* The caller cannot see the delta of a raising thunk; re-raise
         untouched. *)
      raise e

let allocated_bytes d =
  (* Promoted words live in both minor_words and major_words; subtract
     them once so the total counts each allocated word once. *)
  (d.minor_words +. d.major_words -. d.promoted_words) *. float_of_int word_bytes

let delta_to_json d =
  Printf.sprintf
    {|{"minor_words":%.0f,"major_words":%.0f,"promoted_words":%.0f,"minor_collections":%d,"major_collections":%d,"allocated_bytes":%.0f}|}
    d.minor_words d.major_words d.promoted_words d.minor_collections
    d.major_collections (allocated_bytes d)

let reachable_bytes v =
  (* [Obj.reachable_words] walks the object graph from this root alone;
     blocks shared with other roots are counted for each root that can
     reach them. Immediates occupy no heap. *)
  Obj.reachable_words (Obj.repr v) * word_bytes

let live_heap_bytes () =
  (float_of_int (Gc.quick_stat ()).Gc.heap_words) *. float_of_int word_bytes
