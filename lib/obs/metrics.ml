type counter = { c_name : string; c_help : string; mutable value : int }

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;  (* sorted upper bounds, +Inf implicit *)
  buckets : int array;  (* per-bound raw counts; last slot is +Inf *)
  mutable sum : float;
  mutable count : int;
}

type metric = Counter of counter | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }
let default = create ()

let register t name metric =
  Hashtbl.add t.tbl name metric;
  t.order <- name :: t.order

let counter ?(help = "") t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
      invalid_arg ("Metrics.counter: " ^ name ^ " is a histogram")
  | None ->
      let c = { c_name = name; c_help = help; value = 0 } in
      register t name (Counter c);
      c

let incr c = c.value <- c.value + 1
let add c n = c.value <- c.value + n
let set c n = c.value <- n
let counter_value c = c.value

let log_buckets ~lo ~ratio ~count =
  Array.init count (fun i -> lo *. (ratio ** float_of_int i))

let default_latency_buckets = log_buckets ~lo:1e-5 ~ratio:2.0 ~count:18

let histogram ?(help = "") ?(buckets = default_latency_buckets) t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
      invalid_arg ("Metrics.histogram: " ^ name ^ " is a counter")
  | None ->
      let h =
        {
          h_name = name;
          h_help = help;
          bounds = Array.copy buckets;
          buckets = Array.make (Array.length buckets + 1) 0;
          sum = 0.;
          count = 0;
        }
      in
      register t name (Histogram h);
      h

let bucket_index h v =
  (* First bound >= v; the +Inf slot catches the rest. *)
  let n = Array.length h.bounds in
  let rec find i = if i >= n || v <= h.bounds.(i) then i else find (i + 1) in
  find 0

let observe h v =
  let i = bucket_index h v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

let histogram_count h = h.count
let histogram_sum h = h.sum

let bucket_counts h =
  let cum = ref 0 in
  Array.init
    (Array.length h.buckets)
    (fun i ->
      cum := !cum + h.buckets.(i);
      let le =
        if i < Array.length h.bounds then h.bounds.(i) else infinity
      in
      (le, !cum))

let metrics_in_order t =
  List.rev_map (fun name -> Hashtbl.find t.tbl name) t.order

(* Prometheus float formatting: shortest round-trip decimal, "+Inf" for
   the open bucket. *)
let prom_float v =
  if v = infinity then "+Inf" else Printf.sprintf "%.12g" v

let render_prometheus t =
  let buf = Buffer.create 1024 in
  List.iter
    (function
      | Counter c ->
          if c.c_help <> "" then
            Buffer.add_string buf
              (Printf.sprintf "# HELP %s %s\n" c.c_name c.c_help);
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" c.c_name);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" c.c_name c.value)
      | Histogram h ->
          if h.h_help <> "" then
            Buffer.add_string buf
              (Printf.sprintf "# HELP %s %s\n" h.h_name h.h_help);
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s histogram\n" h.h_name);
          Array.iter
            (fun (le, n) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name
                   (prom_float le) n))
            (bucket_counts h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %.12g\n" h.h_name h.sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" h.h_name h.count))
    (metrics_in_order t);
  Buffer.contents buf

let json_float v =
  if v = infinity then "\"+Inf\"" else Printf.sprintf "%.12g" v

let render_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  let first = ref true in
  List.iter
    (fun m ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      match m with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf {|"%s":{"type":"counter","value":%d}|} c.c_name
               c.value)
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf {|"%s":{"type":"histogram","count":%d,"sum":%s,"buckets":[|}
               h.h_name h.count (json_float h.sum));
          Array.iteri
            (fun i (le, n) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf {|{"le":%s,"count":%d}|} (json_float le) n))
            (bucket_counts h);
          Buffer.add_string buf "]}")
    (metrics_in_order t);
  Buffer.add_char buf '}';
  Buffer.contents buf

let reset t =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.value <- 0
      | Histogram h ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.sum <- 0.;
          h.count <- 0)
    t.tbl
