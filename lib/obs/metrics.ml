type counter = {
  c_name : string;
  c_labels : (string * string) list;
  c_help : string;
  value : int Atomic.t;
}

type histogram = {
  h_name : string;
  h_labels : (string * string) list;
  h_help : string;
  bounds : float array;  (* sorted upper bounds, +Inf implicit *)
  buckets : int array;  (* per-bound raw counts; last slot is +Inf *)
  mutable sum : float;
  mutable count : int;
}

type metric = Counter of counter | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }
let default = create ()

let register t name metric =
  Hashtbl.add t.tbl name metric;
  t.order <- name :: t.order

(* Prometheus label escaping: backslash, double quote and newline. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

(* Registry key: the fully keyed sample name, so each label combination
   is its own metric while sharing the base name for HELP/TYPE. *)
let keyed name labels = name ^ render_labels labels

let counter ?(help = "") ?(labels = []) t name =
  let key = keyed name labels in
  match Hashtbl.find_opt t.tbl key with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
      invalid_arg ("Metrics.counter: " ^ key ^ " is a histogram")
  | None ->
      let c =
        { c_name = name; c_labels = labels; c_help = help; value = Atomic.make 0 }
      in
      register t key (Counter c);
      c

let incr c = Atomic.incr c.value
let add c n = ignore (Atomic.fetch_and_add c.value n)
let set c n = Atomic.set c.value n
let counter_value c = Atomic.get c.value

let log_buckets ~lo ~ratio ~count =
  Array.init count (fun i -> lo *. (ratio ** float_of_int i))

let default_latency_buckets = log_buckets ~lo:1e-5 ~ratio:2.0 ~count:18

let histogram ?(help = "") ?(labels = []) ?(buckets = default_latency_buckets)
    t name =
  let key = keyed name labels in
  match Hashtbl.find_opt t.tbl key with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
      invalid_arg ("Metrics.histogram: " ^ key ^ " is a counter")
  | None ->
      let h =
        {
          h_name = name;
          h_labels = labels;
          h_help = help;
          bounds = Array.copy buckets;
          buckets = Array.make (Array.length buckets + 1) 0;
          sum = 0.;
          count = 0;
        }
      in
      register t key (Histogram h);
      h

let bucket_index h v =
  (* First bound >= v; the +Inf slot catches the rest. *)
  let n = Array.length h.bounds in
  let rec find i = if i >= n || v <= h.bounds.(i) then i else find (i + 1) in
  find 0

let observe h v =
  let i = bucket_index h v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

let histogram_count h = h.count
let histogram_sum h = h.sum

let bucket_counts h =
  let cum = ref 0 in
  Array.init
    (Array.length h.buckets)
    (fun i ->
      cum := !cum + h.buckets.(i);
      let le =
        if i < Array.length h.bounds then h.bounds.(i) else infinity
      in
      (le, !cum))

let metrics_in_order t =
  List.rev_map (fun name -> Hashtbl.find t.tbl name) t.order

(* Prometheus float formatting: shortest round-trip decimal, "+Inf" for
   the open bucket. *)
let prom_float v =
  if v = infinity then "+Inf" else Printf.sprintf "%.12g" v

let render_prometheus t =
  let buf = Buffer.create 1024 in
  (* HELP/TYPE are per metric family: emit them once per base name even
     when several label combinations share it. *)
  let described = Hashtbl.create 16 in
  let describe name kind help =
    if not (Hashtbl.mem described name) then begin
      Hashtbl.add described name ();
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (function
      | Counter c ->
          describe c.c_name "counter" c.c_help;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" c.c_name (render_labels c.c_labels)
               (Atomic.get c.value))
      | Histogram h ->
          describe h.h_name "histogram" h.h_help;
          let labels = render_labels h.h_labels in
          Array.iter
            (fun (le, n) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" h.h_name
                   (render_labels (h.h_labels @ [ ("le", prom_float le) ]))
                   n))
            (bucket_counts h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %.12g\n" h.h_name labels h.sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" h.h_name labels h.count))
    (metrics_in_order t);
  Buffer.contents buf

let json_float v =
  if v = infinity then "\"+Inf\"" else Printf.sprintf "%.12g" v

let render_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  let first = ref true in
  List.iter
    (fun m ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      match m with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf {|"%s":{"type":"counter","value":%d}|}
               (String.escaped (keyed c.c_name c.c_labels))
               (Atomic.get c.value))
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf {|"%s":{"type":"histogram","count":%d,"sum":%s,"buckets":[|}
               (String.escaped (keyed h.h_name h.h_labels))
               h.count (json_float h.sum));
          Array.iteri
            (fun i (le, n) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf {|{"le":%s,"count":%d}|} (json_float le) n))
            (bucket_counts h);
          Buffer.add_string buf "]}")
    (metrics_in_order t);
  Buffer.add_char buf '}';
  Buffer.contents buf

let reset t =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> Atomic.set c.value 0
      | Histogram h ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.sum <- 0.;
          h.count <- 0)
    t.tbl
