(** A minimal JSON value type with a strict parser and printer.

    The observability stack emits JSON from many corners (metric
    registries, span trees, the query log, benchmark reports); this is
    the matching {e reader} — small, dependency-free, strict enough to
    act as a well-formedness check in tests and CI. Used by the trace
    schema validator, the benchmark baseline comparator and
    [amber log tail]. Numbers are doubles (ints round-trip exactly up to
    2⁵³); [\u]-escapes decode to UTF-8 (surrogate pairs become U+FFFD,
    which no renderer in this repo emits). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string
(** Parse failure, with a byte position. *)

val parse : string -> t
(** Parse one complete JSON document; trailing garbage is an error.
    @raise Malformed on any syntax error. *)

val parse_opt : string -> t option

(** {1 Accessors} — total, returning [None]/[[]] on a type mismatch. *)

val member : string -> t -> t option
(** Object member by key; [None] on non-objects and absent keys. *)

val to_list : t -> t list
(** Array items; [[]] for non-arrays. *)

val to_float : t -> float option
val to_string : t -> string option
val to_bool : t -> bool option

(** {1 Printing} *)

val to_text : t -> string
(** Compact one-line rendering; parseable by {!parse}. *)
