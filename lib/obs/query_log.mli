(** Query flight recorder: a bounded in-memory log of per-query records.

    Every engine entry point offers the finished query here — outcome,
    per-phase durations, matcher counters, GC delta, the core order the
    planner chose — and the recorder keeps the last [capacity] captured
    records in a mutex-protected ring. A sampling rate thins the steady
    [Ok] traffic; slow queries (past {!configure}'s threshold) and
    non-[Ok] outcomes are always captured, because those are the records
    an operator actually goes looking for. An optional JSONL sink writes
    one line per captured record for offline analysis.

    All operations take the lock; safe to call from any domain. *)

type status =
  | Ok
  | Timeout  (** the query's deadline expired *)
  | Unsat  (** static analysis proved the query empty *)
  | Error of string  (** the engine raised; the exception message *)
  | Update  (** a live-engine write published a new epoch *)
  | Compaction  (** the delta was merged into a new base generation *)

val status_slug : status -> string
(** ["ok"] / ["timeout"] / ["unsat"] / ["error"] / ["update"] /
    ["compaction"]. Mutation records ([Update], [Compaction]) bypass
    sampling like every non-[Ok] status — operators reading the flight
    ring see writes interleaved with the queries they raced. *)

type record = {
  id : int;  (** sequence number, assigned at capture *)
  at : float;  (** epoch seconds when the query finished *)
  query : string;  (** canonical text ({!Sparql.Ast.to_string} form) *)
  hash : string;  (** 12 hex chars of the canonical text's digest *)
  status : status;
  seconds : float;  (** wall-clock duration *)
  rows : int;
  truncated : bool;  (** hit the row limit *)
  domains : int;  (** domains requested for the match phase *)
  core_order : string list list;  (** chosen vertex order per component *)
  plan_mode : string;
      (** plan policy slug (["paper"], ["adaptive"], ["forced:<s>"]);
          [""] for records that ran no planner (updates, compactions) *)
  plan_seeds : (string * string * int * int) list;
      (** per-component seed decisions:
          [(variable, strategy_slug, estimate, actual)] — kept as plain
          strings/ints so the recorder stays engine-agnostic *)
  rewrites : string list;
      (** kind slugs of the rewrite steps applied before planning
          (["duplicate-pattern"], ["core-minimization"],
          ["constant-propagation"], ["cartesian-product"]); [[]] when
          the rewriter was off or found nothing *)
  phases : (string * float) list;  (** phase name, seconds; query order *)
  candidates_scanned : int;
  solutions : int;
  index_probes : int;
  cache_hits : int;
  cache_misses : int;
  analysis : string option;  (** analyzer outcome slug, if it ran *)
  gc : Resource.gc_delta;  (** calling domain only; see {!Resource} *)
  slow : bool;  (** crossed the slow threshold at capture time *)
}

val hash_query : string -> string
(** The 12-hex-char digest prefix used for {!record.hash}. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh recorder. Default capacity 256; rate 1.0 (keep everything);
    no slow threshold; no sink. @raise Invalid_argument if
    [capacity < 1]. *)

val default : t
(** The process-wide recorder the engine and endpoint use. *)

val configure :
  ?capacity:int ->
  ?sample_rate:float ->
  ?slow_threshold:float option ->
  t ->
  unit
(** Adjust settings; omitted ones are unchanged. Changing [capacity]
    drops the buffered records. [sample_rate] is clamped to [0,1] and
    applied as a deterministic fractional accumulator (rate 0.25 keeps
    every 4th [Ok] query, not a random quarter). [slow_threshold] is in
    seconds; [Some None] removes it. *)

val set_sink : t -> string option -> unit
(** Append captured records to this file as JSON lines (one object per
    line, flushed per record). [None] closes the current sink. *)

val sink_path : t -> string option

val record : t -> record -> unit
(** Offer a finished query. The recorder decides capture (sampling,
    slow threshold, status) and assigns [id] and [slow] itself — the
    values in the offered record are ignored. *)

val recent : ?n:int -> t -> record list
(** The last [n] captured records (default: everything buffered),
    newest first. *)

val to_json : ?n:int -> t -> string
(** {!recent} as a JSON array, newest first. *)

val record_to_json : record -> string
(** One record as a compact JSON object — the JSONL sink line. *)

val stats : t -> int * int * int
(** [(seen, captured, sampled_out)] since creation or {!clear}. *)

val capacity : t -> int

val clear : t -> unit
(** Drop buffered records and reset counters; keeps configuration and
    sink. *)
