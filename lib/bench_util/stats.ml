let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percentile p = function
  | [] -> 0.
  | xs ->
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      let rank =
        int_of_float (Float.round (p *. float_of_int (n - 1)))
      in
      List.nth sorted (max 0 (min (n - 1) rank))

let median xs = percentile 0.5 xs
let p95 xs = percentile 0.95 xs
let p99 xs = percentile 0.99 xs

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
      sqrt (sq /. float_of_int (List.length xs - 1))

let minimum = function [] -> 0. | xs -> List.fold_left Float.min infinity xs
let maximum = function [] -> 0. | xs -> List.fold_left Float.max neg_infinity xs
