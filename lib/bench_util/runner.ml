type outcome =
  | Answered of { seconds : float; rows : int }
  | Unanswered

type summary = {
  engine : string;
  answered : int;
  unanswered : int;
  mean_time : float;
  median_time : float;
  p95_time : float;
  p99_time : float;
  total_rows : int;
}

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (Unix.gettimeofday () -. start, result)

let run_query (type e) (module E : Baselines.Engine_sig.S with type t = e)
    (engine : e) ~timeout ?limit ast =
  match time (fun () -> E.query ~timeout ?limit engine ast) with
  | seconds, answer ->
      Answered { seconds; rows = List.length answer.Baselines.Answer.rows }
  | exception Amber.Deadline.Expired -> Unanswered

let run_workload (type e) (module E : Baselines.Engine_sig.S with type t = e)
    (engine : e) ~timeout ?limit queries =
  let times = ref [] and answered = ref 0 and unanswered = ref 0 in
  let total_rows = ref 0 in
  List.iter
    (fun ast ->
      match run_query (module E) engine ~timeout ?limit ast with
      | Answered { seconds; rows } ->
          incr answered;
          times := seconds :: !times;
          total_rows := !total_rows + rows
      | Unanswered -> incr unanswered)
    queries;
  {
    engine = E.name;
    answered = !answered;
    unanswered = !unanswered;
    mean_time = Stats.mean !times;
    median_time = Stats.median !times;
    p95_time = Stats.p95 !times;
    p99_time = Stats.p99 !times;
    total_rows = !total_rows;
  }

let pp_summary ppf s =
  let pct =
    if s.answered + s.unanswered = 0 then 0.
    else
      100.0 *. float_of_int s.unanswered /. float_of_int (s.answered + s.unanswered)
  in
  Format.fprintf ppf
    "%-14s answered %3d/%3d (%5.1f%% unanswered)  mean %8.2f ms  median %8.2f \
     ms  p95 %8.2f ms  p99 %8.2f ms"
    s.engine s.answered (s.answered + s.unanswered) pct (1000. *. s.mean_time)
    (1000. *. s.median_time) (1000. *. s.p95_time) (1000. *. s.p99_time)

let summary_json s =
  Printf.sprintf
    {|{"engine":"%s","answered":%d,"unanswered":%d,"mean_s":%.9g,"median_s":%.9g,"p95_s":%.9g,"p99_s":%.9g,"total_rows":%d}|}
    s.engine s.answered s.unanswered s.mean_time s.median_time s.p95_time
    s.p99_time s.total_rows
