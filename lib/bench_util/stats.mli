(** Small statistics helpers for the benchmark harness. *)

val mean : float list -> float
(** 0. on the empty list. *)

val median : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0, 1] (nearest-rank). *)

val p95 : float list -> float
val p99 : float list -> float
(** Tail-latency percentiles ([percentile 0.95] / [0.99]). *)

val stddev : float list -> float
val minimum : float list -> float
val maximum : float list -> float
