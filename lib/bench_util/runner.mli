(** Timed, timeout-guarded query execution over any engine implementing
    {!Baselines.Engine_sig.S} — the measurement protocol of the paper's
    Section 7.2: run each query under a time budget, record elapsed time
    for answered queries and count the unanswered ones. *)

type outcome =
  | Answered of { seconds : float; rows : int }
  | Unanswered  (** the time budget expired (or the engine gave up) *)

type summary = {
  engine : string;
  answered : int;
  unanswered : int;
  mean_time : float;  (** over answered queries only, as in the paper *)
  median_time : float;
  p95_time : float;  (** tail latency over answered queries *)
  p99_time : float;
  total_rows : int;
}

val time : (unit -> 'a) -> float * 'a
(** Wall-clock seconds. *)

val run_query :
  (module Baselines.Engine_sig.S with type t = 'e) ->
  'e ->
  timeout:float ->
  ?limit:int ->
  Sparql.Ast.t ->
  outcome

val run_workload :
  (module Baselines.Engine_sig.S with type t = 'e) ->
  'e ->
  timeout:float ->
  ?limit:int ->
  Sparql.Ast.t list ->
  summary

val pp_summary : Format.formatter -> summary -> unit

val summary_json : summary -> string
(** One JSON object per summary — the benchmark harness's [--json]
    report embeds these. *)
