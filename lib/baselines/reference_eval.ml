(* Brute-force SPARQL BGP evaluator used as ground truth: backtracking
   directly over the triple list at term level, written independently of
   every engine under test. Exponential and proud of it. *)

type t = Rdf.Triple.t list

let name = "reference"
let load triples = List.sort_uniq Rdf.Triple.compare triples

type binding = (string * Rdf.Term.t) list

let term_matches binding pattern actual =
  match pattern with
  | Sparql.Ast.Iri i ->
      if Rdf.Term.equal (Rdf.Term.iri i) actual then Some binding else None
  | Sparql.Ast.Lit l ->
      if Rdf.Term.equal (Rdf.Term.Literal l) actual then Some binding else None
  | Sparql.Ast.Var v -> (
      match List.assoc_opt v binding with
      | Some existing ->
          if Rdf.Term.equal existing actual then Some binding else None
      | None -> Some ((v, actual) :: binding))

let solutions_within deadline triples (ast : Sparql.Ast.t) : binding list =
  let rec go patterns binding =
    match patterns with
    | [] -> [ binding ]
    | { Sparql.Ast.subject; predicate; obj } :: rest ->
        List.concat_map
          (fun { Rdf.Triple.subject = s; predicate = p; obj = o } ->
            Amber.Deadline.check deadline;
            match term_matches binding subject s with
            | None -> []
            | Some b1 -> (
                match term_matches b1 predicate p with
                | None -> []
                | Some b2 -> (
                    match term_matches b2 obj o with
                    | None -> []
                    | Some b3 -> go rest b3)))
          triples
  in
  (* Distinct full-variable mappings (pattern reordering must not change
     the answer set). *)
  let canon b =
    List.sort compare (List.map (fun (v, t) -> (v, Rdf.Term.to_string t)) b)
  in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun b ->
      let key = canon b in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    (go ast.where [])

let solutions triples ast =
  solutions_within Amber.Deadline.never (load triples) ast

let query ?timeout ?limit store ast =
  let deadline =
    match timeout with
    | Some s -> Amber.Deadline.after s
    | None -> Amber.Deadline.never
  in
  let variables = Sparql.Ast.selected_variables ast in
  let project b = List.map (fun v -> List.assoc_opt v b) variables in
  let rows = List.map project (solutions_within deadline store ast) in
  let rows =
    if ast.Sparql.Ast.distinct then List.sort_uniq compare rows else rows
  in
  let effective_limit =
    match (ast.Sparql.Ast.limit, limit) with
    | Some a, Some b -> Some (min a b)
    | (Some _ as l), None | None, (Some _ as l) -> l
    | None, None -> None
  in
  let rows, truncated =
    match effective_limit with
    | Some l when List.length rows > l ->
        (List.filteri (fun i _ -> i < l) rows, true)
    | _ -> (rows, false)
  in
  { Answer.variables; rows; truncated }

(* Canonical string form of a projected row, for set comparisons. *)
let canon_row row =
  List.map (function None -> "<unbound>" | Some t -> Rdf.Term.to_string t) row

(* Project like the engines do: selected variables, [None] when unbound;
   returns canonical (sorted) string rows. *)
let canonical_answer triples ast : string list list =
  let selected = Sparql.Ast.selected_variables ast in
  let project b = List.map (fun v -> List.assoc_opt v b) selected in
  let all = List.map (fun b -> canon_row (project b)) (solutions triples ast) in
  let all = if ast.Sparql.Ast.distinct then List.sort_uniq compare all else all in
  let all =
    match ast.Sparql.Ast.limit with
    | None -> all
    | Some l -> List.filteri (fun i _ -> i < l) all
  in
  List.sort compare all

(* Canonicalize an engine's rows the same way. *)
let canonical_rows (rows : Rdf.Term.t option list list) =
  List.sort compare (List.map canon_row rows)
