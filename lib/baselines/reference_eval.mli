(** Brute-force BGP oracle — the ground truth of the differential tests.

    Backtracks directly over the triple list at term level, written
    independently of every engine under test (no dictionary, no indexes,
    no decomposition). Exponential and proud of it; only run it on the
    small graphs the test generators produce.

    Implements {!Engine_sig.S} so it slots into the cross-engine
    harnesses, and additionally exposes the canonicalization helpers the
    differential tests compare answers with. *)

type t

val name : string
val load : Rdf.Triple.t list -> t

val query : ?timeout:float -> ?limit:int -> t -> Sparql.Ast.t -> Answer.t
(** Project / DISTINCT / LIMIT like the engines do ([truncated] set when
    a limit dropped rows). @raise Amber.Deadline.Expired on timeout. *)

(** {1 Ground-truth helpers} *)

type binding = (string * Rdf.Term.t) list

val solutions : Rdf.Triple.t list -> Sparql.Ast.t -> binding list
(** Every distinct full-variable mapping satisfying the WHERE clause
    (pattern order cannot change the answer set). *)

val canon_row : Rdf.Term.t option list -> string list
(** Canonical string form of a projected row, for set comparisons. *)

val canonical_answer : Rdf.Triple.t list -> Sparql.Ast.t -> string list list
(** The oracle's projected answer as sorted canonical rows (DISTINCT
    and the query's own LIMIT applied). *)

val canonical_rows : Rdf.Term.t option list list -> string list list
(** Canonicalize an engine's rows the same way, so
    [canonical_rows answer.rows = canonical_answer triples ast] is the
    differential-correctness property. *)
