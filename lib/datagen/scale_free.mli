(** Synthetic scale-free RDF multigraphs standing in for the DBPEDIA and
    YAGO dumps (see DESIGN.md §4).

    Edges are laid down by preferential attachment (heavy-tailed
    degrees, like encyclopedic knowledge graphs), predicates are drawn
    from a Zipf distribution over a configurable vocabulary, and a
    separate pool of datatype properties attaches literals. Object and
    datatype properties never mix, so every engine sees the same
    bindings for variables in object position. *)

type profile = {
  entities : int;
  edges : int;  (** IRI-to-IRI edges (multi-edges arise naturally) *)
  object_predicates : int;
  literal_predicates : int;
  zipf_exponent : float;  (** skew of predicate usage *)
  literal_rate : float;  (** expected literals per entity *)
}

val dbpedia_like : ?scale:float -> unit -> profile
(** Many predicates, strong skew. [scale] multiplies entity/edge counts
    (default 1.0 ≈ 60 k entities / 180 k edges). *)

val yago_like : ?scale:float -> unit -> profile
(** Few predicates (44), moderate skew. *)

val generate : ?seed:int -> ?skew:float -> profile -> Rdf.Triple.t list
(** [skew] (default 0. — byte-identical to the historical output)
    exaggerates the hub entities' degree mass: their preferential-
    attachment seed weight grows with it and the uniform coverage dash
    shrinks, producing the heavy-tailed degree distributions the
    adaptive-planner benchmarks exercise. Try 1.0–2.0.
    @raise Invalid_argument on a negative [skew]. *)

val entity_iri : int -> string
(** IRI of the [i]-th generated entity (exposed for workload tooling). *)

val predicate_iri : int -> string
val literal_predicate_iri : int -> string
