type profile = {
  entities : int;
  edges : int;
  object_predicates : int;
  literal_predicates : int;
  zipf_exponent : float;
  literal_rate : float;
}

let dbpedia_like ?(scale = 1.0) () =
  {
    entities = int_of_float (60_000.0 *. scale);
    edges = int_of_float (180_000.0 *. scale);
    object_predicates = 220;
    literal_predicates = 40;
    zipf_exponent = 1.1;
    literal_rate = 1.2;
  }

let yago_like ?(scale = 1.0) () =
  {
    entities = int_of_float (55_000.0 *. scale);
    edges = int_of_float (170_000.0 *. scale);
    object_predicates = 38;
    literal_predicates = 6;
    zipf_exponent = 0.8;
    literal_rate = 0.8;
  }

let entity_iri i = Printf.sprintf "http://example.org/resource/E%d" i
let predicate_iri p = Printf.sprintf "http://example.org/ontology/p%d" p
let literal_predicate_iri p = Printf.sprintf "http://example.org/ontology/lit%d" p

let generate ?(seed = 7) ?(skew = 0.0) profile =
  if profile.entities < 2 then invalid_arg "Scale_free.generate: too few entities";
  if skew < 0.0 then invalid_arg "Scale_free.generate: negative skew";
  let rng = Prng.create seed in
  let triples = ref [] in
  let emit s p o = triples := Rdf.Triple.spo s p o :: !triples in
  (* Preferential attachment: targets are drawn from a pool that every
     placed endpoint re-enters (degree-proportional choice), seeded with
     each entity once plus a handful of heavily-weighted "hub" entities —
     the category/type-like nodes that give knowledge graphs their
     heavy-tailed in-degree. *)
  let pool_list = ref [] in
  let push v = pool_list := v :: !pool_list in
  for v = 0 to profile.entities - 1 do
    push v
  done;
  (* [skew] exaggerates the hubs: their seed weight grows with it, and
     the uniform dash below shrinks, so degree mass concentrates — the
     knob the planner benchmarks turn to make the fixed paper plan pay
     for probing a hub-dominated R-tree region. [skew = 0.] reproduces
     the historical shape exactly (same PRNG draw sequence). *)
  let hubs = max 1 (profile.entities / 200) in
  let hub_weight = 40 + int_of_float (skew *. 400.0) in
  for h = 0 to hubs - 1 do
    for _ = 1 to hub_weight do
      push h
    done
  done;
  let pool = ref (Array.of_list !pool_list) in
  let pick_preferential () =
    (* Mostly degree-proportional, with a uniform dash for coverage. *)
    let uniform_dash = Float.max 0.02 (0.15 /. (1.0 +. (4.0 *. skew))) in
    if Prng.bool rng uniform_dash then Prng.int rng profile.entities
    else !pool.(Prng.int rng (Array.length !pool))
  in
  let extra = ref [] and extra_count = ref 0 in
  let refresh_pool () =
    if !extra_count > Array.length !pool / 2 then begin
      pool := Array.append !pool (Array.of_list !extra);
      extra := [];
      extra_count := 0
    end
  in
  (* Precomputed Zipf CDF over the predicate vocabulary; binary search
     per draw. *)
  let cdf =
    let n = profile.object_predicates in
    let a = Array.make n 0.0 in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) profile.zipf_exponent);
      a.(i) <- !acc
    done;
    a
  in
  let zipf_pred () =
    let target = Prng.float rng *. cdf.(Array.length cdf - 1) in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < target then search (mid + 1) hi else search lo mid
    in
    search 0 (Array.length cdf - 1)
  in
  for _ = 1 to profile.edges do
    let s = pick_preferential () in
    let o = ref (pick_preferential ()) in
    if !o = s then o := (s + 1 + Prng.int rng (profile.entities - 1)) mod profile.entities;
    let p = zipf_pred () in
    emit (entity_iri s) (predicate_iri p) (Rdf.Term.iri (entity_iri !o));
    extra := s :: !o :: !extra;
    extra_count := !extra_count + 2;
    refresh_pool ()
  done;
  (* Literal attributes: a mix of shared category-like values (selective
     joins) and unique labels. *)
  let categories =
    Array.init 50 (fun i -> Printf.sprintf "category-%d" i)
  in
  for v = 0 to profile.entities - 1 do
    let k =
      let expected = profile.literal_rate in
      let base = int_of_float expected in
      base + if Prng.bool rng (expected -. float_of_int base) then 1 else 0
    in
    for _ = 1 to k do
      let p = Prng.int rng profile.literal_predicates in
      let value =
        if Prng.bool rng 0.5 then Prng.choice rng categories
        else Printf.sprintf "label-%d-%d" v p
      in
      emit (entity_iri v) (literal_predicate_iri p) (Rdf.Term.literal value)
    done
  done;
  List.rev !triples
