type config = {
  host : string;
  port : int;
  timeout : float option;
  limit : int option;
  open_objects : bool;
  domains : int option;
  snapshot : string option;
  live_dir : string option;
  slow_query : float option;
  log_sample : float;
  log_sink : string option;
  plan : Amber.Stats.mode option;
  rewrite : bool;
}

let default_config =
  { host = "127.0.0.1"; port = 8080; timeout = Some 30.0; limit = Some 100_000;
    open_objects = true; domains = None; snapshot = None; live_dir = None;
    slow_query = Some 1.0; log_sample = 1.0; log_sink = None; plan = None;
    rewrite = true }

type source = Static of Amber.Engine.t | Live of Amber.Live_engine.t

(* One pin per request: every handler sees a single consistent epoch,
   whatever the writers do while the response is being computed. *)
let engine_of_source = function
  | Static engine -> engine
  | Live live -> Amber.Live_engine.engine (Amber.Live_engine.pin live)

type t = {
  config : config;
  source : source;
  socket : Unix.file_descr;
  port : int;
}

(* --- small HTTP/URL helpers ---------------------------------------- *)

let hex_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let url_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i < n then begin
      (match s.[i] with
      | '+' ->
          Buffer.add_char buf ' ';
          loop (i + 1)
      | '%' when i + 2 < n && hex_value s.[i + 1] >= 0 && hex_value s.[i + 2] >= 0 ->
          Buffer.add_char buf
            (Char.chr ((16 * hex_value s.[i + 1]) + hex_value s.[i + 2]));
          loop (i + 3)
      | c ->
          Buffer.add_char buf c;
          loop (i + 1))
    end
  in
  loop 0;
  Buffer.contents buf

(* Split "path?k=v&k2=v2" into path and decoded params. *)
let parse_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
      let path = String.sub target 0 i in
      let qs = String.sub target (i + 1) (String.length target - i - 1) in
      let params =
        List.filter_map
          (fun kv ->
            match String.index_opt kv '=' with
            | None -> if kv = "" then None else Some (url_decode kv, "")
            | Some j ->
                Some
                  ( url_decode (String.sub kv 0 j),
                    url_decode (String.sub kv (j + 1) (String.length kv - j - 1)) ))
          (String.split_on_char '&' qs)
      in
      (path, params)

let header headers name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name
    (List.map (fun (k, v) -> (String.lowercase_ascii k, v)) headers)

(* Queries using algebra operators route to the extended evaluator. *)
let needs_algebra src =
  let tokens =
    match Sparql.Lexer.tokenize src with
    | ts -> ts
    | exception Sparql.Lexer.Error _ -> []
  in
  List.exists
    (fun { Sparql.Lexer.token; _ } ->
      match token with
      | Sparql.Lexer.KW_filter | Sparql.Lexer.KW_union | Sparql.Lexer.KW_optional ->
          true
      | _ -> false)
    tokens

let service_description =
  {|AMbER SPARQL endpoint
GET  /sparql?query=<urlencoded SPARQL>[&profile=1][&domains=N]
POST /sparql   (application/x-www-form-urlencoded or application/sparql-query)
POST /update   (form-encoded add=<N-Triples>&remove=<N-Triples>[&compact=1];
                live-directory servers only, 405 on a static engine)
GET  /metrics  (Prometheus text exposition)
GET  /queries  (flight recorder: last recorded queries as JSON; ?n=K)
GET  /healthz  (liveness: {"status":"ok",...})
Accept: application/sparql-results+json | text/csv | text/tab-separated-values
profile=1 embeds a per-query profile (phase timings, candidate counts)
in the JSON results.
analyze=1 embeds the static-analysis report (unsatisfiability proofs,
warnings, hints) as an "analysis" member of the JSON results.
domains=N matches on up to N domains of the shared pool (1-8;
overrides the server's configured default).
plan=paper|adaptive|forced:<rtree|attrs|scan> picks the seed/ordering
policy (default adaptive; answers are identical across plans).
rewrite=on|off toggles the semantic query rewriter (default on;
equivalence-preserving, so answers are identical either way).
|}

(* --- metrics --------------------------------------------------------- *)

let m = Obs.Metrics.default

let m_requests =
  Obs.Metrics.counter m "amber_http_requests_total"
    ~help:"HTTP requests received"

let m_errors =
  Obs.Metrics.counter m "amber_http_errors_total"
    ~help:"HTTP responses with a 4xx/5xx status"

let m_timeouts =
  Obs.Metrics.counter m "amber_query_timeouts_total"
    ~help:"Queries aborted by the per-query time budget"

(* Prometheus build-info convention: constant 1, the payload is the
   label set. *)
let () =
  Obs.Metrics.set
    (Obs.Metrics.counter m "amber_build_info"
       ~labels:[ ("version", Amber.Version.version) ]
       ~help:"Build information; the value is always 1")
    1

(* Results JSON is a single object; the profile report splices in as a
   top-level "profile" member. *)
let embed_profile json profile =
  String.sub json 0 (String.length json - 1)
  ^ {|,"profile":|} ^ Amber.Profile.to_json profile ^ "}"

(* Same splice for the static analyzer's diagnostics. *)
let embed_analysis json report =
  String.sub json 0 (String.length json - 1)
  ^ {|,"analysis":|} ^ Amber.Analysis.report_to_json report ^ "}"

let negotiate headers =
  match header headers "accept" with
  | Some accept when String.length accept > 0 -> (
      let wants s =
        let n = String.length s and h = String.length accept in
        let rec loop i = i + n <= h && (String.sub accept i n = s || loop (i + 1)) in
        loop 0
      in
      if wants "text/csv" then `Csv
      else if wants "text/tab-separated-values" then `Tsv
      else `Json)
  | _ -> `Json

let truthy = function
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let handle_update source ~body =
  match source with
  | Static _ ->
      ( 405,
        "text/plain",
        "update not supported: static engine (serve a live directory)\n" )
  | Live live -> (
      let _, form = parse_target ("?" ^ body) in
      let parse_nt which =
        match List.assoc_opt which form with
        | None | Some "" -> []
        | Some text -> Rdf.Ntriples.parse_string text
      in
      match
        let adds = parse_nt "add" in
        let dels = parse_nt "remove" in
        (adds, dels)
      with
      | exception Rdf.Ntriples.Parse_error { line; message } ->
          ( 400,
            "text/plain",
            Printf.sprintf "N-Triples parse error at line %d: %s\n" line message
          )
      | [], [] when not (truthy (List.assoc_opt "compact" form)) ->
          (400, "text/plain", "missing 'add' or 'remove' parameter\n")
      | adds, dels ->
          let ep =
            if adds = [] && dels = [] then Amber.Live_engine.pin live
            else Amber.Live_engine.update live ~adds ~dels
          in
          let ep =
            if truthy (List.assoc_opt "compact" form) then
              Amber.Live_engine.compact live
            else ep
          in
          let d = Amber.Live_engine.delta ep in
          ( 200,
            "application/json",
            Printf.sprintf
              {|{"added":%d,"removed":%d,"generation":%d,"version":%d,"delta_adds":%d,"delta_dels":%d}|}
              (List.length adds) (List.length dels)
              (Amber.Live_engine.generation ep)
              (Amber.Live_engine.version ep)
              (Amber.Delta.add_count d) (Amber.Delta.del_count d)
            ^ "\n" ))

let handle_request_inner config source ~meth ~target ~headers ~body =
  let path, params = parse_target target in
  let engine = engine_of_source source in
  match (meth, path) with
  | "GET", "/" -> (200, "text/plain", service_description)
  | "GET", "/metrics" ->
      Amber.Engine.sync_index_metrics engine;
      Amber.Engine.sync_resource_metrics engine;
      ( 200,
        "text/plain; version=0.0.4",
        Obs.Metrics.render_prometheus Obs.Metrics.default )
  | "GET", "/healthz" ->
      ( 200,
        "application/json",
        Printf.sprintf {|{"status":"ok","version":"%s"}|} Amber.Version.version
        ^ "\n" )
  | "GET", "/queries" ->
      let n = Option.bind (List.assoc_opt "n" params) int_of_string_opt in
      (200, "application/json", Obs.Query_log.to_json ?n Obs.Query_log.default)
  | ("GET" | "POST"), "/sparql" -> (
      let query_text, form_params =
        match meth with
        | "GET" -> (List.assoc_opt "query" params, [])
        | _ -> (
            match header headers "content-type" with
            | Some ct
              when String.length ct >= 24
                   && String.sub ct 0 24 = "application/sparql-query" ->
                (Some body, [])
            | _ ->
                let _, form = parse_target ("?" ^ body) in
                (List.assoc_opt "query" form, form))
      in
      match query_text with
      | None | Some "" ->
          (400, "text/plain", "missing 'query' parameter\n")
      | Some src -> (
          let fmt = negotiate headers in
          let open_objects = config.open_objects in
          let profile_requested =
            truthy (List.assoc_opt "profile" params)
            || truthy (List.assoc_opt "profile" form_params)
          in
          let analyze_requested =
            truthy (List.assoc_opt "analyze" params)
            || truthy (List.assoc_opt "analyze" form_params)
          in
          (* ?domains=N (request) overrides the server default; clamped
             to the pool's 1..8 range, garbage ignored. *)
          let domains =
            let requested =
              match
                (List.assoc_opt "domains" params,
                 List.assoc_opt "domains" form_params)
              with
              | Some v, _ | None, Some v -> int_of_string_opt v
              | None, None -> None
            in
            match (requested, config.domains) with
            | Some d, _ | None, Some d -> Some (max 1 (min 8 d))
            | None, None -> None
          in
          (* ?plan=paper|adaptive|forced:<rtree|attrs|scan> (request)
             overrides the server default; an unknown value is a 400,
             not a silent fallback — plans change performance, and an
             operator probing one should learn of the typo. *)
          let plan =
            match
              (List.assoc_opt "plan" params, List.assoc_opt "plan" form_params)
            with
            | Some v, _ | None, Some v -> (
                match Amber.Stats.mode_of_string v with
                | Some m -> Ok (Some m)
                | None -> Error v)
            | None, None -> Ok config.plan
          in
          (* ?rewrite=on|off (request) overrides the server default;
             like ?plan=, an unknown value is a 400, not a silent
             fallback. *)
          let rewrite =
            match
              ( List.assoc_opt "rewrite" params,
                List.assoc_opt "rewrite" form_params )
            with
            | Some v, _ | None, Some v -> (
                match String.lowercase_ascii v with
                | "on" | "1" | "true" | "yes" -> Ok true
                | "off" | "0" | "false" | "no" -> Ok false
                | _ -> Error v)
            | None, None -> Ok config.rewrite
          in
          let render_rows answer =
            match fmt with
            | `Json ->
                (200, "application/sparql-results+json", Amber.Results.to_json answer)
            | `Csv -> (200, "text/csv", Amber.Results.to_csv answer)
            | `Tsv -> (200, "text/tab-separated-values", Amber.Results.to_tsv answer)
          in
          let respond plan rewrite =
            if needs_algebra src then
              render_rows
                (Amber.Extended.query_string ?timeout:config.timeout
                   ?limit:config.limit ~open_objects engine src)
            else
              match Sparql.Parser.parse_any src with
              | Sparql.Parser.Q_select ast ->
                  (* Profile and analysis ride inside the results JSON;
                     other formats have no extension point and ignore
                     them. *)
                  let maybe_analysis json =
                    if analyze_requested && fmt = `Json then
                      embed_analysis json
                        (Amber.Engine.analyze ~open_objects engine ast)
                    else json
                  in
                  if profile_requested && fmt = `Json then begin
                    let answer, profile =
                      Amber.Engine.query_profiled ?timeout:config.timeout
                        ?limit:config.limit ~open_objects ?domains ?plan
                        ~rewrite engine ast
                    in
                    ( 200,
                      "application/sparql-results+json",
                      maybe_analysis
                        (embed_profile (Amber.Results.to_json answer) profile) )
                  end
                  else if analyze_requested && fmt = `Json then
                    ( 200,
                      "application/sparql-results+json",
                      maybe_analysis
                        (Amber.Results.to_json
                           (Amber.Engine.query ?timeout:config.timeout
                              ?limit:config.limit ~open_objects ?domains ?plan
                              ~rewrite engine ast)) )
                  else
                    render_rows
                      (Amber.Engine.query ?timeout:config.timeout
                         ?limit:config.limit ~open_objects ?domains ?plan
                         ~rewrite engine ast)
              | Sparql.Parser.Q_ask ast ->
                  ( 200,
                    "application/sparql-results+json",
                    Amber.Results.ask_json
                      (Amber.Engine.ask ?timeout:config.timeout ~open_objects
                         ?domains ?plan ~rewrite engine ast) )
              | Sparql.Parser.Q_construct (template, ast) ->
                  ( 200,
                    "application/n-triples",
                    Rdf.Ntriples.to_string
                      (Amber.Engine.construct ?timeout:config.timeout
                         ?limit:config.limit ~open_objects ?domains ?plan
                         ~rewrite engine ~template ast) )
          in
          match
            match (plan, rewrite) with
            | Error v, _ ->
                ( 400,
                  "text/plain",
                  Printf.sprintf
                    "unknown plan %S (expected paper, adaptive or \
                     forced:<rtree|attrs|scan>)\n"
                    v )
            | _, Error v ->
                ( 400,
                  "text/plain",
                  Printf.sprintf "unknown rewrite %S (expected on or off)\n" v
                )
            | Ok plan, Ok rewrite -> respond plan rewrite
          with
          | response -> response
          | exception Sparql.Parser.Error { line; col; message } ->
              ( 400,
                "text/plain",
                Printf.sprintf "SPARQL parse error at %d:%d: %s\n" line col message )
          | exception Amber.Engine.Unsupported msg ->
              (400, "text/plain", "unsupported query: " ^ msg ^ "\n")
          | exception Amber.Deadline.Expired ->
              Obs.Metrics.incr m_timeouts;
              (503, "text/plain", "query timed out\n")))
  | "POST", "/update" -> handle_update source ~body
  | _, ("/sparql" | "/update") -> (405, "text/plain", "method not allowed\n")
  | _ -> (404, "text/plain", "not found\n")

let handle_request config source ~meth ~target ~headers ~body =
  Obs.Metrics.incr m_requests;
  let (status, _, _) as response =
    handle_request_inner config source ~meth ~target ~headers ~body
  in
  if status >= 400 then Obs.Metrics.incr m_errors;
  response

(* --- socket plumbing ------------------------------------------------ *)

let create_source ?(config = default_config) source =
  (* The server's flight-recorder policy is authoritative for the
     process-wide recorder every engine entry point records into. *)
  Obs.Query_log.configure ~sample_rate:config.log_sample
    ~slow_threshold:config.slow_query Obs.Query_log.default;
  Obs.Query_log.set_sink Obs.Query_log.default config.log_sink;
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt socket Unix.SO_REUSEADDR true;
  Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
  Unix.listen socket 16;
  let port =
    match Unix.getsockname socket with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  { config; source; socket; port }

let create ?config engine = create_source ?config (Static engine)
let create_live ?config live = create_source ?config (Live live)

let boot config =
  match (config.live_dir, config.snapshot) with
  | Some dir, _ -> create_live ~config (Amber.Live_engine.open_dir dir)
  | None, Some path -> create ~config (Amber.Engine.load_snapshot path)
  | None, None ->
      invalid_arg "Endpoint.boot: config.snapshot and config.live_dir are None"

let bound_port t = t.port

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

(* Read a full request: head until CRLFCRLF, then Content-Length bytes. *)
let read_request fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec read_head () =
    let head = Buffer.contents buf in
    match
      (* find the header terminator *)
      let rec find i =
        if i + 3 >= String.length head then None
        else if String.sub head i 4 = "\r\n\r\n" then Some (i + 4)
        else find (i + 1)
      in
      find 0
    with
    | Some body_start -> Some (head, body_start)
    | None ->
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then None
        else begin
          Buffer.add_subbytes buf chunk 0 n;
          read_head ()
        end
  in
  match read_head () with
  | None -> None
  | Some (head_and_more, body_start) ->
      let head = String.sub head_and_more 0 body_start in
      let lines = String.split_on_char '\n' head in
      let lines = List.map (fun l -> String.trim l) lines in
      (match lines with
      | request_line :: header_lines -> (
          match String.split_on_char ' ' request_line with
          | meth :: target :: _ ->
              let headers =
                List.filter_map
                  (fun line ->
                    match String.index_opt line ':' with
                    | Some i ->
                        Some
                          ( String.sub line 0 i,
                            String.trim
                              (String.sub line (i + 1) (String.length line - i - 1))
                          )
                    | None -> None)
                  header_lines
              in
              let content_length =
                match header headers "content-length" with
                | Some v -> ( match int_of_string_opt v with Some n -> n | None -> 0)
                | None -> 0
              in
              let already = Buffer.length buf - body_start in
              let body_buf = Buffer.create content_length in
              Buffer.add_string body_buf
                (String.sub (Buffer.contents buf) body_start already);
              let rec fill () =
                if Buffer.length body_buf < content_length then begin
                  let n = Unix.read fd chunk 0 (Bytes.length chunk) in
                  if n > 0 then begin
                    Buffer.add_subbytes body_buf chunk 0 n;
                    fill ()
                  end
                end
              in
              fill ();
              Some (meth, target, headers, Buffer.contents body_buf)
          | _ -> None)
      | [] -> None)

let write_response fd status content_type body =
  let response =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n%s"
      status (status_text status) content_type (String.length body) body
  in
  let bytes = Bytes.of_string response in
  let rec write_all off =
    if off < Bytes.length bytes then
      let n = Unix.write fd bytes off (Bytes.length bytes - off) in
      write_all (off + n)
  in
  write_all 0

let handle_connection t fd =
  match read_request fd with
  | None -> ()
  | Some (meth, target, headers, body) ->
      let status, content_type, response_body =
        try handle_request t.config t.source ~meth ~target ~headers ~body
        with e ->
          (500, "text/plain", "internal error: " ^ Printexc.to_string e ^ "\n")
      in
      write_response fd status content_type response_body

let serve ?max_requests t =
  let served = ref 0 in
  let continue () =
    match max_requests with None -> true | Some n -> !served < n
  in
  while continue () do
    let fd, _ = Unix.accept t.socket in
    incr served;
    (try handle_connection t fd with _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  done

let stop t = try Unix.close t.socket with Unix.Unix_error _ -> ()
