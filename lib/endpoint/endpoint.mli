(** Minimal SPARQL-protocol HTTP endpoint over an AMbER engine.

    Implements the useful core of the W3C SPARQL 1.1 Protocol:

    - [GET /sparql?query=<urlencoded>]
    - [POST /sparql] with [application/x-www-form-urlencoded]
      ([query=...]) or [application/sparql-query] (raw query) bodies;

    content negotiation via [Accept]: [application/sparql-results+json]
    (default), [text/csv], [text/tab-separated-values]. [GET /] serves a
    small service description. Extended queries (UNION / OPTIONAL /
    FILTER) are detected and routed to {!Amber.Extended}; [ASK] answers
    with results-JSON booleans and [CONSTRUCT] with
    [application/n-triples].

    Observability: [GET /metrics] renders the default {!Obs.Metrics}
    registry in the Prometheus text exposition format (HTTP/query
    counters, a query-latency histogram, the engine's lifetime
    index-probe counters, per-index [amber_index_resident_bytes]
    gauges and the [amber_build_info] version gauge). [GET /queries]
    returns the flight recorder's last captured records —
    per-query status, phase timings, GC delta, core order — as a JSON
    array, newest first ([?n=K] caps the count); the recorder's
    sampling rate, slow-query threshold and JSONL sink come from the
    config. [GET /healthz] answers a constant liveness document.
    Adding [profile=1] to a SELECT request embeds
    the {!Amber.Profile} report (phase timings, per-vertex candidate
    counts, matcher counters) as a top-level ["profile"] member of the
    JSON results; [analyze=1] likewise embeds the {!Amber.Analysis}
    report (unsatisfiability proofs, warnings, hints) as a top-level
    ["analysis"] member.

    The server is single-threaded and handles one connection at a time —
    plenty for the embedded use it targets; run it in its own domain if
    the application must not block. *)

type config = {
  host : string;  (** default "127.0.0.1" *)
  port : int;  (** 0 = ephemeral, see {!bound_port} *)
  timeout : float option;  (** per-query budget *)
  limit : int option;  (** per-query row cap *)
  open_objects : bool;
  domains : int option;
      (** default matcher parallelism for every query; a request's
          [domains=N] parameter (clamped to [1, 8]) overrides it.
          [None] = sequential unless the request asks. *)
  snapshot : string option;
      (** path to an ["AMBERIX1"] index snapshot for instant boot via
          {!boot}; [None] (the default) when the caller builds the
          engine itself. *)
  live_dir : string option;
      (** path to an {!Amber.Live_engine} directory. When set, {!boot}
          opens it (taking precedence over [snapshot]) and the server
          accepts [POST /update]; [None] (the default) serves a frozen
          engine and [/update] answers 405. *)
  slow_query : float option;
      (** flight-recorder slow-query threshold in seconds (default 1.0):
          queries at or past it are always captured, whatever the
          sampling rate; [None] disables the threshold. *)
  log_sample : float;
      (** flight-recorder sampling rate in [0, 1] (default 1.0 — keep
          every query). Applied deterministically; slow and failed
          queries are captured regardless. *)
  log_sink : string option;
      (** append captured flight records to this file as JSON lines
          (default [None] — in-memory ring only). *)
  plan : Amber.Stats.mode option;
      (** default plan policy for every query; a request's
          [plan=paper|adaptive|forced:<strategy>] parameter overrides
          it (an unknown value answers 400). [None] = the engine
          default ([Adaptive]). *)
  rewrite : bool;
      (** default semantic-rewriter toggle for every query (default
          [true]); a request's [rewrite=on|off] parameter overrides it
          (an unknown value answers 400). The rewriter is
          equivalence-preserving, so answers are identical either
          way. *)
}

val default_config : config

(** What the server queries: a frozen engine, or a {!Amber.Live_engine}
    whose current epoch is pinned once per request — every response is
    computed against a single consistent snapshot, however many updates
    land while it is being rendered. *)
type source = Static of Amber.Engine.t | Live of Amber.Live_engine.t

type t

val create : ?config:config -> Amber.Engine.t -> t
(** Bind and listen on a frozen engine ([Static]).
    @raise Unix.Unix_error when binding fails. *)

val create_live : ?config:config -> Amber.Live_engine.t -> t
(** Bind and listen on a live engine: queries pin the current epoch per
    request, and [POST /update] applies write batches (form-encoded
    [add] / [remove] N-Triples bodies, [compact=1] to force a
    compaction). @raise Unix.Unix_error when binding fails. *)

val boot : config -> t
(** Cold-start: with [config.live_dir], {!Amber.Live_engine.open_dir}
    then {!create_live}; otherwise {!Amber.Engine.load_snapshot} from
    [config.snapshot] then {!create} — no index rebuild, boot time is
    O(read).
    @raise Invalid_argument when both [snapshot] and [live_dir] are
    [None].
    @raise Rdf.Binary.Corrupt on a damaged snapshot or manifest.
    @raise Unix.Unix_error when binding fails. *)

val bound_port : t -> int
(** Actual port (useful with [port = 0]). *)

val serve : ?max_requests:int -> t -> unit
(** Accept loop. With [max_requests] the loop returns after that many
    connections (used by the tests); otherwise it runs forever. *)

val stop : t -> unit
(** Close the listening socket; a blocked {!serve} raises and returns. *)

(** {1 Request handling, exposed for tests} *)

val handle_request :
  config ->
  source ->
  meth:string ->
  target:string ->
  headers:(string * string) list ->
  body:string ->
  int * string * string
(** [(status, content_type, body)] for one parsed HTTP request. *)

val url_decode : string -> string
