type 'a node =
  | Leaf of (Rect.t * 'a) array
  | Inner of (Rect.t * 'a node) array

type 'a t = { root : 'a node option; max_entries : int; size : int }

let default_max = 16

let empty ?(max_entries = default_max) () =
  { root = None; max_entries = max max_entries 4; size = 0 }

let mbr_of_entries rects =
  match Array.length rects with
  | 0 -> invalid_arg "Rtree: empty node"
  | 1 -> fst rects.(0)
  | n ->
      (* One pair of bound arrays for the whole fold, not a fresh
         rectangle per entry. *)
      let r0 = fst rects.(0) in
      let k = Rect.dims r0 in
      let lo = Array.copy r0.Rect.lo and hi = Array.copy r0.Rect.hi in
      for idx = 1 to n - 1 do
        let r = fst rects.(idx) in
        for i = 0 to k - 1 do
          if r.Rect.lo.(i) < lo.(i) then lo.(i) <- r.Rect.lo.(i);
          if r.Rect.hi.(i) > hi.(i) then hi.(i) <- r.Rect.hi.(i)
        done
      done;
      Rect.make ~lo ~hi

let node_mbr = function Leaf es -> mbr_of_entries es | Inner es -> mbr_of_entries es

(* ------------------------------------------------------------------ *)
(* Sort-Tile-Recursive packing                                         *)
(* ------------------------------------------------------------------ *)

let center rect i = rect.Rect.lo.(i) + rect.Rect.hi.(i)

(* Partition [entries] into groups of at most [max_entries], tiling
   dimension [dim] first and cycling through the remaining ones. *)
let rec tile : 'b. (Rect.t * 'b) array -> int -> int -> int -> (Rect.t * 'b) array list =
  fun entries dim k max_entries ->
   let n = Array.length entries in
   if n <= max_entries then [ entries ]
   else begin
     let sorted = Array.copy entries in
     Array.sort
       (fun (r1, _) (r2, _) -> Int.compare (center r1 dim) (center r2 dim))
       sorted;
     let leaves_needed = (n + max_entries - 1) / max_entries in
     let dims_left = max 1 (k - dim) in
     let slabs =
       if dims_left = 1 then leaves_needed
       else
         let s =
           int_of_float
             (Float.ceil
                (Float.pow (float_of_int leaves_needed) (1.0 /. float_of_int dims_left)))
         in
         max 1 (min s leaves_needed)
     in
     let per_slab = (n + slabs - 1) / slabs in
     let groups = ref [] in
     let pos = ref 0 in
     while !pos < n do
       let len = min per_slab (n - !pos) in
       let slab = Array.sub sorted !pos len in
       pos := !pos + len;
       let next_dim = if dim + 1 >= k then k - 1 else dim + 1 in
       groups := tile slab next_dim k max_entries @ !groups
     done;
     List.rev !groups
   end

let bulk_load ?(max_entries = default_max) entries =
  let max_entries = max max_entries 4 in
  match entries with
  | [] -> { root = None; max_entries; size = 0 }
  | (r0, _) :: _ ->
      let k = Rect.dims r0 in
      List.iter
        (fun (r, _) ->
          if Rect.dims r <> k then
            invalid_arg "Rtree.bulk_load: mixed dimensionalities")
        entries;
      let arr = Array.of_list entries in
      let leaf_groups = tile arr 0 k max_entries in
      let level =
        List.map (fun g -> (mbr_of_entries g, Leaf g)) leaf_groups
      in
      let rec build level =
        match level with
        | [ (_, node) ] -> node
        | _ ->
            let arr = Array.of_list level in
            let groups = tile arr 0 k max_entries in
            build (List.map (fun g -> (mbr_of_entries g, Inner g)) groups)
      in
      { root = Some (build level); max_entries; size = Array.length arr }

(* ------------------------------------------------------------------ *)
(* Insertion with quadratic split                                      *)
(* ------------------------------------------------------------------ *)

(* Quadratic split of an overflowing entry array into two arrays. *)
let quadratic_split entries min_fill =
  let n = Array.length entries in
  (* Pick the pair of seeds wasting the most area together. *)
  let worst = ref neg_infinity and s1 = ref 0 and s2 = ref 1 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ri = fst entries.(i) and rj = fst entries.(j) in
      let waste = Rect.area (Rect.union ri rj) -. Rect.area ri -. Rect.area rj in
      if waste > !worst then begin
        worst := waste;
        s1 := i;
        s2 := j
      end
    done
  done;
  let g1 = ref [ entries.(!s1) ] and g2 = ref [ entries.(!s2) ] in
  let m1 = ref (fst entries.(!s1)) and m2 = ref (fst entries.(!s2)) in
  let remaining = ref [] in
  Array.iteri
    (fun i e -> if i <> !s1 && i <> !s2 then remaining := e :: !remaining)
    entries;
  let count lst = List.length lst in
  List.iter
    (fun (r, v) ->
      let left = n - count !g1 - count !g2 in
      ignore left;
      (* Force-feed a group that must reach min fill. *)
      let need1 = min_fill - count !g1
      and need2 = min_fill - count !g2
      and rest =
        List.length !remaining (* includes current, conservative *)
      in
      if need1 >= rest then begin
        g1 := (r, v) :: !g1;
        m1 := Rect.union !m1 r
      end
      else if need2 >= rest then begin
        g2 := (r, v) :: !g2;
        m2 := Rect.union !m2 r
      end
      else begin
        let e1 = Rect.enlargement !m1 r and e2 = Rect.enlargement !m2 r in
        if e1 < e2 || (e1 = e2 && Rect.area !m1 <= Rect.area !m2) then begin
          g1 := (r, v) :: !g1;
          m1 := Rect.union !m1 r
        end
        else begin
          g2 := (r, v) :: !g2;
          m2 := Rect.union !m2 r
        end
      end;
      remaining := List.tl !remaining)
    !remaining;
  (Array.of_list !g1, Array.of_list !g2)

(* Insert, returning either one node or a split pair. *)
let rec insert_node node rect value max_entries =
  match node with
  | Leaf entries ->
      let entries' = Array.append entries [| (rect, value) |] in
      if Array.length entries' <= max_entries then `One (Leaf entries')
      else
        let g1, g2 = quadratic_split entries' (max_entries / 2) in
        `Two (Leaf g1, Leaf g2)
  | Inner children ->
      (* Choose the child needing least enlargement (ties: smaller area). *)
      let best = ref 0 and best_enl = ref infinity and best_area = ref infinity in
      Array.iteri
        (fun i (r, _) ->
          let enl = Rect.enlargement r rect in
          let ar = Rect.area r in
          if enl < !best_enl || (enl = !best_enl && ar < !best_area) then begin
            best := i;
            best_enl := enl;
            best_area := ar
          end)
        children;
      let _, chosen = children.(!best) in
      let replace arr i xs =
        Array.concat
          [ Array.sub arr 0 i; Array.of_list xs; Array.sub arr (i + 1) (Array.length arr - i - 1) ]
      in
      (match insert_node chosen rect value max_entries with
      | `One n ->
          `One (Inner (replace children !best [ (node_mbr n, n) ]))
      | `Two (n1, n2) ->
          let children' =
            replace children !best [ (node_mbr n1, n1); (node_mbr n2, n2) ]
          in
          if Array.length children' <= max_entries then `One (Inner children')
          else
            let g1, g2 = quadratic_split children' (max_entries / 2) in
            `Two (Inner g1, Inner g2))

let insert t rect value =
  match t.root with
  | None ->
      { t with root = Some (Leaf [| (rect, value) |]); size = 1 }
  | Some root -> (
      match insert_node root rect value t.max_entries with
      | `One n -> { t with root = Some n; size = t.size + 1 }
      | `Two (n1, n2) ->
          let root' = Inner [| (node_mbr n1, n1); (node_mbr n2, n2) |] in
          { t with root = Some root'; size = t.size + 1 })

(* ------------------------------------------------------------------ *)
(* Searches                                                            *)
(* ------------------------------------------------------------------ *)

let size t = t.size

let height t =
  let rec depth = function
    | Leaf _ -> 1
    | Inner children -> 1 + depth (snd children.(0))
  in
  match t.root with None -> 0 | Some n -> depth n

let fold_containing query f t init =
  let rec go node acc =
    match node with
    | Leaf entries ->
        Array.fold_left
          (fun acc (r, v) -> if Rect.contains r query then f v acc else acc)
          acc entries
    | Inner children ->
        Array.fold_left
          (fun acc (mbr, child) ->
            (* A child can contain [query] only if the subtree MBR does. *)
            if Rect.contains mbr query then go child acc else acc)
          acc children
  in
  match t.root with None -> init | Some n -> go n init

let search_containing t query =
  List.rev (fold_containing query (fun v acc -> v :: acc) t [])

let search_intersecting t query =
  let rec go node acc =
    match node with
    | Leaf entries ->
        Array.fold_left
          (fun acc (r, v) -> if Rect.intersects r query then v :: acc else acc)
          acc entries
    | Inner children ->
        Array.fold_left
          (fun acc (mbr, child) ->
            if Rect.intersects mbr query then go child acc else acc)
          acc children
  in
  match t.root with None -> [] | Some n -> List.rev (go n [])

let to_list t =
  let rec go node acc =
    match node with
    | Leaf entries -> Array.fold_left (fun acc e -> e :: acc) acc entries
    | Inner children -> Array.fold_left (fun acc (_, c) -> go c acc) acc children
  in
  match t.root with None -> [] | Some n -> go n []

(* Snapshot codec. Only the packed structure and the leaf values go to
   the wire: a leaf entry's rectangle is a function of its value (for
   the synopsis index, the vertex's stored synopsis) and every inner
   MBR is the union of its children, so both are recomputed bottom-up
   on decode. This halves the section and stays canonical — the bytes
   are determined by the tree shape and values alone. Integers go
   through a caller-supplied codec, keeping this library
   dependency-free. *)
let encode buf ~write_int ~write_value t =
  write_int buf t.max_entries;
  write_int buf t.size;
  let rec write_node = function
    | Leaf entries ->
        write_int buf 0;
        write_int buf (Array.length entries);
        Array.iter (fun (_, v) -> write_value buf v) entries
    | Inner children ->
        write_int buf 1;
        write_int buf (Array.length children);
        Array.iter (fun (_, child) -> write_node child) children
  in
  match t.root with
  | None -> write_int buf 0
  | Some root ->
      write_int buf 1;
      write_node root

let decode src pos ~read_int ~read_value ~rect_of_value =
  let fail msg = failwith ("Rtree.decode: " ^ msg) in
  let max_entries = read_int src pos in
  let size = read_int src pos in
  if max_entries < 4 || size < 0 then fail "bad header";
  let read_count () =
    let n = read_int src pos in
    if n < 1 || n > max_entries then fail "bad node fan-out";
    n
  in
  (* Rebuild geometry as we go: [read_node] returns the node with its
     MBR so a parent can take unions without a second pass. *)
  let rec read_node () =
    match read_int src pos with
    | 0 ->
        let n = read_count () in
        let entries =
          Array.init n (fun _ ->
              let v = read_value src pos in
              (rect_of_value v, v))
        in
        (mbr_of_entries entries, Leaf entries)
    | 1 ->
        let n = read_count () in
        let children = Array.init n (fun _ -> read_node ()) in
        (mbr_of_entries children, Inner children)
    | _ -> fail "bad node tag"
  in
  match read_int src pos with
  | 0 -> if size = 0 then { root = None; max_entries; size } else fail "bad header"
  | 1 ->
      let _, root = read_node () in
      { root = Some root; max_entries; size }
  | _ -> fail "bad root tag"

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match t.root with
  | None -> if t.size = 0 then Ok () else fail "empty root but size %d" t.size
  | Some root ->
      let exception Bad of string in
      let rec check node depth =
        let entries_mbr, count, depths =
          match node with
          | Leaf entries ->
              if Array.length entries = 0 then raise (Bad "empty leaf");
              (mbr_of_entries entries, Array.length entries, [ depth ])
          | Inner children ->
              if Array.length children = 0 then raise (Bad "empty inner node");
              let depths = ref [] and count = ref 0 in
              Array.iter
                (fun (mbr, child) ->
                  let actual = node_mbr child in
                  if not (Rect.equal actual mbr) then
                    raise (Bad "stored MBR differs from children union");
                  let c, ds = check child (depth + 1) in
                  count := !count + c;
                  depths := ds @ !depths)
                children;
              (mbr_of_entries children, !count, !depths)
        in
        ignore entries_mbr;
        let fanout =
          match node with
          | Leaf e -> Array.length e
          | Inner c -> Array.length c
        in
        if fanout > t.max_entries then
          raise (Bad (Printf.sprintf "fan-out %d exceeds max %d" fanout t.max_entries));
        (count, depths)
      in
      (try
         let count, depths = check root 0 in
         if count <> t.size then fail "size %d but %d entries found" t.size count
         else
           match depths with
           | [] -> fail "no leaves"
           | d :: rest ->
               if List.for_all (Int.equal d) rest then Ok ()
               else fail "leaves at differing depths"
       with Bad msg -> Error msg)
