(** R-tree over k-dimensional integer rectangles.

    Supports Sort-Tile-Recursive bulk loading (the offline index build),
    single insertions with quadratic splitting (for incremental updates),
    and the two searches the engine needs: rectangles {e containing} a
    query box — the synopsis-containment probe of paper Lemma 1 — and
    rectangles intersecting a box. *)

type 'a t

val empty : ?max_entries:int -> unit -> 'a t
(** [max_entries] is the node fan-out [M] (default 16, minimum 4);
    min fill is [M/2] for splits. *)

val bulk_load : ?max_entries:int -> (Rect.t * 'a) list -> 'a t
(** Build by Sort-Tile-Recursive packing: near-full leaves, balanced
    height. All entries must share one dimensionality. *)

val insert : 'a t -> Rect.t -> 'a -> 'a t
(** Functional insert (path copying); the input tree remains valid. *)

val size : 'a t -> int
(** Number of stored entries. *)

val height : 'a t -> int
(** 0 for empty, 1 for a single leaf. *)

val search_containing : 'a t -> Rect.t -> 'a list
(** All values whose rectangle contains the query rectangle. *)

val search_intersecting : 'a t -> Rect.t -> 'a list

val fold_containing : Rect.t -> ('a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Allocation-light variant of {!search_containing}. *)

val to_list : 'a t -> (Rect.t * 'a) list
(** All entries, in unspecified order. *)

val check_invariants : 'a t -> (unit, string) result
(** Validate MBR consistency, fan-out bounds and leaf depth uniformity —
    used by the test suite. *)

val encode :
  Buffer.t ->
  write_int:(Buffer.t -> int -> unit) ->
  write_value:(Buffer.t -> 'a -> unit) ->
  'a t ->
  unit
(** Serialize the exact tree structure: node shapes and leaf values
    only. Rectangles are not written — a leaf rectangle is a function
    of its value and every inner MBR is the union of its children, so
    {!decode} recomputes both. The bytes are canonical for a given
    tree shape and value sequence. *)

val decode :
  string ->
  int ref ->
  read_int:(string -> int ref -> int) ->
  read_value:(string -> int ref -> 'a) ->
  rect_of_value:('a -> Rect.t) ->
  'a t
(** Inverse of {!encode}, reading at [!pos] and advancing it. Leaf
    rectangles come from [rect_of_value]; inner MBRs are rebuilt
    bottom-up as unions, with no second pass.
    @raise Failure on structurally malformed input (bad tags, fan-out
    out of bounds) or when [rect_of_value] raises it (unknown value);
    [read_int]/[read_value] exceptions pass through. *)
