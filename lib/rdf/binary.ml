let magic = "AMBERDB1"

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

module Varint = struct
  (* LEB128, unsigned. OCaml ints are non-negative here (lengths and
     dictionary indexes). The reader is strict: non-minimal encodings
     (a redundant trailing 0x00 group) and encodings overflowing the
     63-bit int range raise [Corrupt], so a flipped continuation bit
     cannot silently decode to a different value. *)
  let write buf n =
    if n < 0 then invalid_arg "Binary.Varint.write: negative";
    let rec loop n =
      if n < 0x80 then Buffer.add_char buf (Char.chr n)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
        loop (n lsr 7)
      end
    in
    loop n

  let rec read_slow src pos shift acc =
    if !pos >= String.length src then corrupt "truncated varint";
    if shift > 56 then corrupt "varint overflow";
    let byte = Char.code (String.unsafe_get src !pos) in
    incr pos;
    if byte land 0x80 = 0 then begin
      if byte = 0 && shift > 0 then corrupt "non-minimal varint";
      (* The group at shift 56 may only fill bits 56..61: bit 62 is
         the sign bit of a 63-bit OCaml int. *)
      if shift = 56 && byte > 0x3F then corrupt "varint overflow";
      acc lor (byte lsl shift)
    end
    else read_slow src pos (shift + 7) (acc lor ((byte land 0x7F) lsl shift))

  (* Single-byte fast path: the overwhelmingly common case in the index
     snapshots (labels, degrees, small ids). *)
  let read src pos =
    let p = !pos in
    if p < String.length src then begin
      let byte = Char.code (String.unsafe_get src p) in
      if byte land 0x80 = 0 then begin
        pos := p + 1;
        byte
      end
      else read_slow src pos 0 0
    end
    else corrupt "truncated varint"

  (* Signed values (R-tree coordinates can be negative) use the zigzag
     mapping n -> (n << 1) XOR (n >> 62) over the full 63-bit pattern,
     so small magnitudes of either sign stay short. *)
  let write_signed buf n =
    let rec loop u =
      if u land lnot 0x7F = 0 then Buffer.add_char buf (Char.chr u)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (u land 0x7F)));
        loop (u lsr 7)
      end
    in
    loop ((n lsl 1) lxor (n asr 62))

  (* Like [read_slow], but the final group at shift 56 may use all 7
     bits: the zigzag pattern fills the full 63-bit word (bit 62 is
     data, not a sign bit to protect). *)
  let rec read_signed_slow src pos shift acc =
    if !pos >= String.length src then corrupt "truncated varint";
    if shift > 56 then corrupt "varint overflow";
    let byte = Char.code (String.unsafe_get src !pos) in
    incr pos;
    if byte land 0x80 = 0 then begin
      if byte = 0 && shift > 0 then corrupt "non-minimal varint";
      acc lor (byte lsl shift)
    end
    else read_signed_slow src pos (shift + 7) (acc lor ((byte land 0x7F) lsl shift))

  let read_signed src pos =
    let p = !pos in
    let u =
      if p < String.length src then begin
        let byte = Char.code (String.unsafe_get src p) in
        if byte land 0x80 = 0 then begin
          pos := p + 1;
          byte
        end
        else read_signed_slow src pos 0 0
      end
      else corrupt "truncated varint"
    in
    (u lsr 1) lxor (- (u land 1))
end

(* CRC-32 (IEEE 802.3, reflected), table driven — guards snapshot
   sections against the corruption the varint reader alone cannot see.
   Slicing-by-4: four derived tables let the hot loop fold one 32-bit
   word per iteration instead of one byte. *)
let crc_tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c)
     in
     let next t = Array.map (fun c -> t0.(c land 0xFF) lxor (c lsr 8)) t in
     let t1 = next t0 in
     let t2 = next t1 in
     let t3 = next t2 in
     (t0, t1, t2, t3))

let crc32 ?(off = 0) ?len src =
  let len = match len with Some l -> l | None -> String.length src - off in
  if off < 0 || len < 0 || off + len > String.length src then
    invalid_arg "Binary.crc32: range out of bounds";
  let t0, t1, t2, t3 = Lazy.force crc_tables in
  let c = ref 0xFFFFFFFF in
  let byte i = Char.code (String.unsafe_get src i) in
  let i = ref off in
  let stop4 = off + (len land lnot 3) in
  while !i < stop4 do
    let w =
      byte !i
      lor (byte (!i + 1) lsl 8)
      lor (byte (!i + 2) lsl 16)
      lor (byte (!i + 3) lsl 24)
    in
    let x = !c lxor w in
    c :=
      t3.(x land 0xFF)
      lxor t2.((x lsr 8) land 0xFF)
      lxor t1.((x lsr 16) land 0xFF)
      lxor t0.((x lsr 24) land 0xFF);
    i := !i + 4
  done;
  for j = !i to off + len - 1 do
    c := t0.((!c lxor byte j) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let write_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let read_string src pos =
  let len = Varint.read src pos in
  if !pos + len > String.length src then corrupt "truncated string";
  let s = String.sub src !pos len in
  pos := !pos + len;
  s

(* Term tags. *)
let tag_iri = 0
let tag_plain = 1
let tag_typed = 2
let tag_lang = 3
let tag_bnode = 4

let write_term buf = function
  | Term.Iri iri ->
      Varint.write buf tag_iri;
      write_string buf iri
  | Term.Literal { value; datatype = None; lang = None } ->
      Varint.write buf tag_plain;
      write_string buf value
  | Term.Literal { value; datatype = Some dt; lang = None } ->
      Varint.write buf tag_typed;
      write_string buf value;
      write_string buf dt
  | Term.Literal { value; datatype = None; lang = Some l } ->
      Varint.write buf tag_lang;
      write_string buf value;
      write_string buf l
  | Term.Literal { datatype = Some _; lang = Some _; _ } ->
      assert false (* Term.literal forbids this combination *)
  | Term.Bnode b ->
      Varint.write buf tag_bnode;
      write_string buf b

let read_term src pos =
  let tag = Varint.read src pos in
  if tag = tag_iri then Term.iri (read_string src pos)
  else if tag = tag_plain then Term.literal (read_string src pos)
  else if tag = tag_typed then begin
    let value = read_string src pos in
    Term.literal ~datatype:(read_string src pos) value
  end
  else if tag = tag_lang then begin
    let value = read_string src pos in
    Term.literal ~lang:(read_string src pos) value
  end
  else if tag = tag_bnode then Term.bnode (read_string src pos)
  else corrupt "unknown term tag %d" tag

let write buf triples =
  Buffer.add_string buf magic;
  (* Dictionary: distinct terms in first-occurrence order. *)
  let ids = Hashtbl.create 1024 in
  let dictionary = ref [] in
  let dict_size = ref 0 in
  let id_of term =
    let key = Term.to_string term in
    match Hashtbl.find_opt ids key with
    | Some id -> id
    | None ->
        let id = !dict_size in
        Hashtbl.add ids key id;
        dictionary := term :: !dictionary;
        incr dict_size;
        id
  in
  let encoded =
    List.map
      (fun { Triple.subject; predicate; obj } ->
        (id_of subject, id_of predicate, id_of obj))
      triples
  in
  Varint.write buf !dict_size;
  List.iter (write_term buf) (List.rev !dictionary);
  Varint.write buf (List.length encoded);
  List.iter
    (fun (s, p, o) ->
      Varint.write buf s;
      Varint.write buf p;
      Varint.write buf o)
    encoded

let read src ~pos =
  let n = String.length magic in
  if String.length src < pos + n || String.sub src pos n <> magic then
    corrupt "bad magic (not an AMbER binary RDF file)";
  let cursor = ref (pos + n) in
  let dict_size = Varint.read src cursor in
  let dictionary = Array.init dict_size (fun _ -> read_term src cursor) in
  let term id =
    if id < 0 || id >= dict_size then corrupt "term index %d out of range" id
    else dictionary.(id)
  in
  let count = Varint.read src cursor in
  List.init count (fun _ ->
      let s = Varint.read src cursor in
      let p = Varint.read src cursor in
      let o = Varint.read src cursor in
      match Triple.make (term s) (term p) (term o) with
      | t -> t
      | exception Triple.Invalid msg -> corrupt "invalid triple: %s" msg)

let write_file path triples =
  let buf = Buffer.create (1 lsl 16) in
  write buf triples;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  read src ~pos:0
