(** Compact binary RDF serialization — the {e triple interchange}
    format of the offline stage.

    Layout: an 8-byte magic ["AMBERDB1"], a term dictionary (every
    distinct term once, tagged by kind), then the triples as dictionary
    indexes. Unsigned integers use LEB128 varints, so files are
    typically 3–6× smaller than the equivalent N-Triples and parse an
    order of magnitude faster.

    This module stores {e triples only}: loading an ["AMBERDB1"] file
    replays the whole offline stage (multigraph transformation plus the
    [A]/[S]/[N] index builds). The fully built engine state — database,
    dictionaries and indexes — is persisted separately by the
    ["AMBERIX1"] index snapshots of [Amber.Snapshot], which reuse the
    varint/term conventions and the {!Corrupt} exception defined here. *)

val magic : string

exception Corrupt of string
(** Raised by the readers on malformed input (bad magic, truncated
    varint, out-of-range index, unknown tag, bad section CRC). Shared
    with the snapshot reader of [Amber.Snapshot]. *)

val write : Buffer.t -> Triple.t list -> unit

val read : string -> pos:int -> Triple.t list
(** Read from a string starting at [pos] (the whole buffer must contain
    the full document). *)

val write_file : string -> Triple.t list -> unit
val read_file : string -> Triple.t list

val crc32 : ?off:int -> ?len:int -> string -> int
(** CRC-32 (IEEE, reflected) of a substring — the per-section checksum
    of the snapshot format. @raise Invalid_argument on a range outside
    the string. *)

val write_term : Buffer.t -> Term.t -> unit
(** Tagged term encoding (exposed for the snapshot writer). *)

val read_term : string -> int ref -> Term.t
(** @raise Corrupt on truncation or an unknown tag. *)

(**/**)

module Varint : sig
  val write : Buffer.t -> int -> unit
  (** @raise Invalid_argument on negative input. *)

  val read : string -> int ref -> int
  (** Strict: @raise Corrupt on truncation, overflow past the 63-bit
      int range, or a non-minimal encoding (redundant trailing zero
      group). *)

  val write_signed : Buffer.t -> int -> unit
  (** Zigzag-mapped signed varint (small magnitudes of either sign stay
      short) — R-tree coordinates can be negative. *)

  val read_signed : string -> int ref -> int
  (** @raise Corrupt on truncation, overflow or non-minimal encoding. *)
end
