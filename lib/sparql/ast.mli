(** Abstract syntax for the SPARQL fragment of the paper:
    [SELECT ... WHERE] over basic graph patterns, plus [DISTINCT] and
    [LIMIT]. No [FILTER] / [UNION] / [GROUP BY] (explicitly out of the
    paper's scope). *)

type term =
  | Var of string  (** [?X0] — without the leading [?] *)
  | Iri of string  (** absolute IRI (prefixes already expanded) *)
  | Lit of Rdf.Term.literal

type triple_pattern = { subject : term; predicate : term; obj : term }

type selection =
  | Select_all  (** [SELECT *] *)
  | Select_vars of string list  (** in declaration order *)

type sort_direction = Asc | Desc

type t = {
  select : selection;
  distinct : bool;
  where : triple_pattern list;
  order_by : (string * sort_direction) list;  (** sort keys, major first *)
  limit : int option;
  offset : int option;
}

val make :
  ?distinct:bool ->
  ?order_by:(string * sort_direction) list ->
  ?limit:int ->
  ?offset:int ->
  selection ->
  triple_pattern list ->
  t

val pattern : term -> term -> term -> triple_pattern

val variables : t -> string list
(** All variables of the WHERE clause, in first-occurrence order. *)

val selected_variables : t -> string list
(** Variables the query projects: the SELECT list, or for [SELECT *] all
    of {!variables}. *)

val is_basic : t -> bool
(** [true] when every predicate is an IRI and every subject is a
    variable or an IRI — the fragment AMbER supports (Section 2.2). *)

val term_equal : term -> term -> bool
val pp_term : Format.formatter -> term -> unit
val pp_pattern : Format.formatter -> triple_pattern -> unit

val term_to_string : term -> string
(** One-line concrete-syntax rendering of a term. *)

val pattern_to_string : triple_pattern -> string
(** One-line concrete-syntax rendering of a pattern — the span text the
    analyzer and rewriter report diagnostics against. *)

val pp : Format.formatter -> t -> unit
(** Print as concrete SPARQL syntax (re-parseable by {!Parser}). *)

val to_string : t -> string

val compare_rows :
  (string * sort_direction) list ->
  string list ->
  Rdf.Term.t option list ->
  Rdf.Term.t option list ->
  int
(** [compare_rows order_by variables r1 r2] — the ORDER BY comparator
    over projected rows ([variables] gives the column names, in row
    order). Unbound sorts lowest; ties keep the original order when used
    with a stable sort. *)
