type term = Var of string | Iri of string | Lit of Rdf.Term.literal

type triple_pattern = { subject : term; predicate : term; obj : term }

type selection = Select_all | Select_vars of string list

type sort_direction = Asc | Desc

type t = {
  select : selection;
  distinct : bool;
  where : triple_pattern list;
  order_by : (string * sort_direction) list;
  limit : int option;
  offset : int option;
}

let make ?(distinct = false) ?(order_by = []) ?limit ?offset select where =
  { select; distinct; where; order_by; limit; offset }

let pattern subject predicate obj = { subject; predicate; obj }

let variables q =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let visit = function
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end
    | Iri _ | Lit _ -> ()
  in
  List.iter
    (fun { subject; predicate; obj } ->
      visit subject;
      visit predicate;
      visit obj)
    q.where;
  List.rev !out

let selected_variables q =
  match q.select with Select_all -> variables q | Select_vars vs -> vs

let is_basic q =
  List.for_all
    (fun { subject; predicate; obj = _ } ->
      (match predicate with Iri _ -> true | Var _ | Lit _ -> false)
      && match subject with Var _ | Iri _ -> true | Lit _ -> false)
    q.where

let term_equal t1 t2 =
  match (t1, t2) with
  | Var a, Var b -> String.equal a b
  | Iri a, Iri b -> String.equal a b
  | Lit a, Lit b -> Rdf.Term.equal (Rdf.Term.Literal a) (Rdf.Term.Literal b)
  | (Var _ | Iri _ | Lit _), _ -> false

let pp_term ppf = function
  | Var v -> Format.fprintf ppf "?%s" v
  | Iri i -> Format.fprintf ppf "<%s>" i
  | Lit l -> Rdf.Term.pp ppf (Rdf.Term.Literal l)

let pp_pattern ppf { subject; predicate; obj } =
  Format.fprintf ppf "%a %a %a ." pp_term subject pp_term predicate pp_term obj

let term_to_string t = Format.asprintf "%a" pp_term t
let pattern_to_string p = Format.asprintf "%a" pp_pattern p

let pp ppf q =
  Format.fprintf ppf "@[<v>SELECT %s%s@,WHERE {@,"
    (if q.distinct then "DISTINCT " else "")
    (match q.select with
    | Select_all -> "*"
    | Select_vars vs -> String.concat " " (List.map (fun v -> "?" ^ v) vs));
  List.iter (fun p -> Format.fprintf ppf "  %a@," pp_pattern p) q.where;
  Format.fprintf ppf "}";
  (match q.order_by with
  | [] -> ()
  | keys ->
      Format.fprintf ppf "@,ORDER BY %s"
        (String.concat " "
           (List.map
              (fun (v, dir) ->
                match dir with
                | Asc -> "?" ^ v
                | Desc -> Printf.sprintf "DESC(?%s)" v)
              keys)));
  (match q.limit with
  | None -> ()
  | Some n -> Format.fprintf ppf "@,LIMIT %d" n);
  match q.offset with
  | None -> ()
  | Some n -> Format.fprintf ppf "@,OFFSET %d" n

let to_string q = Format.asprintf "%a" pp q

let compare_rows order_by variables r1 r2 =
  let column v =
    let rec loop i = function
      | [] -> None
      | name :: rest -> if String.equal name v then Some i else loop (i + 1) rest
    in
    loop 0 variables
  in
  let cell row i = List.nth_opt row i |> Option.join in
  let compare_cell c1 c2 =
    match (c1, c2) with
    | None, None -> 0
    | None, Some _ -> -1 (* unbound sorts lowest *)
    | Some _, None -> 1
    | Some t1, Some t2 -> Rdf.Term.order_compare t1 t2
  in
  let rec walk = function
    | [] -> 0
    | (v, dir) :: rest -> (
        match column v with
        | None -> walk rest
        | Some i ->
            let c = compare_cell (cell r1 i) (cell r2 i) in
            if c = 0 then walk rest
            else match dir with Asc -> c | Desc -> -c)
  in
  walk order_by
