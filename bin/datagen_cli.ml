(* datagen — generate benchmark datasets and query workloads.

     datagen dataset --kind lubm --out data.nt [--universities 3]
     datagen dataset --kind dbpedia --out data.nt [--scale 0.1] [--skew F]
     datagen workload --data data.nt --shape star --size 20 --count 50 --out dir/ *)

open Cmdliner

let out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Output file (or directory for workloads).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

(* --- dataset ---------------------------------------------------------- *)

let kind_arg =
  Arg.(
    value
    & opt (enum [ ("lubm", `Lubm); ("dbpedia", `Dbpedia); ("yago", `Yago) ]) `Lubm
    & info [ "kind" ] ~docv:"KIND" ~doc:"Dataset family: lubm | dbpedia | yago.")

let scale_arg =
  Arg.(
    value & opt float 0.1
    & info [ "scale" ] ~docv:"F" ~doc:"Scale factor for dbpedia/yago kinds.")

let universities_arg =
  Arg.(
    value & opt int 3
    & info [ "universities" ] ~docv:"N" ~doc:"University count for the lubm kind.")

let skew_arg =
  Arg.(
    value & opt float 0.0
    & info [ "skew" ] ~docv:"F"
        ~doc:
          "Degree skew for dbpedia/yago kinds: 0 (default) keeps the \
           historical shape; larger values concentrate edges on hub \
           entities (try 1.0-2.0) — the datasets the adaptive planner is \
           benchmarked against.")

let run_dataset kind out seed scale universities skew =
  let triples =
    match kind with
    | `Lubm ->
        if skew > 0.0 then
          prerr_endline "note: --skew applies to dbpedia/yago kinds only; ignored";
        Datagen.Lubm.generate ~seed ~universities ()
    | `Dbpedia ->
        Datagen.Scale_free.generate ~seed ~skew
          (Datagen.Scale_free.dbpedia_like ~scale ())
    | `Yago ->
        Datagen.Scale_free.generate ~seed ~skew
          (Datagen.Scale_free.yago_like ~scale ())
  in
  (* Pick the serialization from the file extension. *)
  if Filename.check_suffix out ".adb" then Rdf.Binary.write_file out triples
  else Rdf.Ntriples.write_file out triples;
  Printf.printf "wrote %d triples to %s\n" (List.length triples) out

let dataset_cmd =
  let doc = "generate a benchmark dataset as N-Triples" in
  Cmd.v (Cmd.info "dataset" ~doc)
    Term.(
      const run_dataset $ kind_arg $ out_arg $ seed_arg $ scale_arg
      $ universities_arg $ skew_arg)

(* --- workload --------------------------------------------------------- *)

let data_arg =
  Arg.(
    required
    & opt (some non_dir_file) None
    & info [ "d"; "data" ] ~docv:"FILE" ~doc:"N-Triples data file to carve queries from.")

let shape_arg =
  Arg.(
    value
    & opt (enum [ ("star", Datagen.Workload.Star); ("complex", Datagen.Workload.Complex) ])
        Datagen.Workload.Star
    & info [ "shape" ] ~docv:"SHAPE" ~doc:"Query shape: star | complex.")

let size_arg =
  Arg.(value & opt int 10 & info [ "size" ] ~docv:"N" ~doc:"Triple patterns per query.")

let count_arg =
  Arg.(value & opt int 20 & info [ "count" ] ~docv:"N" ~doc:"Number of queries.")

let run_workload data shape size count seed out =
  let triples = Rdf.Ntriples.parse_file data in
  let corpus = Datagen.Workload.corpus triples in
  let queries = Datagen.Workload.generate ~seed corpus ~shape ~size ~count in
  if not (Sys.file_exists out) then Unix.mkdir out 0o755;
  List.iteri
    (fun i ast ->
      let path = Filename.concat out (Printf.sprintf "q%03d.sparql" i) in
      let oc = open_out path in
      output_string oc (Sparql.Ast.to_string ast);
      output_string oc "\n";
      close_out oc)
    queries;
  Printf.printf "wrote %d queries to %s/\n" (List.length queries) out

let workload_cmd =
  let doc = "generate a star/complex SPARQL workload from a dataset" in
  Cmd.v (Cmd.info "workload" ~doc)
    Term.(
      const run_workload $ data_arg $ shape_arg $ size_arg $ count_arg $ seed_arg
      $ out_arg)

let () =
  let doc = "benchmark data and workload generators for AMbER" in
  exit (Cmd.eval (Cmd.group (Cmd.info "datagen" ~doc) [ dataset_cmd; workload_cmd ]))
