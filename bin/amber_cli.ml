(* amber — command-line front end.

     amber query   --data g.nt --query q.sparql [--engine amber] [--timeout S]
     amber build   g.nt -o db.amberix [--domains N] [--layout L]  (index snapshot)
     amber stats   --data g.nt
     amber bench   --data g.nt --query q.sparql (time one query on all engines)
     amber explain --data g.nt --query q.sparql [--plan P] [--json]
     amber lint    --data g.nt q1.sparql [q2.sparql ...] [--json]
     amber fsck    db.amberix (validate a snapshot without serving it)
     amber log tail flight.jsonl [--n N] [--json]  (flight-recorder sink)
     amber update  live/ [--init BASE] [--add F] [--remove F] [--compact]

   Query text can also be passed inline with --sparql. Data files ending
   in .ttl are parsed as Turtle, anything else as N-Triples — except
   files starting with the "AMBERIX1" magic (written by `amber build`),
   which load as prebuilt index snapshots: every subcommand sniffs the
   magic, so `query`, `serve`, `stats` and `bench` all accept .amberix
   inputs, skipping the offline rebuild. A --data argument that names a
   directory is opened as a live-engine directory (`amber update
   --init`): queries and `serve` see the current epoch — base plus
   pending delta — and `serve` additionally accepts POST /update.
   With --extended, queries may
   use UNION / OPTIONAL / FILTER (amber engine only). `query --profile`
   prints the per-query profile (phase tree, candidate counts, matcher
   counters); `query --explain` the matching plan; `query --trace-out f`
   writes the phase tree as Chrome trace-event JSON for Perfetto.
   --plan paper|adaptive|forced:<rtree|attrs|scan> picks the planner
   policy on `query`, `explain` and `serve`; answers never depend on
   it. --rewrite on|off toggles the semantic query rewriter on the same
   three commands (default on; equivalence-preserving, answers never
   depend on it either). `lint` additionally prints what the rewriter
   would simplify; `lint --strict` exits non-zero on warnings, not just
   on proven-empty queries. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- common options ------------------------------------------------- *)

let data_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "data" ] ~docv:"FILE"
        ~doc:
          "Data: an N-Triples/Turtle/.adb file, an .amberix snapshot, or a \
           live-engine directory (see $(b,amber update)).")

let query_file_arg =
  Arg.(
    value
    & opt (some non_dir_file) None
    & info [ "q"; "query" ] ~docv:"FILE" ~doc:"SPARQL query file.")

let sparql_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sparql" ] ~docv:"QUERY" ~doc:"Inline SPARQL query text.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-query time budget.")

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit" ] ~docv:"N" ~doc:"Cap the number of result rows.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Run the matcher on up to $(docv) domains (amber engine only; \
           clamped to 1-8). Default: sequential.")

let engine_arg =
  Arg.(
    value
    & opt (enum
             [ ("amber", `Amber); ("xrdf3x", `Rdf3x); ("virtuoso", `Virtuoso);
               ("jena", `Jena); ("gstore", `Gstore); ("reference", `Reference) ])
        `Amber
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Engine: amber | xrdf3x | virtuoso | jena | gstore | reference \
           (brute-force oracle; tiny data only).")

let open_objects_arg =
  Arg.(
    value & flag
    & info [ "open-objects" ]
        ~doc:"Enable AMbER's literal-binding extension (amber engine only).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("table", `Table); ("csv", `Csv); ("tsv", `Tsv); ("json", `Json) ])
        `Table
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: table | csv | tsv | json.")

let extended_arg =
  Arg.(
    value & flag
    & info [ "extended" ]
        ~doc:
          "Parse the query with UNION / OPTIONAL / FILTER support and evaluate \
           it on the AMbER algebra engine.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print a per-query profile after the results: phase tree (parse, \
           decompose, candidates, match, enumerate), per-vertex candidate \
           counts before/after pruning, and the matcher's search counters \
           (amber engine, SELECT queries).")

let explain_flag_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print the decomposition and matching order before answering \
           (amber engine only).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's phase tree to $(docv) as Chrome trace-event JSON, \
           openable in Perfetto (ui.perfetto.dev) or chrome://tracing. \
           Implies a profiled run; with --domains N the per-domain chunk \
           spans appear as separate lanes (amber engine, SELECT only).")

let plan_conv =
  let parse v =
    match Amber.Stats.mode_of_string v with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown plan %S (expected paper, adaptive or \
                 forced:<rtree|attrs|scan>)"
                v))
  in
  let print ppf m = Format.pp_print_string ppf (Amber.Stats.mode_to_string m) in
  Arg.conv (parse, print)

let plan_arg =
  Arg.(
    value
    & opt (some plan_conv) None
    & info [ "plan" ] ~docv:"PLAN"
        ~doc:
          "Seed/ordering policy: paper (the fixed r1/r2 order and R-tree \
           probe), adaptive (cardinality-driven, the default), or \
           forced:<rtree|attrs|scan> to pin the seed strategy. Answers are \
           identical across plans (amber engine only).")

let rewrite_conv =
  let parse v =
    match String.lowercase_ascii v with
    | "on" | "true" | "1" | "yes" -> Ok true
    | "off" | "false" | "0" | "no" -> Ok false
    | _ ->
        Error
          (`Msg (Printf.sprintf "unknown rewrite %S (expected on or off)" v))
  in
  let print ppf b = Format.pp_print_string ppf (if b then "on" else "off") in
  Arg.conv (parse, print)

let rewrite_arg =
  Arg.(
    value
    & opt (some rewrite_conv) None
    & info [ "rewrite" ] ~docv:"on|off"
        ~doc:
          "Toggle the semantic query rewriter (duplicate elimination, core \
           minimization, constant propagation, Cartesian-product hints) run \
           before planning. Default on; every pass is \
           equivalence-preserving, so answers are identical either way \
           (amber engine only).")

let query_text query_file sparql =
  match (sparql, query_file) with
  | Some q, _ -> q
  | None, Some f -> read_file f
  | None, None ->
      prerr_endline "error: provide --query FILE or --sparql QUERY";
      exit 2

(* Reopen a live directory, reporting where it stands. *)
let open_live_dir dir =
  match Amber.Live_engine.open_dir dir with
  | live ->
      let ep = Amber.Live_engine.pin live in
      let d = Amber.Live_engine.delta ep in
      Printf.eprintf
        "amber: opened live directory %s (generation %d, version %d, delta \
         +%d/-%d)\n%!"
        dir
        (Amber.Live_engine.generation ep)
        (Amber.Live_engine.version ep)
        (Amber.Delta.add_count d) (Amber.Delta.del_count d);
      live
  | exception Rdf.Binary.Corrupt msg ->
      Printf.eprintf "corrupt live directory %s: %s\n" dir msg;
      exit 1
  | exception Sys_error msg ->
      Printf.eprintf "cannot open live directory %s: %s\n" dir msg;
      exit 1

let load_triples path =
  let parse () =
    (* A snapshot holds the built indexes; engines needing raw triples
       (baselines, compile) get them back out of the database. A live
       directory contributes its merged world: base plus delta. *)
    if Sys.is_directory path then
      Amber.Database.to_triples
        (Amber.Engine.db
           (Amber.Live_engine.engine (Amber.Live_engine.pin (open_live_dir path))))
    else if Amber.Snapshot.sniff_file path then
      Amber.Database.to_triples (Amber.Snapshot.read_file path).Amber.Snapshot.db
    else if Filename.check_suffix path ".ttl" then Rdf.Turtle.parse_file path
    else if Filename.check_suffix path ".adb" then Rdf.Binary.read_file path
    else Rdf.Ntriples.parse_file path
  in
  match parse () with
  | triples ->
      Printf.eprintf "loaded %d triples from %s\n%!" (List.length triples) path;
      triples
  | exception Rdf.Ntriples.Parse_error e ->
      Format.eprintf "%a@." Rdf.Ntriples.pp_error e;
      exit 1
  | exception Rdf.Turtle.Parse_error e ->
      Format.eprintf "%a@." Rdf.Turtle.pp_error e;
      exit 1
  | exception Rdf.Binary.Corrupt msg ->
      Printf.eprintf "corrupt binary database: %s\n" msg;
      exit 1

(* The AMbER engine itself: an "AMBERIX1" file loads directly (no
   rebuild); anything else parses as triples and runs the offline stage
   (on [domains] domains when given). *)
let load_engine ?domains path =
  if Sys.is_directory path then
    Amber.Live_engine.engine (Amber.Live_engine.pin (open_live_dir path))
  else if Amber.Snapshot.sniff_file path then begin
    match Bench_util.Runner.time (fun () -> Amber.Engine.load_snapshot path) with
    | dt, e ->
        Printf.eprintf "amber: loaded index snapshot in %.2fs\n%!" dt;
        e
    | exception Rdf.Binary.Corrupt msg ->
        Printf.eprintf "corrupt index snapshot: %s\n" msg;
        exit 1
  end
  else begin
    let triples = load_triples path in
    let dt, e =
      Bench_util.Runner.time (fun () -> Amber.Engine.build ?domains triples)
    in
    Printf.eprintf "amber: offline stage %.2fs\n%!" dt;
    e
  end

let print_answer ?(format = `Table) variables rows truncated =
  match format with
  | `Table ->
      print_endline (String.concat "\t" variables);
      List.iter
        (fun row ->
          print_endline
            (String.concat "\t"
               (List.map
                  (function Some t -> Rdf.Term.to_string t | None -> "<unbound>")
                  row)))
        rows;
      Printf.printf "-- %d row(s)%s\n" (List.length rows)
        (if truncated then " (truncated)" else "")
  | (`Csv | `Tsv | `Json) as fmt ->
      let answer = { Amber.Engine.variables; rows; truncated } in
      print_string
        (match fmt with
        | `Csv -> Amber.Results.to_csv answer
        | `Tsv -> Amber.Results.to_tsv answer
        | `Json -> Amber.Results.to_json answer ^ "\n")

(* --- query ----------------------------------------------------------- *)

let json_flag_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit one machine-readable JSON array instead of pretty text.")

let run_query data query_file sparql timeout limit engine open_objects extended
    format profile explain domains trace_out plan rewrite =
  let src = query_text query_file sparql in
  if (profile || explain || trace_out <> None) && (extended || engine <> `Amber)
  then
    prerr_endline
      "note: --profile/--explain/--trace-out apply to the plain amber engine \
       only; ignored";
  if domains <> None && (extended || engine <> `Amber) then
    prerr_endline "note: --domains applies to the plain amber engine only; ignored";
  if plan <> None && (extended || engine <> `Amber) then
    prerr_endline "note: --plan applies to the plain amber engine only; ignored";
  if rewrite <> None && (extended || engine <> `Amber) then
    prerr_endline
      "note: --rewrite applies to the plain amber engine only; ignored";
  let domains = Option.map (fun d -> max 1 (min 8 d)) domains in
  if extended then begin
    let e = load_engine ?domains data in
    match
      Bench_util.Runner.time (fun () ->
          Amber.Extended.query_string ?timeout ?limit
            ~open_objects e src)
    with
    | dt, a ->
        print_answer ~format a.Amber.Engine.variables a.rows a.truncated;
        Printf.eprintf "answered in %.2f ms\n" (1000. *. dt);
        exit 0
    | exception Amber.Deadline.Expired ->
        Printf.eprintf "query timed out\n";
        exit 3
    | exception Sparql.Parser.Error { line; col; message } ->
        Printf.eprintf "SPARQL parse error at %d:%d: %s\n" line col message;
        exit 1
  end;
  let run (type e) (module E : Baselines.Engine_sig.S with type t = e) =
    let ast =
      match Sparql.Parser.parse_result src with
      | Ok ast -> ast
      | Error msg ->
          Printf.eprintf "SPARQL parse error: %s\n" msg;
          exit 1
    in
    let t_build, store =
      Bench_util.Runner.time (fun () -> E.load (load_triples data))
    in
    Printf.eprintf "%s: offline stage %.2fs\n%!" E.name t_build;
    match
      Bench_util.Runner.time (fun () -> E.query ?timeout ?limit store ast)
    with
    | dt, answer ->
        print_answer ~format answer.Baselines.Answer.variables answer.rows
          answer.truncated;
        Printf.eprintf "answered in %.2f ms\n" (1000. *. dt)
    | exception Amber.Deadline.Expired ->
        Printf.eprintf "query timed out\n";
        exit 3
  in
  match engine with
  | `Amber ->
      (* The native engine dispatches on the query form (SELECT / ASK /
         CONSTRUCT) and supports the open-objects extension. *)
      let e = load_engine ?domains data in
      if explain then begin
        match Sparql.Parser.parse_result src with
        | Ok ast ->
            Format.printf "%a@." Amber.Engine.pp_explanation
              (Amber.Engine.explain ~open_objects ?plan ?rewrite e ast);
            Format.printf "%a@." Amber.Analysis.pp_report
              (Amber.Engine.analyze ~open_objects e ast)
        | Error _ -> () (* the query path reports the parse error below *)
      end;
      let is_select =
        match Sparql.Parser.parse_any src with
        | Sparql.Parser.Q_select _ -> true
        | _ -> false
        | exception Sparql.Parser.Error _ -> false
      in
      if (profile || trace_out <> None) && is_select then begin
        (* Re-parses under the profiler so the parse phase is timed. *)
        match
          Bench_util.Runner.time (fun () ->
              Amber.Engine.query_string_profiled ?timeout ?limit ~open_objects
                ?domains ?plan ?rewrite e src)
        with
        | dt, (a, p) ->
            print_answer ~format a.Amber.Engine.variables a.rows a.truncated;
            if profile then Format.printf "%a@." Amber.Profile.pp p;
            (match trace_out with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                output_string oc (Obs.Span.to_chrome_json p.Amber.Profile.span);
                output_char oc '\n';
                close_out oc;
                Printf.eprintf "wrote trace to %s (open in ui.perfetto.dev)\n"
                  path);
            Printf.eprintf "answered in %.2f ms\n" (1000. *. dt)
        | exception Amber.Deadline.Expired ->
            Printf.eprintf "query timed out\n";
            exit 3
      end
      else begin
        if profile || trace_out <> None then
          prerr_endline
            "note: --profile/--trace-out apply to SELECT queries only";
        match
          Bench_util.Runner.time (fun () ->
              match Sparql.Parser.parse_any src with
              | Sparql.Parser.Q_select ast ->
                  let a =
                    Amber.Engine.query ?timeout ?limit ~open_objects ?domains
                      ?plan ?rewrite e ast
                  in
                  `Rows a
              | Sparql.Parser.Q_ask ast ->
                  `Bool
                    (Amber.Engine.ask ?timeout ~open_objects ?domains ?plan
                       ?rewrite e ast)
              | Sparql.Parser.Q_construct (template, ast) ->
                  `Triples
                    (Amber.Engine.construct ?timeout ?limit ~open_objects
                       ?domains ?plan ?rewrite e ~template ast))
        with
        | dt, result ->
            (match result with
            | `Rows a ->
                print_answer ~format a.Amber.Engine.variables a.rows a.truncated
            | `Bool b -> print_endline (if b then "true" else "false")
            | `Triples triples -> print_string (Rdf.Ntriples.to_string triples));
            Printf.eprintf "answered in %.2f ms\n" (1000. *. dt)
        | exception Amber.Deadline.Expired ->
            Printf.eprintf "query timed out\n";
            exit 3
        | exception Sparql.Parser.Error { line; col; message } ->
            Printf.eprintf "SPARQL parse error at %d:%d: %s\n" line col message;
            exit 1
      end
  | `Rdf3x -> run (module Baselines.Triple_store)
  | `Virtuoso -> run (module Baselines.Column_store)
  | `Jena -> run (module Baselines.Nested_loop)
  | `Gstore -> run (module Baselines.Sig_store)
  | `Reference -> run (module Baselines.Reference_eval)

let query_cmd =
  let doc = "answer a SPARQL query over an N-Triples/Turtle file" in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run_query $ data_arg $ query_file_arg $ sparql_arg $ timeout_arg
      $ limit_arg $ engine_arg $ open_objects_arg $ extended_arg $ format_arg
      $ profile_arg $ explain_flag_arg $ domains_arg $ trace_out_arg $ plan_arg
      $ rewrite_arg)

(* --- explain ----------------------------------------------------------- *)

let run_explain data query_file sparql open_objects plan rewrite json_out =
  let src = query_text query_file sparql in
  let ast =
    match Sparql.Parser.parse_result src with
    | Ok ast -> ast
    | Error msg ->
        Printf.eprintf "SPARQL parse error: %s\n" msg;
        exit 1
  in
  let e = load_engine data in
  let explanation = Amber.Engine.explain ~open_objects ?plan ?rewrite e ast in
  if json_out then
    print_endline (Amber.Engine.explanation_to_json explanation)
  else begin
    Format.printf "%a@." Amber.Engine.pp_explanation explanation;
    Format.printf "%a@." Amber.Analysis.pp_report
      (Amber.Engine.analyze ~open_objects e ast)
  end

let explain_cmd =
  let doc = "show AMbER's decomposition and matching order for a query" in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run_explain $ data_arg $ query_file_arg $ sparql_arg
      $ open_objects_arg $ plan_arg $ rewrite_arg $ json_flag_arg)

(* --- lint -------------------------------------------------------------- *)

(* One human-readable line summarizing what the rewriter would do to a
   query — e.g. "2 pattern(s) removable by core minimization". *)
let rewrite_suggestions steps =
  let count kind =
    List.length
      (List.filter
         (fun (s : Amber.Rewrite.step) ->
           Amber.Rewrite.kind_slug s.Amber_rewrite.kind = kind)
         steps)
  in
  let dups = count "duplicate-pattern" in
  let mins = count "core-minimization" in
  let props = count "constant-propagation" in
  let carts = count "cartesian-product" in
  List.filter_map
    (fun (n, text) -> if n = 0 then None else Some (Printf.sprintf text n))
    [
      (dups, format_of_string "%d duplicate pattern(s) removable");
      (mins, format_of_string "%d pattern(s) removable by core minimization");
      (props, format_of_string "%d variable(s) data-forced to a constant");
      (carts, format_of_string "%d Cartesian product(s) between unconnected groups");
    ]

let run_lint data query_files query_file sparql open_objects strict json_out =
  let sources =
    (match sparql with Some q -> [ ("<inline>", q) ] | None -> [])
    @ (match query_file with Some f -> [ (f, read_file f) ] | None -> [])
    @ List.map (fun f -> (f, read_file f)) query_files
  in
  if sources = [] then begin
    prerr_endline "error: provide query files, --query FILE or --sparql QUERY";
    exit 2
  end;
  let e = load_engine data in
  let any_unsat = ref false
  and any_error = ref false
  and any_warning = ref false in
  let reports =
    List.map
      (fun (name, src) ->
        match Sparql.Parser.parse_result src with
        | Error msg ->
            any_error := true;
            (name, Error msg)
        | Ok ast ->
            let report = Amber.Engine.analyze ~open_objects e ast in
            if Amber.Analysis.unsat_proof report <> None then any_unsat := true;
            if Amber.Analysis.warnings report <> [] then any_warning := true;
            (* A dry rewriter run: what the engine would simplify away
               before planning. Advisory only — never affects the exit
               code. *)
            let rewrites =
              (Amber.Rewrite.apply ~open_objects ~db:(Amber.Engine.db e)
                 ~attribute:(Amber.Engine.attribute_index e)
                 ~stats:(lazy (Amber.Engine.statistics e))
                 ast)
                .Amber.Rewrite.steps
            in
            (name, Ok (report, rewrites)))
      sources
  in
  if json_out then begin
    let item (name, res) =
      let quote s =
        (* names are file paths; escape the JSON specials *)
        let b = Buffer.create (String.length s + 2) in
        Buffer.add_char b '"';
        String.iter
          (fun c ->
            match c with
            | '"' -> Buffer.add_string b "\\\""
            | '\\' -> Buffer.add_string b "\\\\"
            | c when Char.code c < 0x20 ->
                Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
            | c -> Buffer.add_char b c)
          s;
        Buffer.add_char b '"';
        Buffer.contents b
      in
      match res with
      | Error msg ->
          Printf.sprintf "{\"query\":%s,\"parse_error\":%s}" (quote name)
            (quote msg)
      | Ok (report, rewrites) ->
          Printf.sprintf "{\"query\":%s,\"report\":%s,\"rewrites\":%s}"
            (quote name)
            (Amber.Analysis.report_to_json report)
            (Amber.Rewrite.steps_to_json rewrites)
    in
    print_endline ("[" ^ String.concat "," (List.map item reports) ^ "]")
  end
  else
    List.iter
      (fun (name, res) ->
        match res with
        | Error msg -> Printf.printf "%s: SPARQL parse error: %s\n" name msg
        | Ok (report, rewrites) ->
            if Amber.Analysis.unsat_proof report = None
               && Amber.Analysis.warnings report = []
               && Amber.Analysis.hints report = []
            then Printf.printf "%s: clean\n" name
            else Format.printf "%s:@.%a@." name Amber.Analysis.pp_report report;
            List.iter
              (fun line -> Printf.printf "  rewriter: %s\n" line)
              (rewrite_suggestions rewrites))
      reports;
  if !any_unsat then exit 1;
  if !any_error then exit 2;
  if strict && !any_warning then exit 1

let lint_queries_arg =
  Arg.(
    value
    & pos_all non_dir_file []
    & info [] ~docv:"QUERY" ~doc:"SPARQL query files to analyze.")

let strict_flag_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit non-zero when any query raises an analyzer warning, not only \
           when one is proven empty.")

let lint_cmd =
  let doc =
    "statically analyze queries against a dataset: unsatisfiability proofs, \
     warnings, hints and rewriter suggestions (exit 1 if any query is proven \
     empty; with --strict, also on warnings)"
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run_lint $ data_arg $ lint_queries_arg $ query_file_arg $ sparql_arg
      $ open_objects_arg $ strict_flag_arg $ json_flag_arg)

(* --- fsck -------------------------------------------------------------- *)

let run_fsck path =
  match Amber.Snapshot.fsck_file path with
  | Ok report ->
      Format.printf "%a@." Amber.Snapshot.pp_fsck_report report;
      Printf.printf "%s: ok\n" path
  | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 1

let fsck_input_arg =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"SNAPSHOT" ~doc:"An .amberix index snapshot file.")

let fsck_cmd =
  let doc =
    "validate an index snapshot: framing, CRCs, id ranges, sorted-set \
     monotonicity and R-tree invariants (exit 1 on any violation)"
  in
  Cmd.v (Cmd.info "fsck" ~doc) Term.(const run_fsck $ fsck_input_arg)

(* --- serve ------------------------------------------------------------- *)

let run_serve data port timeout limit open_objects domains slow_query log_sample
    log_sink plan rewrite =
  let is_live = Sys.is_directory data in
  let is_snapshot = (not is_live) && Amber.Snapshot.sniff_file data in
  let domains = Option.map (fun d -> max 1 (min 8 d)) domains in
  let config =
    {
      Endpoint.default_config with
      port;
      timeout;
      limit;
      open_objects;
      domains;
      snapshot = (if is_snapshot then Some data else None);
      live_dir = (if is_live then Some data else None);
      slow_query = (if slow_query <= 0. then None else Some slow_query);
      log_sample;
      log_sink;
      plan;
      rewrite = Option.value ~default:true rewrite;
    }
  in
  let t_boot, server =
    Bench_util.Runner.time (fun () ->
        if is_live || is_snapshot then Endpoint.boot config
        else Endpoint.create ~config (Amber.Engine.build ?domains (load_triples data)))
  in
  Printf.eprintf "%s: %.2fs\n%!"
    (if is_live then "live-directory boot"
     else if is_snapshot then "snapshot boot"
     else "offline stage")
    t_boot;
  Printf.printf "SPARQL endpoint on http://%s:%d/sparql%s\n%!"
    config.Endpoint.host
    (Endpoint.bound_port server)
    (if is_live then " (live: POST /update enabled)" else "");
  Endpoint.serve server

let port_arg =
  Arg.(value & opt int 8080 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 = ephemeral).")

let slow_query_arg =
  Arg.(
    value & opt float 1.0
    & info [ "slow-query" ] ~docv:"SECONDS"
        ~doc:
          "Flight-recorder slow-query threshold: queries at or past $(docv) \
           are always captured, whatever --log-sample says. 0 disables the \
           threshold.")

let log_sample_arg =
  Arg.(
    value & opt float 1.0
    & info [ "log-sample" ] ~docv:"RATE"
        ~doc:
          "Flight-recorder sampling rate in [0,1]: the deterministic \
           fraction of ok queries to capture (slow and failed queries are \
           captured regardless).")

let log_sink_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-sink" ] ~docv:"FILE"
        ~doc:
          "Append captured flight records to $(docv) as JSON lines (read \
           back with `amber log tail`).")

let serve_cmd =
  let doc = "serve the dataset over the SPARQL protocol (HTTP)" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ data_arg $ port_arg $ timeout_arg $ limit_arg
      $ open_objects_arg $ domains_arg $ slow_query_arg $ log_sample_arg
      $ log_sink_arg $ plan_arg $ rewrite_arg)

(* --- update ------------------------------------------------------------ *)

let run_update dir add_files remove_files compact init =
  let manifest = Filename.concat dir "live.manifest" in
  let live =
    if Sys.file_exists manifest then begin
      if init <> None then begin
        Printf.eprintf
          "error: %s is already a live directory; --init refuses to clobber it\n"
          dir;
        exit 2
      end;
      open_live_dir dir
    end
    else
      match init with
      | Some base -> Amber.Live_engine.of_engine ~dir (load_engine base)
      | None ->
          Printf.eprintf
            "error: %s is not a live directory (no live.manifest); create one \
             with --init BASE\n"
            dir;
          exit 2
  in
  let parse_batch files = List.concat_map load_triples files in
  let adds = parse_batch add_files in
  let dels = parse_batch remove_files in
  let ep =
    if adds = [] && dels = [] then Amber.Live_engine.pin live
    else begin
      let dt, ep =
        Bench_util.Runner.time (fun () ->
            Amber.Live_engine.update live ~adds ~dels)
      in
      Printf.eprintf "applied +%d/-%d in %.2f ms\n%!" (List.length adds)
        (List.length dels) (1000. *. dt);
      ep
    end
  in
  let ep =
    if compact then begin
      let dt, ep =
        Bench_util.Runner.time (fun () -> Amber.Live_engine.compact live)
      in
      Printf.eprintf "compacted into generation %d in %.2f ms\n%!"
        (Amber.Live_engine.generation ep)
        (1000. *. dt);
      ep
    end
    else ep
  in
  let d = Amber.Live_engine.delta ep in
  let engine = Amber.Live_engine.engine ep in
  Printf.printf
    "%s: generation %d, version %d, %d triples (delta +%d/-%d pending)\n" dir
    (Amber.Live_engine.generation ep)
    (Amber.Live_engine.version ep)
    (Amber.Database.triple_count (Amber.Engine.db engine))
    (Amber.Delta.add_count d) (Amber.Delta.del_count d)

let live_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"LIVEDIR"
        ~doc:"Live-engine directory (created by --init, then reusable).")

let add_files_arg =
  Arg.(
    value
    & opt_all non_dir_file []
    & info [ "add" ] ~docv:"FILE"
        ~doc:"Insert the triples of $(docv) (repeatable).")

let remove_files_arg =
  Arg.(
    value
    & opt_all non_dir_file []
    & info [ "remove" ] ~docv:"FILE"
        ~doc:"Delete the triples of $(docv) (repeatable).")

let compact_flag_arg =
  Arg.(
    value & flag
    & info [ "compact" ]
        ~doc:
          "After applying the batch, merge the delta into a fresh generation \
           (full rebuild, new gen-N.amberix, previous generation retained \
           until the next compaction).")

let init_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "init" ] ~docv:"BASE"
        ~doc:
          "Create $(i,LIVEDIR) as generation 0 from $(docv) (N-Triples, \
           Turtle, .adb or .amberix). Refuses to overwrite an existing live \
           directory.")

let update_cmd =
  let doc =
    "apply insert/delete batches to a live-engine directory (snapshot-\
     isolated readers keep their epoch; `amber serve LIVEDIR` exposes the \
     same store over POST /update)"
  in
  Cmd.v (Cmd.info "update" ~doc)
    Term.(
      const run_update $ live_dir_arg $ add_files_arg $ remove_files_arg
      $ compact_flag_arg $ init_arg)

(* --- log --------------------------------------------------------------- *)

let run_log_tail file n json_out =
  let ic = open_in file in
  let rev_lines = ref [] in
  (try
     while true do
       rev_lines := input_line ic :: !rev_lines
     done
   with End_of_file -> ());
  close_in ic;
  (* [rev_lines] is newest-first; keep the last [n], print oldest-first. *)
  let lines =
    List.rev (List.filteri (fun i _ -> i < n) !rev_lines)
  in
  let malformed = ref false in
  List.iter
    (fun line ->
      if String.trim line = "" then ()
      else if json_out then print_endline line
      else
        match Obs.Json.parse_opt line with
        | None ->
            malformed := true;
            Printf.printf "(malformed record) %s\n" line
        | Some v ->
            let str key =
              Option.value ~default:""
                (Option.bind (Obs.Json.member key v) Obs.Json.to_string)
            in
            let num key =
              Option.value ~default:0.
                (Option.bind (Obs.Json.member key v) Obs.Json.to_float)
            in
            let slow =
              match Option.bind (Obs.Json.member "slow" v) Obs.Json.to_bool with
              | Some true -> " SLOW"
              | _ -> ""
            in
            let query = str "query" in
            let query =
              if String.length query > 72 then String.sub query 0 69 ^ "..."
              else query
            in
            (* One compact plan cell: the mode, plus the seed strategies
               actually chosen (e.g. "adaptive[attrs,rtree]"). *)
            let plan =
              match str "plan" with
              | "" -> "-"
              | mode -> (
                  match Obs.Json.member "plan_seeds" v with
                  | Some (Obs.Json.Arr (_ :: _ as seeds)) ->
                      let slugs =
                        List.filter_map
                          (fun seed ->
                            Option.bind (Obs.Json.member "strategy" seed)
                              Obs.Json.to_string)
                          seeds
                      in
                      Printf.sprintf "%s[%s]" mode (String.concat "," slugs)
                  | _ -> mode)
            in
            Printf.printf "#%-5.0f %-7s %9.2f ms %7.0f rows  %-18s %s%s  %s\n"
              (num "id") (str "status")
              (1000. *. num "seconds")
              (num "rows") plan (str "hash") slow query)
    lines;
  if !malformed then exit 1

let log_file_arg =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"FILE"
        ~doc:"A JSONL flight-record file (`amber serve --log-sink`).")

let tail_n_arg =
  Arg.(
    value & opt int 20
    & info [ "n" ] ~docv:"N" ~doc:"Number of trailing records to show.")

let log_cmd =
  let tail_doc =
    "show the last flight records of a JSONL sink file, one line per query \
     (id, status, latency, rows, hash, query text); --json prints the raw \
     records instead"
  in
  Cmd.group (Cmd.info "log" ~doc:"inspect flight-recorder sinks")
    [
      Cmd.v
        (Cmd.info "tail" ~doc:tail_doc)
        Term.(const run_log_tail $ log_file_arg $ tail_n_arg $ json_flag_arg);
    ]

(* --- compile ----------------------------------------------------------- *)

let run_compile data out =
  let triples = load_triples data in
  Rdf.Binary.write_file out triples;
  let size path = (Unix.stat path).Unix.st_size in
  Printf.printf "wrote %d triples to %s (%d bytes; source %d bytes)\n"
    (List.length triples) out (size out) (size data)

let out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output .adb file.")

let compile_cmd =
  let doc = "convert N-Triples/Turtle into the compact binary format (.adb)" in
  Cmd.v (Cmd.info "compile" ~doc) Term.(const run_compile $ data_arg $ out_arg)

(* --- build ------------------------------------------------------------ *)

let run_build input out domains layout =
  let domains = Option.map (fun d -> max 1 (min 8 d)) domains in
  let triples = load_triples input in
  let t_build, engine =
    Bench_util.Runner.time (fun () -> Amber.Engine.build ~layout ?domains triples)
  in
  Printf.eprintf "offline stage (%d domain%s): %.2fs\n%!"
    (Option.value ~default:1 domains)
    (if Option.value ~default:1 domains = 1 then "" else "s")
    t_build;
  let t_save, () =
    Bench_util.Runner.time (fun () -> Amber.Engine.save_snapshot engine out)
  in
  let s = Amber.Engine.posting_stats engine in
  Printf.eprintf
    "posting layout %s: %d raw / %d ef / %d blocked lists, %d elements, %d \
     compressed payload bytes\n%!"
    (Mgraph.Posting.policy_to_string layout)
    s.Mgraph.Posting.raw_lists s.Mgraph.Posting.ef_lists
    s.Mgraph.Posting.blocked_lists s.Mgraph.Posting.elements
    s.Mgraph.Posting.payload_bytes;
  Printf.printf "wrote index snapshot %s (%d bytes; build %.2fs, save %.2fs)\n"
    out (Unix.stat out).Unix.st_size t_build t_save

let build_input_arg =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"TRIPLES"
        ~doc:"Input data: N-Triples, Turtle (.ttl) or binary (.adb).")

let snapshot_out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output .amberix snapshot file.")

let layout_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", Mgraph.Posting.Auto);
             ("raw", Mgraph.Posting.Force Mgraph.Posting.Raw);
             ("ef", Mgraph.Posting.Force Mgraph.Posting.Ef);
             ("blocked", Mgraph.Posting.Force Mgraph.Posting.Blocked);
           ])
        Mgraph.Posting.Auto
    & info [ "layout" ] ~docv:"LAYOUT"
        ~doc:
          "Physical posting-list layout for the frozen indexes: $(b,auto) \
           (per-list density/size heuristic), or force $(b,raw), $(b,ef) \
           (Elias-Fano) or $(b,blocked) (partitioned blocks) everywhere — \
           for ablation. Persisted in the snapshot and restored on load.")

let build_cmd =
  let doc =
    "run the offline stage and persist the built indexes as an .amberix \
     snapshot"
  in
  Cmd.v (Cmd.info "build" ~doc)
    Term.(
      const run_build $ build_input_arg $ snapshot_out_arg $ domains_arg
      $ layout_arg)

(* --- stats ------------------------------------------------------------ *)

let run_stats data =
  let db =
    if (not (Sys.is_directory data)) && Amber.Snapshot.sniff_file data then
      (Amber.Snapshot.read_file data).Amber.Snapshot.db
    else Amber.Database.of_triples (load_triples data)
  in
  Format.printf "%a@." Amber.Database.pp_stats db

let stats_cmd =
  let doc = "print multigraph statistics for an N-Triples file" in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run_stats $ data_arg)

(* --- bench ------------------------------------------------------------ *)

let run_bench data query_file sparql timeout limit =
  let triples = load_triples data in
  let src = query_text query_file sparql in
  let ast = Sparql.Parser.parse src in
  let timeout = Option.value ~default:10.0 timeout in
  let bench (type e) (module E : Baselines.Engine_sig.S with type t = e) =
    let store = E.load triples in
    match
      Bench_util.Runner.run_query (module E) store ~timeout ?limit ast
    with
    | Bench_util.Runner.Answered { seconds; rows } ->
        Printf.printf "%-14s %10.2f ms  %8d rows\n" E.name (1000. *. seconds) rows
    | Bench_util.Runner.Unanswered -> Printf.printf "%-14s timeout\n" E.name
  in
  bench (module Baselines.Amber_adapter);
  bench (module Baselines.Sig_store);
  bench (module Baselines.Column_store);
  bench (module Baselines.Triple_store);
  bench (module Baselines.Nested_loop)

let bench_cmd =
  let doc = "time one query on every engine" in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const run_bench $ data_arg $ query_file_arg $ sparql_arg $ timeout_arg
      $ limit_arg)

let () =
  let doc = "AMbER: attributed-multigraph RDF query engine" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "amber" ~doc)
          [ query_cmd; build_cmd; stats_cmd; bench_cmd; explain_cmd; lint_cmd;
            fsck_cmd; compile_cmd; serve_cmd; update_cmd; log_cmd ]))
