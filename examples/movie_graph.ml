(* A DBpedia-flavoured knowledge-graph walkthrough:
   - namespaces and prefixed queries,
   - multigraph structure (several predicates between the same pair),
   - the literal-binding extension (open objects),
   - inspecting AMbER's query decomposition.

   Run with: dune exec examples/movie_graph.exe *)

let dbr r = "http://dbpedia.org/resource/" ^ r
let dbo p = "http://dbpedia.org/ontology/" ^ p

let iri = Rdf.Term.iri
let lit s = Rdf.Term.literal s
let t s p o = Rdf.Triple.spo s p o

let triples =
  [
    (* Nolan's films: multigraph edges (director AND writer between the
       same pair of nodes). *)
    t (dbr "Inception") (dbo "director") (iri (dbr "Christopher_Nolan"));
    t (dbr "Inception") (dbo "writer") (iri (dbr "Christopher_Nolan"));
    t (dbr "Inception") (dbo "starring") (iri (dbr "Leonardo_DiCaprio"));
    t (dbr "Inception") (dbo "releaseYear") (lit "2010");
    t (dbr "Interstellar") (dbo "director") (iri (dbr "Christopher_Nolan"));
    t (dbr "Interstellar") (dbo "writer") (iri (dbr "Jonathan_Nolan"));
    t (dbr "Interstellar") (dbo "starring") (iri (dbr "Matthew_McConaughey"));
    t (dbr "Interstellar") (dbo "releaseYear") (lit "2014");
    t (dbr "Dunkirk") (dbo "director") (iri (dbr "Christopher_Nolan"));
    t (dbr "Dunkirk") (dbo "writer") (iri (dbr "Christopher_Nolan"));
    t (dbr "Dunkirk") (dbo "releaseYear") (lit "2017");
    t (dbr "The_Departed") (dbo "director") (iri (dbr "Martin_Scorsese"));
    t (dbr "The_Departed") (dbo "starring") (iri (dbr "Leonardo_DiCaprio"));
    t (dbr "The_Departed") (dbo "releaseYear") (lit "2006");
    (* People. *)
    t (dbr "Christopher_Nolan") (dbo "birthPlace") (iri (dbr "London"));
    t (dbr "Christopher_Nolan") (dbo "name") (lit "Christopher Nolan");
    t (dbr "Jonathan_Nolan") (dbo "birthPlace") (iri (dbr "London"));
    t (dbr "Martin_Scorsese") (dbo "birthPlace") (iri (dbr "New_York_City"));
    t (dbr "Leonardo_DiCaprio") (dbo "birthPlace") (iri (dbr "Los_Angeles"));
  ]

let engine = lazy (Amber.Engine.build triples)

let show title answer =
  Printf.printf "\n-- %s\n" title;
  Printf.printf "%s\n" (String.concat " | " answer.Amber.Engine.variables);
  List.iter
    (fun row ->
      let cell = function
        | Some term -> (
            match Rdf.Namespace.compact Rdf.Namespace.common (
                match term with Rdf.Term.Iri i -> i | _ -> "") with
            | Some short when Rdf.Term.is_iri term -> short
            | _ -> Rdf.Term.to_string term)
        | None -> "<unbound>"
      in
      print_endline ("  " ^ String.concat " | " (List.map cell row)))
    answer.Amber.Engine.rows

let () =
  let e = Lazy.force engine in

  (* Films Christopher Nolan both directed and wrote: a multi-edge
     query — one pair of query vertices, two predicates. *)
  show "directed AND wrote (multi-edge)"
    (Amber.Engine.query_string e
       {|PREFIX dbo: <http://dbpedia.org/ontology/>
         PREFIX dbr: <http://dbpedia.org/resource/>
         SELECT ?film WHERE {
           ?film dbo:director dbr:Christopher_Nolan .
           ?film dbo:writer dbr:Christopher_Nolan .
         }|});

  (* A join through a shared birthplace. *)
  show "directors born where a writer was born"
    (Amber.Engine.query_string e
       {|PREFIX dbo: <http://dbpedia.org/ontology/>
         SELECT DISTINCT ?director ?writer WHERE {
           ?film dbo:director ?director .
           ?film2 dbo:writer ?writer .
           ?director dbo:birthPlace ?city .
           ?writer dbo:birthPlace ?city .
         }|});

  (* Literal constants become vertex attributes. *)
  show "films released in 2010"
    (Amber.Engine.query_string e
       {|PREFIX dbo: <http://dbpedia.org/ontology/>
         SELECT ?film WHERE { ?film dbo:releaseYear "2010" . }|});

  (* Literal variables need the open-objects extension: release years
     are folded into attributes, so a faithful-model query cannot bind
     them. *)
  show "release years (open-objects extension)"
    (Amber.Engine.query_string ~open_objects:true e
       {|PREFIX dbo: <http://dbpedia.org/ontology/>
         PREFIX dbr: <http://dbpedia.org/resource/>
         SELECT ?film ?year WHERE {
           ?film dbo:director dbr:Christopher_Nolan .
           ?film dbo:releaseYear ?year .
         }|});

  (* Peek at the engine's query decomposition. *)
  let ast =
    Sparql.Parser.parse
      {|PREFIX dbo: <http://dbpedia.org/ontology/>
        SELECT * WHERE {
          ?film dbo:director ?d .
          ?film dbo:starring ?actor .
          ?film dbo:releaseYear "2010" .
          ?d dbo:birthPlace ?city .
        }|}
  in
  (match Amber.Query_graph.build (Amber.Engine.db e) ast with
  | Amber.Query_graph.Query q ->
      print_newline ();
      print_endline "-- decomposition of the star-ish query";
      Format.printf "%a@." Amber.Query_graph.pp q;
      let plan = Amber.Decompose.plan q in
      Array.iteri
        (fun u name ->
          Printf.printf "  ?%s: %s\n" name
            (if plan.Amber.Decompose.is_core.(u) then "core" else "satellite"))
        q.Amber.Query_graph.var_names
  | Amber.Query_graph.Unsatisfiable { proof; _ } ->
      Printf.printf "unsatisfiable: %s\n"
        (Amber.Analysis.proof_to_string proof))
