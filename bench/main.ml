(* Benchmark harness regenerating every table and figure of the paper's
   Section 7 on the scaled synthetic datasets (see DESIGN.md §3-§4), plus
   a Bechamel micro-benchmark suite (--micro).

   Experiments:
     table1  - avg time, complex queries of 50 triples, DBPEDIA-like
     table4  - benchmark statistics
     table5  - offline stage: database + index construction time/memory
     fig6/7  - star/complex queries on DBPEDIA-like (time + %unanswered)
     fig8/9  - star/complex queries on YAGO-like
     fig10/11- star/complex queries on LUBM *)

type config = {
  scale : float;
  universities : int;
  timeout : float;
  queries_per_point : int;
  sizes : int list;
  row_limit : int;
  seed : int;
  only : string list;  (* empty = all *)
  micro : bool;
  json_path : string option;
  baseline : string option;
  layout : Mgraph.Posting.policy;  (* posting layout for engine builds *)
}

let default_config =
  {
    scale = 0.15;
    universities = 2;
    timeout = 1.0;
    queries_per_point = 12;
    sizes = [ 10; 20; 30; 40; 50 ];
    row_limit = 20_000;
    seed = 2016;
    only = [];
    micro = false;
    json_path = None;
    baseline = None;
    layout = Mgraph.Posting.Auto;
  }

let usage () =
  print_endline
    {|usage: bench [--only ids] [--scale F] [--timeout S] [--queries N]
             [--sizes a,b,c] [--limit N] [--seed N] [--quick] [--micro]
             [--json FILE] [--baseline FILE] [--layout raw|ef|blocked|auto]

  ids: table1 table4 table5 fig6..fig11 ablation profile kernels parallel
       build analysis resource layouts updates plans rewrites (comma
       separated)
  --quick: small preset (scale 0.04, 5 queries/point, sizes 10,20,30)
  --json:  also write a machine-readable report (summaries with
           p95/p99, per-phase breakdowns, metrics registry) to FILE
  --baseline: compare this run's timings and memory footprints against
           an earlier --json report; a suite whose median timing or
           resident-bytes figure regresses by more than 20%% makes the
           run exit non-zero
  --layout: posting-list layout for the engine's frozen indexes
           (default auto; force raw/ef/blocked for ablation)|};
  exit 0

let parse_args () =
  let cfg = ref default_config in
  let rec go = function
    | [] -> ()
    | "--help" :: _ -> usage ()
    | "--only" :: v :: rest ->
        cfg := { !cfg with only = String.split_on_char ',' v };
        go rest
    | "--scale" :: v :: rest ->
        cfg := { !cfg with scale = float_of_string v };
        go rest
    | "--timeout" :: v :: rest ->
        cfg := { !cfg with timeout = float_of_string v };
        go rest
    | "--queries" :: v :: rest ->
        cfg := { !cfg with queries_per_point = int_of_string v };
        go rest
    | "--sizes" :: v :: rest ->
        cfg :=
          { !cfg with sizes = List.map int_of_string (String.split_on_char ',' v) };
        go rest
    | "--limit" :: v :: rest ->
        cfg := { !cfg with row_limit = int_of_string v };
        go rest
    | "--seed" :: v :: rest ->
        cfg := { !cfg with seed = int_of_string v };
        go rest
    | "--quick" :: rest ->
        cfg :=
          {
            !cfg with
            scale = 0.04;
            universities = 1;
            queries_per_point = 5;
            sizes = [ 10; 20; 30 ];
            timeout = 0.5;
          };
        go rest
    | "--micro" :: rest ->
        cfg := { !cfg with micro = true };
        go rest
    | "--json" :: v :: rest ->
        cfg := { !cfg with json_path = Some v };
        go rest
    | "--baseline" :: v :: rest ->
        cfg := { !cfg with baseline = Some v };
        go rest
    | "--layout" :: v :: rest ->
        (match Mgraph.Posting.policy_of_string v with
        | Some p -> cfg := { !cfg with layout = p }
        | None ->
            Printf.eprintf "unknown layout %s (raw|ef|blocked|auto)\n" v;
            exit 1);
        go rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        exit 1
  in
  go (List.tl (Array.to_list Sys.argv));
  !cfg

let wants cfg id = cfg.only = [] || List.mem id cfg.only

let section title =
  Printf.printf "\n=== %s ===\n%!" title

(* --- machine-readable report (--json) ------------------------------- *)

(* Experiments append (key, json-value) pairs; the report is one object
   in insertion order, written once at the end of the run. *)
let json_entries : (string * string) list ref = ref []
let add_json key value = json_entries := (key, value) :: !json_entries

let write_json_report cfg =
  match cfg.json_path with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf
        (Printf.sprintf
           {|{"config":{"scale":%g,"timeout":%g,"queries_per_point":%d,"row_limit":%d,"seed":%d}|}
           cfg.scale cfg.timeout cfg.queries_per_point cfg.row_limit cfg.seed);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf {|,"%s":%s|} k v))
        (List.rev !json_entries);
      (* The engine-side counters accumulated over the whole run. *)
      Buffer.add_string buf
        (Printf.sprintf {|,"metrics":%s}|}
           (Obs.Metrics.render_json Obs.Metrics.default));
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote JSON report to %s\n" path

(* --- baseline comparison (--baseline) ------------------------------ *)

(* Every timing this harness records ends in "_s" or "_ns", and every
   memory figure in "_bytes"; the comparator pairs those fields by path
   between the baseline report and this run, suite by suite, so it keeps
   working as suites grow fields — and catches resident-memory
   regressions, not just slowdowns. *)
let key_ends k suffix =
  let lk = String.length k and ls = String.length suffix in
  lk > ls && String.sub k (lk - ls) ls = suffix

let is_timing_key ~path:_ k = key_ends k "_s" || key_ends k "_ns"

(* A field is a memory figure when its own key — or any enclosing
   object's key — ends in "_bytes": the resource suite's
   [resident_bytes] map keys entries by index name under a "_bytes"
   parent. *)
let is_bytes_key ~path k =
  key_ends k "_bytes"
  || List.exists
       (fun part -> key_ends part "_bytes")
       (String.split_on_char '.' path)

let rec collect_fields pred prefix value acc =
  match value with
  | Obs.Json.Obj fields ->
      List.fold_left
        (fun acc (k, v) ->
          let path = if prefix = "" then k else prefix ^ "." ^ k in
          match v with
          | Obs.Json.Num f when pred ~path k -> (path, f) :: acc
          | _ -> collect_fields pred path v acc)
        acc fields
  | Obs.Json.Arr items ->
      let acc = ref acc in
      List.iteri
        (fun i item ->
          acc :=
            collect_fields pred (Printf.sprintf "%s[%d]" prefix i) item !acc)
        items;
      !acc
  | _ -> acc

(* Compare this run's suites against a previous --json report. Returns
   [true] when no suite's median timing or median memory figure
   regressed by more than 20%. *)
let compare_with_baseline cfg =
  match cfg.baseline with
  | None -> true
  | Some path -> (
      let text =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Obs.Json.parse_opt text with
      | Some (Obs.Json.Obj base_fields) ->
          section (Printf.sprintf "Baseline comparison vs %s" path);
          let current =
            List.filter_map
              (fun (k, v) ->
                Option.map (fun j -> (k, j)) (Obs.Json.parse_opt v))
              (List.rev !json_entries)
          in
          let rows = ref [] and regressed = ref [] in
          (* Fields (or whole suites) present on only one side cannot
             regress, but silently skipping them would let either report
             drift out of the gate's coverage — a new field this run
             grew, or an old one a refactor dropped, both deserve a
             note. So each direction warns on stderr (never fails the
             run). *)
          let deltas_of ~suite ~kind pred base_json cur_json =
            let base = collect_fields pred "" base_json [] in
            let cur = collect_fields pred "" cur_json [] in
            List.iter
              (fun (p, _) ->
                if not (List.mem_assoc p base) then
                  Printf.eprintf
                    "warning: baseline lacks %s field %s.%s present in this \
                     run; not compared\n\
                     %!"
                    kind suite p)
              cur;
            List.iter
              (fun (p, _) ->
                if not (List.mem_assoc p cur) then
                  Printf.eprintf
                    "warning: this run lacks %s field %s.%s present in the \
                     baseline; not compared\n\
                     %!"
                    kind suite p)
              base;
            List.filter_map
              (fun (p, b) ->
                if b > 1e-9 then
                  Option.map (fun c -> (c -. b) /. b) (List.assoc_opt p cur)
                else None)
              base
          in
          List.iter
            (fun (suite, cur_json) ->
              match List.assoc_opt suite base_fields with
              | None ->
                  Printf.eprintf
                    "warning: baseline has no \"%s\" suite present in this \
                     run; not compared\n\
                     %!"
                    suite
              | Some base_json ->
                  let timings =
                    deltas_of ~suite ~kind:"timing" is_timing_key base_json
                      cur_json
                  in
                  let bytes =
                    deltas_of ~suite ~kind:"bytes" is_bytes_key base_json
                      cur_json
                  in
                  let judge kind deltas =
                    if deltas = [] then ("-", "-", false)
                    else
                      let med = Bench_util.Stats.median deltas in
                      let worst = Bench_util.Stats.maximum deltas in
                      let flagged = med > 0.20 in
                      if flagged then
                        regressed := (suite ^ " " ^ kind) :: !regressed;
                      ( Printf.sprintf "%+.1f%%" (100. *. med),
                        Printf.sprintf "%+.1f%%" (100. *. worst),
                        flagged )
                  in
                  if timings <> [] || bytes <> [] then begin
                    let t_med, t_worst, t_flag = judge "timings" timings in
                    let b_med, b_worst, b_flag = judge "bytes" bytes in
                    rows :=
                      [
                        suite;
                        Printf.sprintf "%d/%d" (List.length timings)
                          (List.length bytes);
                        t_med;
                        t_worst;
                        b_med;
                        b_worst;
                        (if t_flag || b_flag then "REGRESSION" else "ok");
                      ]
                      :: !rows
                  end)
            current;
          List.iter
            (fun (suite, _) ->
              if not (List.mem_assoc suite current) then
                Printf.eprintf
                  "warning: this run has no \"%s\" suite present in the \
                   baseline; not compared\n\
                   %!"
                  suite)
            base_fields;
          if !rows = [] then begin
            Printf.printf
              "no timing or bytes fields shared with the baseline (different \
               suites?)\n";
            true
          end
          else begin
            Bench_util.Table_fmt.print
              ~header:
                [
                  "suite";
                  "fields t/b";
                  "time median";
                  "time worst";
                  "bytes median";
                  "bytes worst";
                  "verdict";
                ]
              (List.rev !rows);
            (match !regressed with
            | [] ->
                Printf.printf
                  "no suite regressed past the 20%% gate (timings or bytes)\n"
            | suites ->
                Printf.printf "REGRESSED (median > +20%%): %s\n"
                  (String.concat ", " (List.rev suites)));
            !regressed = []
          end
      | Some _ | None ->
          Printf.eprintf "baseline %s is not a JSON report object\n" path;
          false)

(* ------------------------------------------------------------------ *)
(* Engines under comparison                                            *)
(* ------------------------------------------------------------------ *)

type engine_instance =
  | Instance :
      (module Baselines.Engine_sig.S with type t = 'e) * 'e
      -> engine_instance

let load_engines triples =
  let make (type e) (module E : Baselines.Engine_sig.S with type t = e) =
    (E.name, Instance ((module E), E.load triples))
  in
  [
    make (module Baselines.Amber_adapter);
    make (module Baselines.Sig_store);
    make (module Baselines.Column_store);
    make (module Baselines.Triple_store);
    make (module Baselines.Nested_loop);
  ]

let run_workload (Instance ((module E), store)) ~timeout ~limit queries =
  Bench_util.Runner.run_workload (module E) store ~timeout ~limit queries

(* ------------------------------------------------------------------ *)
(* Datasets (built lazily, shared across experiments)                  *)
(* ------------------------------------------------------------------ *)

type dataset = {
  ds_name : string;
  triples : Rdf.Triple.t list Lazy.t;
  corpus : Datagen.Workload.corpus Lazy.t;
  engines : (string * engine_instance) list Lazy.t;
}

let make_dataset name triples =
  let triples = Lazy.from_fun triples in
  {
    ds_name = name;
    triples;
    corpus = lazy (Datagen.Workload.corpus (Lazy.force triples));
    engines = lazy (load_engines (Lazy.force triples));
  }

let datasets cfg =
  let dbpedia =
    make_dataset "DBPEDIA-like" (fun () ->
        Datagen.Scale_free.generate ~seed:cfg.seed
          (Datagen.Scale_free.dbpedia_like ~scale:cfg.scale ()))
  in
  let yago =
    make_dataset "YAGO-like" (fun () ->
        Datagen.Scale_free.generate ~seed:(cfg.seed + 1)
          (Datagen.Scale_free.yago_like ~scale:cfg.scale ()))
  in
  let lubm =
    make_dataset
      (Printf.sprintf "LUBM%d" cfg.universities)
      (fun () -> Datagen.Lubm.generate ~seed:(cfg.seed + 2) ~universities:cfg.universities ())
  in
  (dbpedia, yago, lubm)

(* ------------------------------------------------------------------ *)
(* Table 4: benchmark statistics                                       *)
(* ------------------------------------------------------------------ *)

let bench_table4 all_datasets =
  section "Table 4: Benchmark Statistics";
  let rows =
    List.map
      (fun ds ->
        let db = Amber.Database.of_triples (Lazy.force ds.triples) in
        let g = Amber.Database.graph db in
        [
          ds.ds_name;
          string_of_int (Amber.Database.triple_count db);
          string_of_int (Mgraph.Multigraph.vertex_count g);
          string_of_int (Mgraph.Multigraph.triple_edge_count g);
          string_of_int (Amber.Database.edge_type_count db);
        ])
      all_datasets
  in
  Bench_util.Table_fmt.print
    ~header:[ "Dataset"; "#Triples"; "#Vertices"; "#Edges"; "#Edge types" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 5: offline stage                                              *)
(* ------------------------------------------------------------------ *)

let live_mb () =
  Gc.compact ();
  float_of_int (Gc.stat ()).Gc.live_words *. float_of_int (Sys.word_size / 8)
  /. 1_048_576.0

let bench_table5 all_datasets =
  section "Table 5: Offline stage - database and index construction";
  let rows =
    List.map
      (fun ds ->
        let triples = Lazy.force ds.triples in
        let m0 = live_mb () in
        let t_db, db = Bench_util.Runner.time (fun () -> Amber.Database.of_triples triples) in
        let m1 = live_mb () in
        let t_idx, indexes =
          Bench_util.Runner.time (fun () ->
              ( Amber.Attribute_index.build db,
                Amber.Synopsis_index.build db,
                Amber.Neighbourhood_index.build db ))
        in
        let m2 = live_mb () in
        ignore (Sys.opaque_identity indexes);
        let db_size = m1 -. m0 and idx_size = m2 -. m1 in
        [
          ds.ds_name;
          Printf.sprintf "%.2f" t_db;
          Printf.sprintf "%.1f" db_size;
          Printf.sprintf "%.2f" t_idx;
          Printf.sprintf "%.1f" idx_size;
        ])
      all_datasets
  in
  Bench_util.Table_fmt.print
    ~header:
      [ "Dataset"; "DB build (s)"; "DB size (MB)"; "Index build (s)"; "Index size (MB)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 1: complex queries of 50 triples on DBPEDIA-like              *)
(* ------------------------------------------------------------------ *)

let bench_table1 cfg dbpedia =
  section
    (Printf.sprintf
       "Table 1: Average time (ms), %d complex queries with 50 triple patterns, %s"
       (2 * cfg.queries_per_point) dbpedia.ds_name);
  let queries =
    Datagen.Workload.generate ~seed:cfg.seed (Lazy.force dbpedia.corpus)
      ~shape:Datagen.Workload.Complex ~size:50
      ~count:(2 * cfg.queries_per_point)
  in
  Printf.printf "(%d queries generated; timeout %.1fs)\n" (List.length queries)
    cfg.timeout;
  let summaries =
    List.map
      (fun (name, inst) ->
        (name, run_workload inst ~timeout:cfg.timeout ~limit:cfg.row_limit queries))
      (Lazy.force dbpedia.engines)
  in
  let rows =
    List.map
      (fun (name, s) ->
        [
          name;
          (if s.Bench_util.Runner.answered = 0 then "> timeout"
           else Bench_util.Table_fmt.ms s.Bench_util.Runner.mean_time);
          (if s.Bench_util.Runner.answered = 0 then "-"
           else Bench_util.Table_fmt.ms s.Bench_util.Runner.p95_time);
          (if s.Bench_util.Runner.answered = 0 then "-"
           else Bench_util.Table_fmt.ms s.Bench_util.Runner.p99_time);
          Printf.sprintf "%d/%d" s.Bench_util.Runner.answered
            (s.Bench_util.Runner.answered + s.Bench_util.Runner.unanswered);
        ])
      summaries
  in
  Bench_util.Table_fmt.print
    ~header:[ "Engine"; "Mean time (ms)"; "p95 (ms)"; "p99 (ms)"; "Answered" ]
    rows;
  add_json "table1"
    (Printf.sprintf {|{"dataset":"%s","engines":[%s]}|} dbpedia.ds_name
       (String.concat ","
          (List.map (fun (_, s) -> Bench_util.Runner.summary_json s) summaries)))

(* ------------------------------------------------------------------ *)
(* Figures 6-11: time + robustness across query sizes                  *)
(* ------------------------------------------------------------------ *)

let bench_figure cfg ~fig ~ds ~shape =
  let shape_name =
    match shape with
    | Datagen.Workload.Star -> "Star-Shaped"
    | Datagen.Workload.Complex -> "Complex-Shaped"
  in
  section
    (Printf.sprintf "Figure %d: %s queries on %s (timeout %.1fs, %d queries/point)"
       fig shape_name ds.ds_name cfg.timeout cfg.queries_per_point);
  let engines = Lazy.force ds.engines in
  (* An engine that answers nothing at some size is dropped for larger
     sizes of the same series, like the missing points in the paper's
     plots. *)
  let dead = Hashtbl.create 8 in
  let results =
    List.map
      (fun size ->
        let queries =
          Datagen.Workload.generate ~seed:(cfg.seed + size) (Lazy.force ds.corpus)
            ~shape ~size ~count:cfg.queries_per_point
        in
        let per_engine =
          List.map
            (fun (name, inst) ->
              if Hashtbl.mem dead name then (name, None)
              else begin
                let s =
                  run_workload inst ~timeout:cfg.timeout ~limit:cfg.row_limit
                    queries
                in
                if s.Bench_util.Runner.answered = 0 then Hashtbl.replace dead name ();
                (name, Some s)
              end)
            engines
        in
        (size, List.length queries, per_engine))
      cfg.sizes
  in
  let engine_names = List.map fst engines in
  let time_rows =
    List.map
      (fun (size, nq, per_engine) ->
        string_of_int size :: string_of_int nq
        :: List.map
             (fun name ->
               match List.assoc name per_engine with
               | Some s when s.Bench_util.Runner.answered > 0 ->
                   Bench_util.Table_fmt.ms s.Bench_util.Runner.mean_time
               | Some _ -> "timeout"
               | None -> "-")
             engine_names)
      results
  in
  Printf.printf "(a) mean time over answered queries, ms\n";
  Bench_util.Table_fmt.print ~header:([ "size"; "n" ] @ engine_names) time_rows;
  let robust_rows =
    List.map
      (fun (size, nq, per_engine) ->
        string_of_int size :: string_of_int nq
        :: List.map
             (fun name ->
               match List.assoc name per_engine with
               | Some s ->
                   Bench_util.Table_fmt.pct ~answered:s.Bench_util.Runner.answered
                     ~total:(s.Bench_util.Runner.answered + s.Bench_util.Runner.unanswered)
               | None -> "-")
             engine_names)
      results
  in
  Printf.printf "(b) %% unanswered queries\n";
  Bench_util.Table_fmt.print ~header:([ "size"; "n" ] @ engine_names) robust_rows;
  add_json
    (Printf.sprintf "fig%d" fig)
    (Printf.sprintf {|{"dataset":"%s","shape":"%s","points":[%s]}|} ds.ds_name
       shape_name
       (String.concat ","
          (List.map
             (fun (size, nq, per_engine) ->
               Printf.sprintf {|{"size":%d,"queries":%d,"engines":[%s]}|} size
                 nq
                 (String.concat ","
                    (List.filter_map
                       (fun (_, s) ->
                         Option.map Bench_util.Runner.summary_json s)
                       per_engine)))
             results)))

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices called out in DESIGN.md §6            *)
(* ------------------------------------------------------------------ *)

let bench_ablation cfg ds =
  section
    (Printf.sprintf
       "Ablation: AMbER variants on %s (star and complex, size 40, %d \
        queries each, timeout %.1fs)"
       ds.ds_name cfg.queries_per_point cfg.timeout);
  let triples = Lazy.force ds.triples in
  let rtree_engine = Amber.Engine.build triples in
  let scan_engine =
    Amber.Engine.build ~synopsis_mode:Amber.Synopsis_index.Scan triples
  in
  (* Sequential variants report the matcher's candidate counter too. *)
  let seq_variant name ?strategy ?satellites engine =
    ( name,
      `Seq
        (fun ast ->
          Amber.Engine.query_with_stats ~timeout:cfg.timeout
            ~limit:cfg.row_limit ?strategy ?satellites engine ast) )
  in
  let variants =
    [
      seq_variant "paper (r1/r2 + satellites + R-tree)" rtree_engine;
      seq_variant "no satellite decomposition" ~satellites:false rtree_engine;
      seq_variant "ordering: by degree" ~strategy:Amber.Decompose.By_degree
        rtree_engine;
      seq_variant "ordering: arbitrary" ~strategy:Amber.Decompose.Arbitrary
        rtree_engine;
      seq_variant "synopsis: linear scan" scan_engine;
      ( "parallel (4 domains)",
        `Par
          (fun ast ->
            Amber.Engine.query_parallel ~timeout:cfg.timeout
              ~limit:cfg.row_limit ~domains:4 rtree_engine ast) );
    ]
  in
  List.iter
    (fun (shape, shape_name) ->
      let queries =
        Datagen.Workload.generate ~seed:(cfg.seed + 77) (Lazy.force ds.corpus)
          ~shape ~size:40 ~count:cfg.queries_per_point
      in
      Printf.printf "%s queries (n = %d):\n" shape_name (List.length queries);
      let rows =
        List.map
          (fun (name, run) ->
            let times = ref []
            and unanswered = ref 0
            and scanned = ref 0 in
            List.iter
              (fun ast ->
                match run with
                | `Seq f -> (
                    match Bench_util.Runner.time (fun () -> f ast) with
                    | dt, (_, stats) ->
                        times := dt :: !times;
                        scanned :=
                          !scanned + stats.Amber.Matcher.candidates_scanned
                    | exception Amber.Deadline.Expired -> incr unanswered)
                | `Par f -> (
                    match Bench_util.Runner.time (fun () -> f ast) with
                    | dt, _ -> times := dt :: !times
                    | exception Amber.Deadline.Expired -> incr unanswered))
              queries;
            let answered = List.length !times in
            [
              name;
              (if answered = 0 then "timeout"
               else Bench_util.Table_fmt.ms (Bench_util.Stats.mean !times));
              Bench_util.Table_fmt.pct ~answered
                ~total:(List.length queries);
              (match run with
              | `Par _ -> "-"
              | `Seq _ ->
                  if answered = 0 then "-"
                  else string_of_int (!scanned / answered));
            ])
          variants
      in
      Bench_util.Table_fmt.print
        ~header:
          [ "Variant"; "Mean time (ms)"; "% unanswered"; "mean candidates" ]
        rows)
    [ (Datagen.Workload.Star, "Star"); (Datagen.Workload.Complex, "Complex") ]

(* ------------------------------------------------------------------ *)
(* Per-phase breakdown: where does a query's time go?                  *)
(* ------------------------------------------------------------------ *)

let profile_phases = [ "parse"; "decompose"; "candidates"; "match"; "enumerate" ]

let bench_profile cfg ds =
  section
    (Printf.sprintf
       "Per-phase breakdown: AMbER on %s (size 30, %d queries/shape, timeout \
        %.1fs)"
       ds.ds_name cfg.queries_per_point cfg.timeout);
  let engine = Amber.Engine.build (Lazy.force ds.triples) in
  List.iter
    (fun (shape, shape_name) ->
      let queries =
        Datagen.Workload.generate ~seed:(cfg.seed + 123) (Lazy.force ds.corpus)
          ~shape ~size:30 ~count:cfg.queries_per_point
      in
      let phase_total = Hashtbl.create 8 in
      let bump name dt =
        Hashtbl.replace phase_total name
          (dt +. Option.value ~default:0. (Hashtbl.find_opt phase_total name))
      in
      let total = ref 0. and answered = ref 0 and unanswered = ref 0 in
      let stats_total = Amber.Matcher.fresh_stats () in
      List.iter
        (fun ast ->
          match
            Amber.Engine.query_profiled ~timeout:cfg.timeout
              ~limit:cfg.row_limit engine ast
          with
          | _, p ->
              incr answered;
              total := !total +. Obs.Span.duration p.Amber.Profile.span;
              List.iter
                (fun kid -> bump (Obs.Span.name kid) (Obs.Span.duration kid))
                (Obs.Span.children p.Amber.Profile.span);
              let s = p.Amber.Profile.stats in
              stats_total.Amber.Matcher.index_probes <-
                stats_total.Amber.Matcher.index_probes
                + s.Amber.Matcher.index_probes;
              stats_total.Amber.Matcher.candidates_scanned <-
                stats_total.Amber.Matcher.candidates_scanned
                + s.Amber.Matcher.candidates_scanned;
              stats_total.Amber.Matcher.satellite_rejections <-
                stats_total.Amber.Matcher.satellite_rejections
                + s.Amber.Matcher.satellite_rejections;
              stats_total.Amber.Matcher.solutions <-
                stats_total.Amber.Matcher.solutions + s.Amber.Matcher.solutions
          | exception Amber.Deadline.Expired -> incr unanswered)
        queries;
      Printf.printf "%s queries (answered %d/%d):\n" shape_name !answered
        (!answered + !unanswered);
      let n = max 1 !answered in
      let rows =
        List.map
          (fun phase ->
            let t = Option.value ~default:0. (Hashtbl.find_opt phase_total phase) in
            [
              phase;
              Bench_util.Table_fmt.ms (t /. float_of_int n);
              (if !total > 0. then Printf.sprintf "%.1f%%" (100. *. t /. !total)
               else "-");
            ])
          profile_phases
        @ [
            [ "total"; Bench_util.Table_fmt.ms (!total /. float_of_int n); "100%" ];
          ]
      in
      Bench_util.Table_fmt.print ~header:[ "Phase"; "Mean (ms)"; "Share" ] rows;
      add_json
        (Printf.sprintf "profile_%s" (String.lowercase_ascii shape_name))
        (Printf.sprintf
           {|{"dataset":"%s","shape":"%s","queries":%d,"answered":%d,"mean_total_s":%.9g,"phases_mean_s":{%s},"stats_mean":{"index_probes":%.1f,"candidates_scanned":%.1f,"satellite_rejections":%.1f,"solutions":%.1f}}|}
           ds.ds_name shape_name
           (!answered + !unanswered)
           !answered
           (!total /. float_of_int n)
           (String.concat ","
              (List.map
                 (fun phase ->
                   Printf.sprintf {|"%s":%.9g|} phase
                     (Option.value ~default:0.
                        (Hashtbl.find_opt phase_total phase)
                     /. float_of_int n))
                 profile_phases))
           (float_of_int stats_total.Amber.Matcher.index_probes /. float_of_int n)
           (float_of_int stats_total.Amber.Matcher.candidates_scanned
           /. float_of_int n)
           (float_of_int stats_total.Amber.Matcher.satellite_rejections
           /. float_of_int n)
           (float_of_int stats_total.Amber.Matcher.solutions /. float_of_int n)))
    [ (Datagen.Workload.Star, "Star"); (Datagen.Workload.Complex, "Complex") ]

(* ------------------------------------------------------------------ *)
(* Kernels: adaptive set algebra + probe caching (the matcher hot      *)
(* path); --only kernels, recorded as BENCH_2.json                     *)
(* ------------------------------------------------------------------ *)

let bench_kernels cfg ds =
  section
    (Printf.sprintf
       "Kernels: intersection kernels and probe caching on %s" ds.ds_name);
  (* (a) The three intersection kernels head to head on the operand
     shapes the adaptive dispatch distinguishes. *)
  let rng = Datagen.Prng.create (cfg.seed + 4242) in
  let base = max 4_000 (int_of_float (cfg.scale *. 400_000.)) in
  let sorted n span =
    Mgraph.Sorted_ints.of_list (List.init n (fun _ -> Datagen.Prng.int rng span))
  in
  let shapes =
    [
      (* similar sizes, sparse: merge territory *)
      ("similar-sparse", sorted base (8 * base), sorted base (8 * base));
      (* a tiny candidate set against a hub's adjacency: gallop territory *)
      ("skewed-hub", sorted (max 16 (base / 256)) (4 * base), sorted base (4 * base));
      (* both large, dense value range: bitset territory *)
      ("large-dense", sorted base (2 * base), sorted base (2 * base));
    ]
  in
  let time_kernel kernel a b reps =
    let dt, () =
      Bench_util.Runner.time (fun () ->
          for _ = 1 to reps do
            ignore (Sys.opaque_identity (kernel a b))
          done)
    in
    dt /. float_of_int reps *. 1e9
  in
  let kernel_rows =
    List.map
      (fun (name, a, b) ->
        let reps = max 4 (8_000_000 / max 1 (Array.length a + Array.length b)) in
        let merge = time_kernel Mgraph.Sorted_ints.inter_merge a b reps in
        let gallop = time_kernel Mgraph.Sorted_ints.inter_gallop a b reps in
        let bitset = time_kernel Mgraph.Sorted_ints.inter_bitset a b reps in
        let adaptive = time_kernel Mgraph.Sorted_ints.inter a b reps in
        (name, Array.length a, Array.length b, reps, merge, gallop, bitset, adaptive))
      shapes
  in
  Bench_util.Table_fmt.print
    ~header:[ "shape"; "|a|"; "|b|"; "merge ns"; "gallop ns"; "bitset ns"; "adaptive ns" ]
    (List.map
       (fun (name, na, nb, _, merge, gallop, bitset, adaptive) ->
         [
           name;
           string_of_int na;
           string_of_int nb;
           Printf.sprintf "%.0f" merge;
           Printf.sprintf "%.0f" gallop;
           Printf.sprintf "%.0f" bitset;
           Printf.sprintf "%.0f" adaptive;
         ])
       kernel_rows);
  (* (b) Whole queries with and without the probe caches. The uncached
     pass runs first so the engine's cross-query LRUs start cold; the
     cached pass then repeats the same workload twice — the second
     (warm) pass is where the LRUs pay off. *)
  let engine = Amber.Engine.build ~layout:cfg.layout (Lazy.force ds.triples) in
  let run_pass ~caches queries =
    let times = ref [] and hits = ref 0 and misses = ref 0 and un = ref 0 in
    List.iter
      (fun ast ->
        match
          Bench_util.Runner.time (fun () ->
              Amber.Engine.query_with_stats ~timeout:cfg.timeout
                ~limit:cfg.row_limit ~caches engine ast)
        with
        | dt, (_, stats) ->
            times := dt :: !times;
            hits := !hits + stats.Amber.Matcher.probe_cache_hits;
            misses := !misses + stats.Amber.Matcher.probe_cache_misses
        | exception Amber.Deadline.Expired -> incr un)
      queries;
    (Bench_util.Stats.mean !times, List.length !times, !un, !hits, !misses)
  in
  let query_shapes =
    [
      ("star", Datagen.Workload.Star, 20);
      ("complex", Datagen.Workload.Complex, 30);
    ]
  in
  let cache_results =
    List.map
      (fun (label, shape, size) ->
        let queries =
          Datagen.Workload.generate ~seed:(cfg.seed + 55) (Lazy.force ds.corpus)
            ~shape ~size ~count:cfg.queries_per_point
        in
        let u_mean, u_n, u_un, _, _ = run_pass ~caches:false queries in
        let c_mean, _, _, c_hits, c_misses = run_pass ~caches:true queries in
        let w_mean, _, _, w_hits, w_misses = run_pass ~caches:true queries in
        (label, List.length queries, u_mean, u_n, u_un, c_mean, c_hits, c_misses,
         w_mean, w_hits, w_misses))
      query_shapes
  in
  Bench_util.Table_fmt.print
    ~header:
      [ "shape"; "n"; "uncached ms"; "cached ms"; "warm ms"; "hits"; "misses"; "speedup" ]
    (List.map
       (fun (label, n, u_mean, _, _, c_mean, _, _, w_mean, w_hits, w_misses) ->
         [
           label;
           string_of_int n;
           Bench_util.Table_fmt.ms u_mean;
           Bench_util.Table_fmt.ms c_mean;
           Bench_util.Table_fmt.ms w_mean;
           string_of_int w_hits;
           string_of_int w_misses;
           (if w_mean > 0. then Printf.sprintf "%.2fx" (u_mean /. w_mean) else "-");
         ])
       cache_results);
  add_json "kernels"
    (Printf.sprintf
       {|{"dataset":"%s","set_kernels":[%s],"probe_cache":[%s]}|}
       ds.ds_name
       (String.concat ","
          (List.map
             (fun (name, na, nb, reps, merge, gallop, bitset, adaptive) ->
               Printf.sprintf
                 {|{"shape":"%s","len_a":%d,"len_b":%d,"reps":%d,"merge_ns":%.1f,"gallop_ns":%.1f,"bitset_ns":%.1f,"adaptive_ns":%.1f}|}
                 name na nb reps merge gallop bitset adaptive)
             kernel_rows))
       (String.concat ","
          (List.map
             (fun (label, n, u_mean, u_n, u_un, c_mean, c_hits, c_misses, w_mean,
                   w_hits, w_misses) ->
               Printf.sprintf
                 {|{"shape":"%s","queries":%d,"answered":%d,"unanswered":%d,"uncached_mean_s":%.9g,"cached_cold_mean_s":%.9g,"cached_warm_mean_s":%.9g,"cold_hits":%d,"cold_misses":%d,"warm_hits":%d,"warm_misses":%d,"speedup_warm":%.3f}|}
                 label n u_n u_un u_mean c_mean w_mean c_hits c_misses w_hits
                 w_misses
                 (if w_mean > 0. then u_mean /. w_mean else 0.))
             cache_results)));
  (* Flush the engine-side LRU counters into the default registry so the
     report's "metrics" object carries them. *)
  Amber.Engine.sync_index_metrics engine

(* ------------------------------------------------------------------ *)
(* Parallel matching: domain-count scaling curve; --only parallel,     *)
(* recorded as BENCH_3.json                                            *)
(* ------------------------------------------------------------------ *)

let bench_parallel cfg ds =
  let host_cores = Domain.recommended_domain_count () in
  section
    (Printf.sprintf
       "Parallel matching: AMbER at 1/2/4 domains on %s (host reports %d \
        core%s)"
       ds.ds_name host_cores
       (if host_cores = 1 then "" else "s"));
  let engine = Amber.Engine.build (Lazy.force ds.triples) in
  let workload =
    (* A mix of shapes so the curve reflects both seed-rich star queries
       and the deeper complex recursions. *)
    Datagen.Workload.generate ~seed:(cfg.seed + 31) (Lazy.force ds.corpus)
      ~shape:Datagen.Workload.Star ~size:20 ~count:cfg.queries_per_point
    @ Datagen.Workload.generate ~seed:(cfg.seed + 32) (Lazy.force ds.corpus)
        ~shape:Datagen.Workload.Complex ~size:30 ~count:cfg.queries_per_point
  in
  let canonical (a : Amber.Engine.answer) = List.sort compare a.rows in
  let run_pass ~domains =
    List.map
      (fun ast ->
        match
          Bench_util.Runner.time (fun () ->
              Amber.Engine.query ~timeout:cfg.timeout ~limit:cfg.row_limit
                ~domains engine ast)
        with
        | dt, a -> Some (dt, a)
        | exception Amber.Deadline.Expired -> None)
      workload
  in
  (* Answers are compared as row sets against the sequential pass: with a
     row limit the chunks race to the cap, so only un-truncated answers
     must agree exactly. *)
  let baseline = run_pass ~domains:1 in
  let results =
    List.map
      (fun domains ->
        let pass = if domains = 1 then baseline else run_pass ~domains in
        let times = List.filter_map (Option.map fst) pass in
        let mismatches =
          List.fold_left2
            (fun acc b p ->
              match (b, p) with
              | Some (_, b), Some (_, a)
                when (not b.Amber.Engine.truncated)
                     && not a.Amber.Engine.truncated ->
                  if canonical b = canonical a then acc else acc + 1
              | _ -> acc)
            0 baseline pass
        in
        let answered = List.length times in
        (domains, answered, mismatches, Bench_util.Stats.mean times,
         Bench_util.Stats.p95 times))
      [ 1; 2; 4 ]
  in
  let base_mean =
    match results with (_, _, _, m, _) :: _ -> m | [] -> 0.
  in
  Bench_util.Table_fmt.print
    ~header:
      [ "domains"; "answered"; "mismatches"; "mean (ms)"; "p95 (ms)"; "speedup" ]
    (List.map
       (fun (d, answered, mismatches, mean, p95) ->
         [
           string_of_int d;
           Printf.sprintf "%d/%d" answered (List.length workload);
           string_of_int mismatches;
           Bench_util.Table_fmt.ms mean;
           Bench_util.Table_fmt.ms p95;
           (if mean > 0. then Printf.sprintf "%.2fx" (base_mean /. mean) else "-");
         ])
       results);
  if host_cores < 4 then
    Printf.printf
      "(note: host has %d core%s — wall-clock speedup beyond %dx is not \
       reachable here)\n"
      host_cores
      (if host_cores = 1 then "" else "s")
      host_cores;
  add_json "parallel"
    (Printf.sprintf {|{"dataset":"%s","host_cores":%d,"queries":%d,"points":[%s]}|}
       ds.ds_name host_cores (List.length workload)
       (String.concat ","
          (List.map
             (fun (d, answered, mismatches, mean, p95) ->
               Printf.sprintf
                 {|{"domains":%d,"answered":%d,"mismatches":%d,"mean_s":%.9g,"p95_s":%.9g,"speedup":%.3f}|}
                 d answered mismatches mean p95
                 (if mean > 0. then base_mean /. mean else 0.))
             results)))

(* ------------------------------------------------------------------ *)
(* Offline stage: build vs snapshot load; --only build, recorded as    *)
(* BENCH_4.json                                                        *)
(* ------------------------------------------------------------------ *)

let with_temp_file suffix f =
  let path = Filename.temp_file "amber_bench" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* Cold-start steps are timed as the best of [reps] runs with a
   compacted heap before each, like bench_table5's memory probe — the
   steps allocate heavily, so a single hot measurement is dominated by
   whatever garbage the run accumulated so far. *)
let time_best ?(reps = 5) f =
  let best = ref infinity and out = ref None in
  for _ = 1 to reps do
    Gc.compact ();
    let dt, v = Bench_util.Runner.time f in
    if dt < !best then best := dt;
    out := Some v
  done;
  (!best, Option.get !out)

let bench_build cfg ds =
  section
    (Printf.sprintf
       "Snapshots: offline build vs AMBERIX1 cold start on %s" ds.ds_name);
  let triples = Lazy.force ds.triples in
  (* (a) offline stage: sequential vs parallel index construction. *)
  let t_seq, engine_seq =
    time_best (fun () -> Amber.Engine.build ~domains:1 triples)
  in
  let t_par, engine_par =
    time_best (fun () -> Amber.Engine.build ~domains:4 triples)
  in
  let identical =
    Amber.Snapshot.to_string (Amber.Engine.snapshot_contents engine_seq)
    = Amber.Snapshot.to_string (Amber.Engine.snapshot_contents engine_par)
  in
  (* (b) cold start: replaying the offline stage from triples — both the
     N-Triples text the CLI ingests and the compact AMBERDB1 binary —
     vs reading the AMBERIX1 index snapshot. The built engines are not
     referenced past this point: a cold start happens in a near-empty
     heap, so keeping tens of MB of dead-weight indexes live would tax
     the GC during the timed decodes and overstate their cost. *)
  with_temp_file ".nt" @@ fun nt_path ->
  with_temp_file ".adb" @@ fun triples_path ->
  with_temp_file ".amberix" @@ fun snapshot_path ->
  Rdf.Ntriples.write_file nt_path triples;
  Amber.Engine.save engine_seq triples_path;
  let t_save, () =
    time_best (fun () -> Amber.Engine.save_snapshot engine_seq snapshot_path)
  in
  let t_rebuild_nt, _ =
    time_best (fun () ->
        Amber.Engine.build ~domains:1 (Rdf.Ntriples.parse_file nt_path))
  in
  let t_rebuild, _ =
    time_best (fun () -> Amber.Engine.load_file triples_path)
  in
  let t_load, loaded =
    time_best (fun () -> Amber.Engine.load_snapshot snapshot_path)
  in
  let nt_bytes = (Unix.stat nt_path).Unix.st_size in
  let triples_bytes = (Unix.stat triples_path).Unix.st_size in
  let snapshot_bytes = (Unix.stat snapshot_path).Unix.st_size in
  (* (c) the snapshot-loaded engine must answer the workload exactly like
     a freshly built one (both sequential, so answers are deterministic,
     truncated or not). Built fresh here rather than reusing the timed
     engine so the cold-start section above holds no engine live. *)
  let fresh = Amber.Engine.build ~domains:1 triples in
  let workload =
    Datagen.Workload.generate ~seed:(cfg.seed + 91) (Lazy.force ds.corpus)
      ~shape:Datagen.Workload.Star ~size:20 ~count:cfg.queries_per_point
    @ Datagen.Workload.generate ~seed:(cfg.seed + 92) (Lazy.force ds.corpus)
        ~shape:Datagen.Workload.Complex ~size:30 ~count:cfg.queries_per_point
  in
  let answer engine ast =
    match
      Amber.Engine.query ~timeout:cfg.timeout ~limit:cfg.row_limit engine ast
    with
    | a -> Some (a.Amber.Engine.variables, a.Amber.Engine.rows, a.Amber.Engine.truncated)
    | exception Amber.Deadline.Expired -> None
  in
  let compared = ref 0 and mismatches = ref 0 in
  List.iter
    (fun ast ->
      match (answer fresh ast, answer loaded ast) with
      | Some a, Some b ->
          incr compared;
          if a <> b then incr mismatches
      | _ -> ())
    workload;
  let speedup_nt = if t_load > 0. then t_rebuild_nt /. t_load else 0. in
  let speedup_adb = if t_load > 0. then t_rebuild /. t_load else 0. in
  let cores = Domain.recommended_domain_count () in
  Bench_util.Table_fmt.print
    ~header:[ "step"; "time (s)"; "detail" ]
    [
      [ "build (1 domain)"; Printf.sprintf "%.3f" t_seq; "" ];
      [
        "build (4 domains)";
        Printf.sprintf "%.3f" t_par;
        Printf.sprintf "%s; host has %d core%s"
          (if identical then "indexes byte-identical to sequential"
           else "INDEX MISMATCH vs sequential")
          cores
          (if cores = 1 then "" else "s");
      ];
      [
        "save snapshot";
        Printf.sprintf "%.3f" t_save;
        Printf.sprintf "%d bytes" snapshot_bytes;
      ];
      [
        "rebuild from N-Triples";
        Printf.sprintf "%.3f" t_rebuild_nt;
        Printf.sprintf "parse + build, %d bytes" nt_bytes;
      ];
      [
        "rebuild from AMBERDB1";
        Printf.sprintf "%.3f" t_rebuild;
        Printf.sprintf "load + build, %d bytes" triples_bytes;
      ];
      [
        "load snapshot";
        Printf.sprintf "%.3f" t_load;
        Printf.sprintf "%.1fx vs N-Triples rebuild, %.1fx vs AMBERDB1"
          speedup_nt speedup_adb;
      ];
      [
        "query agreement";
        "-";
        Printf.sprintf "%d/%d answered identically" (!compared - !mismatches)
          !compared;
      ];
    ];
  add_json "build"
    (Printf.sprintf
       {|{"dataset":"%s","triples":%d,"host_cores":%d,"build_seq_s":%.9g,"build_par4_s":%.9g,"parallel_byte_identical":%b,"snapshot_save_s":%.9g,"snapshot_bytes":%d,"ntriples_file_bytes":%d,"triple_file_bytes":%d,"rebuild_from_triples_s":%.9g,"rebuild_from_adb_s":%.9g,"snapshot_load_s":%.9g,"load_speedup":%.3f,"load_speedup_vs_adb":%.3f,"queries_compared":%d,"query_mismatches":%d}|}
       ds.ds_name (List.length triples) cores t_seq t_par identical t_save
       snapshot_bytes nt_bytes triples_bytes t_rebuild_nt t_rebuild t_load
       speedup_nt speedup_adb !compared !mismatches)

(* ------------------------------------------------------------------ *)
(* Static analysis: screening cost and UNSAT short-circuit payoff;     *)
(* --only analysis                                                     *)
(* ------------------------------------------------------------------ *)

let bench_analysis cfg ds =
  section
    (Printf.sprintf
       "Static analysis: screening cost and UNSAT short-circuit on %s"
       ds.ds_name);
  let engine = Amber.Engine.build (Lazy.force ds.triples) in
  let workload =
    Datagen.Workload.generate ~seed:(cfg.seed + 61) (Lazy.force ds.corpus)
      ~shape:Datagen.Workload.Star ~size:20 ~count:cfg.queries_per_point
    @ Datagen.Workload.generate ~seed:(cfg.seed + 62) (Lazy.force ds.corpus)
        ~shape:Datagen.Workload.Complex ~size:30 ~count:cfg.queries_per_point
  in
  (* UNSAT variants: one predicate rewritten to an IRI absent from the
     data — every query becomes provably empty before matching starts. *)
  let poison ast =
    match ast.Sparql.Ast.where with
    | first :: rest ->
        {
          ast with
          Sparql.Ast.where =
            {
              first with
              Sparql.Ast.predicate =
                Sparql.Ast.Iri "http://amber.invalid/no-such-predicate";
            }
            :: rest;
        }
    | [] -> ast
  in
  let unsat_workload = List.map poison workload in
  let time_pass f queries =
    let times = ref [] and un = ref 0 in
    List.iter
      (fun ast ->
        match Bench_util.Runner.time (fun () -> ignore (Sys.opaque_identity (f ast))) with
        | dt, () -> times := dt :: !times
        | exception Amber.Deadline.Expired -> incr un)
      queries;
    (Bench_util.Stats.mean !times, List.length !times, !un)
  in
  (* (a) the analyzer alone, and what it reports on both workloads. *)
  let a_mean, _, _ =
    time_pass (fun ast -> Amber.Engine.analyze engine ast) workload
  in
  let count queries =
    let reports = List.map (Amber.Engine.analyze engine) queries in
    ( List.length
        (List.filter (fun r -> Amber.Analysis.unsat_proof r <> None) reports),
      List.fold_left
        (fun n r -> n + List.length (Amber.Analysis.warnings r))
        0 reports )
  in
  let sat_unsats, sat_warnings = count workload in
  let poi_unsats, _ = count unsat_workload in
  (* (b) whole queries: the screen's overhead on satisfiable queries and
     its payoff on provably empty ones. *)
  let run_queries ~analyze queries =
    time_pass
      (fun ast ->
        Amber.Engine.query ~analyze ~timeout:cfg.timeout ~limit:cfg.row_limit
          engine ast)
      queries
  in
  let on_mean, on_n, on_un = run_queries ~analyze:true workload in
  let off_mean, _, _ = run_queries ~analyze:false workload in
  let sc_mean, _, _ = run_queries ~analyze:true unsat_workload in
  let full_mean, full_n, full_un = run_queries ~analyze:false unsat_workload in
  Bench_util.Table_fmt.print
    ~header:[ "pass"; "n"; "mean (ms)"; "detail" ]
    [
      [
        "analyze only";
        string_of_int (List.length workload);
        Bench_util.Table_fmt.ms a_mean;
        Printf.sprintf "%d unsat, %d warnings" sat_unsats sat_warnings;
      ];
      [
        "query, analyze on (sat)";
        Printf.sprintf "%d" on_n;
        Bench_util.Table_fmt.ms on_mean;
        Printf.sprintf "%d unanswered" on_un;
      ];
      [
        "query, analyze off (sat)";
        "-";
        Bench_util.Table_fmt.ms off_mean;
        (if off_mean > 0. then
           Printf.sprintf "screen overhead %+.1f%%"
             (100. *. (on_mean -. off_mean) /. off_mean)
         else "-");
      ];
      [
        "query, analyze on (unsat)";
        string_of_int (List.length unsat_workload);
        Bench_util.Table_fmt.ms sc_mean;
        Printf.sprintf "%d/%d proven empty" poi_unsats
          (List.length unsat_workload);
      ];
      [
        "query, analyze off (unsat)";
        Printf.sprintf "%d" full_n;
        Bench_util.Table_fmt.ms full_mean;
        Printf.sprintf "%d unanswered; short-circuit %s" full_un
          (if sc_mean > 0. then Printf.sprintf "%.1fx" (full_mean /. sc_mean)
           else "-");
      ];
    ];
  add_json "analysis"
    (Printf.sprintf
       {|{"dataset":"%s","queries":%d,"analyze_mean_s":%.9g,"sat_unsats":%d,"sat_warnings":%d,"poisoned_unsats":%d,"query_analyze_on_mean_s":%.9g,"query_analyze_off_mean_s":%.9g,"unsat_short_circuit_mean_s":%.9g,"unsat_full_eval_mean_s":%.9g,"short_circuit_speedup":%.3f}|}
       ds.ds_name (List.length workload) a_mean sat_unsats sat_warnings
       poi_unsats on_mean off_mean sc_mean full_mean
       (if sc_mean > 0. then full_mean /. sc_mean else 0.))

(* ------------------------------------------------------------------ *)
(* Resource accounting: index resident sizes + per-query GC allocation;*)
(* --only resource, recorded as BENCH_6.json                           *)
(* ------------------------------------------------------------------ *)

let bench_resource cfg ds =
  section
    (Printf.sprintf
       "Resource accounting: index resident bytes and per-query GC \
        allocation on %s"
       ds.ds_name);
  let triples = Lazy.force ds.triples in
  let engine = Amber.Engine.build ~layout:cfg.layout triples in
  let n_triples = max 1 (List.length triples) in
  (* (a) what each index holds: a reachable-words walk per structure —
     the same numbers the endpoint exports as
     amber_index_resident_bytes{index=...}. *)
  let resident = Amber.Engine.resident_bytes engine in
  let total = List.fold_left (fun acc (_, b) -> acc + b) 0 resident in
  Bench_util.Table_fmt.print
    ~header:[ "index"; "resident bytes"; "MB"; "bytes/triple" ]
    (List.map
       (fun (name, bytes) ->
         [
           name;
           string_of_int bytes;
           Printf.sprintf "%.2f" (float_of_int bytes /. 1_048_576.);
           Printf.sprintf "%.1f" (float_of_int bytes /. float_of_int n_triples);
         ])
       resident
    @ [
        [
          "total";
          string_of_int total;
          Printf.sprintf "%.2f" (float_of_int total /. 1_048_576.);
          Printf.sprintf "%.1f" (float_of_int total /. float_of_int n_triples);
        ];
      ]);
  (* (b) what a query allocates: the Gc.quick_stat delta across each
     run, the figure the flight recorder attaches to every record.
     Sequential runs, so the calling-domain caveat doesn't bite. *)
  let workload =
    Datagen.Workload.generate ~seed:(cfg.seed + 71) (Lazy.force ds.corpus)
      ~shape:Datagen.Workload.Star ~size:20 ~count:cfg.queries_per_point
    @ Datagen.Workload.generate ~seed:(cfg.seed + 72) (Lazy.force ds.corpus)
        ~shape:Datagen.Workload.Complex ~size:30 ~count:cfg.queries_per_point
  in
  let allocs = ref []
  and minors = ref 0
  and majors = ref 0
  and unanswered = ref 0 in
  List.iter
    (fun ast ->
      match
        Obs.Resource.gc_delta (fun () ->
            Amber.Engine.query ~timeout:cfg.timeout ~limit:cfg.row_limit
              engine ast)
      with
      | _, d ->
          allocs := Obs.Resource.allocated_bytes d :: !allocs;
          minors := !minors + d.Obs.Resource.minor_collections;
          majors := !majors + d.Obs.Resource.major_collections
      | exception Amber.Deadline.Expired -> incr unanswered)
    workload;
  let answered = List.length !allocs in
  let mean_alloc = Bench_util.Stats.mean !allocs in
  let p95_alloc = Bench_util.Stats.p95 !allocs in
  let max_alloc = Bench_util.Stats.maximum !allocs in
  Printf.printf
    "per-query allocation over %d answered queries (%d unanswered):\n"
    answered !unanswered;
  Bench_util.Table_fmt.print
    ~header:[ "figure"; "value" ]
    [
      [ "mean bytes/query"; Printf.sprintf "%.0f" mean_alloc ];
      [ "p95 bytes/query"; Printf.sprintf "%.0f" p95_alloc ];
      [
        "max bytes/query";
        Printf.sprintf "%.0f" (if answered = 0 then 0. else max_alloc);
      ];
      [ "minor collections"; string_of_int !minors ];
      [ "major collections"; string_of_int !majors ];
    ];
  add_json "resource"
    (Printf.sprintf
       {|{"dataset":"%s","triples":%d,"resident_bytes":{%s},"total_resident_bytes":%d,"bytes_per_triple":%.2f,"query_alloc":{"queries":%d,"answered":%d,"mean_bytes":%.1f,"p95_bytes":%.1f,"max_bytes":%.1f,"minor_collections":%d,"major_collections":%d}}|}
       ds.ds_name (List.length triples)
       (String.concat ","
          (List.map
             (fun (name, bytes) -> Printf.sprintf {|"%s":%d|} name bytes)
             resident))
       total
       (float_of_int total /. float_of_int n_triples)
       (List.length workload) answered mean_alloc p95_alloc
       (if answered = 0 then 0. else max_alloc)
       !minors !majors);
  (* Publish the gauges so the report's "metrics" object carries them
     too, like a /metrics scrape would. *)
  Amber.Engine.sync_resource_metrics engine

(* ------------------------------------------------------------------ *)
(* Layout ablation: resident bytes vs query latency per posting        *)
(* layout; --only layouts, recorded as BENCH_7.json                    *)
(* ------------------------------------------------------------------ *)

let bench_layouts cfg ds =
  section
    (Printf.sprintf
       "Layout ablation: posting-list layouts (resident bytes vs query \
        latency) on %s"
       ds.ds_name);
  let triples = Lazy.force ds.triples in
  let n_triples = max 1 (List.length triples) in
  let workload =
    Datagen.Workload.generate ~seed:(cfg.seed + 81) (Lazy.force ds.corpus)
      ~shape:Datagen.Workload.Star ~size:20 ~count:(2 * cfg.queries_per_point)
    @ Datagen.Workload.generate ~seed:(cfg.seed + 82) (Lazy.force ds.corpus)
        ~shape:Datagen.Workload.Complex ~size:30
        ~count:(2 * cfg.queries_per_point)
  in
  let layouts =
    [
      Mgraph.Posting.Force Mgraph.Posting.Raw;
      Mgraph.Posting.Force Mgraph.Posting.Ef;
      Mgraph.Posting.Force Mgraph.Posting.Blocked;
      Mgraph.Posting.Auto;
    ]
  in
  (* Build every engine first, then time them in interleaved rounds
     (best-of-rounds per query): the layouts differ by a few percent,
     so measuring engines minutes apart would let machine drift swamp
     the signal. A shared untimed warmup round levels page-fault, LRU
     and GC state. *)
  let engines =
    List.map
      (fun layout ->
        let engine = Amber.Engine.build ~layout triples in
        let total =
          List.fold_left
            (fun acc (_, b) -> acc + b)
            0
            (Amber.Engine.resident_bytes engine)
        in
        (Mgraph.Posting.policy_to_string layout, engine, total,
         Amber.Engine.posting_stats engine))
      layouts
  in
  let queries = Array.of_list workload in
  let nq = Array.length queries in
  let best =
    List.map (fun (name, _, _, _) -> (name, Array.make nq infinity)) engines
  in
  Gc.compact ();
  let rounds = 6 in
  for round = 0 to rounds do
    (* round 0 is the untimed warmup *)
    List.iter
      (fun (name, engine, _, _) ->
        let slots = List.assoc name best in
        Array.iteri
          (fun i ast ->
            match
              Bench_util.Runner.time (fun () ->
                  Amber.Engine.query ~timeout:cfg.timeout ~limit:cfg.row_limit
                    engine ast)
            with
            | dt, _ -> if round > 0 && dt < slots.(i) then slots.(i) <- dt
            | exception Amber.Deadline.Expired -> ())
          queries)
      engines
  done;
  let results =
    List.map
      (fun (name, _, total, stats) ->
        let slots = List.assoc name best in
        let times =
          Array.to_list slots |> List.filter (fun t -> t < infinity)
        in
        let median = Bench_util.Stats.median times in
        (name, total, stats, median, List.length times, nq - List.length times))
      engines
  in
  let raw_total, raw_median =
    match results with
    | (_, total, _, median, _, _) :: _ -> (total, median)
    | [] -> (0, 0.)
  in
  Bench_util.Table_fmt.print
    ~header:
      [
        "layout";
        "resident bytes";
        "B/triple";
        "raw/ef/blocked";
        "payload MB";
        "median ms";
        "vs raw";
      ]
    (List.map
       (fun (name, total, s, median, _, _) ->
         [
           name;
           string_of_int total;
           Printf.sprintf "%.1f" (float_of_int total /. float_of_int n_triples);
           Printf.sprintf "%d/%d/%d" s.Mgraph.Posting.raw_lists
             s.Mgraph.Posting.ef_lists s.Mgraph.Posting.blocked_lists;
           Printf.sprintf "%.2f"
             (float_of_int s.Mgraph.Posting.payload_bytes /. 1_048_576.);
           Bench_util.Table_fmt.ms median;
           (if raw_median > 0. then
              Printf.sprintf "%.0f%% bytes, %+.1f%% time"
                (100. *. float_of_int total /. float_of_int (max 1 raw_total))
                (100. *. (median -. raw_median) /. raw_median)
            else "-");
         ])
       results);
  (match
     List.find_opt (fun (name, _, _, _, _, _) -> name = "auto") results
   with
  | Some (_, auto_total, _, auto_median, _, _) when raw_total > 0 ->
      Printf.printf
        "auto layout: %.2fx smaller than raw, median query %+.1f%%\n"
        (float_of_int raw_total /. float_of_int (max 1 auto_total))
        (if raw_median > 0. then
           100. *. (auto_median -. raw_median) /. raw_median
         else 0.)
  | _ -> ());
  add_json "layouts"
    (Printf.sprintf {|{"dataset":"%s","triples":%d,"per_layout":[%s]}|}
       ds.ds_name (List.length triples)
       (String.concat ","
          (List.map
             (fun (name, total, s, median, answered, unanswered) ->
               Printf.sprintf
                 {|{"layout":"%s","total_resident_bytes":%d,"bytes_per_triple":%.2f,"raw_lists":%d,"ef_lists":%d,"blocked_lists":%d,"payload_bytes":%d,"median_query_s":%.9g,"answered":%d,"unanswered":%d}|}
                 name total
                 (float_of_int total /. float_of_int n_triples)
                 s.Mgraph.Posting.raw_lists s.Mgraph.Posting.ef_lists
                 s.Mgraph.Posting.blocked_lists s.Mgraph.Posting.payload_bytes
                 median answered unanswered)
             results)))

(* ------------------------------------------------------------------ *)
(* Live updates: write throughput, query latency vs delta fraction,    *)
(* compaction pause; --only updates, recorded as BENCH_8.json          *)
(* ------------------------------------------------------------------ *)

let bench_updates cfg ds =
  section
    (Printf.sprintf
       "Live updates: delta-overlay write throughput, query latency vs delta \
        fraction, compaction pause on %s"
       ds.ds_name);
  let triples = Array.of_list (Lazy.force ds.triples) in
  let n = Array.length triples in
  let workload =
    Datagen.Workload.generate ~seed:(cfg.seed + 91) (Lazy.force ds.corpus)
      ~shape:Datagen.Workload.Star ~size:20 ~count:cfg.queries_per_point
    @ Datagen.Workload.generate ~seed:(cfg.seed + 92) (Lazy.force ds.corpus)
        ~shape:Datagen.Workload.Complex ~size:30 ~count:cfg.queries_per_point
  in
  let batch = 256 in
  (* For each delta fraction f the engine holds the SAME merged world —
     the last f·n triples arrive through Live_engine.update (in batches
     of [batch]) instead of the offline build — so the latency columns
     isolate the cost of querying through the overlay. In-memory live
     engine (no directory): the figures are engine overhead, not disk. *)
  let points =
    List.map
      (fun frac ->
        let cut = n - int_of_float (frac *. float_of_int n) in
        let base = Array.to_list (Array.sub triples 0 cut) in
        let live =
          Amber.Live_engine.of_engine
            (Amber.Engine.build ~layout:cfg.layout base)
        in
        let n_updates = ref 0 in
        let t_update, () =
          Bench_util.Runner.time (fun () ->
              let i = ref cut in
              while !i < n do
                let len = min batch (n - !i) in
                ignore
                  (Amber.Live_engine.update live
                     ~adds:(Array.to_list (Array.sub triples !i len))
                     ~dels:[]);
                incr n_updates;
                i := !i + len
              done)
        in
        let engine =
          Amber.Live_engine.engine (Amber.Live_engine.pin live)
        in
        let times =
          List.filter_map
            (fun ast ->
              match
                Bench_util.Runner.time (fun () ->
                    Amber.Engine.query ~timeout:cfg.timeout
                      ~limit:cfg.row_limit engine ast)
              with
              | dt, _ -> Some dt
              | exception Amber.Deadline.Expired -> None)
            workload
        in
        (* The compaction "pause" is writer-side only — readers keep
           their pinned epochs throughout — but it bounds how stale a
           durable generation can get. *)
        let t_compact, _ =
          Bench_util.Runner.time (fun () -> Amber.Live_engine.compact live)
        in
        ( frac,
          n - cut,
          !n_updates,
          t_update,
          Bench_util.Stats.median times,
          Bench_util.Stats.p95 times,
          List.length times,
          t_compact ))
      [ 0.0; 0.10; 0.50 ]
  in
  Bench_util.Table_fmt.print
    ~header:
      [
        "delta";
        "delta triples";
        "updates";
        "apply s";
        "triples/s";
        "median ms";
        "p95 ms";
        "answered";
        "compact s";
      ]
    (List.map
       (fun (frac, dn, updates, t_update, median, p95, answered, t_compact) ->
         [
           Printf.sprintf "%.0f%%" (100. *. frac);
           string_of_int dn;
           string_of_int updates;
           Printf.sprintf "%.3f" t_update;
           (if dn = 0 then "-"
            else Printf.sprintf "%.0f" (float_of_int dn /. t_update));
           Bench_util.Table_fmt.ms median;
           Bench_util.Table_fmt.ms p95;
           Printf.sprintf "%d/%d" answered (List.length workload);
           Printf.sprintf "%.3f" t_compact;
         ])
       points);
  add_json "updates"
    (Printf.sprintf
       {|{"dataset":"%s","triples":%d,"batch":%d,"points":[%s]}|}
       ds.ds_name n batch
       (String.concat ","
          (List.map
             (fun (frac, dn, updates, t_update, median, p95, answered,
                   t_compact) ->
               (* [triples_per_sec] deliberately avoids the comparator's
                  "_s" timing suffix: it is a throughput, where bigger
                  is better, so the regression gate must not read its
                  growth as a slowdown. *)
               Printf.sprintf
                 {|{"delta_fraction":%.2f,"delta_triples":%d,"updates":%d,"update_s":%.9g,"triples_per_sec":%.1f,"query_median_s":%.9g,"query_p95_s":%.9g,"answered":%d,"unanswered":%d,"compaction_s":%.9g}|}
                 frac dn updates t_update
                 (if t_update > 0. then float_of_int dn /. t_update else 0.)
                 median p95 answered
                 (List.length workload - answered)
                 t_compact)
             points)))

(* ------------------------------------------------------------------ *)
(* Adaptive planner: plan policies on uniform vs skewed data;          *)
(* --only plans, recorded as BENCH_9.json                              *)
(* ------------------------------------------------------------------ *)

let bench_plans cfg =
  section
    "Adaptive planner: paper / adaptive / forced plans on uniform and skewed \
     DBPEDIA-like";
  let plans =
    [
      ("paper", Amber.Stats.Paper);
      ("adaptive", Amber.Stats.Adaptive);
      ("forced:rtree", Amber.Stats.Forced Amber.Stats.Rtree);
      ("forced:attrs", Amber.Stats.Forced Amber.Stats.Attrs);
      ("forced:scan", Amber.Stats.Forced Amber.Stats.Scan);
    ]
  in
  (* Same profile and seed twice: the skewed twin differs only in how
     hard preferential attachment concentrates on the hubs, so any
     timing split between the columns is the planner meeting the degree
     distribution, not a different dataset. *)
  let variants =
    [ ("uniform", 0.0); ("skewed", 1.8) ]
  in
  let ds_json =
    List.map
      (fun (ds_name, skew) ->
        let triples =
          Datagen.Scale_free.generate ~seed:cfg.seed ~skew
            (Datagen.Scale_free.dbpedia_like ~scale:cfg.scale ())
        in
        let engine = Amber.Engine.build ~layout:cfg.layout triples in
        let corpus = Datagen.Workload.corpus triples in
        let families =
          [
            ("star", Datagen.Workload.Star, 10);
            ("complex", Datagen.Workload.Complex, 30);
          ]
        in
        let fam_json =
          List.map
            (fun (fam, shape, size) ->
              let queries =
                Datagen.Workload.generate ~seed:(cfg.seed + 77) corpus ~shape
                  ~size ~count:cfg.queries_per_point
              in
              (* Caches off: the LRUs would let whichever plan runs
                 second inherit the first one's candidate sets, turning
                 the comparison into a cache benchmark. Two fairness
                 measures on top: the plan order rotates per query (no
                 plan always pays the cold-page first run) and each
                 (query, plan) is timed twice keeping the best (the
                 second run measures the plan, not the page faults). An
                 expired attempt is scored at the full budget — it did
                 spend it; dropping it would flatter exactly the plans
                 that time out. *)
              let rotate k l =
                let n = List.length l in
                let k = k mod n in
                let rec split i acc = function
                  | rest when i = k -> List.rev_append acc rest @ List.rev acc
                  | x :: rest -> split (i + 1) (x :: acc) rest
                  | [] -> assert false
                in
                split 0 [] l
              in
              let per_query =
                List.mapi
                  (fun qi ast ->
                    List.map
                      (fun (plan_name, plan) ->
                        let attempt () =
                          match
                            Bench_util.Runner.time (fun () ->
                                Amber.Engine.query ~timeout:cfg.timeout
                                  ~limit:cfg.row_limit ~caches:false ~plan
                                  engine ast)
                          with
                          | dt, a -> (dt, Some a)
                          | exception Amber.Deadline.Expired ->
                              (cfg.timeout, None)
                        in
                        let d1, a1 = attempt () in
                        let d2, a2 = attempt () in
                        let answer = match a1 with Some _ -> a1 | None -> a2 in
                        (plan_name, (min d1 d2, answer)))
                      (rotate qi plans))
                  queries
              in
              (* The harness's own guard on the planner contract: every
                 plan that answered a query produced the same answer
                 set. Row ORDER tracks the core order (a plan decision),
                 so compare sorted; a truncated answer is an
                 order-dependent prefix and is skipped here (the
                 differential tests cover plan identity exhaustively at
                 sizes where nothing truncates). *)
              List.iter
                (fun results ->
                  let answered =
                    List.filter_map (fun (_, (_, a)) -> a) results
                  in
                  if
                    List.for_all
                      (fun a -> not a.Amber.Engine.truncated)
                      answered
                  then
                    match
                      List.map
                        (fun a -> List.sort compare a.Amber.Engine.rows)
                        answered
                    with
                    | [] -> ()
                    | first :: rest ->
                        if not (List.for_all (fun rows -> rows = first) rest)
                        then begin
                          Printf.eprintf
                            "FATAL: plans disagree on answers (%s, %s)\n"
                            ds_name fam;
                          exit 2
                        end)
                per_query;
              let rows =
                List.map
                  (fun (plan_name, _) ->
                    let samples =
                      List.map (fun results -> List.assoc plan_name results)
                        per_query
                    in
                    let times = List.map fst samples in
                    let answered =
                      List.length
                        (List.filter (fun (_, a) -> a <> None) samples)
                    in
                    ( plan_name,
                      Bench_util.Stats.median times,
                      Bench_util.Stats.p95 times,
                      answered ))
                  plans
              in
              Bench_util.Table_fmt.print
                ~header:
                  [
                    Printf.sprintf "%s %s" ds_name fam;
                    "median ms";
                    "p95 ms";
                    "answered";
                  ]
                (List.map
                   (fun (plan_name, median, p95, answered) ->
                     [
                       plan_name;
                       Bench_util.Table_fmt.ms median;
                       Bench_util.Table_fmt.ms p95;
                       Printf.sprintf "%d/%d" answered (List.length queries);
                     ])
                   rows);
              Printf.sprintf {|{"family":"%s","queries":%d,"plans":[%s]}|} fam
                (List.length queries)
                (String.concat ","
                   (List.map
                      (fun (plan_name, median, p95, answered) ->
                        Printf.sprintf
                          {|{"plan":"%s","median_s":%.9g,"p95_s":%.9g,"answered":%d}|}
                          plan_name median p95 answered)
                      rows)))
            families
        in
        Printf.sprintf {|{"dataset":"%s","skew":%.2f,"triples":%d,"families":[%s]}|}
          ds_name skew (List.length triples)
          (String.concat "," fam_json))
      variants
  in
  add_json "plans"
    (Printf.sprintf {|{"datasets":[%s]}|} (String.concat "," ds_json))

(* ------------------------------------------------------------------ *)
(* Semantic rewriter: minimal vs redundant workloads with the rewrite  *)
(* pass on and off; --only rewrites, recorded as BENCH_10.json         *)
(* ------------------------------------------------------------------ *)

let bench_rewrites cfg ds =
  section
    (Printf.sprintf
       "Semantic rewriter: rewrite on/off over minimal and redundant \
        workloads on %s"
       ds.ds_name);
  let engine = Amber.Engine.build ~layout:cfg.layout (Lazy.force ds.triples) in
  let base_queries =
    Datagen.Workload.generate ~seed:(cfg.seed + 91) (Lazy.force ds.corpus)
      ~shape:Datagen.Workload.Complex ~size:4 ~count:cfg.queries_per_point
  in
  (* Both suites project the original variables under DISTINCT — the
     setting where core minimization is sound — so the two columns
     differ only in what the rewriter can find. "minimal" is the
     workload as generated (nothing removable: measures pure rewriter
     overhead); "redundant" duplicates the first pattern verbatim and
     appends a variable-renamed copy of the whole clause, which folds
     back onto the original under a homomorphism fixing the projected
     variables — exactly the redundancy minimization removes. *)
  let minimal ast =
    Sparql.Ast.make ~distinct:true
      (Sparql.Ast.Select_vars (Sparql.Ast.variables ast))
      ast.Sparql.Ast.where
  in
  let redundant ast =
    let open Sparql.Ast in
    let rename = function Var v -> Var (v ^ "_r") | t -> t in
    let copy =
      List.map
        (fun p ->
          { subject = rename p.subject;
            predicate = p.predicate;
            obj = rename p.obj })
        ast.where
    in
    let dup = match ast.where with [] -> [] | p :: _ -> [ p ] in
    make ~distinct:true (Select_vars (variables ast)) (ast.where @ dup @ copy)
  in
  let steps_fired ast =
    let r =
      Amber.Rewrite.apply ~db:(Amber.Engine.db engine)
        ~attribute:(Amber.Engine.attribute_index engine)
        ~stats:(lazy (Amber.Engine.statistics engine))
        ast
    in
    List.length r.Amber.Rewrite.steps
  in
  let suites =
    [
      ("minimal", List.map minimal base_queries);
      ("redundant", List.map redundant base_queries);
    ]
  in
  let suite_json =
    List.map
      (fun (suite, queries) ->
        let fired = List.fold_left (fun n q -> n + steps_fired q) 0 queries in
        (* Caches off so the second mode can't inherit the first one's
           candidate sets; each (query, mode) is timed twice keeping the
           best, and an expired attempt is scored at the full budget. *)
        let per_query =
          List.map
            (fun ast ->
              List.map
                (fun (mode, rewrite) ->
                  let attempt () =
                    match
                      Bench_util.Runner.time (fun () ->
                          Amber.Engine.query ~timeout:cfg.timeout
                            ~limit:cfg.row_limit ~caches:false ~rewrite engine
                            ast)
                    with
                    | dt, a -> (dt, Some a)
                    | exception Amber.Deadline.Expired -> (cfg.timeout, None)
                  in
                  let d1, a1 = attempt () in
                  let d2, a2 = attempt () in
                  let answer = match a1 with Some _ -> a1 | None -> a2 in
                  (mode, (min d1 d2, answer)))
                [ ("on", true); ("off", false) ])
            queries
        in
        (* The point of the whole exercise: the rewriter must be
           invisible in the answers. Row ORDER may shift (the rewritten
           clause seeds a different core order), so compare sorted; a
           truncated answer is an order-dependent prefix and is skipped
           here (the differential tests cover identity at sizes where
           nothing truncates). *)
        List.iter
          (fun results ->
            let answered = List.filter_map (fun (_, (_, a)) -> a) results in
            if
              List.for_all (fun a -> not a.Amber.Engine.truncated) answered
            then
              match
                List.map
                  (fun a -> List.sort compare a.Amber.Engine.rows)
                  answered
              with
              | [] -> ()
              | first :: rest ->
                  if not (List.for_all (fun rows -> rows = first) rest)
                  then begin
                    Printf.eprintf
                      "FATAL: rewrite on/off disagree on answers (%s, %s)\n"
                      ds.ds_name suite;
                    exit 2
                  end)
          per_query;
        let rows =
          List.map
            (fun mode ->
              let samples =
                List.map (fun results -> List.assoc mode results) per_query
              in
              let times = List.map fst samples in
              let answered =
                List.length (List.filter (fun (_, a) -> a <> None) samples)
              in
              ( mode,
                Bench_util.Stats.median times,
                Bench_util.Stats.p95 times,
                answered ))
            [ "on"; "off" ]
        in
        Bench_util.Table_fmt.print
          ~header:
            [
              Printf.sprintf "%s (rewrites fired: %d)" suite fired;
              "median ms";
              "p95 ms";
              "answered";
            ]
          (List.map
             (fun (mode, median, p95, answered) ->
               [
                 "rewrite=" ^ mode;
                 Bench_util.Table_fmt.ms median;
                 Bench_util.Table_fmt.ms p95;
                 Printf.sprintf "%d/%d" answered (List.length queries);
               ])
             rows);
        Printf.sprintf
          {|{"suite":"%s","queries":%d,"rewrites_fired":%d,"modes":[%s]}|}
          suite (List.length queries) fired
          (String.concat ","
             (List.map
                (fun (mode, median, p95, answered) ->
                  Printf.sprintf
                    {|{"rewrite":"%s","median_s":%.9g,"p95_s":%.9g,"answered":%d}|}
                    mode median p95 answered)
                rows)))
      suites
  in
  add_json "rewrites"
    (Printf.sprintf {|{"dataset":"%s","triples":%d,"suites":[%s]}|} ds.ds_name
       (List.length (Lazy.force ds.triples))
       (String.concat "," suite_json))

(* ------------------------------------------------------------------ *)
(* Micro benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  section "Micro benchmarks (Bechamel)";
  let triples = Datagen.Lubm.generate ~universities:1 () in
  let engine = Amber.Engine.build triples in
  let db = Amber.Engine.db engine in
  let nidx = Amber.Engine.neighbourhood_index engine in
  let sidx = Amber.Engine.synopsis_index engine in
  let scan_sidx = Amber.Synopsis_index.build ~mode:Amber.Synopsis_index.Scan db in
  let g = Amber.Database.graph db in
  let hub =
    (* The vertex with the largest degree: a class vertex. *)
    let best = ref 0 in
    for v = 0 to Mgraph.Multigraph.vertex_count g - 1 do
      if Mgraph.Multigraph.degree g v > Mgraph.Multigraph.degree g !best then
        best := v
    done;
    !best
  in
  let sig_query =
    Mgraph.Signature.make ~incoming:[ [| 0 |] ] ~outgoing:[ [| 1 |]; [| 2 |] ]
  in
  let ub l = "http://swat.lehigh.edu/onto/univ-bench.owl#" ^ l in
  let advisor_q =
    Sparql.Parser.parse
      (Printf.sprintf
         "SELECT * WHERE { ?s <%s> ?prof . ?prof <%s> ?dept . ?s <%s> ?dept }"
         (ub "advisor") (ub "worksFor") (ub "memberOf"))
  in
  let ts = Baselines.Triple_store.load triples in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"neighbourhood-probe-hub"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Amber.Neighbourhood_index.neighbours nidx hub Mgraph.Multigraph.In
                  [| 0 |])));
      Test.make ~name:"synopsis-rtree-candidates"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Amber.Synopsis_index.candidates_of_signature sidx sig_query)));
      Test.make ~name:"synopsis-scan-candidates"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Amber.Synopsis_index.candidates_of_signature scan_sidx sig_query)));
      Test.make ~name:"amber-triangle-query"
        (Staged.stage (fun () ->
             Sys.opaque_identity (Amber.Engine.query ~limit:100 engine advisor_q)));
      Test.make ~name:"triple-store-triangle-query"
        (Staged.stage (fun () ->
             Sys.opaque_identity
               (Baselines.Triple_store.query ~limit:100 ts advisor_q)));
    ]
  in
  let grouped = Test.make_grouped ~name:"amber" ~fmt:"%s/%s" tests in
  let benchmark () =
    let cfg_b = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let raw = Benchmark.all cfg_b instances grouped in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark () in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-32s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let () =
  let cfg = parse_args () in
  Printf.printf
    "AMbER benchmark harness — scale %.2f, timeout %.1fs, %d queries/point, row \
     limit %d, seed %d\n"
    cfg.scale cfg.timeout cfg.queries_per_point cfg.row_limit cfg.seed;
  let dbpedia, yago, lubm = datasets cfg in
  let all = [ dbpedia; yago; lubm ] in
  if wants cfg "table4" then bench_table4 all;
  if wants cfg "table5" then bench_table5 all;
  if wants cfg "table1" then bench_table1 cfg dbpedia;
  if wants cfg "fig6" then
    bench_figure cfg ~fig:6 ~ds:dbpedia ~shape:Datagen.Workload.Star;
  if wants cfg "fig7" then
    bench_figure cfg ~fig:7 ~ds:dbpedia ~shape:Datagen.Workload.Complex;
  if wants cfg "fig8" then
    bench_figure cfg ~fig:8 ~ds:yago ~shape:Datagen.Workload.Star;
  if wants cfg "fig9" then
    bench_figure cfg ~fig:9 ~ds:yago ~shape:Datagen.Workload.Complex;
  if wants cfg "fig10" then
    bench_figure cfg ~fig:10 ~ds:lubm ~shape:Datagen.Workload.Star;
  if wants cfg "fig11" then
    bench_figure cfg ~fig:11 ~ds:lubm ~shape:Datagen.Workload.Complex;
  if wants cfg "ablation" then bench_ablation cfg dbpedia;
  if wants cfg "profile" then bench_profile cfg dbpedia;
  if wants cfg "kernels" then bench_kernels cfg dbpedia;
  if wants cfg "parallel" then bench_parallel cfg dbpedia;
  if wants cfg "build" then bench_build cfg dbpedia;
  if wants cfg "analysis" then bench_analysis cfg dbpedia;
  if wants cfg "resource" then bench_resource cfg dbpedia;
  if wants cfg "layouts" then bench_layouts cfg dbpedia;
  if wants cfg "updates" then bench_updates cfg dbpedia;
  if wants cfg "plans" then bench_plans cfg;
  if wants cfg "rewrites" then bench_rewrites cfg dbpedia;
  if cfg.micro then micro_benchmarks ();
  write_json_report cfg;
  let within_baseline = compare_with_baseline cfg in
  print_newline ();
  if not within_baseline then exit 3
