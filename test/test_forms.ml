(* ASK and CONSTRUCT query forms. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let x res = "http://dbpedia.org/resource/" ^ res
let y prop = "http://dbpedia.org/ontology/" ^ prop

let engine = lazy (Amber.Engine.build Fixtures.paper_triples)

let parse_any src = Sparql.Parser.parse_any src

let test_parse_dispatch () =
  (match parse_any "SELECT ?x WHERE { ?x <http://p> ?y }" with
  | Sparql.Parser.Q_select _ -> ()
  | _ -> Alcotest.fail "expected select");
  (match parse_any "ASK { ?x <http://p> ?y }" with
  | Sparql.Parser.Q_ask _ -> ()
  | _ -> Alcotest.fail "expected ask");
  (match parse_any "ASK WHERE { ?x <http://p> ?y }" with
  | Sparql.Parser.Q_ask _ -> ()
  | _ -> Alcotest.fail "expected ask with WHERE");
  (match
     parse_any
       "PREFIX ex: <http://e/> CONSTRUCT { ?x ex:p ?y } WHERE { ?x ex:q ?y }"
   with
  | Sparql.Parser.Q_construct ([ _ ], ast) ->
      checki "one where pattern" 1 (List.length ast.Sparql.Ast.where)
  | _ -> Alcotest.fail "expected construct")

let test_parse_errors () =
  let bad src =
    match parse_any src with
    | exception Sparql.Parser.Error _ -> true
    | _ -> false
  in
  checkb "construct without where" true (bad "CONSTRUCT { ?x <http://p> ?y }");
  checkb "ask trailing garbage" true (bad "ASK { ?x <http://p> ?y } LIMIT 2")

let test_ask () =
  let e = Lazy.force engine in
  let ask src = Amber.Engine.ask e (Sparql.Parser.parse src) in
  checkb "positive" true
    (ask
       (Printf.sprintf "SELECT * WHERE { <%s> <%s> <%s> }" (x "London")
          (y "isPartOf") (x "England")));
  checkb "negative" false
    (ask
       (Printf.sprintf "SELECT * WHERE { ?a <%s> ?b . ?b <%s> ?a }"
          (y "wasMarriedTo") (y "wasMarriedTo")));
  checkb "unknown predicate is false" false
    (ask "SELECT * WHERE { ?a <http://nope> ?b }")

let test_construct_basics () =
  let e = Lazy.force engine in
  match
    parse_any
      (Printf.sprintf
         "CONSTRUCT { ?c <http://ex/home> ?p } WHERE { ?p <%s> ?c . ?p <%s> ?c }"
         (y "wasBornIn") (y "diedIn"))
  with
  | Sparql.Parser.Q_construct (template, ast) ->
      let triples = Amber.Engine.construct e ~template ast in
      checki "one triple" 1 (List.length triples);
      let t = List.hd triples in
      checkb "subject is london" true
        (Rdf.Term.equal t.Rdf.Triple.subject (Rdf.Term.iri (x "London")))
  | _ -> Alcotest.fail "expected construct"

let test_construct_dedup_and_invalid () =
  let e = Lazy.force engine in
  (* ?c repeats across solutions -> the constant-shaped output triple
     must be emitted once; a literal subject must be skipped. *)
  match
    parse_any
      (Printf.sprintf
         {|CONSTRUCT { ?c <http://ex/seen> <http://ex/yes> . ?ghost <http://ex/x> ?c }
           WHERE { ?p <%s> ?c }|}
         (y "wasBornIn"))
  with
  | Sparql.Parser.Q_construct (template, ast) ->
      let triples = Amber.Engine.construct e ~template ast in
      (* Two solutions (Amy, Nolan) but one distinct ?c = London; the
         ?ghost pattern never instantiates. *)
      checki "dedup + skip unbound" 1 (List.length triples)
  | _ -> Alcotest.fail "expected construct"

let test_construct_roundtrip () =
  (* CONSTRUCT output is a valid tripleset: load it into a new engine. *)
  let e = Lazy.force engine in
  match
    parse_any
      (Printf.sprintf
         "CONSTRUCT { ?p <http://ex/locatedEvent> ?c } WHERE { ?p <%s> ?c }"
         (y "wasBornIn"))
  with
  | Sparql.Parser.Q_construct (template, ast) ->
      let derived = Amber.Engine.construct e ~template ast in
      let e2 = Amber.Engine.build derived in
      let a =
        Amber.Engine.query_string e2
          "SELECT * WHERE { ?p <http://ex/locatedEvent> ?c }"
      in
      checki "derived graph queryable" (List.length derived)
        (List.length a.Amber.Engine.rows)
  | _ -> Alcotest.fail "expected construct"

let test_endpoint_forms () =
  let config = { Endpoint.default_config with timeout = Some 5.0 } in
  let handle target =
    Endpoint.handle_request config
      (Endpoint.Static (Lazy.force engine))
      ~meth:"GET" ~target ~headers:[] ~body:""
  in
  let encode s =
    let buf = Buffer.create (String.length s * 2) in
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char buf c
        | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents buf
  in
  let status, ctype, body =
    handle
      ("/sparql?query="
      ^ encode
          (Printf.sprintf "ASK WHERE { ?p <%s> ?c }" (y "wasBornIn")))
  in
  checki "ask 200" 200 status;
  checkb "ask json" true (ctype = "application/sparql-results+json");
  checkb "boolean true" true (body = {|{"head":{},"boolean":true}|});
  let status, ctype, body =
    handle
      ("/sparql?query="
      ^ encode
          (Printf.sprintf
             "CONSTRUCT { ?p <http://ex/t> ?c } WHERE { ?p <%s> ?c }"
             (y "wasBornIn")))
  in
  checki "construct 200" 200 status;
  checkb "ntriples type" true (ctype = "application/n-triples");
  checkb "parses back" true
    (List.length (Rdf.Ntriples.parse_string body) = 2)

let suite =
  [
    ( "query-forms",
      [
        Alcotest.test_case "parse dispatch" `Quick test_parse_dispatch;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "ask" `Quick test_ask;
        Alcotest.test_case "construct basics" `Quick test_construct_basics;
        Alcotest.test_case "construct dedup/invalid" `Quick
          test_construct_dedup_and_invalid;
        Alcotest.test_case "construct roundtrip" `Quick test_construct_roundtrip;
        Alcotest.test_case "endpoint forms" `Quick test_endpoint_forms;
      ] );
  ]
