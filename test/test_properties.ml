(* Randomized whole-engine properties:
   - AMbER agrees with the brute-force reference on arbitrary BGPs
     carved from random data (with variable sharing, constants,
     literals, disconnection and self loops);
   - the decomposition invariants of Section 5 hold on random query
     graphs. *)

module Reference = Baselines.Reference_eval

let checkb = Alcotest.(check bool)

(* Random data multigraph in the common fragment. *)
let random_data rng =
  let n = 8 + Datagen.Prng.int rng 8 in
  let e i = Printf.sprintf "http://t/e%d" i in
  let p i = Printf.sprintf "http://t/p%d" i in
  let lp i = Printf.sprintf "http://t/lp%d" i in
  let triples = ref [] in
  for _ = 1 to 30 + Datagen.Prng.int rng 30 do
    let s = Datagen.Prng.int rng n and o = Datagen.Prng.int rng n in
    triples :=
      Rdf.Triple.spo (e s) (p (Datagen.Prng.int rng 4)) (Rdf.Term.iri (e o))
      :: !triples
  done;
  (* a couple of self loops *)
  for _ = 1 to 2 do
    let v = Datagen.Prng.int rng n in
    triples :=
      Rdf.Triple.spo (e v) (p (Datagen.Prng.int rng 4)) (Rdf.Term.iri (e v))
      :: !triples
  done;
  for v = 0 to n - 1 do
    if Datagen.Prng.bool rng 0.5 then
      triples :=
        Rdf.Triple.spo (e v)
          (lp (Datagen.Prng.int rng 2))
          (Rdf.Term.literal (Printf.sprintf "val%d" (Datagen.Prng.int rng 3)))
        :: !triples
  done;
  !triples

(* Random BGP: pick data triples and randomly generalize entities to
   shared variables or keep them constant; sometimes force a self loop
   or a literal pattern. *)
let random_query rng triples =
  let structural =
    List.filter
      (fun t -> not (Rdf.Term.is_literal t.Rdf.Triple.obj))
      triples
  in
  let literal_triples =
    List.filter (fun t -> Rdf.Term.is_literal t.Rdf.Triple.obj) triples
  in
  let var_of = Hashtbl.create 8 in
  let var_count = ref 0 in
  let term_of entity =
    match Hashtbl.find_opt var_of entity with
    | Some t -> t
    | None ->
        let t =
          if Datagen.Prng.bool rng 0.25 then
            (* constant *)
            Sparql.Ast.Iri entity
          else begin
            (* a variable; sometimes reuse an existing one to force
               surprising joins *)
            if !var_count > 0 && Datagen.Prng.bool rng 0.2 then
              Sparql.Ast.Var (Printf.sprintf "X%d" (Datagen.Prng.int rng !var_count))
            else begin
              let v = Printf.sprintf "X%d" !var_count in
              incr var_count;
              Sparql.Ast.Var v
            end
          end
        in
        Hashtbl.add var_of entity t;
        t
  in
  let pattern_of_triple t =
    let iri_of = function Rdf.Term.Iri i -> i | _ -> assert false in
    Sparql.Ast.pattern
      (term_of (iri_of t.Rdf.Triple.subject))
      (Sparql.Ast.Iri (iri_of t.Rdf.Triple.predicate))
      (term_of (iri_of t.Rdf.Triple.obj))
  in
  let k = 1 + Datagen.Prng.int rng 4 in
  let structural_arr = Array.of_list structural in
  let patterns =
    List.init k (fun _ -> pattern_of_triple (Datagen.Prng.choice rng structural_arr))
  in
  let patterns =
    (* maybe a literal pattern *)
    if literal_triples <> [] && Datagen.Prng.bool rng 0.5 then begin
      let t =
        Datagen.Prng.choice rng (Array.of_list literal_triples)
      in
      let lit =
        match t.Rdf.Triple.obj with Rdf.Term.Literal l -> l | _ -> assert false
      in
      let iri_of = function Rdf.Term.Iri i -> i | _ -> assert false in
      Sparql.Ast.pattern
        (term_of (iri_of t.Rdf.Triple.subject))
        (Sparql.Ast.Iri (iri_of t.Rdf.Triple.predicate))
        (Sparql.Ast.Lit lit)
      :: patterns
    end
    else patterns
  in
  let patterns =
    (* maybe an explicit self-loop pattern *)
    if Datagen.Prng.bool rng 0.2 then
      Sparql.Ast.pattern (Sparql.Ast.Var "L")
        (Sparql.Ast.Iri (Printf.sprintf "http://t/p%d" (Datagen.Prng.int rng 4)))
        (Sparql.Ast.Var "L")
      :: patterns
    else patterns
  in
  (* Deduplicate identical patterns: the reference evaluates them once
     anyway, and so does the query multigraph. *)
  Sparql.Ast.make Sparql.Ast.Select_all patterns

let prop_amber_matches_reference =
  QCheck.Test.make ~name:"amber = brute force on random BGPs" ~count:120
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create seed in
      let triples = random_data rng in
      let engine = Amber.Engine.build triples in
      let ok = ref true in
      for _ = 1 to 4 do
        let ast = random_query rng triples in
        let expected = Reference.canonical_answer triples ast in
        let got =
          Reference.canonical_rows (Amber.Engine.query engine ast).Amber.Engine.rows
        in
        if got <> expected then ok := false
      done;
      !ok)

let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"parallel = sequential on random BGPs" ~count:40
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create (seed + 9999) in
      let triples = random_data rng in
      let engine = Amber.Engine.build triples in
      let ast = random_query rng triples in
      let seq = (Amber.Engine.query engine ast).Amber.Engine.rows in
      let par =
        (Amber.Engine.query_parallel ~domains:3 engine ast).Amber.Engine.rows
      in
      seq = par)

(* Decomposition invariants (Section 5). *)
let prop_decompose_invariants =
  QCheck.Test.make ~name:"decomposition invariants" ~count:150
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create (seed + 31) in
      let triples = random_data rng in
      let db = Amber.Database.of_triples triples in
      let ast = random_query rng triples in
      match Amber.Query_graph.build db ast with
      | Amber.Query_graph.Unsatisfiable _ -> true
      | Amber.Query_graph.Query q ->
          let plan = Amber.Decompose.plan q in
          let n = Amber.Query_graph.vertex_count q in
          let ordered =
            Array.to_list plan.Amber.Decompose.components
            |> List.concat_map (fun c ->
                   Array.to_list c.Amber.Decompose.core_order)
          in
          (* 1. ordered core vertices are exactly the core set *)
          let core_set = List.sort_uniq compare ordered in
          let expected_core =
            List.filter
              (fun u -> plan.Amber.Decompose.is_core.(u))
              (List.init n Fun.id)
          in
          let inv1 = core_set = expected_core in
          (* 2. every satellite has a core anchor adjacent to it *)
          let inv2 =
            List.for_all
              (fun u ->
                plan.Amber.Decompose.is_core.(u)
                ||
                let a = plan.Amber.Decompose.anchor_of.(u) in
                a >= 0
                && plan.Amber.Decompose.is_core.(a)
                && Amber.Query_graph.multi_edges_between q u a <> [])
              (List.init n Fun.id)
          in
          (* 3. satellites_of lists exactly the satellites *)
          let inv3 =
            List.for_all
              (fun u ->
                List.for_all
                  (fun s -> plan.Amber.Decompose.anchor_of.(s) = u)
                  plan.Amber.Decompose.satellites_of.(u))
              (List.init n Fun.id)
          in
          (* 4. self-loop vertices are always core *)
          let inv4 =
            List.for_all
              (fun u ->
                Array.length q.Amber.Query_graph.self_loops.(u) = 0
                || plan.Amber.Decompose.is_core.(u))
              (List.init n Fun.id)
          in
          (* 5. within a component, each core vertex after the first is
             adjacent to an earlier one *)
          let inv5 =
            Array.for_all
              (fun (c : Amber.Decompose.component) ->
                let order = c.Amber.Decompose.core_order in
                let ok = ref true in
                for i = 1 to Array.length order - 1 do
                  let connected = ref false in
                  for j = 0 to i - 1 do
                    if
                      Amber.Query_graph.multi_edges_between q order.(i) order.(j)
                      <> []
                    then connected := true
                  done;
                  (* promoted singleton components aside, connectivity
                     must hold *)
                  if not !connected then ok := false
                done;
                !ok)
              plan.Amber.Decompose.components
          in
          inv1 && inv2 && inv3 && inv4 && inv5)

(* --- Sorted_ints kernel agreement (satellite of the set-algebra PR) ---
   The adaptive intersection dispatches between three kernels; all of
   them — and the derived algebra — must agree with a naive reference on
   arbitrary operands, including empty, singleton, heavily skewed and
   bitset-dense shapes. *)

let random_sorted rng ~max_len ~span =
  let n = Datagen.Prng.int rng (max_len + 1) in
  (* Offset into negatives: the bitset kernel's span base must not
     assume non-negative elements. *)
  Mgraph.Sorted_ints.of_list
    (List.init n (fun _ -> Datagen.Prng.int rng span - (span / 3)))

let naive_inter a b =
  Array.of_list (List.filter (fun x -> Array.mem x b) (Array.to_list a))

let naive_union a b = Mgraph.Sorted_ints.of_list (Array.to_list (Array.append a b))

let naive_diff a b =
  Array.of_list (List.filter (fun x -> not (Array.mem x b)) (Array.to_list a))

(* (max_len_a, span_a, max_len_b, span_b): similar sizes, skew both
   ways past the gallop ratio, dense large operands (bitset territory),
   sparse large operands, singletons and empties. *)
let operand_shapes =
  [|
    (40, 120, 40, 120);
    (4, 50, 1500, 4000);
    (1500, 4000, 4, 50);
    (1400, 1800, 1400, 1800);
    (1200, 100_000, 1200, 100_000);
    (1, 10, 600, 900);
    (0, 1, 30, 60);
  |]

let prop_inter_kernels_agree =
  QCheck.Test.make ~name:"intersection kernels agree" ~count:120
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create (seed + 101) in
      let ok = ref true in
      Array.iter
        (fun (la, sa, lb, sb) ->
          let a = random_sorted rng ~max_len:la ~span:sa in
          let b = random_sorted rng ~max_len:lb ~span:sb in
          let expect = naive_inter a b in
          List.iter
            (fun kernel ->
              let got = kernel a b in
              if not (Mgraph.Sorted_ints.is_sorted got && got = expect) then
                ok := false)
            [
              Mgraph.Sorted_ints.inter;
              Mgraph.Sorted_ints.inter_merge;
              Mgraph.Sorted_ints.inter_gallop;
              Mgraph.Sorted_ints.inter_bitset;
            ])
        operand_shapes;
      !ok)

let prop_set_algebra_agrees =
  QCheck.Test.make ~name:"union/diff/subset agree with reference" ~count:120
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create (seed + 211) in
      let ok = ref true in
      Array.iter
        (fun (la, sa, lb, sb) ->
          let a = random_sorted rng ~max_len:la ~span:sa in
          let b = random_sorted rng ~max_len:lb ~span:sb in
          let u = Mgraph.Sorted_ints.union a b in
          if not (Mgraph.Sorted_ints.is_sorted u && u = naive_union a b) then
            ok := false;
          let d = Mgraph.Sorted_ints.diff a b in
          if not (Mgraph.Sorted_ints.is_sorted d && d = naive_diff a b) then
            ok := false;
          let naive_subset a b = Array.for_all (fun x -> Array.mem x b) a in
          if Mgraph.Sorted_ints.subset a b <> naive_subset a b then ok := false;
          (* A genuine subset (the skewed path must also accept). *)
          if not (Mgraph.Sorted_ints.subset (naive_inter a b) b) then ok := false)
        operand_shapes;
      !ok)

let prop_inter_aliasing_and_many =
  QCheck.Test.make ~name:"inter_many and aliasing returns" ~count:120
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create (seed + 307) in
      let ok = ref true in
      for _ = 1 to 4 do
        let (la, sa, lb, sb) =
          Datagen.Prng.choice rng operand_shapes
        in
        let a = random_sorted rng ~max_len:la ~span:sa in
        let b = random_sorted rng ~max_len:lb ~span:sb in
        let c = random_sorted rng ~max_len:lb ~span:sa in
        (* inter_many = folded naive intersection, any operand count. *)
        let expect = naive_inter (naive_inter a b) c in
        if Mgraph.Sorted_ints.inter_many [ a; b; c ] <> expect then ok := false;
        if Mgraph.Sorted_ints.inter_many [ a ] != a then ok := false;
        (* When the result equals an operand, the kernels hand the
           operand back physically instead of copying. *)
        if Array.length a > 0 && Mgraph.Sorted_ints.inter a a != a then
          ok := false;
        let sub = naive_inter a b in
        if Array.length sub > 0 then begin
          if Mgraph.Sorted_ints.inter_merge sub b != sub then ok := false;
          if Mgraph.Sorted_ints.inter_gallop sub b != sub then ok := false;
          if Mgraph.Sorted_ints.inter_bitset sub b != sub then ok := false
        end;
        if Array.length a > 0 then begin
          if Mgraph.Sorted_ints.union a [||] != a then ok := false;
          if Mgraph.Sorted_ints.diff a [||] != a then ok := false
        end
      done;
      (try
         ignore (Mgraph.Sorted_ints.inter_many []);
         ok := false
       with Invalid_argument _ -> ());
      !ok)

(* Engine answers are insensitive to pattern order. *)
let prop_pattern_order_irrelevant =
  QCheck.Test.make ~name:"answers ignore pattern order" ~count:60
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create (seed + 77) in
      let triples = random_data rng in
      let engine = Amber.Engine.build triples in
      let ast = random_query rng triples in
      (* Pin the projection: SELECT * orders columns by first occurrence,
         which shuffling would change. *)
      let ast =
        {
          ast with
          Sparql.Ast.select =
            Sparql.Ast.Select_vars
              (List.sort compare (Sparql.Ast.variables ast));
        }
      in
      let shuffled =
        let arr = Array.of_list ast.Sparql.Ast.where in
        Datagen.Prng.shuffle rng arr;
        { ast with Sparql.Ast.where = Array.to_list arr }
      in
      Reference.canonical_rows (Amber.Engine.query engine ast).Amber.Engine.rows
      = Reference.canonical_rows
          (Amber.Engine.query engine shuffled).Amber.Engine.rows)

let suite =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest prop_amber_matches_reference;
        QCheck_alcotest.to_alcotest prop_parallel_matches_sequential;
        QCheck_alcotest.to_alcotest prop_decompose_invariants;
        QCheck_alcotest.to_alcotest prop_inter_kernels_agree;
        QCheck_alcotest.to_alcotest prop_set_algebra_agrees;
        QCheck_alcotest.to_alcotest prop_inter_aliasing_and_many;
        QCheck_alcotest.to_alcotest prop_pattern_order_irrelevant;
      ] );
  ]
