(* OTIL tests: insertion validation, superset search against a
   brute-force oracle, and the per-symbol inverted lists. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
module P = Mgraph.Posting

let check_arr = Alcotest.(check (array int))

let add t word v = Otil.add t (Mgraph.Sorted_ints.of_list word) v

let sample_trie () =
  let t = Otil.create () in
  add t [ 1 ] 10;
  add t [ 1; 3 ] 11;
  add t [ 2; 3 ] 12;
  add t [ 1; 2; 3 ] 13;
  add t [ 3 ] 14;
  add t [ 0; 5 ] 15;
  t

let test_basics () =
  let t = sample_trie () in
  checki "cardinal" 6 (Otil.cardinal t);
  check_arr "singleton {3}" [| 11; 12; 13; 14 |] (P.to_array (Otil.supersets t [| 3 |]));
  check_arr "pair {1;3}" [| 11; 13 |] (P.to_array (Otil.supersets t [| 1; 3 |]));
  check_arr "pair {2;3}" [| 12; 13 |] (P.to_array (Otil.supersets t [| 2; 3 |]));
  check_arr "triple" [| 13 |] (P.to_array (Otil.supersets t [| 1; 2; 3 |]));
  check_arr "no match" [||] (P.to_array (Otil.supersets t [| 4 |]));
  check_arr "empty query matches all" [| 10; 11; 12; 13; 14; 15 |]
    (P.to_array (Otil.supersets t [||]))

let test_inverted_lists () =
  let t = sample_trie () in
  check_arr "with_symbol 3" [| 11; 12; 13; 14 |] (P.to_array (Otil.with_symbol t 3));
  check_arr "with_symbol 0" [| 15 |] (P.to_array (Otil.with_symbol t 0));
  check_arr "with_symbol absent" [||] (P.to_array (Otil.with_symbol t 99))

let test_validation () =
  let t = Otil.create () in
  Alcotest.check_raises "empty word" (Invalid_argument "Otil.add: empty word")
    (fun () -> Otil.add t [||] 1);
  Alcotest.check_raises "unsorted word"
    (Invalid_argument "Otil.add: word must be strictly increasing") (fun () ->
      Otil.add t [| 3; 1 |] 1);
  Alcotest.check_raises "unsorted query"
    (Invalid_argument "Otil.supersets: query must be strictly increasing")
    (fun () ->
      Otil.add t [| 1 |] 1;
      ignore (Otil.supersets t [| 2; 2 |]))

let test_words () =
  let t = sample_trie () in
  let words = Otil.words t in
  checki "distinct words" 6 (List.length words);
  checkb "word {1;2;3} holds 13" true
    (List.exists
       (fun (w, vs) -> w = [| 1; 2; 3 |] && vs = [| 13 |])
       words)

(* Oracle comparison on random words. *)
let prop_supersets =
  QCheck.Test.make ~name:"supersets agrees with brute force" ~count:120
    (QCheck.make QCheck.Gen.(pair (int_range 0 120) int))
    (fun (n, seed) ->
      let rng = Datagen.Prng.create seed in
      let t = Otil.create () in
      let words =
        List.init n (fun v ->
            let size = 1 + Datagen.Prng.int rng 4 in
            let word =
              Mgraph.Sorted_ints.of_list
                (List.init size (fun _ -> Datagen.Prng.int rng 12))
            in
            Otil.add t word v;
            (word, v))
      in
      let queries =
        List.init 25 (fun _ ->
            Mgraph.Sorted_ints.of_list
              (List.init (Datagen.Prng.int rng 3 + 1) (fun _ ->
                   Datagen.Prng.int rng 12)))
      in
      List.for_all
        (fun q ->
          let expected =
            Mgraph.Sorted_ints.of_list
              (List.filter_map
                 (fun (w, v) ->
                   if Mgraph.Sorted_ints.subset q w then Some v else None)
                 words)
          in
          Mgraph.Sorted_ints.equal (P.to_array (Otil.supersets t q)) expected)
        queries)

let prop_inverted_consistency =
  QCheck.Test.make ~name:"with_symbol equals singleton supersets" ~count:120
    (QCheck.make QCheck.Gen.(pair (int_range 0 100) int))
    (fun (n, seed) ->
      let rng = Datagen.Prng.create (seed + 1) in
      let t = Otil.create () in
      for v = 0 to n - 1 do
        let size = 1 + Datagen.Prng.int rng 4 in
        Otil.add t
          (Mgraph.Sorted_ints.of_list (List.init size (fun _ -> Datagen.Prng.int rng 10)))
          v
      done;
      List.for_all
        (fun s ->
          Mgraph.Sorted_ints.equal
            (P.to_array (Otil.with_symbol t s))
            (P.to_array (Otil.supersets t [| s |])))
        (List.init 10 Fun.id))

let suite =
  [
    ( "otil",
      [
        Alcotest.test_case "basics" `Quick test_basics;
        Alcotest.test_case "inverted lists" `Quick test_inverted_lists;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "words" `Quick test_words;
        QCheck_alcotest.to_alcotest prop_supersets;
        QCheck_alcotest.to_alcotest prop_inverted_consistency;
      ] );
  ]
