(* Static analyzer tests: one unit test per diagnostic kind on the
   paper's running example, engine wiring (?analyze short-circuit), and
   a QCheck soundness property — every unsatisfiability proof is checked
   against the brute-force oracle, which must agree the answer set is
   empty. *)

let check_str = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let x res = "http://dbpedia.org/resource/" ^ res
let y prop = "http://dbpedia.org/ontology/" ^ prop

let engine = lazy (Amber.Engine.build Fixtures.paper_triples)

let analyze src =
  Amber.Engine.analyze (Lazy.force engine) (Fixtures.parse_query src)

(* The first unsat proof's stable kind slug, or "satisfiable". *)
let proof_kind report =
  match Amber.Analysis.unsat_proof report with
  | Some p -> Amber.Analysis.kind (Amber.Analysis.Unsat p)
  | None -> "satisfiable"

let warning_kinds report =
  List.map
    (fun w -> Amber.Analysis.kind (Amber.Analysis.Warning w))
    (Amber.Analysis.warnings report)

let hint_kinds report =
  List.map
    (fun h -> Amber.Analysis.kind (Amber.Analysis.Hint h))
    (Amber.Analysis.hints report)

(* --- unsatisfiability proofs ------------------------------------------ *)

let test_unknown_predicate () =
  check_str "unknown predicate" "unknown-predicate"
    (proof_kind
       (analyze
          (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b }|} (y "noSuch"))))

let test_predicate_never_links () =
  (* hasName only ever carries literals; demanding it between two
     resources is provably empty. *)
  check_str "attribute predicate used as an edge" "predicate-never-links"
    (proof_kind
       (analyze
          (Printf.sprintf {|SELECT * WHERE { ?a <%s> <%s> }|} (y "hasName")
             (x "England"))))

let test_out_of_fragment_downgrade () =
  (* Same predicate, but the object is a variable that could bind a
     literal: not provably empty under full BGP semantics, so the
     analyzer must only warn. *)
  let r =
    analyze (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?n }|} (y "hasName"))
  in
  check_str "no unsat proof" "satisfiable" (proof_kind r);
  checkb "out-of-fragment warning" true
    (List.mem "out-of-fragment" (warning_kinds r))

let test_unknown_iri () =
  let r =
    analyze
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> <%s> }|} (y "livedIn")
         (x "Nowhere"))
  in
  check_str "unknown object iri" "unknown-iri" (proof_kind r);
  (match Amber.Analysis.unsat_proof r with
  | Some (Amber.Analysis.Unknown_iri { position = `Object; _ }) -> ()
  | _ -> Alcotest.fail "expected object position");
  let r =
    analyze
      (Printf.sprintf {|SELECT * WHERE { <%s> <%s> ?a }|} (x "Nowhere")
         (y "livedIn"))
  in
  match Amber.Analysis.unsat_proof r with
  | Some (Amber.Analysis.Unknown_iri { position = `Subject; _ }) -> ()
  | _ -> Alcotest.fail "expected subject position"

let test_unknown_literal () =
  check_str "unknown (predicate, literal) pair" "unknown-literal"
    (proof_kind
       (analyze
          (Printf.sprintf {|SELECT * WHERE { ?a <%s> "No_Such_Band" }|}
             (y "hasName"))))

let test_ground_pattern_absent () =
  (* Every component exists, but Amy lived in the United States, not
     England. *)
  check_str "ground pattern absent" "ground-pattern-absent"
    (proof_kind
       (analyze
          (Printf.sprintf {|SELECT * WHERE { <%s> <%s> <%s> . <%s> <%s> ?w }|}
             (x "Amy_Winehouse") (y "livedIn") (x "England")
             (x "Amy_Winehouse") (y "wasBornIn"))))

let test_conflicting_literals () =
  (* Both (hasTag, "a") and (hasTag, "b") exist, on different vertices:
     demanding both on one vertex conflicts. *)
  let e =
    Amber.Engine.build
      [
        Rdf.Triple.spo "http://d/e1" "http://d/hasTag" (Rdf.Term.literal "a");
        Rdf.Triple.spo "http://d/e2" "http://d/hasTag" (Rdf.Term.literal "b");
        Rdf.Triple.spo "http://d/e1" "http://d/p" (Rdf.Term.iri "http://d/e2");
      ]
  in
  let r =
    Amber.Engine.analyze e
      (Fixtures.parse_query
         {|SELECT * WHERE { ?v <http://d/hasTag> "a" . ?v <http://d/hasTag> "b" }|})
  in
  check_str "conflicting equality constraints" "conflicting-literals"
    (proof_kind r)

let test_empty_attribute_intersection () =
  (* MCA_Band names the band, 90000 sizes the stadium: no vertex has
     both. *)
  check_str "empty attribute intersection" "empty-attribute-intersection"
    (proof_kind
       (analyze
          (Printf.sprintf
             {|SELECT * WHERE { ?v <%s> "MCA_Band" . ?v <%s> "90000" }|}
             (y "hasName") (y "hasCapacityOf"))))

let test_signature_infeasible () =
  (* Six distinct outgoing edge types; no data vertex has more than
     five (Amy Winehouse). Lemma 1 at compile time. *)
  check_str "signature exceeds synopsis maxima" "signature-infeasible"
    (proof_kind
       (analyze
          (Printf.sprintf
             {|SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?c . ?a <%s> ?d .
                                ?a <%s> ?e . ?a <%s> ?f . ?a <%s> ?g }|}
             (y "wasBornIn") (y "diedIn") (y "wasPartOf") (y "livedIn")
             (y "wasMarriedTo") (y "isPartOf"))))

let test_multi_edge_too_wide () =
  (* Three parallel predicates between one pair; the widest data
     multi-edge (Amy -> London) carries two. *)
  check_str "query multi-edge wider than any data multi-edge"
    "multi-edge-too-wide"
    (proof_kind
       (analyze
          (Printf.sprintf
             {|SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?b . ?a <%s> ?b }|}
             (y "wasBornIn") (y "diedIn") (y "livedIn"))))

let test_iri_constraint_infeasible () =
  (* hasCapital only ever points at London; nothing links to
     WembleyStadium that way. *)
  check_str "no neighbour of the constant satisfies the edge"
    "iri-constraint-infeasible"
    (proof_kind
       (analyze
          (Printf.sprintf {|SELECT * WHERE { ?a <%s> <%s> }|} (y "hasCapital")
             (x "WembleyStadium"))))

(* --- warnings and hints ------------------------------------------------ *)

let test_disconnected_components () =
  let r =
    analyze
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?c <%s> ?d }|}
         (y "livedIn") (y "wasBornIn"))
  in
  checkb "disconnected warning" true
    (List.mem "disconnected-components" (warning_kinds r))

let test_unprojected_satellite () =
  let r =
    analyze
      (Printf.sprintf {|SELECT ?a WHERE { ?a <%s> ?b . ?a <%s> ?c }|}
         (y "wasBornIn") (y "livedIn"))
  in
  checkb "unprojected satellite" true
    (List.mem "unprojected-satellite" (warning_kinds r))

let test_unbound_select_variable () =
  let r =
    analyze
      (Printf.sprintf {|SELECT ?z WHERE { ?a <%s> ?b }|} (y "livedIn"))
  in
  checkb "unbound select variable" true
    (List.mem "unbound-select-variable" (warning_kinds r))

let test_duplicate_pattern () =
  let r =
    analyze
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?b }|}
         (y "livedIn") (y "livedIn"))
  in
  checkb "duplicate warning" true
    (List.mem "duplicate-pattern" (warning_kinds r));
  checkb "drop hint" true (List.mem "drop-duplicate-pattern" (hint_kinds r))

let test_order_by_unbound_and_limit_zero () =
  let r =
    analyze
      (Printf.sprintf
         {|SELECT ?a WHERE { ?a <%s> ?b } ORDER BY ?nope LIMIT 0|}
         (y "livedIn"))
  in
  checkb "order-by hint" true (List.mem "order-by-unbound" (hint_kinds r));
  checkb "limit-zero hint" true (List.mem "limit-zero" (hint_kinds r))

let test_clean_report () =
  let r = analyze Fixtures.paper_query_text in
  check_str "paper query is satisfiable" "satisfiable" (proof_kind r);
  checki "no warnings" 0 (List.length (Amber.Analysis.warnings r))

let test_json_shape () =
  let r =
    analyze (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b }|} (y "noSuch"))
  in
  let json = Amber.Analysis.report_to_json r in
  let contains sub =
    let n = String.length sub and h = String.length json in
    let rec loop i = i + n <= h && (String.sub json i n = sub || loop (i + 1)) in
    loop 0
  in
  checkb "unsat flag" true (contains {|"unsat":true|});
  checkb "kind slug" true (contains {|"kind":"unknown-predicate"|});
  checkb "severity" true (contains {|"severity":"error"|})

(* --- engine wiring ----------------------------------------------------- *)

let test_unsat_short_circuit () =
  let e = Lazy.force engine in
  let ast =
    Fixtures.parse_query
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?a <%s> <%s> }|}
         (y "livedIn") (y "hasCapital") (x "WembleyStadium"))
  in
  let screened = Amber.Engine.query e ast in
  let unscreened = Amber.Engine.query ~analyze:false e ast in
  checki "screened answer is empty" 0 (List.length screened.Amber.Engine.rows);
  checkb "analyze on/off agree" true (screened = unscreened)

let test_profile_carries_report () =
  let e = Lazy.force engine in
  let ast =
    Fixtures.parse_query
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b }|} (y "noSuch"))
  in
  let answer, p = Amber.Engine.query_profiled e ast in
  checki "no rows" 0 (List.length answer.Amber.Engine.rows);
  match p.Amber.Profile.analysis with
  | Some r -> check_str "proof in profile" "unknown-predicate" (proof_kind r)
  | None -> Alcotest.fail "expected an analysis report in the profile"

(* --- QCheck soundness against the oracle ------------------------------- *)

(* Same graph family as the differential harness (disjoint edge/literal
   predicate sorts), kept separate so the two suites evolve
   independently. *)
let random_triples seed =
  let rng = Datagen.Prng.create (0xa11a + seed) in
  let n = 8 + Datagen.Prng.int rng 12 in
  let e i = Printf.sprintf "http://d/e%d" i in
  let p i = Printf.sprintf "http://d/p%d" i in
  let lp i = Printf.sprintf "http://d/lp%d" i in
  let triples = ref [] in
  for _ = 1 to 25 + Datagen.Prng.int rng 40 do
    triples :=
      Rdf.Triple.spo
        (e (Datagen.Prng.int rng n))
        (p (Datagen.Prng.int rng 4))
        (Rdf.Term.iri (e (Datagen.Prng.int rng n)))
      :: !triples
  done;
  for v = 0 to n - 1 do
    if Datagen.Prng.bool rng 0.5 then
      triples :=
        Rdf.Triple.spo (e v)
          (lp (Datagen.Prng.int rng 2))
          (Rdf.Term.literal (Printf.sprintf "w%d" (Datagen.Prng.int rng 3)))
        :: !triples
  done;
  !triples

(* Mutations that often (not always) make a query unsatisfiable; the
   property only uses UNSAT verdicts, so harmless mutations just shrink
   coverage, never soundness. *)
let mutate rng ast =
  match ast.Sparql.Ast.where with
  | [] -> ast
  | patterns ->
      let i = Datagen.Prng.int rng (List.length patterns) in
      let lit_w9 =
        match Rdf.Term.literal "w9" with
        | Rdf.Term.Literal l -> l
        | _ -> assert false
      in
      let mutated =
        List.mapi
          (fun j (pat : Sparql.Ast.triple_pattern) ->
            if j <> i then pat
            else
              match Datagen.Prng.int rng 3 with
              | 0 -> { pat with predicate = Sparql.Ast.Iri "http://d/p9" }
              | 1 -> { pat with obj = Sparql.Ast.Lit lit_w9 }
              | _ -> { pat with obj = Sparql.Ast.Iri "http://d/e999" })
          patterns
      in
      { ast with Sparql.Ast.where = mutated }

let queries_for seed triples =
  let rng = Datagen.Prng.create (0xbee + seed) in
  let corpus = Datagen.Workload.corpus triples in
  let base =
    Datagen.Workload.generate ~seed corpus ~shape:Datagen.Workload.Star ~size:3
      ~count:2
    @ Datagen.Workload.generate ~seed:(seed + 500) corpus
        ~shape:Datagen.Workload.Complex ~size:4 ~count:2
  in
  List.map
    (fun ast -> if Datagen.Prng.bool rng 0.6 then mutate rng ast else ast)
    base

let unsat_verdicts = ref 0

let check_soundness seed triples ast =
  let e = Amber.Engine.build triples in
  let report = Amber.Engine.analyze e ast in
  match Amber.Analysis.unsat_proof report with
  | None -> true
  | Some proof ->
      incr unsat_verdicts;
      let oracle = Baselines.Reference_eval.canonical_answer triples ast in
      let answer = Amber.Engine.query e ast in
      if oracle <> [] then
        QCheck.Test.fail_reportf
          "seed %d: UNSAT proof but the oracle finds %d row(s).@.proof: %s@.%s"
          seed (List.length oracle)
          (Amber.Analysis.proof_to_string proof)
          (Sparql.Ast.to_string ast)
      else if answer.Amber.Engine.rows <> [] then
        QCheck.Test.fail_reportf
          "seed %d: UNSAT proof but the engine returns %d row(s) on:@.%s" seed
          (List.length answer.Amber.Engine.rows)
          (Sparql.Ast.to_string ast)
      else true

let prop_soundness =
  QCheck.Test.make ~name:"UNSAT proofs imply zero oracle rows" ~count:60
    (QCheck.make
       ~print:(fun seed ->
         let triples = random_triples seed in
         Printf.sprintf "seed %d (%d triples):\n%s" seed (List.length triples)
           (String.concat "\n"
              (List.map Sparql.Ast.to_string (queries_for seed triples))))
       ~shrink:QCheck.Shrink.int
       QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let triples = random_triples seed in
      List.for_all (check_soundness seed triples) (queries_for seed triples))

(* Guards the property against vacuity: with 60 seeds and a 60% mutation
   rate the analyzer must have proven a healthy number of queries
   empty. *)
let test_unsat_coverage () =
  Alcotest.(check bool)
    (Printf.sprintf "soundness property exercised %d UNSAT proofs (>= 20)"
       !unsat_verdicts)
    true
    (!unsat_verdicts >= 20)

let suite =
  [
    ( "amber.analysis",
      [
        Alcotest.test_case "unknown predicate" `Quick test_unknown_predicate;
        Alcotest.test_case "predicate never links" `Quick
          test_predicate_never_links;
        Alcotest.test_case "out-of-fragment downgrade" `Quick
          test_out_of_fragment_downgrade;
        Alcotest.test_case "unknown iri" `Quick test_unknown_iri;
        Alcotest.test_case "unknown literal" `Quick test_unknown_literal;
        Alcotest.test_case "ground pattern absent" `Quick
          test_ground_pattern_absent;
        Alcotest.test_case "conflicting literals" `Quick
          test_conflicting_literals;
        Alcotest.test_case "empty attribute intersection" `Quick
          test_empty_attribute_intersection;
        Alcotest.test_case "signature infeasible" `Quick
          test_signature_infeasible;
        Alcotest.test_case "multi-edge too wide" `Quick
          test_multi_edge_too_wide;
        Alcotest.test_case "iri constraint infeasible" `Quick
          test_iri_constraint_infeasible;
        Alcotest.test_case "disconnected components" `Quick
          test_disconnected_components;
        Alcotest.test_case "unprojected satellite" `Quick
          test_unprojected_satellite;
        Alcotest.test_case "unbound select variable" `Quick
          test_unbound_select_variable;
        Alcotest.test_case "duplicate pattern" `Quick test_duplicate_pattern;
        Alcotest.test_case "order-by / limit hints" `Quick
          test_order_by_unbound_and_limit_zero;
        Alcotest.test_case "clean report" `Quick test_clean_report;
        Alcotest.test_case "json shape" `Quick test_json_shape;
        Alcotest.test_case "unsat short-circuit" `Quick
          test_unsat_short_circuit;
        Alcotest.test_case "profile carries report" `Quick
          test_profile_carries_report;
      ] );
    ( "amber.analysis.soundness",
      [
        QCheck_alcotest.to_alcotest prop_soundness;
        Alcotest.test_case "unsat coverage >= 20" `Quick test_unsat_coverage;
      ] );
  ]
