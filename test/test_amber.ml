(* Tests for the AMbER core: database transformation, indexes, query
   graph construction, decomposition, matching, engine answers. *)

module Reference = Baselines.Reference_eval

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let check_arr = Alcotest.(check (array int))

let x res = "http://dbpedia.org/resource/" ^ res
let y prop = "http://dbpedia.org/ontology/" ^ prop

let db () = Amber.Database.of_triples Fixtures.paper_triples
let engine () = Amber.Engine.build Fixtures.paper_triples

let vertex d name =
  Option.get (Amber.Database.vertex_of_term d (Rdf.Term.iri (x name)))

(* --- Database ------------------------------------------------------- *)

let test_database_stats () =
  let d = db () in
  checki "9 vertices" 9 (Amber.Database.vertex_count d);
  checki "9 edge types" 9 (Amber.Database.edge_type_count d);
  checki "3 attributes" 3 (Amber.Database.attribute_count d);
  checki "16 triples" 16 (Amber.Database.triple_count d);
  let g = Amber.Database.graph d in
  checki "13 atomic edges" 13 (Mgraph.Multigraph.triple_edge_count g);
  (* Amy->London carries {wasBornIn, diedIn}: 12 multi-edges. *)
  checki "12 multi-edges" 12 (Mgraph.Multigraph.multi_edge_count g)

let test_database_mappings () =
  let d = db () in
  let v = vertex d "London" in
  checks "inverse vertex" ("<" ^ x "London" ^ ">")
    (Rdf.Term.to_string (Amber.Database.term_of_vertex d v));
  checkb "edge type known" true
    (Amber.Database.edge_type_of_iri d (y "isPartOf") <> None);
  checkb "literal pred has no edge type" true
    (Amber.Database.edge_type_of_iri d (y "hasName") = None);
  let attr =
    Amber.Database.attribute_of d ~pred:(y "hasName")
      ~lit:{ Rdf.Term.value = "MCA_Band"; datatype = None; lang = None }
  in
  checkb "attribute known" true (attr <> None);
  let pred, lit = Amber.Database.attribute_data d (Option.get attr) in
  checks "attribute pred" (y "hasName") pred;
  checks "attribute literal" "MCA_Band" lit.Rdf.Term.value

let test_database_attributes_fold () =
  let d = db () in
  let g = Amber.Database.graph d in
  let wembley = vertex d "WembleyStadium" in
  checki "wembley attr count" 1 (Array.length (Mgraph.Multigraph.attributes g wembley));
  let band = vertex d "Music_Band" in
  checki "band attr count" 2 (Array.length (Mgraph.Multigraph.attributes g band));
  let lits =
    Amber.Database.literals_of d ~vertex:band ~pred:(y "hasName")
  in
  checki "hasName literal" 1 (List.length lits)

let test_database_bnodes () =
  let triples =
    [
      Rdf.Triple.make (Rdf.Term.bnode "b0") (Rdf.Term.iri "http://p")
        (Rdf.Term.iri "http://o");
    ]
  in
  let d = Amber.Database.of_triples triples in
  let v = Option.get (Amber.Database.vertex_of_term d (Rdf.Term.bnode "b0")) in
  checkb "bnode roundtrip" true
    (Rdf.Term.equal (Amber.Database.term_of_vertex d v) (Rdf.Term.bnode "b0"))

(* --- Attribute index ------------------------------------------------ *)

let test_attribute_index () =
  let d = db () in
  let idx = Amber.Attribute_index.build d in
  checki "three inverted lists" 3 (Amber.Attribute_index.attribute_count idx);
  let a1 =
    Option.get
      (Amber.Database.attribute_of d ~pred:(y "hasName")
         ~lit:{ Rdf.Term.value = "MCA_Band"; datatype = None; lang = None })
  in
  let a2 =
    Option.get
      (Amber.Database.attribute_of d ~pred:(y "foundedIn")
         ~lit:{ Rdf.Term.value = "1994"; datatype = None; lang = None })
  in
  check_arr "hasName list" [| vertex d "Music_Band" |]
    (Mgraph.Posting.to_array (Amber.Attribute_index.vertices_with idx a1));
  check_arr "common candidates (paper u5)" [| vertex d "Music_Band" |]
    (Mgraph.Posting.to_array
       (Amber.Attribute_index.candidates idx
          (Mgraph.Sorted_ints.of_list [ a1; a2 ])))

(* --- Synopsis index -------------------------------------------------- *)

let test_synopsis_index_modes_agree () =
  let d = db () in
  let rtree = Amber.Synopsis_index.build ~mode:Amber.Synopsis_index.Rtree d in
  let scan = Amber.Synopsis_index.build ~mode:Amber.Synopsis_index.Scan d in
  let queries =
    [
      Mgraph.Signature.make ~incoming:[] ~outgoing:[ [| 2 |] ];
      Mgraph.Signature.make ~incoming:[ [| 2; 5 |] ] ~outgoing:[];
      Mgraph.Signature.make ~incoming:[] ~outgoing:[];
      Mgraph.Signature.make ~incoming:[ [| 1 |]; [| 7 |] ] ~outgoing:[ [| 0 |] ];
    ]
  in
  List.iter
    (fun s ->
      check_arr "modes agree"
        (Amber.Synopsis_index.candidates_of_signature scan s)
        (Amber.Synopsis_index.candidates_of_signature rtree s))
    queries

let test_synopsis_index_prunes () =
  let d = db () in
  let idx = Amber.Synopsis_index.build d in
  (* Incoming {wasBornIn=2, diedIn=5} as one multi-edge: only London. *)
  let cands =
    Amber.Synopsis_index.candidates_of_signature idx
      (Mgraph.Signature.make ~incoming:[ [| 2; 5 |] ] ~outgoing:[])
  in
  check_arr "only london" [| vertex d "London" |] cands

(* --- Neighbourhood index --------------------------------------------- *)

let test_neighbourhood_index () =
  let d = db () in
  let idx = Amber.Neighbourhood_index.build d in
  let london = vertex d "London" in
  (* Paper's example: who wasBornIn London? *)
  let born =
    Amber.Neighbourhood_index.neighbours idx london Mgraph.Multigraph.In [| 2 |]
  in
  check_arr "born in london"
    (Mgraph.Sorted_ints.of_list
       [ vertex d "Christopher_Nolan"; vertex d "Amy_Winehouse" ])
    (Mgraph.Posting.to_array born);
  (* Multi-edge superset: wasBornIn AND diedIn. *)
  let both =
    Amber.Neighbourhood_index.neighbours idx london Mgraph.Multigraph.In [| 2; 5 |]
  in
  check_arr "born and died" [| vertex d "Amy_Winehouse" |]
    (Mgraph.Posting.to_array both);
  let out =
    Amber.Neighbourhood_index.neighbours idx london Mgraph.Multigraph.Out [| 0 |]
  in
  check_arr "london isPartOf" [| vertex d "England" |]
    (Mgraph.Posting.to_array out)

(* --- Query graph ------------------------------------------------------ *)

let build_q ?open_objects src =
  match Amber.Query_graph.build ?open_objects (db ()) (Fixtures.parse_query src) with
  | Amber.Query_graph.Query q -> q
  | Amber.Query_graph.Unsatisfiable { proof; _ } ->
      Alcotest.failf "unexpectedly unsat: %s"
        (Amber.Analysis.proof_to_string proof)

let test_query_graph_paper () =
  let q = build_q Fixtures.paper_query_text in
  checki "7 variable vertices" 7 (Amber.Query_graph.vertex_count q);
  let u name = Option.get (Amber.Query_graph.vertex_of_var q name) in
  (* Degrees per the paper's decomposition (Fig. 4). *)
  checki "deg X1" 5 (Amber.Query_graph.degree q (u "X1"));
  checki "deg X3" 4 (Amber.Query_graph.degree q (u "X3"));
  checki "deg X5" 2 (Amber.Query_graph.degree q (u "X5"));
  checki "deg X0" 1 (Amber.Query_graph.degree q (u "X0"));
  checki "deg X2" 1 (Amber.Query_graph.degree q (u "X2"));
  checki "deg X4" 1 (Amber.Query_graph.degree q (u "X4"));
  checki "deg X6" 1 (Amber.Query_graph.degree q (u "X6"));
  (* X3 -> X1 multi-edge carries {wasBornIn, diedIn}. *)
  (match Amber.Query_graph.multi_edges_between q (u "X3") (u "X1") with
  | [ (Mgraph.Multigraph.Out, types) ] -> check_arr "X3->X1 types" [| 2; 5 |] types
  | _ -> Alcotest.fail "expected single Out multi-edge");
  (* X1 <-> X2 has edges both ways. *)
  checki "X1/X2 two directions" 2
    (List.length (Amber.Query_graph.multi_edges_between q (u "X1") (u "X2")));
  (* X5 carries the two attributes, X4 one. *)
  checki "X5 attrs" 2 (Array.length q.Amber.Query_graph.attrs.(u "X5"));
  checki "X4 attrs" 1 (Array.length q.Amber.Query_graph.attrs.(u "X4"));
  (* X3 has the United_States IRI constraint. *)
  (match q.Amber.Query_graph.iris.(u "X3") with
  | [ { Amber.Query_graph.dir = Mgraph.Multigraph.Out; types; data_vertex } ] ->
      check_arr "livedIn constraint" [| 3 |] types;
      checki "target is US" (vertex (db ()) "United_States") data_vertex
  | _ -> Alcotest.fail "expected one IRI constraint on X3")

let test_query_graph_unsat () =
  let unsat src =
    match Amber.Query_graph.build (db ()) (Fixtures.parse_query src) with
    | Amber.Query_graph.Unsatisfiable _ -> true
    | Amber.Query_graph.Query _ -> false
  in
  checkb "unknown predicate" true
    (unsat "SELECT * WHERE { ?a <http://nope> ?b }");
  checkb "unknown literal" true
    (unsat
       (Printf.sprintf {|SELECT * WHERE { ?a <%s> "no-such-band" }|} (y "hasName")));
  checkb "unknown iri" true
    (unsat
       (Printf.sprintf {|SELECT * WHERE { ?a <%s> <http://nowhere> }|} (y "livedIn")));
  checkb "failed ground pattern" true
    (unsat
       (Printf.sprintf {|SELECT * WHERE { <%s> <%s> <%s> }|} (x "England")
          (y "isPartOf") (x "London")));
  checkb "holding ground pattern" false
    (unsat
       (Printf.sprintf {|SELECT * WHERE { <%s> <%s> <%s> }|} (x "London")
          (y "isPartOf") (x "England")))

let test_query_graph_unsupported () =
  let raises src =
    match Amber.Query_graph.build (db ()) (Fixtures.parse_query src) with
    | exception Amber.Query_graph.Unsupported _ -> true
    | _ -> false
  in
  checkb "variable predicate" true (raises "SELECT * WHERE { ?a ?p ?b }")

let test_query_graph_self_loop () =
  let q =
    build_q (Printf.sprintf "SELECT * WHERE { ?a <%s> ?a }" (y "isPartOf"))
  in
  let u = Option.get (Amber.Query_graph.vertex_of_var q "a") in
  check_arr "self loop recorded" [| 0 |] q.Amber.Query_graph.self_loops.(u);
  let s = Amber.Query_graph.signature q u in
  checki "loop on both sides" 2
    (List.length s.Mgraph.Signature.incoming + List.length s.Mgraph.Signature.outgoing)

let test_query_graph_open_objects () =
  let src = Printf.sprintf "SELECT * WHERE { ?b <%s> ?n }" (y "hasName") in
  (* Faithful mode: hasName never links two vertices -> unsatisfiable. *)
  (match Amber.Query_graph.build (db ()) (Fixtures.parse_query src) with
  | Amber.Query_graph.Unsatisfiable _ -> ()
  | _ -> Alcotest.fail "expected unsat in faithful mode");
  (* Extension: the pattern is lifted. *)
  let q = build_q ~open_objects:true src in
  checki "one open object" 1 (List.length q.Amber.Query_graph.opens);
  checki "only the subject is a graph vertex" 1 (Amber.Query_graph.vertex_count q)

(* --- Decompose -------------------------------------------------------- *)

let test_decompose_paper () =
  let q = build_q Fixtures.paper_query_text in
  let plan = Amber.Decompose.plan q in
  let u name = Option.get (Amber.Query_graph.vertex_of_var q name) in
  let is_core name = plan.Amber.Decompose.is_core.(u name) in
  checkb "X1 core" true (is_core "X1");
  checkb "X3 core" true (is_core "X3");
  checkb "X5 core" true (is_core "X5");
  checkb "X0 satellite" false (is_core "X0");
  checkb "X2 satellite" false (is_core "X2");
  checkb "X4 satellite" false (is_core "X4");
  checkb "X6 satellite" false (is_core "X6");
  checki "one component" 1 (Array.length plan.Amber.Decompose.components);
  let order = plan.Amber.Decompose.components.(0).Amber.Decompose.core_order in
  (* r1(X1)=3 satellites; X1 first. X3 adjacent with r1=1; then X5. *)
  check_arr "paper ordering" [| u "X1"; u "X3"; u "X5" |] order;
  checki "X1 satellites" 3 (List.length plan.Amber.Decompose.satellites_of.(u "X1"));
  checki "X3 satellites" 1 (List.length plan.Amber.Decompose.satellites_of.(u "X3"));
  checki "X6 anchored to X3" (u "X3") plan.Amber.Decompose.anchor_of.(u "X6")

let test_decompose_single_edge () =
  let q = build_q (Printf.sprintf "SELECT * WHERE { ?a <%s> ?b }" (y "isPartOf")) in
  let plan = Amber.Decompose.plan q in
  let cores =
    Array.to_list plan.Amber.Decompose.is_core
    |> List.filter (fun b -> b)
    |> List.length
  in
  checki "exactly one promoted core" 1 cores

let test_decompose_components () =
  let q =
    build_q
      (Printf.sprintf
         "SELECT * WHERE { ?a <%s> ?b . ?c <%s> ?d . ?c <%s> ?e }" (y "isPartOf")
         (y "wasBornIn") (y "livedIn"))
  in
  let plan = Amber.Decompose.plan q in
  checki "two components" 2 (Array.length plan.Amber.Decompose.components)

let test_decompose_strategies () =
  let q = build_q Fixtures.paper_query_text in
  List.iter
    (fun strategy ->
      let plan = Amber.Decompose.plan ~strategy q in
      let order = plan.Amber.Decompose.components.(0).Amber.Decompose.core_order in
      checki "all cores ordered" 3 (Array.length order))
    [ Amber.Decompose.Paper; Amber.Decompose.By_degree; Amber.Decompose.Arbitrary ]

(* --- Engine: answers --------------------------------------------------- *)

let answer_set src =
  let a = Amber.Engine.query_string (engine ()) src in
  Reference.canonical_rows
    (List.map (fun row -> row) a.Amber.Engine.rows)

let reference_set src =
  Reference.canonical_answer Fixtures.paper_triples (Fixtures.parse_query src)

let check_against_reference name src =
  Alcotest.(check (list (list string))) name (reference_set src) (answer_set src)

let test_engine_paper_query () =
  let a = Amber.Engine.query_string (engine ()) Fixtures.paper_query_text in
  (* X0 ∈ {Amy, Nolan}; everything else is pinned. *)
  checki "two embeddings" 2 (List.length a.Amber.Engine.rows);
  check_against_reference "matches reference" Fixtures.paper_query_text

let test_engine_star_query () =
  check_against_reference "star"
    (Printf.sprintf
       {|SELECT * WHERE { ?p <%s> ?c . ?p <%s> ?c2 . ?p <%s> ?b }|}
       (y "wasBornIn") (y "diedIn") (y "wasPartOf"))

let test_engine_homomorphism_no_injectivity () =
  (* ?c and ?c2 may map to the same data vertex (London twice). *)
  check_against_reference "non-injective"
    (Printf.sprintf {|SELECT * WHERE { ?p <%s> ?c . ?p <%s> ?c2 }|}
       (y "wasBornIn") (y "diedIn"))

let test_engine_ground_query () =
  let a =
    Amber.Engine.query_string (engine ())
      (Printf.sprintf {|SELECT * WHERE { <%s> <%s> <%s> }|} (x "London")
         (y "isPartOf") (x "England"))
  in
  checki "one empty row" 1 (List.length a.Amber.Engine.rows)

let test_engine_cycle_query () =
  check_against_reference "2-cycle"
    (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?b <%s> ?a }|}
       (y "isPartOf") (y "hasCapital"))

let test_engine_attribute_query () =
  check_against_reference "attributes pin X5"
    (Printf.sprintf
       {|SELECT * WHERE { ?band <%s> "MCA_Band" . ?band <%s> "1994" . ?band <%s> ?city }|}
       (y "hasName") (y "foundedIn") (y "wasFormedIn"))

let test_engine_iri_constraint_query () =
  check_against_reference "IRI constraint"
    (Printf.sprintf {|SELECT * WHERE { ?p <%s> <%s> . ?p <%s> ?spouse }|}
       (y "livedIn") (x "United_States") (y "wasMarriedTo"))

let test_engine_distinct_and_limit () =
  let src =
    Printf.sprintf {|SELECT DISTINCT ?c WHERE { ?p <%s> ?c . ?p <%s> ?c2 }|}
      (y "wasBornIn") (y "diedIn")
  in
  let a = Amber.Engine.query_string (engine ()) src in
  checki "distinct collapses" 1 (List.length a.Amber.Engine.rows);
  let src_l =
    Printf.sprintf {|SELECT ?p WHERE { ?p <%s> ?c } LIMIT 1|} (y "wasBornIn")
  in
  let a = Amber.Engine.query_string (engine ()) src_l in
  checki "limit 1" 1 (List.length a.Amber.Engine.rows);
  checkb "marked truncated" true a.Amber.Engine.truncated

let test_engine_disconnected_query () =
  check_against_reference "cartesian of components"
    (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?c <%s> ?d }|}
       (y "hasStadium") (y "wasMarriedTo"))

let test_engine_selected_var_not_in_where () =
  let a =
    Amber.Engine.query_string (engine ())
      (Printf.sprintf {|SELECT ?ghost WHERE { ?a <%s> ?b }|} (y "hasStadium"))
  in
  checkb "unbound column" true
    (List.for_all (fun row -> row = [ None ]) a.Amber.Engine.rows)

let test_engine_empty_answer () =
  let a =
    Amber.Engine.query_string (engine ())
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?b <%s> ?a }|}
         (y "wasMarriedTo") (y "wasMarriedTo"))
  in
  checki "no symmetric marriage" 0 (List.length a.Amber.Engine.rows)

let test_engine_self_loop_query () =
  (* No self loops in the data: empty. And on a graph with one, matches. *)
  let a =
    Amber.Engine.query_string (engine ())
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?a }|} (y "isPartOf"))
  in
  checki "no loops in paper data" 0 (List.length a.Amber.Engine.rows);
  let loop_engine =
    Amber.Engine.build
      (Rdf.Triple.spo "http://n" "http://p" (Rdf.Term.iri "http://n")
      :: Fixtures.paper_triples)
  in
  let a =
    Amber.Engine.query_string loop_engine
      {|SELECT * WHERE { ?a <http://p> ?a }|}
  in
  checki "loop found" 1 (List.length a.Amber.Engine.rows)

let test_engine_open_objects () =
  let src =
    Printf.sprintf {|SELECT ?n WHERE { ?band <%s> "1994" . ?band <%s> ?n }|}
      (y "foundedIn") (y "hasName")
  in
  (* Faithful mode: no binding for a literal-only predicate. *)
  let a = Amber.Engine.query_string (engine ()) src in
  checki "faithful: empty" 0 (List.length a.Amber.Engine.rows);
  (* Extension: the literal binding appears. *)
  let a = Amber.Engine.query_string ~open_objects:true (engine ()) src in
  (match a.Amber.Engine.rows with
  | [ [ Some (Rdf.Term.Literal { value; _ }) ] ] -> checks "name" "MCA_Band" value
  | _ -> Alcotest.fail "expected one literal binding");
  (* Extension on a predicate with IRI objects returns those too. *)
  let src_iri =
    Printf.sprintf {|SELECT ?w WHERE { ?p <%s> <%s> . ?p <%s> ?w }|}
      (y "diedIn") (x "London") (y "livedIn")
  in
  let a = Amber.Engine.query_string ~open_objects:true (engine ()) src_iri in
  checki "IRI binding via open object" 1 (List.length a.Amber.Engine.rows)

let test_engine_timeout () =
  (* A deadline in the past must raise. *)
  let big = Datagen.Lubm.generate ~universities:1 () in
  let e = Amber.Engine.build big in
  let star =
    "SELECT * WHERE { ?a <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t . \
     ?b <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t . ?c \
     <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t }"
  in
  match Amber.Engine.query_string ~timeout:0.0 e star with
  | exception Amber.Deadline.Expired -> ()
  | _ -> Alcotest.fail "expected Deadline.Expired"

let test_engine_count_embeddings () =
  let e = engine () in
  let count src = Amber.Engine.count_embeddings e (Fixtures.parse_query src) in
  checki "paper query count" 2 (count Fixtures.paper_query_text);
  checki "unsat count" 0 (count "SELECT * WHERE { ?a <http://nope> ?b }");
  let star =
    Printf.sprintf {|SELECT * WHERE { ?p <%s> ?c . ?p <%s> ?c2 }|} (y "wasBornIn")
      (y "diedIn")
  in
  checki "star count equals rows" 1 (count star)

let test_engine_ordering_strategies_agree () =
  List.iter
    (fun strategy ->
      let a =
        Amber.Engine.query ~strategy (engine ())
          (Fixtures.parse_query Fixtures.paper_query_text)
      in
      checki "same row count" 2 (List.length a.Amber.Engine.rows))
    [ Amber.Decompose.Paper; Amber.Decompose.By_degree; Amber.Decompose.Arbitrary ]

let test_engine_satellites_ablation () =
  (* Disabling the core/satellite decomposition must not change answers. *)
  List.iter
    (fun src ->
      let with_sats = answer_set src in
      let a =
        Amber.Engine.query ~satellites:false (engine ()) (Fixtures.parse_query src)
      in
      checkb "ablation agrees" true
        (Reference.canonical_rows a.Amber.Engine.rows = with_sats))
    [
      Fixtures.paper_query_text;
      Printf.sprintf {|SELECT * WHERE { ?p <%s> ?c . ?p <%s> ?c2 . ?p <%s> ?b }|}
        (y "wasBornIn") (y "diedIn") (y "wasPartOf");
      Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?b <%s> ?a }|} (y "isPartOf")
        (y "hasCapital");
    ]

let test_engine_explain () =
  let e = engine () in
  (* Pin the paper's plan over the verbatim clause: the rewriter would
     constant-fold the literal satellites (?X4, ?X5 are data-forced)
     and legitimately change the core; it has its own suite. *)
  (match
     Amber.Engine.explain ~plan:Amber.Stats.Paper ~rewrite:false e
       (Fixtures.parse_query Fixtures.paper_query_text)
   with
  | Amber.Engine.Plan
      { plan_mode = "paper"; components = [ steps ]; open_objects = []; _ } ->
      let vars = List.map (fun s -> s.Amber.Engine.variable) steps in
      checkb "paper core order" true (vars = [ "X1"; "X3"; "X5" ]);
      let first = List.hd steps in
      checki "X1 anchors three satellites" 3
        (List.length first.Amber.Engine.satellite_vars);
      (match first.Amber.Engine.initial_candidates with
      | Some n -> checkb "some but few initial candidates" true (n >= 1 && n <= 3)
      | None -> Alcotest.fail "expected |C_init| on the first step");
      checkb "later steps have no C_init" true
        (List.for_all
           (fun s -> s.Amber.Engine.initial_candidates = None)
           (List.tl steps))
  | _ -> Alcotest.fail "expected a one-component plan");
  (match Amber.Engine.explain e (Fixtures.parse_query "SELECT * WHERE { ?a <http://nope> ?b }") with
  | Amber.Engine.Unsat _ -> ()
  | _ -> Alcotest.fail "expected Unsat");
  (* pp smoke test *)
  let text =
    Format.asprintf "%a" Amber.Engine.pp_explanation
      (Amber.Engine.explain e (Fixtures.parse_query Fixtures.paper_query_text))
  in
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
    loop 0
  in
  checkb "pp mentions X1" true (contains text "?X1")

let test_engine_parallel () =
  let e = engine () in
  (* Identical answers, rows and order, across domain counts. *)
  List.iter
    (fun src ->
      let ast = Fixtures.parse_query src in
      let sequential = Amber.Engine.query e ast in
      List.iter
        (fun domains ->
          let parallel = Amber.Engine.query_parallel ~domains e ast in
          checkb
            (Printf.sprintf "parallel=%d matches sequential" domains)
            true
            (parallel.Amber.Engine.rows = sequential.Amber.Engine.rows))
        [ 1; 2; 4 ])
    [
      Fixtures.paper_query_text;
      Printf.sprintf {|SELECT * WHERE { ?p <%s> ?c . ?p <%s> ?c2 }|} (y "wasBornIn")
        (y "diedIn");
      Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?c <%s> ?d }|} (y "hasStadium")
        (y "wasMarriedTo");
      "SELECT * WHERE { ?a <http://nope> ?b }";
    ];
  (* A larger dataset run with several domains, against the adapter. *)
  let triples = Datagen.Lubm.generate ~universities:1 () in
  let big = Amber.Engine.build triples in
  let ub l = "http://swat.lehigh.edu/onto/univ-bench.owl#" ^ l in
  let ast =
    Fixtures.parse_query
      (Printf.sprintf
         "SELECT * WHERE { ?s <%s> ?prof . ?prof <%s> ?dept . ?s <%s> ?dept }"
         (ub "advisor") (ub "worksFor") (ub "memberOf"))
  in
  let seq = Amber.Engine.query big ast in
  let par = Amber.Engine.query_parallel ~domains:4 big ast in
  checkb "lubm parallel agrees" true (par.Amber.Engine.rows = seq.Amber.Engine.rows);
  (* Timeout propagates. *)
  match Amber.Engine.query_parallel ~timeout:0.0 ~domains:2 big ast with
  | exception Amber.Deadline.Expired -> ()
  | _ -> Alcotest.fail "expected Deadline.Expired"

let test_engine_stats () =
  let e = engine () in
  (* The counters below assume the paper's decomposition of the verbatim
     clause; the rewriter would constant-fold ?X4/?X5 first. *)
  let a, stats =
    Amber.Engine.query_with_stats ~rewrite:false e
      (Fixtures.parse_query Fixtures.paper_query_text)
  in
  checki "two rows" 2 (List.length a.Amber.Engine.rows);
  (* One core solution (London/Amy/Music_Band), satellites Cartesian. *)
  checki "one core solution" 1 stats.Amber.Matcher.solutions;
  checkb "index probed" true (stats.Amber.Matcher.index_probes > 0);
  checkb "candidates scanned" true (stats.Amber.Matcher.candidates_scanned >= 1);
  (* Unsatisfiable query: all counters zero. *)
  let _, empty_stats =
    Amber.Engine.query_with_stats e
      (Fixtures.parse_query "SELECT * WHERE { ?a <http://nope> ?b }")
  in
  checki "no probes on unsat" 0 empty_stats.Amber.Matcher.index_probes;
  checki "no solutions on unsat" 0 empty_stats.Amber.Matcher.solutions

let test_engine_synopsis_modes_agree () =
  let scan_engine =
    Amber.Engine.build ~synopsis_mode:Amber.Synopsis_index.Scan
      Fixtures.paper_triples
  in
  let a = Amber.Engine.query_string scan_engine Fixtures.paper_query_text in
  checki "scan mode same answer" 2 (List.length a.Amber.Engine.rows)

let suite =
  [
    ( "amber.database",
      [
        Alcotest.test_case "stats" `Quick test_database_stats;
        Alcotest.test_case "mappings" `Quick test_database_mappings;
        Alcotest.test_case "attributes" `Quick test_database_attributes_fold;
        Alcotest.test_case "bnodes" `Quick test_database_bnodes;
      ] );
    ( "amber.indexes",
      [
        Alcotest.test_case "attribute index" `Quick test_attribute_index;
        Alcotest.test_case "synopsis modes agree" `Quick test_synopsis_index_modes_agree;
        Alcotest.test_case "synopsis prunes" `Quick test_synopsis_index_prunes;
        Alcotest.test_case "neighbourhood index" `Quick test_neighbourhood_index;
      ] );
    ( "amber.query_graph",
      [
        Alcotest.test_case "paper query" `Quick test_query_graph_paper;
        Alcotest.test_case "unsatisfiable" `Quick test_query_graph_unsat;
        Alcotest.test_case "unsupported" `Quick test_query_graph_unsupported;
        Alcotest.test_case "self loop" `Quick test_query_graph_self_loop;
        Alcotest.test_case "open objects" `Quick test_query_graph_open_objects;
      ] );
    ( "amber.decompose",
      [
        Alcotest.test_case "paper decomposition" `Quick test_decompose_paper;
        Alcotest.test_case "single edge" `Quick test_decompose_single_edge;
        Alcotest.test_case "components" `Quick test_decompose_components;
        Alcotest.test_case "strategies" `Quick test_decompose_strategies;
      ] );
    ( "amber.engine",
      [
        Alcotest.test_case "paper query" `Quick test_engine_paper_query;
        Alcotest.test_case "star" `Quick test_engine_star_query;
        Alcotest.test_case "homomorphism" `Quick test_engine_homomorphism_no_injectivity;
        Alcotest.test_case "ground" `Quick test_engine_ground_query;
        Alcotest.test_case "cycle" `Quick test_engine_cycle_query;
        Alcotest.test_case "attributes" `Quick test_engine_attribute_query;
        Alcotest.test_case "iri constraint" `Quick test_engine_iri_constraint_query;
        Alcotest.test_case "distinct and limit" `Quick test_engine_distinct_and_limit;
        Alcotest.test_case "disconnected" `Quick test_engine_disconnected_query;
        Alcotest.test_case "unbound selected var" `Quick test_engine_selected_var_not_in_where;
        Alcotest.test_case "empty answer" `Quick test_engine_empty_answer;
        Alcotest.test_case "self loop" `Quick test_engine_self_loop_query;
        Alcotest.test_case "open objects" `Quick test_engine_open_objects;
        Alcotest.test_case "timeout" `Quick test_engine_timeout;
        Alcotest.test_case "count embeddings" `Quick test_engine_count_embeddings;
        Alcotest.test_case "ordering strategies" `Quick test_engine_ordering_strategies_agree;
        Alcotest.test_case "satellites ablation" `Quick test_engine_satellites_ablation;
        Alcotest.test_case "explain" `Quick test_engine_explain;
        Alcotest.test_case "parallel query" `Quick test_engine_parallel;
        Alcotest.test_case "search statistics" `Quick test_engine_stats;
        Alcotest.test_case "synopsis scan mode" `Quick test_engine_synopsis_modes_agree;
      ] );
  ]
