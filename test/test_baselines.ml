(* Tests for the four baseline engines: each against the brute-force
   reference, plus engine-specific behaviours. *)

module Reference = Baselines.Reference_eval

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let x res = "http://dbpedia.org/resource/" ^ res
let y prop = "http://dbpedia.org/ontology/" ^ prop

let queries =
  [
    ("paper query", Fixtures.paper_query_text);
    ( "star",
      Printf.sprintf {|SELECT * WHERE { ?p <%s> ?c . ?p <%s> ?c2 . ?p <%s> ?b }|}
        (y "wasBornIn") (y "diedIn") (y "wasPartOf") );
    ( "cycle",
      Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?b <%s> ?a }|} (y "isPartOf")
        (y "hasCapital") );
    ( "literal object",
      Printf.sprintf {|SELECT * WHERE { ?band <%s> "MCA_Band" . ?band <%s> ?city }|}
        (y "hasName") (y "wasFormedIn") );
    ( "literal variable",
      Printf.sprintf {|SELECT ?n WHERE { ?band <%s> ?n }|} (y "hasName") );
    ( "ground true",
      Printf.sprintf {|SELECT * WHERE { <%s> <%s> <%s> }|} (x "London")
        (y "isPartOf") (x "England") );
    ( "ground false",
      Printf.sprintf {|SELECT * WHERE { <%s> <%s> <%s> }|} (x "England")
        (y "isPartOf") (x "London") );
    ( "variable predicate",
      Printf.sprintf {|SELECT * WHERE { <%s> ?p ?o }|} (x "Amy_Winehouse") );
    ( "unknown constant",
      {|SELECT * WHERE { ?a <http://no-such-predicate> ?b }|} );
    ( "distinct",
      Printf.sprintf {|SELECT DISTINCT ?c WHERE { ?p <%s> ?c . ?p <%s> ?c2 }|}
        (y "wasBornIn") (y "diedIn") );
    ( "disconnected",
      Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?c <%s> ?d }|}
        (y "hasStadium") (y "wasMarriedTo") );
    ( "repeated var in pattern",
      Printf.sprintf {|SELECT * WHERE { ?a <%s> ?a }|} (y "isPartOf") );
  ]

let check_engine (type e) (module E : Baselines.Engine_sig.S with type t = e) () =
  let store = E.load Fixtures.paper_triples in
  List.iter
    (fun (name, src) ->
      let ast = Fixtures.parse_query src in
      let answer = E.query store ast in
      Alcotest.(check (list (list string)))
        (E.name ^ ": " ^ name)
        (Reference.canonical_answer Fixtures.paper_triples ast)
        (Reference.canonical_rows answer.Baselines.Answer.rows))
    queries

let test_triple_store_specifics () =
  let store = Baselines.Triple_store.load Fixtures.paper_triples in
  checki "six permutations" 6 (Baselines.Triple_store.permutation_count store);
  let before = Baselines.Triple_store.scan_count store in
  ignore
    (Baselines.Triple_store.query store
       (Fixtures.parse_query
          (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b }|} (y "isPartOf"))));
  checkb "scans happened" true (Baselines.Triple_store.scan_count store > before)

let test_column_store_specifics () =
  let store = Baselines.Column_store.load Fixtures.paper_triples in
  (* 9 object predicates + 3 datatype predicates: the column store keeps
     literals as ordinary nodes. *)
  checki "twelve predicate tables" 12 (Baselines.Column_store.predicate_count store)

let test_nested_loop_specifics () =
  let store = Baselines.Nested_loop.load Fixtures.paper_triples in
  checki "16 distinct triples" 16 (Baselines.Nested_loop.triple_count store);
  (* Duplicates collapse at load. *)
  let dup = Baselines.Nested_loop.load (Fixtures.paper_triples @ Fixtures.paper_triples) in
  checki "dedup" 16 (Baselines.Nested_loop.triple_count dup)

let test_sig_store_specifics () =
  let store = Baselines.Sig_store.load Fixtures.paper_triples in
  checkb "nodes include literals" true (Baselines.Sig_store.node_count store > 9);
  let ast =
    Fixtures.parse_query
      (Printf.sprintf {|SELECT * WHERE { ?p <%s> ?c . ?p <%s> ?c2 }|}
         (y "wasBornIn") (y "diedIn"))
  in
  match Baselines.Sig_store.filter_candidates store ast "p" with
  | Some cands ->
      (* The filter must keep Amy (the only one who was born and died
         somewhere), and may keep a few false positives. *)
      checkb "amy survives filter" true (Array.length cands >= 1)
  | None -> Alcotest.fail "expected candidates"

let test_timeouts () =
  let big = Datagen.Lubm.generate ~universities:1 () in
  let star =
    Fixtures.parse_query
      "SELECT * WHERE { ?a <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t . \
       ?b <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t . ?c \
       <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t }"
  in
  let expect_timeout (type e) (module E : Baselines.Engine_sig.S with type t = e) =
    let store = E.load big in
    match E.query ~timeout:0.0 store star with
    | exception Amber.Deadline.Expired -> ()
    | _ -> Alcotest.failf "%s: expected timeout" E.name
  in
  expect_timeout (module Baselines.Triple_store);
  expect_timeout (module Baselines.Nested_loop);
  expect_timeout (module Baselines.Sig_store);
  expect_timeout (module Baselines.Column_store)

let test_limits () =
  let check_limit (type e) (module E : Baselines.Engine_sig.S with type t = e) =
    let store = E.load Fixtures.paper_triples in
    let ast =
      Fixtures.parse_query
        (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b }|} (y "livedIn"))
    in
    let a = E.query ~limit:1 store ast in
    checki (E.name ^ " limit") 1 (List.length a.Baselines.Answer.rows);
    checkb (E.name ^ " truncated") true a.Baselines.Answer.truncated
  in
  check_limit (module Baselines.Triple_store);
  check_limit (module Baselines.Nested_loop);
  check_limit (module Baselines.Sig_store);
  check_limit (module Baselines.Column_store);
  check_limit (module Baselines.Amber_adapter)

let suite =
  [
    ( "baselines.reference-agreement",
      [
        Alcotest.test_case "triple store" `Quick
          (check_engine (module Baselines.Triple_store));
        Alcotest.test_case "column store" `Quick
          (check_engine (module Baselines.Column_store));
        Alcotest.test_case "nested loop" `Quick
          (check_engine (module Baselines.Nested_loop));
        Alcotest.test_case "sig store" `Quick
          (check_engine (module Baselines.Sig_store));
      ] );
    ( "baselines.specifics",
      [
        Alcotest.test_case "triple store" `Quick test_triple_store_specifics;
        Alcotest.test_case "column store" `Quick test_column_store_specifics;
        Alcotest.test_case "nested loop" `Quick test_nested_loop_specifics;
        Alcotest.test_case "sig store" `Quick test_sig_store_specifics;
        Alcotest.test_case "timeouts" `Quick test_timeouts;
        Alcotest.test_case "row limits" `Quick test_limits;
      ] );
  ]
