(* Tests for the binary RDF codec, database round-tripping, engine
   persistence and the result serializers. *)

module Reference = Baselines.Reference_eval

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- varints ----------------------------------------------------------- *)

let test_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      Rdf.Binary.Varint.write buf n;
      let pos = ref 0 in
      checki (Printf.sprintf "varint %d" n) n
        (Rdf.Binary.Varint.read (Buffer.contents buf) pos);
      checki "consumed all" (Buffer.length buf) !pos)
    [ 0; 1; 127; 128; 255; 300; 16383; 16384; 1_000_000; max_int / 2 ]

let test_varint_corrupt () =
  let truncated = "\x80\x80" in
  (match Rdf.Binary.Varint.read truncated (ref 0) with
  | exception Rdf.Binary.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt on truncated varint");
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Binary.Varint.write: negative") (fun () ->
      Rdf.Binary.Varint.write (Buffer.create 4) (-1))

let corrupt_varint src =
  match Rdf.Binary.Varint.read src (ref 0) with
  | exception Rdf.Binary.Corrupt _ -> true
  | _ -> false

let test_varint_edges () =
  let roundtrip n =
    let buf = Buffer.create 10 in
    Rdf.Binary.Varint.write buf n;
    let pos = ref 0 in
    checki (Printf.sprintf "roundtrip %d" n) n
      (Rdf.Binary.Varint.read (Buffer.contents buf) pos);
    checki "consumed exactly" (Buffer.length buf) !pos
  in
  roundtrip 0;
  roundtrip 1;
  roundtrip max_int;
  (* max_int = 2^62 - 1 fills nine groups: eight continued, final 0x3F. *)
  let buf = Buffer.create 10 in
  Rdf.Binary.Varint.write buf max_int;
  checki "max_int is nine bytes" 9 (Buffer.length buf);
  (* Truncated buffers: continuation bit promised more. *)
  checkb "empty" true (corrupt_varint "");
  checkb "lone continuation byte" true (corrupt_varint "\x80");
  checkb "cut mid-sequence" true (corrupt_varint "\xFF\xFF\xFF");
  (* Non-minimal encodings: a redundant trailing zero group must not
     silently decode to the same value. *)
  checkb "0 padded to two bytes" true (corrupt_varint "\x80\x00");
  checkb "1 padded to two bytes" true (corrupt_varint "\x81\x00");
  checkb "127 padded" true (corrupt_varint "\xFF\x00");
  (* Overflow past the 63-bit int range. *)
  checkb "ten-group encoding" true
    (corrupt_varint "\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x7F");
  checkb "bit 62 set in final group" true
    (corrupt_varint "\x80\x80\x80\x80\x80\x80\x80\x80\x40")

let test_varint_signed () =
  let roundtrip n =
    let buf = Buffer.create 10 in
    Rdf.Binary.Varint.write_signed buf n;
    let pos = ref 0 in
    checki (Printf.sprintf "signed roundtrip %d" n) n
      (Rdf.Binary.Varint.read_signed (Buffer.contents buf) pos);
    checki "consumed exactly" (Buffer.length buf) !pos
  in
  List.iter roundtrip
    [ 0; 1; -1; 63; -64; 64; -65; 1_000_000; -1_000_000; max_int; min_int ];
  (* Zigzag keeps small magnitudes short regardless of sign. *)
  let len n =
    let buf = Buffer.create 10 in
    Rdf.Binary.Varint.write_signed buf n;
    Buffer.length buf
  in
  checki "-64 fits one byte" 1 (len (-64));
  checki "64 needs two" 2 (len 64);
  let corrupt src =
    match Rdf.Binary.Varint.read_signed src (ref 0) with
    | exception Rdf.Binary.Corrupt _ -> true
    | _ -> false
  in
  checkb "signed truncation" true (corrupt "\x80");
  checkb "signed non-minimal" true (corrupt "\x80\x00");
  checkb "signed ten-group overflow" true
    (corrupt "\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x7F")

(* --- binary triples ------------------------------------------------------ *)

let test_binary_roundtrip_fixture () =
  let buf = Buffer.create 256 in
  Rdf.Binary.write buf Fixtures.paper_triples;
  let back = Rdf.Binary.read (Buffer.contents buf) ~pos:0 in
  checkb "identical triples, same order" true
    (List.for_all2 Rdf.Triple.equal Fixtures.paper_triples back)

let test_binary_file_roundtrip () =
  let path = Filename.temp_file "amber" ".adb" in
  let triples = Datagen.Lubm.generate ~universities:1 () in
  Rdf.Binary.write_file path triples;
  let back = Rdf.Binary.read_file path in
  let nt_size = String.length (Rdf.Ntriples.to_string triples) in
  let bin_size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  checkb "identical" true (List.for_all2 Rdf.Triple.equal triples back);
  checkb "compact (at least 3x smaller than N-Triples)" true
    (bin_size * 3 < nt_size)

let test_binary_corrupt_inputs () =
  let bad src =
    match Rdf.Binary.read src ~pos:0 with
    | exception Rdf.Binary.Corrupt _ -> true
    | _ -> false
  in
  checkb "bad magic" true (bad "NOTAMBER\x00");
  checkb "empty" true (bad "");
  (* Valid header but truncated body. *)
  let buf = Buffer.create 64 in
  Rdf.Binary.write buf Fixtures.paper_triples;
  let full = Buffer.contents buf in
  checkb "truncated body" true (bad (String.sub full 0 (String.length full / 2)))

let gen_term =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun s -> Rdf.Term.iri ("http://x/" ^ s))
             (string_size ~gen:(char_range 'a' 'z') (int_range 0 10)));
        (2, map Rdf.Term.literal (string_size ~gen:(char_range ' ' '~') (int_range 0 12)));
        (1, map (fun s -> Rdf.Term.literal ~lang:"en" s)
             (string_size ~gen:(char_range 'a' 'z') (int_range 0 6)));
        (1, map (fun s -> Rdf.Term.literal ~datatype:"http://dt" s)
             (string_size ~gen:(char_range '0' '9') (int_range 1 6)));
        (1, map Rdf.Term.bnode (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)));
      ])

let gen_triples =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (map3
         (fun s p o -> Rdf.Triple.make (Rdf.Term.iri ("http://s/" ^ s)) (Rdf.Term.iri ("http://p/" ^ p)) o)
         (string_size ~gen:(char_range 'a' 'c') (int_range 1 2))
         (string_size ~gen:(char_range 'a' 'c') (int_range 1 2))
         gen_term))

let prop_binary_roundtrip =
  QCheck.Test.make ~name:"binary write/read roundtrip" ~count:300
    (QCheck.make gen_triples) (fun triples ->
      let buf = Buffer.create 128 in
      Rdf.Binary.write buf triples;
      let back = Rdf.Binary.read (Buffer.contents buf) ~pos:0 in
      List.length back = List.length triples
      && List.for_all2 Rdf.Triple.equal triples back)

(* --- Database.to_triples -------------------------------------------------- *)

let test_database_to_triples () =
  let db = Amber.Database.of_triples Fixtures.paper_triples in
  let back = Amber.Database.to_triples db in
  checki "same count (no duplicates in fixture)"
    (List.length Fixtures.paper_triples)
    (List.length back);
  let canon ts = List.sort Rdf.Triple.compare ts in
  checkb "same set" true
    (List.for_all2 Rdf.Triple.equal
       (canon Fixtures.paper_triples)
       (canon back))

let prop_db_roundtrip_preserves_answers =
  QCheck.Test.make ~name:"of_triples ∘ to_triples preserves answers" ~count:40
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create seed in
      let n = 6 + Datagen.Prng.int rng 6 in
      let e i = Printf.sprintf "http://t/e%d" i in
      let p i = Printf.sprintf "http://t/p%d" i in
      let triples =
        List.init (20 + Datagen.Prng.int rng 20) (fun _ ->
            Rdf.Triple.spo
              (e (Datagen.Prng.int rng n))
              (p (Datagen.Prng.int rng 3))
              (Rdf.Term.iri (e (Datagen.Prng.int rng n))))
        @ List.init n (fun v ->
              Rdf.Triple.spo (e v) "http://t/lp"
                (Rdf.Term.literal (string_of_int (Datagen.Prng.int rng 3))))
      in
      let e1 = Amber.Engine.build triples in
      let e2 =
        Amber.Engine.build (Amber.Database.to_triples (Amber.Engine.db e1))
      in
      let ast =
        Sparql.Parser.parse
          {|SELECT * WHERE { ?a <http://t/p0> ?b . ?b <http://t/p1> ?c }|}
      in
      Reference.canonical_rows (Amber.Engine.query e1 ast).Amber.Engine.rows
      = Reference.canonical_rows (Amber.Engine.query e2 ast).Amber.Engine.rows)

(* --- Engine save/load ------------------------------------------------------ *)

let test_engine_save_load () =
  let path = Filename.temp_file "amber" ".adb" in
  let original = Amber.Engine.build Fixtures.paper_triples in
  Amber.Engine.save original path;
  let loaded = Amber.Engine.load_file path in
  Sys.remove path;
  let a1 = Amber.Engine.query_string original Fixtures.paper_query_text in
  let a2 = Amber.Engine.query_string loaded Fixtures.paper_query_text in
  checkb "answers survive persistence" true
    (Reference.canonical_rows a1.Amber.Engine.rows
    = Reference.canonical_rows a2.Amber.Engine.rows);
  checki "two embeddings still" 2 (List.length a2.Amber.Engine.rows)

(* --- Results serializers ---------------------------------------------------- *)

let sample_answer () =
  {
    Amber.Engine.variables = [ "x"; "y" ];
    rows =
      [
        [ Some (Rdf.Term.iri "http://a"); Some (Rdf.Term.literal "v,1") ];
        [ Some (Rdf.Term.literal ~lang:"en" "hi"); None ];
        [ Some (Rdf.Term.literal ~datatype:"http://dt" "7"); Some (Rdf.Term.bnode "b0") ];
      ];
    truncated = false;
  }

let test_results_json () =
  let json = Amber.Results.to_json (sample_answer ()) in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec loop i = i + n <= h && (String.sub json i n = needle || loop (i + 1)) in
    loop 0
  in
  checkb "head vars" true (contains {|"vars":["x","y"]|});
  checkb "uri binding" true (contains {|"x":{"type":"uri","value":"http://a"}|});
  checkb "lang literal" true (contains {|"xml:lang":"en"|});
  checkb "datatype" true (contains {|"datatype":"http://dt"|});
  checkb "bnode" true (contains {|{"type":"bnode","value":"b0"}|});
  (* Unbound y in the second row: the key must not appear there. *)
  checkb "unbound omitted" true (contains {|{"x":{"type":"literal","value":"hi","xml:lang":"en"}}|})

let test_results_csv () =
  let csv = Amber.Results.to_csv (sample_answer ()) in
  let lines = String.split_on_char '\n' csv in
  checks "header" "x,y\r" (List.nth lines 0);
  checks "quoted comma field" "http://a,\"v,1\"\r" (List.nth lines 1);
  checks "unbound empty" "hi,\r" (List.nth lines 2)

let test_results_tsv () =
  let tsv = Amber.Results.to_tsv (sample_answer ()) in
  let lines = String.split_on_char '\n' tsv in
  checks "header" "?x\t?y" (List.nth lines 0);
  checks "nt terms" "<http://a>\t\"v,1\"" (List.nth lines 1)

let suite =
  [
    ( "rdf.binary",
      [
        Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
        Alcotest.test_case "varint corrupt" `Quick test_varint_corrupt;
        Alcotest.test_case "varint edge cases" `Quick test_varint_edges;
        Alcotest.test_case "signed varint edge cases" `Quick test_varint_signed;
        Alcotest.test_case "fixture roundtrip" `Quick test_binary_roundtrip_fixture;
        Alcotest.test_case "file roundtrip + compactness" `Quick test_binary_file_roundtrip;
        Alcotest.test_case "corrupt inputs" `Quick test_binary_corrupt_inputs;
        QCheck_alcotest.to_alcotest prop_binary_roundtrip;
      ] );
    ( "amber.persistence",
      [
        Alcotest.test_case "to_triples" `Quick test_database_to_triples;
        QCheck_alcotest.to_alcotest prop_db_roundtrip_preserves_answers;
        Alcotest.test_case "engine save/load" `Quick test_engine_save_load;
      ] );
    ( "amber.results",
      [
        Alcotest.test_case "json" `Quick test_results_json;
        Alcotest.test_case "csv" `Quick test_results_csv;
        Alcotest.test_case "tsv" `Quick test_results_tsv;
      ] );
  ]
