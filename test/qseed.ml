(* Reproducibility for the randomized suites: one process-wide QCheck
   seed, printed up front and stamped into every failure report, pinned
   by the [QCHECK_SEED] environment variable. Each property gets a fresh
   [Random.State] derived from the same seed, so replaying with
   [QCHECK_SEED=<n> dune runtest] reruns the exact generation sequence
   regardless of suite ordering. *)

let seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None ->
      Random.self_init ();
      Random.int 1_000_000_000

let () =
  Printf.printf "qcheck random seed: %d (replay with QCHECK_SEED=%d)\n%!" seed
    seed

let to_alcotest ?speed_level test =
  QCheck_alcotest.to_alcotest ?speed_level
    ~rand:(Random.State.make [| seed |])
    test

(* [QCheck.Test.fail_reportf] with the process seed prepended, so a CI
   failure log alone is enough to replay the run. *)
let fail_reportf fmt =
  QCheck.Test.fail_reportf ("[QCHECK_SEED=%d] " ^^ fmt) seed
