(* Observability layer: metrics registry, histogram bucketing,
   Prometheus/JSON rendering, tracing spans, and the per-query profile
   produced by [Engine.query_profiled]. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let test_counters () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "queries_total" ~help:"queries served" in
  checki "starts at zero" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 3;
  checki "incr and add" 5 (Obs.Metrics.counter_value c);
  (* Registration is idempotent: same name, same cell. *)
  let c' = Obs.Metrics.counter r "queries_total" in
  Obs.Metrics.incr c';
  checki "same cell" 6 (Obs.Metrics.counter_value c);
  Obs.Metrics.set c 42;
  checki "set overwrites" 42 (Obs.Metrics.counter_value c);
  (* A name registered as a counter cannot come back as a histogram. *)
  (match Obs.Metrics.histogram r "queries_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type clash should raise");
  Obs.Metrics.reset r;
  checki "reset zeroes" 0 (Obs.Metrics.counter_value c)

let test_log_buckets () =
  let b = Obs.Metrics.log_buckets ~lo:0.001 ~ratio:10.0 ~count:3 in
  checki "count" 3 (Array.length b);
  checkf "first" 0.001 b.(0);
  checkf "second" 0.01 b.(1);
  checkf "third" 0.1 b.(2);
  let d = Obs.Metrics.default_latency_buckets in
  checki "default ladder size" 18 (Array.length d);
  checkf "default lo" 1e-5 d.(0);
  checkb "sorted ascending" true
    (Array.for_all (fun x -> x > 0.0) d
    && Array.for_all2 (fun a b -> a < b) (Array.sub d 0 17) (Array.sub d 1 17))

let test_histogram_bucketing () =
  let r = Obs.Metrics.create () in
  let h =
    Obs.Metrics.histogram r "latency" ~buckets:[| 0.1; 1.0; 10.0 |]
      ~help:"test histogram"
  in
  (* One observation per region: <=0.1, <=1, <=10, overflow. Boundary
     values land in the bucket they equal (le is inclusive). *)
  List.iter (Obs.Metrics.observe h) [ 0.05; 0.1; 0.5; 7.0; 99.0 ];
  checki "count" 5 (Obs.Metrics.histogram_count h);
  checkf "sum" 106.65 (Obs.Metrics.histogram_sum h);
  let buckets = Obs.Metrics.bucket_counts h in
  checki "bounds plus +Inf" 4 (Array.length buckets);
  let le, n = buckets.(0) in
  checkf "first bound" 0.1 le;
  checki "0.05 and 0.1 in first bucket" 2 n;
  let _, n1 = buckets.(1) in
  checki "cumulative through 1.0" 3 n1;
  let _, n2 = buckets.(2) in
  checki "cumulative through 10.0" 4 n2;
  let inf_le, total = buckets.(3) in
  checkb "last bound is +Inf" true (inf_le = infinity);
  checki "total" 5 total;
  (* Idempotent lookup keeps the original bucket ladder. *)
  let h' = Obs.Metrics.histogram r "latency" in
  Obs.Metrics.observe h' 0.2;
  checki "shared cell" 6 (Obs.Metrics.histogram_count h)

let test_render_prometheus () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "amber_queries_total" ~help:"queries" in
  Obs.Metrics.add c 7;
  let h = Obs.Metrics.histogram r "amber_query_seconds" ~buckets:[| 0.5 |] in
  Obs.Metrics.observe h 0.25;
  Obs.Metrics.observe h 2.0;
  let text = Obs.Metrics.render_prometheus r in
  checkb "help line" true (contains text "# HELP amber_queries_total queries");
  checkb "counter type" true (contains text "# TYPE amber_queries_total counter");
  checkb "counter sample" true (contains text "amber_queries_total 7");
  checkb "histogram type" true (contains text "# TYPE amber_query_seconds histogram");
  checkb "finite bucket" true (contains text "amber_query_seconds_bucket{le=\"0.5\"} 1");
  checkb "inf bucket" true (contains text "amber_query_seconds_bucket{le=\"+Inf\"} 2");
  checkb "count series" true (contains text "amber_query_seconds_count 2");
  checkb "sum series" true (contains text "amber_query_seconds_sum 2.25")

let test_render_json () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "hits" in
  Obs.Metrics.add c 3;
  let h = Obs.Metrics.histogram r "lat" ~buckets:[| 1.0 |] in
  Obs.Metrics.observe h 0.5;
  let json = Obs.Metrics.render_json r in
  checkb "counter entry" true (contains json "\"hits\":{\"type\":\"counter\",\"value\":3}");
  checkb "histogram type tag" true (contains json "\"type\":\"histogram\"");
  checkb "bucket list" true (contains json "\"buckets\":");
  checkb "object shaped" true
    (String.length json > 1 && json.[0] = '{' && json.[String.length json - 1] = '}')

let test_labeled_metrics () =
  let r = Obs.Metrics.create () in
  let get = Obs.Metrics.counter r "http_reqs" ~labels:[ ("method", "GET") ] ~help:"reqs" in
  let post = Obs.Metrics.counter r "http_reqs" ~labels:[ ("method", "POST") ] in
  Obs.Metrics.add get 2;
  Obs.Metrics.incr post;
  (* Distinct label sets are distinct cells; idempotent per combination. *)
  Obs.Metrics.incr (Obs.Metrics.counter r "http_reqs" ~labels:[ ("method", "GET") ]);
  checki "get cell" 3 (Obs.Metrics.counter_value get);
  checki "post cell" 1 (Obs.Metrics.counter_value post);
  let h =
    Obs.Metrics.histogram r "lat" ~labels:[ ("path", "/q") ] ~buckets:[| 1.0 |]
  in
  Obs.Metrics.observe h 0.5;
  Obs.Metrics.observe h 5.0;
  let text = Obs.Metrics.render_prometheus r in
  checkb "GET sample" true (contains text {|http_reqs{method="GET"} 3|});
  checkb "POST sample" true (contains text {|http_reqs{method="POST"} 1|});
  (* One family header for both label combinations. *)
  let occurrences needle =
    let rec count i acc =
      if i + String.length needle > String.length text then acc
      else if String.sub text i (String.length needle) = needle then
        count (i + 1) (acc + 1)
      else count (i + 1) acc
    in
    count 0 0
  in
  checki "single TYPE header" 1 (occurrences "# TYPE http_reqs counter");
  (* Histogram labels merge with le on bucket samples. *)
  checkb "labeled finite bucket" true
    (contains text {|lat_bucket{path="/q",le="1"} 1|});
  checkb "labeled inf bucket" true
    (contains text {|lat_bucket{path="/q",le="+Inf"} 2|});
  checkb "labeled sum" true (contains text {|lat_sum{path="/q"}|});
  checkb "labeled count" true (contains text {|lat_count{path="/q"} 2|})

let test_label_escaping () =
  let r = Obs.Metrics.create () in
  let c =
    Obs.Metrics.counter r "odd" ~labels:[ ("v", "a\"b\\c\nd") ]
  in
  Obs.Metrics.incr c;
  let text = Obs.Metrics.render_prometheus r in
  (* Prometheus escaping: quote, backslash and newline in label values. *)
  checkb "escaped value" true (contains text {|odd{v="a\"b\\c\nd"} 1|});
  checkb "no raw newline in sample" false (contains text "c\nd")

let test_json_render_roundtrip () =
  (* The JSON renderer's output must survive the strict parser — that's
     the well-formedness gate CI relies on. *)
  let r = Obs.Metrics.create () in
  Obs.Metrics.add (Obs.Metrics.counter r "hits") 3;
  let h =
    Obs.Metrics.histogram r "lat" ~labels:[ ("path", "/q") ] ~buckets:[| 0.5; 1.0 |]
  in
  Obs.Metrics.observe h 0.2;
  Obs.Metrics.observe h 9.0;
  let json = Obs.Json.parse (Obs.Metrics.render_json r) in
  (match Obs.Json.member "hits" json with
  | Some hits ->
      checkb "counter value" true
        (Option.bind (Obs.Json.member "value" hits) Obs.Json.to_float = Some 3.)
  | None -> Alcotest.fail "hits entry missing");
  (match Obs.Json.member {|lat{path="/q"}|} json with
  | Some lat ->
      checkb "histogram type" true
        (Option.bind (Obs.Json.member "type" lat) Obs.Json.to_string
        = Some "histogram");
      let buckets =
        Obs.Json.to_list
          (Option.value ~default:Obs.Json.Null (Obs.Json.member "buckets" lat))
      in
      checki "two bounds plus +Inf" 3 (List.length buckets);
      let last = List.nth buckets 2 in
      checkb "inf bucket as string" true
        (Option.bind (Obs.Json.member "le" last) Obs.Json.to_string
        = Some "+Inf");
      checkb "inf bucket counts all" true
        (Option.bind (Obs.Json.member "count" last) Obs.Json.to_float = Some 2.)
  | None -> Alcotest.fail "keyed histogram entry missing")

let test_json_parser () =
  let open Obs.Json in
  checkb "num" true (parse "42" = Num 42.);
  checkb "negative exponent" true (parse "-1.5e2" = Num (-150.));
  checkb "escapes" true (parse {|"a\"b\\c\nd"|} = Str "a\"b\\c\nd");
  checkb "unicode escape" true (parse {|"é"|} = Str "\xc3\xa9");
  checkb "nested" true
    (parse {|{"a":[1,true,null],"b":{"c":"d"}}|}
    = Obj
        [
          ("a", Arr [ Num 1.; Bool true; Null ]);
          ("b", Obj [ ("c", Str "d") ]);
        ]);
  let malformed s =
    match parse s with
    | exception Malformed _ -> true
    | _ -> false
  in
  checkb "trailing garbage" true (malformed "{} x");
  checkb "bare word" true (malformed "nope");
  checkb "unterminated string" true (malformed {|"abc|});
  checkb "raw control char" true (malformed "\"a\nb\"");
  checkb "parse_opt on junk" true (parse_opt "[1,)" = None);
  (* print → parse is the identity on the value. *)
  let v =
    Obj
      [
        ("s", Str "q\"uote\\and\ncontrol");
        ("n", Num 0.125);
        ("i", Num 1234567.);
        ("l", Arr [ Null; Bool false ]);
      ]
  in
  checkb "roundtrip" true (parse (to_text v) = v)

let test_span_tree () =
  let (result, root) =
    Obs.Span.root ~name:"query" (fun () ->
        checkb "root active" true (Obs.Span.active ());
        let x =
          Obs.Span.with_ ~name:"parse" (fun () ->
              Obs.Span.annotate "triples" "3";
              41)
        in
        Obs.Span.with_ ~name:"match" (fun () ->
            ignore (Obs.Span.with_ ~name:"component" (fun () -> ())));
        x + 1)
  in
  checki "thunk result" 42 result;
  checkb "inactive after close" false (Obs.Span.active ());
  checks "root name" "query" (Obs.Span.name root);
  checkb "root duration" true (Obs.Span.duration root >= 0.0);
  let kids = Obs.Span.children root in
  checki "two children" 2 (List.length kids);
  checks "order preserved" "parse" (Obs.Span.name (List.hd kids));
  (match Obs.Span.find root "component" with
  | Some s -> checks "nested find" "component" (Obs.Span.name s)
  | None -> Alcotest.fail "find should reach grandchildren");
  (match Obs.Span.find root "parse" with
  | Some s -> checkb "annotation kept" true (List.mem_assoc "triples" (Obs.Span.meta s))
  | None -> Alcotest.fail "find parse");
  let json = Obs.Span.to_json root in
  checkb "json name" true (contains json "\"name\":\"query\"");
  checkb "json children" true (contains json "\"children\":[");
  let rendered = Format.asprintf "%a" Obs.Span.pp root in
  checkb "pp mentions ms" true (contains rendered "ms")

let test_span_inactive_is_passthrough () =
  (* Without a root, with_ must run the thunk untimed and annotate must
     be a no-op — the "near-free when disabled" contract. *)
  checkb "no root" false (Obs.Span.active ());
  checki "passthrough" 7 (Obs.Span.with_ ~name:"anything" (fun () -> 7));
  Obs.Span.annotate "k" "v";
  checkb "still inactive" false (Obs.Span.active ())

let test_span_exception () =
  let saw = ref None in
  (try
     ignore
       (Obs.Span.root ~name:"r" (fun () ->
            Obs.Span.with_ ~name:"boom" (fun () -> failwith "bang")))
   with Failure msg -> saw := Some msg);
  checkb "exception propagates" true (!saw = Some "bang");
  checkb "stack unwound" false (Obs.Span.active ())

let test_span_domain_isolation () =
  (* Collector stacks live in Domain.DLS: a root open on this domain is
     invisible to a spawned domain, which collects its own subtree for a
     later graft — the parallel engine's tracing discipline. *)
  let _, root =
    Obs.Span.root ~name:"parent" (fun () ->
        Obs.Span.with_ ~name:"match" (fun () ->
            let worker =
              Domain.spawn (fun () ->
                  let was_active = Obs.Span.active () in
                  let (), sub =
                    Obs.Span.collect ~name:"chunk" (fun () ->
                        Obs.Span.annotate "seeds" "7")
                  in
                  (was_active, sub))
            in
            let was_active, sub = Domain.join worker in
            checkb "other domain starts inactive" false was_active;
            Obs.Span.graft sub))
  in
  (match Obs.Span.find root "chunk" with
  | Some chunk ->
      checkb "worker domain id recorded" true
        (Obs.Span.domain chunk <> Obs.Span.domain root);
      checkb "annotation survived the graft" true
        (List.mem_assoc "seeds" (Obs.Span.meta chunk))
  | None -> Alcotest.fail "grafted chunk missing from parent tree");
  checkb "parent stack restored" false (Obs.Span.active ())

(* Chrome trace-event schema: the shape Perfetto / chrome://tracing
   require of every event this exporter emits. *)
let check_chrome_trace text =
  let json = Obs.Json.parse text in
  let events =
    Obs.Json.to_list
      (Option.value ~default:Obs.Json.Null
         (Obs.Json.member "traceEvents" json))
  in
  checkb "displayTimeUnit" true
    (Option.bind (Obs.Json.member "displayTimeUnit" json) Obs.Json.to_string
    = Some "ms");
  checkb "has events" true (events <> []);
  List.iter
    (fun ev ->
      let str k = Option.bind (Obs.Json.member k ev) Obs.Json.to_string in
      let num k = Option.bind (Obs.Json.member k ev) Obs.Json.to_float in
      checkb "name" true (str "name" <> None);
      checkb "cat" true (str "cat" = Some "amber");
      checkb "complete event" true (str "ph" = Some "X");
      checkb "ts" true (match num "ts" with Some t -> t >= 0. | None -> false);
      checkb "dur" true (match num "dur" with Some d -> d >= 0. | None -> false);
      checkb "pid" true (num "pid" <> None);
      checkb "tid" true (num "tid" <> None))
    events;
  events

let test_chrome_export () =
  let _, root =
    Obs.Span.root ~name:"query" (fun () ->
        Obs.Span.with_ ~name:"parse" (fun () -> Obs.Span.annotate "triples" "3");
        Obs.Span.with_ ~name:"match" (fun () -> ()))
  in
  let events = check_chrome_trace (Obs.Span.to_chrome_json root) in
  checki "one event per span" 3 (List.length events);
  (* The root opens at ts 0; annotations ride along as args. *)
  let names =
    List.filter_map (fun ev -> Option.bind (Obs.Json.member "name" ev) Obs.Json.to_string) events
  in
  checkb "all spans exported" true
    (List.for_all (fun n -> List.mem n names) [ "query"; "parse"; "match" ]);
  checkb "args carry annotations" true
    (List.exists
       (fun ev ->
         match Obs.Json.member "args" ev with
         | Some args ->
             Option.bind (Obs.Json.member "triples" args) Obs.Json.to_string
             = Some "3"
         | None -> false)
       events)

let test_query_profiled () =
  let e = Amber.Engine.build Fixtures.paper_triples in
  let answer, p =
    Amber.Engine.query_string_profiled e Fixtures.paper_query_text
  in
  checkb "query answers" true (List.length answer.Amber.Engine.rows > 0);
  checki "rows recorded" (List.length answer.Amber.Engine.rows) p.Amber.Profile.rows;
  checkb "not truncated" false p.Amber.Profile.truncated;
  checkb "core order chosen" true (p.Amber.Profile.core_order <> []);
  checkb "vertices reported" true (p.Amber.Profile.vertices <> []);
  List.iter
    (fun v ->
      checkb
        ("refined <= structural for " ^ v.Amber.Profile.variable)
        true
        (v.Amber.Profile.refined <= v.Amber.Profile.structural))
    p.Amber.Profile.vertices;
  checkb "solutions counted" true (p.Amber.Profile.stats.Amber.Matcher.solutions > 0);
  let span = p.Amber.Profile.span in
  checks "root span" "query" (Obs.Span.name span);
  List.iter
    (fun phase ->
      checkb ("phase " ^ phase) true (Obs.Span.find span phase <> None))
    [ "parse"; "decompose"; "candidates"; "match"; "enumerate" ];
  let json = Amber.Profile.to_json p in
  checkb "json phases" true (contains json "\"phases\"");
  checkb "json vertices" true (contains json "\"vertices\"");
  let report = Format.asprintf "%a" Amber.Profile.pp p in
  checkb "report shows phases" true (contains report "match");
  checkb "report shows candidates" true (contains report "candidates")

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counters" `Quick test_counters;
        Alcotest.test_case "log buckets" `Quick test_log_buckets;
        Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
        Alcotest.test_case "prometheus rendering" `Quick test_render_prometheus;
        Alcotest.test_case "json rendering" `Quick test_render_json;
        Alcotest.test_case "labeled metrics" `Quick test_labeled_metrics;
        Alcotest.test_case "label escaping" `Quick test_label_escaping;
        Alcotest.test_case "json render roundtrip" `Quick test_json_render_roundtrip;
        Alcotest.test_case "json parser" `Quick test_json_parser;
        Alcotest.test_case "span tree" `Quick test_span_tree;
        Alcotest.test_case "span domain isolation" `Quick test_span_domain_isolation;
        Alcotest.test_case "chrome export" `Quick test_chrome_export;
        Alcotest.test_case "span passthrough" `Quick test_span_inactive_is_passthrough;
        Alcotest.test_case "span exception" `Quick test_span_exception;
        Alcotest.test_case "query profile" `Quick test_query_profiled;
      ] );
  ]
