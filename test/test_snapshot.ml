(* Index snapshot ("AMBERIX1") tests: save/load round-trips preserve
   query answers, any single-byte corruption is rejected, truncations and
   foreign magics are rejected, sequential and parallel builds serialize
   to identical bytes, and the deserialized R-tree still satisfies its
   structural invariants. *)

module Reference = Baselines.Reference_eval

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let with_temp_file suffix f =
  let path = Filename.temp_file "amber_test" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let canonical engine ast =
  Reference.canonical_rows (Amber.Engine.query engine ast).Amber.Engine.rows

let snapshot_string engine =
  Amber.Snapshot.to_string (Amber.Engine.snapshot_contents engine)

(* --- round trips ------------------------------------------------------- *)

let test_roundtrip_fixture () =
  with_temp_file ".amberix" @@ fun path ->
  let original = Amber.Engine.build Fixtures.paper_triples in
  Amber.Engine.save_snapshot original path;
  checkb "sniffs as snapshot" true (Amber.Snapshot.sniff_file path);
  let loaded = Amber.Engine.load_snapshot path in
  let ast = Sparql.Parser.parse Fixtures.paper_query_text in
  checkb "answers survive the snapshot" true
    (canonical original ast = canonical loaded ast);
  checki "two embeddings still" 2
    (List.length (Amber.Engine.query loaded ast).Amber.Engine.rows);
  (* A reload of a reloaded engine serializes to the same bytes. *)
  Alcotest.(check string)
    "re-encoding is canonical" (snapshot_string original)
    (snapshot_string loaded)

let test_triple_file_not_snapshot () =
  with_temp_file ".adb" @@ fun path ->
  Amber.Engine.save (Amber.Engine.build Fixtures.paper_triples) path;
  checkb "AMBERDB1 is not an index snapshot" false
    (Amber.Snapshot.sniff_file path)

(* --- corruption -------------------------------------------------------- *)

let rejects src =
  match Amber.Snapshot.decode src with
  | exception Rdf.Binary.Corrupt _ -> true
  | _ -> false

(* Every single-byte corruption must surface as [Corrupt]: framing
   errors are caught by the strict varint reader and the section
   checks, payload errors by the per-section CRC-32. *)
let test_corrupt_every_byte () =
  let good = snapshot_string (Amber.Engine.build Fixtures.paper_triples) in
  checkb "pristine bytes decode" true
    (match Amber.Snapshot.decode good with
    | _ -> true
    | exception Rdf.Binary.Corrupt _ -> false);
  let bad = ref [] in
  for i = 0 to String.length good - 1 do
    let flipped = Bytes.of_string good in
    Bytes.set flipped i (Char.chr (Char.code good.[i] lxor 0x01));
    if not (rejects (Bytes.to_string flipped)) then bad := i :: !bad
  done;
  checkb
    (Printf.sprintf "all %d single-byte flips rejected (passing offsets: %s)"
       (String.length good)
       (String.concat "," (List.map string_of_int !bad)))
    true (!bad = [])

let test_corrupt_truncations () =
  let good = snapshot_string (Amber.Engine.build Fixtures.paper_triples) in
  let n = String.length good in
  List.iter
    (fun k ->
      checkb
        (Printf.sprintf "prefix of %d bytes rejected" k)
        true
        (rejects (String.sub good 0 k)))
    [ 0; 1; 7; 12; n / 2; n - 5; n - 1 ];
  checkb "trailing garbage rejected" true (rejects (good ^ "\x00"))

let test_corrupt_magic () =
  checkb "empty" true (rejects "");
  checkb "foreign magic" true (rejects "NOTANIDX\x01\x00");
  (* The triple-interchange format shares varint conventions but is a
     different container: each reader must reject the other's magic. *)
  let buf = Buffer.create 256 in
  Rdf.Binary.write buf Fixtures.paper_triples;
  checkb "AMBERDB1 bytes rejected by the snapshot reader" true
    (rejects (Buffer.contents buf));
  let snap = snapshot_string (Amber.Engine.build Fixtures.paper_triples) in
  checkb "AMBERIX1 bytes rejected by the triple reader" true
    (match Rdf.Binary.read snap ~pos:0 with
    | exception Rdf.Binary.Corrupt _ -> true
    | _ -> false)

(* --- layout-tag validation --------------------------------------------- *)

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec loop i =
    i + n <= h && (String.sub hay i n = needle || loop (i + 1))
  in
  loop 0

(* Payload bounds of the first section carrying [want] in a snapshot:
   (payload_start, payload_len). Framing only — no parsing. *)
let find_section src want =
  let pos = ref (String.length Amber.Snapshot.magic) in
  let _version = Rdf.Binary.Varint.read src pos in
  let count = Rdf.Binary.Varint.read src pos in
  let rec loop i =
    if i >= count then Alcotest.failf "section tag %d not found" want
    else
      let tag = Rdf.Binary.Varint.read src pos in
      let len = Rdf.Binary.Varint.read src pos in
      let start = !pos in
      pos := start + len + 4;
      if tag = want then (start, len) else loop (i + 1)
  in
  loop 0

(* The byte-flip sweep above only ever trips the CRC guard. To reach the
   posting decoder's own validation, poison a layout tag *and* recompute
   the section CRC: the frame check passes, so the decoder must reject
   the unknown tag itself — cleanly, as [Corrupt], not a crash. *)
let test_poisoned_layout_tag () =
  let good = snapshot_string (Amber.Engine.build Fixtures.paper_triples) in
  (* v2 attribute-index section (tag 7): varint list count, then each
     posting opens with its layout-tag varint. *)
  let start, len = find_section good 7 in
  let pos = ref start in
  let lists = Rdf.Binary.Varint.read good pos in
  checkb "fixture has attribute lists" true (lists > 0);
  let bad = Bytes.of_string good in
  Bytes.set bad !pos '\x09' (* valid varint, not a layout tag *);
  let crc = Rdf.Binary.crc32 ~off:start ~len (Bytes.to_string bad) in
  for shift = 0 to 3 do
    Bytes.set bad
      (start + len + shift)
      (Char.chr ((crc lsr (8 * shift)) land 0xFF))
  done;
  let bad = Bytes.to_string bad in
  (match Amber.Snapshot.decode bad with
  | exception Rdf.Binary.Corrupt msg ->
      checkb "error names the unknown layout tag" true
        (contains_sub msg "layout tag")
  | _ -> Alcotest.fail "poisoned layout tag must raise Corrupt");
  match Amber.Snapshot.fsck bad with
  | Error msg ->
      checkb "fsck reports the unknown layout tag" true
        (contains_sub msg "layout tag")
  | Ok _ -> Alcotest.fail "fsck must reject a poisoned layout tag"

(* --- per-layout round trips -------------------------------------------- *)

let layout_cases =
  [
    ("auto", Mgraph.Posting.Auto);
    ("raw", Mgraph.Posting.(Force Raw));
    ("ef", Mgraph.Posting.(Force Ef));
    ("blocked", Mgraph.Posting.(Force Blocked));
  ]

(* Every physical layout survives a snapshot round trip: the policy is
   restored, answers are unchanged, and re-encoding the loaded engine is
   byte-identical (stored layouts are authoritative, so compressed lists
   reload compressed). *)
let test_layout_roundtrips () =
  let triples = Datagen.Lubm.generate ~universities:1 () in
  let corpus = Datagen.Workload.corpus triples in
  let queries =
    Datagen.Workload.generate ~seed:7 corpus ~shape:Datagen.Workload.Star
      ~size:3 ~count:2
    @ Datagen.Workload.generate ~seed:8 corpus
        ~shape:Datagen.Workload.Complex ~size:4 ~count:2
  in
  List.iter
    (fun (name, policy) ->
      let original = Amber.Engine.build ~layout:policy triples in
      (let stats = Amber.Engine.posting_stats original in
       match policy with
       | Mgraph.Posting.Force Mgraph.Posting.Ef ->
           checkb (name ^ ": compressed lists present") true
             (stats.Mgraph.Posting.ef_lists > 0)
       | Mgraph.Posting.Force Mgraph.Posting.Blocked ->
           checkb (name ^ ": compressed lists present") true
             (stats.Mgraph.Posting.blocked_lists > 0)
       | _ -> ());
      with_temp_file ".amberix" @@ fun path ->
      Amber.Engine.save_snapshot original path;
      let loaded = Amber.Engine.load_snapshot path in
      checkb
        (name ^ ": layout policy survives the snapshot")
        true
        (Amber.Engine.layout loaded = policy);
      Alcotest.(check string)
        (name ^ ": re-encoding is canonical")
        (snapshot_string original) (snapshot_string loaded);
      List.iter
        (fun ast ->
          checkb
            (name ^ ": answers survive the snapshot")
            true
            (canonical original ast = canonical loaded ast))
        queries)
    layout_cases

(* v1 files (plain delta-coded arrays, no layout tags) still load; they
   report the [Auto] policy and answer identically. *)
let test_v1_snapshot_compat () =
  let original = Amber.Engine.build Fixtures.paper_triples in
  let v1 =
    Amber.Snapshot.to_string_v1 (Amber.Engine.snapshot_contents original)
  in
  with_temp_file ".amberix" @@ fun path ->
  let oc = open_out_bin path in
  output_string oc v1;
  close_out oc;
  let loaded = Amber.Engine.load_snapshot path in
  checkb "v1 files read as Auto" true
    (Amber.Engine.layout loaded = Mgraph.Posting.Auto);
  let ast = Sparql.Parser.parse Fixtures.paper_query_text in
  checkb "answers survive the v1 snapshot" true
    (canonical original ast = canonical loaded ast)

(* v2 files carry an optional trailing stats section: a fresh save
   includes it and the loaded engine reuses it verbatim; files without
   it (v1 here, but also pre-stats v2 files) still load and rebuild the
   statistics lazily from the indexes — which must land on the same
   values, stats being a deterministic function of the indexes. *)
let test_stats_section_roundtrip () =
  let original = Amber.Engine.build Fixtures.paper_triples in
  let contents = Amber.Engine.snapshot_contents original in
  checkb "fresh snapshots carry stats" true (contents.Amber.Snapshot.stats <> None);
  with_temp_file ".amberix" @@ fun path ->
  Amber.Engine.save_snapshot original path;
  let loaded = Amber.Engine.load_snapshot path in
  checkb "stats survive the snapshot" true
    (Amber.Engine.statistics loaded = Amber.Engine.statistics original);
  let v1 = Amber.Snapshot.to_string_v1 contents in
  let oc = open_out_bin path in
  output_string oc v1;
  close_out oc;
  let from_v1 = Amber.Engine.load_snapshot path in
  checkb "stats-less files rebuild identical stats lazily" true
    (Amber.Engine.statistics from_v1 = Amber.Engine.statistics original)

(* --- parallel build determinism ---------------------------------------- *)

let test_parallel_byte_identical () =
  let triples = Datagen.Lubm.generate ~universities:1 () in
  let seq = Amber.Engine.build ~domains:1 triples in
  let par = Amber.Engine.build ~domains:4 triples in
  checkb "4-domain build serializes byte-identically to sequential" true
    (snapshot_string seq = snapshot_string par)

(* Index construction quiesces the pool: parked worker domains would
   slow every stop-the-world minor collection for the rest of the
   process. *)
let test_build_quiesces_pool () =
  ignore (Amber.Engine.build ~domains:4 Fixtures.paper_triples);
  checki "no worker domains parked after a parallel build" 0
    (Amber.Domain_pool.workers (Amber.Domain_pool.global ()))

(* --- randomized differential property ---------------------------------- *)

(* Random small multigraph in the common fragment; independent of the
   differential suite's generator (different salt and shape mix) so the
   two suites do not share blind spots. *)
let random_triples seed =
  let rng = Datagen.Prng.create (0x51a9 + seed) in
  let n = 8 + Datagen.Prng.int rng 16 in
  let e i = Printf.sprintf "http://s/e%d" i in
  let p i = Printf.sprintf "http://s/p%d" i in
  let triples = ref [] in
  for _ = 1 to 25 + Datagen.Prng.int rng 55 do
    triples :=
      Rdf.Triple.spo
        (e (Datagen.Prng.int rng n))
        (p (Datagen.Prng.int rng 5))
        (Rdf.Term.iri (e (Datagen.Prng.int rng n)))
      :: !triples
  done;
  for v = 0 to n - 1 do
    if Datagen.Prng.bool rng 0.4 then
      triples :=
        Rdf.Triple.spo (e v) "http://s/name"
          (Rdf.Term.literal (Printf.sprintf "n%d" (Datagen.Prng.int rng 4)))
        :: !triples
  done;
  !triples

let queries_for seed triples =
  let corpus = Datagen.Workload.corpus triples in
  Datagen.Workload.generate ~seed corpus ~shape:Datagen.Workload.Star ~size:3
    ~count:2
  @ Datagen.Workload.generate ~seed:(seed + 900) corpus
      ~shape:Datagen.Workload.Complex ~size:4 ~count:2

let prop_snapshot_differential =
  QCheck.Test.make
    ~name:"snapshot-loaded engine = fresh engine = oracle on random graphs"
    ~count:30
    (QCheck.make
       ~print:(fun seed ->
         Printf.sprintf "seed %d (%d triples)" seed
           (List.length (random_triples seed)))
       ~shrink:QCheck.Shrink.int
       QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let triples = random_triples seed in
      let fresh = Amber.Engine.build triples in
      with_temp_file ".amberix" @@ fun path ->
      Amber.Engine.save_snapshot fresh path;
      let loaded = Amber.Engine.load_snapshot path in
      (match
         Rtree.check_invariants
           (let _, _, tree =
              Amber.Synopsis_index.export (Amber.Engine.synopsis_index loaded)
            in
            tree)
       with
      | Ok () -> ()
      | Error msg ->
          QCheck.Test.fail_reportf
            "seed %d: deserialized R-tree violates invariants: %s" seed msg);
      List.for_all
        (fun ast ->
          let expected = Reference.canonical_answer triples ast in
          let got = canonical loaded ast in
          if got <> expected then
            QCheck.Test.fail_reportf
              "seed %d: snapshot-loaded engine disagrees with oracle (%d vs \
               %d rows) on:@.%s"
              seed (List.length got) (List.length expected)
              (Sparql.Ast.to_string ast)
          else if got <> canonical fresh ast then
            QCheck.Test.fail_reportf
              "seed %d: snapshot-loaded engine disagrees with the fresh \
               engine on:@.%s"
              seed (Sparql.Ast.to_string ast)
          else true)
        (queries_for seed triples))

(* Same shape, but the engine froze under a forced compressed layout:
   query evaluation runs directly over the Elias-Fano / blocked lists a
   v2 snapshot restored, and must still agree with the oracle. *)
let prop_compressed_snapshot_differential =
  QCheck.Test.make
    ~name:"compressed-layout engine loaded from snapshot = oracle" ~count:15
    (QCheck.make
       ~print:(fun seed ->
         Printf.sprintf "seed %d (layout %s)" seed
           (match seed mod 3 with 0 -> "ef" | 1 -> "blocked" | _ -> "auto"))
       ~shrink:QCheck.Shrink.int
       QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let layout =
        match seed mod 3 with
        | 0 -> Mgraph.Posting.(Force Ef)
        | 1 -> Mgraph.Posting.(Force Blocked)
        | _ -> Mgraph.Posting.Auto
      in
      let triples = random_triples seed in
      let fresh = Amber.Engine.build ~layout triples in
      with_temp_file ".amberix" @@ fun path ->
      Amber.Engine.save_snapshot fresh path;
      let loaded = Amber.Engine.load_snapshot path in
      if Amber.Engine.layout loaded <> layout then
        QCheck.Test.fail_reportf "seed %d: layout policy lost in snapshot"
          seed;
      List.for_all
        (fun ast ->
          let expected = Reference.canonical_answer triples ast in
          let got = canonical loaded ast in
          if got <> expected then
            QCheck.Test.fail_reportf
              "seed %d: compressed snapshot engine disagrees with oracle (%d \
               vs %d rows) on:@.%s"
              seed (List.length got) (List.length expected)
              (Sparql.Ast.to_string ast)
          else true)
        (queries_for seed triples))

(* --- endpoint cold start ------------------------------------------------ *)

let test_endpoint_boot () =
  with_temp_file ".amberix" @@ fun path ->
  Amber.Engine.save_snapshot (Amber.Engine.build Fixtures.paper_triples) path;
  let server =
    Endpoint.boot
      { Endpoint.default_config with snapshot = Some path; port = 0 }
  in
  let port = Endpoint.bound_port server in
  checkb "bound an ephemeral port" true (port > 0);
  let server_domain =
    Domain.spawn (fun () -> Endpoint.serve ~max_requests:1 server)
  in
  let encode s =
    let buf = Buffer.create (String.length s * 2) in
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
            Buffer.add_char buf c
        | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents buf
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let request =
    Printf.sprintf "GET /sparql?query=%s HTTP/1.1\r\nHost: localhost\r\n\r\n"
      (encode Fixtures.paper_query_text)
  in
  let _ = Unix.write fd (Bytes.of_string request) 0 (String.length request) in
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    end
  in
  drain ();
  Unix.close fd;
  Domain.join server_domain;
  Endpoint.stop server;
  let response = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and h = String.length response in
    let rec loop i =
      i + n <= h && (String.sub response i n = needle || loop (i + 1))
    in
    loop 0
  in
  checkb "booted server answers" true (contains "HTTP/1.1 200 OK");
  checkb "with real bindings" true (contains "Amy_Winehouse")

let test_boot_requires_snapshot () =
  match Endpoint.boot { Endpoint.default_config with snapshot = None } with
  | exception Invalid_argument _ -> ()
  | server ->
      Endpoint.stop server;
      Alcotest.fail "boot without a snapshot path must raise Invalid_argument"

let suite =
  [
    ( "snapshot",
      [
        Alcotest.test_case "fixture roundtrip" `Quick test_roundtrip_fixture;
        Alcotest.test_case "sniffing" `Quick test_triple_file_not_snapshot;
        Alcotest.test_case "every byte flip rejected" `Quick
          test_corrupt_every_byte;
        Alcotest.test_case "truncations rejected" `Quick
          test_corrupt_truncations;
        Alcotest.test_case "foreign magics rejected" `Quick test_corrupt_magic;
        Alcotest.test_case "poisoned layout tag rejected" `Quick
          test_poisoned_layout_tag;
        Alcotest.test_case "per-layout roundtrips" `Quick
          test_layout_roundtrips;
        Alcotest.test_case "v1 snapshot compatibility" `Quick
          test_v1_snapshot_compat;
        Alcotest.test_case "stats section roundtrip + lazy rebuild" `Quick
          test_stats_section_roundtrip;
        Alcotest.test_case "parallel build byte-identical" `Quick
          test_parallel_byte_identical;
        Alcotest.test_case "parallel build quiesces pool" `Quick
          test_build_quiesces_pool;
        QCheck_alcotest.to_alcotest prop_snapshot_differential;
        QCheck_alcotest.to_alcotest prop_compressed_snapshot_differential;
        Alcotest.test_case "endpoint boots from snapshot" `Quick
          test_endpoint_boot;
        Alcotest.test_case "boot requires a snapshot path" `Quick
          test_boot_requires_snapshot;
      ] );
  ]
