(* Differential correctness harness: on randomized small multigraphs
   and generated workloads, sequential AMbER, parallel AMbER (4 domains),
   every planner policy (paper, adaptive, each forced seed strategy),
   the semantic rewriter on and off (including a redundancy-biased
   generator that makes core minimization actually fire) and the
   brute-force oracle must produce identical canonical row sets —
   both on frozen engines (uniform and skewed graph shapes) and under
   randomized schedules of inserts, deletes and compactions against a
   live engine, where a query pinned before a write must never observe
   it. Any disagreement prints the offending seed and query so the case
   can be replayed and shrunk. *)

module Reference = Baselines.Reference_eval
module TSet = Set.Make (Rdf.Triple)

(* Random small multigraph with literal attributes, in the common
   fragment (object/datatype predicates disjoint). Kept independent of
   the cross-engine suite's generator so the two suites do not share
   blind spots in graph shape. *)
let random_triples seed =
  let rng = Datagen.Prng.create (0x5eed + seed) in
  let n = 10 + Datagen.Prng.int rng 14 in
  let e i = Printf.sprintf "http://d/e%d" i in
  let p i = Printf.sprintf "http://d/p%d" i in
  let lp i = Printf.sprintf "http://d/lp%d" i in
  let triples = ref [] in
  (* A denser nucleus plus a sparse fringe, so star queries find hubs
     and complex queries find cycles. *)
  for _ = 1 to 30 + Datagen.Prng.int rng 50 do
    let s = Datagen.Prng.int rng n in
    let o =
      if Datagen.Prng.bool rng 0.3 then Datagen.Prng.int rng (max 1 (n / 3))
      else Datagen.Prng.int rng n
    in
    triples :=
      Rdf.Triple.spo (e s)
        (p (Datagen.Prng.int rng 4))
        (Rdf.Term.iri (e o))
      :: !triples
  done;
  for v = 0 to n - 1 do
    if Datagen.Prng.bool rng 0.5 then
      triples :=
        Rdf.Triple.spo (e v)
          (lp (Datagen.Prng.int rng 2))
          (Rdf.Term.literal (Printf.sprintf "w%d" (Datagen.Prng.int rng 3)))
        :: !triples
  done;
  !triples

let queries_for seed triples =
  let corpus = Datagen.Workload.corpus triples in
  Datagen.Workload.generate ~seed corpus ~shape:Datagen.Workload.Star ~size:3
    ~count:2
  @ Datagen.Workload.generate ~seed:(seed + 500) corpus
      ~shape:Datagen.Workload.Complex ~size:4 ~count:2

(* Counts every (graph, query) comparison actually performed, so the
   suite can assert the differential coverage the harness promises. *)
let cases_checked = ref 0

let check_one seed triples ast =
  incr cases_checked;
  let expected = Reference.canonical_answer triples ast in
  let engine = Amber.Engine.build triples in
  let screened = Amber.Engine.query engine ast in
  let seq = Reference.canonical_rows screened.Amber.Engine.rows in
  let par =
    Reference.canonical_rows
      (Amber.Engine.query ~domains:4 engine ast).Amber.Engine.rows
  in
  (* The semantic rewriter (on by default above) must be invisible in
     the canonical answer set. *)
  let unrewritten =
    Reference.canonical_rows
      (Amber.Engine.query ~rewrite:false engine ast).Amber.Engine.rows
  in
  (* The static screen must be invisible: with analysis disabled the
     answer record must be identical, field for field. *)
  let unscreened = Amber.Engine.query ~analyze:false engine ast in
  if screened <> unscreened then
    Qseed.fail_reportf
      "seed %d: ?analyze on/off answers differ (%d vs %d rows) on:@.%s" seed
      (List.length screened.Amber.Engine.rows)
      (List.length unscreened.Amber.Engine.rows)
      (Sparql.Ast.to_string ast)
  else if unrewritten <> expected then
    Qseed.fail_reportf
      "seed %d: rewrite=off disagrees with oracle (%d vs %d rows) on:@.%s"
      seed
      (List.length unrewritten)
      (List.length expected) (Sparql.Ast.to_string ast)
  else if seq <> expected then
    Qseed.fail_reportf
      "seed %d: sequential AMbER disagrees with oracle (%d vs %d rows) on:@.%s"
      seed (List.length seq) (List.length expected) (Sparql.Ast.to_string ast)
  else if par <> expected then
    Qseed.fail_reportf
      "seed %d: parallel AMbER (4 domains) disagrees with oracle (%d vs %d \
       rows) on:@.%s"
      seed (List.length par) (List.length expected) (Sparql.Ast.to_string ast)
  else true

let prop_differential =
  QCheck.Test.make ~name:"sequential = parallel = oracle on random graphs"
    ~count:60
    (QCheck.make
       ~print:(fun seed ->
         let triples = random_triples seed in
         Printf.sprintf "seed %d (%d triples):\n%s" seed (List.length triples)
           (String.concat "\n"
              (List.map Sparql.Ast.to_string (queries_for seed triples))))
       ~shrink:QCheck.Shrink.int
       QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let triples = random_triples seed in
      List.for_all (check_one seed triples) (queries_for seed triples))

(* The acceptance bar: at least 200 (graph, query) comparisons with zero
   mismatches. Runs after the property, which fails loudly on mismatch,
   so reaching here with a low count means the generator regressed. *)
let test_coverage () =
  Alcotest.(check bool)
    (Printf.sprintf "differential harness checked %d cases (>= 200)"
       !cases_checked)
    true
    (!cases_checked >= 200)

(* --- plan agreement ----------------------------------------------------- *)

(* Every planner policy the engine accepts. Plans steer seed-vertex
   strategy and core ordering only; the contract under test is that the
   canonical answer set never moves. *)
let plans =
  Amber.Stats.
    [
      ("paper", Paper);
      ("adaptive", Adaptive);
      ("forced:rtree", Forced Rtree);
      ("forced:attrs", Forced Attrs);
      ("forced:scan", Forced Scan);
    ]

let plan_cases = ref 0

(* Heavier-tailed variant of [random_triples]: two hub vertices receive
   most in-edges and carry every attribute while the fringe rarely does,
   so cardinality estimates diverge sharply across vertices and the
   adaptive planner makes genuinely different choices than the paper
   heuristic. *)
let skewed_triples seed =
  let rng = Datagen.Prng.create (0xb1a5 + seed) in
  let n = 12 + Datagen.Prng.int rng 12 in
  let e i = Printf.sprintf "http://d/e%d" i in
  let p i = Printf.sprintf "http://d/p%d" i in
  let lp i = Printf.sprintf "http://d/lp%d" i in
  let triples = ref [] in
  for _ = 1 to 50 + Datagen.Prng.int rng 60 do
    let s = Datagen.Prng.int rng n in
    let o =
      if Datagen.Prng.bool rng 0.8 then Datagen.Prng.int rng 2
      else Datagen.Prng.int rng n
    in
    triples :=
      Rdf.Triple.spo (e s)
        (p (Datagen.Prng.int rng 3))
        (Rdf.Term.iri (e o))
      :: !triples
  done;
  for v = 0 to n - 1 do
    if v < 2 || Datagen.Prng.bool rng 0.25 then
      triples :=
        Rdf.Triple.spo (e v)
          (lp (Datagen.Prng.int rng 2))
          (Rdf.Term.literal (Printf.sprintf "w%d" (Datagen.Prng.int rng 2)))
        :: !triples
  done;
  !triples

let check_plans label seed triples ast =
  let expected = Reference.canonical_answer triples ast in
  let engine = Amber.Engine.build triples in
  List.for_all
    (fun (name, plan) ->
      incr plan_cases;
      let got =
        Reference.canonical_rows
          (Amber.Engine.query ~plan engine ast).Amber.Engine.rows
      in
      if got <> expected then
        Qseed.fail_reportf
          "seed %d (%s): plan %s disagrees with oracle (%d vs %d rows) \
           on:@.%s"
          seed label name (List.length got) (List.length expected)
          (Sparql.Ast.to_string ast)
      else true)
    plans

let prop_plan_agreement =
  QCheck.Test.make
    ~name:"paper = adaptive = every forced strategy = oracle (uniform + skew)"
    ~count:30
    (QCheck.make
       ~print:(fun seed ->
         let skewed = skewed_triples seed in
         Printf.sprintf "seed %d (%d skewed triples):\n%s" seed
           (List.length skewed)
           (String.concat "\n"
              (List.map Sparql.Ast.to_string
                 (queries_for (seed + 77) skewed))))
       ~shrink:QCheck.Shrink.int
       QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let uniform = random_triples seed in
      let skewed = skewed_triples seed in
      List.for_all (check_plans "uniform" seed uniform)
        (queries_for seed uniform)
      && List.for_all (check_plans "skewed" seed skewed)
           (queries_for (seed + 77) skewed))

(* 30 seeds x (2 + 2 queries) x 2 graph shapes x 5 plans = 1200. *)
let test_plan_coverage () =
  Alcotest.(check bool)
    (Printf.sprintf "plan-agreement harness checked %d cases (>= 500)"
       !plan_cases)
    true
    (!plan_cases >= 500)

(* --- rewriter differential ---------------------------------------------- *)

(* Redundancy-biased transform: wrap a generated query in DISTINCT,
   project a subset of its variables, then graft verbatim duplicates and
   a variable-renamed partial copy of the clause — material the rewriter
   provably may remove (the copy folds back onto the originals under the
   homomorphism sending each renamed variable home). Biased, not rigged:
   whether anything actually fires still depends on the draw. *)
let redundant_variant rng ast =
  let open Sparql.Ast in
  let vars = variables ast in
  let keep =
    List.filteri (fun i _ -> i = 0 || Datagen.Prng.bool rng 0.4) vars
  in
  let rename = function Var v -> Var (v ^ "_r") | t -> t in
  let copy =
    List.filter_map
      (fun p ->
        if Datagen.Prng.bool rng 0.7 then
          Some
            {
              subject = rename p.subject;
              predicate = p.predicate;
              obj = rename p.obj;
            }
        else None)
      ast.where
  in
  let dups = List.filter (fun _ -> Datagen.Prng.bool rng 0.4) ast.where in
  make ~distinct:true (Select_vars keep) (ast.where @ dups @ copy)

let redundant_variants_for seed triples =
  let rng = Datagen.Prng.create (0x2e11 + seed) in
  List.concat_map
    (fun ast -> [ redundant_variant rng ast; redundant_variant rng ast ])
    (queries_for seed triples)

let rewrite_cases = ref 0
let minimizations_fired = ref 0

let check_rewrite seed engine triples ast =
  incr rewrite_cases;
  List.iter
    (fun (s : Amber.Rewrite.step) ->
      match s.Amber_rewrite.kind with
      | Amber_rewrite.Core_minimization _ -> incr minimizations_fired
      | _ -> ())
    (Amber.Rewrite.apply ~db:(Amber.Engine.db engine)
       ~attribute:(Amber.Engine.attribute_index engine)
       ~stats:(lazy (Amber.Engine.statistics engine))
       ast)
      .Amber.Rewrite.steps;
  let expected = Reference.canonical_answer triples ast in
  let on =
    Reference.canonical_rows (Amber.Engine.query engine ast).Amber.Engine.rows
  in
  let off =
    Reference.canonical_rows
      (Amber.Engine.query ~rewrite:false engine ast).Amber.Engine.rows
  in
  if on <> expected then
    Qseed.fail_reportf
      "seed %d: rewritten run disagrees with oracle (%d vs %d rows) on:@.%s"
      seed (List.length on) (List.length expected) (Sparql.Ast.to_string ast)
  else if off <> expected then
    Qseed.fail_reportf
      "seed %d: rewrite=off disagrees with oracle (%d vs %d rows) on:@.%s"
      seed (List.length off) (List.length expected)
      (Sparql.Ast.to_string ast)
  else true

let prop_rewrite_differential =
  QCheck.Test.make
    ~name:"rewritten = unrewritten = oracle on redundancy-biased queries"
    ~count:80
    (QCheck.make
       ~print:(fun seed ->
         let triples = random_triples seed in
         Printf.sprintf "seed %d (%d triples):\n%s" seed (List.length triples)
           (String.concat "\n"
              (List.map Sparql.Ast.to_string
                 (redundant_variants_for seed triples))))
       ~shrink:QCheck.Shrink.int
       QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let triples = random_triples seed in
      let engine = Amber.Engine.build triples in
      List.for_all
        (check_rewrite seed engine triples)
        (redundant_variants_for seed triples))

(* 80 seeds x 4 queries x 2 variants = 640 cases; the firing floor
   guards the property against vacuity — a generator that stopped
   producing removable redundancy would pass trivially. *)
let test_rewrite_coverage () =
  Alcotest.(check bool)
    (Printf.sprintf
       "rewriter differential checked %d cases (>= 600), core minimization \
        fired %d times (>= 50)"
       !rewrite_cases !minimizations_fired)
    true
    (!rewrite_cases >= 600 && !minimizations_fired >= 50)

(* --- update-interleaving schedules -------------------------------------- *)

let canonical engine ast =
  Reference.canonical_rows (Amber.Engine.query engine ast).Amber.Engine.rows

(* A random write batch over (and a little beyond) the schedule's
   vocabulary: fresh vertices and predicates appear, deletions are drawn
   from the current world plus some that miss. *)
let random_batch rng n world =
  let e i = Printf.sprintf "http://d/e%d" i in
  let p i = Printf.sprintf "http://d/p%d" i in
  let lp i = Printf.sprintf "http://d/lp%d" i in
  let v () = e (Datagen.Prng.int rng (n + 4)) in
  let random_edge () =
    Rdf.Triple.spo (v ())
      (p (Datagen.Prng.int rng 6))
      (Rdf.Term.iri (v ()))
  in
  let adds = ref [] in
  for _ = 1 to 1 + Datagen.Prng.int rng 6 do
    adds :=
      (if Datagen.Prng.bool rng 0.75 then random_edge ()
       else
         Rdf.Triple.spo (v ())
           (lp (Datagen.Prng.int rng 3))
           (Rdf.Term.literal (Printf.sprintf "w%d" (Datagen.Prng.int rng 4))))
      :: !adds
  done;
  let world_arr = Array.of_list (TSet.elements world) in
  let dels = ref [] in
  for _ = 1 to Datagen.Prng.int rng 4 do
    dels :=
      (if Datagen.Prng.bool rng 0.7 && Array.length world_arr > 0 then
         world_arr.(Datagen.Prng.int rng (Array.length world_arr))
       else random_edge ())
      :: !dels
  done;
  (!adds, !dels)

let schedules_run = ref 0
let interleaved_cases = ref 0

(* One schedule: a random sequence of update / compact / observe steps
   against a live engine, with the brute-force oracle replaying the same
   writes on a plain triple set. After EVERY step the current epoch must
   agree with the oracle, sequentially and on 4 domains; and an epoch
   pinned before the first write must keep answering the original world
   to the very end, whatever landed after it. *)
let run_schedule seed =
  incr schedules_run;
  let rng = Datagen.Prng.create (0x5c4ed + seed) in
  let base = TSet.elements (TSet.of_list (random_triples seed)) in
  let n = 24 in
  let live = Amber.Live_engine.of_engine (Amber.Engine.build base) in
  let world = ref (TSet.of_list base) in
  let pinned = Amber.Live_engine.pin live in
  let pin_queries = queries_for seed base in
  let pin_expected =
    List.map (canonical (Amber.Live_engine.engine pinned)) pin_queries
  in
  let check_current step =
    let merged = TSet.elements !world in
    let engine = Amber.Live_engine.engine (Amber.Live_engine.pin live) in
    List.iter
      (fun ast ->
        incr interleaved_cases;
        let expected = Reference.canonical_answer merged ast in
        let seq = canonical engine ast in
        let par =
          Reference.canonical_rows
            (Amber.Engine.query ~domains:4 engine ast).Amber.Engine.rows
        in
        (* The overlay inherits the base generation's (stale) statistics;
           the paper plan ignores them entirely. Both must still agree
           with the oracle after every update and across compactions. *)
        let paper =
          Reference.canonical_rows
            (Amber.Engine.query ~plan:Amber.Stats.Paper engine ast)
              .Amber.Engine.rows
        in
        let unrewritten =
          Reference.canonical_rows
            (Amber.Engine.query ~rewrite:false engine ast).Amber.Engine.rows
        in
        if unrewritten <> expected then
          Qseed.fail_reportf
            "seed %d step %d: rewrite=off on live engine disagrees with \
             oracle (%d vs %d rows) on:@.%s"
            seed step
            (List.length unrewritten)
            (List.length expected) (Sparql.Ast.to_string ast)
        else if seq <> expected then
          Qseed.fail_reportf
            "seed %d step %d: live engine disagrees with oracle (%d vs %d \
             rows) on:@.%s"
            seed step (List.length seq) (List.length expected)
            (Sparql.Ast.to_string ast)
        else if par <> expected then
          Qseed.fail_reportf
            "seed %d step %d: parallel live engine (4 domains) disagrees \
             with oracle (%d vs %d rows) on:@.%s"
            seed step (List.length par) (List.length expected)
            (Sparql.Ast.to_string ast)
        else if paper <> expected then
          Qseed.fail_reportf
            "seed %d step %d: paper plan on live engine disagrees with \
             oracle (%d vs %d rows) on:@.%s"
            seed step (List.length paper) (List.length expected)
            (Sparql.Ast.to_string ast))
      (match merged with [] -> [] | _ -> queries_for (seed + step) merged)
  in
  let steps = 3 + Datagen.Prng.int rng 3 in
  let last_version = ref (Amber.Live_engine.version pinned) in
  for step = 1 to steps do
    (match Datagen.Prng.int rng 5 with
    | 0 | 1 | 2 ->
        let adds, dels = random_batch rng n !world in
        let ep = Amber.Live_engine.update live ~adds ~dels in
        world :=
          TSet.union (TSet.of_list adds) (TSet.diff !world (TSet.of_list dels));
        if Amber.Live_engine.version ep <= !last_version then
          Qseed.fail_reportf "seed %d step %d: version not monotone" seed step;
        last_version := Amber.Live_engine.version ep
    | 3 ->
        let ep = Amber.Live_engine.compact live in
        if Amber.Live_engine.version ep <= !last_version then
          Qseed.fail_reportf "seed %d step %d: version not monotone" seed step;
        last_version := Amber.Live_engine.version ep
    | _ -> (* observe-only step *) ());
    check_current step
  done;
  (* Snapshot isolation: the pre-write pin never observed any of it. *)
  List.iter2
    (fun ast expected ->
      incr interleaved_cases;
      if canonical (Amber.Live_engine.engine pinned) ast <> expected then
        Qseed.fail_reportf
          "seed %d: epoch pinned before the schedule changed its answer \
           on:@.%s"
          seed (Sparql.Ast.to_string ast))
    pin_queries pin_expected;
  true

let prop_update_interleaving =
  QCheck.Test.make
    ~name:"live engine = oracle under random update/compact schedules"
    ~count:200
    (QCheck.make
       ~print:(fun seed ->
         Printf.sprintf "schedule seed %d (%d base triples)" seed
           (List.length (random_triples seed)))
       ~shrink:QCheck.Shrink.int
       QCheck.Gen.(int_bound 1_000_000))
    run_schedule

(* ≥ 200 schedules actually ran, each checked after every step. *)
let test_schedule_coverage () =
  Alcotest.(check bool)
    (Printf.sprintf
       "update-interleaving harness ran %d schedules (>= 200), %d \
        step-checks"
       !schedules_run !interleaved_cases)
    true
    (!schedules_run >= 200 && !interleaved_cases >= 200)

let suite =
  [
    ( "differential",
      [
        Qseed.to_alcotest prop_differential;
        Alcotest.test_case "coverage >= 200 cases" `Quick test_coverage;
        Qseed.to_alcotest prop_plan_agreement;
        Alcotest.test_case "plan coverage >= 500 cases" `Quick
          test_plan_coverage;
        Qseed.to_alcotest prop_rewrite_differential;
        Alcotest.test_case "rewrite coverage >= 600 cases, >= 50 fired"
          `Quick test_rewrite_coverage;
        Qseed.to_alcotest prop_update_interleaving;
        Alcotest.test_case "schedule coverage >= 200" `Quick
          test_schedule_coverage;
      ] );
  ]
