(* Differential correctness harness: on randomized small multigraphs
   and generated workloads, sequential AMbER, parallel AMbER (4 domains)
   and the brute-force oracle must produce identical canonical row sets.
   Any disagreement prints the offending seed and query so the case can
   be replayed and shrunk by hand. *)

module Reference = Baselines.Reference_eval

(* Random small multigraph with literal attributes, in the common
   fragment (object/datatype predicates disjoint). Kept independent of
   the cross-engine suite's generator so the two suites do not share
   blind spots in graph shape. *)
let random_triples seed =
  let rng = Datagen.Prng.create (0x5eed + seed) in
  let n = 10 + Datagen.Prng.int rng 14 in
  let e i = Printf.sprintf "http://d/e%d" i in
  let p i = Printf.sprintf "http://d/p%d" i in
  let lp i = Printf.sprintf "http://d/lp%d" i in
  let triples = ref [] in
  (* A denser nucleus plus a sparse fringe, so star queries find hubs
     and complex queries find cycles. *)
  for _ = 1 to 30 + Datagen.Prng.int rng 50 do
    let s = Datagen.Prng.int rng n in
    let o =
      if Datagen.Prng.bool rng 0.3 then Datagen.Prng.int rng (max 1 (n / 3))
      else Datagen.Prng.int rng n
    in
    triples :=
      Rdf.Triple.spo (e s)
        (p (Datagen.Prng.int rng 4))
        (Rdf.Term.iri (e o))
      :: !triples
  done;
  for v = 0 to n - 1 do
    if Datagen.Prng.bool rng 0.5 then
      triples :=
        Rdf.Triple.spo (e v)
          (lp (Datagen.Prng.int rng 2))
          (Rdf.Term.literal (Printf.sprintf "w%d" (Datagen.Prng.int rng 3)))
        :: !triples
  done;
  !triples

let queries_for seed triples =
  let corpus = Datagen.Workload.corpus triples in
  Datagen.Workload.generate ~seed corpus ~shape:Datagen.Workload.Star ~size:3
    ~count:2
  @ Datagen.Workload.generate ~seed:(seed + 500) corpus
      ~shape:Datagen.Workload.Complex ~size:4 ~count:2

(* Counts every (graph, query) comparison actually performed, so the
   suite can assert the differential coverage the harness promises. *)
let cases_checked = ref 0

let check_one seed triples ast =
  incr cases_checked;
  let expected = Reference.canonical_answer triples ast in
  let engine = Amber.Engine.build triples in
  let screened = Amber.Engine.query engine ast in
  let seq = Reference.canonical_rows screened.Amber.Engine.rows in
  let par =
    Reference.canonical_rows
      (Amber.Engine.query ~domains:4 engine ast).Amber.Engine.rows
  in
  (* The static screen must be invisible: with analysis disabled the
     answer record must be identical, field for field. *)
  let unscreened = Amber.Engine.query ~analyze:false engine ast in
  if screened <> unscreened then
    QCheck.Test.fail_reportf
      "seed %d: ?analyze on/off answers differ (%d vs %d rows) on:@.%s" seed
      (List.length screened.Amber.Engine.rows)
      (List.length unscreened.Amber.Engine.rows)
      (Sparql.Ast.to_string ast)
  else if seq <> expected then
    QCheck.Test.fail_reportf
      "seed %d: sequential AMbER disagrees with oracle (%d vs %d rows) on:@.%s"
      seed (List.length seq) (List.length expected) (Sparql.Ast.to_string ast)
  else if par <> expected then
    QCheck.Test.fail_reportf
      "seed %d: parallel AMbER (4 domains) disagrees with oracle (%d vs %d \
       rows) on:@.%s"
      seed (List.length par) (List.length expected) (Sparql.Ast.to_string ast)
  else true

let prop_differential =
  QCheck.Test.make ~name:"sequential = parallel = oracle on random graphs"
    ~count:60
    (QCheck.make
       ~print:(fun seed ->
         let triples = random_triples seed in
         Printf.sprintf "seed %d (%d triples):\n%s" seed (List.length triples)
           (String.concat "\n"
              (List.map Sparql.Ast.to_string (queries_for seed triples))))
       ~shrink:QCheck.Shrink.int
       QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let triples = random_triples seed in
      List.for_all (check_one seed triples) (queries_for seed triples))

(* The acceptance bar: at least 200 (graph, query) comparisons with zero
   mismatches. Runs after the property, which fails loudly on mismatch,
   so reaching here with a low count means the generator regressed. *)
let test_coverage () =
  Alcotest.(check bool)
    (Printf.sprintf "differential harness checked %d cases (>= 200)"
       !cases_checked)
    true
    (!cases_checked >= 200)

let suite =
  [
    ( "differential",
      [
        QCheck_alcotest.to_alcotest prop_differential;
        Alcotest.test_case "coverage >= 200 cases" `Quick test_coverage;
      ] );
  ]
