(* Delta overlay and live engine tests: compiled overlays answer exactly
   like an engine rebuilt from the merged world (and like the brute-force
   oracle), epochs give snapshot isolation under writes and compactions,
   the live directory survives crashes mid-compaction, and every
   single-byte manifest corruption is rejected. *)

module Reference = Baselines.Reference_eval
module TSet = Set.Make (Rdf.Triple)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let canonical engine ast =
  Reference.canonical_rows (Amber.Engine.query engine ast).Amber.Engine.rows

let d n = "http://d/" ^ n
let spo s p o = Rdf.Triple.spo (d s) (d p) (Rdf.Term.iri (d o))
let att s p w = Rdf.Triple.spo (d s) (d p) (Rdf.Term.literal w)

(* The delta's merged-world semantics, replayed on plain triple sets:
   deletions first, then insertions. *)
let merged_world base ~adds ~dels =
  TSet.elements
    (TSet.union (TSet.of_list adds)
       (TSet.diff (TSet.of_list base) (TSet.of_list dels)))

(* Workload queries carved out of [merged] itself, each answered by the
   overlay engine and checked against the brute-force oracle. *)
let check_oracle ?(seed = 11) label merged engine =
  let corpus = Datagen.Workload.corpus merged in
  let queries =
    Datagen.Workload.generate ~seed corpus ~shape:Datagen.Workload.Star ~size:2
      ~count:2
    @ Datagen.Workload.generate ~seed:(seed + 77) corpus
        ~shape:Datagen.Workload.Complex ~size:3 ~count:2
  in
  checkb (label ^ ": workload is non-empty") true (queries <> []);
  List.iteri
    (fun i ast ->
      checkb
        (Printf.sprintf "%s: query %d matches oracle" label i)
        true
        (canonical engine ast = Reference.canonical_answer merged ast))
    queries

let base_triples =
  [
    spo "e0" "p0" "e1";
    spo "e1" "p0" "e2";
    spo "e2" "p1" "e0";
    spo "e0" "p1" "e2";
    spo "e3" "p0" "e0";
    att "e0" "lp0" "w0";
    att "e2" "lp0" "w1";
    att "e3" "lp1" "w0";
  ]

let q text = Sparql.Parser.parse text

let probe_query =
  q (Printf.sprintf "SELECT ?x ?y WHERE { ?x <%s> ?y . }" (d "p0"))

(* --- compile correctness ------------------------------------------------ *)

(* One batch that exercises every id-allocation path: existing vertices,
   a new subject, a new object, a new predicate, a new attribute value
   and a new attribute predicate — plus deletions of an edge, an
   attribute, and a triple the base never held (a compile-time no-op). *)
let test_insert_and_delete () =
  let base = Amber.Engine.build base_triples in
  let adds =
    [
      spo "e1" "p1" "e3";
      spo "e4" "p0" "e1";
      spo "e2" "p9" "e5";
      att "e1" "lp0" "w2";
      att "e4" "lp9" "w0";
    ]
  in
  let dels = [ spo "e0" "p0" "e1"; att "e2" "lp0" "w1"; spo "e7" "p0" "e0" ] in
  let delta = Amber.Delta.apply Amber.Delta.empty ~adds ~dels in
  let overlay = Amber.Delta.compile base delta in
  let merged = merged_world base_triples ~adds ~dels in
  checki "exact merged triple count" (List.length merged)
    (Amber.Database.triple_count (Amber.Engine.db overlay));
  checkb "probe answers changed" true
    (canonical overlay probe_query <> canonical base probe_query);
  check_oracle "insert+delete" merged overlay;
  (* The overlay must also agree with a from-scratch rebuild. *)
  let rebuilt = Amber.Engine.build merged in
  checkb "overlay = rebuilt on the probe" true
    (canonical overlay probe_query = canonical rebuilt probe_query)

let test_cancellation () =
  let t = spo "e0" "p9" "e9" in
  let delta = Amber.Delta.remove (Amber.Delta.insert Amber.Delta.empty t) t in
  checki "insert then remove cancels the add" 0 (Amber.Delta.add_count delta);
  checki "…leaving only the del" 1 (Amber.Delta.del_count delta);
  let delta = Amber.Delta.insert (Amber.Delta.remove Amber.Delta.empty t) t in
  checki "remove then insert leaves one add" 1 (Amber.Delta.add_count delta);
  checki "…and no del" 0 (Amber.Delta.del_count delta);
  (* Deleting a base triple and re-adding it restores the base world. *)
  let b0 = List.hd base_triples in
  let base = Amber.Engine.build base_triples in
  let roundtrip =
    Amber.Delta.insert (Amber.Delta.remove Amber.Delta.empty b0) b0
  in
  let overlay = Amber.Delta.compile base roundtrip in
  checki "triple count restored" (List.length base_triples)
    (Amber.Database.triple_count (Amber.Engine.db overlay));
  checkb "answers restored" true
    (canonical overlay probe_query = canonical base probe_query)

let test_delete_everything () =
  let base = Amber.Engine.build base_triples in
  let delta =
    Amber.Delta.apply Amber.Delta.empty ~adds:[] ~dels:base_triples
  in
  let overlay = Amber.Delta.compile base delta in
  checki "empty world" 0 (Amber.Database.triple_count (Amber.Engine.db overlay));
  checki "no rows" 0
    (List.length (Amber.Engine.query overlay probe_query).Amber.Engine.rows)

(* --- randomized overlay differential ------------------------------------ *)

(* Random small base (deduplicated, so triple counts are exact), salted
   differently from the other suites' generators. *)
let random_base seed =
  let rng = Datagen.Prng.create (0xd317a + seed) in
  let n = 8 + Datagen.Prng.int rng 12 in
  let triples = ref [] in
  for _ = 1 to 20 + Datagen.Prng.int rng 40 do
    triples :=
      spo
        (Printf.sprintf "e%d" (Datagen.Prng.int rng n))
        (Printf.sprintf "p%d" (Datagen.Prng.int rng 4))
        (Printf.sprintf "e%d" (Datagen.Prng.int rng n))
      :: !triples
  done;
  for v = 0 to n - 1 do
    if Datagen.Prng.bool rng 0.5 then
      triples :=
        att
          (Printf.sprintf "e%d" v)
          (Printf.sprintf "lp%d" (Datagen.Prng.int rng 2))
          (Printf.sprintf "w%d" (Datagen.Prng.int rng 3))
        :: !triples
  done;
  (n, TSet.elements (TSet.of_list !triples))

(* A random write batch over (and beyond) the base vocabulary: edges and
   attributes on existing vertices, brand-new vertices and predicates,
   deletions sampled from the base plus some that miss. *)
let random_batch rng n base =
  let base_arr = Array.of_list base in
  let v () = Printf.sprintf "e%d" (Datagen.Prng.int rng (n + 4)) in
  let adds = ref [] in
  for _ = 1 to 2 + Datagen.Prng.int rng 8 do
    adds :=
      (if Datagen.Prng.bool rng 0.75 then
         spo (v ()) (Printf.sprintf "p%d" (Datagen.Prng.int rng 6)) (v ())
       else
         att (v ())
           (Printf.sprintf "lp%d" (Datagen.Prng.int rng 3))
           (Printf.sprintf "w%d" (Datagen.Prng.int rng 4)))
      :: !adds
  done;
  let dels = ref [] in
  for _ = 1 to Datagen.Prng.int rng 6 do
    dels :=
      (if Datagen.Prng.bool rng 0.7 && Array.length base_arr > 0 then
         base_arr.(Datagen.Prng.int rng (Array.length base_arr))
       else spo (v ()) (Printf.sprintf "p%d" (Datagen.Prng.int rng 6)) (v ()))
      :: !dels
  done;
  (!adds, !dels)

let queries_for seed triples =
  let corpus = Datagen.Workload.corpus triples in
  Datagen.Workload.generate ~seed corpus ~shape:Datagen.Workload.Star ~size:2
    ~count:2
  @ Datagen.Workload.generate ~seed:(seed + 300) corpus
      ~shape:Datagen.Workload.Complex ~size:3 ~count:2

let overlay_cases_checked = ref 0

(* Two cumulative batches per seed: compile the first delta, then extend
   it and recompile from the same frozen base — layers never chain. *)
let prop_overlay_differential =
  QCheck.Test.make ~name:"compiled overlay = rebuilt engine = oracle"
    ~count:40
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed %d" seed)
       ~shrink:QCheck.Shrink.int
       QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let n, base = random_base seed in
      let rng = Datagen.Prng.create (0xba7c4 + seed) in
      let engine = Amber.Engine.build base in
      let delta = ref Amber.Delta.empty in
      let world = ref base in
      let ok = ref true in
      for step = 0 to 1 do
        let adds, dels = random_batch rng n !world in
        delta := Amber.Delta.apply !delta ~adds ~dels;
        world := merged_world !world ~adds ~dels;
        let overlay = Amber.Delta.compile engine !delta in
        let got = Amber.Database.triple_count (Amber.Engine.db overlay) in
        if got <> List.length !world then
          ok :=
            Qseed.fail_reportf
              "seed %d step %d: overlay triple count %d, merged world has %d"
              seed step got (List.length !world);
        let rebuilt = Amber.Engine.build !world in
        List.iter
          (fun ast ->
            incr overlay_cases_checked;
            let expected = Reference.canonical_answer !world ast in
            let got = canonical overlay ast in
            if got <> expected then
              ok :=
                Qseed.fail_reportf
                  "seed %d step %d: overlay disagrees with oracle (%d vs %d \
                   rows) on:@.%s"
                  seed step (List.length got) (List.length expected)
                  (Sparql.Ast.to_string ast)
            else if canonical rebuilt ast <> expected then
              ok :=
                Qseed.fail_reportf
                  "seed %d step %d: rebuilt engine disagrees with oracle \
                   on:@.%s"
                  seed step (Sparql.Ast.to_string ast))
          (queries_for (seed + step) !world)
      done;
      !ok)

(* --- snapshot isolation -------------------------------------------------- *)

let test_pin_isolation () =
  let live = Amber.Live_engine.of_engine (Amber.Engine.build base_triples) in
  let ep0 = Amber.Live_engine.pin live in
  let before = canonical (Amber.Live_engine.engine ep0) probe_query in
  let ep1 =
    Amber.Live_engine.update live
      ~adds:[ spo "e8" "p0" "e0" ]
      ~dels:[ spo "e0" "p0" "e1" ]
  in
  let after = canonical (Amber.Live_engine.engine ep1) probe_query in
  checkb "write visible in the new epoch" true (before <> after);
  checkb "pinned epoch never observes the write" true
    (canonical (Amber.Live_engine.engine ep0) probe_query = before);
  checki "version bumped" 1 (Amber.Live_engine.version ep1);
  let merged =
    merged_world base_triples
      ~adds:[ spo "e8" "p0" "e0" ]
      ~dels:[ spo "e0" "p0" "e1" ]
  in
  check_oracle "post-update epoch" merged (Amber.Live_engine.engine ep1);
  let ep2 = Amber.Live_engine.compact live in
  checki "compaction bumps the generation" 1 (Amber.Live_engine.generation ep2);
  checki "compaction bumps the version" 2 (Amber.Live_engine.version ep2);
  checkb "compaction leaves an empty delta" true
    (Amber.Delta.is_empty (Amber.Live_engine.delta ep2));
  checkb "compaction preserves answers" true
    (canonical (Amber.Live_engine.engine ep2) probe_query = after);
  (* Pinned epochs survive the compaction untouched, caches included. *)
  checkb "old pin still answers the old world" true
    (canonical (Amber.Live_engine.engine ep0) probe_query = before)

(* --- durability ---------------------------------------------------------- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_temp_dir f =
  let path = Filename.temp_file "amber_live" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let adds1 = [ spo "e8" "p0" "e0"; att "e8" "lp0" "w9" ]
let dels1 = [ spo "e0" "p0" "e1" ]

let test_persistence_roundtrip () =
  with_temp_dir @@ fun dir ->
  let live =
    Amber.Live_engine.of_engine ~dir (Amber.Engine.build base_triples)
  in
  let ep = Amber.Live_engine.update live ~adds:adds1 ~dels:dels1 in
  let expected = canonical (Amber.Live_engine.engine ep) probe_query in
  (* Reopen with a pending delta: manifest + gen-0 snapshot replay. *)
  let reopened = Amber.Live_engine.open_dir dir in
  let rep = Amber.Live_engine.pin reopened in
  checki "reopened generation" 0 (Amber.Live_engine.generation rep);
  checki "reopened version" 1 (Amber.Live_engine.version rep);
  checki "reopened delta size" 3 (Amber.Delta.size (Amber.Live_engine.delta rep));
  checkb "reopened answers match" true
    (canonical (Amber.Live_engine.engine rep) probe_query = expected);
  (* Compact, then reopen the new generation. *)
  ignore (Amber.Live_engine.compact live);
  checkb "gen-1 snapshot written" true
    (Sys.file_exists (Filename.concat dir "gen-1.amberix"));
  checkb "gen-0 snapshot retained until the next compaction" true
    (Sys.file_exists (Filename.concat dir "gen-0.amberix"));
  let reopened2 = Amber.Live_engine.open_dir dir in
  let rep2 = Amber.Live_engine.pin reopened2 in
  checki "compacted generation reopens" 1 (Amber.Live_engine.generation rep2);
  checkb "compacted delta is empty" true
    (Amber.Delta.is_empty (Amber.Live_engine.delta rep2));
  checkb "compacted answers match" true
    (canonical (Amber.Live_engine.engine rep2) probe_query = expected);
  (* A second compaction prunes generation 0 but keeps generation 1. *)
  ignore (Amber.Live_engine.update live ~adds:[ spo "e9" "p1" "e8" ] ~dels:[]);
  ignore (Amber.Live_engine.compact live);
  checkb "gen-0 pruned" false
    (Sys.file_exists (Filename.concat dir "gen-0.amberix"));
  checkb "gen-1 retained" true
    (Sys.file_exists (Filename.concat dir "gen-1.amberix"));
  checkb "gen-2 present" true
    (Sys.file_exists (Filename.concat dir "gen-2.amberix"))

(* A compaction killed mid-snapshot-write leaves a partial gen file (or
   a stray .tmp); the manifest still names the previous generation, so
   the directory reopens — and fsck rejects the partial bytes. *)
let test_crash_mid_compaction () =
  with_temp_dir @@ fun dir ->
  let live =
    Amber.Live_engine.of_engine ~dir (Amber.Engine.build base_triples)
  in
  let ep = Amber.Live_engine.update live ~adds:adds1 ~dels:dels1 in
  let expected = canonical (Amber.Live_engine.engine ep) probe_query in
  let good =
    In_channel.with_open_bin (Filename.concat dir "gen-0.amberix")
      In_channel.input_all
  in
  let partial = String.sub good 0 (String.length good / 2) in
  List.iter
    (fun name ->
      Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
          Out_channel.output_string oc partial))
    [ "gen-1.amberix"; "gen-1.amberix.tmp" ];
  (match Amber.Snapshot.fsck partial with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fsck must reject the partial generation file");
  (match Amber.Snapshot.fsck_file (Filename.concat dir "gen-1.amberix") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fsck_file must reject the partial generation file");
  let reopened = Amber.Live_engine.open_dir dir in
  let rep = Amber.Live_engine.pin reopened in
  checki "previous generation still loads" 0
    (Amber.Live_engine.generation rep);
  checkb "previous world intact" true
    (canonical (Amber.Live_engine.engine rep) probe_query = expected);
  (* The retried compaction overwrites the partial file atomically. *)
  let ep2 = Amber.Live_engine.compact reopened in
  checki "retried compaction lands" 1 (Amber.Live_engine.generation ep2);
  (match Amber.Snapshot.fsck_file (Filename.concat dir "gen-1.amberix") with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "retried gen-1 must pass fsck: %s" msg);
  let reopened2 = Amber.Live_engine.open_dir dir in
  checkb "reopens on the retried generation" true
    (canonical
       (Amber.Live_engine.engine (Amber.Live_engine.pin reopened2))
       probe_query
    = expected)

(* Every single-byte corruption of the manifest must be rejected: the
   magic check, the strict varint reader and the CRC-32 frame between
   them leave no silently-decodable flip. Same sweep the snapshot format
   gets in test_snapshot.ml. *)
let test_manifest_every_byte () =
  with_temp_dir @@ fun dir ->
  let live =
    Amber.Live_engine.of_engine ~dir (Amber.Engine.build base_triples)
  in
  ignore (Amber.Live_engine.update live ~adds:adds1 ~dels:dels1);
  let manifest = Filename.concat dir "live.manifest" in
  let good = In_channel.with_open_bin manifest In_channel.input_all in
  let write_manifest s =
    Out_channel.with_open_bin manifest (fun oc ->
        Out_channel.output_string oc s)
  in
  let rejects () =
    match Amber.Live_engine.open_dir dir with
    | exception Rdf.Binary.Corrupt _ -> true
    | _ -> false
  in
  let bad = ref [] in
  for i = 0 to String.length good - 1 do
    let flipped = Bytes.of_string good in
    Bytes.set flipped i (Char.chr (Char.code good.[i] lxor 0x01));
    write_manifest (Bytes.to_string flipped);
    if not (rejects ()) then bad := i :: !bad
  done;
  checkb
    (Printf.sprintf "all %d single-byte flips rejected (passing offsets: %s)"
       (String.length good)
       (String.concat "," (List.map string_of_int (List.rev !bad))))
    true (!bad = []);
  List.iter
    (fun k ->
      write_manifest (String.sub good 0 k);
      checkb (Printf.sprintf "prefix of %d bytes rejected" k) true (rejects ()))
    [ 0; 1; 7; 12; String.length good / 2; String.length good - 1 ];
  write_manifest (good ^ "\x00");
  checkb "trailing garbage rejected" true (rejects ());
  write_manifest good;
  checki "pristine manifest still reopens" 1
    (Amber.Live_engine.version (Amber.Live_engine.pin (Amber.Live_engine.open_dir dir)))

(* --- concurrency stress -------------------------------------------------- *)

(* One writer domain (updates, with periodic forced compactions) races
   four query domains for ~2 seconds. Readers check, on every pin: the
   epoch is never torn (version and generation move together and only
   forward), and a pinned epoch is referentially transparent — asking it
   the same query twice gives identical rows even while newer epochs
   land, which would fail if the per-epoch matcher caches leaked across
   epochs. *)
let test_concurrent_stress () =
  let live = Amber.Live_engine.of_engine (Amber.Engine.build base_triples) in
  let deadline = Unix.gettimeofday () +. 2.0 in
  let failure = Atomic.make None in
  let fail msg = Atomic.compare_and_set failure None (Some msg) |> ignore in
  let writer () =
    let rng = Datagen.Prng.create 0x77a17e in
    let i = ref 0 in
    while Unix.gettimeofday () < deadline && Atomic.get failure = None do
      incr i;
      let fresh =
        spo
          (Printf.sprintf "e%d" (Datagen.Prng.int rng 40))
          (Printf.sprintf "p%d" (Datagen.Prng.int rng 5))
          (Printf.sprintf "e%d" (Datagen.Prng.int rng 40))
      in
      let stale = List.nth base_triples (Datagen.Prng.int rng 5) in
      let ep =
        if Datagen.Prng.bool rng 0.8 then
          Amber.Live_engine.update live ~adds:[ fresh ] ~dels:[ stale ]
        else Amber.Live_engine.update live ~adds:[ stale ] ~dels:[ fresh ]
      in
      ignore ep;
      if !i mod 20 = 0 then ignore (Amber.Live_engine.compact live)
    done
  in
  let reader k () =
    let last_version = ref (-1) and last_generation = ref (-1) in
    while Unix.gettimeofday () < deadline && Atomic.get failure = None do
      let ep = Amber.Live_engine.pin live in
      let v = Amber.Live_engine.version ep in
      let g = Amber.Live_engine.generation ep in
      if v < !last_version then
        fail
          (Printf.sprintf "reader %d: version went backwards (%d after %d)" k
             v !last_version);
      if g < !last_generation then
        fail
          (Printf.sprintf "reader %d: generation went backwards (%d after %d)"
             k g !last_generation);
      last_version := v;
      last_generation := g;
      let eng = Amber.Live_engine.engine ep in
      let first = canonical eng probe_query in
      let second = canonical eng probe_query in
      if first <> second then
        fail
          (Printf.sprintf
             "reader %d: pinned epoch v%d answered differently twice (torn \
              epoch or cross-epoch cache entry)"
             k v)
    done
  in
  let domains =
    Domain.spawn writer :: List.init 4 (fun k -> Domain.spawn (reader k))
  in
  List.iter Domain.join domains;
  (match Atomic.get failure with
  | Some msg -> Alcotest.fail msg
  | None -> ());
  let final = Amber.Live_engine.pin live in
  checkb "writer made progress" true (Amber.Live_engine.version final > 10);
  checkb "compactions happened" true (Amber.Live_engine.generation final > 0)

(* Coverage floor for the randomized overlay property, mirroring the
   differential suite's accounting. *)
let test_overlay_coverage () =
  checkb
    (Printf.sprintf "overlay differential checked %d cases (>= 200)"
       !overlay_cases_checked)
    true
    (!overlay_cases_checked >= 200)

let suite =
  [
    ( "delta",
      [
        Alcotest.test_case "insert and delete compile" `Quick
          test_insert_and_delete;
        Alcotest.test_case "insert/remove cancellation" `Quick
          test_cancellation;
        Alcotest.test_case "delete everything" `Quick test_delete_everything;
        Qseed.to_alcotest prop_overlay_differential;
        Alcotest.test_case "overlay coverage >= 200 cases" `Quick
          test_overlay_coverage;
      ] );
    ( "live-engine",
      [
        Alcotest.test_case "snapshot isolation across update and compaction"
          `Quick test_pin_isolation;
        Alcotest.test_case "live directory roundtrip" `Quick
          test_persistence_roundtrip;
        Alcotest.test_case "crash mid-compaction recovers" `Quick
          test_crash_mid_compaction;
        Alcotest.test_case "every manifest byte flip rejected" `Quick
          test_manifest_every_byte;
        Alcotest.test_case "writer vs 4 readers vs compactions (2s)" `Slow
          test_concurrent_stress;
      ] );
  ]
