(* Randomized check of the extended evaluator: a reference
   implementation of the algebra combinators over the brute-force BGP
   evaluator must agree with Amber.Extended (which runs BGPs on the
   engine) on random algebra trees over random data. *)

module Reference = Baselines.Reference_eval

let checkb = Alcotest.(check bool)

type binding = (string * Rdf.Term.t) list

let compatible (a : binding) b =
  List.for_all
    (fun (v, t) ->
      match List.assoc_opt v b with
      | None -> true
      | Some t' -> Rdf.Term.equal t t')
    a

let merge (a : binding) b =
  List.fold_left
    (fun acc (v, t) -> if List.mem_assoc v acc then acc else (v, t) :: acc)
    a b

(* Reference algebra semantics over Reference.solutions, written
   independently of Amber.Extended. Generated filters are restricted to
   BOUND, equality and negation, re-implemented below with SPARQL's
   three-valued error handling. *)
let rec ref_eval triples (p : Sparql.Algebra.pattern) : binding list =
  match p with
  | Sparql.Algebra.Bgp [] -> [ [] ]
  | Sparql.Algebra.Bgp patterns ->
      Reference.solutions triples (Sparql.Ast.make Sparql.Ast.Select_all patterns)
  | Sparql.Algebra.Join (a, b) ->
      let right = ref_eval triples b in
      List.concat_map
        (fun mu_a ->
          List.filter_map
            (fun mu_b ->
              if compatible mu_a mu_b then Some (merge mu_a mu_b) else None)
            right)
        (ref_eval triples a)
  | Sparql.Algebra.Union (a, b) -> ref_eval triples a @ ref_eval triples b
  | Sparql.Algebra.Optional (a, b) ->
      let right = ref_eval triples b in
      List.concat_map
        (fun mu_a ->
          match
            List.filter_map
              (fun mu_b ->
                if compatible mu_a mu_b then Some (merge mu_a mu_b) else None)
              right
          with
          | [] -> [ mu_a ]
          | ext -> ext)
        (ref_eval triples a)
  | Sparql.Algebra.Filter (e, inner) ->
      List.filter (fun mu -> ref_filter mu e) (ref_eval triples inner)

(* Three-valued filter evaluation, as SPARQL requires: an unbound
   variable in a comparison is an error, and errors propagate through
   [!]; a row is kept only when the expression evaluates to true. *)
and ref_filter mu e =
  let rec ev = function
    | Sparql.Algebra.E_bound v -> `B (List.mem_assoc v mu)
    | Sparql.Algebra.E_not e -> (
        match ev e with `B b -> `B (not b) | `Err -> `Err)
    | Sparql.Algebra.E_eq (Sparql.Algebra.E_var a, Sparql.Algebra.E_var b) -> (
        match (List.assoc_opt a mu, List.assoc_opt b mu) with
        | Some t1, Some t2 -> `B (Rdf.Term.equal t1 t2)
        | _ -> `Err)
    | _ -> assert false (* generator only emits the cases above *)
  in
  match ev e with `B b -> b | `Err -> false

(* Random data and random algebra trees. *)
let random_triples rng =
  let n = 6 + Datagen.Prng.int rng 5 in
  let e i = Printf.sprintf "http://t/e%d" i in
  let p i = Printf.sprintf "http://t/p%d" i in
  List.init (18 + Datagen.Prng.int rng 15) (fun _ ->
      Rdf.Triple.spo
        (e (Datagen.Prng.int rng n))
        (p (Datagen.Prng.int rng 3))
        (Rdf.Term.iri (e (Datagen.Prng.int rng n))))

let random_bgp rng =
  let var () = Printf.sprintf "X%d" (Datagen.Prng.int rng 4) in
  let pred () = Printf.sprintf "http://t/p%d" (Datagen.Prng.int rng 3) in
  Sparql.Algebra.Bgp
    (List.init (1 + Datagen.Prng.int rng 2) (fun _ ->
         Sparql.Ast.pattern (Sparql.Ast.Var (var ()))
           (Sparql.Ast.Iri (pred ()))
           (Sparql.Ast.Var (var ()))))

let rec random_pattern rng depth =
  if depth = 0 then random_bgp rng
  else
    match Datagen.Prng.int rng 5 with
    | 0 -> Sparql.Algebra.Join (random_pattern rng (depth - 1), random_pattern rng (depth - 1))
    | 1 -> Sparql.Algebra.Union (random_pattern rng (depth - 1), random_pattern rng (depth - 1))
    | 2 ->
        Sparql.Algebra.Optional
          (random_pattern rng (depth - 1), random_pattern rng (depth - 1))
    | 3 ->
        let v = Printf.sprintf "X%d" (Datagen.Prng.int rng 4) in
        let e =
          if Datagen.Prng.bool rng 0.5 then Sparql.Algebra.E_bound v
          else
            Sparql.Algebra.E_eq
              ( Sparql.Algebra.E_var v,
                Sparql.Algebra.E_var (Printf.sprintf "X%d" (Datagen.Prng.int rng 4)) )
        in
        let e = if Datagen.Prng.bool rng 0.3 then Sparql.Algebra.E_not e else e in
        Sparql.Algebra.Filter (e, random_pattern rng (depth - 1))
    | _ -> random_bgp rng

let canon_bindings (bs : binding list) =
  List.sort compare
    (List.map
       (fun mu ->
         List.sort compare (List.map (fun (v, t) -> (v, Rdf.Term.to_string t)) mu))
       bs)

let prop_extended_matches_reference =
  QCheck.Test.make ~name:"extended evaluator = reference algebra" ~count:80
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create seed in
      let triples = random_triples rng in
      let engine = Amber.Engine.build triples in
      let pattern = random_pattern rng (1 + Datagen.Prng.int rng 2) in
      let q =
        {
          Sparql.Algebra.select = Sparql.Ast.Select_all;
          distinct = false;
          pattern;
          order_by = [];
          limit = None;
          offset = None;
        }
      in
      let got = Amber.Extended.query engine q in
      (* Rebuild bindings from the answer's rows. *)
      let got_bindings =
        List.map
          (fun row ->
            List.concat
              (List.map2
                 (fun v cell -> match cell with Some t -> [ (v, t) ] | None -> [])
                 got.Amber.Engine.variables row))
          got.Amber.Engine.rows
      in
      canon_bindings got_bindings = canon_bindings (ref_eval triples pattern))

let suite =
  [ ("algebra-reference", [ QCheck_alcotest.to_alcotest prop_extended_matches_reference ]) ]
