(* Tests for the extended SPARQL algebra (UNION / OPTIONAL / FILTER). *)

module Reference = Baselines.Reference_eval

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let x res = "http://dbpedia.org/resource/" ^ res
let y prop = "http://dbpedia.org/ontology/" ^ prop

let engine = lazy (Amber.Engine.build Fixtures.paper_triples)

let run ?open_objects src =
  Amber.Extended.query_string ?open_objects (Lazy.force engine) src

(* --- parsing ---------------------------------------------------------- *)

let test_parse_algebra_shapes () =
  let q src = Sparql.Parser.parse_algebra src in
  (match (q "SELECT * WHERE { { ?a <http://p> ?b } UNION { ?a <http://q> ?b } }").pattern with
  | Sparql.Algebra.Union (Sparql.Algebra.Bgp [ _ ], Sparql.Algebra.Bgp [ _ ]) -> ()
  | _ -> Alcotest.fail "expected a union of two BGPs");
  (match (q "SELECT * WHERE { ?a <http://p> ?b OPTIONAL { ?b <http://q> ?c } }").pattern with
  | Sparql.Algebra.Optional (Sparql.Algebra.Bgp [ _ ], Sparql.Algebra.Bgp [ _ ]) -> ()
  | _ -> Alcotest.fail "expected optional");
  (match (q "SELECT * WHERE { ?a <http://p> ?b . FILTER(?b != <http://x>) }").pattern with
  | Sparql.Algebra.Filter (Sparql.Algebra.E_neq _, Sparql.Algebra.Bgp [ _ ]) -> ()
  | _ -> Alcotest.fail "expected filter over bgp");
  (* Filters scope over the whole group regardless of position. *)
  match
    (q "SELECT * WHERE { FILTER(?b > 3) ?a <http://p> ?b . ?b <http://q> ?c }").pattern
  with
  | Sparql.Algebra.Filter (Sparql.Algebra.E_gt _, Sparql.Algebra.Bgp [ _; _ ]) -> ()
  | _ -> Alcotest.fail "expected filter wrapping the group"

let test_parse_expr_precedence () =
  match
    (Sparql.Parser.parse_algebra
       "SELECT * WHERE { ?a <http://p> ?b FILTER(?b = 1 || ?b = 2 && !BOUND(?c)) }")
      .pattern
  with
  | Sparql.Algebra.Filter
      ( Sparql.Algebra.E_or
          ( Sparql.Algebra.E_eq _,
            Sparql.Algebra.E_and (Sparql.Algebra.E_eq _, Sparql.Algebra.E_not _) ),
        _ ) ->
      ()
  | _ -> Alcotest.fail "|| must bind looser than &&"

let test_parse_errors () =
  let bad src =
    match Sparql.Parser.parse_algebra_result src with
    | Error _ -> true
    | Ok _ -> false
  in
  checkb "dangling union" true (bad "SELECT * WHERE { { ?a <http://p> ?b } UNION }");
  checkb "filter without parens" true (bad "SELECT * WHERE { FILTER ?a <http://p> ?b }");
  checkb "unclosed group" true (bad "SELECT * WHERE { ?a <http://p> ?b");
  checkb "bad operator" true (bad "SELECT * WHERE { ?a <http://p> ?b FILTER(?b & 1) }")

(* --- evaluation -------------------------------------------------------- *)

let test_basic_equivalence () =
  (* Without algebra operators the extended evaluator matches the basic
     engine. *)
  let src = Fixtures.paper_query_text in
  let basic = Amber.Engine.query_string (Lazy.force engine) src in
  let ext = run src in
  checkb "same rows" true
    (Reference.canonical_rows basic.Amber.Engine.rows
    = Reference.canonical_rows ext.Amber.Engine.rows)

let test_union () =
  let a =
    run
      (Printf.sprintf
         {|SELECT ?p WHERE {
             { ?p <%s> <%s> } UNION { ?p <%s> <%s> }
           }|}
         (y "wasBornIn") (x "London") (y "livedIn") (x "United_States"))
  in
  (* Born in London: Nolan, Amy. Lived in US: Amy, Blake — 4 rows. *)
  checki "union is a bag" 4 (List.length a.Amber.Engine.rows)

let test_union_three_way () =
  let a =
    run
      (Printf.sprintf
         {|SELECT ?p WHERE {
             { ?p <%s> <%s> } UNION { ?p <%s> <%s> } UNION { ?p <%s> <%s> }
           }|}
         (y "wasBornIn") (x "London") (y "diedIn") (x "London") (y "livedIn")
         (x "England"))
  in
  checki "three branches" 4 (List.length a.Amber.Engine.rows)

let test_optional_bound_and_unbound () =
  let a =
    run
      (Printf.sprintf
         {|SELECT ?p ?spouse WHERE {
             ?p <%s> <%s> .
             OPTIONAL { ?p <%s> ?spouse }
           }|}
         (y "wasBornIn") (x "London") (y "wasMarriedTo"))
  in
  checki "both birth rows survive" 2 (List.length a.Amber.Engine.rows);
  let bound, unbound =
    List.partition
      (fun row -> match row with [ _; Some _ ] -> true | _ -> false)
      a.Amber.Engine.rows
  in
  checki "amy has a spouse" 1 (List.length bound);
  checki "nolan survives unextended" 1 (List.length unbound)

let test_optional_with_filter_bound () =
  (* People born in London with no recorded marriage. *)
  let a =
    run
      (Printf.sprintf
         {|SELECT ?p WHERE {
             ?p <%s> <%s> .
             OPTIONAL { ?p <%s> ?spouse }
             FILTER(!BOUND(?spouse))
           }|}
         (y "wasBornIn") (x "London") (y "wasMarriedTo"))
  in
  (match a.Amber.Engine.rows with
  | [ [ Some (Rdf.Term.Iri iri) ] ] ->
      Alcotest.(check string) "nolan" (x "Christopher_Nolan") iri
  | _ -> Alcotest.fail "expected exactly nolan")

let test_filter_equality () =
  let a =
    run
      (Printf.sprintf
         {|SELECT ?a ?b WHERE { ?a <%s> ?c . ?b <%s> ?c . FILTER(?a != ?b) }|}
         (y "livedIn") (y "livedIn"))
  in
  (* livedIn pairs sharing a place: (Amy, Blake) both in US, both
     orders. *)
  checki "two distinct-pair rows" 2 (List.length a.Amber.Engine.rows)

let test_filter_numeric () =
  let src cmp =
    Printf.sprintf {|SELECT ?s WHERE { ?s <%s> ?c . FILTER(?c %s) }|}
      (y "hasCapacityOf") cmp
  in
  let count cmp =
    List.length (run ~open_objects:true (src cmp)).Amber.Engine.rows
  in
  checki ">= 90000 keeps wembley" 1 (count ">= 90000");
  checki "> 90000 drops it" 0 (count "> 90000");
  checki "< 100000 keeps it" 1 (count "< 100000");
  checki "= 90000 keeps it" 1 (count "= 90000")

let test_filter_regex () =
  let a =
    run
      (Printf.sprintf
         {|SELECT ?p WHERE { ?p <%s> ?c . FILTER(REGEX(?p, "Amy")) }|}
         (y "wasBornIn"))
  in
  checki "regex on IRI" 1 (List.length a.Amber.Engine.rows)

let test_filter_type_error_is_false () =
  (* Comparing an unbound variable never matches, instead of raising. *)
  let a =
    run
      (Printf.sprintf
         {|SELECT ?p WHERE { ?p <%s> ?c . FILTER(?ghost = 1) }|} (y "wasBornIn"))
  in
  checki "unbound comparison eliminates all" 0 (List.length a.Amber.Engine.rows)

let test_join_of_groups () =
  let a =
    run
      (Printf.sprintf
         {|SELECT ?p ?band WHERE {
             { ?p <%s> <%s> } { ?p <%s> ?band }
           }|}
         (y "diedIn") (x "London") (y "wasPartOf"))
  in
  checki "join across groups" 1 (List.length a.Amber.Engine.rows)

let test_limit_and_distinct () =
  let a =
    run
      (Printf.sprintf
         {|SELECT DISTINCT ?p WHERE {
             { ?p <%s> <%s> } UNION { ?p <%s> <%s> }
           } LIMIT 10|}
         (y "wasBornIn") (x "London") (y "diedIn") (x "London"))
  in
  (* Nolan, Amy (born), Amy (died) → distinct = 2. *)
  checki "distinct over union" 2 (List.length a.Amber.Engine.rows);
  let b =
    run
      (Printf.sprintf
         {|SELECT ?p WHERE {
             { ?p <%s> <%s> } UNION { ?p <%s> <%s> }
           } LIMIT 2|}
         (y "wasBornIn") (x "London") (y "diedIn") (x "London"))
  in
  checki "limit applies" 2 (List.length b.Amber.Engine.rows);
  checkb "truncated flag" true b.Amber.Engine.truncated

let test_timeout () =
  let big = Datagen.Lubm.generate ~universities:1 () in
  let e = Amber.Engine.build big in
  let src =
    "SELECT * WHERE { { ?a <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t } \
     UNION { ?b <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t } }"
  in
  match Amber.Extended.query_string ~timeout:0.0 e src with
  | exception Amber.Deadline.Expired -> ()
  | _ -> Alcotest.fail "expected Deadline.Expired"

let suite =
  [
    ( "sparql.algebra",
      [
        Alcotest.test_case "pattern shapes" `Quick test_parse_algebra_shapes;
        Alcotest.test_case "expression precedence" `Quick test_parse_expr_precedence;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
      ] );
    ( "amber.extended",
      [
        Alcotest.test_case "basic equivalence" `Quick test_basic_equivalence;
        Alcotest.test_case "union" `Quick test_union;
        Alcotest.test_case "three-way union" `Quick test_union_three_way;
        Alcotest.test_case "optional" `Quick test_optional_bound_and_unbound;
        Alcotest.test_case "optional + !bound" `Quick test_optional_with_filter_bound;
        Alcotest.test_case "filter equality" `Quick test_filter_equality;
        Alcotest.test_case "filter numeric" `Quick test_filter_numeric;
        Alcotest.test_case "filter regex" `Quick test_filter_regex;
        Alcotest.test_case "filter type error" `Quick test_filter_type_error_is_false;
        Alcotest.test_case "group join" `Quick test_join_of_groups;
        Alcotest.test_case "limit and distinct" `Quick test_limit_and_distinct;
        Alcotest.test_case "timeout" `Quick test_timeout;
      ] );
  ]
