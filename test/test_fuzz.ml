(* Robustness fuzzing: every parser must either succeed or fail with its
   own documented exception — never crash with anything else — on
   arbitrary byte soup and on mutated valid inputs. *)

let gen_garbage =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 1 255)) (int_range 0 200))

(* Mutations of valid documents: flip a byte, truncate, duplicate. *)
let mutate rng s =
  if String.length s = 0 then s
  else
    match Datagen.Prng.int rng 3 with
    | 0 ->
        let i = Datagen.Prng.int rng (String.length s) in
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (1 + Datagen.Prng.int rng 255));
        Bytes.to_string b
    | 1 -> String.sub s 0 (Datagen.Prng.int rng (String.length s))
    | _ -> s ^ s

let valid_nt = Rdf.Ntriples.to_string Fixtures.paper_triples

let valid_sparql = Fixtures.paper_query_text

let valid_turtle =
  {|@prefix ex: <http://e/> . ex:a ex:p ex:b ; ex:q "v"@en , 42 .|}

let valid_binary =
  let buf = Buffer.create 256 in
  Rdf.Binary.write buf Fixtures.paper_triples;
  Buffer.contents buf

let total_attempts = 400

let no_crash name parse inputs =
  QCheck.Test.make ~name ~count:total_attempts
    (QCheck.make QCheck.Gen.(pair gen_garbage int))
    (fun (garbage, seed) ->
      let rng = Datagen.Prng.create seed in
      let candidates = garbage :: List.map (mutate rng) inputs in
      List.for_all
        (fun src -> match parse src with `Handled -> true | `Crash -> false)
        candidates)

let prop_ntriples =
  no_crash "ntriples parser never crashes"
    (fun src ->
      match Rdf.Ntriples.parse_string src with
      | _ -> `Handled
      | exception Rdf.Ntriples.Parse_error _ -> `Handled
      | exception _ -> `Crash)
    [ valid_nt ]

let prop_turtle =
  no_crash "turtle parser never crashes"
    (fun src ->
      match Rdf.Turtle.parse_string src with
      | _ -> `Handled
      | exception Rdf.Turtle.Parse_error _ -> `Handled
      | exception _ -> `Crash)
    [ valid_turtle; valid_nt ]

let prop_sparql =
  no_crash "sparql parser never crashes"
    (fun src ->
      match Sparql.Parser.parse src with
      | _ -> `Handled
      | exception Sparql.Parser.Error _ -> `Handled
      | exception _ -> `Crash)
    [ valid_sparql ]

let prop_sparql_algebra =
  no_crash "algebra parser never crashes"
    (fun src ->
      match Sparql.Parser.parse_algebra src with
      | _ -> `Handled
      | exception Sparql.Parser.Error _ -> `Handled
      | exception _ -> `Crash)
    [ valid_sparql; "SELECT * WHERE { { ?a <http://p> ?b } UNION { ?a <http://q> ?b } FILTER(?b > 3) }" ]

let prop_binary =
  no_crash "binary reader never crashes"
    (fun src ->
      match Rdf.Binary.read src ~pos:0 with
      | _ -> `Handled
      | exception Rdf.Binary.Corrupt _ -> `Handled
      | exception _ -> `Crash)
    [ valid_binary ]

(* Any query the parser accepts must be answerable (or cleanly rejected
   as Unsupported) by the engine without crashing. *)
let prop_engine_total =
  let engine = lazy (Amber.Engine.build Fixtures.paper_triples) in
  QCheck.Test.make ~name:"engine is total on parseable queries" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_garbage int))
    (fun (garbage, seed) ->
      let rng = Datagen.Prng.create seed in
      let src = mutate rng valid_sparql ^ mutate rng garbage in
      match Sparql.Parser.parse src with
      | exception Sparql.Parser.Error _ -> true
      | ast -> (
          match Amber.Engine.query ~timeout:2.0 (Lazy.force engine) ast with
          | _ -> true
          | exception Amber.Engine.Unsupported _ -> true
          | exception Amber.Deadline.Expired -> true
          | exception _ -> false))

(* The engine fuzz, pushed down to the matcher: the parallel path must
   be just as total as the sequential one on whatever the parser lets
   through, and when both paths answer they must agree as row sets. *)
let prop_parallel_engine =
  let engine = lazy (Amber.Engine.build Fixtures.paper_triples) in
  QCheck.Test.make ~name:"parallel engine is total and agrees with sequential"
    ~count:150
    (QCheck.make QCheck.Gen.(pair gen_garbage int))
    (fun (garbage, seed) ->
      let rng = Datagen.Prng.create seed in
      let src = mutate rng valid_sparql ^ mutate rng garbage in
      match Sparql.Parser.parse src with
      | exception Sparql.Parser.Error _ -> true
      | ast -> (
          let run domains =
            match
              Amber.Engine.query ~timeout:2.0 ~domains (Lazy.force engine) ast
            with
            | a ->
                `Rows
                  (Baselines.Reference_eval.canonical_rows a.Amber.Engine.rows)
            | exception Amber.Engine.Unsupported _ -> `Unsupported
            | exception Amber.Deadline.Expired -> `Timeout
            | exception _ -> `Crash
          in
          match (run 1, run 3) with
          | `Crash, _ | _, `Crash -> false
          | `Timeout, _ | _, `Timeout -> true
          | a, b -> a = b))

let suite =
  [
    ( "fuzz",
      [
        Qseed.to_alcotest prop_ntriples;
        Qseed.to_alcotest prop_turtle;
        Qseed.to_alcotest prop_sparql;
        Qseed.to_alcotest prop_sparql_algebra;
        Qseed.to_alcotest prop_binary;
        Qseed.to_alcotest prop_engine_total;
        Qseed.to_alcotest prop_parallel_engine;
      ] );
  ]
