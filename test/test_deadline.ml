(* Cooperative deadline tests: expiry, remaining, never, and the
   poll-granularity contract (check consults the clock once every
   [poll_interval] calls). *)

let checkb = Alcotest.(check bool)

let test_never () =
  let d = Amber.Deadline.never in
  checkb "never expires" false (Amber.Deadline.expired d);
  checkb "infinite remaining" true (Amber.Deadline.remaining d = infinity);
  (* A million checks on [never] must neither raise nor touch the clock. *)
  for _ = 1 to 1_000_000 do
    Amber.Deadline.check d
  done

let test_expired_past_deadline () =
  let d = Amber.Deadline.after (-1.0) in
  checkb "already past" true (Amber.Deadline.expired d);
  checkb "negative remaining" true (Amber.Deadline.remaining d < 0.0)

let test_check_raises_within_poll_interval () =
  let d = Amber.Deadline.after (-1.0) in
  let raised_at = ref 0 in
  (try
     for i = 1 to 10 * Amber.Deadline.poll_interval do
       Amber.Deadline.check d;
       raised_at := i
     done
   with Amber.Deadline.Expired -> ());
  (* The clock is consulted on the [poll_interval]-th call, so a dead
     deadline must fire by then — and not before (cheap ticks only). *)
  checkb "fires within one poll window" true (!raised_at < Amber.Deadline.poll_interval);
  checkb "poll interval positive" true (Amber.Deadline.poll_interval > 0)

let test_remaining_counts_down () =
  let d = Amber.Deadline.after 60.0 in
  let r = Amber.Deadline.remaining d in
  checkb "remaining below budget" true (r <= 60.0);
  checkb "remaining not absurdly low" true (r > 50.0);
  checkb "not expired yet" false (Amber.Deadline.expired d);
  (* Checks within the budget pass. *)
  for _ = 1 to 3 * Amber.Deadline.poll_interval do
    Amber.Deadline.check d
  done

let test_granularity_resets_after_poll () =
  (* After a clock poll the tick counter resets: a fresh window of
     [poll_interval - 1] checks never touches the clock. Observable via
     a deadline that expires mid-test: all checks before the first poll
     are silent even though the wall clock is already past. *)
  let d = Amber.Deadline.after (-1.0) in
  let silent = ref 0 in
  (try
     for _ = 1 to Amber.Deadline.poll_interval - 1 do
       Amber.Deadline.check d;
       incr silent
     done
   with Amber.Deadline.Expired -> ());
  checkb "no poll before the window closes" true
    (!silent = Amber.Deadline.poll_interval - 1)

let suite =
  [
    ( "deadline",
      [
        Alcotest.test_case "never" `Quick test_never;
        Alcotest.test_case "expired" `Quick test_expired_past_deadline;
        Alcotest.test_case "check raises" `Quick test_check_raises_within_poll_interval;
        Alcotest.test_case "remaining" `Quick test_remaining_counts_down;
        Alcotest.test_case "poll granularity" `Quick test_granularity_resets_after_poll;
      ] );
  ]
