(* Query flight recorder: ring semantics, deterministic sampling, the
   slow/non-Ok capture guarantees, the JSONL sink, what the engine entry
   points record, domain-safe tracing of the parallel matcher, and the
   resident-memory accounting behind amber_index_resident_bytes. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

(* A record to offer; the recorder overwrites [id] and [slow] itself. *)
let mk ?(status = Obs.Query_log.Ok) ?(seconds = 0.01) ?(rows = 1) query =
  {
    Obs.Query_log.id = 0;
    at = Unix.gettimeofday ();
    query;
    hash = Obs.Query_log.hash_query query;
    status;
    seconds;
    rows;
    truncated = false;
    domains = 1;
    core_order = [ [ "s" ] ];
    plan_mode = "paper";
    plan_seeds = [ ("s", "rtree", 10, 10) ];
    rewrites = [];
    phases = [ ("decompose", 0.001); ("match", 0.008) ];
    candidates_scanned = 10;
    solutions = rows;
    index_probes = 4;
    cache_hits = 2;
    cache_misses = 1;
    analysis = Some "ok";
    gc = Obs.Resource.zero_delta;
    slow = false;
  }

let test_ring_eviction () =
  let log = Obs.Query_log.create ~capacity:3 () in
  for i = 1 to 5 do
    Obs.Query_log.record log (mk (Printf.sprintf "SELECT %d" i))
  done;
  let recent = Obs.Query_log.recent log in
  checki "capacity bounds the ring" 3 (List.length recent);
  (* Ids are 0-based capture sequence numbers. *)
  checkb "newest first, oldest evicted" true
    (List.map (fun r -> r.Obs.Query_log.id) recent = [ 4; 3; 2 ]);
  let seen, captured, sampled_out = Obs.Query_log.stats log in
  checki "seen" 5 seen;
  checki "captured" 5 captured;
  checki "sampled out" 0 sampled_out;
  checki "n caps recent" 2 (List.length (Obs.Query_log.recent ~n:2 log));
  Obs.Query_log.clear log;
  checki "clear empties" 0 (List.length (Obs.Query_log.recent log))

let test_deterministic_sampling () =
  (* Rate 0.25 keeps every 4th Ok record — an accumulator, not a coin
     flip, so the outcome is exact and repeatable. *)
  let log = Obs.Query_log.create ~capacity:32 () in
  Obs.Query_log.configure ~sample_rate:0.25 log;
  for i = 1 to 8 do
    Obs.Query_log.record log (mk (Printf.sprintf "SELECT %d" i))
  done;
  let _, captured, sampled_out = Obs.Query_log.stats log in
  checki "every 4th kept" 2 captured;
  checki "rest sampled out" 6 sampled_out;
  (* The same offers against a fresh recorder capture identically. *)
  let log' = Obs.Query_log.create ~capacity:32 () in
  Obs.Query_log.configure ~sample_rate:0.25 log';
  for i = 1 to 8 do
    Obs.Query_log.record log' (mk (Printf.sprintf "SELECT %d" i))
  done;
  checkb "reproducible" true
    (List.map (fun r -> r.Obs.Query_log.query) (Obs.Query_log.recent log')
    = List.map (fun r -> r.Obs.Query_log.query) (Obs.Query_log.recent log))

let test_slow_and_failures_always_captured () =
  let log = Obs.Query_log.create ~capacity:32 () in
  Obs.Query_log.configure ~sample_rate:0.0 ~slow_threshold:(Some 0.005) log;
  Obs.Query_log.record log (mk ~seconds:0.001 "SELECT fast");
  Obs.Query_log.record log (mk ~seconds:0.02 "SELECT slow");
  Obs.Query_log.record log (mk ~status:Obs.Query_log.Timeout "SELECT late");
  Obs.Query_log.record log
    (mk ~status:(Obs.Query_log.Error "boom") "SELECT broken");
  Obs.Query_log.record log (mk ~status:Obs.Query_log.Unsat "SELECT empty");
  let recent = Obs.Query_log.recent log in
  checki "rate 0 still captures the interesting ones" 4 (List.length recent);
  checkb "fast Ok sampled out" false
    (List.exists (fun r -> r.Obs.Query_log.query = "SELECT fast") recent);
  (match
     List.find_opt (fun r -> r.Obs.Query_log.query = "SELECT slow") recent
   with
  | Some r -> checkb "slow flag assigned at capture" true r.Obs.Query_log.slow
  | None -> Alcotest.fail "slow query must be captured");
  checkb "statuses preserved" true
    (List.exists
       (fun r -> r.Obs.Query_log.status = Obs.Query_log.Timeout)
       recent
    && List.exists
         (fun r -> r.Obs.Query_log.status = Obs.Query_log.Error "boom")
         recent
    && List.exists
         (fun r -> r.Obs.Query_log.status = Obs.Query_log.Unsat)
         recent)

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "amber_flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let log = Obs.Query_log.create ~capacity:8 () in
      Obs.Query_log.set_sink log (Some path);
      checkb "sink path" true (Obs.Query_log.sink_path log = Some path);
      Obs.Query_log.record log (mk ~rows:3 "SELECT a");
      Obs.Query_log.record log
        (mk ~status:(Obs.Query_log.Error {|quote " and \ slash|}) "SELECT b");
      Obs.Query_log.set_sink log None;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      checki "one line per record" 2 (List.length lines);
      List.iter
        (fun line ->
          match Obs.Json.parse_opt line with
          | None -> Alcotest.fail ("sink line is not valid JSON: " ^ line)
          | Some _ -> ())
        lines;
      let first = Obs.Json.parse (List.hd lines) in
      let str k = Option.bind (Obs.Json.member k first) Obs.Json.to_string in
      let num k = Option.bind (Obs.Json.member k first) Obs.Json.to_float in
      checkb "query text" true (str "query" = Some "SELECT a");
      checkb "hash matches" true
        (str "hash" = Some (Obs.Query_log.hash_query "SELECT a"));
      checkb "status slug" true (str "status" = Some "ok");
      checkb "rows" true (num "rows" = Some 3.);
      checkb "phases object" true
        (match Obs.Json.member "phases" first with
        | Some (Obs.Json.Obj fields) -> List.mem_assoc "match" fields
        | _ -> false);
      checkb "gc delta embedded" true
        (match Obs.Json.member "gc" first with
        | Some gc -> Obs.Json.member "allocated_bytes" gc <> None
        | None -> false);
      (* The error message with JSON metacharacters round-trips. *)
      let second = Obs.Json.parse (List.nth lines 1) in
      checkb "error message" true
        (Option.bind (Obs.Json.member "error" second) Obs.Json.to_string
        = Some {|quote " and \ slash|}))

(* --- what the engine records ---------------------------------------- *)

let flight_engine = lazy (Amber.Engine.build Fixtures.paper_triples)

let reset_default_log () =
  Obs.Query_log.configure ~sample_rate:1.0 ~slow_threshold:None
    Obs.Query_log.default;
  Obs.Query_log.set_sink Obs.Query_log.default None;
  Obs.Query_log.clear Obs.Query_log.default

let test_engine_records_ok () =
  reset_default_log ();
  let e = Lazy.force flight_engine in
  let ast = Sparql.Parser.parse Fixtures.paper_query_text in
  let answer = Amber.Engine.query e ast in
  match Obs.Query_log.recent ~n:1 Obs.Query_log.default with
  | [ r ] ->
      checkb "status ok" true (r.Obs.Query_log.status = Obs.Query_log.Ok);
      checks "canonical text" (Sparql.Ast.to_string ast) r.Obs.Query_log.query;
      checks "hash of canonical text"
        (Obs.Query_log.hash_query (Sparql.Ast.to_string ast))
        r.Obs.Query_log.hash;
      checki "rows" (List.length answer.Amber.Engine.rows) r.Obs.Query_log.rows;
      checkb "phases recorded" true
        (List.for_all
           (fun p -> List.mem_assoc p r.Obs.Query_log.phases)
           [ "decompose"; "analyze"; "match"; "enumerate" ]);
      checkb "core order recorded" true (r.Obs.Query_log.core_order <> []);
      checkb "analysis ran" true (r.Obs.Query_log.analysis = Some "ok");
      checkb "some allocation attributed" true
        (Obs.Resource.allocated_bytes r.Obs.Query_log.gc > 0.);
      checkb "duration plausible" true (r.Obs.Query_log.seconds >= 0.)
  | rs -> Alcotest.failf "expected exactly one record, got %d" (List.length rs)

let test_engine_records_unsat () =
  reset_default_log ();
  let e = Lazy.force flight_engine in
  let ast =
    Sparql.Parser.parse
      {|SELECT ?s WHERE { ?s <http://amber.invalid/no-such-predicate> ?o }|}
  in
  let answer = Amber.Engine.query e ast in
  checki "no rows" 0 (List.length answer.Amber.Engine.rows);
  match Obs.Query_log.recent ~n:1 Obs.Query_log.default with
  | [ r ] ->
      checkb "status unsat" true (r.Obs.Query_log.status = Obs.Query_log.Unsat);
      checkb "analyzer outcome" true (r.Obs.Query_log.analysis = Some "unsat")
  | rs -> Alcotest.failf "expected exactly one record, got %d" (List.length rs)

let test_engine_records_timeout () =
  reset_default_log ();
  (* A workload big enough that the matcher's amortized deadline polling
     (every 256 checks) is guaranteed to fire on an already-dead clock. *)
  let e = Amber.Engine.build (Datagen.Lubm.generate ~seed:7 ~universities:1 ()) in
  let ub l = "http://swat.lehigh.edu/onto/univ-bench.owl#" ^ l in
  let ast =
    Sparql.Parser.parse
      (Printf.sprintf
         "SELECT * WHERE { ?s <%s> ?prof . ?prof <%s> ?dept . ?s <%s> ?dept }"
         (ub "advisor") (ub "worksFor") (ub "memberOf"))
  in
  (match Amber.Engine.query ~timeout:(-1.0) e ast with
  | _ -> Alcotest.fail "a negative timeout must expire"
  | exception Amber.Deadline.Expired -> ());
  match Obs.Query_log.recent ~n:1 Obs.Query_log.default with
  | [ r ] ->
      checkb "status timeout" true
        (r.Obs.Query_log.status = Obs.Query_log.Timeout)
  | rs -> Alcotest.failf "expected exactly one record, got %d" (List.length rs)

let test_profiled_parallel_tree () =
  (* The acceptance criterion for domain-safe tracing: a profiled query
     at domains:4 yields a complete merged phase tree — worker chunks
     appear under the match span with their own domain ids. *)
  reset_default_log ();
  let e = Lazy.force flight_engine in
  let _, p =
    Amber.Engine.query_string_profiled ~domains:4 e Fixtures.paper_query_text
  in
  let span = p.Amber.Profile.span in
  let match_span =
    match Obs.Span.find span "match" with
    | Some s -> s
    | None -> Alcotest.fail "match phase missing"
  in
  let chunks =
    List.filter (fun k -> Obs.Span.name k = "chunk") (Obs.Span.children match_span)
  in
  checkb "worker chunks merged into the tree" true (chunks <> []);
  List.iter
    (fun chunk ->
      checkb "chunk annotated with component" true
        (List.mem_assoc "component" (Obs.Span.meta chunk));
      checkb "chunk annotated with seeds" true
        (List.mem_assoc "seeds" (Obs.Span.meta chunk)))
    chunks;
  (* Which domain ran each chunk is the pool's choice (the caller
     steals work too, so on a small host every chunk may land on the
     root domain) — but each chunk must carry a valid domain id, and
     the exported trace must put every span in its own domain's lane. *)
  List.iter
    (fun chunk -> checkb "chunk domain id" true (Obs.Span.domain chunk >= 0))
    chunks;
  let events = Test_obs.check_chrome_trace (Obs.Span.to_chrome_json span) in
  let tids =
    List.sort_uniq compare
      (List.filter_map
         (fun ev -> Option.bind (Obs.Json.member "tid" ev) Obs.Json.to_float)
         events)
  in
  let span_domains =
    let rec walk s acc =
      List.fold_left
        (fun acc k -> walk k acc)
        (float_of_int (Obs.Span.domain s) :: acc)
        (Obs.Span.children s)
    in
    List.sort_uniq compare (walk span [])
  in
  checkb "trace lanes are exactly the recorded domains" true
    (tids = span_domains);
  (* And the flight record saw the same run. *)
  match Obs.Query_log.recent ~n:1 Obs.Query_log.default with
  | [ r ] ->
      checki "domains recorded" 4 r.Obs.Query_log.domains;
      checkb "profiled run has phases too" true
        (List.mem_assoc "match" r.Obs.Query_log.phases)
  | rs -> Alcotest.failf "expected exactly one record, got %d" (List.length rs)

(* --- concurrency ----------------------------------------------------- *)

let test_atomic_counter_stress () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "stress_total" in
  let per_domain = 50_000 in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Metrics.incr c
            done;
            Obs.Metrics.add c per_domain))
  in
  List.iter Domain.join workers;
  (* Atomic counters lose nothing: 4 × (50k incr + one add of 50k). *)
  checki "no lost increments" (4 * 2 * per_domain) (Obs.Metrics.counter_value c)

let test_query_log_stress () =
  let log = Obs.Query_log.create ~capacity:64 () in
  let per_domain = 100 in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Query_log.record log
                (mk (Printf.sprintf "SELECT d%d q%d" d i))
            done))
  in
  List.iter Domain.join workers;
  let seen, captured, sampled_out = Obs.Query_log.stats log in
  checki "all offers seen" (4 * per_domain) seen;
  checki "rate 1.0 captures all" (4 * per_domain) captured;
  checki "none sampled out" 0 sampled_out;
  let recent = Obs.Query_log.recent log in
  checki "ring full" 64 (List.length recent);
  let ids = List.map (fun r -> r.Obs.Query_log.id) recent in
  checki "ids unique under contention" 64
    (List.length (List.sort_uniq compare ids));
  (* 0-based ids: the ring holds exactly the last 64 of 0..399. *)
  checkb "ids dense at the top" true
    (List.sort compare ids
    = List.init 64 (fun i -> (4 * per_domain) - 64 + i))

(* --- resident-memory accounting -------------------------------------- *)

let test_resident_bytes () =
  let e = Lazy.force flight_engine in
  let resident = Amber.Engine.resident_bytes e in
  checkb "all four indexes reported" true
    (List.sort compare (List.map fst resident)
    = [ "adjacency"; "attribute"; "neighbourhood"; "synopsis" ]);
  List.iter
    (fun (name, bytes) ->
      checkb (name ^ " resident bytes positive") true (bytes > 0))
    resident;
  Amber.Engine.sync_resource_metrics e;
  let text = Obs.Metrics.render_prometheus Obs.Metrics.default in
  List.iter
    (fun (name, bytes) ->
      checkb (name ^ " gauge exported") true
        (contains text
           (Printf.sprintf {|amber_index_resident_bytes{index="%s"} %d|} name
              bytes)))
    resident

let suite =
  [
    ( "flight",
      [
        Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
        Alcotest.test_case "deterministic sampling" `Quick test_deterministic_sampling;
        Alcotest.test_case "slow and failures captured" `Quick
          test_slow_and_failures_always_captured;
        Alcotest.test_case "jsonl sink roundtrip" `Quick test_jsonl_sink_roundtrip;
        Alcotest.test_case "engine records ok" `Quick test_engine_records_ok;
        Alcotest.test_case "engine records unsat" `Quick test_engine_records_unsat;
        Alcotest.test_case "engine records timeout" `Quick test_engine_records_timeout;
        Alcotest.test_case "profiled parallel tree" `Quick test_profiled_parallel_tree;
        Alcotest.test_case "atomic counter stress" `Quick test_atomic_counter_stress;
        Alcotest.test_case "query log stress" `Quick test_query_log_stress;
        Alcotest.test_case "resident bytes" `Quick test_resident_bytes;
      ] );
  ]
