(* Aggregates every suite into one alcotest binary. *)

let () =
  Alcotest.run "amber"
    (List.concat
       [
         Test_rdf.suite;
         Test_turtle.suite;
         Test_mgraph.suite;
         Test_posting.suite;
         Test_rtree.suite;
         Test_otil.suite;
         Test_sparql.suite;
         Test_amber.suite;
         Test_matcher.suite;
         Test_deadline.suite;
         Test_obs.suite;
         Test_flight.suite;
         Test_extended.suite;
         Test_storage.suite;
         Test_snapshot.suite;
         Test_endpoint.suite;
         Test_order_by.suite;
         Test_forms.suite;
         Test_more_units.suite;
         Test_bench_util.suite;
         Test_baselines.suite;
         Test_datagen.suite;
         Test_cross.suite;
         Test_properties.suite;
         Test_fuzz.suite;
         Test_algebra_ref.suite;
         Test_parallel.suite;
         Test_differential.suite;
         Test_delta.suite;
         Test_analysis.suite;
         Test_rewrite.suite;
       ])
