(* Integration: all five engines must agree with the brute-force
   reference on randomized small datasets and generated workloads. *)

module Reference = Baselines.Reference_eval

let checkb = Alcotest.(check bool)

(* Random small multigraph with literal attributes, in the common
   fragment (object/datatype predicates disjoint). *)
let random_triples seed =
  let rng = Datagen.Prng.create seed in
  let n = 12 + Datagen.Prng.int rng 10 in
  let e i = Printf.sprintf "http://t/e%d" i in
  let p i = Printf.sprintf "http://t/p%d" i in
  let lp i = Printf.sprintf "http://t/lp%d" i in
  let triples = ref [] in
  for _ = 1 to 40 + Datagen.Prng.int rng 40 do
    let s = Datagen.Prng.int rng n and o = Datagen.Prng.int rng n in
    triples :=
      Rdf.Triple.spo (e s) (p (Datagen.Prng.int rng 5)) (Rdf.Term.iri (e o))
      :: !triples
  done;
  for v = 0 to n - 1 do
    if Datagen.Prng.bool rng 0.6 then
      triples :=
        Rdf.Triple.spo (e v)
          (lp (Datagen.Prng.int rng 2))
          (Rdf.Term.literal (Printf.sprintf "val%d" (Datagen.Prng.int rng 4)))
        :: !triples
  done;
  !triples

let engines_agree triples ast =
  let expected = Reference.canonical_answer triples ast in
  let run (type e) (module E : Baselines.Engine_sig.S with type t = e) =
    let store = E.load triples in
    let answer = E.query store ast in
    (E.name, Reference.canonical_rows answer.Baselines.Answer.rows)
  in
  let results =
    [
      run (module Baselines.Amber_adapter);
      run (module Baselines.Triple_store);
      run (module Baselines.Column_store);
      run (module Baselines.Nested_loop);
      run (module Baselines.Sig_store);
    ]
  in
  List.filter_map
    (fun (name, got) -> if got = expected then None else Some name)
    results

let pp_query ast = Sparql.Ast.to_string ast

let test_generated_workloads () =
  List.iter
    (fun seed ->
      let triples = random_triples seed in
      let corpus = Datagen.Workload.corpus triples in
      let queries =
        Datagen.Workload.generate ~seed corpus ~shape:Datagen.Workload.Star
          ~size:3 ~count:3
        @ Datagen.Workload.generate ~seed:(seed + 100) corpus
            ~shape:Datagen.Workload.Complex ~size:4 ~count:3
      in
      checkb "some queries generated" true (queries <> []);
      List.iter
        (fun ast ->
          match engines_agree triples ast with
          | [] -> ()
          | bad ->
              Alcotest.failf "seed %d: engines %s disagree on:\n%s" seed
                (String.concat ", " bad) (pp_query ast))
        queries)
    [ 1; 2; 3; 4; 5 ]

(* Hand-built adversarial patterns over random data. *)
let test_adversarial_patterns () =
  let p i = Printf.sprintf "http://t/p%d" i in
  let shapes =
    [
      (* triangle *)
      Printf.sprintf "SELECT * WHERE { ?a <%s> ?b . ?b <%s> ?c . ?c <%s> ?a }"
        (p 0) (p 1) (p 2);
      (* diamond *)
      Printf.sprintf
        "SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?c . ?b <%s> ?d . ?c <%s> ?d }"
        (p 0) (p 0) (p 1) (p 1);
      (* multi-edge pair *)
      Printf.sprintf "SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?b }" (p 0) (p 1);
      (* self loop + neighbour *)
      Printf.sprintf "SELECT * WHERE { ?a <%s> ?a . ?a <%s> ?b }" (p 0) (p 1);
      (* long path *)
      Printf.sprintf
        "SELECT * WHERE { ?a <%s> ?b . ?b <%s> ?c . ?c <%s> ?d . ?d <%s> ?e }"
        (p 0) (p 1) (p 0) (p 1);
      (* literal join *)
      Printf.sprintf
        {|SELECT * WHERE { ?a <http://t/lp0> "val1" . ?a <%s> ?b . ?b <http://t/lp1> "val2" }|}
        (p 2);
      (* distinct projection *)
      Printf.sprintf "SELECT DISTINCT ?a WHERE { ?a <%s> ?b . ?a <%s> ?c }" (p 1)
        (p 2);
    ]
  in
  List.iter
    (fun seed ->
      let triples = random_triples (1000 + seed) in
      List.iter
        (fun src ->
          let ast = Fixtures.parse_query src in
          match engines_agree triples ast with
          | [] -> ()
          | bad ->
              Alcotest.failf "seed %d: engines %s disagree on:\n%s" seed
                (String.concat ", " bad) src)
        shapes)
    [ 1; 2; 3 ]

(* AMbER variants (orderings, synopsis modes, decomposition off) agree. *)
let test_amber_internal_consistency () =
  List.iter
    (fun seed ->
      let triples = random_triples (2000 + seed) in
      let corpus = Datagen.Workload.corpus triples in
      let queries =
        Datagen.Workload.generate ~seed corpus ~shape:Datagen.Workload.Complex
          ~size:5 ~count:4
      in
      let rtree_engine = Amber.Engine.build triples in
      let scan_engine =
        Amber.Engine.build ~synopsis_mode:Amber.Synopsis_index.Scan triples
      in
      List.iter
        (fun ast ->
          let run engine strategy =
            let a = Amber.Engine.query ~strategy engine ast in
            Reference.canonical_rows a.Amber.Engine.rows
          in
          let base = run rtree_engine Amber.Decompose.Paper in
          List.iter
            (fun (engine, strategy) ->
              checkb "variant agrees" true (run engine strategy = base))
            [
              (rtree_engine, Amber.Decompose.By_degree);
              (rtree_engine, Amber.Decompose.Arbitrary);
              (scan_engine, Amber.Decompose.Paper);
            ])
        queries)
    [ 1; 2; 3 ]

(* LUBM smoke test: a realistic query answered identically by AMbER and
   the triple store. *)
let test_lubm_join () =
  let triples = Datagen.Lubm.generate ~universities:1 () in
  let ub l = "http://swat.lehigh.edu/onto/univ-bench.owl#" ^ l in
  let src =
    Printf.sprintf
      {|SELECT ?s ?prof ?dept WHERE {
          ?s <%s> ?prof .
          ?prof <%s> ?dept .
          ?s <%s> ?dept .
        }|}
      (ub "advisor") (ub "worksFor") (ub "memberOf")
  in
  let ast = Fixtures.parse_query src in
  let amber_store = Baselines.Amber_adapter.load triples in
  let ts = Baselines.Triple_store.load triples in
  let a1 =
    Reference.canonical_rows
      (Baselines.Amber_adapter.query amber_store ast).Baselines.Answer.rows
  in
  let a2 =
    Reference.canonical_rows (Baselines.Triple_store.query ts ast).Baselines.Answer.rows
  in
  checkb "non-empty" true (a1 <> []);
  checkb "amber = triple store on lubm" true (a1 = a2)

let suite =
  [
    ( "cross-engine",
      [
        Alcotest.test_case "generated workloads" `Slow test_generated_workloads;
        Alcotest.test_case "adversarial patterns" `Slow test_adversarial_patterns;
        Alcotest.test_case "amber internal consistency" `Slow
          test_amber_internal_consistency;
        Alcotest.test_case "lubm join" `Slow test_lubm_join;
      ] );
  ]
