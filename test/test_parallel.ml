(* The parallel engine's contracts: deterministic answers at every
   domain count, clean timeouts that leave the pool serviceable, exact
   limit/truncated accounting under chunk races, and thread-safety of
   the mutex-guarded caches the domains share. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ub l = "http://swat.lehigh.edu/onto/univ-bench.owl#" ^ l

let lubm = lazy (Datagen.Lubm.generate ~universities:1 ())
let engine = lazy (Amber.Engine.build (Lazy.force lubm))

let triangle_query =
  lazy
    (Sparql.Parser.parse
       (Printf.sprintf
          "SELECT * WHERE { ?s <%s> ?prof . ?prof <%s> ?dept . ?s <%s> ?dept }"
          (ub "advisor") (ub "worksFor") (ub "memberOf")))

let star_query =
  lazy
    (Sparql.Parser.parse
       (Printf.sprintf
          "SELECT * WHERE { ?x <%s> ?c . ?x <%s> ?d . ?x <%s> ?a }"
          (ub "takesCourse") (ub "memberOf") (ub "advisor")))

(* Without a row limit the parallel merge is deterministic: the rows —
   including their order — must be byte-identical to the sequential
   answer at every domain count, and across repeated runs. *)
let test_determinism () =
  let engine = Lazy.force engine in
  List.iter
    (fun ast ->
      let base = Amber.Engine.query engine ast in
      checkb "baseline non-empty" true (base.Amber.Engine.rows <> []);
      List.iter
        (fun domains ->
          let a = Amber.Engine.query ~domains engine ast in
          checkb
            (Printf.sprintf "domains=%d rows identical to sequential" domains)
            true
            (a.Amber.Engine.rows = base.Amber.Engine.rows
            && a.Amber.Engine.truncated = base.Amber.Engine.truncated))
        [ 1; 2; 3; 4 ];
      let r1 = Amber.Engine.query ~domains:4 engine ast in
      let r2 = Amber.Engine.query ~domains:4 engine ast in
      checkb "run-to-run identical at 4 domains" true
        (r1.Amber.Engine.rows = r2.Amber.Engine.rows))
    [ Lazy.force triangle_query; Lazy.force star_query ]

(* Matcher stats must merge to the same totals whatever the domain
   scheduling was (field-wise sums over the per-domain stats). *)
let test_stats_merge () =
  let engine = Lazy.force engine in
  let ast = Lazy.force triangle_query in
  let _, seq = Amber.Engine.query_with_stats engine ast in
  let _, par = Amber.Engine.query_with_stats ~domains:4 engine ast in
  checki "candidates_scanned equal" seq.Amber.Matcher.candidates_scanned
    par.Amber.Matcher.candidates_scanned;
  checki "solutions equal" seq.Amber.Matcher.solutions
    par.Amber.Matcher.solutions;
  checki "satellite_rejections equal" seq.Amber.Matcher.satellite_rejections
    par.Amber.Matcher.satellite_rejections

(* An expired deadline must surface as Deadline.Expired from every
   domain count, and the shared pool must keep serving queries
   afterwards — no orphaned workers, no poisoned queue. *)
let test_timeout () =
  let engine = Lazy.force engine in
  let ast = Lazy.force triangle_query in
  for _ = 1 to 3 do
    List.iter
      (fun domains ->
        match Amber.Engine.query ~timeout:1e-9 ~domains engine ast with
        | _ -> Alcotest.fail "expected Deadline.Expired"
        | exception Amber.Deadline.Expired -> ())
      [ 2; 4 ]
  done;
  let a = Amber.Engine.query ~domains:4 engine ast in
  checkb "pool serves queries after repeated timeouts" true
    (a.Amber.Engine.rows <> []);
  checkb "no orphaned workers" true
    (Amber.Domain_pool.workers (Amber.Domain_pool.global ())
    <= Amber.Domain_pool.max_workers)

(* Row limits under chunk races: the row count and the truncated flag
   are exact, and every returned row comes from the true answer set
   (which prefix is taken may differ from the sequential run). *)
let test_limit_truncated () =
  let engine = Lazy.force engine in
  let ast = Lazy.force triangle_query in
  let full = Amber.Engine.query engine ast in
  let n = List.length full.Amber.Engine.rows in
  checkb "enough rows to cut" true (n > 4);
  let full_set = List.sort_uniq compare full.Amber.Engine.rows in
  List.iter
    (fun domains ->
      let cut = Amber.Engine.query ~domains ~limit:(n / 2) engine ast in
      checki
        (Printf.sprintf "domains=%d limited row count" domains)
        (n / 2)
        (List.length cut.Amber.Engine.rows);
      checkb "truncated set" true cut.Amber.Engine.truncated;
      checkb "every limited row is a real solution" true
        (List.for_all
           (fun r -> List.mem r full_set)
           cut.Amber.Engine.rows);
      let uncut = Amber.Engine.query ~domains ~limit:(n + 10) engine ast in
      checkb "limit above total not truncated" true
        (not uncut.Amber.Engine.truncated);
      checkb "limit above total returns everything" true
        (uncut.Amber.Engine.rows = full.Amber.Engine.rows))
    [ 2; 4 ]

(* Hammer one mutex-guarded Lru from four domains: no crash, the
   amortized-eviction size bound holds, and the counters account for
   every lookup. *)
let test_lru_stress () =
  let cap = 64 in
  let lru = Amber.Lru.create ~cap in
  let mutex = Mutex.create () in
  let domains = 4 and lookups_per_domain = 5_000 in
  let worker i () =
    let rng = Datagen.Prng.create (0xca5e + i) in
    for _ = 1 to lookups_per_domain do
      let key =
        Array.init (1 + Datagen.Prng.int rng 3) (fun _ ->
            Datagen.Prng.int rng 300)
      in
      Array.sort compare key;
      Mutex.lock mutex;
      (match Amber.Lru.find lru key with
      | Some _ -> ()
      | None -> Amber.Lru.add lru key (Array.length key));
      Mutex.unlock mutex
    done
  in
  let handles = List.init domains (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join handles;
  checki "hits + misses = lookups"
    (domains * lookups_per_domain)
    (Amber.Lru.hits lru + Amber.Lru.misses lru);
  checkb "size bound (<= 2*cap)" true (Amber.Lru.length lru <= 2 * cap);
  checkb "cache retained something" true (Amber.Lru.length lru > 0)

(* The engine's own shared caches (attribute/synopsis LRUs behind the
   matcher's mutex) under concurrent queries from several domains —
   including nested parallel queries, so the pool is re-entered
   concurrently. Everybody must see the same answer. *)
let test_engine_concurrent_queries () =
  let engine = Lazy.force engine in
  let queries = [ Lazy.force triangle_query; Lazy.force star_query ] in
  let expected =
    List.map
      (fun ast -> (Amber.Engine.query engine ast).Amber.Engine.rows)
      queries
  in
  let worker domains () =
    List.map
      (fun ast -> (Amber.Engine.query ~domains engine ast).Amber.Engine.rows)
      queries
  in
  let handles =
    List.map (fun domains -> Domain.spawn (worker domains)) [ 1; 2; 1; 2 ]
  in
  let results = List.map Domain.join handles in
  List.iteri
    (fun i got ->
      checkb
        (Printf.sprintf "concurrent caller %d sees the sequential answer" i)
        true (got = expected))
    results

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "deterministic across domain counts" `Quick
          test_determinism;
        Alcotest.test_case "stats merge to sequential totals" `Quick
          test_stats_merge;
        Alcotest.test_case "timeout raises and pool survives" `Quick
          test_timeout;
        Alcotest.test_case "limit and truncated under chunk races" `Quick
          test_limit_truncated;
        Alcotest.test_case "lru stress from 4 domains" `Slow test_lru_stress;
        Alcotest.test_case "concurrent queries on one engine" `Slow
          test_engine_concurrent_queries;
      ] );
  ]
