(* SPARQL endpoint tests: pure request handling plus one real socket
   round trip served from a separate domain. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let engine = lazy (Amber.Engine.build Fixtures.paper_triples)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let config = { Endpoint.default_config with timeout = Some 5.0 }

let handle ?(meth = "GET") ?(headers = []) ?(body = "") target =
  Endpoint.handle_request config
    (Endpoint.Static (Lazy.force engine))
    ~meth ~target ~headers ~body

let test_url_decode () =
  checks "plus is space" "a b" (Endpoint.url_decode "a+b");
  checks "percent" "a&b=c" (Endpoint.url_decode "a%26b%3Dc");
  checks "utf8 bytes" "\xc3\xa9" (Endpoint.url_decode "%C3%A9");
  checks "broken escape passes through" "%zz" (Endpoint.url_decode "%zz")

let encode s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
          Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let simple_query =
  {|SELECT ?p WHERE { ?p <http://dbpedia.org/ontology/wasBornIn> ?c }|}

let test_get_query_json () =
  let status, ctype, body = handle ("/sparql?query=" ^ encode simple_query) in
  checki "200" 200 status;
  checks "json type" "application/sparql-results+json" ctype;
  checkb "amy in results" true (contains body "Amy_Winehouse");
  checkb "nolan in results" true (contains body "Christopher_Nolan")

let test_content_negotiation () =
  let _, ctype, body =
    handle ~headers:[ ("Accept", "text/csv") ] ("/sparql?query=" ^ encode simple_query)
  in
  checks "csv type" "text/csv" ctype;
  checkb "csv header row" true (contains body "p\r\n");
  let _, ctype, _ =
    handle
      ~headers:[ ("accept", "text/tab-separated-values") ]
      ("/sparql?query=" ^ encode simple_query)
  in
  checks "tsv type" "text/tab-separated-values" ctype

let test_post_forms () =
  let status, _, body =
    handle ~meth:"POST"
      ~headers:[ ("Content-Type", "application/x-www-form-urlencoded") ]
      ~body:("query=" ^ encode simple_query)
      "/sparql"
  in
  checki "urlencoded post" 200 status;
  checkb "has rows" true (contains body "Amy_Winehouse");
  let status, _, body =
    handle ~meth:"POST"
      ~headers:[ ("Content-Type", "application/sparql-query") ]
      ~body:simple_query "/sparql"
  in
  checki "raw post" 200 status;
  checkb "has rows too" true (contains body "Amy_Winehouse")

let test_extended_routing () =
  let src =
    {|SELECT ?p WHERE { { ?p <http://dbpedia.org/ontology/wasBornIn> ?c } UNION { ?p <http://dbpedia.org/ontology/diedIn> ?c } }|}
  in
  let status, _, body = handle ("/sparql?query=" ^ encode src) in
  checki "union accepted" 200 status;
  checkb "rows" true (contains body "Amy_Winehouse")

let test_errors () =
  let status, _, _ = handle "/sparql" in
  checki "missing query" 400 status;
  let status, _, _ = handle ("/sparql?query=" ^ encode "SELEC nope") in
  checki "parse error" 400 status;
  let status, _, _ = handle "/nowhere" in
  checki "not found" 404 status;
  let status, _, _ = handle ~meth:"DELETE" "/sparql" in
  checki "method not allowed" 405 status;
  let status, _, body = handle "/" in
  checki "service description" 200 status;
  checkb "mentions /sparql" true (contains body "/sparql")

let test_metrics_route () =
  (* Prime the counters with one query, then scrape. *)
  let _ = handle ("/sparql?query=" ^ encode simple_query) in
  let status, ctype, body = handle "/metrics" in
  checki "200" 200 status;
  checkb "prometheus content type" true (contains ctype "text/plain");
  checkb "query counter" true (contains body "amber_queries_total");
  checkb "latency histogram" true (contains body "amber_query_seconds_bucket");
  checkb "inf bucket" true (contains body "le=\"+Inf\"");
  checkb "request counter" true (contains body "amber_http_requests_total");
  checkb "index probes" true (contains body "amber_attribute_index_probes_total")

let test_profile_param () =
  let status, ctype, body =
    handle ("/sparql?profile=1&query=" ^ encode simple_query)
  in
  checki "200" 200 status;
  checks "still json" "application/sparql-results+json" ctype;
  checkb "rows intact" true (contains body "Amy_Winehouse");
  checkb "profile embedded" true (contains body "\"profile\":");
  checkb "phase tree present" true (contains body "\"phases\"");
  (* Non-JSON formats ignore the flag rather than corrupting output. *)
  let _, ctype, body =
    handle ~headers:[ ("Accept", "text/csv") ]
      ("/sparql?profile=1&query=" ^ encode simple_query)
  in
  checks "csv unaffected" "text/csv" ctype;
  checkb "no profile in csv" false (contains body "\"profile\":")

let test_domains_param () =
  let _, _, expected = handle ("/sparql?query=" ^ encode simple_query) in
  (* The parallel path must be invisible in the response body. *)
  List.iter
    (fun d ->
      let status, ctype, body =
        handle
          (Printf.sprintf "/sparql?domains=%d&query=%s" d (encode simple_query))
      in
      checki "200" 200 status;
      checks "json type" "application/sparql-results+json" ctype;
      checkb
        (Printf.sprintf "domains=%d body identical to sequential" d)
        true (body = expected))
    [ 1; 2; 4 ];
  (* Out-of-range values are clamped, not rejected. *)
  let status, _, _ = handle ("/sparql?domains=99&query=" ^ encode simple_query) in
  checki "clamped, still 200" 200 status;
  (* Garbage values fall back to the config default (sequential). *)
  let status, _, body =
    handle ("/sparql?domains=lots&query=" ^ encode simple_query)
  in
  checki "garbage ignored, still 200" 200 status;
  checkb "rows intact" true (contains body "Amy_Winehouse");
  (* The profiled path annotates the match span with the domain count. *)
  let _, _, body =
    handle ("/sparql?profile=1&domains=2&query=" ^ encode simple_query)
  in
  checkb "profile carries domains annotation" true (contains body "domains")

let test_healthz () =
  let status, ctype, body = handle "/healthz" in
  checki "200" 200 status;
  checks "json type" "application/json" ctype;
  let json = Obs.Json.parse body in
  checkb "liveness ok" true
    (Option.bind (Obs.Json.member "status" json) Obs.Json.to_string
    = Some "ok");
  checkb "version advertised" true
    (Option.bind (Obs.Json.member "version" json) Obs.Json.to_string
    = Some Amber.Version.version);
  (* The build-info gauge carries the same version as a label. *)
  let _, _, metrics = handle "/metrics" in
  checkb "build info gauge" true
    (contains metrics
       (Printf.sprintf {|amber_build_info{version="%s"} 1|}
          Amber.Version.version))

let test_queries_route () =
  Obs.Query_log.configure ~sample_rate:1.0 ~slow_threshold:None
    Obs.Query_log.default;
  Obs.Query_log.clear Obs.Query_log.default;
  let _ = handle ("/sparql?query=" ^ encode simple_query) in
  let _ = handle ("/sparql?query=" ^ encode simple_query) in
  let status, ctype, body = handle "/queries" in
  checki "200" 200 status;
  checks "json type" "application/json" ctype;
  let records = Obs.Json.to_list (Obs.Json.parse body) in
  checki "both queries recorded" 2 (List.length records);
  let newest = List.hd records in
  let str k = Option.bind (Obs.Json.member k newest) Obs.Json.to_string in
  let num k = Option.bind (Obs.Json.member k newest) Obs.Json.to_float in
  checkb "status ok" true (str "status" = Some "ok");
  checkb "timing present" true
    (match num "seconds" with Some s -> s >= 0. | None -> false);
  checkb "rows counted" true (match num "rows" with Some r -> r > 0. | None -> false);
  checkb "gc delta embedded" true
    (match Obs.Json.member "gc" newest with
    | Some gc -> Obs.Json.member "allocated_bytes" gc <> None
    | None -> false);
  checkb "phase timings embedded" true
    (match Obs.Json.member "phases" newest with
    | Some (Obs.Json.Obj fields) -> List.mem_assoc "match" fields
    | _ -> false);
  (* Newest first, ids descending; ?n caps the count. *)
  let ids =
    List.filter_map
      (fun r -> Option.bind (Obs.Json.member "id" r) Obs.Json.to_float)
      records
  in
  checkb "newest first" true (ids = List.sort (fun a b -> compare b a) ids);
  let _, _, capped = handle "/queries?n=1" in
  checki "n caps" 1 (List.length (Obs.Json.to_list (Obs.Json.parse capped)))

(* POST /update against a live source: writes land, deletions land,
   compaction is reachable over HTTP, and a static server refuses. *)
let test_update_route () =
  let live = Amber.Live_engine.of_engine (Lazy.force engine) in
  let handle_live ?(body = "") ?(meth = "POST") target =
    Endpoint.handle_request config (Endpoint.Live live) ~meth ~target
      ~headers:[ ("Content-Type", "application/x-www-form-urlencoded") ]
      ~body
  in
  let nt =
    "<http://ex/fresh> <http://dbpedia.org/ontology/wasBornIn> \
     <http://ex/city> .\n"
  in
  let status, ctype, body =
    handle_live ~body:("add=" ^ encode nt) "/update"
  in
  checki "update accepted" 200 status;
  checks "json response" "application/json" ctype;
  let json = Obs.Json.parse body in
  let num k = Option.bind (Obs.Json.member k json) Obs.Json.to_float in
  checkb "one triple added" true (num "added" = Some 1.);
  checkb "version bumped" true (num "version" = Some 1.);
  (* The write is immediately visible to the next query request. *)
  let status, _, rows = handle_live ~meth:"GET" ("/sparql?query=" ^ encode simple_query) in
  checki "query after update" 200 status;
  checkb "new subject visible" true (contains rows "http://ex/fresh");
  checkb "old rows intact" true (contains rows "Amy_Winehouse");
  (* Remove it again and compact in the same request. *)
  let status, _, body =
    handle_live ~body:("remove=" ^ encode nt ^ "&compact=1") "/update"
  in
  checki "removal accepted" 200 status;
  let json = Obs.Json.parse body in
  let num k = Option.bind (Obs.Json.member k json) Obs.Json.to_float in
  checkb "compaction bumped generation" true (num "generation" = Some 1.);
  checkb "delta drained" true
    (num "delta_adds" = Some 0. && num "delta_dels" = Some 0.);
  let _, _, rows = handle_live ~meth:"GET" ("/sparql?query=" ^ encode simple_query) in
  checkb "removed subject gone" false (contains rows "http://ex/fresh");
  (* Error paths: bad N-Triples, empty batch, wrong method, static server. *)
  let status, _, _ = handle_live ~body:"add=not%20ntriples" "/update" in
  checki "parse error rejected" 400 status;
  let status, _, _ = handle_live ~body:"" "/update" in
  checki "empty batch rejected" 400 status;
  let status, _, _ = handle_live ~meth:"GET" "/update" in
  checki "GET /update refused" 405 status;
  let status, _, body = handle ~meth:"POST" ~body:("add=" ^ encode nt) "/update" in
  checki "static server refuses" 405 status;
  checkb "explains why" true (contains body "static")

(* One full HTTP round trip over a real socket. *)
let test_socket_roundtrip () =
  let server =
    Endpoint.create ~config:{ config with port = 0 } (Lazy.force engine)
  in
  let port = Endpoint.bound_port server in
  let server_domain = Domain.spawn (fun () -> Endpoint.serve ~max_requests:1 server) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let request =
    Printf.sprintf "GET /sparql?query=%s HTTP/1.1\r\nHost: localhost\r\nAccept: text/csv\r\n\r\n"
      (encode simple_query)
  in
  let _ = Unix.write fd (Bytes.of_string request) 0 (String.length request) in
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    end
  in
  drain ();
  Unix.close fd;
  Domain.join server_domain;
  Endpoint.stop server;
  let response = Buffer.contents buf in
  checkb "status line" true (contains response "HTTP/1.1 200 OK");
  checkb "content type" true (contains response "text/csv");
  checkb "payload" true (contains response "Amy_Winehouse")

let suite =
  [
    ( "endpoint",
      [
        Alcotest.test_case "url decode" `Quick test_url_decode;
        Alcotest.test_case "GET json" `Quick test_get_query_json;
        Alcotest.test_case "content negotiation" `Quick test_content_negotiation;
        Alcotest.test_case "POST forms" `Quick test_post_forms;
        Alcotest.test_case "extended routing" `Quick test_extended_routing;
        Alcotest.test_case "errors" `Quick test_errors;
        Alcotest.test_case "metrics route" `Quick test_metrics_route;
        Alcotest.test_case "profile param" `Quick test_profile_param;
        Alcotest.test_case "domains param" `Quick test_domains_param;
        Alcotest.test_case "healthz" `Quick test_healthz;
        Alcotest.test_case "queries route" `Quick test_queries_route;
        Alcotest.test_case "update route" `Quick test_update_route;
        Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip;
      ] );
  ]
