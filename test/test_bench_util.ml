(* Tests for the benchmark utility library. *)

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)

let test_stats_basics () =
  checkf "mean" 2.0 (Bench_util.Stats.mean [ 1.0; 2.0; 3.0 ]);
  checkf "mean empty" 0.0 (Bench_util.Stats.mean []);
  checkf "median odd" 2.0 (Bench_util.Stats.median [ 3.0; 1.0; 2.0 ]);
  checkf "median singleton" 7.0 (Bench_util.Stats.median [ 7.0 ]);
  checkf "min" 1.0 (Bench_util.Stats.minimum [ 3.0; 1.0; 2.0 ]);
  checkf "max" 3.0 (Bench_util.Stats.maximum [ 3.0; 1.0; 2.0 ]);
  checkf "p0 is min" 1.0 (Bench_util.Stats.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  checkf "p100 is max" 3.0 (Bench_util.Stats.percentile 1.0 [ 3.0; 1.0; 2.0 ]);
  checkf "stddev of constant" 0.0 (Bench_util.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  checkf "stddev" 1.0 (Bench_util.Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_tail_percentiles () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  checkf "p95 of 1..100" 95.0 (Bench_util.Stats.p95 xs);
  checkf "p99 of 1..100" 99.0 (Bench_util.Stats.p99 xs);
  checkf "p95 singleton" 7.0 (Bench_util.Stats.p95 [ 7.0 ]);
  checkf "p99 empty" 0.0 (Bench_util.Stats.p99 []);
  checkb "p99 >= p95" true (Bench_util.Stats.p99 xs >= Bench_util.Stats.p95 xs)

let test_table_render () =
  let text =
    Bench_util.Table_fmt.render ~header:[ "a"; "bb" ]
      [ [ "one"; "2" ]; [ "3" ] ]
  in
  let lines = String.split_on_char '\n' text in
  checki "four lines (incl trailing)" 5 (List.length lines);
  checkb "separator" true
    (String.length (List.nth lines 1) > 0 && (List.nth lines 1).[0] = '-');
  (* Missing cells render as blanks, no exception. *)
  checkb "ragged rows ok" true (String.length (List.nth lines 3) > 0)

let test_table_ms_pct () =
  Alcotest.(check string) "sub-10ms keeps precision" "1.234"
    (Bench_util.Table_fmt.ms 0.001234);
  Alcotest.(check string) "mid range" "123.5" (Bench_util.Table_fmt.ms 0.12345);
  Alcotest.(check string) "big values rounded" "2345" (Bench_util.Table_fmt.ms 2.345);
  Alcotest.(check string) "pct" "25%" (Bench_util.Table_fmt.pct ~answered:9 ~total:12);
  Alcotest.(check string) "pct empty" "-" (Bench_util.Table_fmt.pct ~answered:0 ~total:0)

let test_runner_outcomes () =
  let store = Baselines.Triple_store.load Fixtures.paper_triples in
  let ok_query =
    Fixtures.parse_query
      {|SELECT * WHERE { ?a <http://dbpedia.org/ontology/livedIn> ?b }|}
  in
  (match
     Bench_util.Runner.run_query
       (module Baselines.Triple_store)
       store ~timeout:10.0 ok_query
   with
  | Bench_util.Runner.Answered { rows; seconds } ->
      checki "rows" 3 rows;
      checkb "positive time" true (seconds >= 0.0)
  | Bench_util.Runner.Unanswered -> Alcotest.fail "should answer");
  match
    Bench_util.Runner.run_query
      (module Baselines.Triple_store)
      store ~timeout:0.0 ok_query
  with
  | Bench_util.Runner.Unanswered -> ()
  | Bench_util.Runner.Answered _ ->
      (* A tiny query may finish before the first deadline poll; accept
         either but ensure the summary path works below. *)
      ()

let test_runner_workload_summary () =
  let store = Baselines.Triple_store.load Fixtures.paper_triples in
  let queries =
    List.map Fixtures.parse_query
      [
        {|SELECT * WHERE { ?a <http://dbpedia.org/ontology/livedIn> ?b }|};
        {|SELECT * WHERE { ?a <http://dbpedia.org/ontology/wasBornIn> ?b }|};
      ]
  in
  let s =
    Bench_util.Runner.run_workload
      (module Baselines.Triple_store)
      store ~timeout:10.0 queries
  in
  checki "all answered" 2 s.Bench_util.Runner.answered;
  checki "none unanswered" 0 s.Bench_util.Runner.unanswered;
  checki "row total" 5 s.Bench_util.Runner.total_rows;
  checkb "engine name" true (s.Bench_util.Runner.engine = "x-rdf3x-like");
  checkb "p95 at least median" true
    (s.Bench_util.Runner.p95_time >= s.Bench_util.Runner.median_time);
  checkb "p99 at least p95" true
    (s.Bench_util.Runner.p99_time >= s.Bench_util.Runner.p95_time);
  let json = Bench_util.Runner.summary_json s in
  let has needle =
    let n = String.length needle and h = String.length json in
    let rec loop i = i + n <= h && (String.sub json i n = needle || loop (i + 1)) in
    loop 0
  in
  checkb "json engine" true (has "\"engine\":\"x-rdf3x-like\"");
  checkb "json p95 field" true (has "\"p95_s\":");
  checkb "json p99 field" true (has "\"p99_s\":")

let suite =
  [
    ( "bench_util",
      [
        Alcotest.test_case "stats" `Quick test_stats_basics;
        Alcotest.test_case "tail percentiles" `Quick test_stats_tail_percentiles;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "ms and pct cells" `Quick test_table_ms_pct;
        Alcotest.test_case "runner outcomes" `Quick test_runner_outcomes;
        Alcotest.test_case "workload summary" `Quick test_runner_workload_summary;
      ] );
  ]
