(* Agreement harness for the compressed posting-list substrate: every
   layout's [mem]/[next_geq]/[inter]/[inter_many]/iteration must match
   the raw-array kernels ([Sorted_ints] is the oracle), on adversarial
   distributions — runs of consecutive ids, single-element lists,
   max-id boundaries — plus wire-codec round trips per layout. *)

module P = Mgraph.Posting
module S = Mgraph.Sorted_ints

let layouts = [ P.Raw; P.Ef; P.Blocked ]

let freeze l a = P.of_array ~policy:(P.Force l) a

(* ---------- generators ---------- *)

let sorted_of_list l =
  List.sort_uniq compare (List.filter (fun x -> x >= 0) l) |> Array.of_list

(* Adversarial shapes: dense runs, sparse spreads, block-boundary
   sizes, huge ids near the EF bucket edges. *)
let gen_sorted =
  QCheck.Gen.(
    let run = map2 (fun start len -> List.init (min len 300) (fun i -> start + i))
        (int_bound 100_000) (int_bound 300) in
    let spread = list_size (int_bound 300) (int_bound 5_000_000) in
    let boundary =
      map (fun start -> [ start; start + 1; 1 lsl 40; (1 lsl 40) + 1 ])
        (int_bound 1000)
    in
    let singleton = map (fun x -> [ x ]) (int_bound 1_000_000) in
    let mixed = map2 (fun a b -> a @ b) run spread in
    map sorted_of_list (oneof [ run; spread; boundary; singleton; mixed; return [] ]))

let arb_sorted = QCheck.make ~print:(fun a ->
    Printf.sprintf "[|%s|]" (String.concat ";" (Array.to_list (Array.map string_of_int a))))
    gen_sorted

let qtest name arb ~count f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ---------- properties ---------- *)

let prop_roundtrip (a : int array) =
  List.for_all
    (fun l ->
      let p = freeze l a in
      P.to_array p = a
      && P.length p = Array.length a
      && (Array.length a = 0 || P.layout p = l))
    layouts

let prop_mem a =
  let probes =
    Array.to_list (Array.map (fun x -> [ x; x - 1; x + 1 ]) a)
    |> List.concat
    |> List.filter (fun x -> x >= 0)
  in
  let probes = 0 :: max_int :: probes in
  List.for_all
    (fun l ->
      let p = freeze l a in
      List.for_all (fun x -> P.mem p x = S.mem a x) probes)
    layouts

let oracle_next_geq a x =
  let n = Array.length a in
  let rec go i = if i >= n then None else if a.(i) >= x then Some a.(i) else go (i + 1) in
  go 0

let prop_next_geq a =
  let probes =
    Array.to_list (Array.map (fun x -> [ x; x - 1; x + 1 ]) a)
    |> List.concat
    |> List.filter (fun x -> x >= 0)
  in
  let probes = 0 :: probes in
  List.for_all
    (fun l ->
      let p = freeze l a in
      List.for_all (fun x -> P.next_geq p x = oracle_next_geq a x) probes)
    layouts

let prop_index_of a =
  List.for_all
    (fun l ->
      let p = freeze l a in
      Array.for_all (fun x -> P.index_of p x <> None) a
      && Array.to_list a
         |> List.mapi (fun i x -> (i, x))
         |> List.for_all (fun (i, x) -> P.index_of p x = Some i))
    layouts

let arb_pair = QCheck.pair arb_sorted arb_sorted

let prop_inter (a, b) =
  let expect = S.inter a b in
  List.for_all
    (fun la ->
      List.for_all
        (fun lb ->
          let r = P.inter (freeze la a) (freeze lb b) in
          P.to_array r = expect)
        layouts)
    layouts

let prop_inter_many (a, b) =
  let c = Array.of_list (List.filteri (fun i _ -> i mod 2 = 0) (Array.to_list a)) in
  let expect = S.inter (S.inter a b) c in
  List.for_all
    (fun l ->
      let r = P.inter_many [ freeze l a; freeze P.Raw b; freeze l c ] in
      P.to_array r = expect)
    layouts

let prop_codec a =
  List.for_all
    (fun l ->
      let p = freeze l a in
      let buf = Buffer.create 64 in
      P.encode buf p;
      let s = Buffer.contents buf in
      let q, consumed = P.decode s 0 in
      consumed = String.length s && P.equal p q && P.layout q = P.layout p
      && P.to_array q = a)
    layouts

let prop_auto_matches_raw a =
  let p = P.of_array a in
  P.to_array p = a

(* ---------- unit edge cases ---------- *)

let test_empty () =
  Alcotest.(check int) "length" 0 (P.length P.empty);
  Alcotest.(check bool) "mem" false (P.mem P.empty 0);
  Alcotest.(check bool) "next_geq" true (P.next_geq P.empty 0 = None);
  List.iter
    (fun l ->
      let p = freeze l [||] in
      Alcotest.(check bool) "forced empty is Raw" true (P.layout p = P.Raw))
    layouts

let test_unsorted_rejected () =
  Alcotest.check_raises "descending" (Invalid_argument "Posting.of_array: not strictly increasing")
    (fun () -> ignore (P.of_array [| 3; 1 |]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Posting.of_array: not strictly increasing")
    (fun () -> ignore (P.of_array [| 1; 1 |]));
  Alcotest.check_raises "negative" (Invalid_argument "Posting.of_array: negative element")
    (fun () -> ignore (P.of_array [| -1; 1 |]))

let test_aliasing () =
  let a = Array.init 200 (fun i -> i * 3) in
  List.iter
    (fun l ->
      let p = freeze l a in
      let r = P.inter p p in
      Alcotest.(check bool) "self-inter aliases" true (r == p);
      let sub = P.raw [| 0; 3; 6 |] in
      let r = P.inter p sub in
      Alcotest.(check bool) "subset aliases the small side" true (r == sub))
    layouts

let test_unknown_tag () =
  let buf = Buffer.create 8 in
  Buffer.add_char buf '\007';
  Alcotest.check_raises "unknown layout tag"
    (P.Corrupt "unknown posting layout tag 7") (fun () ->
      ignore (P.decode (Buffer.contents buf) 0))

let test_out_of_heap () =
  let a = Array.init 5000 (fun i -> i * 17) in
  Alcotest.(check int) "raw has none" 0 (P.out_of_heap_bytes (freeze P.Raw a));
  Alcotest.(check bool) "ef payload out of heap" true
    (P.out_of_heap_bytes (freeze P.Ef a) > 0);
  Alcotest.(check bool) "ef smaller than raw words" true
    (P.out_of_heap_bytes (freeze P.Ef a) < 8 * 5000);
  Alcotest.(check bool) "blocked payload out of heap" true
    (P.out_of_heap_bytes (freeze P.Blocked a) > 0)

let test_names () =
  List.iter
    (fun l ->
      Alcotest.(check bool) "layout name round trip" true
        (P.layout_of_string (P.layout_to_string l) = Some l))
    layouts;
  Alcotest.(check bool) "auto" true (P.policy_of_string "auto" = Some P.Auto);
  Alcotest.(check bool) "ef policy" true (P.policy_of_string "ef" = Some (P.Force P.Ef));
  Alcotest.(check bool) "garbage" true (P.policy_of_string "zstd" = None)

let test_dense_run () =
  (* a solid run of consecutive ids: blocked must pick bitset blocks
     and EF must survive a fully dense universe *)
  let a = Array.init 1000 (fun i -> i + 42) in
  List.iter
    (fun l ->
      let p = freeze l a in
      Alcotest.(check bool) "round trip" true (P.to_array p = a);
      Alcotest.(check bool) "mem mid" true (P.mem p 541);
      Alcotest.(check bool) "mem miss" false (P.mem p 41))
    layouts

let suite =
  [
    ( "posting",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "unsorted rejected" `Quick test_unsorted_rejected;
        Alcotest.test_case "aliasing returns" `Quick test_aliasing;
        Alcotest.test_case "unknown layout tag" `Quick test_unknown_tag;
        Alcotest.test_case "out-of-heap accounting" `Quick test_out_of_heap;
        Alcotest.test_case "layout names" `Quick test_names;
        Alcotest.test_case "dense run" `Quick test_dense_run;
        qtest "decode(freeze) round trip per layout" arb_sorted ~count:300 prop_roundtrip;
        qtest "mem agrees with Sorted_ints" arb_sorted ~count:200 prop_mem;
        qtest "next_geq agrees with linear oracle" arb_sorted ~count:200 prop_next_geq;
        qtest "index_of is the rank" arb_sorted ~count:150 prop_index_of;
        qtest "inter agrees across all layout pairs" arb_pair ~count:150 prop_inter;
        qtest "inter_many agrees" arb_pair ~count:150 prop_inter_many;
        qtest "wire codec round trip" arb_sorted ~count:300 prop_codec;
        qtest "auto policy preserves content" arb_sorted ~count:200 prop_auto_matches_raw;
      ] );
  ]
