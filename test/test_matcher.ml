(* Unit tests for the matcher internals (Algorithms 1-2) and the
   embedding generator. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_arr = Alcotest.(check (array int))

let x res = "http://dbpedia.org/resource/" ^ res
let y prop = "http://dbpedia.org/ontology/" ^ prop

let make_ctx () =
  let db = Amber.Database.of_triples Fixtures.paper_triples in
  Amber.Matcher.make_ctx
    ~probe_cache:(Amber.Probe_cache.create ())
    ~shared:(Amber.Matcher.make_shared ())
    ~db
    ~attribute:(Amber.Attribute_index.build db)
    ~synopsis:(Amber.Synopsis_index.build db)
    ~neighbourhood:(Amber.Neighbourhood_index.build db)
    ~deadline:Amber.Deadline.never
    ~stats:(Amber.Matcher.fresh_stats ())
    ()

let vertex ctx name =
  Option.get
    (Amber.Database.vertex_of_term ctx.Amber.Matcher.db (Rdf.Term.iri (x name)))

let build_query ctx src =
  match
    Amber.Query_graph.build ctx.Amber.Matcher.db (Fixtures.parse_query src)
  with
  | Amber.Query_graph.Query q -> q
  | Amber.Query_graph.Unsatisfiable { proof; _ } ->
      Alcotest.failf "unsat: %s" (Amber.Analysis.proof_to_string proof)

(* --- ProcessVertex (Algorithm 1) ------------------------------------- *)

let test_process_vertex_attributes () =
  let ctx = make_ctx () in
  let q =
    build_query ctx
      (Printf.sprintf
         {|SELECT * WHERE { ?b <%s> "MCA_Band" . ?b <%s> "1994" . ?b <%s> ?c }|}
         (y "hasName") (y "foundedIn") (y "wasFormedIn"))
  in
  let u = Option.get (Amber.Query_graph.vertex_of_var q "b") in
  (* Paper's C^A_{u5} example: both attributes pin Music_Band. *)
  match Amber.Matcher.process_vertex ctx q u with
  | Some cands ->
      check_arr "music band only" [| vertex ctx "Music_Band" |]
        (Mgraph.Posting.to_array cands)
  | None -> Alcotest.fail "expected attribute candidates"

let test_process_vertex_iri () =
  let ctx = make_ctx () in
  let q =
    build_query ctx
      (Printf.sprintf {|SELECT * WHERE { ?p <%s> <%s> . ?p <%s> ?o }|}
         (y "livedIn") (x "United_States") (y "wasBornIn"))
  in
  let u = Option.get (Amber.Query_graph.vertex_of_var q "p") in
  (* Paper's C^I example: who livedIn United_States. *)
  match Amber.Matcher.process_vertex ctx q u with
  | Some cands ->
      check_arr "amy and blake"
        (Mgraph.Sorted_ints.of_list
           [ vertex ctx "Amy_Winehouse"; vertex ctx "Blake_Fielder-Civil" ])
        (Mgraph.Posting.to_array cands)
  | None -> Alcotest.fail "expected IRI candidates"

let test_process_vertex_unconstrained () =
  let ctx = make_ctx () in
  let q =
    build_query ctx
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b }|} (y "livedIn"))
  in
  let u = Option.get (Amber.Query_graph.vertex_of_var q "a") in
  checkb "no vertex-local info" true (Amber.Matcher.process_vertex ctx q u = None)

(* --- initial candidates / seeded solving ------------------------------ *)

let test_initial_candidates () =
  let ctx = make_ctx () in
  let q = build_query ctx Fixtures.paper_query_text in
  let plan = Amber.Decompose.plan q in
  let comp = plan.Amber.Decompose.components.(0) in
  let seeds = Amber.Matcher.initial_candidates ctx q comp in
  (* The initial core vertex is X1 = London (rich star structure). *)
  check_arr "london seeds the search" [| vertex ctx "London" |] seeds

let collect ctx q plan comp ~seeds =
  let sols = ref [] in
  Amber.Matcher.solve_component_seeded ctx q plan comp ~seeds ~emit:(fun s ->
      sols := s :: !sols;
      `Continue);
  List.rev !sols

let test_seed_partition_equals_whole () =
  let ctx = make_ctx () in
  let q =
    build_query ctx
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?c <%s> ?b . ?a <%s> ?d }|}
         (y "livedIn") (y "livedIn") (y "wasBornIn"))
  in
  let plan = Amber.Decompose.plan q in
  let comp = plan.Amber.Decompose.components.(0) in
  let seeds = Amber.Matcher.initial_candidates ctx q comp in
  let whole = collect ctx q plan comp ~seeds in
  let n = Array.length seeds in
  let left = Array.sub seeds 0 (n / 2)
  and right = Array.sub seeds (n / 2) (n - (n / 2)) in
  let split = collect ctx q plan comp ~seeds:left @ collect ctx q plan comp ~seeds:right in
  checkb "partition covers the search space" true (whole = split);
  checkb "solutions found" true (whole <> [])

let test_emit_stop () =
  let ctx = make_ctx () in
  let q =
    build_query ctx
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?c }|} (y "livedIn")
         (y "livedIn"))
  in
  let plan = Amber.Decompose.plan q in
  let comp = plan.Amber.Decompose.components.(0) in
  let seen = ref 0 in
  Amber.Matcher.solve_component_seeded ctx q plan comp
    ~seeds:(Amber.Matcher.initial_candidates ctx q comp)
    ~emit:(fun _ ->
      incr seen;
      `Stop);
  checki "stopped after the first solution" 1 !seen

(* --- count_embeddings -------------------------------------------------- *)

let test_count_embeddings () =
  let sol core sats = { Amber.Matcher.core; sats } in
  checki "core only" 1 (Amber.Matcher.count_embeddings (sol [ (0, 1) ] []));
  checki "two satellites" 6
    (Amber.Matcher.count_embeddings
       (sol [ (0, 1) ] [ (1, [| 1; 2 |]); (2, [| 3; 4; 5 |]) ]));
  checki "empty satellite" 0
    (Amber.Matcher.count_embeddings (sol [ (0, 1) ] [ (1, [||]) ]));
  let huge = Array.init 100_000 Fun.id in
  checki "saturates instead of overflowing" max_int
    (Amber.Matcher.count_embeddings
       (sol []
          [ (0, huge); (1, huge); (2, huge); (3, huge); (4, huge); (5, huge);
            (6, huge); (7, huge); (8, huge); (9, huge); (10, huge); (11, huge);
            (12, huge) ]))

(* --- Embedding --------------------------------------------------------- *)

let test_embedding_cartesian () =
  let db = Amber.Database.of_triples Fixtures.paper_triples in
  let ctx = make_ctx () in
  let q =
    build_query ctx
      (Printf.sprintf {|SELECT * WHERE { ?p <%s> ?c . ?p <%s> ?w }|}
         (y "wasBornIn") (y "livedIn"))
  in
  let plan = Amber.Decompose.plan q in
  let comp = plan.Amber.Decompose.components.(0) in
  let sols =
    collect ctx q plan comp
      ~seeds:(Amber.Matcher.initial_candidates ctx q comp)
  in
  let lits = Amber.Literal_bindings.create db in
  let rows =
    List.of_seq (Amber.Embedding.rows ~db ~q ~lits ~solutions:[| sols |])
  in
  let expected =
    List.fold_left (fun n s -> n + Amber.Matcher.count_embeddings s) 0 sols
  in
  checki "rows = sum of products" expected (List.length rows);
  checki "count agrees" expected
    (Amber.Embedding.count ~q ~lits ~db ~solutions:[| sols |]);
  (* Each row binds every slot with a term. *)
  checkb "rows fully bound" true
    (List.for_all (fun row -> Array.length row = Amber.Query_graph.vertex_count q) rows)

let test_embedding_empty_component () =
  let db = Amber.Database.of_triples Fixtures.paper_triples in
  let ctx = make_ctx () in
  let q =
    build_query ctx
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?c <%s> ?d }|}
         (y "hasStadium") (y "wasMarriedTo"))
  in
  let lits = Amber.Literal_bindings.create db in
  (* One populated component, one empty: no rows. *)
  let plan = Amber.Decompose.plan q in
  let comp = plan.Amber.Decompose.components.(0) in
  let sols =
    collect ctx q plan comp ~seeds:(Amber.Matcher.initial_candidates ctx q comp)
  in
  checki "no rows with an empty component" 0
    (Seq.fold_left (fun n _ -> n + 1) 0
       (Amber.Embedding.rows ~db ~q ~lits ~solutions:[| sols; [] |]))

(* --- Literal_bindings ---------------------------------------------------- *)

let test_literal_bindings () =
  let db = Amber.Database.of_triples Fixtures.paper_triples in
  let lits = Amber.Literal_bindings.create db in
  let band =
    Option.get (Amber.Database.vertex_of_term db (Rdf.Term.iri (x "Music_Band")))
  in
  (* Literal-only predicate. *)
  (match Amber.Literal_bindings.bindings lits ~vertex:band ~pred:(y "hasName") with
  | [ Rdf.Term.Literal { value; _ } ] -> Alcotest.(check string) "name" "MCA_Band" value
  | _ -> Alcotest.fail "expected one literal");
  (* Edge predicate. *)
  let amy =
    Option.get (Amber.Database.vertex_of_term db (Rdf.Term.iri (x "Amy_Winehouse")))
  in
  (match Amber.Literal_bindings.bindings lits ~vertex:amy ~pred:(y "livedIn") with
  | [ Rdf.Term.Iri i ] -> Alcotest.(check string) "us" (x "United_States") i
  | _ -> Alcotest.fail "expected one IRI");
  (* Nothing. *)
  checki "no bindings" 0
    (List.length (Amber.Literal_bindings.bindings lits ~vertex:amy ~pred:"http://nope"))

let suite =
  [
    ( "amber.matcher",
      [
        Alcotest.test_case "process_vertex attributes" `Quick test_process_vertex_attributes;
        Alcotest.test_case "process_vertex iri" `Quick test_process_vertex_iri;
        Alcotest.test_case "process_vertex unconstrained" `Quick
          test_process_vertex_unconstrained;
        Alcotest.test_case "initial candidates" `Quick test_initial_candidates;
        Alcotest.test_case "seed partition" `Quick test_seed_partition_equals_whole;
        Alcotest.test_case "emit stop" `Quick test_emit_stop;
        Alcotest.test_case "count embeddings" `Quick test_count_embeddings;
      ] );
    ( "amber.embedding",
      [
        Alcotest.test_case "cartesian rows" `Quick test_embedding_cartesian;
        Alcotest.test_case "empty component" `Quick test_embedding_empty_component;
        Alcotest.test_case "literal bindings" `Quick test_literal_bindings;
      ] );
  ]
